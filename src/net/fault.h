// Fault-injection profile for the simulated V2X medium.
//
// The paper evaluates NWADE under an idealized channel (fixed 30 ms latency,
// at most uniform random loss). Real V2X stacks live or die on channel
// imperfections instead: loss arrives in bursts (shadowing, congestion),
// latency jitters (which reorders packets), duplicates appear (MAC-layer
// retransmissions), individual links fail (antenna masking, interference),
// and whole nodes go dark (crashes, reboots). `FaultProfile` models each of
// these so the chaos suite can sweep them; docs/FAULT_MODEL.md describes the
// semantics and the parameter ranges the benches use.
//
// Every knob defaults to "off", and the network consumes randomness for a
// feature only when that feature is enabled, so a zero-fault profile leaves
// existing runs bit-for-bit identical to the pre-fault-layer behaviour.
#pragma once

#include <string>
#include <vector>

#include "util/types.h"

namespace nwade::net {

/// Per-link drop rule: packets matching (from, to, kind) during the active
/// window are dropped with `drop_probability`. Invalid (zero) node ids act as
/// wildcards, as does an empty kind. Rules model targeted failures — e.g.
/// "this vehicle never hears the IM's block broadcasts".
struct LinkRule {
  NodeId from{};                 ///< sender filter; 0 = any sender
  NodeId to{};                   ///< receiver filter; 0 = any receiver
  std::string kind;              ///< message-kind filter; empty = any kind
  double drop_probability{1.0};  ///< drop chance for matching packets
  Tick active_from{0};
  Tick active_until{kTickMax};
};

/// Scheduled node outage: during [from, until) the node's radio is dark — it
/// neither emits nor receives. An IM outage additionally drives the IM's
/// crash/restart cycle (the World schedules ImNode::crash/restart from it).
struct Outage {
  NodeId node{};
  Tick from{0};
  Tick until{0};
};

/// Channel fault model. All features default to disabled.
struct FaultProfile {
  // --- Gilbert–Elliott two-state burst loss --------------------------------
  // A per-packet Markov chain alternates between a Good and a Bad state;
  // packets are lost with `ge_loss_good` / `ge_loss_bad` respectively. The
  // stationary bad-state share is p/(p+r) with p = good->bad, r = bad->good,
  // so mean loss = ge_loss_bad * p/(p+r) (for ge_loss_good = 0) and mean
  // burst length = 1/r packets. Enabled when ge_p_good_to_bad > 0.
  double ge_p_good_to_bad{0.0};
  double ge_p_bad_to_good{0.25};
  double ge_loss_good{0.0};
  double ge_loss_bad{1.0};

  /// Per-packet latency jitter: a uniform draw in [0, jitter_ms] is added to
  /// the base propagation latency. Jitter naturally produces reordering once
  /// it exceeds the inter-send spacing.
  Duration jitter_ms{0};

  /// Probability that a packet is delivered twice (independent jitter per
  /// copy). Models MAC-level retransmission after a lost ACK.
  double duplicate_probability{0.0};

  /// Targeted per-link drop rules (see LinkRule).
  std::vector<LinkRule> link_rules;

  /// Scheduled node outages (see Outage).
  std::vector<Outage> outages;

  bool burst_loss_enabled() const { return ge_p_good_to_bad > 0.0; }
  bool any_enabled() const {
    return burst_loss_enabled() || jitter_ms > 0 || duplicate_probability > 0 ||
           !link_rules.empty() || !outages.empty();
  }

  /// True when `node`'s radio is dark at time `t`.
  bool node_down(NodeId node, Tick t) const {
    for (const Outage& o : outages) {
      if (o.node == node && t >= o.from && t < o.until) return true;
    }
    return false;
  }
};

/// Convenience: a Gilbert–Elliott parameterization hitting a target mean loss
/// rate with the given mean burst length (in packets).
inline FaultProfile burst_loss_profile(double mean_loss, double mean_burst_len) {
  FaultProfile f;
  f.ge_p_bad_to_good = 1.0 / mean_burst_len;
  // stationary bad share = p/(p+r) = mean_loss  =>  p = r * loss/(1-loss)
  f.ge_p_good_to_bad = f.ge_p_bad_to_good * mean_loss / (1.0 - mean_loss);
  f.ge_loss_bad = 1.0;
  return f;
}

}  // namespace nwade::net
