#include "net/network.h"

#include <algorithm>
#include <cassert>

namespace nwade::net {

namespace {
/// Padding added to grid-backed broadcast queries. The snapshot can be up to
/// one physics step old (broadcasts fired mid-step see vehicles that moved
/// after the snapshot), so the pad must exceed the farthest a vehicle can
/// travel in one step — ~2.3 m at 50 mph and the 100 ms default step. 60 m
/// covers steps beyond a second with a wide margin and costs only a slightly
/// larger candidate set; the exact range check always uses live positions.
constexpr double kGridSlackM = 60.0;
}  // namespace

Network::Network(EventQueue& queue, SimClock& clock, NetworkConfig config)
    : queue_(queue), clock_(clock), config_(std::move(config)), rng_(config_.seed) {}

void Network::add_node(Node* node) {
  assert(node != nullptr);
  nodes_[node->node_id()] = node;
  ++membership_epoch_;
}

void Network::remove_node(NodeId id) {
  nodes_.erase(id);
  ++membership_epoch_;
}

bool Network::in_range(NodeId a, NodeId b) const {
  const auto ita = nodes_.find(a);
  const auto itb = nodes_.find(b);
  if (ita == nodes_.end() || itb == nodes_.end()) return false;
  return ita->second->position().distance_to(itb->second->position()) <=
         config_.comm_radius_m;
}

void Network::count_drop(const Envelope& env) {
  stats_.dropped_by_kind[env.msg->kind()]++;
}

bool Network::packet_lost(const Envelope& env) {
  if (config_.loss_probability > 0 && rng_.chance(config_.loss_probability)) {
    return true;
  }
  const FaultProfile& fault = config_.fault;
  if (fault.burst_loss_enabled()) {
    // Advance the Gilbert–Elliott chain one step per packet copy, then apply
    // the state's loss probability.
    if (ge_bad_) {
      if (rng_.chance(fault.ge_p_bad_to_good)) ge_bad_ = false;
    } else {
      if (rng_.chance(fault.ge_p_good_to_bad)) ge_bad_ = true;
    }
    const double p = ge_bad_ ? fault.ge_loss_bad : fault.ge_loss_good;
    if (p > 0 && rng_.chance(p)) return true;
  }
  for (const LinkRule& rule : fault.link_rules) {
    const Tick now = clock_.now();
    if (now < rule.active_from || now >= rule.active_until) continue;
    if (rule.from.valid() && rule.from != env.from) continue;
    if (rule.to.valid() && rule.to != env.to) continue;
    if (!rule.kind.empty() && rule.kind != env.msg->kind()) continue;
    if (rng_.chance(rule.drop_probability)) return true;
  }
  return false;
}

void Network::schedule_delivery(Envelope env, Tick arrival) {
  queue_.schedule_at(arrival, [this, env = std::move(env)]() {
    // The receiver may have left the intersection (deregistered) in flight.
    const auto it = nodes_.find(env.to);
    if (it == nodes_.end()) return;
    if (config_.fault.node_down(env.to, clock_.now())) {
      stats_.packets_lost_outage++;
      count_drop(env);
      return;
    }
    // Jitter lets a receiver drift out of range while the packet is in
    // flight; range is therefore re-checked against the emission origin at
    // delivery time, not only at send time.
    if (it->second->position().distance_to(env.origin) > config_.comm_radius_m) {
      stats_.packets_out_of_range++;
      return;
    }
    stats_.packets_delivered++;
    it->second->on_message(env);
  });
}

void Network::deliver_later(Envelope env) {
  const FaultProfile& fault = config_.fault;
  if (fault.node_down(env.from, clock_.now())) {
    // A dark sender emits nothing; the copy never reaches the medium.
    stats_.packets_lost_outage++;
    count_drop(env);
    return;
  }
  stats_.packets_sent++;
  stats_.bytes_sent += env.msg->wire_size();
  stats_.packets_by_kind[env.msg->kind()]++;
  stats_.bytes_by_kind[env.msg->kind()] += env.msg->wire_size();

  if (packet_lost(env)) {
    stats_.packets_dropped++;
    count_drop(env);
    return;
  }
  // Randomness is only consumed when a feature is on, so zero-fault profiles
  // reproduce pre-fault-layer runs bit for bit. All draws (arrival jitter,
  // dup chance, dup jitter) happen before the envelope moves into the queue,
  // preserving the seed draw order exactly.
  Tick arrival = clock_.now() + config_.latency_ms;
  if (fault.jitter_ms > 0) arrival += rng_.uniform_int(0, fault.jitter_ms);

  if (fault.duplicate_probability > 0 && rng_.chance(fault.duplicate_probability)) {
    stats_.packets_duplicated++;
    Tick dup_arrival = clock_.now() + config_.latency_ms;
    if (fault.jitter_ms > 0) dup_arrival += rng_.uniform_int(0, fault.jitter_ms);
    schedule_delivery(env, arrival);  // original enqueues first, as before
    schedule_delivery(std::move(env), dup_arrival);
    return;
  }
  schedule_delivery(std::move(env), arrival);
}

void Network::unicast(NodeId from, NodeId to, MessagePtr msg) {
  assert(msg != nullptr);
  const auto sender = nodes_.find(from);
  if (sender == nodes_.end() || !nodes_.contains(to)) return;
  if (!in_range(from, to)) {
    stats_.packets_out_of_range++;
    return;
  }
  const geom::Vec2 origin = sender->second->position();
  deliver_later(Envelope{from, to, /*broadcast=*/false, clock_.now(),
                         std::move(msg), origin});
}

void Network::rebuild_grid() {
  grid_.clear();
  grid_ids_.clear();
  grid_.reserve(nodes_.size());
  grid_ids_.reserve(nodes_.size());
  for (const auto& [id, node] : nodes_) {
    grid_.insert(node->position());
    grid_ids_.push_back(id);
  }
  grid_built_at_ = clock_.now();
  grid_epoch_ = membership_epoch_;
}

void Network::collect_receivers(NodeId from, geom::Vec2 origin,
                                std::vector<NodeId>& out) {
  // Delivery order MUST stay byte-identical to the original scan: envelopes
  // enqueue (and the loss model draws randomness) in this order, so any
  // reordering reassigns which packet copies the channel eats and perturbs
  // every seeded lossy run. That is why the grid is used as a candidate
  // pre-filter inside the reference iteration order rather than as the
  // iteration itself.
  bool indexed = !config_.quadratic_reference;
  if (indexed) {
    if (grid_built_at_ != clock_.now() || grid_epoch_ != membership_epoch_) {
      rebuild_grid();
    }
    grid_scratch_.clear();
    grid_.query_candidates(origin, config_.comm_radius_m + kGridSlackM,
                           grid_scratch_);
    if (grid_scratch_.size() == grid_ids_.size()) {
      // Dense regime: the padded disc covers every node, so the filter can
      // reject nothing — skip building the candidate set and run the plain
      // scan (identical result either way; this is purely a cost call).
      indexed = false;
    } else {
      candidates_.clear();
      for (const std::size_t idx : grid_scratch_) {
        candidates_.insert(grid_ids_[idx]);
      }
    }
  }
  out.clear();
  for (const auto& [id, node] : nodes_) {
    if (id == from) continue;
    // Superset contract: a node the padded grid query misses moved at most
    // kGridSlackM since the snapshot, so its live position is certainly out
    // of range — the exact check below could only have rejected it.
    if (indexed && !candidates_.contains(id)) {
      stats_.packets_out_of_range++;  // same accounting as unicast
      continue;
    }
    if (node->position().distance_to(origin) > config_.comm_radius_m) {
      stats_.packets_out_of_range++;  // same accounting as unicast
      continue;
    }
    out.push_back(id);
  }
}

void Network::broadcast(NodeId from, MessagePtr msg) {
  assert(msg != nullptr);
  const auto sender = nodes_.find(from);
  if (sender == nodes_.end()) return;
  const geom::Vec2 origin = sender->second->position();
  collect_receivers(from, origin, receivers_);
  for (const NodeId id : receivers_) {
    // Every receiver's envelope shares the one message object (refcount
    // bump, no copy of the serialized payload).
    deliver_later(Envelope{from, id, /*broadcast=*/true, clock_.now(), msg, origin});
  }
}

}  // namespace nwade::net
