#include "net/network.h"

#include <algorithm>
#include <cassert>

namespace nwade::net {

namespace {
/// Padding added to grid-backed broadcast queries. The snapshot can be up to
/// one physics step old (broadcasts fired mid-step see vehicles that moved
/// after the snapshot), so the pad must exceed the farthest a vehicle can
/// travel in one step — ~2.3 m at 50 mph and the 100 ms default step. 60 m
/// covers steps beyond a second with a wide margin and costs only a slightly
/// larger candidate set; the exact range check always uses live positions.
constexpr double kGridSlackM = 60.0;
}  // namespace

Network::Network(EventQueue& queue, SimClock& clock, NetworkConfig config)
    : queue_(queue), clock_(clock), config_(std::move(config)), rng_(config_.seed) {
  registry_ = config_.registry;
  if (registry_ == nullptr) {
    owned_registry_ = std::make_unique<util::telemetry::Registry>();
    registry_ = owned_registry_.get();
  }
  tracer_ = config_.tracer;
  sent_ = registry_->counter("net.packets.sent");
  delivered_ = registry_->counter("net.packets.delivered");
  dropped_ = registry_->counter("net.packets.dropped");
  out_of_range_ = registry_->counter("net.packets.out_of_range");
  duplicated_ = registry_->counter("net.packets.duplicated");
  lost_outage_ = registry_->counter("net.packets.lost_outage");
  bytes_sent_ = registry_->counter("net.bytes.sent");
  nodes_gauge_ = registry_->gauge("net.nodes");
}

Network::KindHandles& Network::kind_handles(const std::string& kind) {
  const auto it = kind_handles_.find(kind);
  if (it != kind_handles_.end()) return it->second;
  KindHandles h;
  h.packets = registry_->counter("net.packets_by_kind." + kind);
  h.bytes = registry_->counter("net.bytes_by_kind." + kind);
  h.dropped = registry_->counter("net.dropped_by_kind." + kind);
  h.duplicated = registry_->counter("net.duplicated_by_kind." + kind);
  h.latency_ms = registry_->histogram(
      "net.latency_ms." + kind,
      util::telemetry::HistogramBuckets::exponential_ms(512));
  return kind_handles_.emplace(kind, h).first->second;
}

void Network::add_node(Node* node) {
  assert(node != nullptr);
  const NodeId id = node->node_id();
  nodes_[id] = node;
  const auto it = std::lower_bound(sorted_ids_.begin(), sorted_ids_.end(), id);
  if (it == sorted_ids_.end() || *it != id) sorted_ids_.insert(it, id);
  ++membership_epoch_;
  nodes_gauge_.set(static_cast<std::int64_t>(nodes_.size()));
}

void Network::remove_node(NodeId id) {
  nodes_.erase(id);
  const auto it = std::lower_bound(sorted_ids_.begin(), sorted_ids_.end(), id);
  if (it != sorted_ids_.end() && *it == id) sorted_ids_.erase(it);
  ++membership_epoch_;
  nodes_gauge_.set(static_cast<std::int64_t>(nodes_.size()));
}

bool Network::in_range(NodeId a, NodeId b) const {
  const auto ita = nodes_.find(a);
  const auto itb = nodes_.find(b);
  if (ita == nodes_.end() || itb == nodes_.end()) return false;
  return ita->second->position().distance_to(itb->second->position()) <=
         config_.comm_radius_m;
}

void Network::count_drop(const Envelope& env) {
  kind_handles(env.msg->kind()).dropped.inc();
}

bool Network::packet_lost(const Envelope& env) {
  if (config_.loss_probability > 0 && rng_.chance(config_.loss_probability)) {
    return true;
  }
  const FaultProfile& fault = config_.fault;
  if (fault.burst_loss_enabled()) {
    // Advance the Gilbert–Elliott chain one step per packet copy, then apply
    // the state's loss probability.
    if (ge_bad_) {
      if (rng_.chance(fault.ge_p_bad_to_good)) ge_bad_ = false;
    } else {
      if (rng_.chance(fault.ge_p_good_to_bad)) ge_bad_ = true;
    }
    const double p = ge_bad_ ? fault.ge_loss_bad : fault.ge_loss_good;
    if (p > 0 && rng_.chance(p)) return true;
  }
  for (const LinkRule& rule : fault.link_rules) {
    const Tick now = clock_.now();
    if (now < rule.active_from || now >= rule.active_until) continue;
    if (rule.from.valid() && rule.from != env.from) continue;
    if (rule.to.valid() && rule.to != env.to) continue;
    if (!rule.kind.empty() && rule.kind != env.msg->kind()) continue;
    if (rng_.chance(rule.drop_probability)) return true;
  }
  return false;
}

void Network::schedule_delivery(Envelope env, Tick arrival,
                                util::telemetry::Histogram latency_ms) {
  // The envelope is parked in pending_ rather than captured in the closure so
  // a checkpoint can serialize every in-flight copy; the closure carries only
  // the delivery id.
  const std::uint64_t id = next_delivery_id_++;
  const std::uint64_t seq =
      queue_.schedule_at(arrival, [this, id] { deliver_pending(id); });
  pending_.emplace(id, Pending{seq, arrival, std::move(env), latency_ms});
}

void Network::deliver_pending(std::uint64_t id) {
  const auto pit = pending_.find(id);
  if (pit == pending_.end()) return;
  const Envelope env = std::move(pit->second.env);
  util::telemetry::Histogram latency_ms = pit->second.latency_ms;
  pending_.erase(pit);

  // The receiver may have left the intersection (deregistered) in flight.
  const auto it = nodes_.find(env.to);
  if (it == nodes_.end()) return;
  if (config_.fault.node_down(env.to, clock_.now())) {
    lost_outage_.inc();
    count_drop(env);
    if (tracer_ != nullptr && util::trace::tracing_active()) {
      tracer_->instant("net", "outage_loss", clock_.now(), "node",
                       static_cast<std::int64_t>(env.to.value));
    }
    return;
  }
  // Jitter lets a receiver drift out of range while the packet is in
  // flight; range is therefore re-checked against the emission origin at
  // delivery time, not only at send time.
  if (it->second->position().distance_to(env.origin) > config_.comm_radius_m) {
    out_of_range_.inc();
    return;
  }
  delivered_.inc();
  latency_ms.observe(clock_.now() - env.sent_at);
  it->second->on_message(env);
}

void Network::deliver_later(Envelope env) {
  const FaultProfile& fault = config_.fault;
  if (fault.node_down(env.from, clock_.now())) {
    // A dark sender emits nothing; the copy never reaches the medium.
    lost_outage_.inc();
    count_drop(env);
    if (tracer_ != nullptr && util::trace::tracing_active()) {
      tracer_->instant("net", "outage_loss", clock_.now(), "node",
                       static_cast<std::int64_t>(env.from.value));
    }
    return;
  }
  KindHandles& kind = kind_handles(env.msg->kind());
  sent_.inc();
  bytes_sent_.inc(static_cast<std::int64_t>(env.msg->wire_size()));
  kind.packets.inc();
  kind.bytes.inc(static_cast<std::int64_t>(env.msg->wire_size()));

  if (packet_lost(env)) {
    dropped_.inc();
    count_drop(env);
    if (tracer_ != nullptr && util::trace::tracing_active()) {
      tracer_->instant("net", "packet_drop", clock_.now(), "to",
                       static_cast<std::int64_t>(env.to.value));
    }
    return;
  }
  // Randomness is only consumed when a feature is on, so zero-fault profiles
  // reproduce pre-fault-layer runs bit for bit. All draws (arrival jitter,
  // dup chance, dup jitter) happen before the envelope moves into the queue,
  // preserving the seed draw order exactly.
  Tick arrival = clock_.now() + config_.latency_ms;
  if (fault.jitter_ms > 0) arrival += rng_.uniform_int(0, fault.jitter_ms);

  if (fault.duplicate_probability > 0 && rng_.chance(fault.duplicate_probability)) {
    duplicated_.inc();
    kind.duplicated.inc();
    if (tracer_ != nullptr && util::trace::tracing_active()) {
      tracer_->instant("net", "packet_dup", clock_.now(), "to",
                       static_cast<std::int64_t>(env.to.value));
    }
    Tick dup_arrival = clock_.now() + config_.latency_ms;
    if (fault.jitter_ms > 0) dup_arrival += rng_.uniform_int(0, fault.jitter_ms);
    schedule_delivery(env, arrival, kind.latency_ms);  // original first, as before
    schedule_delivery(std::move(env), dup_arrival, kind.latency_ms);
    return;
  }
  schedule_delivery(std::move(env), arrival, kind.latency_ms);
}

void Network::unicast(NodeId from, NodeId to, MessagePtr msg) {
  assert(msg != nullptr);
  const auto sender = nodes_.find(from);
  if (sender == nodes_.end() || !nodes_.contains(to)) return;
  if (!in_range(from, to)) {
    out_of_range_.inc();
    return;
  }
  const geom::Vec2 origin = sender->second->position();
  deliver_later(Envelope{from, to, /*broadcast=*/false, clock_.now(),
                         std::move(msg), origin});
}

void Network::rebuild_grid() {
  grid_.clear();
  grid_ids_.clear();
  grid_.reserve(nodes_.size());
  grid_ids_.reserve(nodes_.size());
  for (const NodeId id : sorted_ids_) {
    grid_.insert(nodes_.find(id)->second->position());
    grid_ids_.push_back(id);
  }
  grid_built_at_ = clock_.now();
  grid_epoch_ = membership_epoch_;
}

void Network::collect_receivers(NodeId from, geom::Vec2 origin,
                                std::vector<NodeId>& out) {
  // Receivers enumerate in ascending id order — a pure function of current
  // membership, so a checkpoint-restored network (whose hash table was
  // rebuilt with a different insert/erase history) reproduces the exact
  // enumeration, and with it which packet copies the loss model eats and
  // every envelope's queue seq. The grid is used as a candidate pre-filter
  // inside that canonical order rather than as the iteration itself, so
  // indexed and quadratic stepping stay byte-identical.
  bool indexed = !config_.quadratic_reference;
  if (indexed) {
    if (grid_built_at_ != clock_.now() || grid_epoch_ != membership_epoch_) {
      rebuild_grid();
    }
    grid_scratch_.clear();
    grid_.query_candidates(origin, config_.comm_radius_m + kGridSlackM,
                           grid_scratch_);
    if (grid_scratch_.size() == grid_ids_.size()) {
      // Dense regime: the padded disc covers every node, so the filter can
      // reject nothing — skip building the candidate set and run the plain
      // scan (identical result either way; this is purely a cost call).
      indexed = false;
    } else {
      candidates_.clear();
      for (const std::size_t idx : grid_scratch_) {
        candidates_.insert(grid_ids_[idx]);
      }
    }
  }
  out.clear();
  for (const NodeId id : sorted_ids_) {
    if (id == from) continue;
    // Superset contract: a node the padded grid query misses moved at most
    // kGridSlackM since the snapshot, so its live position is certainly out
    // of range — the exact check below could only have rejected it.
    if (indexed && !candidates_.contains(id)) {
      out_of_range_.inc();  // same accounting as unicast
      continue;
    }
    if (nodes_.find(id)->second->position().distance_to(origin) >
        config_.comm_radius_m) {
      out_of_range_.inc();  // same accounting as unicast
      continue;
    }
    out.push_back(id);
  }
}

const NetworkStats& Network::stats() const {
  NetworkStats& s = stats_view_;
  s.packets_sent = static_cast<std::uint64_t>(sent_.value());
  s.packets_delivered = static_cast<std::uint64_t>(delivered_.value());
  s.packets_dropped = static_cast<std::uint64_t>(dropped_.value());
  s.packets_out_of_range = static_cast<std::uint64_t>(out_of_range_.value());
  s.packets_duplicated = static_cast<std::uint64_t>(duplicated_.value());
  s.packets_lost_outage = static_cast<std::uint64_t>(lost_outage_.value());
  s.bytes_sent = static_cast<std::uint64_t>(bytes_sent_.value());
  s.packets_by_kind.clear();
  s.bytes_by_kind.clear();
  s.dropped_by_kind.clear();
  for (const auto& [kind, h] : kind_handles_) {
    // Per-kind entries must exist exactly when the retired hand-rolled maps
    // would have created them: packets and bytes were written together at
    // the send site (bytes possibly 0), drops only on a drop. trace_golden
    // digests fold these maps, so this shape is load-bearing.
    const std::int64_t packets = h.packets.value();
    if (packets > 0) {
      s.packets_by_kind[kind] = static_cast<std::uint64_t>(packets);
      s.bytes_by_kind[kind] = static_cast<std::uint64_t>(h.bytes.value());
    }
    const std::int64_t dropped = h.dropped.value();
    if (dropped > 0) {
      s.dropped_by_kind[kind] = static_cast<std::uint64_t>(dropped);
    }
  }
  return s;
}

void Network::reset_stats() {
  sent_.reset();
  delivered_.reset();
  dropped_.reset();
  out_of_range_.reset();
  duplicated_.reset();
  lost_outage_.reset();
  bytes_sent_.reset();
  for (auto& [kind, h] : kind_handles_) {
    h.packets.reset();
    h.bytes.reset();
    h.dropped.reset();
    h.duplicated.reset();
    h.latency_ms.reset();
  }
  stats_view_ = NetworkStats{};
}

void Network::checkpoint_save(ByteWriter& w, const MessageEncoder& encode) const {
  const Rng::State rng = rng_.state();
  for (const std::uint64_t s : rng.s) w.u64(s);
  w.u64(rng.seed);
  w.u8(ge_bad_ ? 1 : 0);

  // Kinds seen so far, sorted: stats() only reports kinds present in
  // kind_handles_, so a resumed network must re-create the exact handle set
  // even for kinds with no packet currently in flight.
  std::vector<std::string> kinds;
  kinds.reserve(kind_handles_.size());
  for (const auto& [kind, h] : kind_handles_) kinds.push_back(kind);
  std::sort(kinds.begin(), kinds.end());
  w.u32(static_cast<std::uint32_t>(kinds.size()));
  for (const std::string& kind : kinds) w.str(kind);

  w.u32(static_cast<std::uint32_t>(pending_.size()));
  for (const auto& [id, p] : pending_) {  // ascending id == scheduling order
    w.u64(p.queue_seq);
    w.i64(p.arrival);
    w.u64(p.env.from.value);
    w.u64(p.env.to.value);
    w.u8(p.env.broadcast ? 1 : 0);
    w.i64(p.env.sent_at);
    w.f64(p.env.origin.x);
    w.f64(p.env.origin.y);
    encode(w, *p.env.msg);
  }
}

bool Network::checkpoint_restore(ByteReader& r, const MessageDecoder& decode) {
  Rng::State rng;
  for (std::uint64_t& s : rng.s) s = r.u64();
  rng.seed = r.u64();
  rng_.set_state(rng);
  ge_bad_ = r.u8() != 0;

  const std::uint32_t n_kinds = r.u32();
  if (n_kinds > r.remaining()) return false;  // >= 1 byte per entry
  for (std::uint32_t i = 0; i < n_kinds; ++i) {
    const std::string kind = r.str();
    if (!r.ok()) return false;
    kind_handles(kind);
  }

  const std::uint32_t n_pending = r.u32();
  if (n_pending > r.remaining()) return false;
  for (std::uint32_t i = 0; i < n_pending; ++i) {
    Pending p;
    p.queue_seq = r.u64();
    p.arrival = r.i64();
    Envelope env;
    env.from = NodeId{r.u64()};
    env.to = NodeId{r.u64()};
    env.broadcast = r.u8() != 0;
    env.sent_at = r.i64();
    env.origin.x = r.f64();
    env.origin.y = r.f64();
    env.msg = decode(r);
    if (!r.ok() || env.msg == nullptr) return false;
    p.latency_ms = kind_handles(env.msg->kind()).latency_ms;
    p.env = std::move(env);
    const std::uint64_t id = next_delivery_id_++;
    queue_.schedule_at_seq(p.arrival, p.queue_seq,
                           [this, id] { deliver_pending(id); });
    pending_.emplace(id, std::move(p));
  }
  return r.ok();
}

void Network::broadcast(NodeId from, MessagePtr msg) {
  assert(msg != nullptr);
  const auto sender = nodes_.find(from);
  if (sender == nodes_.end()) return;
  const geom::Vec2 origin = sender->second->position();
  collect_receivers(from, origin, receivers_);
  for (const NodeId id : receivers_) {
    // Every receiver's envelope shares the one message object (refcount
    // bump, no copy of the serialized payload).
    deliver_later(Envelope{from, id, /*broadcast=*/true, clock_.now(), msg, origin});
  }
}

}  // namespace nwade::net
