#include "net/network.h"

#include <cassert>

namespace nwade::net {

Network::Network(EventQueue& queue, SimClock& clock, NetworkConfig config)
    : queue_(queue), clock_(clock), config_(config), rng_(config.seed) {}

void Network::add_node(Node* node) {
  assert(node != nullptr);
  nodes_[node->node_id()] = node;
}

void Network::remove_node(NodeId id) { nodes_.erase(id); }

bool Network::in_range(NodeId a, NodeId b) const {
  const auto ita = nodes_.find(a);
  const auto itb = nodes_.find(b);
  if (ita == nodes_.end() || itb == nodes_.end()) return false;
  return ita->second->position().distance_to(itb->second->position()) <=
         config_.comm_radius_m;
}

void Network::deliver_later(Envelope env) {
  stats_.packets_sent++;
  stats_.bytes_sent += env.msg->wire_size();
  stats_.packets_by_kind[env.msg->kind()]++;

  if (config_.loss_probability > 0 && rng_.chance(config_.loss_probability)) {
    stats_.packets_dropped++;
    return;
  }
  const Tick arrival = clock_.now() + config_.latency_ms;
  queue_.schedule_at(arrival, [this, env = std::move(env)]() {
    // The receiver may have left the intersection (deregistered) in flight.
    const auto it = nodes_.find(env.to);
    if (it == nodes_.end()) return;
    stats_.packets_delivered++;
    it->second->on_message(env);
  });
}

void Network::unicast(NodeId from, NodeId to, MessagePtr msg) {
  assert(msg != nullptr);
  if (!nodes_.contains(from) || !nodes_.contains(to)) return;
  if (!in_range(from, to)) {
    stats_.packets_out_of_range++;
    return;
  }
  deliver_later(Envelope{from, to, /*broadcast=*/false, clock_.now(), std::move(msg)});
}

void Network::broadcast(NodeId from, MessagePtr msg) {
  assert(msg != nullptr);
  const auto sender = nodes_.find(from);
  if (sender == nodes_.end()) return;
  const geom::Vec2 origin = sender->second->position();
  for (const auto& [id, node] : nodes_) {
    if (id == from) continue;
    if (node->position().distance_to(origin) > config_.comm_radius_m) continue;
    deliver_later(Envelope{from, id, /*broadcast=*/true, clock_.now(), msg});
  }
}

}  // namespace nwade::net
