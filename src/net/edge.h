// Inter-shard boundary link for sim::Grid (docs/GRID.md).
//
// A grid edge connects two adjacent intersections. Two lanes share the link:
//
//  * the RELIABLE lane carries vehicle handoffs. A road does not lose cars,
//    so this lane never drops — an outage window DEFERS delivery past the
//    window's end instead (the vehicle sits at the region boundary until the
//    link heals).
//  * the LOSSY lane carries cross-IM gossip datagrams (blacklist snapshots).
//    These see the usual V2X imperfections — Gilbert–Elliott burst loss and
//    outage blackholes — and senders compensate by resending cumulative
//    snapshots (imports are idempotent), giving bounded propagation delay in
//    expectation rather than per-packet reliability.
//
// Both lanes draw from the channel's own Rng, so a grid's edge randomness is
// independent of every shard-internal stream, and delivery times are a pure
// function of (edge seed, send sequence) — never of thread count.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "util/bytes.h"
#include "util/rng.h"
#include "util/types.h"

namespace nwade::net {

/// A scheduled link outage: during [from, until) the edge is dark.
struct EdgeOutage {
  Tick from{0};
  Tick until{0};
};

/// Per-edge fault/latency model. Defaults: ideal 30 ms link, no loss.
struct EdgeFaultConfig {
  Duration base_latency_ms{30};
  /// Uniform extra delay in [0, jitter_ms], drawn per packet (both lanes).
  Duration jitter_ms{0};
  // Gilbert–Elliott burst loss for the lossy lane; same parameterization as
  // net::FaultProfile (stationary loss = ge_loss_bad * p/(p+r)). Enabled
  // when ge_p_good_to_bad > 0.
  double ge_p_good_to_bad{0.0};
  double ge_p_bad_to_good{0.25};
  double ge_loss_good{0.0};
  double ge_loss_bad{1.0};
  std::vector<EdgeOutage> outages;

  bool burst_loss_enabled() const { return ge_p_good_to_bad > 0.0; }
  bool down_at(Tick t) const {
    for (const EdgeOutage& o : outages) {
      if (t >= o.from && t < o.until) return true;
    }
    return false;
  }
};

/// One directed inter-shard link. Stateless config + a private Rng and the
/// burst-loss Markov state; the owning Grid holds the pending queues.
class EdgeChannel {
 public:
  EdgeChannel(EdgeFaultConfig config, Rng rng)
      : config_(std::move(config)), rng_(rng) {}

  /// Reliable lane: delivery tick for a handoff sent at `send_t`. Never
  /// drops; outage windows covering the send defer it to the window's end
  /// before latency is applied (re-checked until the send instant is clear).
  Tick reliable_delivery_at(Tick send_t);

  /// Lossy lane: delivery tick for a gossip datagram, or nullopt when the
  /// packet is lost (outage blackhole or burst loss).
  std::optional<Tick> lossy_delivery_at(Tick send_t);

  struct Stats {
    std::uint64_t handoffs{0};        ///< reliable-lane sends
    std::uint64_t deferred{0};        ///< handoffs delayed by an outage
    std::uint64_t gossip_sent{0};     ///< lossy-lane sends
    std::uint64_t gossip_dropped{0};  ///< lossy-lane losses
  };
  const Stats& stats() const { return stats_; }

  /// Serializes the Rng position, burst-loss state, and stats. The config is
  /// NOT part of the wire form — the owner reconstructs it (it is part of the
  /// grid's own config section) and must restore onto a channel built with
  /// the identical config.
  void checkpoint_save(ByteWriter& w) const;
  bool checkpoint_restore(ByteReader& r);

 private:
  Duration latency_draw();

  EdgeFaultConfig config_;
  Rng rng_;
  bool ge_bad_{false};
  Stats stats_;
};

}  // namespace nwade::net
