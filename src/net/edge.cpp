#include "net/edge.h"

namespace nwade::net {

Duration EdgeChannel::latency_draw() {
  Duration latency = config_.base_latency_ms;
  // Draw only when jitter is enabled so a zero-fault edge consumes no
  // randomness (same idiom as the node-level fault layer).
  if (config_.jitter_ms > 0) {
    latency += static_cast<Duration>(
        rng_.uniform_int(0, static_cast<std::int64_t>(config_.jitter_ms)));
  }
  return latency;
}

Tick EdgeChannel::reliable_delivery_at(Tick send_t) {
  ++stats_.handoffs;
  Tick t = send_t;
  // Defer past every outage window covering the (possibly already deferred)
  // send instant. Windows may abut or overlap; iterate to a fixed point.
  bool deferred = false;
  for (bool moved = true; moved;) {
    moved = false;
    for (const EdgeOutage& o : config_.outages) {
      if (t >= o.from && t < o.until) {
        t = o.until;
        moved = true;
        deferred = true;
      }
    }
  }
  if (deferred) ++stats_.deferred;
  return t + latency_draw();
}

std::optional<Tick> EdgeChannel::lossy_delivery_at(Tick send_t) {
  ++stats_.gossip_sent;
  if (config_.down_at(send_t)) {
    ++stats_.gossip_dropped;
    return std::nullopt;
  }
  bool lost = false;
  if (config_.burst_loss_enabled()) {
    const double p_loss = ge_bad_ ? config_.ge_loss_bad : config_.ge_loss_good;
    lost = rng_.chance(p_loss);
    // Advance the Markov chain once per packet, after the loss draw.
    if (ge_bad_) {
      if (rng_.chance(config_.ge_p_bad_to_good)) ge_bad_ = false;
    } else {
      if (rng_.chance(config_.ge_p_good_to_bad)) ge_bad_ = true;
    }
  }
  if (lost) {
    ++stats_.gossip_dropped;
    return std::nullopt;
  }
  return send_t + latency_draw();
}

void EdgeChannel::checkpoint_save(ByteWriter& w) const {
  const Rng::State st = rng_.state();
  for (const std::uint64_t word : st.s) w.u64(word);
  w.u64(st.seed);
  w.u8(ge_bad_ ? 1 : 0);
  w.u64(stats_.handoffs);
  w.u64(stats_.deferred);
  w.u64(stats_.gossip_sent);
  w.u64(stats_.gossip_dropped);
}

bool EdgeChannel::checkpoint_restore(ByteReader& r) {
  Rng::State st;
  for (std::uint64_t& word : st.s) word = r.u64();
  st.seed = r.u64();
  ge_bad_ = r.u8() != 0;
  stats_.handoffs = r.u64();
  stats_.deferred = r.u64();
  stats_.gossip_sent = r.u64();
  stats_.gossip_dropped = r.u64();
  if (!r.ok()) return false;
  rng_.set_state(st);
  return true;
}

}  // namespace nwade::net
