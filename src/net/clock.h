// Deterministic discrete-event simulation kernel.
//
// The whole NWADE evaluation runs on simulated time: the physics loop steps
// the world at a fixed cadence while network deliveries and timers fire as
// discrete events in between. Single-threaded by design — determinism beats
// parallelism for reproducing the paper's tables.
#pragma once

#include <functional>
#include <queue>
#include <vector>

#include "util/types.h"

namespace nwade::net {

/// Monotonic simulated clock owned by the event loop.
class SimClock {
 public:
  Tick now() const { return now_; }
  void advance_to(Tick t) {
    if (t > now_) now_ = t;
  }

 private:
  Tick now_{0};
};

/// Time-ordered event queue. Events scheduled for the same tick fire in
/// insertion order (stable), which keeps runs reproducible.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `fn` at absolute time `when` (>= now). Returns the sequence
  /// number assigned to the event — same-tick events fire in sequence order,
  /// so the pair (when, seq) pins an event's exact position in the run.
  std::uint64_t schedule_at(Tick when, Callback fn) {
    const std::uint64_t seq = seq_++;
    events_.push(Event{when, seq, std::move(fn)});
    return seq;
  }

  // --- checkpoint/restore hooks (sim/checkpoint) ----------------------------
  //
  // A checkpoint cannot serialize closures, so each owner (Network, ImNode)
  // records its own pending events' (when, seq) pairs and re-schedules fresh
  // closures at exactly those coordinates on restore. The three hooks below
  // exist only for that protocol; simulation code must use schedule_at.

  /// Re-inserts an event at an exact historical (when, seq) position without
  /// consuming a new sequence number. The caller guarantees `seq` was
  /// assigned to a still-pending event before the checkpoint.
  void schedule_at_seq(Tick when, std::uint64_t seq, Callback fn) {
    events_.push(Event{when, seq, std::move(fn)});
  }

  /// Consumes and returns the next sequence number without scheduling
  /// anything. Resume-mode construction "burns" the numbers of events that
  /// had already fired before the checkpoint so later allocations line up.
  std::uint64_t skip_seq() { return seq_++; }

  /// Next sequence number that schedule_at would assign.
  std::uint64_t next_seq() const { return seq_; }

  /// Forces the allocation counter — the final step of a queue restore.
  void set_next_seq(std::uint64_t seq) { seq_ = seq; }

  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

  /// Time of the earliest pending event; kTickMax when empty.
  Tick next_time() const { return events_.empty() ? kTickMax : events_.top().when; }

  /// Runs all events with time <= `until`, advancing `clock` as it goes.
  /// Events scheduled during execution are honored if they fall in range.
  void run_until(Tick until, SimClock& clock) {
    while (!events_.empty() && events_.top().when <= until) {
      // std::priority_queue::top returns const&; the event must be copied out
      // before pop. The callback is moved via const_cast — safe because the
      // element is removed immediately after.
      Event ev = std::move(const_cast<Event&>(events_.top()));
      events_.pop();
      clock.advance_to(ev.when);
      ev.fn();
    }
    clock.advance_to(until);
  }

 private:
  struct Event {
    Tick when;
    std::uint64_t seq;
    Callback fn;

    bool operator>(const Event& o) const {
      if (when != o.when) return when > o.when;
      return seq > o.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  std::uint64_t seq_{0};
};

}  // namespace nwade::net
