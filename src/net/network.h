// Simulated V2V/V2I network.
//
// Models the paper's communication assumptions directly: a fixed propagation
// latency (default 30 ms), a maximum communication radius (default 1500 ft =
// 457 m), optional random packet loss, and per-message-kind packet accounting
// (the data behind Fig. 7's network-load experiment). On top of that sits an
// optional fault-injection layer (net/fault.h): bursty Gilbert–Elliott loss,
// latency jitter (reordering), duplication, per-link drop rules, and node
// outages — all off by default.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/bytes.h"

#include "geom/spatial_hash.h"
#include "geom/vec2.h"
#include "net/clock.h"
#include "net/fault.h"
#include "util/rng.h"
#include "util/telemetry.h"
#include "util/trace.h"
#include "util/types.h"

namespace nwade::net {

/// Base class for anything sent over the simulated network. Concrete message
/// types live in the protocol layer; the network only needs a kind string for
/// accounting and an approximate wire size.
class Message {
 public:
  virtual ~Message() = default;
  /// Stable message-kind label, e.g. "block_broadcast".
  virtual std::string kind() const = 0;
  /// Approximate serialized size in bytes (for load accounting).
  virtual std::size_t wire_size() const = 0;
};

using MessagePtr = std::shared_ptr<const Message>;

/// A delivered message with its routing metadata.
struct Envelope {
  NodeId from;
  NodeId to;  ///< receiver; for broadcasts, the specific recipient
  bool broadcast{false};
  Tick sent_at{0};
  MessagePtr msg;
  /// Sender position at emission time; the delivery-time range check measures
  /// the receiver's distance from here (last for aggregate-init compatibility).
  geom::Vec2 origin{};
};

/// A network endpoint (vehicle or intersection manager).
class Node {
 public:
  virtual ~Node() = default;
  virtual NodeId node_id() const = 0;
  /// Current physical position; used for radius checks.
  virtual geom::Vec2 position() const = 0;
  virtual void on_message(const Envelope& env) = 0;
};

/// Network configuration (paper defaults).
struct NetworkConfig {
  Duration latency_ms{30};
  double comm_radius_m{feet_to_meters(1500.0)};
  /// Uniform (memoryless) per-packet loss; the paper's original loss knob.
  /// For bursty loss, jitter, duplication, link rules, and outages see
  /// `fault` (docs/FAULT_MODEL.md) — both layers compose.
  double loss_probability{0.0};
  std::uint64_t seed{1};
  /// Fault-injection profile; all features default to off.
  FaultProfile fault;
  /// true = broadcast range-checks every node with the original brute-force
  /// loop instead of pre-filtering through the uniform-grid index. Kept
  /// purely as the equivalence/bench baseline (same pattern as
  /// SchedulerConfig::linear_reference_scan); both paths deliver to the
  /// identical receiver set in the identical order.
  bool quadratic_reference{false};
  /// Metrics registry backing the traffic accounting (net.* counters and
  /// latency histograms). nullptr = the network owns a private registry, so
  /// standalone construction keeps working and stats() is always live.
  util::telemetry::Registry* registry{nullptr};
  /// Event tracer for the fault-injection timeline (drop/outage/duplicate
  /// instants). nullptr or disabled = zero-cost skip.
  util::trace::Tracer* tracer{nullptr};
};

/// Cumulative traffic statistics; one packet = one (sender, receiver) copy.
/// Since the telemetry layer landed this is a *view* rebuilt on demand from
/// the registry-backed counters (`net.*`), value-identical to the old
/// hand-rolled accounting — per-kind entries appear exactly when the old
/// code would have created them, which is what keeps trace_golden byte-stable.
struct NetworkStats {
  std::uint64_t packets_sent{0};      ///< receiver copies handed to the medium
  std::uint64_t packets_delivered{0};
  std::uint64_t packets_dropped{0};   ///< lost to loss models or link rules
  std::uint64_t packets_out_of_range{0};  ///< at send or at delivery time
  std::uint64_t packets_duplicated{0};    ///< extra copies injected
  std::uint64_t packets_lost_outage{0};   ///< sender or receiver was dark
  std::uint64_t bytes_sent{0};
  std::unordered_map<std::string, std::uint64_t> packets_by_kind;
  std::unordered_map<std::string, std::uint64_t> bytes_by_kind;
  /// Lost copies per kind (loss models, link rules, and outages combined);
  /// lets the fault benches attribute which message classes the channel eats.
  std::unordered_map<std::string, std::uint64_t> dropped_by_kind;
};

/// Simulated broadcast medium with latency, radius, and loss.
class Network {
 public:
  Network(EventQueue& queue, SimClock& clock, NetworkConfig config);

  void add_node(Node* node);
  void remove_node(NodeId id);
  bool has_node(NodeId id) const { return nodes_.contains(id); }

  /// Sends to one receiver. Silently dropped if out of range or lost.
  void unicast(NodeId from, NodeId to, MessagePtr msg);

  /// Sends to every registered node within the communication radius of the
  /// sender (excluding the sender itself).
  void broadcast(NodeId from, MessagePtr msg);

  /// Rebuilds the stats view from the registry counters and returns it.
  /// The reference stays valid until the next stats()/reset_stats() call.
  const NetworkStats& stats() const;
  void reset_stats();

  const NetworkConfig& config() const { return config_; }

  // --- checkpoint/restore (sim/checkpoint) ----------------------------------
  //
  // The network layer cannot name protocol message types, so the caller
  // supplies the codec: `encode` writes one message (kind + payload),
  // `decode` reads one back or returns nullptr on malformed input.
  using MessageEncoder = std::function<void(ByteWriter&, const Message&)>;
  using MessageDecoder = std::function<MessagePtr(ByteReader&)>;

  /// Serializes the channel state a resumed run needs to stay bit-exact:
  /// the RNG position, the Gilbert–Elliott state, the set of message kinds
  /// already seen (stats() shape), and every in-flight delivery with its
  /// exact event-queue (when, seq) coordinates.
  void checkpoint_save(ByteWriter& w, const MessageEncoder& encode) const;

  /// Restores onto a freshly constructed network with the same config.
  /// Re-schedules each saved delivery at its original queue position via
  /// EventQueue::schedule_at_seq. Returns false on malformed input.
  bool checkpoint_restore(ByteReader& r, const MessageDecoder& decode);

  /// Number of in-flight deliveries (tests/diagnostics).
  std::size_t pending_deliveries() const { return pending_.size(); }

  /// Visits every in-flight delivery whose arrival tick is <= `until`, in
  /// ascending delivery-id (== scheduling) order. The world's batch-verify
  /// prefetch uses this to see which signed payloads are about to be
  /// delivered this step; read-only, and the envelopes may still be dropped
  /// at delivery time (outages, live range check), so callers must treat
  /// the visit as a superset of what receivers will actually process.
  template <typename Fn>
  void for_each_pending_due(Tick until, Fn&& fn) const {
    for (const auto& [id, p] : pending_) {
      if (p.arrival <= until) fn(p.env);
    }
  }

 private:
  /// Cached per-kind counter handles; looked up once per kind, then every
  /// packet copy of that kind is a few relaxed fetch_adds.
  struct KindHandles {
    util::telemetry::Counter packets;
    util::telemetry::Counter bytes;
    util::telemetry::Counter dropped;
    util::telemetry::Counter duplicated;
    util::telemetry::Histogram latency_ms;
  };
  KindHandles& kind_handles(const std::string& kind);

  /// One in-flight packet copy, parked here (not in the event closure) so a
  /// checkpoint can serialize it. Keyed by a network-local delivery id whose
  /// ascending order matches event-queue sequence order.
  struct Pending {
    std::uint64_t queue_seq{0};
    Tick arrival{0};
    Envelope env;
    util::telemetry::Histogram latency_ms;
  };

  void deliver_later(Envelope env);
  /// Runs the delivery parked under `id` (outage check, live range check,
  /// receiver callback) and retires the entry.
  void deliver_pending(std::uint64_t id);
  bool in_range(NodeId a, NodeId b) const;
  /// One loss decision for a packet copy: uniform loss, then the
  /// Gilbert–Elliott chain (advanced one step per copy), then link rules.
  bool packet_lost(const Envelope& env);
  void count_drop(const Envelope& env);
  /// Moves the envelope into the event queue (one shared_ptr refcount bump,
  /// no payload copy): fan-out messages are immutable once sent, so every
  /// receiver's envelope aliases the same serialized message object.
  void schedule_delivery(Envelope env, Tick arrival,
                        util::telemetry::Histogram latency_ms);
  /// Fills `out` with the ids of every registered node (sender excluded)
  /// whose *current* position is within the communication radius of
  /// `origin`, ascending. Grid-accelerated unless quadratic_reference.
  void collect_receivers(NodeId from, geom::Vec2 origin,
                         std::vector<NodeId>& out);
  void rebuild_grid();

  EventQueue& queue_;
  SimClock& clock_;
  NetworkConfig config_;
  Rng rng_;
  std::unordered_map<NodeId, Node*> nodes_;
  /// Current membership in ascending id order. Broadcast receivers are
  /// enumerated through this vector, NOT through nodes_: unordered_map
  /// iteration order is a function of the table's insert/erase/rehash
  /// history, which a checkpoint-restored network cannot replay — and under
  /// a lossy channel the enumeration order decides which receiver copies the
  /// per-packet loss draws eat, so it must be a pure function of membership.
  std::vector<NodeId> sorted_ids_;

  /// Private registry used when the config injects none (standalone nets in
  /// tests/benches). Must precede the handles below.
  std::unique_ptr<util::telemetry::Registry> owned_registry_;
  util::telemetry::Registry* registry_{nullptr};
  util::trace::Tracer* tracer_{nullptr};
  util::telemetry::Counter sent_;
  util::telemetry::Counter delivered_;
  util::telemetry::Counter dropped_;
  util::telemetry::Counter out_of_range_;
  util::telemetry::Counter duplicated_;
  util::telemetry::Counter lost_outage_;
  util::telemetry::Counter bytes_sent_;
  util::telemetry::Gauge nodes_gauge_;
  std::unordered_map<std::string, KindHandles> kind_handles_;
  mutable NetworkStats stats_view_;

  /// In-flight deliveries, ascending delivery id == scheduling order.
  std::map<std::uint64_t, Pending> pending_;
  std::uint64_t next_delivery_id_{0};

  bool ge_bad_{false};  ///< Gilbert–Elliott channel state

  // Broadcast-scan index: node positions snapshotted at most once per
  // (tick, membership change). Queries pad the radius by kGridSlackM, so a
  // node that moved since the snapshot (mid-step broadcasts) still shows up
  // as a candidate; the exact range check always runs on live positions.
  geom::SpatialHash grid_{64.0};
  std::vector<NodeId> receivers_;         ///< reused broadcast receiver list
  std::vector<NodeId> grid_ids_;          ///< grid index -> node id
  std::vector<std::size_t> grid_scratch_; ///< reused candidate buffer
  std::unordered_set<NodeId> candidates_; ///< reused candidate id set
  Tick grid_built_at_{-1};
  std::uint64_t membership_epoch_{0};     ///< bumped by add/remove_node
  std::uint64_t grid_epoch_{~0ULL};       ///< membership epoch at build time
};

}  // namespace nwade::net
