// Canonical byte serialization used for hashing and signing.
//
// Every structure that enters a hash, Merkle tree, or signature is serialized
// through ByteWriter with fixed-width little-endian encodings, so two parties
// always agree on the exact bytes being authenticated.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace nwade {

using Bytes = std::vector<std::uint8_t>;

/// Appends fixed-width little-endian primitives to a growing buffer.
class ByteWriter {
 public:
  ByteWriter() = default;

  /// Adopts `buf` as the backing store, cleared but keeping its capacity.
  /// Pairs with take() to recycle one buffer across serializations instead
  /// of growing a fresh vector each time.
  explicit ByteWriter(Bytes buf) : buf_(std::move(buf)) { buf_.clear(); }

  /// Pre-sizes the buffer for a known wire size so appends never reallocate.
  void reserve(std::size_t n) { buf_.reserve(n); }

  void u8(std::uint8_t v) { buf_.push_back(v); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  /// Doubles are serialized via their IEEE-754 bit pattern; all parties run
  /// the same arithmetic so patterns agree bit-for-bit.
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }

  /// Length-prefixed raw bytes.
  void bytes(std::span<const std::uint8_t> data) {
    u32(static_cast<std::uint32_t>(data.size()));
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  /// Length-prefixed UTF-8 string.
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  const Bytes& data() const { return buf_; }
  Bytes take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// Reads back what ByteWriter wrote. Out-of-bounds reads set a sticky error
/// flag and return zero values instead of invoking UB.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() {
    if (!ensure(1)) return 0;
    return data_[pos_++];
  }

  std::uint32_t u32() {
    if (!ensure(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    return v;
  }

  std::uint64_t u64() {
    if (!ensure(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    return v;
  }

  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  Bytes bytes() {
    const std::uint32_t n = u32();
    if (!ensure(n)) return {};
    const auto first = data_.begin() + static_cast<std::ptrdiff_t>(pos_);
    Bytes out(first, first + static_cast<std::ptrdiff_t>(n));
    pos_ += n;
    return out;
  }

  std::string str() {
    const Bytes b = bytes();
    return std::string(b.begin(), b.end());
  }

  /// Skips `n` bytes; sets the error flag if fewer remain.
  void skip(std::size_t n) {
    if (ensure(n)) pos_ += n;
  }

  /// A view of the next `n` bytes without copying; empty (and the error flag
  /// set) when fewer remain. The view aliases the reader's backing storage.
  std::span<const std::uint8_t> view(std::size_t n) {
    if (!ensure(n)) return {};
    const auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  bool ok() const { return ok_; }
  bool at_end() const { return pos_ == data_.size(); }
  /// Bytes left to read. Safe to call in any state.
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  // Overflow-safe bounds check: `pos_ <= data_.size()` is an invariant, so
  // comparing `n` against the remaining span cannot wrap the way
  // `pos_ + n > size` would for attacker-controlled 32-bit lengths near
  // SIZE_MAX. Errors are sticky: once tripped, every later read fails too.
  bool ensure(std::size_t n) {
    if (!ok_) return false;
    if (n > data_.size() - pos_) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_{0};
  bool ok_{true};
};

/// Hex-encodes bytes (lowercase), for logs and test expectations.
std::string to_hex(std::span<const std::uint8_t> data);

/// Parses a hex string; returns empty on malformed input of odd length or
/// non-hex characters.
Bytes from_hex(std::string_view hex);

}  // namespace nwade
