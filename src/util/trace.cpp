#include "util/trace.h"

#include <cinttypes>
#include <cstdio>

namespace nwade::util::trace {

namespace detail {
std::atomic<int> g_active_tracers{0};
}  // namespace detail

Tracer::~Tracer() { set_enabled(false); }

Tracer& Tracer::process() {
  static Tracer instance;
  return instance;
}

void Tracer::set_enabled(bool on) {
  const bool was = enabled_.exchange(on, std::memory_order_relaxed);
  if (was == on) return;
  detail::g_active_tracers.fetch_add(on ? 1 : -1, std::memory_order_relaxed);
}

void Tracer::instant(const char* cat, const char* name, Tick ts_ms,
                     const char* arg_key, std::int64_t arg_value) {
  if (!enabled()) return;
  Event e;
  e.cat = cat;
  e.name = name;
  e.phase = 'i';
  e.ts_ms = ts_ms;
  e.arg_key = arg_key;
  e.arg_value = arg_value;
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(e);
}

void Tracer::complete(const char* cat, const char* name, Tick begin_ms,
                      Tick end_ms, double wall_us, const char* arg_key,
                      std::int64_t arg_value) {
  if (!enabled()) return;
  Event e;
  e.cat = cat;
  e.name = name;
  e.phase = 'X';
  e.ts_ms = begin_ms;
  e.dur_ms = end_ms >= begin_ms ? end_ms - begin_ms : 0;
  e.wall_us = wall_us;
  e.arg_key = arg_key;
  e.arg_value = arg_value;
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(e);
}

std::size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

std::vector<Event> Tracer::take() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Event> out;
  out.swap(events_);
  return out;
}

std::vector<Event> Tracer::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

namespace {

// JSON string escaping for names/categories. Event strings are literals in
// practice, but exports must never emit malformed JSON if one carries a
// quote or backslash.
void append_escaped(std::string& out, const char* s) {
  for (; *s; ++s) {
    const char c = *s;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

// One Chrome trace_event object. `ts`/`dur` are microseconds per the spec;
// sim ticks are milliseconds, hence the *1000.
void append_chrome_event(std::string& out, const Event& e, int pid,
                         bool include_wall) {
  char buf[160];
  out += "{\"cat\": \"";
  append_escaped(out, e.cat);
  out += "\", \"name\": \"";
  append_escaped(out, e.name);
  out += "\", \"ph\": \"";
  out += e.phase;
  std::snprintf(buf, sizeof(buf), "\", \"pid\": %d, \"tid\": 0, \"ts\": %" PRId64,
                pid, static_cast<std::int64_t>(e.ts_ms) * 1000);
  out += buf;
  if (e.phase == 'X') {
    std::snprintf(buf, sizeof(buf), ", \"dur\": %" PRId64,
                  static_cast<std::int64_t>(e.dur_ms) * 1000);
    out += buf;
  } else {
    out += ", \"s\": \"t\"";  // thread-scoped instant
  }
  const bool has_wall = include_wall && e.wall_us >= 0;
  if (e.arg_key != nullptr || has_wall) {
    out += ", \"args\": {";
    bool first = true;
    if (e.arg_key != nullptr) {
      out += "\"";
      append_escaped(out, e.arg_key);
      std::snprintf(buf, sizeof(buf), "\": %" PRId64, e.arg_value);
      out += buf;
      first = false;
    }
    if (has_wall) {
      if (!first) out += ", ";
      std::snprintf(buf, sizeof(buf), "\"wall_us\": %.3f", e.wall_us);
      out += buf;
    }
    out += "}";
  }
  out += "}";
}

// One JSONL record (flat; line-oriented consumers prefer no nesting).
void append_jsonl_event(std::string& out, const Event& e, int pid,
                        bool include_wall) {
  char buf[160];
  out += "{\"pid\": ";
  std::snprintf(buf, sizeof(buf), "%d", pid);
  out += buf;
  out += ", \"cat\": \"";
  append_escaped(out, e.cat);
  out += "\", \"name\": \"";
  append_escaped(out, e.name);
  out += "\", \"ph\": \"";
  out += e.phase;
  std::snprintf(buf, sizeof(buf), "\", \"ts_ms\": %" PRId64,
                static_cast<std::int64_t>(e.ts_ms));
  out += buf;
  if (e.phase == 'X') {
    std::snprintf(buf, sizeof(buf), ", \"dur_ms\": %" PRId64,
                  static_cast<std::int64_t>(e.dur_ms));
    out += buf;
  }
  if (e.arg_key != nullptr) {
    out += ", \"";
    append_escaped(out, e.arg_key);
    std::snprintf(buf, sizeof(buf), "\": %" PRId64, e.arg_value);
    out += buf;
  }
  if (include_wall && e.wall_us >= 0) {
    std::snprintf(buf, sizeof(buf), ", \"wall_us\": %.3f", e.wall_us);
    out += buf;
  }
  out += "}\n";
}

}  // namespace

std::string Tracer::chrome_json(bool include_wall) const {
  return chrome_trace_json({events()}, {"trace"}, include_wall);
}

std::string Tracer::jsonl(bool include_wall) const {
  return jsonl_trace({events()}, include_wall);
}

std::string chrome_trace_json(const std::vector<std::vector<Event>>& streams,
                              const std::vector<std::string>& stream_names,
                              bool include_wall) {
  std::string out = "{\"traceEvents\": [\n";
  bool first = true;
  for (std::size_t pid = 0; pid < streams.size(); ++pid) {
    if (pid < stream_names.size()) {
      if (!first) out += ",\n";
      first = false;
      out += "{\"cat\": \"__metadata\", \"name\": \"process_name\", "
             "\"ph\": \"M\", \"pid\": ";
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%d", static_cast<int>(pid));
      out += buf;
      out += ", \"tid\": 0, \"args\": {\"name\": \"";
      append_escaped(out, stream_names[pid].c_str());
      out += "\"}}";
    }
    for (const Event& e : streams[pid]) {
      if (!first) out += ",\n";
      first = false;
      append_chrome_event(out, e, static_cast<int>(pid), include_wall);
    }
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

std::string jsonl_trace(const std::vector<std::vector<Event>>& streams,
                        bool include_wall) {
  std::string out;
  for (std::size_t pid = 0; pid < streams.size(); ++pid) {
    for (const Event& e : streams[pid]) {
      append_jsonl_event(out, e, static_cast<int>(pid), include_wall);
    }
  }
  return out;
}

}  // namespace nwade::util::trace
