// Heap-allocation counters behind the NWADE_COUNT_ALLOCS build option.
//
// When the tree is configured with -DNWADE_COUNT_ALLOCS=ON, the global
// operator new/delete (every form: array, nothrow, aligned, sized) are
// replaced with counting wrappers, and the accessors below report how many
// allocations the calling thread (or the whole process) has performed. This
// is what makes "the hot path does not allocate" an enforceable property
// instead of a code-review claim: the `alloc`-labeled tests meter a warmed
// steady-state operation and assert the delta is zero, and the benches
// publish an `allocs_per_op` column in their nwade-bench-v1 envelopes.
//
// In the default build (option OFF) nothing is replaced, the accessors
// return 0, and there is zero overhead — the counters exist only in builds
// that asked for them.
#pragma once

#include <cstdint>

namespace nwade::util {

/// True when the binary was built with -DNWADE_COUNT_ALLOCS=ON and global
/// operator new/delete route through the counters below. Gate tests on this
/// (skip when false) so the default build stays green.
bool alloc_counting_enabled();

/// Heap allocations performed by the calling thread since it started.
/// Meter a steady-state operation as the delta across it (single-threaded:
/// nothing else can perturb a thread-local count). Always 0 when off.
std::uint64_t thread_alloc_count();

/// Heap deallocations by the calling thread. Always 0 when off.
std::uint64_t thread_free_count();

/// Process-wide allocation/deallocation totals (relaxed atomics; exact once
/// other threads are quiescent). Always 0 when off.
std::uint64_t process_alloc_count();
std::uint64_t process_free_count();

}  // namespace nwade::util
