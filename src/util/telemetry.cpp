#include "util/telemetry.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "util/alloc_stats.h"

namespace nwade::util::telemetry {

namespace detail {

void ShardedCell::add(std::int64_t delta) {
  shards[this_thread_shard()].v.fetch_add(delta, std::memory_order_relaxed);
}

std::int64_t ShardedCell::sum() const {
  std::int64_t total = 0;
  for (const ShardCell& s : shards) {
    total += s.v.load(std::memory_order_relaxed);
  }
  return total;
}

void ShardedCell::reset() {
  for (ShardCell& s : shards) s.v.store(0, std::memory_order_relaxed);
}

int this_thread_shard() {
  // Round-robin assignment at first use per thread: cheap, stable for the
  // thread's lifetime, and spreads WorkerPool threads across cells without
  // hashing thread ids.
  static std::atomic<int> next{0};
  thread_local const int shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

}  // namespace detail

HistogramBuckets HistogramBuckets::exponential_ms(std::int64_t max_edge) {
  HistogramBuckets b;
  b.upper_edges.push_back(0);
  for (std::int64_t edge = 1; edge <= max_edge; edge *= 2) {
    b.upper_edges.push_back(edge);
  }
  return b;
}

void Histogram::observe(std::int64_t value) {
  if (impl_ == nullptr) return;
  // First bucket whose upper edge >= value; past the last edge -> overflow.
  std::size_t lo = 0;
  std::size_t hi = impl_->edges.size();
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (impl_->edges[mid] < value) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  impl_->bucket_counts[lo].add(1);
  impl_->count.add(1);
  impl_->sum.add(value);
}

std::int64_t Histogram::count() const {
  return impl_ != nullptr ? impl_->count.sum() : 0;
}

std::int64_t Histogram::sum() const {
  return impl_ != nullptr ? impl_->sum.sum() : 0;
}

void Histogram::reset() {
  if (impl_ == nullptr) return;
  for (detail::ShardedCell& b : impl_->bucket_counts) b.reset();
  impl_->count.reset();
  impl_->sum.reset();
}

Registry& Registry::process() {
  static Registry instance;
  return instance;
}

Counter Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<detail::ShardedCell>();
  return Counter(slot.get());
}

Gauge Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<std::atomic<std::int64_t>>(0);
  return Gauge(slot.get());
}

Histogram Registry::histogram(const std::string& name,
                              const HistogramBuckets& buckets) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<detail::HistogramImpl>();
    slot->edges = buckets.upper_edges;
    slot->bucket_counts =
        std::vector<detail::ShardedCell>(buckets.upper_edges.size() + 1);
  }
  return Histogram(slot.get());
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, cell] : counters_) {
    snap.counters[name] = cell->sum();
  }
  for (const auto& [name, cell] : gauges_) {
    snap.gauges[name] = cell->load(std::memory_order_relaxed);
  }
  for (const auto& [name, impl] : histograms_) {
    MetricsSnapshot::HistogramData h;
    h.upper_edges = impl->edges;
    h.bucket_counts.reserve(impl->bucket_counts.size());
    for (const detail::ShardedCell& b : impl->bucket_counts) {
      h.bucket_counts.push_back(b.sum());
    }
    h.count = impl->count.sum();
    h.sum = impl->sum.sum();
    snap.histograms[name] = std::move(h);
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, cell] : counters_) cell->reset();
  for (auto& [name, cell] : gauges_) {
    cell->store(0, std::memory_order_relaxed);
  }
  for (auto& [name, impl] : histograms_) {
    for (detail::ShardedCell& b : impl->bucket_counts) b.reset();
    impl->count.reset();
    impl->sum.reset();
  }
}

void Registry::restore(const MetricsSnapshot& snap) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, cell] : counters_) cell->reset();
  for (auto& [name, cell] : gauges_) cell->store(0, std::memory_order_relaxed);
  for (auto& [name, impl] : histograms_) {
    for (detail::ShardedCell& b : impl->bucket_counts) b.reset();
    impl->count.reset();
    impl->sum.reset();
  }
  for (const auto& [name, v] : snap.counters) {
    auto& slot = counters_[name];
    if (slot == nullptr) slot = std::make_unique<detail::ShardedCell>();
    slot->shards[0].v.store(v, std::memory_order_relaxed);
  }
  for (const auto& [name, v] : snap.gauges) {
    auto& slot = gauges_[name];
    if (slot == nullptr) slot = std::make_unique<std::atomic<std::int64_t>>(0);
    slot->store(v, std::memory_order_relaxed);
  }
  for (const auto& [name, h] : snap.histograms) {
    auto& slot = histograms_[name];
    if (slot == nullptr) slot = std::make_unique<detail::HistogramImpl>();
    // Replace the shape in place: the impl's address (what handles cache)
    // stays stable even when the edge vector changes.
    slot->edges = h.upper_edges;
    slot->bucket_counts =
        std::vector<detail::ShardedCell>(h.upper_edges.size() + 1);
    const std::size_t n =
        std::min(slot->bucket_counts.size(), h.bucket_counts.size());
    for (std::size_t i = 0; i < n; ++i) {
      slot->bucket_counts[i].shards[0].v.store(h.bucket_counts[i],
                                               std::memory_order_relaxed);
    }
    slot->count.shards[0].v.store(h.count, std::memory_order_relaxed);
    slot->sum.shards[0].v.store(h.sum, std::memory_order_relaxed);
  }
}

std::int64_t MetricsSnapshot::HistogramData::quantile_upper_edge(
    int percent) const {
  // Total of the bucketed counts (defensive: trust the buckets over `count`
  // after a shape-mismatched merge folded scalar totals without buckets).
  std::int64_t total = 0;
  for (const std::int64_t c : bucket_counts) total += c;
  if (total <= 0 || percent <= 0) return -1;
  // 1-based rank of the requested percentile, ceil'd so p99 of 100
  // observations is the 99th, not the 98.01st truncated to the 98th.
  const std::int64_t rank =
      (total * static_cast<std::int64_t>(percent) + 99) / 100;
  std::int64_t seen = 0;
  for (std::size_t i = 0; i < bucket_counts.size(); ++i) {
    seen += bucket_counts[i];
    if (seen >= rank) {
      // Past the last edge lies the +inf overflow bucket: the percentile is
      // only known to exceed the largest finite edge.
      return i < upper_edges.size() ? upper_edges[i] : -1;
    }
  }
  return -1;
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_int(std::string& out, std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out += buf;
}

void append_int_array(std::string& out, const std::vector<std::int64_t>& xs) {
  out += "[";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i) out += ", ";
    append_int(out, xs[i]);
  }
  out += "]";
}

void append_histogram(std::string& o,
                      const MetricsSnapshot::HistogramData& h) {
  o += "{\"upper_edges\": ";
  append_int_array(o, h.upper_edges);
  o += ", \"bucket_counts\": ";
  append_int_array(o, h.bucket_counts);
  o += ", \"count\": ";
  append_int(o, h.count);
  o += ", \"sum\": ";
  append_int(o, h.sum);
  // Integer-math percentile summary rows (bucket upper edges, -1 = empty or
  // overflow) so latency histograms read directly in frames and reports.
  o += ", \"p50\": ";
  append_int(o, h.quantile_upper_edge(50));
  o += ", \"p90\": ";
  append_int(o, h.quantile_upper_edge(90));
  o += ", \"p99\": ";
  append_int(o, h.quantile_upper_edge(99));
  o += "}";
}

template <typename Map, typename AppendValue>
void append_section(std::string& out, const char* title, const Map& map,
                    const std::string& pad, AppendValue&& append_value) {
  out += pad + "\"" + title + "\": {";
  bool first = true;
  for (const auto& [name, value] : map) {
    out += first ? "\n" : ",\n";
    first = false;
    out += pad + "  \"";
    append_escaped(out, name);
    out += "\": ";
    append_value(out, value);
  }
  if (!first) out += "\n" + pad;
  out += "}";
}

}  // namespace

std::string MetricsSnapshot::json(const std::string& indent) const {
  const std::string& pad = indent;
  std::string out = "{\n";
  append_section(out, "counters", counters, pad + "  ",
                 [](std::string& o, std::int64_t v) { append_int(o, v); });
  out += ",\n";
  append_section(out, "gauges", gauges, pad + "  ",
                 [](std::string& o, std::int64_t v) { append_int(o, v); });
  out += ",\n";
  append_section(out, "histograms", histograms, pad + "  ",
                 [](std::string& o, const HistogramData& h) {
                   append_histogram(o, h);
                 });
  out += "\n" + pad + "}";
  return out;
}

std::string MetricsSnapshot::json_compact() const {
  const auto append_compact_section = [](std::string& out, const char* title,
                                         const auto& map, auto&& append_value) {
    out += "\"" + std::string(title) + "\": {";
    bool first = true;
    for (const auto& [name, value] : map) {
      if (!first) out += ", ";
      first = false;
      out += "\"";
      append_escaped(out, name);
      out += "\": ";
      append_value(out, value);
    }
    out += "}";
  };
  std::string out = "{";
  append_compact_section(out, "counters", counters,
                         [](std::string& o, std::int64_t v) { append_int(o, v); });
  out += ", ";
  append_compact_section(out, "gauges", gauges,
                         [](std::string& o, std::int64_t v) { append_int(o, v); });
  out += ", ";
  append_compact_section(out, "histograms", histograms,
                         [](std::string& o, const HistogramData& h) {
                           append_histogram(o, h);
                         });
  out += "}";
  return out;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, v] : other.counters) counters[name] += v;
  for (const auto& [name, v] : other.gauges) gauges[name] = v;
  for (const auto& [name, h] : other.histograms) {
    auto it = histograms.find(name);
    if (it == histograms.end()) {
      histograms[name] = h;
      continue;
    }
    HistogramData& mine = it->second;
    if (mine.upper_edges != h.upper_edges) {
      // Incompatible shapes: keep ours, still fold the scalar totals so no
      // observation silently disappears.
      mine.count += h.count;
      mine.sum += h.sum;
      continue;
    }
    for (std::size_t i = 0; i < mine.bucket_counts.size() &&
                            i < h.bucket_counts.size();
         ++i) {
      mine.bucket_counts[i] += h.bucket_counts[i];
    }
    mine.count += h.count;
    mine.sum += h.sum;
  }
}

MetricsSnapshot MetricsSnapshot::diff(const MetricsSnapshot& prev) const {
  MetricsSnapshot d;
  for (const auto& [name, v] : counters) {
    const auto it = prev.counters.find(name);
    // A name the receiver has never seen is a change even at value 0 —
    // merge must reproduce this snapshot key-for-key, not just value-wise.
    if (it == prev.counters.end() || it->second != v) {
      d.counters[name] = v - (it != prev.counters.end() ? it->second : 0);
    }
  }
  for (const auto& [name, v] : gauges) {
    const auto it = prev.gauges.find(name);
    // A gauge that was never seen before is a change even at value 0: the
    // receiver must learn the name exists (merge is last-writer-wins, so the
    // absolute value rides along unchanged).
    if (it == prev.gauges.end() || it->second != v) d.gauges[name] = v;
  }
  for (const auto& [name, h] : histograms) {
    const auto it = prev.histograms.find(name);
    if (it == prev.histograms.end() || it->second.upper_edges != h.upper_edges) {
      // New histogram, or a shape change (possible across a registry
      // restore): a bucket-wise delta is meaningless, carry it whole.
      d.histograms[name] = h;
      continue;
    }
    const HistogramData& base = it->second;
    if (h.count == base.count && h.sum == base.sum &&
        h.bucket_counts == base.bucket_counts) {
      continue;
    }
    HistogramData delta;
    delta.upper_edges = h.upper_edges;
    delta.bucket_counts.resize(h.bucket_counts.size(), 0);
    for (std::size_t i = 0; i < h.bucket_counts.size(); ++i) {
      const std::int64_t b =
          i < base.bucket_counts.size() ? base.bucket_counts[i] : 0;
      delta.bucket_counts[i] = h.bucket_counts[i] - b;
    }
    delta.count = h.count - base.count;
    delta.sum = h.sum - base.sum;
    d.histograms[name] = std::move(delta);
  }
  return d;
}

void fold_alloc_stats(Registry& r) {
  if (!alloc_counting_enabled()) return;
  r.gauge("process.alloc.allocations")
      .set(static_cast<std::int64_t>(process_alloc_count()));
  r.gauge("process.alloc.frees")
      .set(static_cast<std::int64_t>(process_free_count()));
}

}  // namespace nwade::util::telemetry
