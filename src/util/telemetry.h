// Unified metrics registry: counters, gauges, and fixed-bucket histograms
// with a single deterministic snapshot/export path.
//
// Design rules, in the order they were chosen:
//
//   1. Determinism first. Every metric value is a 64-bit integer, and shard
//      merge is pure addition — commutative and associative — so a snapshot
//      is byte-identical no matter how work was spread across WorkerPool
//      threads. (Floating-point sums would depend on merge order.) Derived
//      ratios like cache hit rate are computed by consumers from the raw
//      integer parts.
//   2. Hot-path writes are wait-free. A Handle caches a pointer to a row of
//      kShards padded atomic cells; increment = one relaxed fetch_add on
//      the cell picked by a thread-local shard index. No lock, no hash
//      lookup, no allocation after the handle exists.
//   3. Registration is slow-path. counter()/gauge()/histogram() take a
//      mutex and may allocate; call them once at setup and keep the Handle
//      (they are idempotent per name, so repeated lookups are merely slow,
//      not wrong).
//
// Naming scheme (docs/OBSERVABILITY.md): dot-separated lowercase
// `<layer>.<subsystem>.<what>[_<unit>]`, e.g. `net.sent.block_broadcast`,
// `crypto.sig_cache.hits`, `sim.phase.physics_calls`. Snapshots sort by
// name, so related metrics group naturally in every export.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace nwade::util::telemetry {

/// Shard count for counter rows. Eight padded cells cover the pool sizes the
/// campaign engine uses (bench_campaign sweeps 1..8) without false sharing.
inline constexpr int kShards = 8;

namespace detail {

/// One cache-line-padded atomic accumulator cell.
struct alignas(64) ShardCell {
  std::atomic<std::int64_t> v{0};
};

/// A sharded 64-bit accumulator. Stable address (registry stores
/// unique_ptrs), so handles stay valid for the registry's lifetime.
struct ShardedCell {
  ShardCell shards[kShards];

  void add(std::int64_t delta);
  std::int64_t sum() const;
  void reset();
};

/// Round-robin shard index for the calling thread.
int this_thread_shard();

}  // namespace detail

/// Wait-free counter handle. Default-constructed handles are inert no-ops so
/// instrumented code never needs a null check.
class Counter {
 public:
  Counter() = default;
  void inc(std::int64_t delta = 1) {
    if (cell_ != nullptr) cell_->add(delta);
  }
  std::int64_t value() const { return cell_ != nullptr ? cell_->sum() : 0; }
  void reset() {
    if (cell_ != nullptr) cell_->reset();
  }
  bool valid() const { return cell_ != nullptr; }

 private:
  friend class Registry;
  explicit Counter(detail::ShardedCell* cell) : cell_(cell) {}
  detail::ShardedCell* cell_{nullptr};
};

/// A gauge is a last-writer-wins level (queue depth, table size). Writes are
/// a single relaxed store — gauges are expected to be set from one logical
/// owner (a World's stepping thread), not summed across threads.
class Gauge {
 public:
  Gauge() = default;
  void set(std::int64_t v) {
    if (cell_ != nullptr) cell_->store(v, std::memory_order_relaxed);
  }
  void max_of(std::int64_t v) {
    if (cell_ == nullptr) return;
    std::int64_t cur = cell_->load(std::memory_order_relaxed);
    while (v > cur &&
           !cell_->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const {
    return cell_ != nullptr ? cell_->load(std::memory_order_relaxed) : 0;
  }
  void reset() { set(0); }
  bool valid() const { return cell_ != nullptr; }

 private:
  friend class Registry;
  explicit Gauge(std::atomic<std::int64_t>* cell) : cell_(cell) {}
  std::atomic<std::int64_t>* cell_{nullptr};
};

/// Fixed upper bucket edges for a histogram, plus an implicit +inf overflow
/// bucket. Edges must be strictly increasing.
struct HistogramBuckets {
  std::vector<std::int64_t> upper_edges;

  /// 0,1,2,4,8,... doubling edges up to `max_edge` — the default shape for
  /// latency-in-ms histograms.
  static HistogramBuckets exponential_ms(std::int64_t max_edge = 4096);
};

namespace detail {
struct HistogramImpl {
  std::vector<std::int64_t> edges;          // sorted upper edges
  std::vector<ShardedCell> bucket_counts;   // edges.size() + 1 (overflow)
  ShardedCell count;
  ShardedCell sum;
};
}  // namespace detail

/// Wait-free histogram handle: records integer observations (latencies in
/// ms, sizes in bytes) into fixed buckets. Like Counter, sums are integers
/// and merge by addition, so snapshots are thread-schedule independent.
class Histogram {
 public:
  Histogram() = default;
  void observe(std::int64_t value);
  std::int64_t count() const;
  std::int64_t sum() const;
  void reset();
  bool valid() const { return impl_ != nullptr; }

 private:
  friend class Registry;
  explicit Histogram(detail::HistogramImpl* impl) : impl_(impl) {}
  detail::HistogramImpl* impl_{nullptr};
};

/// Point-in-time copy of every metric, name-sorted, with integer values
/// only. Two snapshots of identical runs compare byte-equal via json().
struct MetricsSnapshot {
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  struct HistogramData {
    std::vector<std::int64_t> upper_edges;
    std::vector<std::int64_t> bucket_counts;  // edges + overflow
    std::int64_t count{0};
    std::int64_t sum{0};

    /// Upper bucket edge containing the `percent`-th percentile observation
    /// (rank = ceil(count * percent / 100), 1-based over the bucketed
    /// counts). Integer math only, so the summary is exactly as
    /// deterministic as the buckets it reads. Returns -1 for an empty
    /// histogram and for ranks landing in the +inf overflow bucket (the
    /// value is only known to exceed the last edge).
    std::int64_t quantile_upper_edge(int percent) const;
  };
  std::map<std::string, HistogramData> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
  /// Deterministic multi-line JSON (sorted keys, integer values, no floats).
  std::string json(const std::string& indent = "") const;
  /// Same content on one line — for embedding in row-per-line exports
  /// (campaign cell rows, JSONL).
  std::string json_compact() const;
  /// Merges `other` into this: counters/histograms add, gauges take the
  /// other's value when present (last writer wins, mirroring Gauge::set).
  void merge(const MetricsSnapshot& other);
  /// The change from `prev` to this snapshot, shaped so that
  /// `prev.merge(diff)` reproduces this snapshot exactly: counters and
  /// histogram buckets carry deltas, gauges carry their new value. Entries
  /// that did not change are omitted entirely — the property the streaming
  /// plane's small-frames claim rests on (docs/OBSERVABILITY.md). A
  /// histogram whose bucket shape changed (registry re-created across a
  /// restore) is carried whole.
  MetricsSnapshot diff(const MetricsSnapshot& prev) const;
};

/// A metrics registry. `process()` is the process-wide instance; Worlds own
/// their own so campaign cells stay isolated and deterministic.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  static Registry& process();

  /// Finds or creates; stable handles for the registry's lifetime.
  Counter counter(const std::string& name);
  Gauge gauge(const std::string& name);
  Histogram histogram(const std::string& name, const HistogramBuckets& buckets);

  /// Point-in-time deterministic snapshot (merges all shards).
  MetricsSnapshot snapshot() const;
  /// Zeroes every metric; handles stay valid.
  void reset();
  /// Overwrites the registry with `snap`: every existing metric is zeroed,
  /// then each snapshot entry is re-created (if needed) and set to its
  /// recorded value, so `snapshot()` afterwards equals `snap` exactly.
  /// Existing handles stay valid — values land in shard 0, which sums the
  /// same. Used by checkpoint restore; not safe concurrently with writers.
  void restore(const MetricsSnapshot& snap);

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<detail::ShardedCell>> counters_;
  std::map<std::string, std::unique_ptr<std::atomic<std::int64_t>>> gauges_;
  std::map<std::string, std::unique_ptr<detail::HistogramImpl>> histograms_;
};

/// Folds the util/alloc_stats silo (NWADE_COUNT_ALLOCS builds) into `r` as
/// `process.alloc.*` gauges. No-op in builds without counting, so default
/// snapshots stay free of always-zero noise. NOTE: allocation counts depend
/// on thread placement, so fold these into process-level exports only, never
/// into per-cell campaign rows that must be pool-size independent.
void fold_alloc_stats(Registry& r);

}  // namespace nwade::util::telemetry
