// Structured sim-time event tracer.
//
// Records spans ('X' complete events) and instants ('i') stamped with
// *simulated* time, so two identical seeded runs produce byte-identical
// traces. Wall-clock measurements (per-phase profiling) ride along as an
// explicitly non-deterministic `wall_us` argument that every export can
// strip (`include_wall = false`) — that stripped form is what the
// determinism tests compare.
//
// Exports:
//   * Chrome trace_event JSON (chrome_json) — loads directly in
//     about://tracing and ui.perfetto.dev. `ts` is sim time in µs.
//   * JSONL (jsonl) — one event per line for ad-hoc tooling (jq, pandas).
//
// Cost model (the contract the telemetry bench enforces):
//   * `tracing_active()` is one relaxed atomic load of a process-wide
//     counter of enabled tracers. Instrumented hot paths check it first, so
//     a build with tracing compiled in but disabled pays one load + one
//     predictable branch — and allocates nothing.
//   * Event names/categories/argument keys must be string literals (the
//     tracer stores the pointers); dynamic values go in the integer arg.
//   * Appends lock a mutex only when the tracer is enabled. A World-scoped
//     tracer is only ever appended to by the thread stepping that world, so
//     the lock is uncontended; it exists so process-scoped tracers stay
//     TSan-clean.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/types.h"

namespace nwade::util::trace {

namespace detail {
/// Number of enabled tracers in the process; 0 = every trace macro/helper
/// short-circuits after a single relaxed load.
extern std::atomic<int> g_active_tracers;
}  // namespace detail

/// True when at least one tracer anywhere is enabled. The first check on
/// every instrumented path.
inline bool tracing_active() {
  return detail::g_active_tracers.load(std::memory_order_relaxed) != 0;
}

/// One recorded event. Plain data; name/cat/arg_key must outlive the tracer
/// (string literals in practice).
struct Event {
  const char* cat{""};
  const char* name{""};
  char phase{'i'};           ///< 'X' complete span | 'i' instant
  Tick ts_ms{0};             ///< simulated begin time
  Duration dur_ms{0};        ///< simulated duration ('X' only)
  double wall_us{-1.0};      ///< wall-clock duration; < 0 = not measured.
                             ///< NON-DETERMINISTIC: strip before comparing.
  const char* arg_key{nullptr};  ///< optional integer argument
  std::int64_t arg_value{0};
};

class Tracer {
 public:
  Tracer() = default;
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The process-wide default instance (disabled until someone enables it).
  static Tracer& process();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  /// Enabling/disabling maintains the process-wide active count behind
  /// tracing_active(). Idempotent.
  void set_enabled(bool on);

  /// Records an instant event at simulated time `ts_ms`.
  void instant(const char* cat, const char* name, Tick ts_ms,
               const char* arg_key = nullptr, std::int64_t arg_value = 0);

  /// Records a complete span [begin_ms, end_ms]. `wall_us` < 0 means "not
  /// measured"; any other value is wall-clock profiling data and is marked
  /// non-deterministic in every export.
  void complete(const char* cat, const char* name, Tick begin_ms, Tick end_ms,
                double wall_us = -1.0, const char* arg_key = nullptr,
                std::int64_t arg_value = 0);

  std::size_t size() const;
  void clear();
  /// Moves the recorded events out (the tracer keeps running empty).
  std::vector<Event> take();
  /// Copies the recorded events (tests/inspection).
  std::vector<Event> events() const;

  /// Chrome trace_event JSON for this tracer's events (pid 0).
  std::string chrome_json(bool include_wall = true) const;
  /// JSONL: one JSON object per line.
  std::string jsonl(bool include_wall = true) const;

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<Event> events_;
};

/// Chrome trace_event JSON over pre-collected event streams; `pids` labels
/// each stream (campaign cells use the cell index). Streams with matching
/// indices must align; extra metadata events name each pid.
std::string chrome_trace_json(const std::vector<std::vector<Event>>& streams,
                              const std::vector<std::string>& stream_names,
                              bool include_wall = true);

/// JSONL over pre-collected streams; each line carries a "pid" field.
std::string jsonl_trace(const std::vector<std::vector<Event>>& streams,
                        bool include_wall = true);

}  // namespace nwade::util::trace
