#include "util/alloc_stats.h"

#ifdef NWADE_COUNT_ALLOCS

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

// Trivially-initialized TLS: safe to touch from inside operator new (no
// dynamic initialization, no init guard, so no recursion hazard).
thread_local std::uint64_t t_allocs = 0;
thread_local std::uint64_t t_frees = 0;
std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_frees{0};

void* counted_alloc(std::size_t size) noexcept {
  ++t_allocs;
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size != 0 ? size : 1);
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) noexcept {
  ++t_allocs;
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (align < sizeof(void*)) align = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, align, size != 0 ? size : 1) != 0) return nullptr;
  return p;
}

void counted_free(void* p) noexcept {
  if (p == nullptr) return;
  ++t_frees;
  g_frees.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

}  // namespace

// Replaceable global allocation functions — every form, so no allocation
// can slip past the count through an array/nothrow/aligned variant.
void* operator new(std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { counted_free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { counted_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete[](void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  counted_free(p);
}

namespace nwade::util {

bool alloc_counting_enabled() { return true; }
std::uint64_t thread_alloc_count() { return t_allocs; }
std::uint64_t thread_free_count() { return t_frees; }
std::uint64_t process_alloc_count() {
  return g_allocs.load(std::memory_order_relaxed);
}
std::uint64_t process_free_count() {
  return g_frees.load(std::memory_order_relaxed);
}

}  // namespace nwade::util

#else  // !NWADE_COUNT_ALLOCS

namespace nwade::util {

bool alloc_counting_enabled() { return false; }
std::uint64_t thread_alloc_count() { return 0; }
std::uint64_t thread_free_count() { return 0; }
std::uint64_t process_alloc_count() { return 0; }
std::uint64_t process_free_count() { return 0; }

}  // namespace nwade::util

#endif  // NWADE_COUNT_ALLOCS
