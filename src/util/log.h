// Lightweight leveled logging. Off by default so benchmarks stay quiet;
// scenarios and examples turn it on for narration.
#pragma once

#include <sstream>
#include <string>

#include "util/types.h"

namespace nwade {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log configuration (process-wide; level/clock reads are atomic so
/// concurrent campaign worlds may log, but configure before fanning out —
/// the clock pointer must outlive every thread that could emit).
namespace log_config {
void set_level(LogLevel level);
LogLevel level();
/// Simulated-time source for log prefixes; nullptr shows no timestamp.
void set_clock(const Tick* now);
}  // namespace log_config

namespace detail {
void emit(LogLevel level, const std::string& msg);
bool enabled(LogLevel level);
}  // namespace detail

/// Stream-style logger: LOG(kInfo) << "vehicle " << id << " evacuating";
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() {
    if (detail::enabled(level_)) detail::emit(level_, out_.str());
  }
  template <typename T>
  LogLine& operator<<(const T& v) {
    if (detail::enabled(level_)) out_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream out_;
};

#define NWADE_LOG(level) ::nwade::LogLine(::nwade::LogLevel::level)

}  // namespace nwade
