// Lightweight leveled logging. Off by default so benchmarks stay quiet;
// scenarios and examples turn it on for narration.
#pragma once

#include <optional>
#include <sstream>
#include <string>

#include "util/types.h"

namespace nwade {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log configuration (process-wide; level/clock reads are atomic so
/// concurrent campaign worlds may log, but configure before fanning out —
/// the clock pointer must outlive every thread that could emit).
namespace log_config {
void set_level(LogLevel level);
LogLevel level();
/// Simulated-time source for log prefixes; nullptr shows no timestamp.
void set_clock(const Tick* now);
}  // namespace log_config

namespace detail {
void emit(LogLevel level, const std::string& msg);
bool enabled(LogLevel level);
}  // namespace detail

/// Stream-style logger: LOG(kInfo) << "vehicle " << id << " evacuating";
///
/// The level is checked exactly once, at construction. A disabled line never
/// engages the stream, so it allocates nothing and each `operator<<` costs
/// one predictable branch on a plain bool — no atomic re-reads per operand.
/// (Snapshotting also keeps one line's operands consistent if another thread
/// reconfigures the level mid-statement.)
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {
    if (detail::enabled(level)) out_.emplace();
  }
  ~LogLine() {
    if (out_) detail::emit(level_, out_->str());
  }
  template <typename T>
  LogLine& operator<<(const T& v) {
    if (out_) *out_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::optional<std::ostringstream> out_;
};

#define NWADE_LOG(level) ::nwade::LogLine(::nwade::LogLevel::level)

}  // namespace nwade
