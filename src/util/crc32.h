// CRC-32 (IEEE 802.3 polynomial, reflected) for checkpoint section
// integrity. Not cryptographic — the chain layer handles authenticity; this
// catches torn writes and bit rot in `nwade-ckpt-v1` files before a resume
// silently diverges.
#pragma once

#include <cstdint>
#include <span>

namespace nwade::util {

/// CRC-32 of `data` (init 0xFFFFFFFF, final xor, reflected polynomial
/// 0xEDB88320) — the same value `cksum`-style tools and zlib's crc32 report.
std::uint32_t crc32(std::span<const std::uint8_t> data);

}  // namespace nwade::util
