// Minimal Result<T, E> for error handling without exceptions on hot paths.
//
// C++20 has no std::expected; this is the narrow subset NWADE needs: construct
// from a value or an error, query, and unwrap. Unwrapping a Result in the
// wrong state aborts — these are programming errors, not runtime conditions.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace nwade {

/// Result of an operation that can fail with a typed error.
template <typename T, typename E = std::string>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return error;` both work.
  Result(T value) : data_(std::in_place_index<0>, std::move(value)) {}
  Result(E error) : data_(std::in_place_index<1>, std::move(error)) {}

  static Result ok(T value) { return Result(std::move(value)); }
  static Result err(E error) { return Result(std::move(error)); }

  bool has_value() const { return data_.index() == 0; }
  explicit operator bool() const { return has_value(); }

  const T& value() const& {
    assert(has_value());
    return std::get<0>(data_);
  }
  T& value() & {
    assert(has_value());
    return std::get<0>(data_);
  }
  T&& value() && {
    assert(has_value());
    return std::get<0>(std::move(data_));
  }

  const E& error() const& {
    assert(!has_value());
    return std::get<1>(data_);
  }

  /// Returns the contained value or `fallback` when this holds an error.
  T value_or(T fallback) const& { return has_value() ? value() : std::move(fallback); }

 private:
  std::variant<T, E> data_;
};

/// Result specialization for operations that return nothing on success.
template <typename E>
class Result<void, E> {
 public:
  Result() = default;
  Result(E error) : error_(std::move(error)), ok_(false) {}

  static Result ok() { return Result(); }
  static Result err(E error) { return Result(std::move(error)); }

  bool has_value() const { return ok_; }
  explicit operator bool() const { return ok_; }

  const E& error() const {
    assert(!ok_);
    return error_;
  }

 private:
  E error_{};
  bool ok_{true};
};

using Status = Result<void, std::string>;

}  // namespace nwade
