// Wall-clock abstraction for time-driven streaming code.
//
// Everything simulated runs on net::SimClock ticks and stays deterministic;
// the only place host time legitimately leaks into an export is a streaming
// heartbeat ("is the resident process alive?"). Code that needs such a stamp
// takes a WallClock* so tests can substitute FakeWallClock — a movable clock
// in the Thalamus mold — and the emitted bytes become a pure function of the
// run. The streamer's determinism contract (docs/OBSERVABILITY.md) is stated
// against exactly this substitution.
#pragma once

#include <chrono>
#include <cstdint>

namespace nwade::util {

/// Source of host time in microseconds. Implementations must be monotonic
/// (never run backwards) but need not start anywhere meaningful.
class WallClock {
 public:
  virtual ~WallClock() = default;
  virtual std::int64_t now_us() = 0;
};

/// The real thing: std::chrono::steady_clock since process start.
class SystemWallClock final : public WallClock {
 public:
  std::int64_t now_us() override {
    const auto d = std::chrono::steady_clock::now() - origin_;
    return std::chrono::duration_cast<std::chrono::microseconds>(d).count();
  }

 private:
  std::chrono::steady_clock::time_point origin_{
      std::chrono::steady_clock::now()};
};

/// A clock tests move by hand. Deterministic: two runs that advance it
/// identically read identical stamps, so streamed frames compare byte-equal.
class FakeWallClock final : public WallClock {
 public:
  explicit FakeWallClock(std::int64_t start_us = 0) : now_us_(start_us) {}
  std::int64_t now_us() override { return now_us_; }
  void advance_us(std::int64_t delta_us) { now_us_ += delta_us; }
  void set_us(std::int64_t t_us) { now_us_ = t_us; }

 private:
  std::int64_t now_us_;
};

}  // namespace nwade::util
