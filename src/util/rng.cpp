#include "util/rng.h"

#include <cassert>
#include <cmath>

namespace nwade {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

bool Rng::chance(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return next_double() < p;
}

double Rng::exponential(double rate) {
  assert(rate > 0);
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

int Rng::poisson(double mean) {
  assert(mean >= 0);
  if (mean <= 0) return 0;
  if (mean < 30.0) {
    // Knuth's product method for small means.
    const double limit = std::exp(-mean);
    double prod = next_double();
    int n = 0;
    while (prod > limit) {
      prod *= next_double();
      ++n;
    }
    return n;
  }
  // Normal approximation with continuity correction for large means.
  const double v = normal(mean, std::sqrt(mean));
  return v < 0 ? 0 : static_cast<int>(v + 0.5);
}

double Rng::normal(double mean, double stddev) {
  double u1;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  const double u2 = next_double();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) total += w;
  assert(total > 0);
  double target = next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0) return i;
  }
  return weights.size() - 1;
}

Rng::State Rng::state() const {
  State st;
  for (int i = 0; i < 4; ++i) st.s[i] = s_[i];
  st.seed = seed_;
  return st;
}

void Rng::set_state(const State& st) {
  for (int i = 0; i < 4; ++i) s_[i] = st.s[i];
  seed_ = st.seed;
}

Rng Rng::fork(std::uint64_t salt) const {
  std::uint64_t mix = seed_;
  const std::uint64_t a = splitmix64(mix);
  mix ^= salt * 0xd1342543de82ef95ULL + 0x2545f4914f6cdd1dULL;
  const std::uint64_t b = splitmix64(mix);
  return Rng(a ^ rotl(b, 31));
}

}  // namespace nwade
