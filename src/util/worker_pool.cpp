#include "util/worker_pool.h"

namespace nwade::util {

WorkerPool::WorkerPool(int threads) {
  if (threads <= 1) return;  // inline mode
  threads_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::run_inline(std::size_t count,
                            const std::function<void(std::size_t)>& task) {
  for (std::size_t i = 0; i < count; ++i) task(i);
}

void WorkerPool::for_each(std::size_t count,
                          const std::function<void(std::size_t)>& task) {
  if (count == 0) return;
  if (threads_.empty()) {
    run_inline(count, task);
    return;
  }

  std::uint64_t job;
  {
    std::lock_guard<std::mutex> lock(mu_);
    task_ = &task;
    count_ = count;
    completed_ = 0;
    next_.store(0, std::memory_order_relaxed);
    job = ++generation_;
  }
  work_ready_.notify_all();

  // The calling thread works too: claims an index, runs it, repeats.
  std::size_t done_here = 0;
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count) break;
    task(i);
    ++done_here;
  }

  std::unique_lock<std::mutex> lock(mu_);
  completed_ += done_here;
  if (completed_ == count_) {
    task_ = nullptr;
  } else {
    job_done_.wait(lock, [this, job] {
      return completed_ == count_ || generation_ != job;
    });
    task_ = nullptr;
  }
}

void WorkerPool::worker_loop() {
  std::uint64_t last_job = 0;
  for (;;) {
    const std::function<void(std::size_t)>* task = nullptr;
    std::size_t count = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this, last_job] {
        return stopping_ || (task_ != nullptr && generation_ != last_job);
      });
      if (stopping_) return;
      task = task_;
      count = count_;
      last_job = generation_;
    }

    std::size_t done_here = 0;
    for (;;) {
      const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      (*task)(i);
      ++done_here;
    }

    std::lock_guard<std::mutex> lock(mu_);
    completed_ += done_here;
    if (completed_ == count_) job_done_.notify_all();
  }
}

}  // namespace nwade::util
