// Deterministic fork-join worker pool.
//
// Built for one job shape: a tick produces N independent, pure units of
// work (per-vehicle signature verifications), and the caller needs all N
// results in input order before proceeding. Threads race to *claim* indices
// but every result lands in its own pre-allocated slot, so the merged
// output is a pure function of the inputs — bit-for-bit identical for any
// thread count, and a pool of size <= 1 never spawns a thread at all (the
// caller's thread runs the loop inline, byte-identical to not having a pool).
//
// Not a general task graph: for_each is a barrier, nested submission from
// inside a task deadlocks by design simplicity, and tasks must not throw.
//
// Oversubscription policy (one level of parallelism at a time): when an
// outer pool fans work units that each own an inner pool — sim::Grid
// stepping one World per shard task, each World owning a step_threads pool —
// the inner pools must be sized with nested_thread_budget() so only ONE
// level actually spawns threads. A grid at 8 shard threads x 4 step threads
// must run 8 workers, not 32: the inner pools collapse to inline execution
// (thread_count() == 0), which is byte-identical by the pool contract and
// avoids both oversubscription and the nested-submission deadlock above.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace nwade::util {

/// The oversubscription policy (see the header comment): the thread budget
/// for an inner pool whose work units are fanned out by an outer pool of
/// `outer_threads`. Once the outer level actually parallelizes
/// (outer_threads > 1), every inner pool runs inline; a serial outer level
/// passes the requested inner budget through unchanged.
constexpr int nested_thread_budget(int outer_threads, int inner_threads) {
  return outer_threads > 1 ? 1 : inner_threads;
}

class WorkerPool {
 public:
  /// `threads` <= 1 means inline execution (no threads are created).
  explicit WorkerPool(int threads = 0);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Worker threads owned by the pool (0 in inline mode).
  int thread_count() const { return static_cast<int>(threads_.size()); }

  /// Runs task(0..count-1), blocking until every index has finished. The
  /// calling thread participates in the work. Indices may run in any order
  /// on any thread; `task` must therefore only touch per-index state.
  void for_each(std::size_t count, const std::function<void(std::size_t)>& task);

  /// Fixed-order merge: out[i] = fn(i). `R` must not be `bool`
  /// (std::vector<bool> packs bits — concurrent writes to neighbouring
  /// slots would race); use std::uint8_t for flags.
  template <typename R, typename F>
  std::vector<R> map(std::size_t count, F&& fn) {
    static_assert(!std::is_same_v<R, bool>,
                  "vector<bool> slots are not independently writable");
    std::vector<R> out(count);
    for_each(count, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

  /// Chunked range execution: calls fn(begin, end) for each half-open chunk
  /// [k*chunk_size, min((k+1)*chunk_size, count)). Chunk boundaries depend
  /// only on (count, chunk_size) — never on the thread count — so any
  /// per-chunk partial results a caller accumulates and merges in chunk
  /// order are bit-identical for any pool size. Like for_each this is a
  /// barrier; `fn` must only touch per-chunk state. The inline path (pool of
  /// size <= 1) runs the chunks on the calling thread without materializing
  /// a std::function, so steady-state callers stay allocation-free.
  template <typename F>
  void parallel_for(std::size_t count, std::size_t chunk_size, F&& fn) {
    if (count == 0) return;
    if (chunk_size == 0) chunk_size = 1;
    const std::size_t chunks = (count + chunk_size - 1) / chunk_size;
    if (threads_.empty() || chunks == 1) {
      for (std::size_t k = 0; k < chunks; ++k) {
        const std::size_t begin = k * chunk_size;
        const std::size_t end = begin + chunk_size < count ? begin + chunk_size : count;
        fn(begin, end);
      }
      return;
    }
    for_each(chunks, [&](std::size_t k) {
      const std::size_t begin = k * chunk_size;
      const std::size_t end = begin + chunk_size < count ? begin + chunk_size : count;
      fn(begin, end);
    });
  }

 private:
  void worker_loop();
  void run_inline(std::size_t count, const std::function<void(std::size_t)>& task);

  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable job_done_;
  const std::function<void(std::size_t)>* task_{nullptr};  ///< current job
  std::size_t count_{0};
  std::atomic<std::size_t> next_{0};  ///< next unclaimed index
  std::size_t completed_{0};
  std::uint64_t generation_{0};  ///< bumps per job so workers never re-run one
  bool stopping_{false};
};

}  // namespace nwade::util
