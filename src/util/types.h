// Core identifier and unit types shared by every NWADE module.
//
// All simulated time is integer milliseconds (`Tick`) so that runs are
// bit-for-bit deterministic across platforms. Distances are metres, speeds
// m/s; the paper quotes imperial values which we convert at the config layer.
#pragma once

#include <cstdint>
#include <compare>
#include <functional>
#include <limits>

namespace nwade {

/// Simulated time in milliseconds since the start of the run.
using Tick = std::int64_t;

/// Duration in simulated milliseconds.
using Duration = std::int64_t;

inline constexpr Tick kTickMax = std::numeric_limits<Tick>::max();

/// Converts seconds to ticks, rounding to the nearest millisecond.
constexpr Tick seconds_to_ticks(double s) {
  return static_cast<Tick>(s * 1000.0 + (s >= 0 ? 0.5 : -0.5));
}

/// Converts ticks to fractional seconds.
constexpr double ticks_to_seconds(Tick t) { return static_cast<double>(t) / 1000.0; }

/// Strongly-typed integral identifier. `Tag` disambiguates id spaces so a
/// VehicleId cannot be passed where a BlockSeq is expected.
template <typename Tag>
struct Id {
  std::uint64_t value{0};

  constexpr Id() = default;
  constexpr explicit Id(std::uint64_t v) : value(v) {}

  constexpr auto operator<=>(const Id&) const = default;
  constexpr bool valid() const { return value != 0; }
};

struct VehicleTag {};
struct NodeTag {};

/// Identity of a vehicle (1-based; 0 is "invalid").
using VehicleId = Id<VehicleTag>;

/// Identity of a network endpoint (vehicles and the intersection manager).
using NodeId = Id<NodeTag>;

/// The intersection manager always owns node id 1; vehicles get 2, 3, ...
inline constexpr NodeId kImNodeId{1};

/// Maps a vehicle id to its network node id and back.
constexpr NodeId vehicle_node(VehicleId v) { return NodeId{v.value + 1}; }
constexpr VehicleId node_vehicle(NodeId n) {
  return n.value > 1 ? VehicleId{n.value - 1} : VehicleId{};
}

// --- Unit conversions used when ingesting the paper's settings. -------------

constexpr double mph_to_mps(double mph) { return mph * 0.44704; }
constexpr double feet_to_meters(double ft) { return ft * 0.3048; }

}  // namespace nwade

namespace std {
template <typename Tag>
struct hash<nwade::Id<Tag>> {
  size_t operator()(const nwade::Id<Tag>& id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value);
  }
};
}  // namespace std
