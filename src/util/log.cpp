#include "util/log.h"

#include <atomic>
#include <cstdio>

namespace nwade {
namespace {
// Atomics, not plain globals: campaign runs step many worlds on pool
// threads, and a configuration racing a level check would be UB. Writers
// are still expected to configure logging before fanning out.
std::atomic<LogLevel> g_level{LogLevel::kOff};
std::atomic<const Tick*> g_clock{nullptr};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

namespace log_config {
void set_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel level() { return g_level.load(std::memory_order_relaxed); }
void set_clock(const Tick* now) { g_clock.store(now, std::memory_order_relaxed); }
}  // namespace log_config

namespace detail {

bool enabled(LogLevel level) {
  const LogLevel configured = g_level.load(std::memory_order_relaxed);
  return level >= configured && configured != LogLevel::kOff;
}

void emit(LogLevel level, const std::string& msg) {
  if (const Tick* now = g_clock.load(std::memory_order_relaxed)) {
    std::fprintf(stderr, "[%8lld ms] %s %s\n", static_cast<long long>(*now),
                 level_name(level), msg.c_str());
  } else {
    std::fprintf(stderr, "%s %s\n", level_name(level), msg.c_str());
  }
}

}  // namespace detail
}  // namespace nwade
