#include "util/log.h"

#include <cstdio>

namespace nwade {
namespace {
LogLevel g_level = LogLevel::kOff;
const Tick* g_clock = nullptr;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

namespace log_config {
void set_level(LogLevel level) { g_level = level; }
LogLevel level() { return g_level; }
void set_clock(const Tick* now) { g_clock = now; }
}  // namespace log_config

namespace detail {

bool enabled(LogLevel level) { return level >= g_level && g_level != LogLevel::kOff; }

void emit(LogLevel level, const std::string& msg) {
  if (g_clock != nullptr) {
    std::fprintf(stderr, "[%8lld ms] %s %s\n", static_cast<long long>(*g_clock),
                 level_name(level), msg.c_str());
  } else {
    std::fprintf(stderr, "%s %s\n", level_name(level), msg.c_str());
  }
}

}  // namespace detail
}  // namespace nwade
