// Deterministic random number generation for reproducible simulations.
//
// Every stochastic component (arrivals, turn choices, attacker placement,
// network loss) draws from its own `Rng` seeded from the scenario seed, so
// adding a new consumer never perturbs existing streams.
#pragma once

#include <cstdint>
#include <vector>

namespace nwade {

/// xoshiro256** PRNG seeded via SplitMix64. Deterministic across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Bernoulli trial with success probability p.
  bool chance(double p);

  /// Exponential inter-arrival sample with the given rate (events per unit).
  double exponential(double rate);

  /// Poisson-distributed count with the given mean (Knuth / inversion mix).
  int poisson(double mean);

  /// Standard normal via Box–Muller.
  double normal(double mean, double stddev);

  /// Picks an index in [0, weights.size()) proportionally to weights.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Derives an independent child stream; stable for a given (seed, salt).
  Rng fork(std::uint64_t salt) const;

  /// Serialized generator position: the four xoshiro words plus the original
  /// seed. Both parts must survive a checkpoint — fork() derives children
  /// from the seed, while the words carry the stream's current position.
  struct State {
    std::uint64_t s[4]{};
    std::uint64_t seed{0};
  };
  State state() const;
  void set_state(const State& st);

 private:
  std::uint64_t s_[4];
  std::uint64_t seed_;
};

}  // namespace nwade
