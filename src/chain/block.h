// The travel-plan blockchain block (paper Eq. 1 and Fig. 3):
//
//   B_i = < s_i, h_{i-1}, tau_i, R_i >
//
// s_i     signature over <h_{i-1}, tau_i, R_i> by the intersection manager
// h_{i-1} SHA-256 of the previous block
// tau_i   timestamp of the processing window
// R_i     Merkle root over the window's travel plans (plans ride along as
//         the leaves, so receivers can re-derive and check R_i)
#pragma once

#include <optional>
#include <vector>

#include "aim/plan.h"
#include "crypto/merkle.h"
#include "crypto/sha256.h"
#include "crypto/signer.h"
#include "util/types.h"

namespace nwade::chain {

/// Sequence number of a block within one intersection's chain (genesis = 0).
using BlockSeq = std::uint64_t;

struct Block {
  Bytes signature;               ///< s_i
  crypto::Digest prev_hash{};    ///< h_{i-1}
  Tick timestamp{0};             ///< tau_i
  crypto::Digest merkle_root{};  ///< R_i
  BlockSeq seq{0};
  std::vector<aim::TravelPlan> plans;  ///< the Merkle leaves
  /// Vehicles whose earlier plans are void (confirmed threats). Carried in
  /// every block (and covered by the signature) so vehicles that join after
  /// an evacuation alert do not treat a revoked plan as live when checking
  /// new blocks for conflicts.
  std::vector<VehicleId> revoked;

  /// The bytes that s_i signs: <seq, h_{i-1}, tau_i, R_i, revoked>.
  Bytes signed_payload() const;

  /// SHA-256 over the header (signature + signed payload); the next block's
  /// h_{i-1}.
  crypto::Digest hash() const;

  /// Builds and signs a block over a window's plans.
  static Block package(BlockSeq seq, const crypto::Digest& prev_hash, Tick timestamp,
                       std::vector<aim::TravelPlan> plans, const crypto::Signer& signer,
                       std::vector<VehicleId> revoked = {});

  /// Signature check against the intersection manager's public key.
  bool verify_signature(const crypto::Verifier& verifier) const;

  /// Recomputes the Merkle root from `plans` and compares with `merkle_root`.
  bool verify_merkle() const;

  /// The plan for a given vehicle inside this block, if present.
  const aim::TravelPlan* plan_for(VehicleId id) const;

  /// Merkle membership proof for the plan at `index` (see MerkleTree).
  crypto::MerkleProof prove_plan(std::size_t index) const;

  Bytes serialize() const;
  static std::optional<Block> deserialize(const Bytes& data);

  /// Approximate wire size (for network-load accounting).
  std::size_t wire_size() const;

 private:
  static crypto::MerkleTree build_tree(const std::vector<aim::TravelPlan>& plans);
};

}  // namespace nwade::chain
