// The travel-plan blockchain block (paper Eq. 1 and Fig. 3):
//
//   B_i = < s_i, h_{i-1}, tau_i, R_i >
//
// s_i     signature over <h_{i-1}, tau_i, R_i> by the intersection manager
// h_{i-1} SHA-256 of the previous block
// tau_i   timestamp of the processing window
// R_i     Merkle root over the window's travel plans (plans ride along as
//         the leaves, so receivers can re-derive and check R_i)
//
// Derived values (signed payload, hash, Merkle tree, wire size) are
// memoized: a broadcast block is verified by every receiver and hashed by
// every chain append, so recomputing them per call made block fan-out the
// simulator's crypto hot path. The header fields stay public (the attack
// tests tamper with them directly); each cache therefore snapshots the
// inputs it was computed from and re-validates by comparison, so mutation
// through a public field can never be observed as a stale answer. The plan
// list is the one exception: it is private behind plans()/mutable_plans()
// because re-serializing every plan per query just to validate a cache
// would cost what the cache saves.
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "aim/plan.h"
#include "crypto/merkle.h"
#include "crypto/sha256.h"
#include "crypto/signer.h"
#include "util/types.h"

namespace nwade::chain {

/// Sequence number of a block within one intersection's chain (genesis = 0).
using BlockSeq = std::uint64_t;

struct Block {
  Bytes signature;               ///< s_i
  crypto::Digest prev_hash{};    ///< h_{i-1}
  Tick timestamp{0};             ///< tau_i
  crypto::Digest merkle_root{};  ///< R_i
  BlockSeq seq{0};
  /// Vehicles whose earlier plans are void (confirmed threats). Carried in
  /// every block (and covered by the signature) so vehicles that join after
  /// an evacuation alert do not treat a revoked plan as live when checking
  /// new blocks for conflicts.
  std::vector<VehicleId> revoked;

  Block() = default;
  Block(const Block& other);
  Block(Block&& other) noexcept;
  Block& operator=(const Block& other);
  Block& operator=(Block&& other) noexcept;

  /// The window's travel plans (the Merkle leaves).
  const std::vector<aim::TravelPlan>& plans() const { return plans_; }

  /// Mutable access to the plan list; drops every plan-derived cache
  /// (Merkle tree, wire size). Writes through a retained reference after
  /// other const calls are not tracked — re-call for further mutation.
  std::vector<aim::TravelPlan>& mutable_plans();

  /// Replaces the plan list wholesale.
  void set_plans(std::vector<aim::TravelPlan> plans);

  /// The bytes that s_i signs: <seq, h_{i-1}, tau_i, R_i, revoked>.
  Bytes signed_payload() const;

  /// SHA-256 over the header (signature + signed payload); the next block's
  /// h_{i-1}.
  crypto::Digest hash() const;

  /// Builds and signs a block over a window's plans.
  static Block package(BlockSeq seq, const crypto::Digest& prev_hash, Tick timestamp,
                       std::vector<aim::TravelPlan> plans, const crypto::Signer& signer,
                       std::vector<VehicleId> revoked = {});

  /// Signature check against the intersection manager's public key.
  bool verify_signature(const crypto::Verifier& verifier) const;

  /// Recomputes the Merkle root from the plans and compares with
  /// `merkle_root`.
  bool verify_merkle() const;

  /// The plan for a given vehicle inside this block, if present.
  const aim::TravelPlan* plan_for(VehicleId id) const;

  /// Merkle membership proof for the plan at `index` (see MerkleTree).
  crypto::MerkleProof prove_plan(std::size_t index) const;

  Bytes serialize() const;
  static std::optional<Block> deserialize(const Bytes& data);

  /// Approximate wire size (for network-load accounting).
  std::size_t wire_size() const;

 private:
  /// Everything the header-derived caches were computed from.
  struct HeaderSnapshot {
    Bytes signature;
    crypto::Digest prev_hash{};
    Tick timestamp{0};
    crypto::Digest merkle_root{};
    BlockSeq seq{0};
    std::vector<VehicleId> revoked;
  };

  static std::shared_ptr<const crypto::MerkleTree> build_tree(
      const std::vector<aim::TravelPlan>& plans);

  /// Compares the live header fields against the snapshot; on any change,
  /// recaptures and drops the header-derived caches. cache_mu_ must be held.
  void revalidate_header_locked() const;
  const Bytes& payload_locked() const;
  const crypto::MerkleTree& tree_locked() const;

  std::vector<aim::TravelPlan> plans_;

  // Memoized derived values. The mutex makes concurrent const access safe
  // (the worker pool fans block verifications across threads); the first
  // caller computes, the rest reuse.
  mutable std::mutex cache_mu_;
  mutable bool snapshot_valid_{false};
  mutable HeaderSnapshot snapshot_;
  mutable bool payload_valid_{false};
  mutable Bytes payload_cache_;
  mutable bool hash_valid_{false};
  mutable crypto::Digest hash_cache_{};
  mutable bool wire_valid_{false};
  mutable std::size_t wire_size_cache_{0};
  /// Shared, not copied, across Block copies (the tree is immutable).
  mutable std::shared_ptr<const crypto::MerkleTree> tree_cache_;
};

}  // namespace nwade::chain
