// Vehicle-side bounded blockchain cache.
//
// "Each vehicle only needs to store the blockchain at its current
// intersection... The maximum length of the chain that a vehicle needs to
// cache and verify equals tau/delta" — crossing time over processing-window
// length. The store enforces structural chain validity (signature, Merkle
// root, prev-hash linkage) on append and evicts blocks beyond the depth
// bound. Semantic plan-conflict checking lives in the NWADE protocol layer.
#pragma once

#include <deque>
#include <optional>
#include <vector>

#include "chain/block.h"
#include "util/result.h"

namespace nwade::chain {

/// Why an append was rejected; drives the vehicle FSM's reaction
/// (any rejection == "the intersection manager is compromised").
enum class ChainError {
  kBadSignature,
  kBadMerkleRoot,
  kBrokenLinkage,     ///< prev_hash does not match our latest block
  kNonMonotonicSeq,   ///< sequence number gap or replay
  kStaleTimestamp,    ///< timestamp not increasing
};

const char* chain_error_name(ChainError e);

class BlockStore {
 public:
  /// `max_depth` = tau/delta bound; older blocks are evicted after append.
  explicit BlockStore(std::size_t max_depth = 64) : max_depth_(max_depth) {}

  /// Validates and appends a block. On any failure the store is unchanged
  /// and the error tells the caller what was wrong with the block.
  Result<void, ChainError> append(const Block& block, const crypto::Verifier& verifier);

  bool empty() const { return blocks_.empty(); }
  std::size_t size() const { return blocks_.size(); }
  std::size_t max_depth() const { return max_depth_; }

  const Block* latest() const { return blocks_.empty() ? nullptr : &blocks_.back(); }
  const Block* by_seq(BlockSeq seq) const;

  /// Sequence number the next append must carry to keep the chain contiguous;
  /// 0 when the store is empty (any starting seq is accepted).
  BlockSeq next_expected() const {
    return blocks_.empty() ? 0 : blocks_.back().seq + 1;
  }

  /// The gap an incoming block with sequence `incoming` would reveal: every
  /// missing seq in (latest, incoming), oldest first, capped at `limit`.
  /// Empty when the store is empty, the block is contiguous, or it replays an
  /// already-cached seq. Drives the protocol's gap-recovery BlockRequests.
  std::vector<BlockSeq> missing_before(BlockSeq incoming, std::size_t limit) const;

  /// All cached blocks, oldest first.
  const std::deque<Block>& blocks() const { return blocks_; }

  /// Finds a vehicle's most recent plan across cached blocks (newest wins —
  /// evacuation/recovery plans supersede older ones).
  const aim::TravelPlan* find_plan(VehicleId id) const;

  // --- checkpoint/restore (sim/checkpoint) ----------------------------------

  /// Serializes the depth bound and every cached block (Block::serialize).
  void checkpoint_save(ByteWriter& w) const;

  /// Restores a saved store. Appends are *unchecked*: the blocks were
  /// validated before the checkpoint, and re-verifying here would perturb
  /// the signature-verify cache's hit/miss counters on resume. Returns false
  /// on malformed input (the store may then be partially filled).
  bool checkpoint_restore(ByteReader& r);

 private:
  std::size_t max_depth_;
  std::deque<Block> blocks_;
};

}  // namespace nwade::chain
