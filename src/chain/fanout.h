// Deterministic parallel block-verification fan-out.
//
// One tick of the simulator can hand the same broadcast block to dozens of
// vehicle nodes, each running Algorithm 1's signature + Merkle checks. The
// checks are pure and independent per receiver, so they fan across the
// worker pool; results land in input order, making the merged vector a pure
// function of (block, verifiers) — identical for any pool size, and
// executed inline (no threads) when the pool size is <= 1.
#pragma once

#include <cstdint>
#include <vector>

#include "chain/block.h"
#include "util/worker_pool.h"

namespace nwade::chain {

/// out[i] = verifiers[i] accepts `block`'s signature and the block's Merkle
/// root checks out. uint8_t, not bool: the slots must be independently
/// writable across threads.
std::vector<std::uint8_t> fanout_verify(
    const Block& block, const std::vector<const crypto::Verifier*>& verifiers,
    util::WorkerPool& pool);

}  // namespace nwade::chain
