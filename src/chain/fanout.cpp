#include "chain/fanout.h"

namespace nwade::chain {

std::vector<std::uint8_t> fanout_verify(
    const Block& block, const std::vector<const crypto::Verifier*>& verifiers,
    util::WorkerPool& pool) {
  // Warm the block's payload, Merkle, and hash caches on this thread first:
  // the fanned tasks then read them without ever contending to build them.
  const Bytes payload = block.signed_payload();
  const bool merkle_ok = block.verify_merkle();
  (void)block.hash();

  return pool.map<std::uint8_t>(verifiers.size(), [&](std::size_t i) {
    return static_cast<std::uint8_t>(
        merkle_ok && verifiers[i]->verify(payload, block.signature));
  });
}

}  // namespace nwade::chain
