#include "chain/block.h"

#include <utility>

namespace nwade::chain {

Block::Block(const Block& other)
    : signature(other.signature),
      prev_hash(other.prev_hash),
      timestamp(other.timestamp),
      merkle_root(other.merkle_root),
      seq(other.seq),
      revoked(other.revoked),
      plans_(other.plans_) {
  // Warm caches travel with the copy: a store appending a verified broadcast
  // block keeps its hash, payload, and Merkle tree without recomputation.
  std::lock_guard<std::mutex> lock(other.cache_mu_);
  snapshot_valid_ = other.snapshot_valid_;
  snapshot_ = other.snapshot_;
  payload_valid_ = other.payload_valid_;
  payload_cache_ = other.payload_cache_;
  hash_valid_ = other.hash_valid_;
  hash_cache_ = other.hash_cache_;
  wire_valid_ = other.wire_valid_;
  wire_size_cache_ = other.wire_size_cache_;
  tree_cache_ = other.tree_cache_;
}

Block::Block(Block&& other) noexcept
    : signature(std::move(other.signature)),
      prev_hash(other.prev_hash),
      timestamp(other.timestamp),
      merkle_root(other.merkle_root),
      seq(other.seq),
      revoked(std::move(other.revoked)),
      plans_(std::move(other.plans_)),
      snapshot_valid_(other.snapshot_valid_),
      snapshot_(std::move(other.snapshot_)),
      payload_valid_(other.payload_valid_),
      payload_cache_(std::move(other.payload_cache_)),
      hash_valid_(other.hash_valid_),
      hash_cache_(other.hash_cache_),
      wire_valid_(other.wire_valid_),
      wire_size_cache_(other.wire_size_cache_),
      tree_cache_(std::move(other.tree_cache_)) {
  other.snapshot_valid_ = false;
  other.payload_valid_ = false;
  other.hash_valid_ = false;
  other.wire_valid_ = false;
}

Block& Block::operator=(const Block& other) {
  if (this == &other) return *this;
  Block tmp(other);
  *this = std::move(tmp);
  return *this;
}

Block& Block::operator=(Block&& other) noexcept {
  if (this == &other) return *this;
  signature = std::move(other.signature);
  prev_hash = other.prev_hash;
  timestamp = other.timestamp;
  merkle_root = other.merkle_root;
  seq = other.seq;
  revoked = std::move(other.revoked);
  plans_ = std::move(other.plans_);
  snapshot_valid_ = other.snapshot_valid_;
  snapshot_ = std::move(other.snapshot_);
  payload_valid_ = other.payload_valid_;
  payload_cache_ = std::move(other.payload_cache_);
  hash_valid_ = other.hash_valid_;
  hash_cache_ = other.hash_cache_;
  wire_valid_ = other.wire_valid_;
  wire_size_cache_ = other.wire_size_cache_;
  tree_cache_ = std::move(other.tree_cache_);
  other.snapshot_valid_ = false;
  other.payload_valid_ = false;
  other.hash_valid_ = false;
  other.wire_valid_ = false;
  return *this;
}

std::vector<aim::TravelPlan>& Block::mutable_plans() {
  std::lock_guard<std::mutex> lock(cache_mu_);
  tree_cache_.reset();
  wire_valid_ = false;
  return plans_;
}

void Block::set_plans(std::vector<aim::TravelPlan> plans) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  plans_ = std::move(plans);
  tree_cache_.reset();
  wire_valid_ = false;
}

std::shared_ptr<const crypto::MerkleTree> Block::build_tree(
    const std::vector<aim::TravelPlan>& plans) {
  std::vector<Bytes> leaves;
  leaves.reserve(plans.size());
  for (const aim::TravelPlan& p : plans) leaves.push_back(p.serialize());
  return std::make_shared<crypto::MerkleTree>(leaves);
}

void Block::revalidate_header_locked() const {
  if (snapshot_valid_ && snapshot_.signature == signature &&
      snapshot_.prev_hash == prev_hash && snapshot_.timestamp == timestamp &&
      snapshot_.merkle_root == merkle_root && snapshot_.seq == seq &&
      snapshot_.revoked == revoked) {
    return;
  }
  snapshot_.signature = signature;
  snapshot_.prev_hash = prev_hash;
  snapshot_.timestamp = timestamp;
  snapshot_.merkle_root = merkle_root;
  snapshot_.seq = seq;
  snapshot_.revoked = revoked;
  snapshot_valid_ = true;
  payload_valid_ = false;
  hash_valid_ = false;
  wire_valid_ = false;
}

const Bytes& Block::payload_locked() const {
  revalidate_header_locked();
  if (!payload_valid_) {
    // Recycle the cache's old buffer and size the payload exactly: u64 seq +
    // length-prefixed 32-byte hashes + i64 timestamp + u32 count + u64 ids.
    ByteWriter w(std::move(payload_cache_));
    w.reserve(92 + 8 * revoked.size());
    w.u64(seq);
    w.bytes(prev_hash);
    w.i64(timestamp);
    w.bytes(merkle_root);
    w.u32(static_cast<std::uint32_t>(revoked.size()));
    for (VehicleId v : revoked) w.u64(v.value);
    payload_cache_ = w.take();
    payload_valid_ = true;
  }
  return payload_cache_;
}

const crypto::MerkleTree& Block::tree_locked() const {
  if (!tree_cache_) tree_cache_ = build_tree(plans_);
  return *tree_cache_;
}

Bytes Block::signed_payload() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return payload_locked();
}

crypto::Digest Block::hash() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  const Bytes& payload = payload_locked();
  if (!hash_valid_) {
    crypto::Sha256 h;
    h.update(signature);
    h.update(payload);
    hash_cache_ = h.finish();
    hash_valid_ = true;
  }
  return hash_cache_;
}

Block Block::package(BlockSeq seq, const crypto::Digest& prev_hash, Tick timestamp,
                     std::vector<aim::TravelPlan> plans,
                     const crypto::Signer& signer, std::vector<VehicleId> revoked) {
  Block b;
  b.seq = seq;
  b.prev_hash = prev_hash;
  b.timestamp = timestamp;
  b.plans_ = std::move(plans);
  b.revoked = std::move(revoked);
  b.tree_cache_ = build_tree(b.plans_);
  b.merkle_root = b.tree_cache_->root();
  b.signature = signer.sign(b.signed_payload());
  return b;
}

bool Block::verify_signature(const crypto::Verifier& verifier) const {
  // Copy the payload out rather than verifying under cache_mu_: an RSA
  // modexp inside the lock would serialize the worker pool's fan-out.
  return verifier.verify(signed_payload(), signature);
}

bool Block::verify_merkle() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return tree_locked().root() == merkle_root;
}

const aim::TravelPlan* Block::plan_for(VehicleId id) const {
  for (const aim::TravelPlan& p : plans_) {
    if (p.vehicle == id) return &p;
  }
  return nullptr;
}

crypto::MerkleProof Block::prove_plan(std::size_t index) const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return tree_locked().prove(index);
}

Bytes Block::serialize() const {
  // Header (100 bytes + signature + revoked ids) plus each length-prefixed
  // plan; reserving the exact total turns the per-plan appends from repeated
  // geometric regrowth (quadratic copying on large windows) into one
  // allocation.
  std::size_t total = 100 + signature.size() + 8 * revoked.size();
  for (const aim::TravelPlan& p : plans_) total += 4 + p.wire_size();
  ByteWriter w;
  w.reserve(total);
  w.bytes(signature);
  w.bytes(prev_hash);
  w.i64(timestamp);
  w.bytes(merkle_root);
  w.u64(seq);
  w.u32(static_cast<std::uint32_t>(revoked.size()));
  for (VehicleId v : revoked) w.u64(v.value);
  w.u32(static_cast<std::uint32_t>(plans_.size()));
  for (const aim::TravelPlan& p : plans_) w.bytes(p.serialize());
  return w.take();
}

std::optional<Block> Block::deserialize(const Bytes& data) {
  ByteReader r(data);
  Block b;
  b.signature = r.bytes();
  const Bytes prev = r.bytes();
  if (prev.size() != b.prev_hash.size()) return std::nullopt;
  std::copy(prev.begin(), prev.end(), b.prev_hash.begin());
  b.timestamp = r.i64();
  const Bytes root = r.bytes();
  if (root.size() != b.merkle_root.size()) return std::nullopt;
  std::copy(root.begin(), root.end(), b.merkle_root.begin());
  b.seq = r.u64();
  const std::uint32_t n_revoked = r.u32();
  if (n_revoked > 100000) return std::nullopt;
  b.revoked.reserve(n_revoked);
  for (std::uint32_t i = 0; i < n_revoked; ++i) b.revoked.push_back(VehicleId{r.u64()});
  const std::uint32_t n = r.u32();
  if (n > 100000) return std::nullopt;
  b.plans_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    auto plan = aim::TravelPlan::deserialize(r.bytes());
    if (!plan) return std::nullopt;
    b.plans_.push_back(std::move(*plan));
  }
  if (!r.ok() || !r.at_end()) return std::nullopt;
  return b;
}

std::size_t Block::wire_size() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  revalidate_header_locked();
  if (!wire_valid_) {
    wire_size_cache_ = serialize().size();
    wire_valid_ = true;
  }
  return wire_size_cache_;
}

}  // namespace nwade::chain
