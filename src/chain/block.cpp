#include "chain/block.h"

namespace nwade::chain {

crypto::MerkleTree Block::build_tree(const std::vector<aim::TravelPlan>& plans) {
  std::vector<Bytes> leaves;
  leaves.reserve(plans.size());
  for (const aim::TravelPlan& p : plans) leaves.push_back(p.serialize());
  return crypto::MerkleTree(leaves);
}

Bytes Block::signed_payload() const {
  ByteWriter w;
  w.u64(seq);
  w.bytes(prev_hash);
  w.i64(timestamp);
  w.bytes(merkle_root);
  w.u32(static_cast<std::uint32_t>(revoked.size()));
  for (VehicleId v : revoked) w.u64(v.value);
  return w.take();
}

crypto::Digest Block::hash() const {
  crypto::Sha256 h;
  h.update(signature);
  h.update(signed_payload());
  return h.finish();
}

Block Block::package(BlockSeq seq, const crypto::Digest& prev_hash, Tick timestamp,
                     std::vector<aim::TravelPlan> plans,
                     const crypto::Signer& signer, std::vector<VehicleId> revoked) {
  Block b;
  b.seq = seq;
  b.prev_hash = prev_hash;
  b.timestamp = timestamp;
  b.plans = std::move(plans);
  b.revoked = std::move(revoked);
  b.merkle_root = build_tree(b.plans).root();
  b.signature = signer.sign(b.signed_payload());
  return b;
}

bool Block::verify_signature(const crypto::Verifier& verifier) const {
  return verifier.verify(signed_payload(), signature);
}

bool Block::verify_merkle() const { return build_tree(plans).root() == merkle_root; }

const aim::TravelPlan* Block::plan_for(VehicleId id) const {
  for (const aim::TravelPlan& p : plans) {
    if (p.vehicle == id) return &p;
  }
  return nullptr;
}

crypto::MerkleProof Block::prove_plan(std::size_t index) const {
  return build_tree(plans).prove(index);
}

Bytes Block::serialize() const {
  ByteWriter w;
  w.bytes(signature);
  w.bytes(prev_hash);
  w.i64(timestamp);
  w.bytes(merkle_root);
  w.u64(seq);
  w.u32(static_cast<std::uint32_t>(revoked.size()));
  for (VehicleId v : revoked) w.u64(v.value);
  w.u32(static_cast<std::uint32_t>(plans.size()));
  for (const aim::TravelPlan& p : plans) w.bytes(p.serialize());
  return w.take();
}

std::optional<Block> Block::deserialize(const Bytes& data) {
  ByteReader r(data);
  Block b;
  b.signature = r.bytes();
  const Bytes prev = r.bytes();
  if (prev.size() != b.prev_hash.size()) return std::nullopt;
  std::copy(prev.begin(), prev.end(), b.prev_hash.begin());
  b.timestamp = r.i64();
  const Bytes root = r.bytes();
  if (root.size() != b.merkle_root.size()) return std::nullopt;
  std::copy(root.begin(), root.end(), b.merkle_root.begin());
  b.seq = r.u64();
  const std::uint32_t n_revoked = r.u32();
  if (n_revoked > 100000) return std::nullopt;
  b.revoked.reserve(n_revoked);
  for (std::uint32_t i = 0; i < n_revoked; ++i) b.revoked.push_back(VehicleId{r.u64()});
  const std::uint32_t n = r.u32();
  if (n > 100000) return std::nullopt;
  b.plans.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    auto plan = aim::TravelPlan::deserialize(r.bytes());
    if (!plan) return std::nullopt;
    b.plans.push_back(std::move(*plan));
  }
  if (!r.ok() || !r.at_end()) return std::nullopt;
  return b;
}

std::size_t Block::wire_size() const { return serialize().size(); }

}  // namespace nwade::chain
