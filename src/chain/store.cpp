#include "chain/store.h"

namespace nwade::chain {

const char* chain_error_name(ChainError e) {
  switch (e) {
    case ChainError::kBadSignature: return "bad_signature";
    case ChainError::kBadMerkleRoot: return "bad_merkle_root";
    case ChainError::kBrokenLinkage: return "broken_linkage";
    case ChainError::kNonMonotonicSeq: return "non_monotonic_seq";
    case ChainError::kStaleTimestamp: return "stale_timestamp";
  }
  return "?";
}

Result<void, ChainError> BlockStore::append(const Block& block,
                                            const crypto::Verifier& verifier) {
  if (!block.verify_signature(verifier)) return ChainError::kBadSignature;
  if (!block.verify_merkle()) return ChainError::kBadMerkleRoot;
  if (!blocks_.empty()) {
    const Block& prev = blocks_.back();
    if (block.seq != prev.seq + 1) return ChainError::kNonMonotonicSeq;
    if (block.prev_hash != prev.hash()) return ChainError::kBrokenLinkage;
    if (block.timestamp < prev.timestamp) return ChainError::kStaleTimestamp;
  }
  blocks_.push_back(block);
  while (blocks_.size() > max_depth_) blocks_.pop_front();
  return Result<void, ChainError>::ok();
}

std::vector<BlockSeq> BlockStore::missing_before(BlockSeq incoming,
                                                 std::size_t limit) const {
  std::vector<BlockSeq> out;
  if (blocks_.empty()) return out;
  const BlockSeq expected = next_expected();
  if (incoming <= expected) return out;  // contiguous or replay
  for (BlockSeq seq = expected; seq < incoming && out.size() < limit; ++seq) {
    out.push_back(seq);
  }
  return out;
}

const Block* BlockStore::by_seq(BlockSeq seq) const {
  for (const Block& b : blocks_) {
    if (b.seq == seq) return &b;
  }
  return nullptr;
}

void BlockStore::checkpoint_save(ByteWriter& w) const {
  w.u64(max_depth_);
  w.u32(static_cast<std::uint32_t>(blocks_.size()));
  for (const Block& b : blocks_) w.bytes(b.serialize());
}

bool BlockStore::checkpoint_restore(ByteReader& r) {
  max_depth_ = static_cast<std::size_t>(r.u64());
  const std::uint32_t n = r.u32();
  if (!r.ok() || n > r.remaining()) return false;  // each block is >= 1 byte
  blocks_.clear();
  for (std::uint32_t i = 0; i < n; ++i) {
    std::optional<Block> b = Block::deserialize(r.bytes());
    if (!r.ok() || !b) return false;
    blocks_.push_back(std::move(*b));
  }
  return true;
}

const aim::TravelPlan* BlockStore::find_plan(VehicleId id) const {
  for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it) {
    if (const aim::TravelPlan* p = it->plan_for(id)) return p;
  }
  return nullptr;
}

}  // namespace nwade::chain
