#include "nwade/message_codec.h"

#include <cstdio>
#include <cstdlib>
#include <memory>

namespace nwade::protocol {
namespace {

enum class Tag : std::uint8_t {
  kPlanRequest = 0,
  kBlockBroadcast = 1,
  kBlockRequest = 2,
  kBlockResponse = 3,
  kIncidentReport = 4,
  kVerifyRequest = 5,
  kVerifyResponse = 6,
  kAlarmDismiss = 7,
  kEvacuationAlert = 8,
  kGlobalReport = 9,
  kBlacklistGossip = 10,
};

void encode_block(ByteWriter& w, const std::shared_ptr<const chain::Block>& b) {
  w.bytes(b != nullptr ? b->serialize() : Bytes{});
}

std::shared_ptr<const chain::Block> decode_block(ByteReader& r) {
  const Bytes raw = r.bytes();
  if (!r.ok() || raw.empty()) return nullptr;
  std::optional<chain::Block> b = chain::Block::deserialize(raw);
  if (!b) return nullptr;
  return std::make_shared<const chain::Block>(std::move(*b));
}

}  // namespace

void encode_evidence(ByteWriter& w, const Evidence& e) {
  w.u64(e.suspect.value);
  e.observed.serialize(w);
  w.i64(e.observed_at);
  w.f64(e.deviation_m);
}

Evidence decode_evidence(ByteReader& r) {
  Evidence e;
  e.suspect = VehicleId{r.u64()};
  e.observed = traffic::VehicleStatus::deserialize(r);
  e.observed_at = r.i64();
  e.deviation_m = r.f64();
  return e;
}

void encode_message(ByteWriter& w, const net::Message& msg) {
  if (const auto* m = dynamic_cast<const PlanRequest*>(&msg)) {
    w.u8(static_cast<std::uint8_t>(Tag::kPlanRequest));
    w.u64(m->vehicle.value);
    w.i64(m->route_id);
    m->traits.serialize(w);
    m->status.serialize(w);
  } else if (const auto* m = dynamic_cast<const BlockBroadcast*>(&msg)) {
    w.u8(static_cast<std::uint8_t>(Tag::kBlockBroadcast));
    encode_block(w, m->block);
  } else if (const auto* m = dynamic_cast<const BlockRequest*>(&msg)) {
    w.u8(static_cast<std::uint8_t>(Tag::kBlockRequest));
    w.u64(m->requester.value);
    w.u64(m->plan_of.value);
    w.u64(m->seq);
    w.u8(m->by_seq ? 1 : 0);
  } else if (const auto* m = dynamic_cast<const BlockResponse*>(&msg)) {
    w.u8(static_cast<std::uint8_t>(Tag::kBlockResponse));
    w.u64(m->plan_of.value);
    encode_block(w, m->block);
  } else if (const auto* m = dynamic_cast<const IncidentReport*>(&msg)) {
    w.u8(static_cast<std::uint8_t>(Tag::kIncidentReport));
    w.u64(m->reporter.value);
    encode_evidence(w, m->evidence);
    w.u64(m->block_seq);
    w.u8(m->misbehavior_claim ? 1 : 0);
  } else if (const auto* m = dynamic_cast<const VerifyRequest*>(&msg)) {
    w.u8(static_cast<std::uint8_t>(Tag::kVerifyRequest));
    w.u64(m->request_id);
    w.u64(m->suspect.value);
  } else if (const auto* m = dynamic_cast<const VerifyResponse*>(&msg)) {
    w.u8(static_cast<std::uint8_t>(Tag::kVerifyResponse));
    w.u64(m->request_id);
    w.u64(m->responder.value);
    w.u64(m->suspect.value);
    w.u8(m->abnormal ? 1 : 0);
    encode_evidence(w, m->evidence);
  } else if (const auto* m = dynamic_cast<const AlarmDismiss*>(&msg)) {
    w.u8(static_cast<std::uint8_t>(Tag::kAlarmDismiss));
    w.u64(m->reporter.value);
    w.u64(m->suspect.value);
  } else if (const auto* m = dynamic_cast<const EvacuationAlert*>(&msg)) {
    w.u8(static_cast<std::uint8_t>(Tag::kEvacuationAlert));
    w.u64(m->suspect.value);
    m->suspect_traits.serialize(w);
    m->last_known.serialize(w);
  } else if (const auto* m = dynamic_cast<const GlobalReport*>(&msg)) {
    w.u8(static_cast<std::uint8_t>(Tag::kGlobalReport));
    w.u64(m->reporter.value);
    w.u8(static_cast<std::uint8_t>(m->reason));
    w.u64(m->block_seq);
    w.u64(m->suspect.value);
    m->suspect_status.serialize(w);
  } else if (const auto* m = dynamic_cast<const BlacklistGossip*>(&msg)) {
    w.u8(static_cast<std::uint8_t>(Tag::kBlacklistGossip));
    w.u32(m->origin_shard);
    w.i64(m->issued_at);
    w.u32(static_cast<std::uint32_t>(m->suspects.size()));
    for (const VehicleId v : m->suspects) w.u64(v.value);
  } else {
    std::fprintf(stderr, "message_codec: unknown message kind '%s'\n",
                 msg.kind().c_str());
    std::abort();
  }
}

net::MessagePtr decode_message(ByteReader& r) {
  const std::uint8_t tag = r.u8();
  if (!r.ok()) return nullptr;
  switch (static_cast<Tag>(tag)) {
    case Tag::kPlanRequest: {
      auto m = std::make_shared<PlanRequest>();
      m->vehicle = VehicleId{r.u64()};
      m->route_id = static_cast<int>(r.i64());
      m->traits = traffic::VehicleTraits::deserialize(r);
      m->status = traffic::VehicleStatus::deserialize(r);
      return r.ok() ? m : nullptr;
    }
    case Tag::kBlockBroadcast: {
      auto m = std::make_shared<BlockBroadcast>();
      m->block = decode_block(r);
      return r.ok() && m->block != nullptr ? m : nullptr;
    }
    case Tag::kBlockRequest: {
      auto m = std::make_shared<BlockRequest>();
      m->requester = VehicleId{r.u64()};
      m->plan_of = VehicleId{r.u64()};
      m->seq = r.u64();
      m->by_seq = r.u8() != 0;
      return r.ok() ? m : nullptr;
    }
    case Tag::kBlockResponse: {
      auto m = std::make_shared<BlockResponse>();
      m->plan_of = VehicleId{r.u64()};
      m->block = decode_block(r);
      return r.ok() && m->block != nullptr ? m : nullptr;
    }
    case Tag::kIncidentReport: {
      auto m = std::make_shared<IncidentReport>();
      m->reporter = VehicleId{r.u64()};
      m->evidence = decode_evidence(r);
      m->block_seq = r.u64();
      m->misbehavior_claim = r.u8() != 0;
      return r.ok() ? m : nullptr;
    }
    case Tag::kVerifyRequest: {
      auto m = std::make_shared<VerifyRequest>();
      m->request_id = r.u64();
      m->suspect = VehicleId{r.u64()};
      return r.ok() ? m : nullptr;
    }
    case Tag::kVerifyResponse: {
      auto m = std::make_shared<VerifyResponse>();
      m->request_id = r.u64();
      m->responder = VehicleId{r.u64()};
      m->suspect = VehicleId{r.u64()};
      m->abnormal = r.u8() != 0;
      m->evidence = decode_evidence(r);
      return r.ok() ? m : nullptr;
    }
    case Tag::kAlarmDismiss: {
      auto m = std::make_shared<AlarmDismiss>();
      m->reporter = VehicleId{r.u64()};
      m->suspect = VehicleId{r.u64()};
      return r.ok() ? m : nullptr;
    }
    case Tag::kEvacuationAlert: {
      auto m = std::make_shared<EvacuationAlert>();
      m->suspect = VehicleId{r.u64()};
      m->suspect_traits = traffic::VehicleTraits::deserialize(r);
      m->last_known = traffic::VehicleStatus::deserialize(r);
      return r.ok() ? m : nullptr;
    }
    case Tag::kGlobalReport: {
      auto m = std::make_shared<GlobalReport>();
      m->reporter = VehicleId{r.u64()};
      m->reason = static_cast<GlobalReason>(r.u8());
      m->block_seq = r.u64();
      m->suspect = VehicleId{r.u64()};
      m->suspect_status = traffic::VehicleStatus::deserialize(r);
      return r.ok() && static_cast<std::uint8_t>(m->reason) <= 3 ? m : nullptr;
    }
    case Tag::kBlacklistGossip: {
      auto m = std::make_shared<BlacklistGossip>();
      m->origin_shard = r.u32();
      m->issued_at = r.i64();
      const std::uint32_t n = r.u32();
      if (!r.ok() || n > r.remaining() / 8) return nullptr;
      m->suspects.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) m->suspects.push_back(VehicleId{r.u64()});
      return r.ok() ? m : nullptr;
    }
  }
  return nullptr;
}

}  // namespace nwade::protocol
