// The NWADE intersection manager: the paper's 7-state automaton (Fig. 2).
//
//   Standby -> Scheduling -> BlockPackaging -> Dissemination -> Standby
//      \-> ReportVerification -> (dismiss | Evacuation -> Recovery) -> Standby
//
// Every processing window (delta) it batches plan requests, runs the
// DASH-like reservation scheduler, packages the plans into a signed block
// (Section IV-B1), and broadcasts it. Incident reports trigger report
// verification (Section IV-B2): direct perception when the suspect is in
// range, otherwise two rounds of majority voting over disjoint verifier
// groups. Confirmed threats trigger evacuation and post-evacuation recovery
// (Section IV-B5).
//
// The node can also play the compromised IM of threat models (iii)/(iv):
// issuing conflicting travel plans and stonewalling incident reports.
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <set>

#include "aim/scheduler.h"
#include "chain/block.h"
#include "net/clock.h"
#include "net/network.h"
#include "nwade/config.h"
#include "nwade/messages.h"
#include "nwade/metrics.h"
#include "nwade/sensor.h"
#include "util/telemetry.h"
#include "util/trace.h"

namespace nwade::protocol {

/// Fig. 2, intersection-manager side: the 7 automaton states.
enum class ImState : std::uint8_t {
  kStandby = 0,
  kScheduling,
  kBlockPackaging,
  kDissemination,
  kReportVerification,
  kEvacuation,
  kRecovery,
};

const char* im_state_name(ImState s);

enum class ImAttackMode : std::uint8_t {
  kNone = 0,
  /// Issue a pair of conflicting travel plans (threat model iii).
  kConflictingPlans,
  /// Conflicting plans + ignore incident reports (collusion, model iv).
  kConflictingPlansAndSilence,
  /// Ignore incident reports only (quiet collusion with vehicle attackers).
  kSilence,
  /// Issue a sham evacuation alert against a benign vehicle.
  kShamAlert,
};

struct ImAttackProfile {
  ImAttackMode mode{ImAttackMode::kNone};
  Tick trigger_at{0};
};

struct ImContext {
  const traffic::Intersection* intersection{nullptr};
  const NwadeConfig* config{nullptr};
  net::Network* network{nullptr};
  net::SimClock* clock{nullptr};
  net::EventQueue* queue{nullptr};
  const SensorProvider* sensors{nullptr};
  const crypto::Signer* signer{nullptr};
  Metrics* metrics{nullptr};
  /// Collusion roster for malicious modes; also used for metric labelling.
  const std::set<VehicleId>* malicious_ids{nullptr};
  /// Optional telemetry (nullptr = inert handles / no trace); the World
  /// injects its per-run registry and tracer here.
  util::telemetry::Registry* registry{nullptr};
  util::trace::Tracer* tracer{nullptr};
};

class ImNode final : public net::Node {
 public:
  ImNode(ImContext ctx, aim::SchedulerConfig scheduler_config = {},
         ImAttackProfile attack = {});

  // --- net::Node ----------------------------------------------------------
  NodeId node_id() const override { return kImNodeId; }
  geom::Vec2 position() const override { return {0, 0}; }
  void on_message(const net::Envelope& env) override;

  /// Schedules the periodic processing-window events; call once at t=0.
  void start();

  // --- fault injection (docs/FAULT_MODEL.md) --------------------------------
  /// Simulated crash: drops all volatile state (pending requests, verification
  /// rounds, the active-plan table). The signed chain (`recent_blocks_`, seq,
  /// prev hash) models durable storage and survives. While down the node
  /// ignores messages and skips processing windows; the network additionally
  /// blackholes its traffic when the crash comes from a FaultProfile outage.
  void crash(Tick now);
  /// Recovery: rebuilds `active_plans_` (newest plan per vehicle, exited ones
  /// pruned) and the managed-vehicle roster from the durable block log, then
  /// resumes normal window processing.
  void restart(Tick now);
  bool down() const { return down_; }

  // --- introspection --------------------------------------------------------
  ImState state() const { return state_; }
  std::size_t active_plan_count() const { return active_plans_.size(); }
  chain::BlockSeq next_seq() const { return seq_; }
  bool is_malicious() const { return attack_.mode != ImAttackMode::kNone; }
  const aim::ReservationScheduler& scheduler() const { return scheduler_; }
  /// Number of verification rounds currently awaiting a tally deadline.
  /// Lets tests place checkpoints *inside* a verify round.
  std::size_t active_verification_rounds() const { return rounds_.size(); }

  // --- cross-IM evidence gossip (sim::Grid) ---------------------------------
  /// Imports another intersection's confirmed threat into the local
  /// blacklist. Unlike confirm_threat this is forward-looking service
  /// refusal only: no evacuation, no state-machine transition — the suspect
  /// is (usually) not even here yet. Its future plan requests are rejected
  /// (handle_plan_request) and its revocation rides in every block this IM
  /// publishes. Returns true when the suspect was newly imported.
  bool import_blacklist(VehicleId suspect, Tick now);
  /// Confirmed locally or imported via gossip.
  bool is_blacklisted(VehicleId v) const { return confirmed_suspects_.contains(v); }
  const std::set<VehicleId>& confirmed_suspects() const {
    return confirmed_suspects_;
  }

  // --- checkpoint/restore (sim/checkpoint) ----------------------------------
  /// Serializes the full automaton: FSM state, plan tables, the durable
  /// block log, every verification round with its pending tally deadline,
  /// strike/blacklist tables, courtesy-gap timers, the scheduler's
  /// reservation tables, and the pending window event's exact event-queue
  /// coordinates.
  void checkpoint_save(ByteWriter& w) const;
  /// Restores onto a node constructed in resume mode (start() not called;
  /// its sequence number burned by the caller). Re-schedules the window
  /// event and each round's tally deadline at their original (when, seq)
  /// positions. Returns false on malformed input.
  bool checkpoint_restore(ByteReader& r);

 private:
  struct VerificationRound {
    std::uint64_t id{0};
    VehicleId suspect;
    std::set<VehicleId> reporters;
    int phase{1};
    Tick started_at{0};               ///< report time, for the trace span
    std::set<VehicleId> asked_ever;   ///< across both phases
    std::map<VehicleId, bool> votes;  ///< responder -> abnormal?
  };

  void process_window();
  void publish_block(std::vector<aim::TravelPlan> plans, bool count_timing);
  void prune_exited_plans(Tick now);
  /// Mixed-traffic extension: detect legacy (non-communicating) vehicles in
  /// perception range, synthesize virtual constant-speed plans for them, and
  /// reserve their conflict zones so managed traffic is scheduled around
  /// them. Returns the fresh virtual plans for inclusion in the next block.
  std::vector<aim::TravelPlan> track_unmanaged(Tick now);

  void handle_plan_request(const PlanRequest& req);
  void handle_incident_report(const IncidentReport& report, Tick now);
  void handle_verify_response(const VerifyResponse& resp);
  void handle_block_request(const BlockRequest& req, NodeId from);

  /// Starts (or joins) a verification round for a suspect. Returns false when
  /// the report was resolved immediately via direct perception.
  void start_verification(VehicleId suspect, VehicleId reporter, Tick now);
  /// Sends VerifyRequests to up to `group_size` vehicles near the suspect
  /// that have not been asked yet. Returns how many were asked.
  int ask_group(VerificationRound& round, Tick now);
  void tally_round(std::uint64_t round_id);

  void dismiss_alarm(VehicleId suspect, const std::set<VehicleId>& reporters,
                     Tick now);
  void confirm_threat(VehicleId suspect, Tick now);
  void check_evacuation_progress();
  void finish_evacuation(Tick now);

  /// Snapshot of active vehicles (plan-following assumption) for replanning.
  std::vector<aim::ActiveVehicle> active_vehicles(Tick now,
                                                  VehicleId exclude) const;

  /// Attack helper: warp one request's plan onto a colliding trajectory.
  bool try_inject_conflict(std::vector<aim::TravelPlan>& plans, Tick now);
  bool silenced(Tick now) const;

  void set_state(ImState next) { state_ = next; }

  /// Records an instant on the detection timeline (no-op unless tracing).
  void trace_instant(const char* cat, const char* name, Tick now,
                     std::int64_t arg = 0) const;
  /// Closes a verification round's trace span [started_at, now].
  void trace_round_end(const VerificationRound& round, Tick now) const;

  /// Pending event-queue coordinates for a timer this node owns. Closures
  /// cannot be serialized, so each scheduling site records (when, seq) here
  /// and checkpoint_restore re-creates the closure at the same coordinates.
  struct PendingEvent {
    std::uint64_t seq{0};
    Tick when{0};
  };

  ImContext ctx_;
  aim::ReservationScheduler scheduler_;
  ImAttackProfile attack_;

  ImState state_{ImState::kStandby};
  std::vector<PlanRequest> pending_requests_;
  std::map<VehicleId, aim::TravelPlan> active_plans_;
  crypto::Digest prev_hash_{};
  chain::BlockSeq seq_{0};
  std::deque<chain::Block> recent_blocks_;

  std::map<std::uint64_t, VerificationRound> rounds_;
  std::map<VehicleId, std::uint64_t> round_by_suspect_;
  std::uint64_t next_round_id_{1};
  std::map<VehicleId, int> reporter_strikes_;

  std::set<VehicleId> unmanaged_ids_;
  /// Courtesy-gap state for tracked vehicles parked at their stop line (see
  /// track_unmanaged): start of the current parking episode, the earliest
  /// time each vehicle may be granted another hold (re-arms after a recovery
  /// window), and the deadline until which new plan issuance is deferred so
  /// the junction drains.
  std::map<VehicleId, Tick> parked_since_;
  std::map<VehicleId, Tick> courtesy_retry_at_;
  Tick courtesy_until_{0};
  /// Every vehicle that ever requested a plan: a stale managed vehicle must
  /// never be reclassified as a legacy vehicle.
  std::set<VehicleId> ever_planned_;
  bool down_{false};
  VehicleId evacuation_suspect_;
  int suspect_stopped_checks_{0};
  std::set<VehicleId> confirmed_suspects_;
  bool conflict_injected_{false};
  bool sham_alert_sent_{false};

  /// The one pending window event (start() keeps exactly one armed).
  std::optional<PendingEvent> window_event_;
  /// Pending tally deadlines by round id.
  std::map<std::uint64_t, PendingEvent> pending_tallies_;

  /// Registry handles (inert no-ops when ctx_.registry is null).
  util::telemetry::Counter windows_counter_;
  util::telemetry::Counter plans_scheduled_counter_;
  util::telemetry::Gauge reservations_gauge_;

  /// Reused sensor-sweep buffer (the IM is single-threaded and the sweep
  /// sites never nest, so one buffer serves them all). Transient — never
  /// checkpointed.
  std::vector<Observation> sense_buf_;
};

}  // namespace nwade::protocol
