// Wire codec for NWADE protocol messages, used by sim/checkpoint to
// serialize the network's in-flight queue.
//
// The net layer deliberately knows nothing about concrete message types, so
// its checkpoint hooks take encode/decode callbacks; this is the one place
// that enumerates every kind. Encoding is a one-byte tag plus the message's
// fields in declaration order, reusing the existing VehicleTraits /
// VehicleStatus / Block serializers so the bytes stay canonical.
#pragma once

#include "net/network.h"
#include "nwade/messages.h"

namespace nwade::protocol {

/// Serializes one protocol message (tag + payload). Aborts on a message kind
/// this codec does not know — a new message type must be added here before
/// it can cross a checkpoint.
void encode_message(ByteWriter& w, const net::Message& msg);

/// Decodes one message previously written by encode_message. Returns nullptr
/// on truncated, corrupt, or unknown-tag input (the reader's error flag is
/// also set for truncation).
net::MessagePtr decode_message(ByteReader& r);

/// Evidence is embedded in several messages; exposed for the protocol-state
/// serializers that store raw Evidence values.
void encode_evidence(ByteWriter& w, const Evidence& e);
Evidence decode_evidence(ByteReader& r);

}  // namespace nwade::protocol
