#include "nwade/im_node.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdlib>

#include "util/log.h"

namespace nwade::protocol {

namespace {

double elapsed_us(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                   t0)
      .count();
}

constexpr int kVerifierGroupSize = 6;

}  // namespace

const char* im_state_name(ImState s) {
  switch (s) {
    case ImState::kStandby: return "standby";
    case ImState::kScheduling: return "scheduling";
    case ImState::kBlockPackaging: return "block_packaging";
    case ImState::kDissemination: return "dissemination";
    case ImState::kReportVerification: return "report_verification";
    case ImState::kEvacuation: return "evacuation";
    case ImState::kRecovery: return "recovery";
  }
  return "?";
}

ImNode::ImNode(ImContext ctx, aim::SchedulerConfig scheduler_config,
               ImAttackProfile attack)
    : ctx_(ctx), scheduler_(*ctx.intersection, scheduler_config), attack_(attack) {
  assert(ctx_.intersection && ctx_.config && ctx_.network && ctx_.clock &&
         ctx_.queue && ctx_.sensors && ctx_.signer && ctx_.metrics &&
         ctx_.malicious_ids);
  if (ctx_.registry != nullptr) {
    windows_counter_ = ctx_.registry->counter("aim.windows");
    plans_scheduled_counter_ = ctx_.registry->counter("aim.plans_scheduled");
    reservations_gauge_ = ctx_.registry->gauge("aim.reservations_active");
  }
}

void ImNode::trace_instant(const char* cat, const char* name, Tick now,
                           std::int64_t arg) const {
  if (ctx_.tracer == nullptr || !util::trace::tracing_active()) return;
  ctx_.tracer->instant(cat, name, now, "id", arg);
}

void ImNode::trace_round_end(const VerificationRound& round, Tick now) const {
  if (ctx_.tracer == nullptr || !util::trace::tracing_active()) return;
  ctx_.tracer->complete("nwade", "verify_round", round.started_at, now,
                        /*wall_us=*/-1.0, "suspect",
                        static_cast<std::int64_t>(round.suspect.value));
}

void ImNode::start() {
  const Duration delta = ctx_.config->processing_window_ms;
  const Tick when = ctx_.clock->now() + delta;
  const std::uint64_t seq = ctx_.queue->schedule_at(when, [this] {
    process_window();
    start();  // re-arm the next window
  });
  window_event_ = PendingEvent{seq, when};
}

void ImNode::crash(Tick now) {
  if (down_) return;
  down_ = true;
  // Volatile state is lost; the signed block log (seq_, prev_hash_,
  // recent_blocks_) models durable storage and survives the restart.
  pending_requests_.clear();
  active_plans_.clear();
  rounds_.clear();
  round_by_suspect_.clear();
  unmanaged_ids_.clear();
  parked_since_.clear();
  courtesy_retry_at_.clear();
  courtesy_until_ = 0;
  ever_planned_.clear();
  evacuation_suspect_ = VehicleId{};
  suspect_stopped_checks_ = 0;
  set_state(ImState::kStandby);
  ctx_.metrics->im_crashes++;
  trace_instant("im", "crash", now);
  NWADE_LOG(kInfo) << "IM crashed at t=" << now;
}

void ImNode::restart(Tick now) {
  if (!down_) return;
  down_ = false;
  ctx_.metrics->im_restarts++;
  // Rebuild the plan table from the durable chain: newest plan per vehicle,
  // skipping perception-derived virtual plans (the next window re-tracks any
  // legacy vehicle still in range) and vehicles that already left.
  for (const chain::Block& block : recent_blocks_) {
    for (const aim::TravelPlan& plan : block.plans()) {
      if (plan.unmanaged) continue;
      ever_planned_.insert(plan.vehicle);
      const auto it = active_plans_.find(plan.vehicle);
      if (it == active_plans_.end() || it->second.issued_at <= plan.issued_at) {
        active_plans_[plan.vehicle] = plan;
      }
    }
    for (VehicleId revoked : block.revoked) confirmed_suspects_.insert(revoked);
  }
  prune_exited_plans(now);
  // Scheduler reservations for the recovered plans were also lost; re-commit
  // them so post-restart scheduling cannot double-book an occupied zone.
  for (const auto& [vid, plan] : active_plans_) {
    scheduler_.reserve_virtual(plan);
  }
  trace_instant("im", "restart", now,
                static_cast<std::int64_t>(active_plans_.size()));
  NWADE_LOG(kInfo) << "IM restarted at t=" << now << "; recovered "
                   << active_plans_.size() << " active plans from "
                   << recent_blocks_.size() << " durable blocks";
}

bool ImNode::silenced(Tick now) const {
  return (attack_.mode == ImAttackMode::kSilence ||
          attack_.mode == ImAttackMode::kConflictingPlansAndSilence) &&
         now >= attack_.trigger_at;
}

// --- window processing -----------------------------------------------------------

void ImNode::process_window() {
  const Tick now = ctx_.clock->now();
  if (down_) return;  // crashed: windows tick but nothing runs
  if (state_ == ImState::kEvacuation) {
    check_evacuation_progress();
    return;
  }
  if (state_ == ImState::kReportVerification) return;  // wait for the tally

  prune_exited_plans(now);
  scheduler_.release_before(now - 60'000);

  std::vector<aim::TravelPlan> virtual_plans = track_unmanaged(now);
  // Courtesy gap active: requests stay pending (deduplicated on arrival) and
  // are scheduled once the hold expires. The block published below (possibly
  // empty) doubles as a liveness heartbeat so the waiting requesters keep
  // retrying instead of falling back to degraded mode.
  const bool defer_issuance = now < courtesy_until_;
  if (pending_requests_.empty() && virtual_plans.empty()) return;

  const auto t0 = std::chrono::steady_clock::now();
  set_state(ImState::kScheduling);
  std::vector<aim::TravelPlan> plans = std::move(virtual_plans);
  if (!defer_issuance) {
    plans.reserve(plans.size() + pending_requests_.size());
    for (const PlanRequest& req : pending_requests_) {
      ever_planned_.insert(req.vehicle);
      plans.push_back(scheduler_.schedule(req.vehicle, req.route_id, req.traits,
                                          now, req.status.speed_mps));
    }
    pending_requests_.clear();
  }

  // Compromised IM: warp one plan onto a colliding trajectory.
  const bool attack_window =
      (attack_.mode == ImAttackMode::kConflictingPlans ||
       attack_.mode == ImAttackMode::kConflictingPlansAndSilence) &&
      now >= attack_.trigger_at && !conflict_injected_;
  if (attack_window && try_inject_conflict(plans, now)) {
    conflict_injected_ = true;
    if (!ctx_.metrics->im_conflict_injected) ctx_.metrics->im_conflict_injected = now;
  }

  set_state(ImState::kBlockPackaging);
  const auto plan_count = static_cast<std::int64_t>(plans.size());
  for (const aim::TravelPlan& p : plans) active_plans_[p.vehicle] = p;
  publish_block(std::move(plans), /*count_timing=*/false);
  const double window_us = elapsed_us(t0);
  ctx_.metrics->im_package_us.push_back(window_us);
  windows_counter_.inc();
  plans_scheduled_counter_.inc(plan_count);
  reservations_gauge_.set(
      static_cast<std::int64_t>(scheduler_.reservation_count()));
  if (ctx_.tracer != nullptr && util::trace::tracing_active()) {
    ctx_.tracer->complete("aim", "process_window", now, ctx_.clock->now(),
                          window_us, "plans", plan_count);
  }
  set_state(ImState::kStandby);
}

void ImNode::publish_block(std::vector<aim::TravelPlan> plans, bool count_timing) {
  const Tick now = ctx_.clock->now();
  const auto plan_count = static_cast<std::int64_t>(plans.size());
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<VehicleId> revoked(confirmed_suspects_.begin(),
                                 confirmed_suspects_.end());
  chain::Block block = chain::Block::package(seq_, prev_hash_, now, std::move(plans),
                                             *ctx_.signer, std::move(revoked));
  const double package_us = elapsed_us(t0);
  if (count_timing) ctx_.metrics->im_package_us.push_back(package_us);
  if (ctx_.tracer != nullptr && util::trace::tracing_active()) {
    ctx_.tracer->complete("chain", "package", now, now, package_us, "plans",
                          plan_count);
  }
  prev_hash_ = block.hash();
  ++seq_;
  ctx_.metrics->blocks_published++;

  recent_blocks_.push_back(block);
  while (recent_blocks_.size() > 128) recent_blocks_.pop_front();

  set_state(ImState::kDissemination);
  auto msg = std::make_shared<BlockBroadcast>();
  msg->block = std::make_shared<chain::Block>(std::move(block));
  ctx_.network->broadcast(node_id(), std::move(msg));
}

std::vector<aim::TravelPlan> ImNode::track_unmanaged(Tick now) {
  std::vector<aim::TravelPlan> fresh;
  // Managed-plan occupancies computed at most once per refresh (dropped when
  // a replan changes the plan). The conflict test against every prediction
  // below used to rebuild both plans' occupancy tables per pair, which made
  // the refresh quadratic-with-a-heavy-constant in (legacy x managed).
  std::map<VehicleId, aim::PlanOccupancy> occ_cache;
  ctx_.sensors->sense_around_into({0, 0}, ctx_.config->im_perception_radius_m,
                                  VehicleId{}, sense_buf_);
  const auto& seen = sense_buf_;
  for (const Observation& obs : seen) {
    // Managed vehicles (even ones whose plan went stale) are never
    // reclassified as legacy: the IM has their identity on file.
    if (ever_planned_.contains(obs.id)) continue;
    if (confirmed_suspects_.contains(obs.id)) continue;
    if (obs.status.speed_mps < 2.0 && !unmanaged_ids_.contains(obs.id)) {
      continue;  // staged / parked; managed vehicles wait at the zone edge
    }
    // Match the observation to a route: nearest path with compatible heading.
    int best_route = -1;
    double best_s = 0, best_score = 6.0;  // max 6 m lateral to match
    for (const traffic::Route& r : ctx_.intersection->routes()) {
      const auto [dist, s_proj] = r.path.project(obs.status.position);
      if (dist > best_score) continue;
      const double heading_diff = std::abs(std::remainder(
          r.path.heading_at(s_proj) - obs.status.heading_rad, 2 * 3.14159265));
      if (heading_diff > 0.5) continue;
      best_score = dist;
      best_route = r.id;
      best_s = s_proj;
    }
    if (best_route < 0) continue;

    // A tracked vehicle parked short of the core is yielding (a degraded
    // vehicle waiting for the box to clear, a stalled legacy car at its stop
    // line) — not crossing. The speed floor below would otherwise predict a
    // minute-long phantom core occupancy on every refresh and churn the
    // whole managed fleet through mid-flight reschedules around a crossing
    // that is not happening. Keep its identity; prediction resumes the
    // moment it moves. A vehicle stopped *inside* the core still reserves:
    // its occupancy is physical fact.
    const auto& route = ctx_.intersection->route(best_route);
    if (obs.status.speed_mps < 2.0 && best_s < route.core_begin - 1.0) {
      // A vehicle stuck at its stop line for several seconds means the
      // traffic never offers a crossable gap: hold new plan issuance so the
      // junction drains and its sensor-gated crossing can commit. The hold
      // must outlast the in-flight plans issued just before it (they keep
      // crossing the box for ~20 s), and it re-arms after a recovery window
      // in case the vehicle still could not commit.
      const Tick since = parked_since_.try_emplace(obs.id, now).first->second;
      // Its last constant-speed prediction is falsified (it stopped): free
      // the reserved zones so they do not haunt the schedule.
      scheduler_.release_vehicle(obs.id);
      if (now - since >= 8'000 && best_s > route.core_begin - 20.0) {
        Tick& retry_at = courtesy_retry_at_[obs.id];
        if (now >= retry_at) {
          retry_at = now + 45'000;
          courtesy_until_ = std::max(courtesy_until_, now + 30'000);
          ctx_.metrics->im_courtesy_gaps++;
          NWADE_LOG(kInfo) << "IM holds issuance for parked vehicle "
                           << obs.id.value << " (courtesy gap)";
        }
      }
      continue;
    }
    // Moving again: a later stop starts a fresh parking episode.
    parked_since_.erase(obs.id);
    courtesy_retry_at_.erase(obs.id);

    aim::TravelPlan plan;
    plan.vehicle = obs.id;
    plan.route_id = best_route;
    plan.traits = obs.traits;
    plan.status_at_issue = obs.status;
    plan.issued_at = now;
    plan.unmanaged = true;
    // Predict with the observed speed. Underestimating occupancy (assuming a
    // queued vehicle will speed back up) schedules managed traffic into the
    // legacy vehicle's actual late crossing; overestimating merely wastes
    // capacity. The floor only guards the division for a parked vehicle.
    const double v = std::max(obs.status.speed_mps, 1.0);
    plan.segments = {aim::PlanSegment{now, best_s, v}};
    plan.core_entry =
        best_s < route.core_begin
            ? now + seconds_to_ticks((route.core_begin - best_s) / v)
            : now;
    plan.core_exit = now + seconds_to_ticks(
                               std::max(0.0, route.core_end - best_s) / v);
    // This prediction supersedes last window's: release the old claims first
    // or every refresh piles another phantom interval onto the tables.
    scheduler_.release_vehicle(obs.id);
    scheduler_.reserve_virtual(plan);
    active_plans_[obs.id] = plan;
    unmanaged_ids_.insert(obs.id);

    // A legacy vehicle's predicted trajectory shifts whenever it brakes or
    // accelerates (it never negotiates); on every refresh, any managed plan
    // that now collides with the prediction is rescheduled around it.
    {
      const aim::PlanOccupancy virtual_occ =
          aim::plan_occupancy(*ctx_.intersection, plan, 250);
      std::vector<VehicleId> to_replan;
      for (const auto& [vid, mp] : active_plans_) {
        if (vid == obs.id || mp.unmanaged || mp.evacuation) continue;
        const auto it = occ_cache.try_emplace(vid).first;
        if (it->second.route_id < 0) {
          it->second = aim::plan_occupancy(*ctx_.intersection, mp, 250);
        }
        if (aim::occupancies_conflict(virtual_occ, it->second)) {
          to_replan.push_back(vid);
        }
      }
      for (VehicleId vid : to_replan) {
        const aim::TravelPlan& old_plan = active_plans_.at(vid);
        const double cur_s = old_plan.s_at(now);
        aim::TravelPlan replacement = scheduler_.reschedule(
            vid, old_plan.route_id, old_plan.traits, now, cur_s);
        active_plans_[vid] = replacement;
        occ_cache.erase(vid);  // recomputed lazily if a later pair needs it
        fresh.push_back(std::move(replacement));
      }
    }
    fresh.push_back(std::move(plan));
  }
  // Forget unmanaged vehicles that left perception.
  for (auto it = unmanaged_ids_.begin(); it != unmanaged_ids_.end();) {
    if (!ctx_.sensors->observe(*it)) {
      active_plans_.erase(*it);
      parked_since_.erase(*it);
      courtesy_retry_at_.erase(*it);
      scheduler_.release_vehicle(*it);
      it = unmanaged_ids_.erase(it);
    } else {
      ++it;
    }
  }
  return fresh;
}

void ImNode::prune_exited_plans(Tick now) {
  for (auto it = active_plans_.begin(); it != active_plans_.end();) {
    const auto& route = ctx_.intersection->route(it->second.route_id);
    if (it->second.s_at(now) >= route.path.length()) {
      it = active_plans_.erase(it);
    } else {
      ++it;
    }
  }
}

bool ImNode::try_inject_conflict(std::vector<aim::TravelPlan>& plans, Tick now) {
  // Find a fresh plan whose route conflicts with an already-active plan, then
  // warp its core entry onto the victim's so they meet inside a shared zone.
  for (aim::TravelPlan& candidate : plans) {
    for (const traffic::ZoneRef& ref :
         ctx_.intersection->zones_for(candidate.route_id)) {
      const traffic::Zone& zone =
          ctx_.intersection->zones()[static_cast<std::size_t>(ref.zone_id)];
      const int other_route =
          zone.route_a == candidate.route_id ? zone.route_b : zone.route_a;
      for (const auto& [vid, victim] : active_plans_) {
        if (victim.route_id != other_route) continue;
        if (victim.core_entry <= now + 2000) continue;  // need time to collide
        // The forged plan must be kinematically plausible (reachable within
        // the speed limit), or the victim could not follow it and watchers
        // would flag the discrepancy instead of the scheduling conflict.
        const double d =
            ctx_.intersection->route(candidate.route_id).core_begin;
        const double limit = ctx_.intersection->config().limits.speed_limit_mps;
        if (victim.core_entry <
            now + seconds_to_ticks(d / limit)) {
          continue;
        }
        candidate = aim::make_profile_plan(*ctx_.intersection, candidate.vehicle,
                                           candidate.route_id, candidate.traits, now,
                                           0.0, victim.core_entry, 4.0);
        NWADE_LOG(kInfo) << "malicious IM: plan for vehicle "
                         << candidate.vehicle.value << " warped onto vehicle "
                         << vid.value;
        return true;
      }
    }
  }
  return false;
}

// --- message dispatch --------------------------------------------------------------

void ImNode::on_message(const net::Envelope& env) {
  if (down_) return;  // belt-and-braces; outage links are dropped in the net
  const Tick now = ctx_.clock->now();
  if (const auto* pr = dynamic_cast<const PlanRequest*>(env.msg.get())) {
    handle_plan_request(*pr);
  } else if (const auto* ir = dynamic_cast<const IncidentReport*>(env.msg.get())) {
    handle_incident_report(*ir, now);
  } else if (const auto* vr = dynamic_cast<const VerifyResponse*>(env.msg.get())) {
    handle_verify_response(*vr);
  } else if (const auto* br = dynamic_cast<const BlockRequest*>(env.msg.get())) {
    handle_block_request(*br, env.from);
  }
  // Global reports reach the IM too; a benign IM needs no action beyond what
  // report verification already covers, and a malicious one ignores them.
}

void ImNode::handle_plan_request(const PlanRequest& req) {
  // Blacklisted vehicle — confirmed here or imported from a neighboring IM
  // via cross-IM gossip: refuse service. The request is dropped before the
  // duplicate check so even a suspect holding a stale plan gets nothing new;
  // the vehicle burns its retries and falls back to the sensor-gated
  // degraded crossing, never holding a reservation through the conflict
  // zone. The counter is created lazily so runs that never reject keep their
  // telemetry snapshots (and golden digests) unchanged.
  if (confirmed_suspects_.contains(req.vehicle)) {
    if (ctx_.registry != nullptr) {
      ctx_.registry->counter("nwade.plan_rejections").inc();
    }
    trace_instant("im", "plan_rejected_blacklisted", ctx_.clock->now(),
                  static_cast<std::int64_t>(req.vehicle.value));
    return;
  }
  // Duplicate request: the vehicle lost our block. Re-send the block that
  // carries its plan instead of double-scheduling it.
  if (active_plans_.contains(req.vehicle)) {
    for (auto it = recent_blocks_.rbegin(); it != recent_blocks_.rend(); ++it) {
      if (it->plan_for(req.vehicle) != nullptr) {
        auto resp = std::make_shared<BlockResponse>();
        resp->plan_of = req.vehicle;
        resp->block = std::make_shared<chain::Block>(*it);
        ctx_.network->unicast(node_id(), vehicle_node(req.vehicle), std::move(resp));
        return;
      }
    }
    return;
  }
  for (const PlanRequest& pending : pending_requests_) {
    if (pending.vehicle == req.vehicle) return;  // already queued this window
  }
  pending_requests_.push_back(req);
}

void ImNode::handle_block_request(const BlockRequest& req, NodeId from) {
  const chain::Block* found = nullptr;
  for (auto it = recent_blocks_.rbegin(); it != recent_blocks_.rend(); ++it) {
    if (req.by_seq ? (it->seq == req.seq) : (it->plan_for(req.plan_of) != nullptr)) {
      found = &*it;
      break;
    }
  }
  if (found == nullptr) return;
  auto resp = std::make_shared<BlockResponse>();
  resp->plan_of = req.plan_of;
  resp->block = std::make_shared<chain::Block>(*found);
  ctx_.network->unicast(node_id(), from, std::move(resp));
}

// --- report verification (Section IV-B2) ----------------------------------------------

void ImNode::handle_incident_report(const IncidentReport& report, Tick now) {
  if (std::getenv("NWADE_DEBUG_IM")) {
    const auto obs = ctx_.sensors->observe(report.evidence.suspect);
    std::fprintf(stderr,
                 "IM-RPT t=%lld reporter=%llu suspect=%llu dev=%.1f obs=%d norm=%.0f plan=%d state=%s\n",
                 (long long)now, (unsigned long long)report.reporter.value,
                 (unsigned long long)report.evidence.suspect.value,
                 report.evidence.deviation_m, obs.has_value(),
                 obs ? obs->status.position.norm() : -1.0,
                 (int)active_plans_.count(report.evidence.suspect),
                 im_state_name(state_));
  }
  if (silenced(now)) return;  // compromised IM stonewalls

  const VehicleId suspect = report.evidence.suspect;
  if (!suspect.valid() || suspect == report.reporter) return;
  trace_instant("nwade", "incident_report_received", now,
                static_cast<std::int64_t>(suspect.value));
  if (confirmed_suspects_.contains(suspect)) return;

  if (report.misbehavior_claim) {
    // A vehicle denounces `suspect` for a false global report about block
    // `block_seq`. A benign IM knows its own chain is clean, so the claim
    // checks out by construction: record the liar for future reference.
    reporter_strikes_[suspect]++;
    ctx_.metrics->malicious_reports_recorded++;
    return;
  }

  // Sham-alert collusion: a compromised IM "confirms" the colluders' false
  // report immediately, without verification.
  if (attack_.mode == ImAttackMode::kShamAlert && now >= attack_.trigger_at &&
      ctx_.malicious_ids->contains(report.reporter) && !sham_alert_sent_) {
    sham_alert_sent_ = true;
    confirm_threat(suspect, now);
    return;
  }

  // Already verifying this suspect? Register the extra reporter.
  if (const auto it = round_by_suspect_.find(suspect); it != round_by_suspect_.end()) {
    rounds_[it->second].reporters.insert(report.reporter);
    return;
  }

  // Direct perception path.
  const auto obs = ctx_.sensors->observe(suspect);
  if (obs &&
      obs->status.position.norm() <= ctx_.config->im_perception_radius_m) {
    const auto plan_it = active_plans_.find(suspect);
    if (plan_it != active_plans_.end()) {
      // Deviation from an evacuation profile or from a freshly issued plan
      // is delivery noise, not evidence: the block carrying the plan may
      // still be in flight (or lost and awaiting gap recovery), so the
      // suspect cannot yet be following it. A stopped suspect is likewise no
      // longer a trajectory threat — the same criterion
      // check_evacuation_progress uses to declare a threat cleared. Without
      // this gate a lossy channel turns one genuine evacuation into a
      // cascade: vehicles mid-maneuver (or stranded on pre-evacuation plans)
      // get reported, confirmed, and evacuate yet more vehicles.
      if (plan_it->second.evacuation ||
          now - plan_it->second.issued_at < ctx_.config->plan_grace_ms ||
          obs->status.speed_mps < 0.5) {
        dismiss_alarm(suspect, {report.reporter}, now);
        return;
      }
      const auto& route = ctx_.intersection->route(plan_it->second.route_id);
      const double dev =
          (obs->status.position - plan_it->second.expected_status(route, now).position)
              .norm();
      // Hysteresis: an independent report corroborated by the IM's own
      // sensors near the threshold is enough to confirm; this avoids losing
      // borderline reports to the 30 ms the evidence aged in flight.
      if (dev > 0.8 * ctx_.config->deviation_tolerance_m) {
        confirm_threat(suspect, now);
      } else {
        dismiss_alarm(suspect, {report.reporter}, now);
      }
      return;
    }
  }

  // Distributed verification path.
  start_verification(suspect, report.reporter, now);
}

void ImNode::start_verification(VehicleId suspect, VehicleId reporter, Tick now) {
  VerificationRound round;
  round.id = next_round_id_++;
  round.suspect = suspect;
  round.reporters.insert(reporter);
  round.started_at = now;
  round.asked_ever.insert(reporter);  // the reporter already voted, in effect
  const std::uint64_t id = round.id;
  rounds_[id] = std::move(round);
  round_by_suspect_[suspect] = id;
  ctx_.metrics->verify_rounds++;
  trace_instant("nwade", "verify_round_start", now,
                static_cast<std::int64_t>(suspect.value));
  set_state(ImState::kReportVerification);

  if (ask_group(rounds_[id], now) == 0) {
    // Nobody around to ask: fall back to trusting the single report.
    confirm_threat(suspect, now);
    trace_round_end(rounds_[id], now);
    rounds_.erase(id);
    round_by_suspect_.erase(suspect);
    return;
  }
  {
    const Tick when = now + ctx_.config->verification_round_ms;
    const std::uint64_t seq =
        ctx_.queue->schedule_at(when, [this, id] { tally_round(id); });
    pending_tallies_[id] = PendingEvent{seq, when};
  }
}

int ImNode::ask_group(VerificationRound& round, Tick now) {
  (void)now;
  // Verifiers = vehicles near the suspect (by last known/expected position).
  geom::Vec2 center{0, 0};
  if (const auto obs = ctx_.sensors->observe(round.suspect)) {
    center = obs->status.position;
  } else if (const auto it = active_plans_.find(round.suspect);
             it != active_plans_.end()) {
    const auto& route = ctx_.intersection->route(it->second.route_id);
    center = route.path.point_at(it->second.s_at(ctx_.clock->now()));
  }
  ctx_.sensors->sense_around_into(center, ctx_.config->sensing_radius_m,
                                  round.suspect, sense_buf_);
  auto& candidates = sense_buf_;
  std::sort(candidates.begin(), candidates.end(),
            [&](const Observation& a, const Observation& b) {
              return a.status.position.distance_to(center) <
                     b.status.position.distance_to(center);
            });
  // One immutable request shared across the whole verifier group — the same
  // serialize-once pattern broadcast fan-outs use, instead of a fresh
  // allocation per unicast.
  auto req = std::make_shared<VerifyRequest>();
  req->request_id = round.id;
  req->suspect = round.suspect;
  int asked = 0;
  for (const Observation& obs : candidates) {
    if (asked >= kVerifierGroupSize) break;
    if (round.asked_ever.contains(obs.id)) continue;  // disjoint second group
    round.asked_ever.insert(obs.id);
    ctx_.network->unicast(node_id(), vehicle_node(obs.id), req);
    ++asked;
  }
  return asked;
}

void ImNode::handle_verify_response(const VerifyResponse& resp) {
  if (silenced(ctx_.clock->now())) return;
  const auto it = rounds_.find(resp.request_id);
  if (it == rounds_.end()) return;
  it->second.votes[resp.responder] = resp.abnormal;
}

void ImNode::tally_round(std::uint64_t round_id) {
  pending_tallies_.erase(round_id);  // this deadline has now fired
  const auto it = rounds_.find(round_id);
  if (it == rounds_.end()) return;
  VerificationRound& round = it->second;
  const Tick now = ctx_.clock->now();

  int abnormal = 0, normal = 0;
  for (const auto& [voter, vote] : round.votes) (vote ? abnormal : normal)++;
  const bool majority_abnormal = abnormal > normal;

  if (round.phase == 1) {
    if (!majority_abnormal) {
      dismiss_alarm(round.suspect, round.reporters, now);
      trace_round_end(round, now);
      round_by_suspect_.erase(round.suspect);
      rounds_.erase(it);
      if (state_ == ImState::kReportVerification) set_state(ImState::kStandby);
      return;
    }
    // Majority says abnormal: evacuate now for safety, but double-check with
    // a second, disjoint group to defeat majority-vote gaming (Section IV-B2).
    confirm_threat(round.suspect, now);
    if (!ctx_.config->double_check_verification) {
      trace_round_end(round, now);
      round_by_suspect_.erase(round.suspect);
      rounds_.erase(it);
      return;
    }
    round.phase = 2;
    round.votes.clear();
    if (ask_group(round, now) == 0) {
      // No second group available; the evacuation stands.
      trace_round_end(round, now);
      round_by_suspect_.erase(round.suspect);
      rounds_.erase(it);
      return;
    }
    ctx_.metrics->verify_rounds++;
    const std::uint64_t id = round.id;
    const Tick when = now + ctx_.config->verification_round_ms;
    const std::uint64_t seq =
        ctx_.queue->schedule_at(when, [this, id] { tally_round(id); });
    pending_tallies_[id] = PendingEvent{seq, when};
    return;
  }

  // Phase 2.
  if (!majority_abnormal) {
    // The second group contradicts the first: the alarm was false after all.
    // Cancel the evacuation and recover.
    NWADE_LOG(kInfo) << "IM: second verifier group cleared vehicle "
                     << round.suspect.value << "; cancelling evacuation";
    confirmed_suspects_.erase(round.suspect);
    evacuation_suspect_ = VehicleId{};
    dismiss_alarm(round.suspect, round.reporters, now);
    finish_evacuation(now);
  }
  trace_round_end(round, now);
  round_by_suspect_.erase(round.suspect);
  rounds_.erase(it);
}

void ImNode::dismiss_alarm(VehicleId suspect, const std::set<VehicleId>& reporters,
                           Tick now) {
  ctx_.metrics->alarm_dismissals++;
  trace_instant("nwade", "alarm_dismiss", now,
                static_cast<std::int64_t>(suspect.value));
  bool any_malicious = false;
  for (VehicleId reporter : reporters) {
    // "record V_x's identity for future reference in case V_x is malicious".
    reporter_strikes_[reporter]++;
    ctx_.metrics->malicious_reports_recorded++;
    if (ctx_.malicious_ids->contains(reporter)) any_malicious = true;
  }
  if (any_malicious && !ctx_.metrics->false_incident_dismissed) {
    ctx_.metrics->false_incident_dismissed = now;
  }
  // Broadcast so every vehicle can discount global reports about the suspect.
  auto msg = std::make_shared<AlarmDismiss>();
  msg->suspect = suspect;
  if (!reporters.empty()) msg->reporter = *reporters.begin();
  ctx_.network->broadcast(node_id(), std::move(msg));
  if (state_ == ImState::kReportVerification) set_state(ImState::kStandby);
}

// --- evacuation / recovery (Section IV-B5) ------------------------------------------------

std::vector<aim::ActiveVehicle> ImNode::active_vehicles(Tick now,
                                                        VehicleId exclude) const {
  std::vector<aim::ActiveVehicle> out;
  for (const auto& [vid, plan] : active_plans_) {
    if (vid == exclude) continue;
    // Legacy vehicles cannot receive or follow plans; evacuation and
    // recovery only replan the managed fleet (virtual predictions resume at
    // the next processing window).
    if (plan.unmanaged) continue;
    const auto& route = ctx_.intersection->route(plan.route_id);
    const double s = plan.s_at(now);
    if (s >= route.path.length()) continue;
    out.push_back(aim::ActiveVehicle{vid, plan.route_id, plan.traits, s,
                                     plan.v_at(now)});
  }
  return out;
}

bool ImNode::import_blacklist(VehicleId suspect, Tick now) {
  // Crashed IMs miss gossip rounds; the grid re-sends cumulative snapshots
  // every interval, so a restarted node converges one round later.
  if (down_) return false;
  if (!confirmed_suspects_.insert(suspect).second) return false;
  if (ctx_.registry != nullptr) {
    ctx_.registry->counter("nwade.blacklist_imports").inc();
  }
  trace_instant("im", "blacklist_import", now,
                static_cast<std::int64_t>(suspect.value));
  return true;
}

void ImNode::confirm_threat(VehicleId suspect, Tick now) {
  if (confirmed_suspects_.contains(suspect)) return;
  confirmed_suspects_.insert(suspect);
  evacuation_suspect_ = suspect;
  suspect_stopped_checks_ = 0;
  set_state(ImState::kEvacuation);
  ctx_.metrics->evacuation_alerts++;
  trace_instant("nwade", "evacuation_alert", now,
                static_cast<std::int64_t>(suspect.value));
  if (ctx_.malicious_ids->contains(suspect)) {
    if (!ctx_.metrics->deviation_confirmed) ctx_.metrics->deviation_confirmed = now;
  } else {
    // Evacuating because of an innocent vehicle: the attacker's false alarm
    // succeeded in disrupting traffic.
    ctx_.metrics->false_alarm_evacuations++;
  }

  // Alert first (identifiable features + location), plans right after.
  auto alert = std::make_shared<EvacuationAlert>();
  alert->suspect = suspect;
  if (const auto obs = ctx_.sensors->observe(suspect)) {
    alert->suspect_traits = obs->traits;
    alert->last_known = obs->status;
  } else if (const auto it = active_plans_.find(suspect); it != active_plans_.end()) {
    alert->suspect_traits = it->second.traits;
    const auto& route = ctx_.intersection->route(it->second.route_id);
    alert->last_known = it->second.expected_status(route, now);
  }
  const geom::Vec2 threat_pos = alert->last_known.position;
  ctx_.network->broadcast(node_id(), std::move(alert));

  aim::ThreatInfo threat;
  threat.position = threat_pos;
  threat.radius_m = ctx_.config->threat_radius_m;
  threat.suspect = suspect;
  auto plans = scheduler_.plan_evacuation(active_vehicles(now, suspect), threat, now);
  for (const aim::TravelPlan& p : plans) active_plans_[p.vehicle] = p;
  publish_block(std::move(plans), /*count_timing=*/true);
  set_state(ImState::kEvacuation);
}

void ImNode::check_evacuation_progress() {
  const Tick now = ctx_.clock->now();
  const auto obs = ctx_.sensors->observe(evacuation_suspect_);
  const bool gone = !obs || obs->status.position.norm() >
                                ctx_.config->im_perception_radius_m;
  const bool stopped = obs && obs->status.speed_mps < 0.5;
  if (stopped) {
    suspect_stopped_checks_++;
  } else if (!gone) {
    suspect_stopped_checks_ = 0;
  }
  if (gone || suspect_stopped_checks_ >= 3) {
    finish_evacuation(now);
  }
}

void ImNode::finish_evacuation(Tick now) {
  set_state(ImState::kRecovery);
  auto plans = scheduler_.plan_recovery(active_vehicles(now, evacuation_suspect_), now);
  for (const aim::TravelPlan& p : plans) active_plans_[p.vehicle] = p;
  publish_block(std::move(plans), /*count_timing=*/true);
  evacuation_suspect_ = VehicleId{};
  set_state(ImState::kStandby);
}

namespace {

void save_id_set(ByteWriter& w, const std::set<VehicleId>& ids) {
  w.u32(static_cast<std::uint32_t>(ids.size()));
  for (const VehicleId id : ids) w.u64(id.value);
}

bool load_id_set(ByteReader& r, std::set<VehicleId>& ids) {
  ids.clear();
  const std::uint32_t n = r.u32();
  if (!r.ok() || n > r.remaining() / 8) return false;
  for (std::uint32_t i = 0; i < n; ++i) ids.insert(VehicleId{r.u64()});
  return r.ok();
}

void save_tick_map(ByteWriter& w, const std::map<VehicleId, Tick>& m) {
  w.u32(static_cast<std::uint32_t>(m.size()));
  for (const auto& [id, t] : m) {
    w.u64(id.value);
    w.i64(t);
  }
}

bool load_tick_map(ByteReader& r, std::map<VehicleId, Tick>& m) {
  m.clear();
  const std::uint32_t n = r.u32();
  if (!r.ok() || n > r.remaining() / 16) return false;
  for (std::uint32_t i = 0; i < n; ++i) {
    const VehicleId id{r.u64()};
    m[id] = r.i64();
  }
  return r.ok();
}

bool load_digest(ByteReader& r, crypto::Digest& d) {
  const Bytes b = r.bytes();
  if (!r.ok() || b.size() != d.size()) return false;
  std::copy(b.begin(), b.end(), d.begin());
  return true;
}

}  // namespace

void ImNode::checkpoint_save(ByteWriter& w) const {
  w.u8(static_cast<std::uint8_t>(state_));
  w.u32(static_cast<std::uint32_t>(pending_requests_.size()));
  for (const PlanRequest& req : pending_requests_) {
    w.u64(req.vehicle.value);
    w.i64(req.route_id);
    req.traits.serialize(w);
    req.status.serialize(w);
  }
  w.u32(static_cast<std::uint32_t>(active_plans_.size()));
  for (const auto& [id, plan] : active_plans_) {
    w.u64(id.value);
    w.bytes(plan.serialize());
  }
  w.bytes(prev_hash_);
  w.u64(seq_);
  w.u32(static_cast<std::uint32_t>(recent_blocks_.size()));
  for (const chain::Block& b : recent_blocks_) w.bytes(b.serialize());

  w.u32(static_cast<std::uint32_t>(rounds_.size()));
  for (const auto& [id, round] : rounds_) {
    w.u64(id);
    w.u64(round.suspect.value);
    save_id_set(w, round.reporters);
    w.i64(round.phase);
    w.i64(round.started_at);
    save_id_set(w, round.asked_ever);
    w.u32(static_cast<std::uint32_t>(round.votes.size()));
    for (const auto& [voter, abnormal] : round.votes) {
      w.u64(voter.value);
      w.u8(abnormal ? 1 : 0);
    }
  }
  w.u64(next_round_id_);
  w.u32(static_cast<std::uint32_t>(reporter_strikes_.size()));
  for (const auto& [id, strikes] : reporter_strikes_) {
    w.u64(id.value);
    w.i64(strikes);
  }
  save_id_set(w, unmanaged_ids_);
  save_tick_map(w, parked_since_);
  save_tick_map(w, courtesy_retry_at_);
  w.i64(courtesy_until_);
  save_id_set(w, ever_planned_);
  w.u8(down_ ? 1 : 0);
  w.u64(evacuation_suspect_.value);
  w.i64(suspect_stopped_checks_);
  save_id_set(w, confirmed_suspects_);
  w.u8(conflict_injected_ ? 1 : 0);
  w.u8(sham_alert_sent_ ? 1 : 0);

  scheduler_.checkpoint_save(w);

  w.u8(window_event_.has_value() ? 1 : 0);
  if (window_event_.has_value()) {
    w.u64(window_event_->seq);
    w.i64(window_event_->when);
  }
  w.u32(static_cast<std::uint32_t>(pending_tallies_.size()));
  for (const auto& [id, ev] : pending_tallies_) {
    w.u64(id);
    w.u64(ev.seq);
    w.i64(ev.when);
  }
}

bool ImNode::checkpoint_restore(ByteReader& r) {
  state_ = static_cast<ImState>(r.u8());
  const std::uint32_t n_requests = r.u32();
  if (!r.ok() || n_requests > r.remaining() / 16) return false;
  pending_requests_.clear();
  for (std::uint32_t i = 0; i < n_requests; ++i) {
    PlanRequest req;
    req.vehicle = VehicleId{r.u64()};
    req.route_id = static_cast<int>(r.i64());
    req.traits = traffic::VehicleTraits::deserialize(r);
    req.status = traffic::VehicleStatus::deserialize(r);
    pending_requests_.push_back(std::move(req));
  }
  const std::uint32_t n_plans = r.u32();
  if (!r.ok() || n_plans > r.remaining() / 8) return false;
  active_plans_.clear();
  for (std::uint32_t i = 0; i < n_plans; ++i) {
    const VehicleId id{r.u64()};
    std::optional<aim::TravelPlan> plan = aim::TravelPlan::deserialize(r.bytes());
    if (!plan) return false;
    active_plans_.emplace(id, std::move(*plan));
  }
  if (!load_digest(r, prev_hash_)) return false;
  seq_ = r.u64();
  const std::uint32_t n_blocks = r.u32();
  if (!r.ok() || n_blocks > r.remaining()) return false;
  recent_blocks_.clear();
  for (std::uint32_t i = 0; i < n_blocks; ++i) {
    std::optional<chain::Block> b = chain::Block::deserialize(r.bytes());
    if (!b) return false;
    recent_blocks_.push_back(std::move(*b));
  }

  const std::uint32_t n_rounds = r.u32();
  if (!r.ok() || n_rounds > r.remaining() / 16) return false;
  rounds_.clear();
  round_by_suspect_.clear();
  for (std::uint32_t i = 0; i < n_rounds; ++i) {
    VerificationRound round;
    round.id = r.u64();
    round.suspect = VehicleId{r.u64()};
    if (!load_id_set(r, round.reporters)) return false;
    round.phase = static_cast<int>(r.i64());
    round.started_at = r.i64();
    if (!load_id_set(r, round.asked_ever)) return false;
    const std::uint32_t n_votes = r.u32();
    if (!r.ok() || n_votes > r.remaining() / 9) return false;
    for (std::uint32_t v = 0; v < n_votes; ++v) {
      const VehicleId voter{r.u64()};
      round.votes[voter] = r.u8() != 0;
    }
    round_by_suspect_[round.suspect] = round.id;
    rounds_.emplace(round.id, std::move(round));
  }
  next_round_id_ = r.u64();
  const std::uint32_t n_strikes = r.u32();
  if (!r.ok() || n_strikes > r.remaining() / 16) return false;
  reporter_strikes_.clear();
  for (std::uint32_t i = 0; i < n_strikes; ++i) {
    const VehicleId id{r.u64()};
    reporter_strikes_[id] = static_cast<int>(r.i64());
  }
  if (!load_id_set(r, unmanaged_ids_)) return false;
  if (!load_tick_map(r, parked_since_)) return false;
  if (!load_tick_map(r, courtesy_retry_at_)) return false;
  courtesy_until_ = r.i64();
  if (!load_id_set(r, ever_planned_)) return false;
  down_ = r.u8() != 0;
  evacuation_suspect_ = VehicleId{r.u64()};
  suspect_stopped_checks_ = static_cast<int>(r.i64());
  if (!load_id_set(r, confirmed_suspects_)) return false;
  conflict_injected_ = r.u8() != 0;
  sham_alert_sent_ = r.u8() != 0;

  if (!scheduler_.checkpoint_restore(r)) return false;

  window_event_.reset();
  if (r.u8() != 0) {
    PendingEvent ev;
    ev.seq = r.u64();
    ev.when = r.i64();
    window_event_ = ev;
  }
  pending_tallies_.clear();
  const std::uint32_t n_tallies = r.u32();
  if (!r.ok() || n_tallies > r.remaining() / 24) return false;
  for (std::uint32_t i = 0; i < n_tallies; ++i) {
    const std::uint64_t id = r.u64();
    PendingEvent ev;
    ev.seq = r.u64();
    ev.when = r.i64();
    pending_tallies_.emplace(id, ev);
  }
  if (!r.ok()) return false;

  // Re-arm the pending timers at their exact historical queue coordinates.
  if (window_event_.has_value()) {
    ctx_.queue->schedule_at_seq(window_event_->when, window_event_->seq,
                                [this] {
                                  process_window();
                                  start();  // re-arm the next window
                                });
  }
  for (const auto& [id, ev] : pending_tallies_) {
    const std::uint64_t round_id = id;
    ctx_.queue->schedule_at_seq(ev.when, ev.seq,
                                [this, round_id] { tally_round(round_id); });
  }
  return true;
}

}  // namespace nwade::protocol
