#include "nwade/vehicle_node.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <chrono>
#include <cstdlib>

#include "util/log.h"

namespace nwade::protocol {

namespace {

/// Wall-clock microseconds between two steady_clock points.
double elapsed_us(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                   t0)
      .count();
}

}  // namespace

const char* vehicle_state_name(VehicleState s) {
  switch (s) {
    case VehicleState::kPreparation: return "preparation";
    case VehicleState::kBlockVerification: return "block_verification";
    case VehicleState::kTraveling: return "traveling";
    case VehicleState::kLocalVerification: return "local_verification";
    case VehicleState::kAwaitingResponse: return "awaiting_response";
    case VehicleState::kGlobalVerification: return "global_verification";
    case VehicleState::kSelfEvacuation: return "self_evacuation";
    case VehicleState::kDegraded: return "degraded";
    case VehicleState::kExited: return "exited";
  }
  return "?";
}

VehicleNode::VehicleNode(VehicleContext ctx, VehicleId id, int route_id,
                         traffic::VehicleTraits traits, Tick spawn_time,
                         VehicleAttackProfile attack)
    : ctx_(ctx),
      id_(id),
      route_id_(route_id),
      traits_(traits),
      spawn_time_(spawn_time),
      attack_(attack),
      kin_row_(ctx_.columns != nullptr
                   ? ctx_.columns->add_row(id.value,
                                           static_cast<std::uint32_t>(route_id))
                   : 0),
      s_(ctx_.columns != nullptr ? ctx_.columns->s[kin_row_] : kin_fallback_[0]),
      v_(ctx_.columns != nullptr ? ctx_.columns->v[kin_row_] : kin_fallback_[1]),
      lateral_offset_(ctx_.columns != nullptr ? ctx_.columns->lateral[kin_row_]
                                              : kin_fallback_[2]),
      store_(ctx.config->chain_depth) {
  assert(ctx_.intersection && ctx_.config && ctx_.network && ctx_.clock &&
         ctx_.sensors && ctx_.metrics && ctx_.malicious_ids);
  // Sized so a fresh vehicle's first watch scans don't grow the buffer from
  // inside the chunked scan kernel, which is gated allocation-free.
  obs_scratch_.reserve(64);
}

void VehicleNode::trace_instant(const char* cat, const char* name,
                                Tick now) const {
  if (ctx_.tracer == nullptr || !util::trace::tracing_active()) return;
  ctx_.tracer->instant(cat, name, now, "vehicle",
                       static_cast<std::int64_t>(id_.value));
}

geom::Vec2 VehicleNode::position() const {
  const auto& route = ctx_.intersection->route(route_id_);
  const geom::Vec2 on_path = route.path.point_at(s_);
  if (lateral_offset_ == 0.0) return on_path;
  const geom::Vec2 normal = route.path.tangent_at(s_).perp();
  return on_path + normal * lateral_offset_;
}

traffic::VehicleStatus VehicleNode::ground_truth() const {
  traffic::VehicleStatus st;
  st.position = position();
  st.speed_mps = v_;
  st.heading_rad = ctx_.intersection->route(route_id_).path.heading_at(s_);
  return st;
}

void VehicleNode::start() {
  send_plan_request();
  // The first retransmission fires once the IM had a full processing window
  // plus dissemination time to answer; later retries back off exponentially.
  next_plan_request_at_ = spawn_time_ + 2 * ctx_.config->processing_window_ms;
  set_state(VehicleState::kPreparation);
}

void VehicleNode::send_plan_request() {
  auto req = std::make_shared<PlanRequest>();
  req->vehicle = id_;
  req->route_id = route_id_;
  req->traits = traits_;
  req->status = ground_truth();
  ctx_.network->unicast(node_id(), kImNodeId, std::move(req));
}

void VehicleNode::retry_plan_request(Tick now) {
  if (plan_retries_ >= ctx_.config->plan_request_max_retries) {
    // Degraded mode is for an IM that looks dead from here. If block
    // broadcasts are still reaching us, the IM is alive but withholding
    // issuance (e.g. a courtesy gap draining the junction) — keep polling at
    // the capped rate instead of falling back to sensors.
    const bool chain_alive =
        last_block_seen_at_ > 0 &&
        now - last_block_seen_at_ <= ctx_.config->plan_request_backoff_cap_ms;
    if (state_ == VehicleState::kPreparation && !chain_alive) enter_degraded(now);
    // Already degraded at the spawn point: keep polling at the capped rate in
    // case the IM comes back before we commit to crossing on sensors alone.
    send_plan_request();
    next_plan_request_at_ = now + ctx_.config->plan_request_backoff_cap_ms;
    return;
  }
  ++plan_retries_;
  ctx_.metrics->plan_request_retries++;
  send_plan_request();
  Duration backoff = ctx_.config->plan_request_backoff_ms;
  for (int i = 1; i < plan_retries_; ++i) backoff *= 2;
  backoff = std::min(backoff, ctx_.config->plan_request_backoff_cap_ms);
  next_plan_request_at_ = now + backoff;
}

void VehicleNode::set_state(VehicleState next) {
  state_ = next;
  // Mirror liveness into the SoA active flag so column-streaming kernels
  // (the sense-grid rebuild) can skip exited rows without touching the node.
  if (ctx_.columns != nullptr) {
    ctx_.columns->active[kin_row_] =
        next == VehicleState::kExited ? std::uint8_t{0} : std::uint8_t{1};
  }
}

int VehicleNode::adaptive_threshold() const {
  return std::max(ctx_.config->global_report_threshold, sensed_neighbours_ / 2 + 1);
}

// --- physics -------------------------------------------------------------------

void VehicleNode::step(Tick now, Duration dt_ms) {
  if (state_ == VehicleState::kExited) return;
  const auto& route = ctx_.intersection->route(route_id_);
  const auto& limits = ctx_.intersection->config().limits;
  const double dt = static_cast<double>(dt_ms) / 1000.0;

  const bool deviating = attack_.role == VehicleRole::kDeviator &&
                         now >= attack_.trigger_at && plan_.has_value();
  if (deviating) {
    if (!attack_fired_) {
      attack_fired_ = true;
      if (!ctx_.metrics->violation_start) ctx_.metrics->violation_start = now;
      // Start the physical deviation from the plan's current state.
      s_ = plan_->s_at(now);
      v_ = plan_->v_at(now);
    }
    if (attack_.deviation == DeviationMode::kAccelerate) {
      v_ = std::min(v_ + limits.max_accel_mps2 * dt, 1.3 * limits.speed_limit_mps);
      // A sudden lane change accompanies the speed attack (paper Fig. 1a).
      lateral_offset_ = std::min(lateral_offset_ + 1.2 * dt, 3.5);
    } else {
      v_ = std::max(v_ - limits.max_decel_mps2 * dt, 0.0);
    }
    s_ += v_ * dt;
  } else if (state_ == VehicleState::kSelfEvacuation) {
    if (s_ < route.core_begin - 5.0) {
      // Pull over before the junction: brake and move onto the shoulder so
      // watchers can tell a parked evacuee from an in-lane blocker.
      v_ = std::max(v_ - limits.max_decel_mps2 * dt, 0.0);
      lateral_offset_ = std::min(lateral_offset_ + 1.0 * dt, 3.5);
    } else if (s_ < route.core_end) {
      // Already inside: clear the core promptly but carefully.
      v_ = std::max(v_, 0.4 * limits.speed_limit_mps);
    } else {
      v_ = std::min(v_ + limits.max_accel_mps2 * dt, limits.speed_limit_mps);
    }
    s_ += v_ * dt;
  } else if (state_ == VehicleState::kDegraded) {
    step_degraded(now, dt, route);
  } else if (plan_) {
    s_ = plan_->s_at(now);
    v_ = plan_->v_at(now);
  }
  // else: preparation — hold at the communication-zone edge.

  if (s_ >= route.path.length() - 0.05) {
    if (state_ == VehicleState::kDegraded) ctx_.metrics->degraded_crossings++;
    set_state(VehicleState::kExited);
    ctx_.metrics->vehicles_exited++;
    return;
  }

  // Incident-report timeout: the IM never answered (Alg. 2 line 12).
  if (state_ == VehicleState::kAwaitingResponse && now >= awaiting_deadline_) {
    if (self_evac_announced_.contains(awaiting_suspect_) ||
        confirmed_threats_.contains(awaiting_suspect_) ||
        dismissed_suspects_.contains(awaiting_suspect_)) {
      // The deviation got explained while we waited (announcement, alert, or
      // dismissal that raced our own report): stand down.
      set_state(VehicleState::kTraveling);
    } else if (awaiting_retries_ < 1) {
      // One retransmission before declaring the IM compromised: a single
      // lost packet must not trigger an evacuation.
      ++awaiting_retries_;
      if (const auto obs = ctx_.sensors->observe(awaiting_suspect_)) {
        const auto dev = deviation_of(*obs, now);
        if (dev && *dev > ctx_.config->deviation_tolerance_m) {
          reported_suspects_.erase(awaiting_suspect_);
          report_incident(*obs, *dev, now);
        } else {
          set_state(VehicleState::kTraveling);  // deviation resolved itself
        }
      } else {
        set_state(VehicleState::kTraveling);  // suspect left the scene
      }
    } else {
      enter_self_evacuation(GlobalReason::kImUnresponsive, awaiting_suspect_, now);
    }
  }

  // Plan never arrived (lost packets or dark IM): retransmit with capped
  // exponential backoff, then fall back to degraded mode. A degraded vehicle
  // keeps polling only while it still waits at the spawn point — once it is
  // moving on sensors alone, a late plan (computed from the spawn point)
  // would no longer describe it.
  if (!plan_ && now >= next_plan_request_at_ &&
      (state_ == VehicleState::kPreparation ||
       (state_ == VehicleState::kDegraded && s_ < 1.0))) {
    retry_plan_request(now);
  }

  // While self-evacuating, re-broadcast the warning every few seconds so
  // vehicles that enter the zone later also learn this deviation from the
  // (stale) chain plan is announced, not an attack.
  if (state_ == VehicleState::kSelfEvacuation &&
      now - last_beacon_at_ >= kBeaconPeriodMs && global_report_sent_) {
    last_beacon_at_ = now;
    auto gr = std::make_shared<GlobalReport>();
    gr->reporter = id_;
    gr->reason = last_evac_reason_;
    gr->suspect = last_evac_suspect_;
    ctx_.network->broadcast(node_id(), std::move(gr));
    ctx_.metrics->global_reports++;
    trace_instant("nwade", "global_report", now);
  }
}

bool VehicleNode::step_has_side_effects(Tick now) const {
  // Mirrors step()'s branch structure on the vehicle's own pre-step state.
  // Physics itself only moves s_/v_/lateral_offset_, so none of these
  // conditions can flip between classification and the post-physics checks
  // inside step() — except the exit latch, which step_kinematics() handles.
  if (state_ == VehicleState::kExited) return false;  // step() is a no-op
  // Deviators are impure from the start (the trigger latch fires the
  // violation metric); they are a handful per scenario, so being
  // conservative here costs nothing.
  if (attack_.role == VehicleRole::kDeviator) return true;
  // Degraded crossing senses the conflict box and counts its own metrics.
  if (state_ == VehicleState::kDegraded) return true;
  // Incident-report timeout: observes, re-reports, or self-evacuates.
  if (state_ == VehicleState::kAwaitingResponse && now >= awaiting_deadline_) {
    return true;
  }
  // Plan-request retransmission sends (the kDegraded arm of the condition is
  // subsumed by the kDegraded check above).
  if (!plan_ && now >= next_plan_request_at_ &&
      state_ == VehicleState::kPreparation) {
    return true;
  }
  // Periodic self-evacuation beacon broadcasts.
  if (state_ == VehicleState::kSelfEvacuation && global_report_sent_ &&
      now - last_beacon_at_ >= kBeaconPeriodMs) {
    return true;
  }
  return false;
}

bool VehicleNode::step_kinematics(Tick now, Duration dt_ms) {
  assert(!step_has_side_effects(now));
  const auto& route = ctx_.intersection->route(route_id_);
  const auto& limits = ctx_.intersection->config().limits;
  const double dt = static_cast<double>(dt_ms) / 1000.0;

  // The side-effect-free subset of step()'s physics branches: no deviation
  // latch (deviators are classified impure), no degraded mode.
  if (state_ == VehicleState::kSelfEvacuation) {
    if (s_ < route.core_begin - 5.0) {
      v_ = std::max(v_ - limits.max_decel_mps2 * dt, 0.0);
      lateral_offset_ = std::min(lateral_offset_ + 1.0 * dt, 3.5);
    } else if (s_ < route.core_end) {
      v_ = std::max(v_, 0.4 * limits.speed_limit_mps);
    } else {
      v_ = std::min(v_ + limits.max_accel_mps2 * dt, limits.speed_limit_mps);
    }
    s_ += v_ * dt;
  } else if (plan_) {
    s_ = plan_->s_at(now);
    v_ = plan_->v_at(now);
  }
  // else: preparation — hold at the communication-zone edge.

  if (s_ >= route.path.length() - 0.05) {
    // The caller's fixed-order merge owns the bookkeeping the full step()
    // would have done here (exited metric, network removal, crossing time);
    // a side-effect-free vehicle cannot be kDegraded, so the degraded
    // crossing counter never applies on this path.
    set_state(VehicleState::kExited);
    return true;
  }
  return false;
}

// --- degraded mode (no plan after all retries) -----------------------------------

void VehicleNode::enter_degraded(Tick now) {
  if (state_ != VehicleState::kPreparation) return;
  set_state(VehicleState::kDegraded);
  degraded_committed_ = false;
  next_clear_check_at_ = now;
  // Pick the shoulder side with the most clearance from every other route's
  // path at the hold point: near the junction mouth lanes converge, and a
  // fixed side can park the vehicle squarely in an adjacent route's lane.
  const auto& route = ctx_.intersection->route(route_id_);
  const double hold_s = std::max(route.core_begin - 6.0, 0.0);
  const geom::Vec2 base = route.path.point_at(hold_s);
  const geom::Vec2 normal = route.path.tangent_at(hold_s).perp();
  double best = -1.0;
  for (double side : {1.0, -1.0}) {
    const geom::Vec2 cand = base + normal * (3.5 * side);
    double clearance = std::numeric_limits<double>::max();
    for (const traffic::Route& r : ctx_.intersection->routes()) {
      if (r.id == route_id_) continue;
      const auto [dist, s_proj] = r.path.project(cand);
      (void)s_proj;
      clearance = std::min(clearance, dist);
    }
    if (clearance > best) {
      best = clearance;
      shoulder_side_ = side;
    }
  }
  ctx_.metrics->degraded_entries++;
  trace_instant("nwade", "degraded_enter", now);
  NWADE_LOG(kInfo) << "vehicle " << id_.value
                   << " entering degraded mode (no plan after " << plan_retries_
                   << " retries)";
}

bool VehicleNode::degraded_box_clear(Tick now) const {
  (void)now;
  const auto& route = ctx_.intersection->route(route_id_);
  // Project our own crossing: from the current position to past the core at
  // the creep speed, plus the configured safety margin.
  const double cross_dist = std::max(route.core_end - s_, 0.0) + 5.0;
  const double time_to_clear_s =
      cross_dist / std::max(ctx_.config->degraded_cross_speed_mps, 0.5) +
      static_cast<double>(ctx_.config->degraded_clear_margin_ms) / 1000.0;

  // Sample the conflict-relevant span of our route; any other vehicle that
  // could reach it before we clear it keeps the box "occupied".
  std::vector<geom::Vec2> samples;
  for (double s = route.core_begin; s <= route.core_end; s += 5.0) {
    samples.push_back(route.path.point_at(s));
  }
  samples.push_back(route.path.point_at(route.core_end));

  const double limit_mps = ctx_.intersection->config().limits.speed_limit_mps;
  const auto observations =
      ctx_.sensors->sense_around(position(), ctx_.config->sensing_radius_m, id_);
  for (const Observation& obs : observations) {
    double dist_to_box = std::numeric_limits<double>::max();
    geom::Vec2 nearest{};
    for (const geom::Vec2& p : samples) {
      const double d = obs.status.position.distance_to(p);
      if (d < dist_to_box) {
        dist_to_box = d;
        nearest = p;
      }
    }
    if (dist_to_box < 8.0) return false;  // already in or at the box
    // A stopped or slow vehicle this close could launch into the box well
    // within our crossing window; anything further out needs time to spool up.
    if (dist_to_box < 20.0) return false;
    // Closing speed toward the box: vehicles heading away (the exit leg) can
    // never interfere, no matter how near they pass.
    const double closing =
        (std::cos(obs.status.heading_rad) * (nearest.x - obs.status.position.x) +
         std::sin(obs.status.heading_rad) * (nearest.y - obs.status.position.y)) /
        dist_to_box * obs.status.speed_mps;
    if (closing <= 0.5) continue;
    // Earliest possible arrival: assume the vehicle floors it to the speed
    // limit immediately (deviators may already exceed it — take the max).
    const double earliest_s =
        dist_to_box / std::max(limit_mps, obs.status.speed_mps);
    if (earliest_s < time_to_clear_s) return false;
  }
  return true;
}

void VehicleNode::step_degraded(Tick now, double dt, const traffic::Route& route) {
  const auto& limits = ctx_.intersection->config().limits;
  const double stop_at = route.core_begin - 6.0;

  if (s_ >= route.core_begin || degraded_committed_) {
    // Committed (or already inside): merge back into the lane and clear the
    // core at the creep speed, then open up on the exit leg.
    if (lateral_offset_ > 0) {
      lateral_offset_ = std::max(lateral_offset_ - 1.2 * dt, 0.0);
    } else {
      lateral_offset_ = std::min(lateral_offset_ + 1.2 * dt, 0.0);
    }
    const double target = s_ < route.core_end
                              ? ctx_.config->degraded_cross_speed_mps
                              : limits.speed_limit_mps;
    if (v_ < target) {
      v_ = std::min(v_ + limits.max_accel_mps2 * dt, target);
    } else {
      v_ = std::max(v_ - limits.max_decel_mps2 * dt, target);
    }
  } else if (s_ + v_ * v_ / (2.0 * limits.max_decel_mps2) + 2.0 >= stop_at) {
    // Inside braking distance of the stop line: stop and hold until the
    // sensors show the box clear (checked at a throttled cadence). The wait
    // happens on the shoulder, like a parked self-evacuee: managed plans
    // know nothing about an unplanned stationary vehicle, so holding in the
    // lane would put it in the path of same-route traffic.
    v_ = std::max(v_ - limits.max_decel_mps2 * dt, 0.0);
    if (shoulder_side_ > 0) {
      lateral_offset_ = std::min(lateral_offset_ + 1.0 * dt, 3.5);
    } else {
      lateral_offset_ = std::max(lateral_offset_ - 1.0 * dt, -3.5);
    }
    if (v_ < 0.3 && now >= next_clear_check_at_) {
      next_clear_check_at_ = now + 500;
      if (degraded_box_clear(now)) degraded_committed_ = true;
    }
  } else {
    // Cautious approach toward the stop line.
    v_ = std::min(v_ + limits.max_accel_mps2 * dt,
                  ctx_.config->degraded_approach_speed_mps);
  }
  s_ += v_ * dt;
}

// --- neighbourhood watch (Algorithm 2) -------------------------------------------

void VehicleNode::watch(Tick now) {
  if (!watch_due(now)) return;
  watch_scan(now);
  watch_emit(now);
}

bool VehicleNode::watch_due(Tick now) const {
  (void)now;
  if (!ctx_.config->security_enabled) return false;
  if (state_ == VehicleState::kPreparation || state_ == VehicleState::kExited) {
    return false;
  }
  // A degraded vehicle never obtained (or kept) chain state to compare
  // neighbours against; it focuses on its own sensor-gated crossing.
  if (state_ == VehicleState::kDegraded) return false;
  // A self-evacuating vehicle focuses on leaving safely: it has written the
  // IM off, already broadcast its warning, and ignores further chain state,
  // so fresh incident reports from it would only compare against stale plans.
  if (state_ == VehicleState::kSelfEvacuation) return false;
  if (attack_.role == VehicleRole::kDeviator) return false;  // attackers don't help
  return true;
}

void VehicleNode::watch_scan(Tick now) {
  (void)now;
  ctx_.sensors->sense_around_into(position(), ctx_.config->sensing_radius_m, id_,
                                  obs_scratch_);
}

void VehicleNode::watch_emit(Tick now) {
  const std::vector<Observation>& observations = obs_scratch_;
  // Old watch() sensed after run_attack; both sweeps used identical
  // arguments against the same frozen scene, so handing run_attack the scan
  // result is observation-for-observation the same.
  if (attack_.role == VehicleRole::kFalseReporter) run_attack(now, observations);

  sensed_neighbours_ = static_cast<int>(observations.size());

  // Check a pending sham-evacuation suspicion first. Wait for the scene to
  // settle, and only cry sham when the "threat" is unambiguously on-plan —
  // a borderline reading must never discredit a correct alert.
  if (sham_check_suspect_ && now >= sham_check_after_) {
    for (const Observation& obs : observations) {
      if (obs.id != *sham_check_suspect_) continue;
      const auto dev = deviation_of(obs, now);
      if (dev && *dev < 0.5 * ctx_.config->deviation_tolerance_m) {
        // The "threat" behaves exactly per plan: the alert was a sham.
        auto report = std::make_shared<GlobalReport>();
        report->reporter = id_;
        report->reason = GlobalReason::kShamAlert;
        report->suspect = obs.id;
        report->suspect_status = obs.status;
        ctx_.network->broadcast(node_id(), std::move(report));
        ctx_.metrics->global_reports++;
        trace_instant("nwade", "global_report", now);
        if (!ctx_.metrics->sham_alert_detected) {
          ctx_.metrics->sham_alert_detected = now;
        }
      }
      sham_check_suspect_.reset();
      break;
    }
  }

  if (attack_.role != VehicleRole::kBenign) return;  // liars don't report truth

  const auto in_cooldown = [now](const std::map<VehicleId, Tick>& m, VehicleId id,
                                 Duration window) {
    const auto it = m.find(id);
    return it != m.end() && now - it->second < window;
  };
  for (const Observation& obs : observations) {
    if (in_cooldown(reported_suspects_, obs.id, kReportCooldownMs)) continue;
    if (in_cooldown(dismissed_suspects_, obs.id, kDismissCooldownMs)) continue;
    if (confirmed_threats_.contains(obs.id)) continue;
    if (self_evac_announced().contains(obs.id)) continue;

    // Legacy vehicles have no plan to violate; their chain entries are the
    // IM's virtual predictions, not commitments. Evacuation profiles are not
    // enforceable either (on-board collision avoidance governs during the
    // emergency maneuver), and neither is a plan issued moments ago: its
    // block may still be in flight — or lost and awaiting gap recovery — so
    // the neighbour cannot be expected to follow it yet.
    if (const aim::TravelPlan* p = lookup_plan(obs.id);
        p && (p->unmanaged || p->evacuation ||
              now - p->issued_at < ctx_.config->plan_grace_ms)) {
      continue;
    }

    const auto dev = deviation_of(obs, now);
    if (!dev) {
      request_plan_block(obs.id, now);
      continue;
    }
    if (*dev <= ctx_.config->deviation_tolerance_m) continue;
    // A stationary vehicle on the shoulder (well off its lane centreline) has
    // pulled over — self-evacuated or broken down — and is no threat. A
    // stationary vehicle still in the staging area at the communication-zone
    // edge is waiting for (or lost) its plan, not attacking.
    if (obs.status.speed_mps < 0.5) {
      if (const aim::TravelPlan* p = lookup_plan(obs.id)) {
        const auto& route = ctx_.intersection->route(p->route_id);
        const auto [lateral, s_proj] = route.path.project(obs.status.position);
        if (lateral > 2.5) continue;
        if (s_proj < 30.0) continue;
      }
    }
    if (state_ != VehicleState::kSelfEvacuation) {
      set_state(VehicleState::kLocalVerification);
    }
    report_incident(obs, *dev, now);
  }
}

const std::set<VehicleId>& VehicleNode::self_evac_announced() const {
  return self_evac_announced_;
}

const aim::TravelPlan* VehicleNode::lookup_plan(VehicleId vehicle) const {
  if (vehicle == id_) return plan_ ? &*plan_ : nullptr;
  if (const aim::TravelPlan* p = store_.find_plan(vehicle)) return p;
  const auto it = extra_plans_.find(vehicle);
  return it != extra_plans_.end() ? &it->second : nullptr;
}

void VehicleNode::request_plan_block(VehicleId vehicle, Tick now) {
  auto [it, fresh] = block_requests_inflight_.try_emplace(vehicle, now);
  if (!fresh) {
    if (now - it->second < 1000) return;  // rate-limit per target
    it->second = now;
  }
  auto req = std::make_shared<BlockRequest>();
  req->requester = id_;
  req->plan_of = vehicle;
  // Paper: "request the blocks from those vehicles in front of it" — a
  // unicast to one peer, not a broadcast. The subject itself holds the block
  // containing its own plan, so ask it directly; fall back to the IM.
  if (ctx_.network->has_node(vehicle_node(vehicle))) {
    ctx_.network->unicast(node_id(), vehicle_node(vehicle), std::move(req));
  } else {
    ctx_.network->unicast(node_id(), kImNodeId, std::move(req));
  }
}

std::optional<double> VehicleNode::deviation_of(const Observation& obs,
                                                Tick now) const {
  const aim::TravelPlan* plan = lookup_plan(obs.id);
  if (plan == nullptr) return std::nullopt;
  const auto& route = ctx_.intersection->route(plan->route_id);
  const traffic::VehicleStatus expected = plan->expected_status(route, now);
  return (obs.status.position - expected.position).norm();
}

void VehicleNode::report_incident(const Observation& obs, double deviation,
                                  Tick now) {
  if (std::getenv("NWADE_DEBUG_VEHICLE")) {
    const aim::TravelPlan* p = lookup_plan(obs.id);
    std::fprintf(stderr,
                 "REPORT t=%lld reporter=%llu suspect=%llu dev=%.1f plan_issued=%lld evac=%d unmanaged=%d route=%d s_exp=%.1f obs=(%.0f,%.0f) v=%.1f\n",
                 (long long)now, (unsigned long long)id_.value,
                 (unsigned long long)obs.id.value, deviation,
                 p ? (long long)p->issued_at : -1, p ? (int)p->evacuation : -1,
                 p ? (int)p->unmanaged : -1, p ? p->route_id : -1,
                 p ? p->s_at(now) : -1.0, obs.status.position.x,
                 obs.status.position.y, obs.status.speed_mps);
  }
  reported_suspects_[obs.id] = now;
  auto report = std::make_shared<IncidentReport>();
  report->reporter = id_;
  report->evidence.suspect = obs.id;
  report->evidence.observed = obs.status;
  report->evidence.observed_at = now;
  report->evidence.deviation_m = deviation;
  if (const auto* latest = store_.latest()) report->block_seq = latest->seq;
  ctx_.network->unicast(node_id(), kImNodeId, std::move(report));
  ctx_.metrics->incident_reports++;
  trace_instant("nwade", "incident_report", now);
  if (ctx_.malicious_ids->contains(obs.id) && !ctx_.metrics->first_true_incident) {
    ctx_.metrics->first_true_incident = now;
  }
  // A self-evacuating reporter keeps evacuating; it does not re-enter the
  // waiting state (it already gave up on the IM).
  if (state_ != VehicleState::kSelfEvacuation) {
    if (awaiting_suspect_ != obs.id) awaiting_retries_ = 0;
    awaiting_suspect_ = obs.id;
    awaiting_deadline_ = now + ctx_.config->im_response_timeout_ms;
    set_state(VehicleState::kAwaitingResponse);
  }
}

// --- message dispatch ------------------------------------------------------------

void VehicleNode::on_message(const net::Envelope& env) {
  if (state_ == VehicleState::kExited) return;
  const Tick now = ctx_.clock->now();
  if (const auto* bb = dynamic_cast<const BlockBroadcast*>(env.msg.get())) {
    if (bb->block) handle_block(*bb->block, now);
  } else if (const auto* br = dynamic_cast<const BlockRequest*>(env.msg.get())) {
    handle_block_request(*br, env.from);
  } else if (const auto* resp = dynamic_cast<const BlockResponse*>(env.msg.get())) {
    handle_block_response(*resp, now);
  } else if (const auto* vr = dynamic_cast<const VerifyRequest*>(env.msg.get())) {
    handle_verify_request(*vr, now);
  } else if (const auto* ad = dynamic_cast<const AlarmDismiss*>(env.msg.get())) {
    handle_alarm_dismiss(*ad, now);
  } else if (const auto* ea = dynamic_cast<const EvacuationAlert*>(env.msg.get())) {
    handle_evacuation_alert(*ea, now);
  } else if (const auto* gr = dynamic_cast<const GlobalReport*>(env.msg.get())) {
    handle_global_report(*gr, now);
  }
}

// --- Algorithm 1: block verification ----------------------------------------------

bool VehicleNode::verify_block(const chain::Block& block, Tick now, std::string* why) {
  // (i), (iii): signature, Merkle root, linkage — structural checks.
  const auto appended = store_.append(block, *ctx_.im_verifier);
  if (!appended) {
    switch (appended.error()) {
      case chain::ChainError::kNonMonotonicSeq: {
        const auto* latest = store_.latest();
        if (latest != nullptr && block.seq <= latest->seq) {
          return true;  // duplicate / reordered replay; harmless
        }
        // A gap: this vehicle missed blocks (burst loss, jitter reordering,
        // or joining mid-stream). Fetch the missed blocks from the IM — one
        // of them may carry our own superseding plan — then resync from this
        // block. Peers answer by-seq BlockRequests too, so gap recovery also
        // works while the IM is dark (handle_block_request).
        const auto missing = store_.missing_before(
            block.seq, static_cast<std::size_t>(ctx_.config->gap_request_limit));
        for (chain::BlockSeq seq : missing) {
          auto req = std::make_shared<BlockRequest>();
          req->requester = id_;
          req->by_seq = true;
          req->seq = seq;
          ctx_.network->unicast(node_id(), kImNodeId, std::move(req));
          ctx_.metrics->gap_block_requests++;
        }
        // The resync drops the cached prefix and the plans in it. That is
        // deliberate: the gap may hide reschedules, so judging neighbours
        // against the dropped (possibly stale) plans risks false incident
        // reports — the watch re-requests fresh blocks per neighbour instead.
        store_ = chain::BlockStore(ctx_.config->chain_depth);
        const auto retry = store_.append(block, *ctx_.im_verifier);
        if (retry) break;
        *why = chain_error_name(retry.error());
        return false;
      }
      default:
        *why = chain_error_name(appended.error());
        return false;
    }
  }

  // (ii), (iv): the plans themselves must be mutually conflict-free, both
  // within this block and against the cached chain (latest plan per vehicle).
  std::map<VehicleId, const aim::TravelPlan*> latest_plans;
  for (auto it = store_.blocks().rbegin(); it != store_.blocks().rend(); ++it) {
    for (const aim::TravelPlan& p : it->plans()) {
      latest_plans.try_emplace(p.vehicle, &p);
    }
  }
  std::vector<const aim::TravelPlan*> plans;
  plans.reserve(latest_plans.size());
  for (const auto& [vid, p] : latest_plans) {
    // Confirmed threats and announced self-evacuees no longer follow their
    // chain plans; those plans are void, not conflicting.
    if (confirmed_threats_.contains(vid)) continue;
    if (self_evac_announced_.contains(vid)) continue;
    // Evacuation plans are emergency stop/slow-down profiles issued without
    // fresh reservations; they are integrity-checked but exempt from the
    // conflict check (on-board collision avoidance governs during emergencies).
    if (p->evacuation) continue;
    // Virtual legacy-vehicle predictions are best-effort, not scheduling.
    if (p->unmanaged) continue;
    // Plans that start inside the core (recovery plans for vehicles that were
    // physically mid-crossing) are grandfathered: their occupancy is present
    // fact, not a scheduling decision. A malicious IM forging "mid-core"
    // positions is caught by the neighbourhood watch instead.
    if (p->segments.empty() ||
        p->segments.front().s0 >= ctx_.intersection->route(p->route_id).core_begin) {
      continue;
    }
    plans.push_back(p);
  }
  const auto conflicts =
      aim::find_plan_conflicts(*ctx_.intersection, plans,
                               ctx_.config->plan_check_margin_ms);
  if (!conflicts.empty()) {
    *why = "conflicting_plans";
    return false;
  }
  (void)now;
  return true;
}

void VehicleNode::handle_block(const chain::Block& block, Tick now) {
  // Any block receipt proves the IM is up (liveness only — a block never
  // grants a plan before it passes verification below).
  last_block_seen_at_ = now;
  // A self-evacuating vehicle has written the IM off; it ignores new blocks.
  if (state_ == VehicleState::kSelfEvacuation) return;
  if (!ctx_.config->security_enabled) {
    // Plain AIM mode: trust the block wholesale, just adopt our plan. The
    // issued_at guard keeps a replayed or reordered old block from rolling
    // the active plan back.
    if (const aim::TravelPlan* mine = block.plan_for(id_)) {
      if (!plan_ || plan_->issued_at <= mine->issued_at) {
        plan_ = *mine;
        if (state_ == VehicleState::kPreparation) set_state(VehicleState::kTraveling);
      }
    }
    return;
  }
  // Verification is a transient excursion: remember where to come back to so
  // e.g. an AwaitingResponse timeout is not silently cancelled by the next
  // routine block broadcast.
  const VehicleState prev = state_;
  if (prev != VehicleState::kPreparation) set_state(VehicleState::kBlockVerification);
  const auto t0 = std::chrono::steady_clock::now();
  std::string why;
  const bool ok = verify_block(block, now, &why);
  const double verify_us = elapsed_us(t0);
  ctx_.metrics->vehicle_verify_us.push_back(verify_us);
  if (ctx_.tracer != nullptr && util::trace::tracing_active()) {
    ctx_.tracer->complete("chain", "verify_block", now, now, verify_us,
                          "vehicle", static_cast<std::int64_t>(id_.value));
  }

  if (!ok) {
    if (std::getenv("NWADE_DEBUG_VEHICLE")) {
      std::fprintf(stderr, "VERIFY-FAIL t=%lld vehicle=%llu block=%llu why=%s\n",
                   (long long)now, (unsigned long long)id_.value,
                   (unsigned long long)block.seq, why.c_str());
    }
    ctx_.metrics->block_verification_failures++;
    if (!ctx_.metrics->im_conflict_detected) ctx_.metrics->im_conflict_detected = now;
    NWADE_LOG(kInfo) << "vehicle " << id_.value << " rejected block " << block.seq
                     << " (" << why << ")";
    enter_self_evacuation(GlobalReason::kConflictingPlans, VehicleId{}, now);
    return;
  }
  set_state(prev);

  // Learn revocations carried by the chain (e.g. a confirmed threat whose
  // evacuation alert predates our arrival).
  for (VehicleId v : block.revoked) confirmed_threats_.insert(v);

  // Adopt our own plan if this block carries one (initial, evacuation, or
  // recovery plans all arrive this way). A replayed or reordered old block
  // must never roll an adopted plan back (idempotent by issued_at), and a
  // degraded vehicle that already left the spawn point on sensors alone
  // cannot adopt a plan that describes a crossing from the spawn point.
  if (const aim::TravelPlan* mine = block.plan_for(id_)) {
    if (state_ != VehicleState::kSelfEvacuation &&
        (!plan_ || plan_->issued_at <= mine->issued_at)) {
      if (state_ == VehicleState::kDegraded) {
        if (std::abs(mine->s_at(now) - s_) <= 15.0) {
          plan_ = *mine;
          set_state(VehicleState::kTraveling);
        }
      } else {
        plan_ = *mine;
        if (state_ == VehicleState::kPreparation) set_state(VehicleState::kTraveling);
      }
    }
  }
}

void VehicleNode::handle_block_request(const BlockRequest& req, NodeId from) {
  const chain::Block* found = nullptr;
  if (req.by_seq) {
    found = store_.by_seq(req.seq);
  } else {
    for (auto it = store_.blocks().rbegin(); it != store_.blocks().rend(); ++it) {
      if (it->plan_for(req.plan_of) != nullptr) {
        found = &*it;
        break;
      }
    }
  }
  if (found == nullptr) return;
  auto resp = std::make_shared<BlockResponse>();
  resp->plan_of = req.plan_of;
  resp->block = std::make_shared<chain::Block>(*found);
  ctx_.network->unicast(node_id(), from, std::move(resp));
}

void VehicleNode::handle_block_response(const BlockResponse& resp, Tick now) {
  if (!resp.block) return;
  // The block cannot always be appended (it may predate our cache window), so
  // verify it standalone and harvest plans from it.
  if (!resp.block->verify_signature(*ctx_.im_verifier)) return;
  if (!resp.block->verify_merkle()) return;

  // A pending conflicting-plans claim about this block?
  if (pending_conflict_claims_.contains(resp.block->seq)) {
    pending_conflict_claims_.erase(resp.block->seq);
    // Same filters as Algorithm 1: emergency plans and grandfathered mid-core
    // plans are not scheduling decisions and must not be judged as conflicts.
    std::vector<const aim::TravelPlan*> plans;
    for (const aim::TravelPlan& p : resp.block->plans()) {
      if (p.evacuation || p.unmanaged) continue;
      if (confirmed_threats_.contains(p.vehicle)) continue;
      if (p.segments.empty() ||
          p.segments.front().s0 >=
              ctx_.intersection->route(p.route_id).core_begin) {
        continue;
      }
      plans.push_back(&p);
    }
    const auto conflicts = aim::find_plan_conflicts(
        *ctx_.intersection, plans, ctx_.config->plan_check_margin_ms);
    if (!conflicts.empty()) {
      if (!ctx_.metrics->im_conflict_detected) ctx_.metrics->im_conflict_detected = now;
      enter_self_evacuation(GlobalReason::kConflictingPlans, VehicleId{}, now);
      return;
    }
    if (!ctx_.metrics->false_global_detected) ctx_.metrics->false_global_detected = now;
  }

  for (const aim::TravelPlan& p : resp.block->plans()) {
    // Keep only the newest plan per vehicle.
    const auto it = extra_plans_.find(p.vehicle);
    if (it == extra_plans_.end() || it->second.issued_at < p.issued_at) {
      extra_plans_[p.vehicle] = p;
    }
  }
  // Our own plan may arrive this way when the original broadcast was lost.
  if (const aim::TravelPlan* mine = resp.block->plan_for(id_)) {
    if (!plan_ || plan_->issued_at < mine->issued_at) {
      if (state_ == VehicleState::kDegraded) {
        if (std::abs(mine->s_at(now) - s_) <= 15.0) {
          plan_ = *mine;
          set_state(VehicleState::kTraveling);
        }
      } else if (state_ != VehicleState::kSelfEvacuation) {
        plan_ = *mine;
        if (state_ == VehicleState::kPreparation) {
          set_state(VehicleState::kTraveling);
        }
      }
    }
  }
}

// --- verification votes -------------------------------------------------------------

void VehicleNode::handle_verify_request(const VerifyRequest& req, Tick now) {
  // A duplicated network can deliver the same round twice; answer once so the
  // IM's vote tally never double-counts us (it is keyed by responder anyway,
  // but re-sensing later could flip our answer mid-round).
  if (!answered_verify_rounds_.insert(req.request_id).second) return;
  if (answered_verify_rounds_.size() > 256) {
    answered_verify_rounds_.erase(answered_verify_rounds_.begin());
  }
  auto resp = std::make_shared<VerifyResponse>();
  resp->request_id = req.request_id;
  resp->responder = id_;
  resp->suspect = req.suspect;

  if (attack_.role != VehicleRole::kBenign) {
    // Collusion: cover fellow attackers, frame benign vehicles.
    resp->abnormal = !ctx_.malicious_ids->contains(req.suspect);
  } else {
    const auto obs = ctx_.sensors->observe(req.suspect);
    if (obs && obs->status.position.distance_to(position()) <=
                   ctx_.config->sensing_radius_m) {
      const auto dev = deviation_of(*obs, now);
      resp->abnormal = dev.has_value() && *dev > ctx_.config->deviation_tolerance_m;
      resp->evidence.suspect = req.suspect;
      resp->evidence.observed = obs->status;
      resp->evidence.observed_at = now;
      resp->evidence.deviation_m = dev.value_or(0.0);
    } else {
      resp->abnormal = false;  // cannot confirm
    }
  }
  ctx_.network->unicast(node_id(), kImNodeId, std::move(resp));
}

void VehicleNode::handle_alarm_dismiss(const AlarmDismiss& msg, Tick now) {
  dismissed_suspects_[msg.suspect] = now;
  global_reporters_per_suspect_.erase(msg.suspect);
  if (state_ == VehicleState::kAwaitingResponse && awaiting_suspect_ == msg.suspect) {
    set_state(VehicleState::kTraveling);
  }
}

void VehicleNode::handle_evacuation_alert(const EvacuationAlert& alert, Tick now) {
  (void)now;
  confirmed_threats_.insert(alert.suspect);
  if (state_ == VehicleState::kAwaitingResponse) {
    set_state(VehicleState::kTraveling);  // the IM responded; plans will follow
  }
  // Trust but verify: if the "threat" is nearby and acting normally, the
  // alert is a sham from a compromised IM (checked after a settling delay).
  if (alert.suspect != id_) {
    sham_check_suspect_ = alert.suspect;
    sham_check_after_ = now + 1500;
  }
}

// --- Algorithm 3: global verification -------------------------------------------------

void VehicleNode::handle_global_report(const GlobalReport& report, Tick now) {
  if (report.reporter == id_) return;
  // A global report implies its sender is self-evacuating; watchers must not
  // treat that announced deviation as a fresh attack.
  self_evac_announced_.insert(report.reporter);
  // If we had reported this very vehicle and were waiting on the IM, the
  // announcement explains the deviation: stand down.
  if (state_ == VehicleState::kAwaitingResponse &&
      awaiting_suspect_ == report.reporter) {
    set_state(VehicleState::kTraveling);
  }
  if (state_ == VehicleState::kSelfEvacuation) return;

  const VehicleState prev = state_;
  set_state(VehicleState::kGlobalVerification);
  switch (report.reason) {
    case GlobalReason::kConflictingPlans: {
      if (const chain::Block* block = store_.by_seq(report.block_seq)) {
        (void)block;
        // We verified this block when it arrived and found it clean, so the
        // report is false: notify the IM about the lying reporter.
        if (!ctx_.metrics->false_global_detected &&
            ctx_.malicious_ids->contains(report.reporter)) {
          ctx_.metrics->false_global_detected = now;
        }
        if (!denounced_reporters_.contains(report.reporter)) {
          denounced_reporters_.insert(report.reporter);
          auto ir = std::make_shared<IncidentReport>();
          ir->reporter = id_;
          ir->evidence.suspect = report.reporter;
          ir->evidence.observed_at = now;
          ir->block_seq = report.block_seq;
          ir->misbehavior_claim = true;
          ctx_.network->unicast(node_id(), kImNodeId, std::move(ir));
          ctx_.metrics->incident_reports++;
          trace_instant("nwade", "incident_report", now);
        }
      } else {
        // We never saw that block: fetch it from peers and judge then.
        pending_conflict_claims_.insert(report.block_seq);
        auto req = std::make_shared<BlockRequest>();
        req->requester = id_;
        req->by_seq = true;
        req->seq = report.block_seq;
        // The IM archives recent blocks; integrity is signature-protected,
        // so fetching from the accused party itself is still sound.
        ctx_.network->unicast(node_id(), kImNodeId, std::move(req));
      }
      break;
    }
    case GlobalReason::kAbnormalVehicle:
    case GlobalReason::kImUnresponsive: {
      const VehicleId suspect = report.suspect;
      if (!suspect.valid()) break;
      // The IM has confirmed this threat and is running the evacuation; the
      // global reports are expected echoes, not a sign of IM failure.
      if (confirmed_threats_.contains(suspect)) break;
      if (const auto it = dismissed_suspects_.find(suspect);
          it != dismissed_suspects_.end() && now - it->second < kDismissCooldownMs) {
        break;
      }
      const auto obs = ctx_.sensors->observe(suspect);
      const bool nearby =
          obs && obs->status.position.distance_to(position()) <=
                     ctx_.config->sensing_radius_m;
      if (nearby) {
        // Algorithm 3 (ii): verify locally instead of counting votes.
        const auto dev = deviation_of(*obs, now);
        const auto rep_it = reported_suspects_.find(suspect);
        const bool recently_reported =
            rep_it != reported_suspects_.end() &&
            now - rep_it->second < kReportCooldownMs;
        if (dev && *dev > ctx_.config->deviation_tolerance_m && !recently_reported &&
            attack_.role == VehicleRole::kBenign) {
          report_incident(*obs, *dev, now);
        } else if (dev && *dev <= ctx_.config->deviation_tolerance_m &&
                   attack_.role == VehicleRole::kBenign &&
                   ctx_.malicious_ids->contains(report.reporter) &&
                   !ctx_.metrics->false_incident_dismissed) {
          // The campaign's target behaves exactly per plan: a local witness
          // has refuted the lie (counts as detection when the IM is silent).
          ctx_.metrics->false_incident_dismissed = now;
        }
        break;
      }
      // Far away: count distinct reporters against the safety threshold.
      auto& reporters = global_reporters_per_suspect_[suspect];
      reporters.insert(report.reporter);
      if (static_cast<int>(reporters.size()) >= adaptive_threshold()) {
        enter_self_evacuation(GlobalReason::kAbnormalVehicle, suspect, now);
        return;
      }
      break;
    }
    case GlobalReason::kShamAlert: {
      im_distrust_reporters_.insert(report.reporter);
      if (static_cast<int>(im_distrust_reporters_.size()) >= 2) {
        enter_self_evacuation(GlobalReason::kShamAlert, report.suspect, now);
        return;
      }
      break;
    }
  }
  if (state_ == VehicleState::kGlobalVerification) set_state(prev);
}

// --- attacks ---------------------------------------------------------------------------

void VehicleNode::run_attack(Tick now,
                             const std::vector<Observation>& observations) {
  if (attack_fired_ || now < attack_.trigger_at) return;
  if (attack_.false_report == FalseReportKind::kIncident) {
    inject_false_incident(now, observations);
  } else {
    inject_false_global(now);
  }
}

void VehicleNode::inject_false_incident(
    Tick now, const std::vector<Observation>& observations) {
  // Frame the nearest non-colluding vehicle (from the caller's sweep).
  const Observation* target = nullptr;
  double best = std::numeric_limits<double>::max();
  for (const Observation& obs : observations) {
    if (ctx_.malicious_ids->contains(obs.id)) continue;
    const double d = obs.status.position.distance_to(position());
    if (d < best) {
      best = d;
      target = &obs;
    }
  }
  if (target == nullptr) return;  // retry at the next watch tick
  attack_fired_ = true;
  if (!ctx_.metrics->false_incident_injected) {
    ctx_.metrics->false_incident_injected = now;
  }

  // Fabricated evidence: shift the observed position far off the plan.
  Evidence fabricated;
  fabricated.suspect = target->id;
  fabricated.observed = target->status;
  fabricated.observed.position.x += 20.0;
  fabricated.observed_at = now;
  fabricated.deviation_m = 20.0;

  auto ir = std::make_shared<IncidentReport>();
  ir->reporter = id_;
  ir->evidence = fabricated;
  if (const auto* latest = store_.latest()) ir->block_seq = latest->seq;
  ctx_.network->unicast(node_id(), kImNodeId, std::move(ir));
  ctx_.metrics->incident_reports++;
  trace_instant("nwade", "incident_report", now);

  // Amplify with a global report to sway distant vehicles.
  auto gr = std::make_shared<GlobalReport>();
  gr->reporter = id_;
  gr->reason = GlobalReason::kAbnormalVehicle;
  gr->suspect = fabricated.suspect;
  gr->suspect_status = fabricated.observed;
  ctx_.network->broadcast(node_id(), std::move(gr));
  ctx_.metrics->global_reports++;
  trace_instant("nwade", "global_report", now);
}

void VehicleNode::inject_false_global(Tick now) {
  attack_fired_ = true;
  if (!ctx_.metrics->false_global_injected) {
    ctx_.metrics->false_global_injected = now;
  }
  auto gr = std::make_shared<GlobalReport>();
  gr->reporter = id_;
  gr->reason = GlobalReason::kConflictingPlans;
  gr->block_seq = store_.latest() != nullptr ? store_.latest()->seq : 0;
  ctx_.network->broadcast(node_id(), std::move(gr));
  ctx_.metrics->global_reports++;
  trace_instant("nwade", "global_report", now);
}

// --- self-evacuation ---------------------------------------------------------------------

void VehicleNode::enter_self_evacuation(GlobalReason reason, VehicleId suspect,
                                        Tick now) {
  if (state_ == VehicleState::kSelfEvacuation || state_ == VehicleState::kExited) {
    return;
  }
  set_state(VehicleState::kSelfEvacuation);
  if (std::getenv("NWADE_DEBUG_VEHICLE")) {
    std::fprintf(stderr, "SELF-EVAC t=%lld vehicle=%llu reason=%s suspect=%llu\n",
                 (long long)now, (unsigned long long)id_.value,
                 global_reason_name(reason), (unsigned long long)suspect.value);
  }
  if (attack_.role == VehicleRole::kBenign) {
    ctx_.metrics->benign_self_evacuations++;
    if (suspect.valid() && !ctx_.malicious_ids->contains(suspect)) {
      // Evacuating because of a campaign against an innocent vehicle: this is
      // exactly the false-alarm "trigger" Table II measures.
      ctx_.metrics->false_alarm_evacuations++;
      if (std::getenv("NWADE_DEBUG_VEHICLE")) {
        std::fprintf(stderr, "FALSE-EVAC t=%lld vehicle=%llu reason=%s suspect=%llu\n",
                     (long long)now, (unsigned long long)id_.value,
                     global_reason_name(reason), (unsigned long long)suspect.value);
      }
    }
    if (suspect.valid() && ctx_.malicious_ids->contains(suspect) &&
        !ctx_.metrics->deviation_confirmed) {
      ctx_.metrics->deviation_confirmed = now;
    }
  }
  last_evac_reason_ = reason;
  last_evac_suspect_ = suspect;
  if (!global_report_sent_) {
    global_report_sent_ = true;
    last_beacon_at_ = now;
    auto gr = std::make_shared<GlobalReport>();
    gr->reporter = id_;
    gr->reason = reason;
    gr->suspect = suspect;
    if (reason == GlobalReason::kConflictingPlans && store_.latest() != nullptr) {
      gr->block_seq = store_.latest()->seq;
    }
    ctx_.network->broadcast(node_id(), std::move(gr));
    ctx_.metrics->global_reports++;
    trace_instant("nwade", "global_report", now);
  }
  NWADE_LOG(kInfo) << "vehicle " << id_.value << " self-evacuating ("
                   << global_reason_name(reason) << ")";
}

// --- checkpoint/restore ------------------------------------------------------

namespace {

void save_id_set(ByteWriter& w, const std::set<VehicleId>& ids) {
  w.u32(static_cast<std::uint32_t>(ids.size()));
  for (const VehicleId id : ids) w.u64(id.value);
}

bool load_id_set(ByteReader& r, std::set<VehicleId>& out) {
  out.clear();
  const std::uint32_t n = r.u32();
  if (!r.ok() || n > r.remaining() / 8) return false;
  for (std::uint32_t i = 0; i < n; ++i) out.insert(VehicleId{r.u64()});
  return r.ok();
}

void save_tick_map(ByteWriter& w, const std::map<VehicleId, Tick>& m) {
  w.u32(static_cast<std::uint32_t>(m.size()));
  for (const auto& [id, t] : m) {
    w.u64(id.value);
    w.i64(t);
  }
}

bool load_tick_map(ByteReader& r, std::map<VehicleId, Tick>& out) {
  out.clear();
  const std::uint32_t n = r.u32();
  if (!r.ok() || n > r.remaining() / 16) return false;
  for (std::uint32_t i = 0; i < n; ++i) {
    const VehicleId id{r.u64()};
    out[id] = r.i64();
  }
  return r.ok();
}

bool load_plan(ByteReader& r, std::optional<aim::TravelPlan>& out) {
  const Bytes raw = r.bytes();
  if (!r.ok()) return false;
  out = aim::TravelPlan::deserialize(raw);
  return out.has_value();
}

}  // namespace

void VehicleNode::checkpoint_save(ByteWriter& w) const {
  w.u8(static_cast<std::uint8_t>(state_));
  w.f64(s_);
  w.f64(v_);
  w.f64(lateral_offset_);
  store_.checkpoint_save(w);
  w.u8(plan_.has_value() ? 1 : 0);
  if (plan_) w.bytes(plan_->serialize());
  w.u32(static_cast<std::uint32_t>(extra_plans_.size()));
  for (const auto& [id, plan] : extra_plans_) {
    w.u64(id.value);
    w.bytes(plan.serialize());
  }
  save_tick_map(w, reported_suspects_);
  save_tick_map(w, block_requests_inflight_);
  save_tick_map(w, dismissed_suspects_);
  save_id_set(w, self_evac_announced_);
  w.u32(static_cast<std::uint32_t>(pending_conflict_claims_.size()));
  for (const chain::BlockSeq seq : pending_conflict_claims_) w.u64(seq);
  save_id_set(w, denounced_reporters_);
  w.u32(static_cast<std::uint32_t>(global_reporters_per_suspect_.size()));
  for (const auto& [suspect, reporters] : global_reporters_per_suspect_) {
    w.u64(suspect.value);
    save_id_set(w, reporters);
  }
  save_id_set(w, im_distrust_reporters_);
  w.u8(sham_check_suspect_.has_value() ? 1 : 0);
  w.u64(sham_check_suspect_ ? sham_check_suspect_->value : 0);
  w.i64(sham_check_after_);
  save_id_set(w, confirmed_threats_);
  w.i64(awaiting_deadline_);
  w.u64(awaiting_suspect_.value);
  w.i64(awaiting_retries_);
  w.i64(plan_retries_);
  w.i64(next_plan_request_at_);
  w.i64(last_block_seen_at_);
  w.u8(degraded_committed_ ? 1 : 0);
  w.i64(next_clear_check_at_);
  w.f64(shoulder_side_);
  w.u32(static_cast<std::uint32_t>(answered_verify_rounds_.size()));
  for (const std::uint64_t round : answered_verify_rounds_) w.u64(round);
  w.i64(last_beacon_at_);
  w.u8(static_cast<std::uint8_t>(last_evac_reason_));
  w.u64(last_evac_suspect_.value);
  w.u8(attack_fired_ ? 1 : 0);
  w.u8(global_report_sent_ ? 1 : 0);
  w.i64(sensed_neighbours_);
}

bool VehicleNode::checkpoint_restore(ByteReader& r) {
  const std::uint8_t state = r.u8();
  if (!r.ok() || state > static_cast<std::uint8_t>(VehicleState::kExited)) {
    return false;
  }
  set_state(static_cast<VehicleState>(state));
  s_ = r.f64();
  v_ = r.f64();
  lateral_offset_ = r.f64();
  if (!store_.checkpoint_restore(r)) return false;
  plan_.reset();
  if (r.u8() != 0 && !load_plan(r, plan_)) return false;
  extra_plans_.clear();
  const std::uint32_t n_extra = r.u32();
  if (!r.ok() || n_extra > r.remaining() / 9) return false;
  for (std::uint32_t i = 0; i < n_extra; ++i) {
    const VehicleId id{r.u64()};
    std::optional<aim::TravelPlan> plan;
    if (!load_plan(r, plan)) return false;
    extra_plans_.emplace(id, std::move(*plan));
  }
  if (!load_tick_map(r, reported_suspects_)) return false;
  if (!load_tick_map(r, block_requests_inflight_)) return false;
  if (!load_tick_map(r, dismissed_suspects_)) return false;
  if (!load_id_set(r, self_evac_announced_)) return false;
  pending_conflict_claims_.clear();
  const std::uint32_t n_claims = r.u32();
  if (!r.ok() || n_claims > r.remaining() / 8) return false;
  for (std::uint32_t i = 0; i < n_claims; ++i) {
    pending_conflict_claims_.insert(r.u64());
  }
  if (!load_id_set(r, denounced_reporters_)) return false;
  global_reporters_per_suspect_.clear();
  const std::uint32_t n_suspects = r.u32();
  if (!r.ok() || n_suspects > r.remaining() / 12) return false;
  for (std::uint32_t i = 0; i < n_suspects; ++i) {
    const VehicleId suspect{r.u64()};
    if (!load_id_set(r, global_reporters_per_suspect_[suspect])) return false;
  }
  if (!load_id_set(r, im_distrust_reporters_)) return false;
  const bool has_sham = r.u8() != 0;
  const VehicleId sham{r.u64()};
  sham_check_suspect_ =
      has_sham ? std::optional<VehicleId>(sham) : std::nullopt;
  sham_check_after_ = r.i64();
  if (!load_id_set(r, confirmed_threats_)) return false;
  awaiting_deadline_ = r.i64();
  awaiting_suspect_ = VehicleId{r.u64()};
  awaiting_retries_ = static_cast<int>(r.i64());
  plan_retries_ = static_cast<int>(r.i64());
  next_plan_request_at_ = r.i64();
  last_block_seen_at_ = r.i64();
  degraded_committed_ = r.u8() != 0;
  next_clear_check_at_ = r.i64();
  shoulder_side_ = r.f64();
  answered_verify_rounds_.clear();
  const std::uint32_t n_rounds = r.u32();
  if (!r.ok() || n_rounds > r.remaining() / 8) return false;
  for (std::uint32_t i = 0; i < n_rounds; ++i) {
    answered_verify_rounds_.insert(r.u64());
  }
  last_beacon_at_ = r.i64();
  const std::uint8_t reason = r.u8();
  if (!r.ok() || reason > 3) return false;
  last_evac_reason_ = static_cast<GlobalReason>(reason);
  last_evac_suspect_ = VehicleId{r.u64()};
  attack_fired_ = r.u8() != 0;
  global_report_sent_ = r.u8() != 0;
  sensed_neighbours_ = static_cast<int>(r.i64());
  return r.ok();
}

}  // namespace nwade::protocol
