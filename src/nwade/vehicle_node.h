// The NWADE vehicle: one of the paper's event-driven finite automata (Fig. 2,
// 8 states) plus the physical vehicle it drives.
//
// Responsibilities (Section IV):
//   * Normal traveling — request a plan, verify received blocks (Alg. 1),
//     follow the plan.
//   * Local verification — the neighbourhood watch (Alg. 2): compare each
//     sensed neighbour against its plan; report deviations to the IM; wait
//     for the IM's verdict with a timeout.
//   * Global verification — evaluate peers' global reports (Alg. 3).
//   * Self-evacuation — leave or stop safely when the IM can no longer be
//     trusted, and warn everyone else.
//
// A vehicle can also be the attacker: a deviator that physically breaks its
// plan, or a false reporter injecting fabricated incident/global reports and
// lying in verification votes (Table I's attack settings).
#pragma once

#include <map>
#include <set>

#include "chain/store.h"
#include "net/network.h"
#include "nwade/config.h"
#include "nwade/messages.h"
#include "nwade/metrics.h"
#include "nwade/sensor.h"
#include "traffic/types.h"

namespace nwade::protocol {

/// Fig. 2, vehicle side: the 8 automaton states.
enum class VehicleState : std::uint8_t {
  kPreparation = 0,       ///< entered the communication zone, awaiting a plan
  kBlockVerification,     ///< running Algorithm 1 on a received block
  kTraveling,             ///< following the assigned plan
  kLocalVerification,     ///< running Algorithm 2 on a neighbour
  kAwaitingResponse,      ///< reported an incident, waiting for the IM
  kGlobalVerification,    ///< evaluating peers' global reports (Algorithm 3)
  kSelfEvacuation,        ///< the IM is untrusted; leaving on its own
  kDegraded,              ///< no plan after all retries: sensor-gated crossing
  kExited,                ///< left the intersection
};

const char* vehicle_state_name(VehicleState s);

enum class VehicleRole : std::uint8_t {
  kBenign = 0,
  kDeviator,        ///< physically violates its travel plan
  kFalseReporter,   ///< injects fabricated reports, lies in votes
};

enum class DeviationMode : std::uint8_t { kAccelerate = 0, kBrake };

/// Which lie a false reporter tells (Table II's two false-alarm types).
enum class FalseReportKind : std::uint8_t {
  kIncident = 0,    ///< Type A: claims a benign vehicle violates its plan
  kWrongPlans = 1,  ///< Type B: claims the IM issued conflicting plans
};

struct VehicleAttackProfile {
  VehicleRole role{VehicleRole::kBenign};
  Tick trigger_at{0};
  DeviationMode deviation{DeviationMode::kAccelerate};
  FalseReportKind false_report{FalseReportKind::kIncident};
};

/// Shared, world-owned services handed to every vehicle.
struct VehicleContext {
  const traffic::Intersection* intersection{nullptr};
  const NwadeConfig* config{nullptr};
  net::Network* network{nullptr};
  net::SimClock* clock{nullptr};
  const SensorProvider* sensors{nullptr};
  std::shared_ptr<const crypto::Verifier> im_verifier;
  Metrics* metrics{nullptr};
  /// Ground truth for metrics classification only — never consulted by the
  /// protocol logic of benign vehicles. Malicious vehicles use it as their
  /// collusion roster.
  const std::set<VehicleId>* malicious_ids{nullptr};
  /// Optional telemetry (nullptr = no trace); injected by the World.
  util::telemetry::Registry* registry{nullptr};
  util::trace::Tracer* tracer{nullptr};
  /// Optional SoA home for the vehicle's kinematic hot state (progress,
  /// speed, lateral offset). When set, the node claims one row at
  /// construction and its s_/v_/lateral_offset_ references alias the column
  /// slots, so the world's phase kernels can stream every vehicle's
  /// kinematics contiguously. nullptr = the node stores them locally
  /// (standalone tests, the world's AoS reference mode). Must outlive the
  /// node and must be reserve()d for every row it will ever hold.
  traffic::VehicleColumns* columns{nullptr};
};

class VehicleNode final : public net::Node {
 public:
  VehicleNode(VehicleContext ctx, VehicleId id, int route_id,
              traffic::VehicleTraits traits, Tick spawn_time,
              VehicleAttackProfile attack = {});

  // --- net::Node -------------------------------------------------------------
  NodeId node_id() const override { return vehicle_node(id_); }
  geom::Vec2 position() const override;
  void on_message(const net::Envelope& env) override;

  // --- driven by the world ----------------------------------------------------
  /// Sends the plan request; call once when the vehicle spawns.
  void start();
  /// Physics + timers; call every simulation step.
  void step(Tick now, Duration dt_ms);

  // Deterministic-parallel seams. The world classifies every vehicle from
  // its own pre-step state, runs maximal side-effect-free runs through
  // step_kinematics() on the worker pool, and serializes everything else at
  // its exact id position — byte-identical to calling step() on each
  // vehicle in id order.
  /// True when step(now, ·) could do more than advance kinematics and latch
  /// the exit state: send messages, touch shared metrics, sense, or take a
  /// protocol transition. Pure function of this vehicle's own state, and
  /// stable across earlier vehicles' steps (their physics cannot change the
  /// inputs), so the whole fleet can be classified up front.
  bool step_has_side_effects(Tick now) const;
  /// The side-effect-free slice of step(): advances s/v/lateral and latches
  /// kExited. Returns true when the vehicle exited this step; the caller
  /// owns the exit bookkeeping (exited metric, network removal, crossing
  /// time) the full step() would have done. Only valid when
  /// !step_has_side_effects(now). Safe to run concurrently with other
  /// vehicles' step_kinematics (touches only this vehicle's rows).
  bool step_kinematics(Tick now, Duration dt_ms);

  /// Neighbourhood-watch scan; the world calls it every watch interval.
  /// Equivalent to watch_due() ? (watch_scan(), watch_emit()) : nothing.
  void watch(Tick now);
  // Split watch for the chunked phase: eligibility (pure), the sensor sweep
  // (read-only against the frozen scene — parallel-safe), then the emit half
  // (reports/sends/state transitions — serial, id order).
  bool watch_due(Tick now) const;
  void watch_scan(Tick now);
  void watch_emit(Tick now);

  // --- introspection ------------------------------------------------------------
  VehicleId id() const { return id_; }
  int route_id() const { return route_id_; }
  const traffic::VehicleTraits& traits() const { return traits_; }
  VehicleState state() const { return state_; }
  bool exited() const { return state_ == VehicleState::kExited; }
  bool self_evacuating() const { return state_ == VehicleState::kSelfEvacuation; }
  bool degraded() const { return state_ == VehicleState::kDegraded; }
  int plan_request_retries() const { return plan_retries_; }
  bool is_malicious() const { return attack_.role != VehicleRole::kBenign; }
  double progress_s() const { return s_; }
  double speed_mps() const { return v_; }
  double lateral_offset_m() const { return lateral_offset_; }
  /// Ground-truth observable status.
  traffic::VehicleStatus ground_truth() const;
  const chain::BlockStore& store() const { return store_; }
  bool has_plan() const { return plan_.has_value(); }
  const aim::TravelPlan* plan() const { return plan_ ? &*plan_ : nullptr; }
  /// Vehicles that announced self-evacuation via global reports (watchers
  /// skip them: their deviation is declared, not an attack).
  const std::set<VehicleId>& self_evac_announced() const;
  Tick spawn_time() const { return spawn_time_; }
  const VehicleAttackProfile& attack_profile() const { return attack_; }
  /// SoA row this node claimed at construction (0 when columnless). The
  /// checkpoint layer records it so a restored world can rebuild nodes in
  /// row order — which is spawn order, not necessarily id order once grid
  /// handoffs inject foreign ids mid-run.
  std::size_t kin_row() const { return kin_row_; }

  /// Grid boundary handoff: seeds the carried-over entry speed right after
  /// construction, before the vehicle's first step. Plain assignment through
  /// the kinematics reference, so both the SoA and the columnless home see it.
  void seed_speed(double v_mps) { v_ = v_mps; }

  // --- checkpoint/restore (sim/checkpoint) -----------------------------------
  /// Serializes all dynamic state: automaton state, kinematics, the block
  /// store, plan caches, suspect/cooldown tables, retransmission timers and
  /// attack latches. Constructor arguments (id, route, traits, spawn time,
  /// attack profile) are NOT included — the world records those alongside so
  /// it can reconstruct the node before restoring onto it.
  void checkpoint_save(ByteWriter& w) const;
  /// Restores onto a freshly constructed node; start() must not be called on
  /// a restored vehicle (its spawn already happened before the checkpoint).
  /// Returns false on malformed input.
  bool checkpoint_restore(ByteReader& r);

 private:
  /// Records an instant on the detection timeline, tagged with this
  /// vehicle's id (no-op unless tracing is active).
  void trace_instant(const char* cat, const char* name, Tick now) const;

  // Message handlers.
  void handle_block(const chain::Block& block, Tick now);
  void handle_block_request(const BlockRequest& req, NodeId from);
  void handle_block_response(const BlockResponse& resp, Tick now);
  void handle_verify_request(const VerifyRequest& req, Tick now);
  void handle_alarm_dismiss(const AlarmDismiss& msg, Tick now);
  void handle_evacuation_alert(const EvacuationAlert& alert, Tick now);
  void handle_global_report(const GlobalReport& report, Tick now);

  // Algorithm 1 (full block verification) — returns false on any failure.
  bool verify_block(const chain::Block& block, Tick now, std::string* why);

  // Algorithm 2 helpers.
  const aim::TravelPlan* lookup_plan(VehicleId vehicle) const;
  void request_plan_block(VehicleId vehicle, Tick now);
  /// Compares an observation to its plan; returns the deviation in metres
  /// (nullopt when the neighbour's plan is unknown).
  std::optional<double> deviation_of(const Observation& obs, Tick now) const;
  void report_incident(const Observation& obs, double deviation, Tick now);

  // Attack behaviours. The caller hands run_attack the current sensor sweep
  // (same arguments the old internal sense used, same frozen scene) so the
  // watch phase senses exactly once per vehicle.
  void run_attack(Tick now, const std::vector<Observation>& observations);
  void inject_false_incident(Tick now,
                             const std::vector<Observation>& observations);
  void inject_false_global(Tick now);

  // Self-evacuation entry point.
  void enter_self_evacuation(GlobalReason reason, VehicleId suspect, Tick now);

  // Plan-request retransmission + degraded mode (fault tolerance).
  void send_plan_request();
  void retry_plan_request(Tick now);
  void enter_degraded(Tick now);
  void step_degraded(Tick now, double dt, const traffic::Route& route);
  /// True when our sensors show the conflict area clear for long enough to
  /// cross it at the degraded creep speed (see docs/FAULT_MODEL.md).
  bool degraded_box_clear(Tick now) const;

  /// Majority threshold adapted to the locally sensed neighbourhood size.
  int adaptive_threshold() const;

  void set_state(VehicleState next);

  VehicleContext ctx_;
  VehicleId id_;
  int route_id_;
  traffic::VehicleTraits traits_;
  Tick spawn_time_;
  VehicleAttackProfile attack_;

  VehicleState state_{VehicleState::kPreparation};

  // Physical ground truth. When ctx_.columns is set the values live in the
  // world's SoA columns (one claimed row) and the references alias the
  // column slots; otherwise they alias the local fallback. Every method —
  // including the checkpoint byte layout — reads and writes through the
  // references, so both homes behave identically.
  std::size_t kin_row_{0};
  double kin_fallback_[3]{0.0, 0.0, 0.0};  ///< s, v, lateral when columnless
  double& s_;
  double& v_;
  double& lateral_offset_;  ///< deviators drift off the lane centreline

  // Protocol state.
  chain::BlockStore store_;
  std::optional<aim::TravelPlan> plan_;
  std::map<VehicleId, aim::TravelPlan> extra_plans_;  ///< from BlockResponses
  /// Suspects reported recently (cooldown, not permanent: a deviation that
  /// survives a dismissal keeps growing and must be re-reported).
  std::map<VehicleId, Tick> reported_suspects_;
  std::map<VehicleId, Tick> block_requests_inflight_;
  /// Recently dismissed suspects (cooldown; see reported_suspects_).
  std::map<VehicleId, Tick> dismissed_suspects_;
  std::set<VehicleId> self_evac_announced_;
  std::set<chain::BlockSeq> pending_conflict_claims_;
  std::set<VehicleId> denounced_reporters_;
  std::map<VehicleId, std::set<VehicleId>> global_reporters_per_suspect_;
  std::set<VehicleId> im_distrust_reporters_;
  std::optional<VehicleId> sham_check_suspect_;
  Tick sham_check_after_{0};  ///< let the scene settle before judging
  std::set<VehicleId> confirmed_threats_;
  Tick awaiting_deadline_{0};
  VehicleId awaiting_suspect_;
  int awaiting_retries_{0};
  // Plan-request retransmission state (capped exponential backoff).
  int plan_retries_{0};
  Tick next_plan_request_at_{0};
  /// Last time any block broadcast reached us: while the chain is alive we
  /// never fall back to degraded mode, no matter how many retries failed.
  Tick last_block_seen_at_{0};
  // Degraded-mode state.
  bool degraded_committed_{false};  ///< cleared to cross; no more re-checks
  Tick next_clear_check_at_{0};
  double shoulder_side_{1.0};  ///< which side of the lane to hold on (+-1)
  // Verify-request rounds already answered (idempotency under duplication).
  std::set<std::uint64_t> answered_verify_rounds_;
  // Shorter than the IM-response timeout so a watcher that reported a
  // self-evacuee always hears the announcement before giving up on the IM.
  static constexpr Duration kBeaconPeriodMs = 2000;
  static constexpr Duration kReportCooldownMs = 4000;
  static constexpr Duration kDismissCooldownMs = 5000;
  Tick last_beacon_at_{0};
  GlobalReason last_evac_reason_{GlobalReason::kConflictingPlans};
  VehicleId last_evac_suspect_;
  bool attack_fired_{false};
  bool global_report_sent_{false};
  int sensed_neighbours_{0};
  /// Reused observation buffer: filled by watch_scan(), consumed by
  /// watch_emit() within the same watch phase. Transient scratch — never
  /// checkpointed, stale outside the phase.
  std::vector<Observation> obs_scratch_;
};

}  // namespace nwade::protocol
