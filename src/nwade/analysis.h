// Closed-form probability models from the paper (Section IV-B).
#pragma once

namespace nwade::protocol {

/// Eq. (2): probability that the IM identifies a majority-vote-gaming attack
/// by k compromised vehicles, where p_v is the per-vehicle compromise
/// probability and omega regularizes the exponent.
///
///   P_d = 1 / e^{omega * k * p_v^k}
double detection_probability(int k, double p_v, double omega);

/// Eq. (3): probability that a vehicle needs to self-evacuate, where p_im is
/// the probability the IM is compromised and p_v*p_loc the probability a
/// compromised vehicle sits near the relevant location. The paper's worked
/// example: p_v*p_loc = 0.1, p_im = 0.001, k = 11 -> P_e ~ 0.1%.
///
///   P_e = 1 - (1 - p_im)(1 - (p_v p_loc)^k)
double self_evacuation_probability(int k, double p_v_loc, double p_im);

/// The paper's majority threshold for a neighbourhood of n vehicles: n/2 + 1.
int majority_threshold(int neighbourhood_size);

}  // namespace nwade::protocol
