#include "nwade/config.h"

namespace nwade::protocol {

std::vector<AttackSetting> table1_attack_settings() {
  // Table I: V-settings have a benign IM; IM-settings are collusions.
  // Each setting has exactly one physical plan violation (except pure IM)
  // and (k-1) false-reporting vehicles.
  return {
      {"V1", 1, false, 1, 0},      {"V2", 2, false, 1, 1},
      {"V3", 3, false, 1, 2},      {"V5", 5, false, 1, 4},
      {"V10", 10, false, 1, 9},    {"IM", 0, true, 0, 0},
      {"IM_V1", 1, true, 1, 0},    {"IM_V2", 2, true, 1, 1},
      {"IM_V3", 3, true, 1, 2},    {"IM_V5", 5, true, 1, 4},
      {"IM_V10", 10, true, 1, 9},
  };
}

AttackSetting attack_setting_by_name(const std::string& name) {
  for (const AttackSetting& s : table1_attack_settings()) {
    if (s.name == name) return s;
  }
  return AttackSetting{"benign", 0, false, 0, 0};
}

}  // namespace nwade::protocol
