// Sensing abstraction: vehicles and the IM observe ground truth through this
// interface ("autonomous vehicles are typically equipped with cameras, LiDAR,
// and radar... these sensing abilities are sufficient to monitor neighboring
// vehicles' behaviors"). The simulation world implements it.
#pragma once

#include <vector>

#include "geom/vec2.h"
#include "traffic/types.h"
#include "util/types.h"

namespace nwade::protocol {

/// What a sensor sees of one vehicle: identity (via plates/traits matching),
/// static traits, and instantaneous kinematic state.
struct Observation {
  VehicleId id;
  traffic::VehicleTraits traits;
  traffic::VehicleStatus status;
};

class SensorProvider {
 public:
  virtual ~SensorProvider() = default;

  /// Ground-truth snapshot of all vehicles within `radius` of `center`,
  /// excluding `exclude` (the observer itself).
  virtual std::vector<Observation> sense_around(geom::Vec2 center, double radius,
                                                VehicleId exclude) const = 0;

  /// Buffer-reusing variant: clears `out` and fills it with exactly the
  /// observations sense_around would return, in the same order. Hot-path
  /// callers (the per-step watch scan, the IM's unmanaged tracker) hold a
  /// reusable buffer so steady-state sensing allocates nothing. The default
  /// forwards to sense_around so mock providers keep working unchanged.
  virtual void sense_around_into(geom::Vec2 center, double radius, VehicleId exclude,
                                 std::vector<Observation>& out) const {
    out = sense_around(center, radius, exclude);
  }

  /// Observation of one specific vehicle if it is still on the road.
  virtual std::optional<Observation> observe(VehicleId id) const = 0;
};

}  // namespace nwade::protocol
