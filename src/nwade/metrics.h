// Run-wide metrics: every experiment in Section VI reads from here.
//
//   Table II  -> false-alarm trigger / detection events
//   Fig. 4    -> deviation detection events
//   Fig. 5    -> detection timestamps (simulated ms)
//   Fig. 6    -> blockchain packaging / verification wall-clock samples
//   Fig. 7    -> packet counts come from net::NetworkStats, kept alongside
//   Fig. 8    -> spawn/exit counts (throughput)
#pragma once

#include <optional>
#include <vector>

#include "util/types.h"

namespace nwade::protocol {

struct Metrics {
  // --- attack / detection event timeline (simulated time) -----------------
  std::optional<Tick> violation_start;          ///< deviator goes off-plan
  std::optional<Tick> first_true_incident;      ///< benign report on deviator
  std::optional<Tick> deviation_confirmed;      ///< alert or global consensus
  std::optional<Tick> false_incident_injected;  ///< Type A false alarm sent
  std::optional<Tick> false_incident_dismissed; ///< IM dismissal of it
  std::optional<Tick> false_global_injected;    ///< Type B false alarm sent
  std::optional<Tick> false_global_detected;    ///< peer proved it false
  std::optional<Tick> im_conflict_injected;     ///< malicious IM emitted bad block
  std::optional<Tick> im_conflict_detected;     ///< a vehicle caught it
  std::optional<Tick> sham_alert_detected;      ///< sham evacuation recognized

  // --- counters -------------------------------------------------------------
  int vehicles_spawned{0};
  int vehicles_exited{0};
  int incident_reports{0};
  int global_reports{0};
  int verify_rounds{0};
  int alarm_dismissals{0};
  int evacuation_alerts{0};
  int benign_self_evacuations{0};
  /// Benign vehicles that self-evacuated because of a campaign against an
  /// innocent vehicle — the "Trigger" column of Table II.
  int false_alarm_evacuations{0};
  int malicious_reports_recorded{0};  ///< reporters flagged for false alarms
  int blocks_published{0};
  int block_verification_failures{0};

  // --- fault tolerance ------------------------------------------------------
  int plan_request_retries{0};   ///< retransmitted PlanRequests (backoff path)
  int gap_block_requests{0};     ///< by-seq BlockRequests from gap recovery
  int degraded_entries{0};       ///< vehicles that gave up on the IM
  int degraded_crossings{0};     ///< degraded vehicles that exited safely
  int im_crashes{0};
  int im_restarts{0};
  int im_courtesy_gaps{0};       ///< issuance holds for a stuck parked vehicle

  // --- blockchain compute cost (wall clock, microseconds) -------------------
  std::vector<double> im_package_us;       ///< scheduling + packaging per window
  std::vector<double> vehicle_verify_us;   ///< full Alg.-1 verification per block

  // --- derived helpers -------------------------------------------------------
  /// Simulated ms from violation start to confirmation; nullopt if undetected.
  std::optional<Duration> deviation_detection_time() const {
    if (!violation_start || !deviation_confirmed) return std::nullopt;
    return *deviation_confirmed - *violation_start;
  }

  /// Simulated ms from a Type-B false global report to its refutation.
  std::optional<Duration> false_global_detection_time() const {
    if (!false_global_injected || !false_global_detected) return std::nullopt;
    return *false_global_detected - *false_global_injected;
  }

  static double mean(const std::vector<double>& xs) {
    if (xs.empty()) return 0;
    double total = 0;
    for (double x : xs) total += x;
    return total / static_cast<double>(xs.size());
  }
};

}  // namespace nwade::protocol
