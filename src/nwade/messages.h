// NWADE protocol messages.
//
// Everything vehicles and the intersection manager exchange: plan requests,
// block dissemination, incident reports (Algorithm 2), verification
// rounds, dismissals, evacuation alerts, and global reports (Algorithm 3).
// Wire sizes approximate realistic encodings so the Fig.-7 network-load
// experiment measures something meaningful.
#pragma once

#include <memory>
#include <vector>

#include "chain/block.h"
#include "net/network.h"
#include "traffic/types.h"

namespace nwade::protocol {

/// Vehicle -> IM: request a travel plan on entering the communication zone.
struct PlanRequest final : net::Message {
  VehicleId vehicle;
  int route_id{0};
  traffic::VehicleTraits traits;
  traffic::VehicleStatus status;

  std::string kind() const override { return "plan_request"; }
  std::size_t wire_size() const override { return 96; }
};

/// IM -> all: a newly packaged block of travel plans. One message object
/// (and one underlying Block) is shared across every receiver's envelope:
/// the block serializes once and all per-delivery wire-size queries (the
/// net layer asks per delivered copy for stats accounting) reuse the size.
struct BlockBroadcast final : net::Message {
  std::shared_ptr<const chain::Block> block;

  std::string kind() const override { return "block_broadcast"; }
  std::size_t wire_size() const override {
    if (wire_size_cache_ == 0) wire_size_cache_ = block ? block->wire_size() : 0;
    return wire_size_cache_;
  }

 private:
  mutable std::size_t wire_size_cache_{0};
};

/// Vehicle -> peers/IM: ask for the block containing a vehicle's plan (used
/// when a neighbour entered in an earlier processing window).
struct BlockRequest final : net::Message {
  VehicleId requester;
  VehicleId plan_of;           ///< whose plan is needed (if valid)
  chain::BlockSeq seq{0};      ///< or a specific block by sequence number
  bool by_seq{false};

  std::string kind() const override { return "block_request"; }
  std::size_t wire_size() const override { return 32; }
};

/// Peer -> vehicle: a block answering a BlockRequest.
struct BlockResponse final : net::Message {
  VehicleId plan_of;
  std::shared_ptr<const chain::Block> block;

  std::string kind() const override { return "block_response"; }
  std::size_t wire_size() const override {
    if (wire_size_cache_ == 0) {
      wire_size_cache_ = 16 + (block ? block->wire_size() : 0);
    }
    return wire_size_cache_;
  }

 private:
  mutable std::size_t wire_size_cache_{0};
};

/// Observed evidence about a suspect: the paper's E_dagger.
struct Evidence {
  VehicleId suspect;
  traffic::VehicleStatus observed;
  Tick observed_at{0};
  double deviation_m{0};  ///< |observed - expected| that triggered the report
};

/// Vehicle -> IM: incident report IR = <E_dagger, B_y> (Algorithm 2 line 10).
struct IncidentReport final : net::Message {
  VehicleId reporter;
  Evidence evidence;
  chain::BlockSeq block_seq{0};  ///< block holding the suspect's plan
  /// true when this denounces a vehicle for spreading false global reports
  /// (Algorithm 3 (i)) rather than for physically deviating; the IM verifies
  /// it against its own chain instead of against sensors.
  bool misbehavior_claim{false};

  std::string kind() const override { return "incident_report"; }
  std::size_t wire_size() const override { return 128; }
};

/// IM -> vehicles near the suspect: please run local verification.
struct VerifyRequest final : net::Message {
  std::uint64_t request_id{0};
  VehicleId suspect;

  std::string kind() const override { return "verify_request"; }
  std::size_t wire_size() const override { return 32; }
};

/// Vehicle -> IM: local-verification verdict.
struct VerifyResponse final : net::Message {
  std::uint64_t request_id{0};
  VehicleId responder;
  VehicleId suspect;
  bool abnormal{false};
  Evidence evidence;

  std::string kind() const override { return "verify_response"; }
  std::size_t wire_size() const override { return 96; }
};

/// IM -> reporter: the reported incident was a false alarm.
struct AlarmDismiss final : net::Message {
  VehicleId reporter;
  VehicleId suspect;

  std::string kind() const override { return "alarm_dismiss"; }
  std::size_t wire_size() const override { return 24; }
};

/// IM -> all: confirmed threat; evacuation plans follow in the next block.
struct EvacuationAlert final : net::Message {
  VehicleId suspect;
  traffic::VehicleTraits suspect_traits;
  traffic::VehicleStatus last_known;

  std::string kind() const override { return "evacuation_alert"; }
  std::size_t wire_size() const override { return 80; }
};

/// Why a vehicle broadcast a global report (Algorithm 3's two branches plus
/// the unresponsive-IM case from Algorithm 2 line 12).
enum class GlobalReason : std::uint8_t {
  kConflictingPlans = 0,  ///< a block failed verification / contains conflicts
  kAbnormalVehicle = 1,   ///< malicious vehicle + IM did not respond
  kImUnresponsive = 2,    ///< no reply to an incident report
  kShamAlert = 3,         ///< IM issued an evacuation alert against a vehicle
                          ///< that local verification shows to be normal
};

inline const char* global_reason_name(GlobalReason r) {
  switch (r) {
    case GlobalReason::kConflictingPlans: return "conflicting_plans";
    case GlobalReason::kAbnormalVehicle: return "abnormal_vehicle";
    case GlobalReason::kImUnresponsive: return "im_unresponsive";
    case GlobalReason::kShamAlert: return "sham_alert";
  }
  return "?";
}

/// Vehicle -> all: warn the intersection that the IM (or an undetected
/// vehicle) cannot be trusted.
struct GlobalReport final : net::Message {
  VehicleId reporter;
  GlobalReason reason{GlobalReason::kConflictingPlans};
  chain::BlockSeq block_seq{0};   ///< for kConflictingPlans
  VehicleId suspect;              ///< for kAbnormalVehicle
  traffic::VehicleStatus suspect_status;

  std::string kind() const override { return "global_report"; }
  std::size_t wire_size() const override { return 96; }
};

/// IM -> neighboring IMs: cumulative confirmed-suspect snapshot (attacker
/// blacklist). Carried on sim::Grid's inter-shard edge channels — never the
/// intra-intersection radio — so a vehicle flagged at one intersection is
/// distrusted downstream (ImNode::import_blacklist) within a bounded gossip
/// delay. The snapshot is cumulative: losing one round only delays
/// convergence by one gossip interval.
struct BlacklistGossip final : net::Message {
  std::uint32_t origin_shard{0};
  Tick issued_at{0};
  std::vector<VehicleId> suspects;

  std::string kind() const override { return "blacklist_gossip"; }
  std::size_t wire_size() const override { return 24 + 8 * suspects.size(); }
};

}  // namespace nwade::protocol
