#include "nwade/analysis.h"

#include <cassert>
#include <cmath>

namespace nwade::protocol {

double detection_probability(int k, double p_v, double omega) {
  assert(k >= 0 && p_v >= 0.0 && p_v <= 1.0 && omega > 0.0);
  return 1.0 / std::exp(omega * k * std::pow(p_v, k));
}

double self_evacuation_probability(int k, double p_v_loc, double p_im) {
  assert(k >= 0 && p_v_loc >= 0.0 && p_v_loc <= 1.0 && p_im >= 0.0 && p_im <= 1.0);
  return 1.0 - (1.0 - p_im) * (1.0 - std::pow(p_v_loc, k));
}

int majority_threshold(int neighbourhood_size) {
  assert(neighbourhood_size >= 0);
  return neighbourhood_size / 2 + 1;
}

}  // namespace nwade::protocol
