// NWADE configuration: protocol parameters (paper Section VI-A defaults) and
// the attack settings of Table I.
#pragma once

#include <string>
#include <vector>

#include "util/types.h"

namespace nwade::protocol {

/// Protocol parameters. Defaults follow the paper's experimental settings.
struct NwadeConfig {
  /// Processing window delta: the IM batches plan requests at this cadence.
  Duration processing_window_ms{1000};
  /// Vehicle sensing radius (paper default 1000 ft).
  double sensing_radius_m{feet_to_meters(1000.0)};
  /// IM perception radius for direct report verification (paper: same LiDAR
  /// class as vehicles, default 1000 ft).
  double im_perception_radius_m{feet_to_meters(1000.0)};
  /// Positional deviation (metres) beyond which a watcher reports a vehicle.
  double deviation_tolerance_m{6.0};
  /// How long a reporter waits for the IM before assuming it is compromised.
  Duration im_response_timeout_ms{2500};
  /// How long the IM collects VerifyResponses before tallying the vote.
  Duration verification_round_ms{500};
  /// Second-group re-verification (Section IV-B2): after a first majority
  /// says "abnormal", ask a disjoint group to double-check. Defeats
  /// majority-vote gaming by colluding vehicles; the ablation benches turn
  /// it off to show why it exists.
  bool double_check_verification{true};
  /// Number of distinct global reports (kAbnormalVehicle) that push a distant
  /// vehicle into self-evacuation (paper Section IV-B4's safety threshold).
  int global_report_threshold{3};
  /// Vehicle-side chain cache depth (tau/delta bound).
  std::size_t chain_depth{64};
  /// Margin used when vehicles check plans in blocks for conflicts. Must not
  /// exceed the scheduler margin or honest plans would look conflicting.
  Duration plan_check_margin_ms{500};
  /// Deviation measured against a plan issued less than this long ago is
  /// delivery noise, not attack evidence: the block carrying the plan may
  /// still be in flight — or lost and awaiting retransmission/gap recovery —
  /// so the vehicle cannot yet be following it. Watchers skip such plans and
  /// the IM dismisses reports against them. Sized to cover one processing
  /// window plus a block re-request round trip.
  Duration plan_grace_ms{1500};
  /// Threat radius used for evacuation planning.
  double threat_radius_m{25.0};
  /// How often vehicles run the neighbourhood-watch scan.
  Duration watch_interval_ms{200};
  /// false = the NWADE layer is off (plain AIM): vehicles adopt plans
  /// without verification and do not watch. Used for overhead comparisons.
  bool security_enabled{true};

  // --- protocol robustness under channel faults (docs/FAULT_MODEL.md) -------
  /// Plan-request retransmission: the first retry fires two processing
  /// windows after spawn, then the interval doubles per attempt from
  /// `plan_request_backoff_ms` up to `plan_request_backoff_cap_ms`.
  Duration plan_request_backoff_ms{1000};
  Duration plan_request_backoff_cap_ms{8000};
  /// After this many unanswered retransmissions the vehicle gives up on the
  /// IM and enters degraded mode: it stops before the conflict zone and
  /// crosses only when its own sensors show the box clear. An unreachable IM
  /// thus degrades throughput, never safety.
  int plan_request_max_retries{5};
  /// Degraded-mode speeds: cautious approach toward the stop line, and the
  /// sensor-gated crossing speed (>= 2 m/s so a live IM's perception tracks
  /// the crossing vehicle as unmanaged traffic and schedules around it).
  double degraded_approach_speed_mps{6.0};
  double degraded_cross_speed_mps{8.0};
  /// Safety margin added to the degraded box-clear test: every sensed vehicle
  /// must be at least this much further from the conflict area (in time at
  /// its current speed) than our own projected time to clear it.
  Duration degraded_clear_margin_ms{2000};
  /// Gap recovery: at most this many missing blocks are re-requested per
  /// detected block-sequence gap (the rest is abandoned to the resync).
  int gap_request_limit{4};
};

/// One row of Table I. `plan_violations` malicious vehicles physically break
/// their plans; `false_reports` malicious vehicles inject fabricated
/// incident/global reports; a malicious IM issues conflicting plans and
/// stonewalls incident reports about colluding vehicles.
struct AttackSetting {
  std::string name;
  int malicious_vehicles{0};
  bool im_malicious{false};
  int plan_violations{0};
  int false_reports{0};
};

/// The eleven settings of Table I.
std::vector<AttackSetting> table1_attack_settings();

/// Looks up a Table I setting by name ("V1", "IM_V5", ...). Returns the
/// benign setting for unknown names.
AttackSetting attack_setting_by_name(const std::string& name);

}  // namespace nwade::protocol
