// Stream sinks: where encoded nwade-stream-v1 frames go.
//
// A sink receives fully framed bytes (`encode_frame` output) and is never
// consulted about content — the TelemetryStreamer renders identical bytes no
// matter which sinks are attached, which is what lets one test assert ring
// bytes equal file bytes equal socket bytes. Sinks are synchronous and run
// on the stepping thread; slow consumers are handled by bounding (ring
// capacity, per-client backlog) and dropping, never by blocking the
// simulation (docs/OBSERVABILITY.md, backpressure).
#pragma once

#include <cstdint>
#include <cstdio>
#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace nwade::svc {

/// One frame in, synchronously. Implementations must not block indefinitely.
class StreamSink {
 public:
  virtual ~StreamSink() = default;
  virtual void write(std::string_view frame) = 0;
  virtual void flush() {}
};

/// Bounded in-memory ring of whole frames; the oldest frame is dropped when
/// full. The default sink for tests (byte-comparisons) and for serve's
/// late-joiner catch-up buffer.
class RingSink final : public StreamSink {
 public:
  explicit RingSink(std::size_t max_frames = 4096) : max_frames_(max_frames) {}

  void write(std::string_view frame) override;

  const std::deque<std::string>& frames() const { return frames_; }
  /// All retained frames concatenated — the raw stream bytes.
  std::string joined() const;
  std::uint64_t dropped() const { return dropped_; }
  void clear() { frames_.clear(); }

 private:
  std::size_t max_frames_;
  std::deque<std::string> frames_;
  std::uint64_t dropped_{0};
};

/// Appends frames to a file, flushing after each so `tail -f` and a
/// monitor's --in reader see whole frames promptly.
class FileSink final : public StreamSink {
 public:
  /// Truncates by default; append=true continues an existing stream file
  /// (serve resuming from a checkpoint).
  explicit FileSink(const std::string& path, bool append = false);
  ~FileSink() override;
  FileSink(const FileSink&) = delete;
  FileSink& operator=(const FileSink&) = delete;

  bool ok() const { return f_ != nullptr; }
  void write(std::string_view frame) override;
  void flush() override;

 private:
  std::FILE* f_{nullptr};
};

/// Non-blocking single-threaded TCP broadcast server. write() fans the frame
/// out to every connected client; accept/flush progress happens inside
/// write() and pump() — there is no background thread, so determinism of the
/// simulation is untouched and serve's event loop stays the only loop.
///
/// Backpressure: bytes a client's socket will not take are buffered up to
/// `max_backlog_bytes`; past that the client is dropped (counted), because a
/// stalled monitor must never stall the simulation or other monitors.
class TcpServerSink final : public StreamSink {
 public:
  /// Listens on 127.0.0.1:port (port 0 picks an ephemeral port — read it
  /// back with port()). ok() false when binding failed.
  explicit TcpServerSink(int port, std::size_t max_backlog_bytes = 4u << 20);
  ~TcpServerSink() override;
  TcpServerSink(const TcpServerSink&) = delete;
  TcpServerSink& operator=(const TcpServerSink&) = delete;

  bool ok() const { return listen_fd_ >= 0; }
  int port() const { return port_; }

  /// Called once per newly accepted client to produce catch-up bytes (a
  /// hello frame plus a metrics_total snapshot) sent before live frames.
  void set_greeting(std::function<std::string()> greeting);

  void write(std::string_view frame) override;
  /// Accepts pending connections and drains client backlogs without a new
  /// frame — serve calls this between simulation slices.
  void pump();

  int client_count() const { return static_cast<int>(clients_.size()); }
  std::uint64_t clients_accepted() const { return accepted_; }
  std::uint64_t clients_dropped() const { return dropped_; }

 private:
  struct Client {
    int fd{-1};
    std::string backlog;  // bytes accepted from the streamer, not yet sent
  };

  void accept_pending();
  /// Returns false when the client must be dropped (error or over backlog).
  bool push_to(Client& c, std::string_view bytes);
  void drop(std::size_t idx);

  int listen_fd_{-1};
  int port_{0};
  std::size_t max_backlog_bytes_;
  std::function<std::string()> greeting_;
  std::vector<Client> clients_;
  std::uint64_t accepted_{0};
  std::uint64_t dropped_{0};
};

}  // namespace nwade::svc
