// TelemetryStreamer: turns a running World or Grid into an nwade-stream-v1
// frame stream (svc/frame.h) at a fixed sim-time cadence.
//
// The streamer is purely observational. It subscribes through the
// World/Grid listener hooks — which fire on the fixed step / exchange
// lattice, independent of run_until slicing — and everything it emits
// except heartbeat wall stamps is derived from deterministic simulation
// state. With a FakeWallClock (or no clock at all) the emitted bytes are a
// pure function of the scenario: byte-identical across step_threads and
// grid_threads, and the cumulative fold of the metrics deltas equals the
// end-of-run MetricsSnapshot export. Tests hold the plane to exactly that.
//
// Per cadence point the streamer emits, in fixed order: health row(s),
// status (grid only), one metrics delta (MetricsSnapshot::diff against the
// previous emission), trace frames for any nwade/im detection-timeline
// events recorded since the last point, and a heartbeat. finish() closes
// the stream with a final delta plus a full `metrics_total` snapshot.
//
// When emit_trace is on and the source's tracer is enabled, the streamer
// owns the trace drain (take_trace) — an end-of-run exporter attached to
// the same source would see only events after the last cadence point.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "svc/sink.h"
#include "util/telemetry.h"
#include "util/types.h"
#include "util/wall_clock.h"

namespace nwade::sim {
class World;
class Grid;
}  // namespace nwade::sim

namespace nwade::svc {

struct StreamerConfig {
  /// Emission period in simulated ms. Must be a positive multiple of the
  /// source's lattice: step_ms for a World, exchange_every_ms for a Grid
  /// (attach() rejects anything else).
  Duration cadence_ms{1'000};
  bool emit_metrics{true};
  bool emit_health{true};
  bool emit_trace{true};
  bool emit_heartbeat{true};
  /// Stamps heartbeat.wall_us. Null = stamp 0 (fully deterministic stream);
  /// tests pass a FakeWallClock, serve passes SystemWallClock. Not owned.
  util::WallClock* wall{nullptr};
};

class TelemetryStreamer {
 public:
  explicit TelemetryStreamer(StreamerConfig cfg = {});
  ~TelemetryStreamer();
  TelemetryStreamer(const TelemetryStreamer&) = delete;
  TelemetryStreamer& operator=(const TelemetryStreamer&) = delete;

  /// Sinks receive every frame, in registration order. Not owned; must
  /// outlive the streamer (or be removed by destroying the streamer first).
  void add_sink(StreamSink* sink);

  /// Subscribes to `w` (must not be a Grid shard) / `g`. Emits the hello
  /// frame unless `resume` — resuming continues a checkpointed stream: the
  /// delta baseline is re-derived from the restored registry and `seq`
  /// continues from set_next_seq(), so the concatenation of the pre- and
  /// post-restore streams is byte-identical to an uninterrupted run.
  /// Returns false (and subscribes nothing) when cadence_ms does not sit on
  /// the source's lattice.
  bool attach(sim::World& w, bool resume = false);
  bool attach(sim::Grid& g, bool resume = false);
  /// Clears the source's listener. Safe to call twice; the destructor calls
  /// it, so a streamer must not outlive its source.
  void detach();

  /// Emits the closing frames: a final point if simulated time moved past
  /// the last cadence emission, then `metrics_total` (the full cumulative
  /// snapshot) and a last heartbeat. After finish(), cumulative() equals
  /// the source's end-of-run MetricsSnapshot export.
  void finish();

  /// Frame bytes that bring a late-joining consumer up to date: the original
  /// hello plus a `metrics_total` of the cumulative snapshot, stamped with
  /// the last emitted seq (out-of-band — live seq continues unaffected).
  /// Wire this into TcpServerSink::set_greeting.
  std::string catch_up() const;

  /// Sequence number the next frame will carry. Persist across a
  /// checkpoint (serve keeps a sidecar) and feed back via set_next_seq
  /// before a resume attach.
  std::uint64_t next_seq() const { return seq_; }
  void set_next_seq(std::uint64_t seq) { seq_ = seq; }

  std::uint64_t frames_emitted() const { return frames_; }
  /// Restores the emitted-frame count on resume (heartbeats carry it, so it
  /// is stream state just like seq).
  void set_frames_emitted(std::uint64_t frames) { frames_ = frames; }
  /// The fold of every metrics delta emitted so far (== the source snapshot
  /// as of the last emission).
  const util::telemetry::MetricsSnapshot& cumulative() const { return prev_; }

 private:
  void emit(const std::string& json);
  void emit_world_point(Tick t);
  void emit_grid_point(Tick t);
  void emit_heartbeat(Tick t);
  void emit_trace_frames(sim::World& w, std::int64_t shard);

  StreamerConfig cfg_;
  std::vector<StreamSink*> sinks_;
  sim::World* world_{nullptr};
  sim::Grid* grid_{nullptr};
  std::uint64_t seq_{0};
  std::uint64_t frames_{0};
  Tick last_emit_t_{-1};
  std::string hello_json_;
  util::telemetry::MetricsSnapshot prev_;
};

}  // namespace nwade::svc
