#include "svc/frame.h"

#include <cstdio>

namespace nwade::svc {

namespace {

/// Frames larger than this are treated as corruption — no honest frame
/// (even a metrics_total for a large grid) approaches it, and the cap stops
/// a garbled length prefix from making the parser buffer unbounded input.
constexpr std::size_t kMaxFrameBytes = 16u << 20;

void append_int(std::string& o, std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  o += buf;
}

void append_escaped(std::string& o, std::string_view s) {
  o += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        o += "\\\"";
        break;
      case '\\':
        o += "\\\\";
        break;
      case '\n':
        o += "\\n";
        break;
      case '\t':
        o += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          o += buf;
        } else {
          o += c;
        }
    }
  }
  o += '"';
}

}  // namespace

std::string encode_frame(std::string_view json) {
  std::string out;
  out.reserve(json.size() + 16);
  append_int(out, static_cast<std::int64_t>(json.size()));
  out += '\n';
  out += json;
  out += '\n';
  return out;
}

FrameBuilder::FrameBuilder(std::string_view kind, std::uint64_t seq,
                           Tick t_ms) {
  out_ += "{\"kind\": ";
  append_escaped(out_, kind);
  out_ += ", \"seq\": ";
  append_int(out_, static_cast<std::int64_t>(seq));
  out_ += ", \"t_ms\": ";
  append_int(out_, t_ms);
}

FrameBuilder& FrameBuilder::field(std::string_view key, std::int64_t v) {
  out_ += ", ";
  append_escaped(out_, key);
  out_ += ": ";
  append_int(out_, v);
  return *this;
}

FrameBuilder& FrameBuilder::field(std::string_view key, std::string_view v) {
  out_ += ", ";
  append_escaped(out_, key);
  out_ += ": ";
  append_escaped(out_, v);
  return *this;
}

FrameBuilder& FrameBuilder::raw(std::string_view key, std::string_view json) {
  out_ += ", ";
  append_escaped(out_, key);
  out_ += ": ";
  out_ += json;
  return *this;
}

std::string FrameBuilder::take() {
  out_ += "}";
  return std::move(out_);
}

void FrameParser::feed(std::string_view bytes) {
  if (corrupt_) return;
  // Compact consumed prefix before growing, so long-running monitors do not
  // accrete the whole stream in memory.
  if (pos_ > 0 && pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  } else if (pos_ > 4096) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(bytes.data(), bytes.size());
}

bool FrameParser::next(std::string& json_out) {
  if (corrupt_) return false;
  const auto nl = buf_.find('\n', pos_);
  if (nl == std::string::npos) {
    // An unterminated length prefix should stay short; a long run of bytes
    // with no newline is not this protocol.
    if (buf_.size() - pos_ > 32) corrupt_ = true;
    return false;
  }
  std::size_t len = 0;
  bool any_digit = false;
  for (std::size_t i = pos_; i < nl; ++i) {
    const char c = buf_[i];
    if (c < '0' || c > '9') {
      corrupt_ = true;
      return false;
    }
    len = len * 10 + static_cast<std::size_t>(c - '0');
    any_digit = true;
    if (len > kMaxFrameBytes) {
      corrupt_ = true;
      return false;
    }
  }
  if (!any_digit) {
    corrupt_ = true;
    return false;
  }
  // Need the payload plus its trailing newline.
  if (buf_.size() - (nl + 1) < len + 1) return false;
  if (buf_[nl + 1 + len] != '\n') {
    corrupt_ = true;
    return false;
  }
  json_out.assign(buf_, nl + 1, len);
  pos_ = nl + 1 + len + 1;
  return true;
}

namespace {

/// Finds the byte offset of `key`'s value at depth 1, or npos.
std::size_t find_value(std::string_view json, std::string_view key) {
  int depth = 0;
  bool in_str = false;
  bool escape = false;
  std::size_t key_start = std::string_view::npos;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_str) {
      if (escape) {
        escape = false;
      } else if (c == '\\') {
        escape = true;
      } else if (c == '"') {
        in_str = false;
        // A string just closed at depth 1: candidate key if followed by ':'.
        if (depth == 1 && key_start != std::string_view::npos) {
          const std::string_view found =
              json.substr(key_start, i - key_start);
          std::size_t j = i + 1;
          while (j < json.size() &&
                 (json[j] == ' ' || json[j] == '\t')) {
            ++j;
          }
          if (j < json.size() && json[j] == ':') {
            if (found == key) {
              ++j;
              while (j < json.size() &&
                     (json[j] == ' ' || json[j] == '\t')) {
                ++j;
              }
              return j;
            }
            // Not our key: skip past the ':' so its value's strings are not
            // themselves mistaken for keys (handled by the loop naturally).
          }
          key_start = std::string_view::npos;
        }
      }
      continue;
    }
    switch (c) {
      case '"':
        in_str = true;
        if (depth == 1) key_start = i + 1;
        break;
      case '{':
      case '[':
        ++depth;
        break;
      case '}':
      case ']':
        --depth;
        break;
      default:
        break;
    }
  }
  return std::string_view::npos;
}

/// One JSON value's extent starting at `at` (number, string, object/array).
std::size_t value_end(std::string_view json, std::size_t at) {
  if (at >= json.size()) return at;
  const char c0 = json[at];
  if (c0 == '"') {
    bool escape = false;
    for (std::size_t i = at + 1; i < json.size(); ++i) {
      if (escape) {
        escape = false;
      } else if (json[i] == '\\') {
        escape = true;
      } else if (json[i] == '"') {
        return i + 1;
      }
    }
    return json.size();
  }
  if (c0 == '{' || c0 == '[') {
    int depth = 0;
    bool in_str = false;
    bool escape = false;
    for (std::size_t i = at; i < json.size(); ++i) {
      const char c = json[i];
      if (in_str) {
        if (escape) {
          escape = false;
        } else if (c == '\\') {
          escape = true;
        } else if (c == '"') {
          in_str = false;
        }
        continue;
      }
      if (c == '"') {
        in_str = true;
      } else if (c == '{' || c == '[') {
        ++depth;
      } else if (c == '}' || c == ']') {
        if (--depth == 0) return i + 1;
      }
    }
    return json.size();
  }
  std::size_t i = at;
  while (i < json.size() && json[i] != ',' && json[i] != '}' &&
         json[i] != ']' && json[i] != ' ') {
    ++i;
  }
  return i;
}

}  // namespace

std::optional<std::int64_t> frame_int(std::string_view json,
                                      std::string_view key) {
  const std::size_t at = find_value(json, key);
  if (at == std::string_view::npos) return std::nullopt;
  const std::size_t end = value_end(json, at);
  const std::string_view tok = json.substr(at, end - at);
  if (tok.empty() || tok[0] == '"' || tok[0] == '{' || tok[0] == '[') {
    return std::nullopt;
  }
  std::int64_t v = 0;
  bool neg = false;
  std::size_t i = 0;
  if (tok[0] == '-') {
    neg = true;
    i = 1;
  }
  if (i >= tok.size()) return std::nullopt;
  for (; i < tok.size(); ++i) {
    if (tok[i] < '0' || tok[i] > '9') return std::nullopt;
    v = v * 10 + (tok[i] - '0');
  }
  return neg ? -v : v;
}

std::optional<std::string> frame_str(std::string_view json,
                                     std::string_view key) {
  const std::size_t at = find_value(json, key);
  if (at == std::string_view::npos || at >= json.size() || json[at] != '"') {
    return std::nullopt;
  }
  const std::size_t end = value_end(json, at);
  std::string out;
  out.reserve(end - at);
  bool escape = false;
  for (std::size_t i = at + 1; i + 1 < end; ++i) {
    const char c = json[i];
    if (escape) {
      switch (c) {
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        default:
          out += c;  // covers \" and \\ and passes unknown escapes through
      }
      escape = false;
    } else if (c == '\\') {
      escape = true;
    } else {
      out += c;
    }
  }
  return out;
}

std::optional<std::string> frame_raw(std::string_view json,
                                     std::string_view key) {
  const std::size_t at = find_value(json, key);
  if (at == std::string_view::npos) return std::nullopt;
  const std::size_t end = value_end(json, at);
  return std::string(json.substr(at, end - at));
}

}  // namespace nwade::svc
