// nwade-stream-v1: the live telemetry frame protocol (docs/OBSERVABILITY.md).
//
// A stream is a sequence of length-prefixed JSONL frames:
//
//   <decimal byte length of the JSON text>\n
//   <one JSON object, no embedded newlines>\n
//
// The length prefix lets a consumer frame the stream without a JSON parser;
// the trailing newline keeps the raw stream greppable (`tail -f | grep
// '"kind": "trace"'` works on a file sink). Every frame carries three
// header fields in fixed order — `kind`, `seq` (monotonic per stream,
// starting at 0 with the hello frame), `t_ms` (simulated time) — followed
// by kind-specific fields. Frame kinds:
//
//   hello         stream preamble: schema id, source shape, cadence
//   metrics       MetricsSnapshot delta since the previous metrics frame
//                 (MetricsSnapshot::diff; fold the deltas to reconstruct)
//   metrics_total full cumulative snapshot (emitted at finish and to
//                 late-joining monitors as catch-up)
//   trace         one detection-timeline trace event (nwade/im categories)
//   health        one per-shard liveness row
//   status        grid-level exchange counters (lattice streams only)
//   heartbeat     liveness pulse; the only frame carrying wall-clock time
//
// Apart from `heartbeat.wall_us` (stamped through util::WallClock, so tests
// substitute FakeWallClock) every frame byte is a pure function of the
// simulated run: streams are byte-identical across step_threads and
// grid_threads values.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "util/types.h"

namespace nwade::svc {

inline constexpr std::string_view kStreamSchema = "nwade-stream-v1";

/// Wraps one JSON object in the wire framing: `<len>\n<json>\n`.
std::string encode_frame(std::string_view json);

/// Builds one frame's JSON object with the fixed header field order. Values
/// append in call order, so identical call sequences render identical bytes.
class FrameBuilder {
 public:
  FrameBuilder(std::string_view kind, std::uint64_t seq, Tick t_ms);

  FrameBuilder& field(std::string_view key, std::int64_t v);
  FrameBuilder& field(std::string_view key, std::string_view v);
  /// Pre-rendered JSON value (an embedded MetricsSnapshot::json_compact()).
  FrameBuilder& raw(std::string_view key, std::string_view json);

  /// Closes the object and returns the JSON text (no framing).
  std::string take();

 private:
  std::string out_;
};

/// Incremental wire decoder: feed arbitrary byte slices, pop complete JSON
/// lines. Tolerates frames split across reads (TCP) and partial tails (a
/// file still being appended to).
class FrameParser {
 public:
  /// Appends raw stream bytes to the internal buffer.
  void feed(std::string_view bytes);
  /// Pops the next complete frame's JSON text; false when the buffer holds
  /// no complete frame (or the stream is corrupt).
  bool next(std::string& json_out);
  /// True once the framing was violated (non-digit length, missing
  /// newline, oversized frame). A corrupt parser stays corrupt.
  bool corrupt() const { return corrupt_; }
  /// Bytes buffered but not yet consumed.
  std::size_t pending() const { return buf_.size() - pos_; }

 private:
  std::string buf_;
  std::size_t pos_{0};
  bool corrupt_{false};
};

// --- minimal field extraction ------------------------------------------------
// Monitors and tests read our own generator's frames; a full JSON parser is
// not warranted. These scan for `"key":` at the frame's top nesting level
// (depth 1), skipping strings and nested objects/arrays, so a key inside an
// embedded snapshot never shadows a header field.

/// Top-level integer field; nullopt when absent or not an integer.
std::optional<std::int64_t> frame_int(std::string_view json,
                                      std::string_view key);
/// Top-level string field (unescapes \" \\ \n); nullopt when absent.
std::optional<std::string> frame_str(std::string_view json,
                                     std::string_view key);
/// Top-level object/array field, returned as raw JSON text.
std::optional<std::string> frame_raw(std::string_view json,
                                     std::string_view key);

}  // namespace nwade::svc
