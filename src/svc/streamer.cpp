#include "svc/streamer.h"

#include <cstring>
#include <utility>

#include "sim/grid.h"
#include "sim/world.h"
#include "svc/frame.h"
#include "util/trace.h"

namespace nwade::svc {

namespace {

/// Detection-timeline categories worth streaming live. Everything else
/// ("sim" phase spans, "net" internals) is volume without operational
/// signal — and sim spans carry wall-clock durations, which would break the
/// stream's byte-identity contract.
bool streamable(const util::trace::Event& e) {
  return std::strcmp(e.cat, "nwade") == 0 || std::strcmp(e.cat, "im") == 0;
}

}  // namespace

TelemetryStreamer::TelemetryStreamer(StreamerConfig cfg) : cfg_(cfg) {}

TelemetryStreamer::~TelemetryStreamer() { detach(); }

void TelemetryStreamer::add_sink(StreamSink* sink) {
  if (sink != nullptr) sinks_.push_back(sink);
}

void TelemetryStreamer::emit(const std::string& json) {
  const std::string framed = encode_frame(json);
  for (StreamSink* s : sinks_) s->write(framed);
  ++frames_;
}

bool TelemetryStreamer::attach(sim::World& w, bool resume) {
  if (cfg_.cadence_ms <= 0 || cfg_.cadence_ms % w.config().step_ms != 0) {
    return false;
  }
  detach();
  world_ = &w;
  hello_json_ = FrameBuilder("hello", seq_, w.now())
                    .field("schema", kStreamSchema)
                    .field("source", "world")
                    .field("rows", 1)
                    .field("cols", 1)
                    .field("step_ms", w.config().step_ms)
                    .field("cadence_ms", cfg_.cadence_ms)
                    .take();
  if (resume) {
    // The last pre-checkpoint emission folded the gauges and snapshotted the
    // registry, and the checkpoint preserved the registry exactly — so the
    // restored snapshot IS the delta baseline the old stream left off at.
    prev_ = w.registry().snapshot();
    last_emit_t_ = w.now();
  } else {
    ++seq_;
    emit(hello_json_);
  }
  w.set_step_listener([this](Tick t) {
    if (t % cfg_.cadence_ms == 0) emit_world_point(t);
  });
  return true;
}

bool TelemetryStreamer::attach(sim::Grid& g, bool resume) {
  if (cfg_.cadence_ms <= 0 ||
      cfg_.cadence_ms % g.config().exchange_every_ms != 0) {
    return false;
  }
  detach();
  grid_ = &g;
  hello_json_ = FrameBuilder("hello", seq_, g.now())
                    .field("schema", kStreamSchema)
                    .field("source", "grid")
                    .field("rows", g.rows())
                    .field("cols", g.cols())
                    .field("step_ms", g.config().shard.step_ms)
                    .field("exchange_every_ms", g.config().exchange_every_ms)
                    .field("cadence_ms", cfg_.cadence_ms)
                    .take();
  if (resume) {
    prev_ = g.merged_metrics();
    last_emit_t_ = g.now();
  } else {
    ++seq_;
    emit(hello_json_);
  }
  g.set_exchange_listener([this](Tick t) {
    if (t % cfg_.cadence_ms == 0) emit_grid_point(t);
  });
  return true;
}

void TelemetryStreamer::detach() {
  if (world_ != nullptr) world_->set_step_listener(nullptr);
  if (grid_ != nullptr) grid_->set_exchange_listener(nullptr);
  world_ = nullptr;
  grid_ = nullptr;
}

void TelemetryStreamer::emit_trace_frames(sim::World& w, std::int64_t shard) {
  if (!w.tracer().enabled()) return;
  for (const util::trace::Event& e : w.take_trace()) {
    if (!streamable(e)) continue;
    FrameBuilder b("trace", seq_++, e.ts_ms);
    b.field("shard", shard)
        .field("cat", e.cat)
        .field("name", e.name)
        .field("ph", std::string_view(&e.phase, 1));
    if (e.phase == 'X') b.field("dur_ms", e.dur_ms);
    if (e.arg_key != nullptr) b.field(e.arg_key, e.arg_value);
    emit(b.take());
  }
}

void TelemetryStreamer::emit_heartbeat(Tick t) {
  if (!cfg_.emit_heartbeat) return;
  const std::int64_t wall = cfg_.wall != nullptr ? cfg_.wall->now_us() : 0;
  emit(FrameBuilder("heartbeat", seq_++, t)
           .field("wall_us", wall)
           .field("frames", static_cast<std::int64_t>(frames_))
           .take());
}

void TelemetryStreamer::emit_world_point(Tick t) {
  sim::World& w = *world_;
  // summary() folds the protocol/crypto silos into registry gauges before
  // snapshotting, so the detection timeline is visible live in the deltas.
  const sim::RunSummary s = w.summary();
  if (cfg_.emit_health) {
    emit(FrameBuilder("health", seq_++, t)
             .field("shard", 0)
             .field("row", 0)
             .field("col", 0)
             .field("active", s.active_at_end)
             .field("spawned", s.metrics.vehicles_spawned)
             .field("exited", s.metrics.vehicles_exited)
             .field("blacklist",
                    static_cast<std::int64_t>(w.im().confirmed_suspects().size()))
             .field("degraded", s.metrics.degraded_entries)
             .field("im_crashes", s.metrics.im_crashes)
             .field("im_restarts", s.metrics.im_restarts)
             .field("gap_violations", s.min_ground_truth_gap_violations)
             .take());
  }
  if (cfg_.emit_metrics) {
    util::telemetry::MetricsSnapshot snap = s.metrics_snapshot;
    const util::telemetry::MetricsSnapshot delta = snap.diff(prev_);
    emit(FrameBuilder("metrics", seq_++, t)
             .raw("delta", delta.json_compact())
             .take());
    prev_ = std::move(snap);
  }
  if (cfg_.emit_trace) emit_trace_frames(w, 0);
  emit_heartbeat(t);
  last_emit_t_ = t;
}

void TelemetryStreamer::emit_grid_point(Tick t) {
  sim::Grid& g = *grid_;
  const sim::GridSummary gs = g.summary();
  if (cfg_.emit_health) {
    for (int i = 0; i < g.shard_count(); ++i) {
      const sim::RunSummary& s = gs.shards[static_cast<std::size_t>(i)];
      const int row = i / g.cols();
      const int col = i % g.cols();
      emit(FrameBuilder("health", seq_++, t)
               .field("shard", i)
               .field("row", row)
               .field("col", col)
               .field("active", s.active_at_end)
               .field("spawned", s.metrics.vehicles_spawned)
               .field("exited", s.metrics.vehicles_exited)
               .field("blacklist",
                      static_cast<std::int64_t>(
                          g.shard(row, col).im().confirmed_suspects().size()))
               .field("degraded", s.metrics.degraded_entries)
               .field("im_crashes", s.metrics.im_crashes)
               .field("im_restarts", s.metrics.im_restarts)
               .field("gap_violations", s.min_ground_truth_gap_violations)
               .take());
    }
    emit(FrameBuilder("status", seq_++, t)
             .field("handoffs_sent",
                    static_cast<std::int64_t>(gs.handoffs_sent))
             .field("handoffs_deferred",
                    static_cast<std::int64_t>(gs.handoffs_deferred))
             .field("handoffs_delivered",
                    static_cast<std::int64_t>(gs.handoffs_delivered))
             .field("gossip_sent", static_cast<std::int64_t>(gs.gossip_sent))
             .field("gossip_dropped",
                    static_cast<std::int64_t>(gs.gossip_dropped))
             .field("gossip_imports",
                    static_cast<std::int64_t>(gs.gossip_imports))
             .field("retired", static_cast<std::int64_t>(gs.retired))
             .take());
  }
  if (cfg_.emit_metrics) {
    // Fold the summaries just taken rather than calling merged_metrics()
    // (which would re-summarize every shard).
    util::telemetry::MetricsSnapshot merged;
    for (const sim::RunSummary& s : gs.shards) merged.merge(s.metrics_snapshot);
    const util::telemetry::MetricsSnapshot delta = merged.diff(prev_);
    emit(FrameBuilder("metrics", seq_++, t)
             .raw("delta", delta.json_compact())
             .take());
    prev_ = std::move(merged);
  }
  if (cfg_.emit_trace) {
    for (int i = 0; i < g.shard_count(); ++i) {
      emit_trace_frames(g.shard(i / g.cols(), i % g.cols()), i);
    }
  }
  emit_heartbeat(t);
  last_emit_t_ = t;
}

void TelemetryStreamer::finish() {
  const Tick now =
      world_ != nullptr ? world_->now() : (grid_ != nullptr ? grid_->now() : 0);
  if ((world_ != nullptr || grid_ != nullptr) && now != last_emit_t_) {
    // The run ended off-cadence: flush one last regular point so nothing
    // between the final cadence boundary and the end is lost.
    if (world_ != nullptr) {
      emit_world_point(now);
    } else {
      emit_grid_point(now);
    }
  }
  emit(FrameBuilder("metrics_total", seq_++, now)
           .raw("snapshot", prev_.json_compact())
           .take());
  emit_heartbeat(now);
}

std::string TelemetryStreamer::catch_up() const {
  const std::uint64_t last_seq = seq_ > 0 ? seq_ - 1 : 0;
  std::string out = encode_frame(hello_json_);
  out += encode_frame(FrameBuilder("metrics_total", last_seq,
                                   last_emit_t_ >= 0 ? last_emit_t_ : 0)
                          .raw("snapshot", prev_.json_compact())
                          .take());
  return out;
}

}  // namespace nwade::svc
