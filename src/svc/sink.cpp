#include "svc/sink.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace nwade::svc {

void RingSink::write(std::string_view frame) {
  if (max_frames_ == 0) return;
  if (frames_.size() == max_frames_) {
    frames_.pop_front();
    ++dropped_;
  }
  frames_.emplace_back(frame);
}

std::string RingSink::joined() const {
  std::size_t total = 0;
  for (const auto& f : frames_) total += f.size();
  std::string out;
  out.reserve(total);
  for (const auto& f : frames_) out += f;
  return out;
}

FileSink::FileSink(const std::string& path, bool append) {
  f_ = std::fopen(path.c_str(), append ? "ab" : "wb");
}

FileSink::~FileSink() {
  if (f_ != nullptr) std::fclose(f_);
}

void FileSink::write(std::string_view frame) {
  if (f_ == nullptr) return;
  std::fwrite(frame.data(), 1, frame.size(), f_);
  std::fflush(f_);
}

void FileSink::flush() {
  if (f_ != nullptr) std::fflush(f_);
}

namespace {

bool set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

TcpServerSink::TcpServerSink(int port, std::size_t max_backlog_bytes)
    : max_backlog_bytes_(max_backlog_bytes) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 8) != 0 || !set_nonblocking(fd)) {
    ::close(fd);
    return;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  listen_fd_ = fd;
}

TcpServerSink::~TcpServerSink() {
  for (auto& c : clients_) ::close(c.fd);
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void TcpServerSink::set_greeting(std::function<std::string()> greeting) {
  greeting_ = std::move(greeting);
}

void TcpServerSink::accept_pending() {
  if (listen_fd_ < 0) return;
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) break;  // EAGAIN/EWOULDBLOCK: nothing pending
    if (!set_nonblocking(fd)) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    Client c;
    c.fd = fd;
    ++accepted_;
    bool alive = true;
    if (greeting_) alive = push_to(c, greeting_());
    if (alive) {
      clients_.push_back(std::move(c));
    } else {
      ::close(c.fd);
      ++dropped_;
    }
  }
}

bool TcpServerSink::push_to(Client& c, std::string_view bytes) {
  c.backlog.append(bytes.data(), bytes.size());
  while (!c.backlog.empty()) {
    const ssize_t n =
        ::send(c.fd, c.backlog.data(), c.backlog.size(), MSG_NOSIGNAL);
    if (n > 0) {
      c.backlog.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    return false;  // peer closed or hard error
  }
  return c.backlog.size() <= max_backlog_bytes_;
}

void TcpServerSink::drop(std::size_t idx) {
  ::close(clients_[idx].fd);
  clients_.erase(clients_.begin() + static_cast<std::ptrdiff_t>(idx));
  ++dropped_;
}

void TcpServerSink::write(std::string_view frame) {
  accept_pending();
  for (std::size_t i = clients_.size(); i-- > 0;) {
    if (!push_to(clients_[i], frame)) drop(i);
  }
}

void TcpServerSink::pump() {
  accept_pending();
  for (std::size_t i = clients_.size(); i-- > 0;) {
    if (!push_to(clients_[i], std::string_view{})) drop(i);
  }
}

}  // namespace nwade::svc
