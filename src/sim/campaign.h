// Deterministic parallel campaign engine.
//
// A "campaign" is the paper's experiment matrix — intersection kinds x
// Table I attack settings x traffic densities x seeded rounds — expanded
// into independent cells and fanned across the deterministic
// util::WorkerPool. Each cell constructs its own World (own event queue,
// network, signer, and signature-verification cache), so cells share no
// mutable state; results land in expansion order regardless of which thread
// ran which cell. Consequently the aggregated output is a pure function of
// the CampaignConfig: pool size 1 and pool size N produce byte-identical
// results JSON (campaign_results_json), which the determinism test and
// bench_campaign assert.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/world.h"

namespace nwade::sim {

/// The matrix a campaign expands. `base` carries every knob the matrix does
/// not sweep (fault profile, scheduler, legacy fraction, quadratic_reference,
/// ...); the swept axes below overwrite the corresponding base fields per
/// cell.
struct CampaignConfig {
  std::vector<traffic::IntersectionKind> kinds{
      traffic::IntersectionKind::kCross4};
  /// Table I setting names ("benign", "V1", ..., "IM_V5"); unknown names
  /// resolve to benign (protocol::attack_setting_by_name).
  std::vector<std::string> attacks{"benign"};
  std::vector<double> densities_vpm{80.0};
  /// Seeded repetitions per matrix point: round r runs seed base_seed + r.
  int rounds{1};
  std::uint64_t base_seed{1};
  Duration duration_ms{120'000};
  /// Worker pool size; <= 1 runs every cell inline on the caller's thread.
  int threads{1};
  /// true = every cell's World records its event trace (ScenarioConfig::
  /// trace_enabled), collected into CellResult::trace for campaign_trace_json.
  /// Tracing only observes, so results stay byte-identical either way.
  bool trace{false};
  ScenarioConfig base;
};

/// One (kind, attack, density, round) point of the matrix.
struct CampaignCell {
  traffic::IntersectionKind kind{traffic::IntersectionKind::kCross4};
  std::string attack{"benign"};
  double vpm{80.0};
  int round{0};
  std::uint64_t seed{1};
};

/// One finished cell: its coordinates plus the run's summary (and, when
/// CampaignConfig::trace is set, the cell's recorded event trace).
struct CellResult {
  CampaignCell cell;
  RunSummary summary;
  std::vector<util::trace::Event> trace;
};

/// Figure-ready aggregate over the rounds of one (kind, attack, density)
/// matrix point.
struct CellAggregate {
  traffic::IntersectionKind kind{traffic::IntersectionKind::kCross4};
  std::string attack{"benign"};
  double vpm{80.0};
  int rounds{0};
  double mean_throughput_vpm{0};
  double mean_crossing_ms{0};
  /// Fraction of rounds whose run confirmed the deviation (Fig. 4's rate).
  double detection_rate{0};
  /// Mean simulated detection latency over the detecting rounds (Fig. 5).
  double mean_detection_ms{0};
  int false_alarm_evacuations{0};
  int gap_violations{0};
  int degraded_entries{0};
};

/// Expands the matrix in deterministic order: kinds (outer) -> attacks ->
/// densities -> rounds (inner).
std::vector<CampaignCell> expand_cells(const CampaignConfig& cfg);

/// The ScenarioConfig one cell runs: cfg.base with the cell's axes applied.
ScenarioConfig cell_scenario(const CampaignConfig& cfg,
                             const CampaignCell& cell);

/// Runs every cell of the matrix across a WorkerPool of cfg.threads and
/// returns the results in expansion order (fixed-order merge).
std::vector<CellResult> run_campaign(const CampaignConfig& cfg);

/// SHA-256 (hex) of everything that determines a campaign's result bytes:
/// the swept axes, rounds/seed/duration, and the full base scenario — but
/// not `threads` or `trace`, which cannot influence any result byte. A
/// progress log is only resumable into a campaign with the same fingerprint.
std::string campaign_fingerprint(const CampaignConfig& cfg);

/// Crash-resumable run_campaign: journals every finished cell to
/// `progress_path` (schema `nwade-campaign-progress-v1`: a header naming the
/// campaign fingerprint, then one CRC-guarded record per completed cell,
/// appended and flushed as cells finish). When the file already holds
/// records for the same fingerprint, those cells are not re-run — their
/// journaled summaries are spliced into the result vector, which stays in
/// expansion order and byte-identical (campaign_results_json) to an
/// uninterrupted run. A record half-written at the moment of a crash fails
/// its CRC on reload and is discarded along with anything after it; the
/// journal is compacted to the valid prefix before new cells run. A
/// mismatched fingerprint starts the journal over. Traced campaigns
/// (cfg.trace) fall back to a plain run — event traces are not journaled —
/// as does an unopenable progress path.
std::vector<CellResult> run_campaign_resumable(const CampaignConfig& cfg,
                                               const std::string& progress_path);

/// Aggregates results (must be in expansion order) per matrix point.
std::vector<CellAggregate> aggregate(const CampaignConfig& cfg,
                                     const std::vector<CellResult>& results);

/// Deterministic results-only JSON: per-cell rows plus per-point aggregates,
/// excluding anything wall-clock- or machine-derived (timing sample means,
/// thread counts). Byte-identical across pool sizes for the same config.
std::string campaign_results_json(const CampaignConfig& cfg,
                                  const std::vector<CellResult>& results);

/// Full figure-ready report: the results JSON wrapped in an envelope that
/// records how the campaign was executed (threads, hardware concurrency,
/// wall clock) — the non-deterministic context a plot caption needs.
std::string campaign_json(const CampaignConfig& cfg,
                          const std::vector<CellResult>& results,
                          double wall_clock_s);

/// The "process name" label one cell gets in trace exports,
/// e.g. "cross4/V1/vpm80/r0".
std::string cell_label(const CampaignCell& cell);

/// Chrome trace_event JSON over every traced cell, one pid per cell in
/// expansion order (ui.perfetto.dev groups events by process). Byte-identical
/// across pool sizes when `include_wall` is false (wall_us args are the only
/// non-deterministic trace field).
std::string campaign_trace_json(const std::vector<CellResult>& results,
                                bool include_wall = true);

/// JSONL trace export (one event object per line, "pid" = cell index).
std::string campaign_trace_jsonl(const std::vector<CellResult>& results,
                                 bool include_wall = true);

/// Deterministic metrics export: every cell's registry snapshot plus the
/// merged campaign-wide snapshot (schema nwade-metrics-v1). Integer-valued
/// only, so byte-identical across pool sizes and identical seeded runs.
std::string campaign_metrics_json(const CampaignConfig& cfg,
                                  const std::vector<CellResult>& results);

}  // namespace nwade::sim
