// The simulation world: wires the traffic substrate, network, intersection
// manager, and vehicles into one deterministic discrete-event run. This is
// the "3D intelligent intersection traffic simulator" substitute the
// experiments run on (2-D kinematics; the evaluation never depends on
// rendering).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <unordered_set>
#include <utility>
#include <vector>

#include "crypto/signer.h"
#include "crypto/verify_cache.h"
#include "geom/spatial_hash.h"
#include "net/network.h"
#include "nwade/config.h"
#include "nwade/im_node.h"
#include "nwade/metrics.h"
#include "nwade/sensor.h"
#include "nwade/vehicle_node.h"
#include "traffic/arrivals.h"
#include "traffic/types.h"
#include "util/telemetry.h"
#include "util/trace.h"
#include "util/worker_pool.h"

namespace nwade::sim {

/// Which signature scheme the IM uses. HMAC keeps protocol-logic runs fast;
/// RSA matches the paper's crypto cost (Fig. 6 uses 2048).
enum class SignerKind { kHmac = 0, kRsa1024, kRsa2048 };

struct ScenarioConfig {
  traffic::IntersectionConfig intersection;
  double vehicles_per_minute{80};
  Duration duration_ms{120'000};
  Duration step_ms{100};
  std::uint64_t seed{1};

  protocol::NwadeConfig nwade;
  aim::SchedulerConfig scheduler;
  net::NetworkConfig network;
  SignerKind signer{SignerKind::kHmac};

  /// Table I attack setting ("benign" = no attack).
  protocol::AttackSetting attack{"benign", 0, false, 0, 0};
  /// When the attack behaviours trigger.
  Tick attack_time{40'000};
  /// Which lie false reporters tell (Table II type A vs B).
  protocol::FalseReportKind false_report_kind{protocol::FalseReportKind::kIncident};
  /// Malicious-IM behaviour for im_malicious settings.
  protocol::ImAttackMode im_attack_mode{
      protocol::ImAttackMode::kConflictingPlansAndSilence};

  /// false = plain AIM without the NWADE security layer (Fig. 8's baseline):
  /// vehicles skip block verification and the neighbourhood watch.
  bool nwade_enabled{true};

  /// Mixed-traffic extension (the paper's future work): fraction of arrivals
  /// that are legacy vehicles — no V2X, no plan requests; they cross at a
  /// constant cruise speed with simple car-following. The IM perceives them
  /// and schedules managed traffic around virtual trajectory predictions.
  double legacy_fraction{0.0};

  /// true = every O(V^2) all-pairs sweep (ground-truth gap audit, legacy
  /// car-following lookup, sensor queries, and the network broadcast scan)
  /// runs the original brute-force loop instead of the uniform-grid spatial
  /// index. Kept purely as the equivalence/bench baseline (same pattern as
  /// SchedulerConfig::linear_reference_scan); both modes make bit-identical
  /// decisions, so full runs produce byte-identical traces.
  bool quadratic_reference{false};

  /// true = the World's event tracer records the sim-time span/instant
  /// timeline (docs/OBSERVABILITY.md) retrievable via take_trace(). Tracing
  /// only observes — it never draws randomness or changes decisions — so
  /// trace_golden digests are byte-identical either way.
  bool trace_enabled{false};

  /// Worker threads for the intra-world phase kernels (chunked physics /
  /// watch scans / gap audit) and the batched signature prefetch. <= 1 runs
  /// everything inline on the calling thread. Chunk boundaries and every
  /// merge are fixed, so results are byte-identical for ANY value — this is
  /// a wall-clock knob, never a behaviour knob. Deliberately not part of the
  /// checkpoint envelope: a resumed world may pick a different thread count
  /// and still continue bit-exactly.
  int step_threads{1};

  /// true = per-vehicle hot state stays inside each node (array-of-structs)
  /// and step_world runs the original serial per-vehicle loops with inline
  /// signature verification. Kept purely as the equivalence/bench baseline
  /// for the SoA + chunked execution path (same pattern as
  /// quadratic_reference); both modes produce byte-identical runs. Also not
  /// checkpointed.
  bool aos_reference{false};

  // --- grid-sharding hooks (sim::Grid) ---------------------------------------
  /// Ids this world hands out start at vehicle_id_base + 1; a grid assigns
  /// each shard a disjoint base so ids (and therefore NodeIds) stay globally
  /// unique across shards. 0 keeps the classic 1..N single-world numbering
  /// bit-identical. Part of the checkpoint envelope.
  std::uint64_t vehicle_id_base{0};
  /// Extra SoA rows reserved beyond this world's own arrivals, for vehicles
  /// injected mid-run (grid boundary handoffs). Serialized so a restored
  /// world re-reserves identically and node-held row references never
  /// dangle (traffic::VehicleColumns::add_row asserts on spare capacity).
  std::uint64_t extra_vehicle_capacity{0};
};

/// Aggregated outcome of one run.
struct RunSummary {
  protocol::Metrics metrics;
  net::NetworkStats net_stats;
  /// Unified registry snapshot: net.* / aim.* counters plus the protocol and
  /// SigVerifyCache silos folded in as gauges. Integer-valued only, so two
  /// identical seeded runs produce byte-identical snapshot JSON.
  util::telemetry::MetricsSnapshot metrics_snapshot;
  double throughput_vpm{0};      ///< vehicles exited per simulated minute
  double mean_crossing_ms{0};    ///< spawn-to-exit time of exited vehicles
  int active_at_end{0};
  int min_ground_truth_gap_violations{0};  ///< pairs observed closer than 1.5 m
  int legacy_spawned{0};
  int legacy_exited{0};
};

/// One deterministic simulation run.
class World final : public protocol::SensorProvider {
 public:
  explicit World(ScenarioConfig config);
  ~World() override;

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Runs to completion and returns the summary.
  RunSummary run();

  /// Advances simulated time to `t` (stepwise driving for tests).
  void run_until(Tick t);

  RunSummary summary() const;

  // --- checkpoint/restore (sim/checkpoint.h, docs/CHECKPOINT.md) ------------
  /// Serializes the complete world into an `nwade-ckpt-v1` envelope. Must be
  /// called at a step boundary — i.e. between run_until calls, never from
  /// inside an event — so the event queue holds only the re-creatable timer
  /// and delivery events. The known exception: the tracer's recorded event
  /// buffer is NOT included (traces are an observability export, not sim
  /// state; tracing never influences decisions).
  Bytes checkpoint_save() const;
  /// Reconstructs a world from a checkpoint and positions it exactly where
  /// the saved run stood: continuing with run_until/run is byte-identical to
  /// the uninterrupted run. Returns nullptr on malformed or corrupt input
  /// (with a diagnostic in *error when provided).
  static std::unique_ptr<World> checkpoint_restore(const Bytes& blob,
                                                   std::string* error = nullptr);

  // --- SensorProvider -------------------------------------------------------
  std::vector<protocol::Observation> sense_around(geom::Vec2 center, double radius,
                                                  VehicleId exclude) const override;
  /// Allocation-free variant: fills `out` (cleared first). Thread-safe for
  /// concurrent callers once the grids are built for the current position
  /// epoch (step_watch pre-builds them before fanning scans out).
  void sense_around_into(geom::Vec2 center, double radius, VehicleId exclude,
                         std::vector<protocol::Observation>& out) const override;
  std::optional<protocol::Observation> observe(VehicleId id) const override;

  /// Heap allocations the chunked kernels of the most recent step performed
  /// (process-wide, so pool threads are covered) — measured only in
  /// NWADE_COUNT_ALLOCS builds (always zero otherwise, and always zero in
  /// aos_reference mode, which has no chunked kernels). `physics` meters the
  /// pure-run kinematics fan-outs; `watch` meters the sensor-scan fan-out.
  /// The serial merges and emits around them (crossing-time appends,
  /// incident reports, block requests) allocate by design and are excluded.
  /// The alloc-gate test asserts the warmed kernels never allocate.
  struct StepAllocCounts {
    std::uint64_t physics{0};
    std::uint64_t watch{0};
  };
  StepAllocCounts last_step_allocs() const { return last_step_allocs_; }

  // --- grid-sharding hooks (sim::Grid) ----------------------------------------
  /// A vehicle that left this intersection, captured at its exit commit
  /// point with everything a neighboring shard needs to continue it: route
  /// (for the exit leg), carried speed, identity/traits, and the attack
  /// profile (ground truth travels with the vehicle).
  struct ExitRecord {
    VehicleId id;
    int route_id{0};
    Tick exit_time{0};
    double speed_mps{0};
    traffic::VehicleTraits traits;
    protocol::VehicleAttackProfile attack;
    bool legacy{false};
  };
  /// Turns on exit capture (off by default so standalone worlds never grow
  /// an undrained log). The grid enables it right after construction — and
  /// again after a checkpoint restore; the flag is deliberately not part of
  /// the envelope because the grid drains the log before every save.
  void enable_exit_log() { exit_log_enabled_ = true; }
  /// Drains the exits recorded since the last call, in exit order.
  std::vector<ExitRecord> take_exits() { return std::exchange(exit_log_, {}); }
  /// Boundary handoff: spawns a managed vehicle mid-run with an explicit
  /// (globally unique, never seen here) id, a continuation route, and its
  /// carried entry speed (clamped to this intersection's limit). Call at a
  /// step boundary — between run_until calls. A non-benign attack profile
  /// re-registers the vehicle in malicious_ids().
  void inject_vehicle(VehicleId id, int route_id,
                      const traffic::VehicleTraits& traits, double speed_mps,
                      const protocol::VehicleAttackProfile& attack = {});
  /// Legacy flavor of inject_vehicle: no V2X, constant-cruise car following.
  void inject_legacy(VehicleId id, int route_id,
                     const traffic::VehicleTraits& traits, double speed_mps);
  /// Cross-IM gossip import (forwards to ImNode::import_blacklist at the
  /// current sim time). Returns true when the suspect was newly imported.
  bool import_blacklist(VehicleId suspect);
  /// How many arrivals (managed + legacy) this scenario generates — re-runs
  /// the construction-time Poisson draw deterministically without building a
  /// world. Grids use it to size extra_vehicle_capacity and to keep
  /// vehicle_id_base strides collision-free.
  static std::size_t arrival_count(const ScenarioConfig& config);

  // --- introspection ----------------------------------------------------------
  Tick now() const { return clock_.now(); }
  /// The scenario this world runs. For a restored world this is the
  /// checkpoint's config — the authority on duration/seed/faults — not
  /// whatever the restoring process was configured with.
  const ScenarioConfig& config() const { return config_; }
  const protocol::ImNode& im() const { return *im_; }
  const protocol::Metrics& metrics() const { return metrics_; }
  /// The run-scoped metrics registry every layer reports into.
  util::telemetry::Registry& registry() { return registry_; }
  /// The run-scoped event tracer (enabled iff ScenarioConfig::trace_enabled).
  util::trace::Tracer& tracer() { return tracer_; }
  /// Moves the recorded trace events out (campaigns collect per-cell traces).
  std::vector<util::trace::Event> take_trace() { return tracer_.take(); }
  /// Observational hook, called after every completed step with the new
  /// simulated time. Steps land on the fixed step_ms lattice regardless of
  /// how callers slice run_until, so the call schedule — and anything a
  /// listener derives from world state — is independent of slicing and
  /// thread counts. The listener runs on the stepping thread and is not
  /// checkpointed; never attach one to a shard inside a Grid (shards step on
  /// pool threads — subscribe at the Grid instead).
  void set_step_listener(std::function<void(Tick)> fn) {
    step_listener_ = std::move(fn);
  }
  const net::Network& network() const { return *network_; }
  const traffic::Intersection& intersection() const { return intersection_; }
  protocol::VehicleNode* vehicle(VehicleId id);
  std::vector<VehicleId> vehicle_ids() const;
  /// Ids assigned attacker roles for this scenario.
  const std::set<VehicleId>& malicious_ids() const { return malicious_ids_; }

 private:
  /// Resume-mode constructor (checkpoint_restore). `resume_t` >= 0 replays
  /// construction-time event scheduling in burn mode: events that had already
  /// fired by the checkpoint (`when <= resume_t`) consume their original
  /// sequence number without being scheduled, so later allocations — and
  /// therefore same-tick ordering — line up exactly with the original run.
  World(ScenarioConfig config, Tick resume_t);

  /// Applies the named checkpoint sections onto a resume-mode-constructed
  /// world. Telemetry is applied last (construction re-touches gauges), the
  /// queue's sequence counter last of all.
  bool apply_checkpoint(const std::map<std::string, Bytes>& sections,
                        std::string* error);

  /// A legacy (non-communicating) vehicle: pure physics, no protocol.
  struct LegacyVehicle {
    int route_id{0};
    traffic::VehicleTraits traits;
    double s{0};
    double v{0};
    double cruise{0};
    bool exited{false};
  };

  void assign_attack_roles(std::vector<traffic::Arrival>& arrivals);
  /// Appends to exit_log_ (no-op unless enable_exit_log()); called at every
  /// managed exit commit point with the just-exited node.
  void record_exit(const protocol::VehicleNode& v, Tick now);
  void spawn(const traffic::Arrival& arrival, VehicleId id);
  void spawn_legacy(const traffic::Arrival& arrival, VehicleId id);
  void step_legacy(Duration dt_ms);
  geom::Vec2 legacy_position(const LegacyVehicle& l) const;
  void step_world(Tick now);
  void rebuild_sense_grids() const;

  // Chunked phase kernels (byte-identical to the serial aos_reference loops;
  // see step_world for the equivalence argument).
  void step_physics(Tick now, Duration dt);
  void step_watch(Tick now, Tick step_index, Tick watch_every);
  std::size_t step_gap_audit(Tick now);
  /// Batched signature verification: collects the distinct uncached
  /// (key, payload, signature) triples among block deliveries due this step,
  /// verifies them across the worker pool, and parks the verdicts in
  /// sig_batch_ where RsaVerifier::verify picks them up after a (counted)
  /// cache miss — cache contents and stats identical to inline verification.
  void prefetch_block_signatures(Tick until);

  ScenarioConfig config_;
  traffic::Intersection intersection_;
  net::SimClock clock_;
  net::EventQueue queue_;
  /// Run-scoped telemetry. Declared before network_ / im_ / vehicles_, which
  /// hold handles into them, so destruction order stays safe. mutable:
  /// summary() is const but folds the protocol/crypto silos into gauges.
  mutable util::telemetry::Registry registry_;
  util::trace::Tracer tracer_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<crypto::Signer> signer_;
  protocol::Metrics metrics_;
  std::set<VehicleId> malicious_ids_;
  std::map<VehicleId, protocol::VehicleAttackProfile> attack_roles_;
  /// SoA home for every managed vehicle's kinematic hot state; row r belongs
  /// to the r-th spawned vehicle (rows append in ascending id order, exited
  /// rows stay with active == 0). Reserved up front for every arrival so the
  /// node-held references never dangle. Empty in aos_reference mode.
  traffic::VehicleColumns columns_;
  std::unique_ptr<protocol::ImNode> im_;
  std::map<VehicleId, std::unique_ptr<protocol::VehicleNode>> vehicles_;
  std::map<VehicleId, LegacyVehicle> legacy_;
  std::map<VehicleId, Tick> spawn_times_;
  std::vector<Duration> crossing_times_;
  /// Exit capture for grid handoffs (see ExitRecord): appended at every exit
  /// commit point when enabled, drained by take_exits(). Not checkpointed —
  /// the grid drains it at every exchange boundary, so it is empty whenever
  /// a grid checkpoint is taken.
  std::vector<ExitRecord> exit_log_;
  bool exit_log_enabled_{false};
  int gap_violations_{0};
  Tick stepped_until_{0};
  util::telemetry::Counter steps_counter_;
  std::function<void(Tick)> step_listener_;

  /// Per-run signature-verification cache, injected into every vehicle's
  /// verifier. Campaign runs step many worlds concurrently; scoping the
  /// memoized verdicts to the run keeps them isolated (and contention-free)
  /// while single-run behaviour is unchanged — verification is a pure
  /// function, so the verdicts are identical either way.
  crypto::SigVerifyCache verify_cache_;

  /// Worker pool behind the chunked phase kernels and the signature
  /// prefetch; 0 workers (step_threads <= 1) runs everything inline.
  util::WorkerPool step_pool_;
  /// Per-step side-table of prefetched signature verdicts; cleared every
  /// step, recomputable, never checkpointed.
  crypto::SigBatchTable sig_batch_;
  /// One verifier shared by every vehicle (verification is pure and the RSA
  /// context is thread-safe, so sharing changes nothing); wired to
  /// verify_cache_ and sig_batch_.
  std::shared_ptr<const crypto::Verifier> im_verifier_;
  bool batch_verify_{false};  ///< prefetch on: RSA + worker pool + !aos_reference

  // Reused phase scratch (chunked kernels): cleared and refilled every step
  // so the warmed steady state never touches the heap.
  std::vector<protocol::VehicleNode*> step_nodes_;
  std::vector<std::uint8_t> step_impure_;
  std::vector<std::uint8_t> step_exited_;
  std::vector<protocol::VehicleNode*> watch_due_;
  struct AuditProbe {
    geom::Vec2 pos;
    double s{0};
    int route{-1};
    bool parked_off_lane{false};
  };
  std::vector<AuditProbe> audit_probes_;
  geom::SpatialHash audit_grid_{2.0};  ///< capacity-retaining, cleared per audit
  std::vector<int> audit_partials_;
  // Batch-verify collection scratch (prefetch_block_signatures).
  std::vector<crypto::Digest> batch_keys_;
  std::vector<Bytes> batch_payloads_;
  std::vector<const Bytes*> batch_sigs_;
  std::vector<std::uint8_t> batch_ok_;
  std::unordered_set<crypto::Digest, crypto::DigestKeyHash> batch_seen_;
  StepAllocCounts last_step_allocs_;

  /// Bumped whenever positions may have changed (step_world entry, spawns);
  /// the lazily rebuilt sensor grids below are keyed on it.
  std::uint64_t position_epoch_{0};

  // Sensor-query index: snapshots of managed/legacy positions, rebuilt at
  // most once per position epoch. A snapshot can lag a vehicle by one
  // physics step (senses fire mid-step), so queries pad the radius by
  // kSenseSlackM and re-apply the exact live-position predicate.
  mutable geom::SpatialHash sense_managed_grid_{64.0};
  mutable std::vector<VehicleId> sense_managed_ids_;
  mutable geom::SpatialHash sense_legacy_grid_{64.0};
  mutable std::vector<VehicleId> sense_legacy_ids_;
  mutable std::uint64_t sense_built_epoch_{~0ULL};

  // Car-following lookup index: managed positions snapshotted at the top of
  // each step_legacy call (managed vehicles do not move during it).
  geom::SpatialHash follow_grid_{32.0};
  std::vector<const protocol::VehicleNode*> follow_nodes_;
  std::vector<std::size_t> follow_scratch_;
  // Legacy-vs-legacy lookup: positions snapshotted at the top of step_legacy
  // (they drift up to one step during it; the query radius absorbs that and
  // the predicate reads the live fields through the stored pointers).
  geom::SpatialHash legacy_follow_grid_{32.0};
  std::vector<std::pair<VehicleId, const LegacyVehicle*>> legacy_follow_refs_;
};

}  // namespace nwade::sim
