// Checkpoint envelope, wire forms, and the World save/restore members
// (declared in sim/world.h; defined here so world.cpp stays the simulation
// and this file stays the persistence).
#include "sim/checkpoint.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "crypto/sha256.h"
#include "nwade/message_codec.h"
#include "util/crc32.h"

namespace nwade::sim {
namespace checkpoint {

// --- ScenarioConfig ---------------------------------------------------------

void save_scenario_config(ByteWriter& w, const ScenarioConfig& c) {
  w.u8(static_cast<std::uint8_t>(c.intersection.kind));
  w.f64(c.intersection.lane_width_m);
  w.f64(c.intersection.approach_length_m);
  w.f64(c.intersection.exit_length_m);
  w.f64(c.intersection.conflict_clearance_m);
  w.f64(c.intersection.limits.speed_limit_mps);
  w.f64(c.intersection.limits.max_accel_mps2);
  w.f64(c.intersection.limits.max_decel_mps2);

  w.f64(c.vehicles_per_minute);
  w.i64(c.duration_ms);
  w.i64(c.step_ms);
  w.u64(c.seed);

  const protocol::NwadeConfig& n = c.nwade;
  w.i64(n.processing_window_ms);
  w.f64(n.sensing_radius_m);
  w.f64(n.im_perception_radius_m);
  w.f64(n.deviation_tolerance_m);
  w.i64(n.im_response_timeout_ms);
  w.i64(n.verification_round_ms);
  w.u8(n.double_check_verification ? 1 : 0);
  w.i64(n.global_report_threshold);
  w.u64(n.chain_depth);
  w.i64(n.plan_check_margin_ms);
  w.i64(n.plan_grace_ms);
  w.f64(n.threat_radius_m);
  w.i64(n.watch_interval_ms);
  w.u8(n.security_enabled ? 1 : 0);
  w.i64(n.plan_request_backoff_ms);
  w.i64(n.plan_request_backoff_cap_ms);
  w.i64(n.plan_request_max_retries);
  w.f64(n.degraded_approach_speed_mps);
  w.f64(n.degraded_cross_speed_mps);
  w.i64(n.degraded_clear_margin_ms);
  w.i64(n.gap_request_limit);

  w.i64(c.scheduler.margin_ms);
  w.f64(c.scheduler.min_cruise_mps);
  w.i64(c.scheduler.max_push_iterations);
  w.u8(c.scheduler.linear_reference_scan ? 1 : 0);

  const net::NetworkConfig& nc = c.network;
  w.i64(nc.latency_ms);
  w.f64(nc.comm_radius_m);
  w.f64(nc.loss_probability);
  w.u64(nc.seed);
  w.u8(nc.quadratic_reference ? 1 : 0);
  const net::FaultProfile& f = nc.fault;
  w.f64(f.ge_p_good_to_bad);
  w.f64(f.ge_p_bad_to_good);
  w.f64(f.ge_loss_good);
  w.f64(f.ge_loss_bad);
  w.i64(f.jitter_ms);
  w.f64(f.duplicate_probability);
  w.u32(static_cast<std::uint32_t>(f.link_rules.size()));
  for (const net::LinkRule& rule : f.link_rules) {
    w.u64(rule.from.value);
    w.u64(rule.to.value);
    w.str(rule.kind);
    w.f64(rule.drop_probability);
    w.i64(rule.active_from);
    w.i64(rule.active_until);
  }
  w.u32(static_cast<std::uint32_t>(f.outages.size()));
  for (const net::Outage& o : f.outages) {
    w.u64(o.node.value);
    w.i64(o.from);
    w.i64(o.until);
  }

  w.u8(static_cast<std::uint8_t>(c.signer));
  w.str(c.attack.name);
  w.i64(c.attack.malicious_vehicles);
  w.u8(c.attack.im_malicious ? 1 : 0);
  w.i64(c.attack.plan_violations);
  w.i64(c.attack.false_reports);
  w.i64(c.attack_time);
  w.u8(static_cast<std::uint8_t>(c.false_report_kind));
  w.u8(static_cast<std::uint8_t>(c.im_attack_mode));
  w.u8(c.nwade_enabled ? 1 : 0);
  w.f64(c.legacy_fraction);
  w.u8(c.quadratic_reference ? 1 : 0);
  w.u8(c.trace_enabled ? 1 : 0);
  // Grid-sharding hooks (appended last; see the matching loads). Unlike
  // step_threads/aos_reference these are behavior knobs: the id base names
  // every vehicle and the extra capacity must be re-reserved on restore.
  w.u64(c.vehicle_id_base);
  w.u64(c.extra_vehicle_capacity);
}

bool load_scenario_config(ByteReader& r, ScenarioConfig& c) {
  const std::uint8_t kind = r.u8();
  if (!r.ok() || kind > static_cast<std::uint8_t>(traffic::IntersectionKind::kDdi4)) {
    return false;
  }
  c.intersection.kind = static_cast<traffic::IntersectionKind>(kind);
  c.intersection.lane_width_m = r.f64();
  c.intersection.approach_length_m = r.f64();
  c.intersection.exit_length_m = r.f64();
  c.intersection.conflict_clearance_m = r.f64();
  c.intersection.limits.speed_limit_mps = r.f64();
  c.intersection.limits.max_accel_mps2 = r.f64();
  c.intersection.limits.max_decel_mps2 = r.f64();

  c.vehicles_per_minute = r.f64();
  c.duration_ms = r.i64();
  c.step_ms = r.i64();
  c.seed = r.u64();

  protocol::NwadeConfig& n = c.nwade;
  n.processing_window_ms = r.i64();
  n.sensing_radius_m = r.f64();
  n.im_perception_radius_m = r.f64();
  n.deviation_tolerance_m = r.f64();
  n.im_response_timeout_ms = r.i64();
  n.verification_round_ms = r.i64();
  n.double_check_verification = r.u8() != 0;
  n.global_report_threshold = static_cast<int>(r.i64());
  n.chain_depth = static_cast<std::size_t>(r.u64());
  n.plan_check_margin_ms = r.i64();
  n.plan_grace_ms = r.i64();
  n.threat_radius_m = r.f64();
  n.watch_interval_ms = r.i64();
  n.security_enabled = r.u8() != 0;
  n.plan_request_backoff_ms = r.i64();
  n.plan_request_backoff_cap_ms = r.i64();
  n.plan_request_max_retries = static_cast<int>(r.i64());
  n.degraded_approach_speed_mps = r.f64();
  n.degraded_cross_speed_mps = r.f64();
  n.degraded_clear_margin_ms = r.i64();
  n.gap_request_limit = static_cast<int>(r.i64());

  c.scheduler.margin_ms = r.i64();
  c.scheduler.min_cruise_mps = r.f64();
  c.scheduler.max_push_iterations = static_cast<int>(r.i64());
  c.scheduler.linear_reference_scan = r.u8() != 0;

  net::NetworkConfig& nc = c.network;
  nc.latency_ms = r.i64();
  nc.comm_radius_m = r.f64();
  nc.loss_probability = r.f64();
  nc.seed = r.u64();
  nc.quadratic_reference = r.u8() != 0;
  net::FaultProfile& f = nc.fault;
  f.ge_p_good_to_bad = r.f64();
  f.ge_p_bad_to_good = r.f64();
  f.ge_loss_good = r.f64();
  f.ge_loss_bad = r.f64();
  f.jitter_ms = r.i64();
  f.duplicate_probability = r.f64();
  f.link_rules.clear();
  const std::uint32_t n_rules = r.u32();
  if (!r.ok() || n_rules > r.remaining() / 44) return false;
  for (std::uint32_t i = 0; i < n_rules; ++i) {
    net::LinkRule rule;
    rule.from = NodeId{r.u64()};
    rule.to = NodeId{r.u64()};
    rule.kind = r.str();
    rule.drop_probability = r.f64();
    rule.active_from = r.i64();
    rule.active_until = r.i64();
    f.link_rules.push_back(std::move(rule));
  }
  f.outages.clear();
  const std::uint32_t n_outages = r.u32();
  if (!r.ok() || n_outages > r.remaining() / 24) return false;
  for (std::uint32_t i = 0; i < n_outages; ++i) {
    net::Outage o;
    o.node = NodeId{r.u64()};
    o.from = r.i64();
    o.until = r.i64();
    f.outages.push_back(o);
  }

  const std::uint8_t signer = r.u8();
  if (!r.ok() || signer > static_cast<std::uint8_t>(SignerKind::kRsa2048)) {
    return false;
  }
  c.signer = static_cast<SignerKind>(signer);
  c.attack.name = r.str();
  c.attack.malicious_vehicles = static_cast<int>(r.i64());
  c.attack.im_malicious = r.u8() != 0;
  c.attack.plan_violations = static_cast<int>(r.i64());
  c.attack.false_reports = static_cast<int>(r.i64());
  c.attack_time = r.i64();
  const std::uint8_t false_kind = r.u8();
  if (!r.ok() || false_kind > 1) return false;
  c.false_report_kind = static_cast<protocol::FalseReportKind>(false_kind);
  const std::uint8_t im_mode = r.u8();
  if (!r.ok() ||
      im_mode > static_cast<std::uint8_t>(protocol::ImAttackMode::kShamAlert)) {
    return false;
  }
  c.im_attack_mode = static_cast<protocol::ImAttackMode>(im_mode);
  c.nwade_enabled = r.u8() != 0;
  c.legacy_fraction = r.f64();
  c.quadratic_reference = r.u8() != 0;
  c.trace_enabled = r.u8() != 0;
  c.vehicle_id_base = r.u64();
  c.extra_vehicle_capacity = r.u64();
  return r.ok();
}

// --- Metrics ----------------------------------------------------------------

namespace {

void save_opt_tick(ByteWriter& w, const std::optional<Tick>& t) {
  w.u8(t.has_value() ? 1 : 0);
  w.i64(t.value_or(0));
}

std::optional<Tick> load_opt_tick(ByteReader& r) {
  const bool has = r.u8() != 0;
  const Tick t = r.i64();
  return has ? std::optional<Tick>(t) : std::nullopt;
}

void save_wall_samples(ByteWriter& w, const std::vector<double>& xs) {
  w.u32(static_cast<std::uint32_t>(xs.size()));
  for (const double x : xs) w.f64(x);
}

bool load_wall_samples(ByteReader& r, std::vector<double>& out) {
  out.clear();
  const std::uint32_t n = r.u32();
  if (!r.ok() || n > r.remaining() / 8) return false;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(r.f64());
  return r.ok();
}

}  // namespace

void save_metrics(ByteWriter& w, const protocol::Metrics& m,
                  bool include_wall_samples) {
  save_opt_tick(w, m.violation_start);
  save_opt_tick(w, m.first_true_incident);
  save_opt_tick(w, m.deviation_confirmed);
  save_opt_tick(w, m.false_incident_injected);
  save_opt_tick(w, m.false_incident_dismissed);
  save_opt_tick(w, m.false_global_injected);
  save_opt_tick(w, m.false_global_detected);
  save_opt_tick(w, m.im_conflict_injected);
  save_opt_tick(w, m.im_conflict_detected);
  save_opt_tick(w, m.sham_alert_detected);
  w.i64(m.vehicles_spawned);
  w.i64(m.vehicles_exited);
  w.i64(m.incident_reports);
  w.i64(m.global_reports);
  w.i64(m.verify_rounds);
  w.i64(m.alarm_dismissals);
  w.i64(m.evacuation_alerts);
  w.i64(m.benign_self_evacuations);
  w.i64(m.false_alarm_evacuations);
  w.i64(m.malicious_reports_recorded);
  w.i64(m.blocks_published);
  w.i64(m.block_verification_failures);
  w.i64(m.plan_request_retries);
  w.i64(m.gap_block_requests);
  w.i64(m.degraded_entries);
  w.i64(m.degraded_crossings);
  w.i64(m.im_crashes);
  w.i64(m.im_restarts);
  w.i64(m.im_courtesy_gaps);
  w.u8(include_wall_samples ? 1 : 0);
  if (include_wall_samples) {
    save_wall_samples(w, m.im_package_us);
    save_wall_samples(w, m.vehicle_verify_us);
  }
}

bool load_metrics(ByteReader& r, protocol::Metrics& m) {
  m.violation_start = load_opt_tick(r);
  m.first_true_incident = load_opt_tick(r);
  m.deviation_confirmed = load_opt_tick(r);
  m.false_incident_injected = load_opt_tick(r);
  m.false_incident_dismissed = load_opt_tick(r);
  m.false_global_injected = load_opt_tick(r);
  m.false_global_detected = load_opt_tick(r);
  m.im_conflict_injected = load_opt_tick(r);
  m.im_conflict_detected = load_opt_tick(r);
  m.sham_alert_detected = load_opt_tick(r);
  m.vehicles_spawned = static_cast<int>(r.i64());
  m.vehicles_exited = static_cast<int>(r.i64());
  m.incident_reports = static_cast<int>(r.i64());
  m.global_reports = static_cast<int>(r.i64());
  m.verify_rounds = static_cast<int>(r.i64());
  m.alarm_dismissals = static_cast<int>(r.i64());
  m.evacuation_alerts = static_cast<int>(r.i64());
  m.benign_self_evacuations = static_cast<int>(r.i64());
  m.false_alarm_evacuations = static_cast<int>(r.i64());
  m.malicious_reports_recorded = static_cast<int>(r.i64());
  m.blocks_published = static_cast<int>(r.i64());
  m.block_verification_failures = static_cast<int>(r.i64());
  m.plan_request_retries = static_cast<int>(r.i64());
  m.gap_block_requests = static_cast<int>(r.i64());
  m.degraded_entries = static_cast<int>(r.i64());
  m.degraded_crossings = static_cast<int>(r.i64());
  m.im_crashes = static_cast<int>(r.i64());
  m.im_restarts = static_cast<int>(r.i64());
  m.im_courtesy_gaps = static_cast<int>(r.i64());
  m.im_package_us.clear();
  m.vehicle_verify_us.clear();
  if (r.u8() != 0) {
    if (!load_wall_samples(r, m.im_package_us)) return false;
    if (!load_wall_samples(r, m.vehicle_verify_us)) return false;
  }
  return r.ok();
}

// --- MetricsSnapshot --------------------------------------------------------

namespace {

void save_i64_map(ByteWriter& w, const std::map<std::string, std::int64_t>& m) {
  w.u32(static_cast<std::uint32_t>(m.size()));
  for (const auto& [name, value] : m) {
    w.str(name);
    w.i64(value);
  }
}

bool load_i64_map(ByteReader& r, std::map<std::string, std::int64_t>& out) {
  out.clear();
  const std::uint32_t n = r.u32();
  if (!r.ok() || n > r.remaining() / 12) return false;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string name = r.str();
    out[std::move(name)] = r.i64();
  }
  return r.ok();
}

void save_i64_vec(ByteWriter& w, const std::vector<std::int64_t>& xs) {
  w.u32(static_cast<std::uint32_t>(xs.size()));
  for (const std::int64_t x : xs) w.i64(x);
}

bool load_i64_vec(ByteReader& r, std::vector<std::int64_t>& out) {
  out.clear();
  const std::uint32_t n = r.u32();
  if (!r.ok() || n > r.remaining() / 8) return false;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(r.i64());
  return r.ok();
}

}  // namespace

void save_metrics_snapshot(ByteWriter& w,
                           const util::telemetry::MetricsSnapshot& snap) {
  save_i64_map(w, snap.counters);
  save_i64_map(w, snap.gauges);
  w.u32(static_cast<std::uint32_t>(snap.histograms.size()));
  for (const auto& [name, h] : snap.histograms) {
    w.str(name);
    save_i64_vec(w, h.upper_edges);
    save_i64_vec(w, h.bucket_counts);
    w.i64(h.count);
    w.i64(h.sum);
  }
}

bool load_metrics_snapshot(ByteReader& r,
                           util::telemetry::MetricsSnapshot& out) {
  if (!load_i64_map(r, out.counters)) return false;
  if (!load_i64_map(r, out.gauges)) return false;
  out.histograms.clear();
  const std::uint32_t n = r.u32();
  if (!r.ok() || n > r.remaining() / 28) return false;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string name = r.str();
    util::telemetry::MetricsSnapshot::HistogramData h;
    if (!load_i64_vec(r, h.upper_edges)) return false;
    if (!load_i64_vec(r, h.bucket_counts)) return false;
    h.count = r.i64();
    h.sum = r.i64();
    out.histograms[std::move(name)] = std::move(h);
  }
  return r.ok();
}

// --- RunSummary -------------------------------------------------------------

namespace {

void save_kind_counts(
    ByteWriter& w, const std::unordered_map<std::string, std::uint64_t>& m) {
  std::vector<std::string> keys;
  keys.reserve(m.size());
  for (const auto& [k, v] : m) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  w.u32(static_cast<std::uint32_t>(keys.size()));
  for (const std::string& k : keys) {
    w.str(k);
    w.u64(m.at(k));
  }
}

bool load_kind_counts(ByteReader& r,
                      std::unordered_map<std::string, std::uint64_t>& out) {
  out.clear();
  const std::uint32_t n = r.u32();
  if (!r.ok() || n > r.remaining() / 12) return false;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string k = r.str();
    out[std::move(k)] = r.u64();
  }
  return r.ok();
}

void save_run_summary_impl(ByteWriter& w, const RunSummary& s,
                           bool include_wall_samples) {
  save_metrics(w, s.metrics, include_wall_samples);
  w.u64(s.net_stats.packets_sent);
  w.u64(s.net_stats.packets_delivered);
  w.u64(s.net_stats.packets_dropped);
  w.u64(s.net_stats.packets_out_of_range);
  w.u64(s.net_stats.packets_duplicated);
  w.u64(s.net_stats.packets_lost_outage);
  w.u64(s.net_stats.bytes_sent);
  save_kind_counts(w, s.net_stats.packets_by_kind);
  save_kind_counts(w, s.net_stats.bytes_by_kind);
  save_kind_counts(w, s.net_stats.dropped_by_kind);
  save_metrics_snapshot(w, s.metrics_snapshot);
  w.f64(s.throughput_vpm);
  w.f64(s.mean_crossing_ms);
  w.i64(s.active_at_end);
  w.i64(s.min_ground_truth_gap_violations);
  w.i64(s.legacy_spawned);
  w.i64(s.legacy_exited);
}

}  // namespace

void save_run_summary(ByteWriter& w, const RunSummary& s) {
  save_run_summary_impl(w, s, /*include_wall_samples=*/true);
}

bool load_run_summary(ByteReader& r, RunSummary& s) {
  if (!load_metrics(r, s.metrics)) return false;
  s.net_stats.packets_sent = r.u64();
  s.net_stats.packets_delivered = r.u64();
  s.net_stats.packets_dropped = r.u64();
  s.net_stats.packets_out_of_range = r.u64();
  s.net_stats.packets_duplicated = r.u64();
  s.net_stats.packets_lost_outage = r.u64();
  s.net_stats.bytes_sent = r.u64();
  if (!load_kind_counts(r, s.net_stats.packets_by_kind)) return false;
  if (!load_kind_counts(r, s.net_stats.bytes_by_kind)) return false;
  if (!load_kind_counts(r, s.net_stats.dropped_by_kind)) return false;
  if (!load_metrics_snapshot(r, s.metrics_snapshot)) return false;
  s.throughput_vpm = r.f64();
  s.mean_crossing_ms = r.f64();
  s.active_at_end = static_cast<int>(r.i64());
  s.min_ground_truth_gap_violations = static_cast<int>(r.i64());
  s.legacy_spawned = static_cast<int>(r.i64());
  s.legacy_exited = static_cast<int>(r.i64());
  return r.ok();
}

std::string run_summary_digest(const RunSummary& s) {
  ByteWriter w;
  save_run_summary_impl(w, s, /*include_wall_samples=*/false);
  return to_hex(crypto::sha256(w.data()));
}

// --- replay bundles ---------------------------------------------------------

Bytes save_replay_bundle(const ReplayBundle& bundle) {
  ByteWriter w;
  w.str(kReplaySchema);
  save_scenario_config(w, bundle.config);
  w.i64(bundle.run_to);
  w.str(bundle.expected_digest);
  w.str(bundle.note);
  return w.take();
}

bool load_replay_bundle(const Bytes& blob, ReplayBundle& out,
                        std::string* error) {
  const auto fail = [&](const char* msg) {
    if (error) *error = msg;
    return false;
  };
  ByteReader r(blob);
  if (r.str() != kReplaySchema) return fail("not an nwade-replay-v1 bundle");
  if (!load_scenario_config(r, out.config)) {
    return fail("malformed scenario config");
  }
  out.run_to = r.i64();
  out.expected_digest = r.str();
  out.note = r.str();
  if (!r.ok() || !r.at_end()) return fail("truncated or trailing bytes");
  return true;
}

}  // namespace checkpoint

// --- World::checkpoint_save / checkpoint_restore ----------------------------

namespace {

constexpr const char* kSectionConfig = "config";
constexpr const char* kSectionTime = "time";
constexpr const char* kSectionMetrics = "metrics";
constexpr const char* kSectionNetwork = "network";
constexpr const char* kSectionIm = "im";
constexpr const char* kSectionVehicles = "vehicles";
constexpr const char* kSectionLegacy = "legacy";
constexpr const char* kSectionCrypto = "crypto";
constexpr const char* kSectionTelemetry = "telemetry";

/// Sections a v1 reader requires; extra sections are skipped (CRC-checked),
/// which is the forward-compatibility path described in docs/CHECKPOINT.md.
constexpr std::size_t kMaxSections = 64;

}  // namespace

Bytes World::checkpoint_save() const {
  // Checkpoints are only valid at step boundaries: between run_until calls
  // the clock sits exactly at the last completed step and every pending
  // event belongs to a serializable owner (network delivery, IM timer).
  assert(clock_.now() == stepped_until_);

  std::vector<std::pair<std::string, Bytes>> sections;
  const auto add = [&sections](const char* name, ByteWriter& w) {
    sections.emplace_back(name, w.take());
  };

  {
    ByteWriter w;
    checkpoint::save_scenario_config(w, config_);
    add(kSectionConfig, w);
  }
  {
    ByteWriter w;
    w.i64(stepped_until_);
    w.u64(queue_.next_seq());
    w.i64(gap_violations_);
    w.u32(static_cast<std::uint32_t>(crossing_times_.size()));
    for (const Duration d : crossing_times_) w.i64(d);
    w.u32(static_cast<std::uint32_t>(spawn_times_.size()));
    for (const auto& [id, t] : spawn_times_) {
      w.u64(id.value);
      w.i64(t);
    }
    add(kSectionTime, w);
  }
  {
    ByteWriter w;
    checkpoint::save_metrics(w, metrics_, /*include_wall_samples=*/true);
    add(kSectionMetrics, w);
  }
  {
    ByteWriter w;
    network_->checkpoint_save(w, [](ByteWriter& ww, const net::Message& m) {
      protocol::encode_message(ww, m);
    });
    add(kSectionNetwork, w);
  }
  {
    ByteWriter w;
    im_->checkpoint_save(w);
    add(kSectionIm, w);
  }
  {
    ByteWriter w;
    w.u32(static_cast<std::uint32_t>(vehicles_.size()));
    for (const auto& [id, v] : vehicles_) {
      w.u64(id.value);
      w.i64(v->route_id());
      v->traits().serialize(w);
      w.i64(v->spawn_time());
      const protocol::VehicleAttackProfile& a = v->attack_profile();
      w.u8(static_cast<std::uint8_t>(a.role));
      w.i64(a.trigger_at);
      w.u8(static_cast<std::uint8_t>(a.deviation));
      w.u8(static_cast<std::uint8_t>(a.false_report));
      // The SoA row this vehicle owns. Restore must re-construct nodes in
      // *row* order (not id order) so every node claims the row it held
      // before the checkpoint: grid handoffs inject foreign ids whose rows
      // interleave chronologically with local spawns, breaking the old
      // "ascending id == spawn order" invariant. 0xffffffff = AoS mode.
      w.u32(config_.aos_reference
                ? 0xffffffffu
                : static_cast<std::uint32_t>(v->kin_row()));
      // Node state travels as a length-prefixed blob so the restore side
      // can stage all records before constructing any node.
      ByteWriter node_w;
      v->checkpoint_save(node_w);
      w.bytes(node_w.take());
    }
    add(kSectionVehicles, w);
  }
  {
    ByteWriter w;
    w.u32(static_cast<std::uint32_t>(legacy_.size()));
    for (const auto& [id, l] : legacy_) {
      w.u64(id.value);
      w.i64(l.route_id);
      l.traits.serialize(w);
      w.f64(l.s);
      w.f64(l.v);
      w.f64(l.cruise);
      w.u8(l.exited ? 1 : 0);
    }
    add(kSectionLegacy, w);
  }
  {
    ByteWriter w;
    verify_cache_.checkpoint_save(w);
    add(kSectionCrypto, w);
  }
  {
    ByteWriter w;
    checkpoint::save_metrics_snapshot(w, registry_.snapshot());
    add(kSectionTelemetry, w);
  }

  ByteWriter out;
  out.str(checkpoint::kCheckpointSchema);
  out.u32(static_cast<std::uint32_t>(sections.size()));
  for (const auto& [name, payload] : sections) {
    out.str(name);
    out.u32(util::crc32(payload));
    out.bytes(payload);
  }
  return out.take();
}

std::unique_ptr<World> World::checkpoint_restore(const Bytes& blob,
                                                 std::string* error) {
  const auto fail = [&](const std::string& msg) -> std::unique_ptr<World> {
    if (error) *error = msg;
    return nullptr;
  };

  ByteReader r(blob);
  if (r.str() != checkpoint::kCheckpointSchema) {
    return fail("not an nwade-ckpt-v1 checkpoint");
  }
  const std::uint32_t n_sections = r.u32();
  if (!r.ok() || n_sections > kMaxSections) {
    return fail("malformed section table");
  }
  std::map<std::string, Bytes> sections;
  for (std::uint32_t i = 0; i < n_sections; ++i) {
    std::string name = r.str();
    const std::uint32_t crc = r.u32();
    Bytes payload = r.bytes();
    if (!r.ok()) return fail("truncated section '" + name + "'");
    if (util::crc32(payload) != crc) {
      return fail("CRC mismatch in section '" + name + "'");
    }
    sections[std::move(name)] = std::move(payload);
  }
  if (!r.at_end()) return fail("trailing bytes after section table");

  const auto config_it = sections.find(kSectionConfig);
  const auto time_it = sections.find(kSectionTime);
  if (config_it == sections.end() || time_it == sections.end()) {
    return fail("missing config/time section");
  }
  ScenarioConfig config;
  {
    ByteReader cr(config_it->second);
    if (!checkpoint::load_scenario_config(cr, config) || !cr.at_end()) {
      return fail("malformed config section");
    }
  }
  Tick resume_t = 0;
  {
    ByteReader tr(time_it->second);
    resume_t = tr.i64();
    if (!tr.ok() || resume_t < 0) return fail("malformed time section");
  }

  auto world =
      std::unique_ptr<World>(new World(std::move(config), resume_t));
  if (!world->apply_checkpoint(sections, error)) return nullptr;
  return world;
}

bool World::apply_checkpoint(const std::map<std::string, Bytes>& sections,
                             std::string* error) {
  const auto fail = [&](const std::string& msg) {
    if (error) *error = msg;
    return false;
  };
  const auto section = [&sections](const char* name) -> const Bytes* {
    const auto it = sections.find(name);
    return it == sections.end() ? nullptr : &it->second;
  };
  const Bytes* time_s = section(kSectionTime);
  const Bytes* metrics_s = section(kSectionMetrics);
  const Bytes* network_s = section(kSectionNetwork);
  const Bytes* im_s = section(kSectionIm);
  const Bytes* vehicles_s = section(kSectionVehicles);
  const Bytes* legacy_s = section(kSectionLegacy);
  const Bytes* crypto_s = section(kSectionCrypto);
  const Bytes* telemetry_s = section(kSectionTelemetry);
  if (!time_s || !metrics_s || !network_s || !im_s || !vehicles_s ||
      !legacy_s || !crypto_s || !telemetry_s) {
    return fail("missing checkpoint section");
  }

  std::uint64_t saved_next_seq = 0;
  {
    ByteReader r(*time_s);
    stepped_until_ = r.i64();
    saved_next_seq = r.u64();
    gap_violations_ = static_cast<int>(r.i64());
    crossing_times_.clear();
    const std::uint32_t n_cross = r.u32();
    if (!r.ok() || n_cross > r.remaining() / 8) {
      return fail("malformed time section");
    }
    crossing_times_.reserve(n_cross);
    for (std::uint32_t i = 0; i < n_cross; ++i) {
      crossing_times_.push_back(r.i64());
    }
    spawn_times_.clear();
    const std::uint32_t n_spawn = r.u32();
    if (!r.ok() || n_spawn > r.remaining() / 16) {
      return fail("malformed time section");
    }
    for (std::uint32_t i = 0; i < n_spawn; ++i) {
      const VehicleId id{r.u64()};
      spawn_times_[id] = r.i64();
    }
    if (!r.ok() || !r.at_end()) return fail("malformed time section");
  }
  clock_.advance_to(stepped_until_);

  {
    ByteReader r(*metrics_s);
    if (!checkpoint::load_metrics(r, metrics_) || !r.at_end()) {
      return fail("malformed metrics section");
    }
  }
  {
    ByteReader r(*network_s);
    if (!network_->checkpoint_restore(
            r, [](ByteReader& rr) { return protocol::decode_message(rr); }) ||
        !r.at_end()) {
      return fail("malformed network section");
    }
  }
  {
    ByteReader r(*im_s);
    if (!im_->checkpoint_restore(r) || !r.at_end()) {
      return fail("malformed im section");
    }
  }
  {
    ByteReader r(*vehicles_s);
    const std::uint32_t n = r.u32();
    if (!r.ok() || n > r.remaining() / 44) {
      return fail("malformed vehicles section");
    }
    // Stage every record first, then construct in *row* order: rows encode
    // the original spawn/injection chronology, which grid handoffs decouple
    // from id order. Constructing row-by-row reproduces both the SoA row
    // assignment and the network's add_node order.
    struct VehicleRecord {
      VehicleId id;
      int route_id{0};
      traffic::VehicleTraits traits;
      Tick spawn_time{0};
      protocol::VehicleAttackProfile profile;
      std::uint32_t row{0};
      Bytes node_blob;
    };
    std::vector<VehicleRecord> records;
    records.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      VehicleRecord rec;
      rec.id = VehicleId{r.u64()};
      rec.route_id = static_cast<int>(r.i64());
      rec.traits = traffic::VehicleTraits::deserialize(r);
      rec.spawn_time = r.i64();
      const std::uint8_t role = r.u8();
      if (!r.ok() ||
          role > static_cast<std::uint8_t>(
                     protocol::VehicleRole::kFalseReporter)) {
        return fail("malformed vehicles section");
      }
      rec.profile.role = static_cast<protocol::VehicleRole>(role);
      rec.profile.trigger_at = r.i64();
      rec.profile.deviation = static_cast<protocol::DeviationMode>(r.u8() & 1);
      rec.profile.false_report =
          static_cast<protocol::FalseReportKind>(r.u8() & 1);
      rec.row = r.u32();
      rec.node_blob = r.bytes();
      if (!r.ok()) return fail("malformed vehicles section");
      records.push_back(std::move(rec));
    }
    if (!r.at_end()) return fail("malformed vehicles section");
    std::sort(records.begin(), records.end(),
              [](const VehicleRecord& a, const VehicleRecord& b) {
                return a.row != b.row ? a.row < b.row
                                      : a.id.value < b.id.value;
              });
    for (const VehicleRecord& rec : records) {
      protocol::VehicleContext ctx;
      ctx.intersection = &intersection_;
      ctx.config = &config_.nwade;
      ctx.network = network_.get();
      ctx.clock = &clock_;
      ctx.sensors = this;
      ctx.im_verifier = im_verifier_;
      ctx.metrics = &metrics_;
      ctx.malicious_ids = &malicious_ids_;
      ctx.registry = &registry_;
      ctx.tracer = &tracer_;
      // step_threads/aos_reference are deliberately not part of the
      // envelope; a restored world always uses the current config's
      // defaults, which cannot change results (only wall clock).
      ctx.columns = config_.aos_reference ? nullptr : &columns_;
      // Attackers injected by a grid handoff are not re-created by
      // assign_attack_roles on resume — re-register their roles so sensing
      // and metrics labelling keep treating them as malicious.
      if (rec.profile.role != protocol::VehicleRole::kBenign) {
        malicious_ids_.insert(rec.id);
        attack_roles_[rec.id] = rec.profile;
      }
      auto node = std::make_unique<protocol::VehicleNode>(
          ctx, rec.id, rec.route_id, rec.traits, rec.spawn_time, rec.profile);
      ByteReader nr(rec.node_blob);
      if (!node->checkpoint_restore(nr) || !nr.at_end()) {
        return fail("malformed vehicles section");
      }
      // Exited vehicles were removed from the network when they left; their
      // chain stores still matter (trace digests fold every vehicle). A
      // restored vehicle never start()s — its spawn is history.
      if (!node->exited()) network_->add_node(node.get());
      vehicles_[rec.id] = std::move(node);
    }
  }
  {
    ByteReader r(*legacy_s);
    const std::uint32_t n = r.u32();
    if (!r.ok() || n > r.remaining() / 52) {
      return fail("malformed legacy section");
    }
    for (std::uint32_t i = 0; i < n; ++i) {
      const VehicleId id{r.u64()};
      LegacyVehicle l;
      l.route_id = static_cast<int>(r.i64());
      l.traits = traffic::VehicleTraits::deserialize(r);
      l.s = r.f64();
      l.v = r.f64();
      l.cruise = r.f64();
      l.exited = r.u8() != 0;
      legacy_[id] = l;
    }
    if (!r.ok() || !r.at_end()) return fail("malformed legacy section");
  }
  {
    ByteReader r(*crypto_s);
    if (!verify_cache_.checkpoint_restore(r) || !r.at_end()) {
      return fail("malformed crypto section");
    }
  }
  // Telemetry last: reconstruction above re-touches gauges and counters
  // (add_node, kind-handle recreation); the snapshot overwrite is the final
  // word so restored values exactly match the saved run's registry.
  {
    ByteReader r(*telemetry_s);
    util::telemetry::MetricsSnapshot snap;
    if (!checkpoint::load_metrics_snapshot(r, snap) || !r.at_end()) {
      return fail("malformed telemetry section");
    }
    registry_.restore(snap);
  }
  // The allocation counter moves last of all: every schedule_at_seq above
  // left it untouched, and construction-time burning advanced it exactly as
  // the original construction did, so this lands it on the saved value.
  queue_.set_next_seq(saved_next_seq);
  ++position_epoch_;
  return true;
}

}  // namespace nwade::sim
