// Deterministic checkpoint/restore and record/replay (docs/CHECKPOINT.md).
//
// A checkpoint is a versioned binary envelope (`nwade-ckpt-v1`) holding the
// COMPLETE state of a World at a step boundary: scenario config, simulated
// time and event-queue sequence counter, every vehicle's automaton + chain
// store, the IM's plan/reservation/round tables with their pending timer
// coordinates, the network's in-flight deliveries and fault-model RNG, the
// signature-verification cache, and the telemetry registry. Restoring and
// continuing is byte-identical (trace-golden digest) to never having stopped.
//
// The envelope is a named-section table — each section length-prefixed and
// CRC-32 guarded — so corruption is detected before any state is applied and
// unknown future sections can be skipped by older readers.
//
// A replay bundle (`nwade-replay-v1`) is the record side of record/replay:
// the scenario config plus the target time and the expected summary digest.
// Re-running it (examples/replay) under ASan/TSan reproduces an incident
// bit-exactly from the seed. A campaign progress log
// (`nwade-campaign-progress-v1`, sim/campaign.h) reuses the RunSummary wire
// form defined here.
#pragma once

#include <string>

#include "sim/world.h"

namespace nwade::sim::checkpoint {

inline constexpr std::string_view kCheckpointSchema = "nwade-ckpt-v1";
inline constexpr std::string_view kReplaySchema = "nwade-replay-v1";

// --- wire forms ------------------------------------------------------------

/// Serializes every ScenarioConfig knob (fault profile included; the
/// registry/tracer injection pointers are reconstructed, not stored).
void save_scenario_config(ByteWriter& w, const ScenarioConfig& config);
bool load_scenario_config(ByteReader& r, ScenarioConfig& out);

void save_metrics(ByteWriter& w, const protocol::Metrics& m,
                  bool include_wall_samples);
bool load_metrics(ByteReader& r, protocol::Metrics& out);

/// Full RunSummary wire form (campaign progress records). Maps are written
/// key-sorted, floats as IEEE-754 bit patterns, so equal summaries serialize
/// to equal bytes.
void save_run_summary(ByteWriter& w, const RunSummary& s);
bool load_run_summary(ByteReader& r, RunSummary& out);

void save_metrics_snapshot(ByteWriter& w,
                           const util::telemetry::MetricsSnapshot& snap);
bool load_metrics_snapshot(ByteReader& r,
                           util::telemetry::MetricsSnapshot& out);

/// SHA-256 (hex) over the deterministic content of a summary — everything
/// except the wall-clock timing sample vectors. Two runs of the same
/// scenario, interrupted or not, produce the same digest.
std::string run_summary_digest(const RunSummary& s);

// --- replay bundles --------------------------------------------------------

struct ReplayBundle {
  ScenarioConfig config;
  /// Simulated time to run to (normally config.duration_ms).
  Tick run_to{0};
  /// run_summary_digest the original run produced; empty = not recorded.
  std::string expected_digest;
  /// Free-form context ("soak invariant violation at t=41200", ...).
  std::string note;
};

Bytes save_replay_bundle(const ReplayBundle& bundle);
bool load_replay_bundle(const Bytes& blob, ReplayBundle& out,
                        std::string* error = nullptr);

}  // namespace nwade::sim::checkpoint
