// Multi-intersection lattice (docs/GRID.md): an N x M grid (or 1 x N
// corridor) of region shards, each owning a full sim::World — its own IM,
// chain, network, and RNG streams — stepped in deterministic lockstep over a
// util::WorkerPool, one shard per task.
//
// Shards interact only at exchange boundaries (every exchange_every_ms),
// through directed boundary edges carrying two lanes (net::EdgeChannel):
//
//  * vehicle handoffs: a vehicle exiting shard A toward a lattice neighbour
//    retires in A and re-materialises in B at a deterministic tick with its
//    identity, traits, carried speed, a deterministically chosen route
//    continuation, and its ground-truth attack profile;
//  * cross-IM gossip: each IM's confirmed-suspect blacklist piggybacks on the
//    same edges (lossy lane, cumulative resend), so an attacker flagged at
//    one intersection is distrusted downstream within bounded gossip delay.
//
// Determinism contract: phase A (stepping) fans shards out over the pool but
// each shard is internally deterministic and shares nothing mutable; phases
// B (drain + enqueue) and C (deliver) run serially in fixed shard/edge
// order. The grid summary digest is therefore byte-identical for ANY
// grid_threads value — grid_threads is a wall-clock knob, never a behaviour
// knob (same contract as ScenarioConfig::step_threads).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/edge.h"
#include "sim/world.h"
#include "util/worker_pool.h"

namespace nwade::sim {

struct GridConfig {
  int rows{1};
  int cols{1};
  /// Template for every shard. Per-shard seed / vehicle_id_base /
  /// extra_vehicle_capacity / step_threads are derived by the grid:
  /// step_threads passes through util::nested_thread_budget so a grid at
  /// 8 shard threads never stacks inner step pools on top (8 x 4 runs 8
  /// workers, not 32). Multi-shard grids require the cross4 layout (the
  /// leg->neighbour mapping below) and the SoA vehicle core
  /// (!aos_reference; the checkpoint row contract depends on it).
  ScenarioConfig shard;
  /// Grid-level seed; shard seeds and edge-channel streams derive from it.
  std::uint64_t seed{1};
  /// Boundary-exchange cadence; must be a multiple of shard.step_ms.
  /// Handoffs and gossip materialise only at these boundaries, so the
  /// effective inter-shard latency is quantised to the exchange grid.
  Duration exchange_every_ms{1'000};
  /// Gossip broadcast cadence; must be a multiple of exchange_every_ms.
  Duration gossip_every_ms{2'000};
  /// Maximum boundary handoffs per vehicle after its origin crossing;
  /// vehicles also retire when they would re-enter a shard they already
  /// crossed (keeps per-world ids unique) or exit the lattice boundary.
  int max_hops{3};
  /// >= 0: only this shard (row-major index) receives the template's attack
  /// setting; every other shard runs benign. -1 = template applies to all.
  /// The upstream-attacker gossip scenarios flag a single origin shard.
  int attack_shard{-1};
  /// Shard-stepping worker threads (phase A). <= 1 steps shards inline.
  int grid_threads{1};
  /// Fault/latency template applied to every boundary edge.
  net::EdgeFaultConfig edge;
};

/// Aggregated outcome of a grid run.
struct GridSummary {
  int rows{0};
  int cols{0};
  std::vector<RunSummary> shards;  ///< row-major shard order
  std::uint64_t handoffs_sent{0};
  std::uint64_t handoffs_deferred{0};   ///< delayed by an edge outage
  std::uint64_t handoffs_delivered{0};  ///< materialised in the target shard
  std::uint64_t gossip_sent{0};
  std::uint64_t gossip_dropped{0};
  std::uint64_t gossip_imports{0};  ///< newly imported blacklist entries
  std::uint64_t retired{0};         ///< left the lattice (boundary/hop-cap/revisit)
  double aggregate_throughput_vpm{0};
};

class Grid {
 public:
  explicit Grid(GridConfig config);

  /// Advances every shard to `t` (a multiple of shard.step_ms), exchanging
  /// at every absolute multiple of exchange_every_ms crossed on the way.
  /// The boundary schedule depends only on t, never on call granularity.
  void run_until(Tick t);
  /// Runs to shard.duration_ms and returns the summary.
  GridSummary run();

  GridSummary summary() const;
  /// SHA-256 (hex) over the deterministic content of a grid summary: the
  /// per-shard run_summary_digests plus the exchange counters. Byte-equal
  /// across grid_threads values and across checkpoint/restore.
  static std::string summary_digest(const GridSummary& s);
  /// One MetricsSnapshot for the whole lattice: the shard snapshots folded
  /// in row-major order (counters/histograms add, gauges last-writer-wins —
  /// MetricsSnapshot::merge). Shard snapshots are thread-schedule
  /// independent and the fold order is fixed, so the result is byte-equal
  /// across grid_threads values.
  util::telemetry::MetricsSnapshot merged_metrics() const;
  /// Observational hook, called at every exchange boundary crossed by
  /// run_until, after the exchange completes — the only instants where the
  /// lattice is globally consistent regardless of call slicing. Runs on the
  /// calling thread (all shards quiescent). Not checkpointed.
  void set_exchange_listener(std::function<void(Tick)> fn) {
    exchange_listener_ = std::move(fn);
  }

  Tick now() const { return now_; }
  int rows() const { return config_.rows; }
  int cols() const { return config_.cols; }
  int shard_count() const { return config_.rows * config_.cols; }
  World& shard(int row, int col) { return *shards_.at(index_of(row, col)); }
  const World& shard(int row, int col) const {
    return *shards_.at(index_of(row, col));
  }
  const GridConfig& config() const { return config_; }

  // --- checkpoint/restore ---------------------------------------------------
  /// Serializes the whole lattice into an `nwade-grid-ckpt-v1` envelope:
  /// the same named-section table format as nwade-ckpt-v1 (docs/CHECKPOINT.md)
  /// with a "grid" section (topology, cadence, edge queues/channels, roam
  /// table, counters) plus one "shard.<i>" section per world, each a complete
  /// nwade-ckpt-v1 blob. Unknown sections are skipped (CRC-checked), so a v1
  /// reader survives future extensions. Must be called at an exchange
  /// boundary — the only instants where every exit log is drained.
  Bytes checkpoint_save() const;
  /// Rebuilds a grid positioned exactly where the saved run stood;
  /// continuing is byte-identical to the uninterrupted run. `grid_threads`
  /// is deliberately NOT part of the envelope — the restoring process picks
  /// its own (a wall-clock knob). Returns nullptr on malformed input.
  static std::unique_ptr<Grid> checkpoint_restore(const Bytes& blob,
                                                  int grid_threads,
                                                  std::string* error = nullptr);

 private:
  /// A vehicle in flight on an edge's reliable lane.
  struct PendingHandoff {
    std::uint64_t seq{0};
    Tick deliver_at{0};
    VehicleId id;
    int route_id{0};  ///< continuation route in the TARGET shard
    double speed_mps{0};
    traffic::VehicleTraits traits;
    protocol::VehicleAttackProfile attack;
    bool legacy{false};
  };
  /// A blacklist snapshot in flight on an edge's lossy lane.
  struct PendingGossip {
    std::uint64_t seq{0};
    Tick deliver_at{0};
    std::vector<VehicleId> suspects;
  };
  struct Edge {
    int from{0};
    int to{0};
    int exit_leg{0};   ///< leg of `from` this edge leaves through
    int entry_leg{0};  ///< leg of `to` it arrives on ((exit_leg + 2) % 4)
    net::EdgeChannel channel;
    std::uint64_t next_seq{0};
    std::vector<PendingHandoff> handoffs;
    std::vector<PendingGossip> gossip;
  };
  /// Per-vehicle lattice itinerary: which shards it has crossed (bitmask,
  /// hence the <= 64 shard limit) and how many handoffs it has taken.
  struct Roam {
    std::uint64_t visited_mask{0};
    std::uint8_t hops{0};
  };

  Grid(GridConfig config, bool construct_worlds);

  std::size_t index_of(int row, int col) const;
  void build_edges();
  /// Phase B + C at boundary `t`: serially drain every shard's exits into
  /// edge queues (fixed shard order), broadcast gossip when due, then
  /// deliver every due item (fixed edge order, (deliver_at, seq) order
  /// within an edge).
  void exchange(Tick t);
  int continuation_route(int shard_idx, int entry_leg, VehicleId id,
                         int hop) const;

  GridConfig config_;
  util::WorkerPool pool_;
  std::vector<std::unique_ptr<World>> shards_;  ///< row-major
  std::vector<Edge> edges_;
  /// edge_by_exit_[shard][leg] -> index into edges_, or -1 (lattice border).
  std::vector<std::array<int, 4>> edge_by_exit_;
  std::map<VehicleId, Roam> roam_;
  Tick now_{0};
  std::function<void(Tick)> exchange_listener_;

  std::uint64_t handoffs_delivered_{0};
  std::uint64_t gossip_imports_{0};
  std::uint64_t retired_boundary_{0};
  std::uint64_t retired_hops_{0};
  std::uint64_t retired_revisit_{0};
};

}  // namespace nwade::sim
