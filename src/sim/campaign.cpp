#include "sim/campaign.h"

#include <cstdio>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "crypto/sha256.h"
#include "nwade/config.h"
#include "sim/checkpoint.h"
#include "util/crc32.h"
#include "util/worker_pool.h"

namespace nwade::sim {

namespace {

// Local fixed-precision JSON rendering: identical doubles render to
// identical bytes, which the cross-pool-size determinism guarantee relies
// on (bench/support.h is a bench-only header, so the engine carries its own
// minimal emitter).
std::string num(double v, int precision = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string num(std::uint64_t v) { return std::to_string(v); }
std::string num(int v) { return std::to_string(v); }

std::string cell_row(const CellResult& r) {
  const auto& m = r.summary.metrics;
  const auto& n = r.summary.net_stats;
  const auto detection = m.deviation_detection_time();
  std::string out = "{";
  out += "\"kind\": \"" + std::string(intersection_name(r.cell.kind)) + "\", ";
  out += "\"attack\": \"" + r.cell.attack + "\", ";
  out += "\"vpm\": " + num(r.cell.vpm, 1) + ", ";
  out += "\"round\": " + num(r.cell.round) + ", ";
  out += "\"seed\": " + num(r.cell.seed) + ", ";
  out += "\"spawned\": " + num(m.vehicles_spawned) + ", ";
  out += "\"exited\": " + num(m.vehicles_exited) + ", ";
  out += "\"throughput_vpm\": " + num(r.summary.throughput_vpm) + ", ";
  out += "\"mean_crossing_ms\": " + num(r.summary.mean_crossing_ms, 1) + ", ";
  out += "\"active_at_end\": " + num(r.summary.active_at_end) + ", ";
  out += "\"gap_violations\": " +
         num(r.summary.min_ground_truth_gap_violations) + ", ";
  out += "\"detection_ms\": " +
         (detection ? num(static_cast<std::uint64_t>(*detection))
                    : std::string("-1")) +
         ", ";
  out += "\"incident_reports\": " + num(m.incident_reports) + ", ";
  out += "\"global_reports\": " + num(m.global_reports) + ", ";
  out += "\"evacuation_alerts\": " + num(m.evacuation_alerts) + ", ";
  out += "\"false_alarm_evacuations\": " + num(m.false_alarm_evacuations) + ", ";
  out += "\"degraded_entries\": " + num(m.degraded_entries) + ", ";
  out += "\"blocks_published\": " + num(m.blocks_published) + ", ";
  out += "\"packets_sent\": " + num(n.packets_sent) + ", ";
  out += "\"packets_delivered\": " + num(n.packets_delivered) + ", ";
  out += "\"packets_dropped\": " + num(n.packets_dropped) + ", ";
  out += "\"bytes_sent\": " + num(n.bytes_sent) + ", ";
  out += "\"legacy_spawned\": " + num(r.summary.legacy_spawned) + ", ";
  out += "\"legacy_exited\": " + num(r.summary.legacy_exited) + ", ";
  // The cell's full registry snapshot (integer-valued, single-threaded per
  // cell), so the row carries every net.*/aim.*/protocol.* metric without
  // widening the flat column set above.
  out += "\"metrics\": " + r.summary.metrics_snapshot.json_compact();
  out += "}";
  return out;
}

std::string aggregate_row(const CellAggregate& a) {
  std::string out = "{";
  out += "\"kind\": \"" + std::string(intersection_name(a.kind)) + "\", ";
  out += "\"attack\": \"" + a.attack + "\", ";
  out += "\"vpm\": " + num(a.vpm, 1) + ", ";
  out += "\"rounds\": " + num(a.rounds) + ", ";
  out += "\"mean_throughput_vpm\": " + num(a.mean_throughput_vpm) + ", ";
  out += "\"mean_crossing_ms\": " + num(a.mean_crossing_ms, 1) + ", ";
  out += "\"detection_rate\": " + num(a.detection_rate) + ", ";
  out += "\"mean_detection_ms\": " + num(a.mean_detection_ms, 1) + ", ";
  out += "\"false_alarm_evacuations\": " + num(a.false_alarm_evacuations) + ", ";
  out += "\"gap_violations\": " + num(a.gap_violations) + ", ";
  out += "\"degraded_entries\": " + num(a.degraded_entries);
  out += "}";
  return out;
}

}  // namespace

std::vector<CampaignCell> expand_cells(const CampaignConfig& cfg) {
  std::vector<CampaignCell> cells;
  cells.reserve(cfg.kinds.size() * cfg.attacks.size() *
                cfg.densities_vpm.size() * static_cast<std::size_t>(cfg.rounds));
  for (const traffic::IntersectionKind kind : cfg.kinds) {
    for (const std::string& attack : cfg.attacks) {
      for (const double vpm : cfg.densities_vpm) {
        for (int round = 0; round < cfg.rounds; ++round) {
          cells.push_back(CampaignCell{
              kind, attack, vpm, round,
              cfg.base_seed + static_cast<std::uint64_t>(round)});
        }
      }
    }
  }
  return cells;
}

ScenarioConfig cell_scenario(const CampaignConfig& cfg,
                             const CampaignCell& cell) {
  ScenarioConfig s = cfg.base;
  s.intersection.kind = cell.kind;
  s.vehicles_per_minute = cell.vpm;
  s.duration_ms = cfg.duration_ms;
  s.seed = cell.seed;
  s.attack = protocol::attack_setting_by_name(cell.attack);
  if (cfg.trace) s.trace_enabled = true;
  return s;
}

std::vector<CellResult> run_campaign(const CampaignConfig& cfg) {
  const std::vector<CampaignCell> cells = expand_cells(cfg);
  util::WorkerPool pool(cfg.threads);
  // Per-run isolation: each cell builds its own World — own event queue,
  // network, RNG stream, signer, and signature-verification cache — so the
  // only shared state is the read-only config and the result slots, which
  // the pool's fixed-order map keeps per-index. Thread count therefore
  // cannot influence any result byte.
  return pool.map<CellResult>(cells.size(), [&cfg, &cells](std::size_t i) {
    World world(cell_scenario(cfg, cells[i]));
    CellResult result{cells[i], world.run(), {}};
    result.trace = world.take_trace();  // empty unless the cell traced
    return result;
  });
}

namespace {

constexpr std::string_view kProgressSchema = "nwade-campaign-progress-v1";

/// One record of the progress journal: `bytes(payload)` (u32 length prefix)
/// followed by `u32 crc32(payload)`. The payload is the cell's expansion
/// index plus the full RunSummary wire form. The length prefix lets the
/// loader frame a record before trusting it; the CRC catches both a record
/// half-written at the moment of a crash and bit rot in a journal that sat
/// on disk between sessions.
void append_progress_record(ByteWriter& w, std::size_t cell_index,
                            const RunSummary& summary) {
  ByteWriter payload;
  payload.u64(static_cast<std::uint64_t>(cell_index));
  checkpoint::save_run_summary(payload, summary);
  w.bytes(payload.data());
  w.u32(util::crc32(payload.data()));
}

/// Parses a journal blob. Returns the summaries of every valid record keyed
/// by cell index (first record wins on duplicates) — or nothing at all when
/// the header's schema or fingerprint does not match. Records after the
/// first corrupt/truncated one are discarded: a torn tail means everything
/// beyond it is of unknown provenance.
std::unordered_map<std::size_t, RunSummary> load_progress(
    std::span<const std::uint8_t> blob, std::string_view fingerprint) {
  std::unordered_map<std::size_t, RunSummary> out;
  ByteReader r(blob);
  if (r.str() != kProgressSchema) return out;
  if (r.str() != fingerprint || !r.ok()) return out;
  while (r.ok() && !r.at_end()) {
    const std::uint32_t len = r.u32();
    const std::span<const std::uint8_t> payload = r.view(len);
    const std::uint32_t crc = r.u32();
    if (!r.ok() || util::crc32(payload) != crc) break;
    ByteReader rec(payload);
    const std::size_t index = static_cast<std::size_t>(rec.u64());
    RunSummary summary;
    if (!checkpoint::load_run_summary(rec, summary) || !rec.at_end()) break;
    out.emplace(index, std::move(summary));
  }
  return out;
}

/// Reads a whole file; empty on any error (missing file reads as an empty
/// journal, which load_progress then rejects on the schema check).
Bytes read_file_bytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return {};
  Bytes out;
  std::uint8_t buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.insert(out.end(), buf, buf + n);
  }
  std::fclose(f);
  return out;
}

}  // namespace

std::string campaign_fingerprint(const CampaignConfig& cfg) {
  ByteWriter w;
  w.str(kProgressSchema);
  w.u32(static_cast<std::uint32_t>(cfg.kinds.size()));
  for (const traffic::IntersectionKind kind : cfg.kinds) {
    w.u8(static_cast<std::uint8_t>(kind));
  }
  w.u32(static_cast<std::uint32_t>(cfg.attacks.size()));
  for (const std::string& attack : cfg.attacks) w.str(attack);
  w.u32(static_cast<std::uint32_t>(cfg.densities_vpm.size()));
  for (const double vpm : cfg.densities_vpm) w.f64(vpm);
  w.i64(cfg.rounds);
  w.u64(cfg.base_seed);
  w.i64(cfg.duration_ms);
  // The full base scenario rides along: a progress log recorded under one
  // fault profile or scheduler must not be spliced into a campaign run under
  // another. `threads` and `trace` are deliberately absent — neither can
  // influence a result byte, so a journal survives a thread-count change.
  checkpoint::save_scenario_config(w, cfg.base);
  return to_hex(crypto::sha256(w.data()));
}

std::vector<CellResult> run_campaign_resumable(const CampaignConfig& cfg,
                                               const std::string& progress_path) {
  // Event traces are not journaled (they dwarf the summaries and exist for
  // interactive inspection, not aggregation), so a traced campaign cannot be
  // resumed faithfully — run it plain instead of resuming without traces.
  if (cfg.trace) return run_campaign(cfg);

  const std::vector<CampaignCell> cells = expand_cells(cfg);
  const std::string fingerprint = campaign_fingerprint(cfg);

  std::unordered_map<std::size_t, RunSummary> done =
      load_progress(read_file_bytes(progress_path), fingerprint);
  // Indices past the matrix (a journal from a larger campaign cannot share
  // our fingerprint, but a corrupt index could still frame a valid record).
  std::erase_if(done, [&cells](const auto& kv) {
    return kv.first >= cells.size();
  });

  // Compact: rewrite header + every valid loaded record, so a journal whose
  // tail was torn by the last crash starts this session clean. The handle
  // stays open for the per-cell appends below.
  std::FILE* journal = std::fopen(progress_path.c_str(), "wb");
  if (!journal) return run_campaign(cfg);
  {
    ByteWriter w;
    w.str(kProgressSchema);
    w.str(fingerprint);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const auto it = done.find(i);
      if (it != done.end()) append_progress_record(w, i, it->second);
    }
    std::fwrite(w.data().data(), 1, w.data().size(), journal);
    std::fflush(journal);
  }

  util::WorkerPool pool(cfg.threads);
  std::mutex journal_mutex;
  std::vector<CellResult> results = pool.map<CellResult>(
      cells.size(),
      [&cfg, &cells, &done, journal, &journal_mutex](std::size_t i) {
        if (const auto it = done.find(i); it != done.end()) {
          return CellResult{cells[i], it->second, {}};
        }
        World world(cell_scenario(cfg, cells[i]));
        CellResult result{cells[i], world.run(), {}};
        ByteWriter w;
        append_progress_record(w, i, result.summary);
        {
          // Append + flush before the result is considered done: a crash
          // after the flush resumes past this cell, a crash during the
          // write leaves a torn record the loader's CRC discards.
          const std::lock_guard<std::mutex> lock(journal_mutex);
          std::fwrite(w.data().data(), 1, w.data().size(), journal);
          std::fflush(journal);
        }
        return result;
      });
  std::fclose(journal);
  return results;
}

std::vector<CellAggregate> aggregate(const CampaignConfig& cfg,
                                     const std::vector<CellResult>& results) {
  std::vector<CellAggregate> out;
  const std::size_t rounds = static_cast<std::size_t>(cfg.rounds);
  for (std::size_t base = 0; base + rounds <= results.size(); base += rounds) {
    CellAggregate a;
    a.kind = results[base].cell.kind;
    a.attack = results[base].cell.attack;
    a.vpm = results[base].cell.vpm;
    a.rounds = cfg.rounds;
    int detected = 0;
    double detection_total = 0;
    for (std::size_t i = base; i < base + rounds; ++i) {
      const RunSummary& s = results[i].summary;
      a.mean_throughput_vpm += s.throughput_vpm;
      a.mean_crossing_ms += s.mean_crossing_ms;
      a.false_alarm_evacuations += s.metrics.false_alarm_evacuations;
      a.gap_violations += s.min_ground_truth_gap_violations;
      a.degraded_entries += s.metrics.degraded_entries;
      if (const auto d = s.metrics.deviation_detection_time()) {
        ++detected;
        detection_total += static_cast<double>(*d);
      }
    }
    a.mean_throughput_vpm /= static_cast<double>(rounds);
    a.mean_crossing_ms /= static_cast<double>(rounds);
    a.detection_rate = static_cast<double>(detected) / static_cast<double>(rounds);
    a.mean_detection_ms = detected ? detection_total / detected : 0;
    out.push_back(std::move(a));
  }
  return out;
}

std::string campaign_results_json(const CampaignConfig& cfg,
                                  const std::vector<CellResult>& results) {
  std::string out = "{\n";
  out += "  \"schema\": \"nwade-campaign-v1\",\n";
  out += "  \"base_seed\": " + num(cfg.base_seed) + ",\n";
  out += "  \"rounds\": " + num(cfg.rounds) + ",\n";
  out += "  \"duration_ms\": " +
         num(static_cast<std::uint64_t>(cfg.duration_ms)) + ",\n";
  out += "  \"cells\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    out += "    " + cell_row(results[i]);
    if (i + 1 < results.size()) out += ",";
    out += "\n";
  }
  out += "  ],\n";
  const std::vector<CellAggregate> aggs = aggregate(cfg, results);
  out += "  \"aggregates\": [\n";
  for (std::size_t i = 0; i < aggs.size(); ++i) {
    out += "    " + aggregate_row(aggs[i]);
    if (i + 1 < aggs.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n";
  out += "}\n";
  return out;
}

std::string campaign_json(const CampaignConfig& cfg,
                          const std::vector<CellResult>& results,
                          double wall_clock_s) {
  std::string out = "{\n";
  out += "  \"schema\": \"nwade-campaign-report-v1\",\n";
  out += "  \"threads\": " + num(cfg.threads) + ",\n";
  out += "  \"hardware_concurrency\": " +
         num(static_cast<std::uint64_t>(std::thread::hardware_concurrency())) +
         ",\n";
  out += "  \"wall_clock_s\": " + num(wall_clock_s) + ",\n";
  std::string results_json = campaign_results_json(cfg, results);
  // Indent the embedded results object two spaces to keep the report legible.
  out += "  \"results\": ";
  for (std::size_t i = 0; i < results_json.size(); ++i) {
    out += results_json[i];
    if (results_json[i] == '\n' && i + 1 < results_json.size()) out += "  ";
  }
  if (out.back() == '\n') out.pop_back();
  // Strip the indent added after the results object's final newline.
  while (!out.empty() && out.back() == ' ') out.pop_back();
  out += "\n}\n";
  return out;
}

std::string cell_label(const CampaignCell& cell) {
  std::string label = intersection_name(cell.kind);
  label += "/" + cell.attack;
  label += "/vpm" + num(cell.vpm, 0);
  label += "/r" + num(cell.round);
  return label;
}

namespace {

/// Streams + labels for the traced cells, indices aligned. Untraced cells
/// (empty vectors) are skipped so a partially traced campaign still exports.
void collect_trace_streams(const std::vector<CellResult>& results,
                           std::vector<std::vector<util::trace::Event>>& streams,
                           std::vector<std::string>& names) {
  for (const CellResult& r : results) {
    if (r.trace.empty()) continue;
    streams.push_back(r.trace);
    names.push_back(cell_label(r.cell));
  }
}

}  // namespace

std::string campaign_trace_json(const std::vector<CellResult>& results,
                                bool include_wall) {
  std::vector<std::vector<util::trace::Event>> streams;
  std::vector<std::string> names;
  collect_trace_streams(results, streams, names);
  return util::trace::chrome_trace_json(streams, names, include_wall);
}

std::string campaign_trace_jsonl(const std::vector<CellResult>& results,
                                 bool include_wall) {
  std::vector<std::vector<util::trace::Event>> streams;
  std::vector<std::string> names;
  collect_trace_streams(results, streams, names);
  return util::trace::jsonl_trace(streams, include_wall);
}

std::string campaign_metrics_json(const CampaignConfig& cfg,
                                  const std::vector<CellResult>& results) {
  std::string out = "{\n";
  out += "  \"schema\": \"nwade-metrics-v1\",\n";
  out += "  \"base_seed\": " + num(cfg.base_seed) + ",\n";
  out += "  \"cells\": [\n";
  util::telemetry::MetricsSnapshot merged;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CellResult& r = results[i];
    out += "    {\"cell\": \"" + cell_label(r.cell) + "\", \"metrics\": " +
           r.summary.metrics_snapshot.json_compact() + "}";
    if (i + 1 < results.size()) out += ",";
    out += "\n";
    merged.merge(r.summary.metrics_snapshot);
  }
  out += "  ],\n";
  // Campaign-wide fold: counters/histograms sum across cells (gauges are
  // last-writer-wins and mostly per-run levels — read them per cell).
  out += "  \"merged\": " + merged.json_compact() + "\n";
  out += "}\n";
  return out;
}

}  // namespace nwade::sim
