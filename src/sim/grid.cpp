#include "sim/grid.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "crypto/sha256.h"
#include "sim/checkpoint.h"
#include "util/crc32.h"

namespace nwade::sim {

namespace {

/// Ids handed out by shard i start at i * kIdStride, so NodeIds stay globally
/// unique as vehicles roam. The constructor asserts total demand fits.
constexpr std::uint64_t kIdStride = 1'000'000;

constexpr std::uint64_t splitmix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
constexpr std::uint64_t mix2(std::uint64_t a, std::uint64_t b) {
  return splitmix(a ^ splitmix(b + 0x632be59bd9b4e019ULL));
}
constexpr std::uint64_t mix3(std::uint64_t a, std::uint64_t b,
                             std::uint64_t c) {
  return mix2(mix2(a, b), c);
}

constexpr std::string_view kGridCheckpointSchema = "nwade-grid-ckpt-v1";
constexpr const char* kSectionGrid = "grid";
/// More generous than the single-world parser (64 shards + grid + future
/// extensions); unknown sections are skipped after their CRC checks out.
constexpr std::size_t kGridMaxSections = 256;

}  // namespace

Grid::Grid(GridConfig config) : Grid(std::move(config), true) {}

Grid::Grid(GridConfig config, bool construct_worlds)
    : config_(std::move(config)), pool_(config_.grid_threads) {
  const int n = config_.rows * config_.cols;
  assert(config_.rows >= 1 && config_.cols >= 1);
  assert(n <= 64 && "Roam::visited_mask is a 64-bit shard bitmask");
  assert(config_.shard.step_ms > 0);
  assert(config_.exchange_every_ms > 0 &&
         config_.exchange_every_ms % config_.shard.step_ms == 0);
  assert(config_.gossip_every_ms > 0 &&
         config_.gossip_every_ms % config_.exchange_every_ms == 0);
  if (n > 1) {
    assert(config_.shard.intersection.kind ==
               traffic::IntersectionKind::kCross4 &&
           "multi-shard grids require the cross4 leg->neighbour mapping");
    assert(!config_.shard.aos_reference &&
           "grid handoffs require the SoA vehicle core");
  }
  build_edges();
  if (!construct_worlds) return;

  // Derive per-shard scenarios: disjoint seeds and id ranges, and an inner
  // step-thread budget that keeps one level of parallelism at a time (the
  // WorkerPool oversubscription policy — 8 shard threads x 4 step threads
  // must run 8 workers, not 32).
  std::vector<ScenarioConfig> cfgs(static_cast<std::size_t>(n), config_.shard);
  std::vector<std::size_t> counts(static_cast<std::size_t>(n), 0);
  std::size_t total = 0;
  for (int i = 0; i < n; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    cfgs[ui].seed = mix2(config_.seed, static_cast<std::uint64_t>(i));
    cfgs[ui].vehicle_id_base = kIdStride * static_cast<std::uint64_t>(i);
    cfgs[ui].step_threads = util::nested_thread_budget(
        config_.grid_threads, config_.shard.step_threads);
    if (config_.attack_shard >= 0 && i != config_.attack_shard) {
      cfgs[ui].attack = protocol::AttackSetting{"benign", 0, false, 0, 0};
    }
    counts[ui] = World::arrival_count(cfgs[ui]);
    total += counts[ui];
  }
  assert(total < kIdStride && "shard id ranges would collide");
  shards_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    // A vehicle enters any shard at most once (revisit retirement), so the
    // worst-case injection load on a shard is every OTHER shard's arrivals.
    cfgs[ui].extra_vehicle_capacity =
        static_cast<std::uint64_t>(total - counts[ui]);
    shards_.push_back(std::make_unique<World>(cfgs[ui]));
    shards_.back()->enable_exit_log();
  }
}

std::size_t Grid::index_of(int row, int col) const {
  assert(row >= 0 && row < config_.rows && col >= 0 && col < config_.cols);
  return static_cast<std::size_t>(row) *
             static_cast<std::size_t>(config_.cols) +
         static_cast<std::size_t>(col);
}

void Grid::build_edges() {
  // Cross4 legs sit at angles {0, 90, 180, 270}; leg k therefore leads to
  // the lattice neighbour below, and arrivals from it enter the neighbour on
  // the opposite leg (k + 2) % 4. Edges are created in (shard, leg) order —
  // the fixed order phase C delivers in.
  static constexpr int kDr[4] = {0, 1, 0, -1};
  static constexpr int kDc[4] = {1, 0, -1, 0};
  const int n = config_.rows * config_.cols;
  edge_by_exit_.assign(static_cast<std::size_t>(n),
                       std::array<int, 4>{-1, -1, -1, -1});
  for (int r = 0; r < config_.rows; ++r) {
    for (int c = 0; c < config_.cols; ++c) {
      const int idx = r * config_.cols + c;
      for (int leg = 0; leg < 4; ++leg) {
        const int nr = r + kDr[leg];
        const int nc = c + kDc[leg];
        if (nr < 0 || nr >= config_.rows || nc < 0 || nc >= config_.cols) {
          continue;
        }
        const int nidx = nr * config_.cols + nc;
        // Each directed edge owns an independent fault/latency stream
        // derived from the grid seed and the edge's fixed ordinal.
        const std::uint64_t edge_salt =
            static_cast<std::uint64_t>(idx) * 4u + static_cast<std::uint64_t>(leg);
        edges_.push_back(Edge{
            idx, nidx, leg, (leg + 2) % 4,
            net::EdgeChannel(config_.edge,
                             Rng(mix3(config_.seed, 0xed6e5ULL, edge_salt))),
            0, {}, {}});
        edge_by_exit_[static_cast<std::size_t>(idx)][static_cast<std::size_t>(
            leg)] = static_cast<int>(edges_.size()) - 1;
      }
    }
  }
}

void Grid::run_until(Tick t) {
  assert(t >= now_);
  assert(t % config_.shard.step_ms == 0);
  const Duration ex = config_.exchange_every_ms;
  while (now_ < t) {
    // Boundaries live on the absolute exchange lattice, so the schedule is
    // independent of how callers slice their run_until calls.
    const Tick boundary = (now_ / ex + 1) * ex;
    const Tick step_to = std::min<Tick>(boundary, t);
    // Phase A: every shard advances independently (nothing mutable is
    // shared between worlds); the pool only changes wall clock.
    pool_.for_each(shards_.size(),
                   [&](std::size_t i) { shards_[i]->run_until(step_to); });
    now_ = step_to;
    if (now_ == boundary) {
      exchange(now_);
      if (exchange_listener_) exchange_listener_(now_);
    }
  }
}

GridSummary Grid::run() {
  run_until(config_.shard.duration_ms);
  return summary();
}

int Grid::continuation_route(int shard_idx, int entry_leg, VehicleId id,
                             int hop) const {
  const traffic::Intersection& ix =
      shards_[static_cast<std::size_t>(shard_idx)]->intersection();
  // Stateless draw: a pure function of (grid seed, vehicle, hop count), so
  // the continuation is independent of delivery order and thread count.
  Rng pick(mix3(config_.seed, id.value, static_cast<std::uint64_t>(hop)));
  const std::vector<int> routes = ix.routes_from_leg(entry_leg);
  const std::vector<double> weights = ix.turn_weights(entry_leg);
  assert(!routes.empty() && routes.size() == weights.size());
  return routes[pick.weighted_index(weights)];
}

void Grid::exchange(Tick t) {
  // --- Phase B: drain exits into edge queues (serial, fixed shard order) ---
  const int n = config_.rows * config_.cols;
  for (int idx = 0; idx < n; ++idx) {
    const auto uidx = static_cast<std::size_t>(idx);
    for (const World::ExitRecord& ex : shards_[uidx]->take_exits()) {
      Roam& roam = roam_[ex.id];
      if (roam.visited_mask == 0) roam.visited_mask = 1ULL << idx;
      const int exit_leg =
          shards_[uidx]->intersection().route(ex.route_id).exit_leg;
      const int ei =
          exit_leg < 4 ? edge_by_exit_[uidx][static_cast<std::size_t>(exit_leg)]
                       : -1;
      if (ei < 0) {
        ++retired_boundary_;
        continue;
      }
      if (roam.hops >= config_.max_hops) {
        ++retired_hops_;
        continue;
      }
      Edge& e = edges_[static_cast<std::size_t>(ei)];
      if ((roam.visited_mask >> e.to) & 1ULL) {
        // Never re-enter a crossed shard: keeps per-world ids unique and
        // the itinerary loop-free. Such vehicles leave the modelled region.
        ++retired_revisit_;
        continue;
      }
      ++roam.hops;
      roam.visited_mask |= 1ULL << e.to;
      PendingHandoff h;
      h.seq = e.next_seq++;
      h.deliver_at = e.channel.reliable_delivery_at(ex.exit_time);
      h.id = ex.id;
      h.route_id = continuation_route(e.to, e.entry_leg, ex.id, roam.hops);
      h.speed_mps = ex.speed_mps;
      h.traits = ex.traits;
      h.attack = ex.attack;
      h.legacy = ex.legacy;
      e.handoffs.push_back(std::move(h));
    }
  }
  // Gossip rounds: every IM rebroadcasts its full confirmed-suspect set over
  // every outgoing edge (cumulative resend — imports are idempotent, so a
  // lost datagram only delays propagation until the next round).
  if (t % config_.gossip_every_ms == 0) {
    for (Edge& e : edges_) {
      const std::set<VehicleId>& suspects =
          shards_[static_cast<std::size_t>(e.from)]->im().confirmed_suspects();
      if (suspects.empty()) continue;
      const std::uint64_t seq = e.next_seq++;
      if (const std::optional<Tick> at = e.channel.lossy_delivery_at(t)) {
        PendingGossip g;
        g.seq = seq;
        g.deliver_at = *at;
        g.suspects.assign(suspects.begin(), suspects.end());
        e.gossip.push_back(std::move(g));
      }
    }
  }

  // --- Phase C: deliver due items (serial, fixed edge order; (deliver_at,
  // seq) order within an edge so jitter-induced reordering is deterministic).
  for (Edge& e : edges_) {
    World& target = *shards_[static_cast<std::size_t>(e.to)];
    {
      std::vector<PendingHandoff> due;
      std::vector<PendingHandoff> keep;
      for (PendingHandoff& h : e.handoffs) {
        (h.deliver_at <= t ? due : keep).push_back(std::move(h));
      }
      e.handoffs = std::move(keep);
      std::sort(due.begin(), due.end(),
                [](const PendingHandoff& a, const PendingHandoff& b) {
                  return a.deliver_at != b.deliver_at
                             ? a.deliver_at < b.deliver_at
                             : a.seq < b.seq;
                });
      for (const PendingHandoff& h : due) {
        if (h.legacy) {
          target.inject_legacy(h.id, h.route_id, h.traits, h.speed_mps);
        } else {
          target.inject_vehicle(h.id, h.route_id, h.traits, h.speed_mps,
                                h.attack);
        }
        ++handoffs_delivered_;
      }
    }
    {
      std::vector<PendingGossip> due;
      std::vector<PendingGossip> keep;
      for (PendingGossip& g : e.gossip) {
        (g.deliver_at <= t ? due : keep).push_back(std::move(g));
      }
      e.gossip = std::move(keep);
      std::sort(due.begin(), due.end(),
                [](const PendingGossip& a, const PendingGossip& b) {
                  return a.deliver_at != b.deliver_at
                             ? a.deliver_at < b.deliver_at
                             : a.seq < b.seq;
                });
      for (const PendingGossip& g : due) {
        for (const VehicleId s : g.suspects) {
          if (target.import_blacklist(s)) ++gossip_imports_;
        }
      }
    }
  }
}

GridSummary Grid::summary() const {
  GridSummary s;
  s.rows = config_.rows;
  s.cols = config_.cols;
  s.shards.reserve(shards_.size());
  for (const auto& w : shards_) {
    s.shards.push_back(w->summary());
    s.aggregate_throughput_vpm += s.shards.back().throughput_vpm;
  }
  for (const Edge& e : edges_) {
    const net::EdgeChannel::Stats& st = e.channel.stats();
    s.handoffs_sent += st.handoffs;
    s.handoffs_deferred += st.deferred;
    s.gossip_sent += st.gossip_sent;
    s.gossip_dropped += st.gossip_dropped;
  }
  s.handoffs_delivered = handoffs_delivered_;
  s.gossip_imports = gossip_imports_;
  s.retired = retired_boundary_ + retired_hops_ + retired_revisit_;
  return s;
}

util::telemetry::MetricsSnapshot Grid::merged_metrics() const {
  util::telemetry::MetricsSnapshot m;
  for (const auto& w : shards_) m.merge(w->summary().metrics_snapshot);
  return m;
}

std::string Grid::summary_digest(const GridSummary& s) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(s.rows));
  w.u32(static_cast<std::uint32_t>(s.cols));
  // Fold the per-shard digests (already wall-clock-free) rather than the raw
  // summaries, so the grid digest inherits the single-world determinism
  // contract verbatim.
  for (const RunSummary& sh : s.shards) {
    w.str(checkpoint::run_summary_digest(sh));
  }
  w.u64(s.handoffs_sent);
  w.u64(s.handoffs_deferred);
  w.u64(s.handoffs_delivered);
  w.u64(s.gossip_sent);
  w.u64(s.gossip_dropped);
  w.u64(s.gossip_imports);
  w.u64(s.retired);
  const Bytes payload = w.take();
  return crypto::digest_hex(crypto::sha256(payload));
}

// --- checkpoint/restore ------------------------------------------------------

Bytes Grid::checkpoint_save() const {
  // Exchange boundaries are the only instants where every shard's exit log
  // is drained (World exit logs are deliberately not checkpointed).
  assert(now_ % config_.exchange_every_ms == 0);

  std::vector<std::pair<std::string, Bytes>> sections;
  {
    ByteWriter w;
    // Static topology/cadence (grid_threads deliberately excluded — the
    // restoring process picks its own; it is a wall-clock knob).
    w.u32(static_cast<std::uint32_t>(config_.rows));
    w.u32(static_cast<std::uint32_t>(config_.cols));
    w.u64(config_.seed);
    w.i64(config_.exchange_every_ms);
    w.i64(config_.gossip_every_ms);
    w.i64(config_.max_hops);
    w.i64(config_.attack_shard);
    const net::EdgeFaultConfig& ef = config_.edge;
    w.i64(ef.base_latency_ms);
    w.i64(ef.jitter_ms);
    w.f64(ef.ge_p_good_to_bad);
    w.f64(ef.ge_p_bad_to_good);
    w.f64(ef.ge_loss_good);
    w.f64(ef.ge_loss_bad);
    w.u32(static_cast<std::uint32_t>(ef.outages.size()));
    for (const net::EdgeOutage& o : ef.outages) {
      w.i64(o.from);
      w.i64(o.until);
    }
    checkpoint::save_scenario_config(w, config_.shard);
    // Dynamic state.
    w.i64(now_);
    w.u64(handoffs_delivered_);
    w.u64(gossip_imports_);
    w.u64(retired_boundary_);
    w.u64(retired_hops_);
    w.u64(retired_revisit_);
    w.u32(static_cast<std::uint32_t>(roam_.size()));
    for (const auto& [id, ro] : roam_) {
      w.u64(id.value);
      w.u64(ro.visited_mask);
      w.u8(ro.hops);
    }
    w.u32(static_cast<std::uint32_t>(edges_.size()));
    for (const Edge& e : edges_) {
      e.channel.checkpoint_save(w);
      w.u64(e.next_seq);
      w.u32(static_cast<std::uint32_t>(e.handoffs.size()));
      for (const PendingHandoff& h : e.handoffs) {
        w.u64(h.seq);
        w.i64(h.deliver_at);
        w.u64(h.id.value);
        w.i64(h.route_id);
        w.f64(h.speed_mps);
        h.traits.serialize(w);
        w.u8(static_cast<std::uint8_t>(h.attack.role));
        w.i64(h.attack.trigger_at);
        w.u8(static_cast<std::uint8_t>(h.attack.deviation));
        w.u8(static_cast<std::uint8_t>(h.attack.false_report));
        w.u8(h.legacy ? 1 : 0);
      }
      w.u32(static_cast<std::uint32_t>(e.gossip.size()));
      for (const PendingGossip& g : e.gossip) {
        w.u64(g.seq);
        w.i64(g.deliver_at);
        w.u32(static_cast<std::uint32_t>(g.suspects.size()));
        for (const VehicleId s : g.suspects) w.u64(s.value);
      }
    }
    sections.emplace_back(kSectionGrid, w.take());
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    sections.emplace_back("shard." + std::to_string(i),
                          shards_[i]->checkpoint_save());
  }

  ByteWriter out;
  out.str(kGridCheckpointSchema);
  out.u32(static_cast<std::uint32_t>(sections.size()));
  for (const auto& [name, payload] : sections) {
    out.str(name);
    out.u32(util::crc32(payload));
    out.bytes(payload);
  }
  return out.take();
}

std::unique_ptr<Grid> Grid::checkpoint_restore(const Bytes& blob,
                                               int grid_threads,
                                               std::string* error) {
  const auto fail = [&](const std::string& msg) -> std::unique_ptr<Grid> {
    if (error) *error = msg;
    return nullptr;
  };

  ByteReader r(blob);
  if (r.str() != kGridCheckpointSchema) {
    return fail("not an nwade-grid-ckpt-v1 checkpoint");
  }
  const std::uint32_t n_sections = r.u32();
  if (!r.ok() || n_sections > kGridMaxSections) {
    return fail("malformed section table");
  }
  std::map<std::string, Bytes> sections;
  for (std::uint32_t i = 0; i < n_sections; ++i) {
    std::string name = r.str();
    const std::uint32_t crc = r.u32();
    Bytes payload = r.bytes();
    if (!r.ok()) return fail("truncated section '" + name + "'");
    if (util::crc32(payload) != crc) {
      return fail("CRC mismatch in section '" + name + "'");
    }
    sections[std::move(name)] = std::move(payload);
  }
  if (!r.at_end()) return fail("trailing bytes after section table");

  const auto grid_it = sections.find(kSectionGrid);
  if (grid_it == sections.end()) return fail("missing grid section");
  ByteReader g(grid_it->second);

  GridConfig cfg;
  cfg.rows = static_cast<int>(g.u32());
  cfg.cols = static_cast<int>(g.u32());
  cfg.seed = g.u64();
  cfg.exchange_every_ms = g.i64();
  cfg.gossip_every_ms = g.i64();
  cfg.max_hops = static_cast<int>(g.i64());
  cfg.attack_shard = static_cast<int>(g.i64());
  cfg.edge.base_latency_ms = g.i64();
  cfg.edge.jitter_ms = g.i64();
  cfg.edge.ge_p_good_to_bad = g.f64();
  cfg.edge.ge_p_bad_to_good = g.f64();
  cfg.edge.ge_loss_good = g.f64();
  cfg.edge.ge_loss_bad = g.f64();
  const std::uint32_t n_outages = g.u32();
  if (!g.ok() || n_outages > g.remaining() / 16) {
    return fail("malformed grid section");
  }
  for (std::uint32_t i = 0; i < n_outages; ++i) {
    net::EdgeOutage o;
    o.from = g.i64();
    o.until = g.i64();
    cfg.edge.outages.push_back(o);
  }
  if (!checkpoint::load_scenario_config(g, cfg.shard)) {
    return fail("malformed grid section");
  }
  cfg.grid_threads = grid_threads;
  if (!g.ok() || cfg.rows < 1 || cfg.cols < 1 || cfg.rows * cfg.cols > 64 ||
      cfg.shard.step_ms <= 0 || cfg.exchange_every_ms <= 0 ||
      cfg.exchange_every_ms % cfg.shard.step_ms != 0 ||
      cfg.gossip_every_ms <= 0 ||
      cfg.gossip_every_ms % cfg.exchange_every_ms != 0) {
    return fail("malformed grid section");
  }

  auto grid = std::unique_ptr<Grid>(new Grid(std::move(cfg), false));
  const int n = grid->config_.rows * grid->config_.cols;
  grid->shards_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto it = sections.find("shard." + std::to_string(i));
    if (it == sections.end()) {
      return fail("missing shard." + std::to_string(i) + " section");
    }
    std::string shard_error;
    std::unique_ptr<World> w = World::checkpoint_restore(it->second, &shard_error);
    if (!w) {
      return fail("shard." + std::to_string(i) + ": " + shard_error);
    }
    w->enable_exit_log();
    grid->shards_.push_back(std::move(w));
  }

  grid->now_ = g.i64();
  grid->handoffs_delivered_ = g.u64();
  grid->gossip_imports_ = g.u64();
  grid->retired_boundary_ = g.u64();
  grid->retired_hops_ = g.u64();
  grid->retired_revisit_ = g.u64();
  const std::uint32_t n_roam = g.u32();
  if (!g.ok() || n_roam > g.remaining() / 17) {
    return fail("malformed grid section");
  }
  for (std::uint32_t i = 0; i < n_roam; ++i) {
    const VehicleId id{g.u64()};
    Roam ro;
    ro.visited_mask = g.u64();
    ro.hops = g.u8();
    grid->roam_[id] = ro;
  }
  const std::uint32_t n_edges = g.u32();
  if (!g.ok() || n_edges != grid->edges_.size()) {
    return fail("malformed grid section (edge count mismatch)");
  }
  for (Edge& e : grid->edges_) {
    if (!e.channel.checkpoint_restore(g)) {
      return fail("malformed grid section (edge channel)");
    }
    e.next_seq = g.u64();
    const std::uint32_t n_handoffs = g.u32();
    if (!g.ok() || n_handoffs > g.remaining() / 48) {
      return fail("malformed grid section (handoff queue)");
    }
    e.handoffs.reserve(n_handoffs);
    for (std::uint32_t i = 0; i < n_handoffs; ++i) {
      PendingHandoff h;
      h.seq = g.u64();
      h.deliver_at = g.i64();
      h.id = VehicleId{g.u64()};
      h.route_id = static_cast<int>(g.i64());
      h.speed_mps = g.f64();
      h.traits = traffic::VehicleTraits::deserialize(g);
      const std::uint8_t role = g.u8();
      if (!g.ok() || role > static_cast<std::uint8_t>(
                                protocol::VehicleRole::kFalseReporter)) {
        return fail("malformed grid section (handoff record)");
      }
      h.attack.role = static_cast<protocol::VehicleRole>(role);
      h.attack.trigger_at = g.i64();
      h.attack.deviation = static_cast<protocol::DeviationMode>(g.u8() & 1);
      h.attack.false_report =
          static_cast<protocol::FalseReportKind>(g.u8() & 1);
      h.legacy = g.u8() != 0;
      e.handoffs.push_back(std::move(h));
    }
    const std::uint32_t n_gossip = g.u32();
    if (!g.ok() || n_gossip > g.remaining() / 20) {
      return fail("malformed grid section (gossip queue)");
    }
    e.gossip.reserve(n_gossip);
    for (std::uint32_t i = 0; i < n_gossip; ++i) {
      PendingGossip gp;
      gp.seq = g.u64();
      gp.deliver_at = g.i64();
      const std::uint32_t n_suspects = g.u32();
      if (!g.ok() || n_suspects > g.remaining() / 8) {
        return fail("malformed grid section (gossip packet)");
      }
      gp.suspects.reserve(n_suspects);
      for (std::uint32_t k = 0; k < n_suspects; ++k) {
        gp.suspects.push_back(VehicleId{g.u64()});
      }
      e.gossip.push_back(std::move(gp));
    }
  }
  if (!g.ok() || !g.at_end()) return fail("malformed grid section");
  if (grid->now_ < 0 || grid->now_ % grid->config_.exchange_every_ms != 0) {
    return fail("grid checkpoint not at an exchange boundary");
  }
  return grid;
}

}  // namespace nwade::sim
