#include "sim/world.h"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "util/alloc_stats.h"
#include "util/log.h"

namespace nwade::sim {

using protocol::VehicleAttackProfile;
using protocol::VehicleRole;

namespace {
/// Fixed chunk sizes for the deterministic phase kernels. Constants — never
/// derived from the thread count — so chunk boundaries, and therefore any
/// per-chunk partials merged in chunk order, are identical for every pool
/// size (see util::WorkerPool::parallel_for).
constexpr std::size_t kPhysicsChunk = 64;
constexpr std::size_t kWatchChunk = 16;
constexpr std::size_t kAuditChunk = 64;
}  // namespace

World::World(ScenarioConfig config) : World(std::move(config), -1) {}

World::World(ScenarioConfig config, Tick resume_t)
    : config_(std::move(config)),
      intersection_(traffic::Intersection::build(config_.intersection)),
      step_pool_(config_.step_threads) {
  // Resume mode replays construction exactly, except that events which had
  // already fired by the checkpoint burn their sequence number instead of
  // being scheduled (see the private-constructor comment in world.h).
  const bool resume = resume_t >= 0;
  const auto schedule_or_burn = [&](Tick when, net::EventQueue::Callback fn) {
    if (resume && when <= resume_t) {
      queue_.skip_seq();
    } else {
      queue_.schedule_at(when, std::move(fn));
    }
  };
  config_.nwade.security_enabled = config_.nwade_enabled;
  tracer_.set_enabled(config_.trace_enabled);
  steps_counter_ = registry_.counter("sim.steps");

  net::NetworkConfig net_cfg = config_.network;
  net_cfg.seed = config_.seed ^ 0x6e657477ULL;
  net_cfg.quadratic_reference = config_.quadratic_reference;
  net_cfg.registry = &registry_;
  net_cfg.tracer = &tracer_;
  network_ = std::make_unique<net::Network>(queue_, clock_, net_cfg);

  Rng rng(config_.seed);
  switch (config_.signer) {
    case SignerKind::kHmac: {
      Bytes key(32);
      for (auto& b : key) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      signer_ = std::make_unique<crypto::HmacSigner>(std::move(key));
      break;
    }
    case SignerKind::kRsa1024:
      signer_ = crypto::RsaSigner::generate(rng, 1024);
      break;
    case SignerKind::kRsa2048:
      signer_ = crypto::RsaSigner::generate(rng, 2048);
      break;
  }

  // One verifier shared by the whole fleet, wired to the run's verify cache
  // and the per-step batch table (verification is pure and the RSA context
  // is thread-safe, so sharing changes nothing). The prefetch needs a
  // cache-key fingerprint (RSA signers only) and a worker pool to feed.
  im_verifier_ = signer_->verifier_with_cache(verify_cache_, &sig_batch_);
  batch_verify_ = !config_.aos_reference && step_pool_.thread_count() > 0 &&
                  im_verifier_ != nullptr &&
                  im_verifier_->key_fingerprint() != nullptr;

  // Arrival schedule + attacker role assignment.
  traffic::ArrivalGenerator gen(intersection_, config_.vehicles_per_minute,
                                rng.fork(1));
  auto arrivals = gen.generate(config_.duration_ms);
  assign_attack_roles(arrivals);

  // Any arrival may become a managed vehicle owning one SoA row — plus any
  // vehicle a grid may hand off into this shard mid-run; reserving for all
  // of them up front keeps the node-held references stable for the whole
  // run (VehicleColumns::add_row asserts on this).
  if (!config_.aos_reference) {
    columns_.reserve(arrivals.size() +
                     static_cast<std::size_t>(config_.extra_vehicle_capacity));
  }

  // Intersection manager.
  protocol::ImAttackProfile im_attack;
  if (config_.attack.im_malicious) {
    im_attack.mode = config_.im_attack_mode;
    im_attack.trigger_at = config_.attack_time;
  }
  protocol::ImContext im_ctx;
  im_ctx.intersection = &intersection_;
  im_ctx.config = &config_.nwade;
  im_ctx.network = network_.get();
  im_ctx.clock = &clock_;
  im_ctx.queue = &queue_;
  im_ctx.sensors = this;
  im_ctx.signer = signer_.get();
  im_ctx.metrics = &metrics_;
  im_ctx.malicious_ids = &malicious_ids_;
  im_ctx.registry = &registry_;
  im_ctx.tracer = &tracer_;
  im_ = std::make_unique<protocol::ImNode>(im_ctx, config_.scheduler, im_attack);
  network_->add_node(im_.get());
  if (resume) {
    // start()'s first window event always predates any checkpoint; the
    // restored ImNode re-arms its own pending window at the saved (when, seq).
    queue_.skip_seq();
  } else {
    im_->start();
  }

  // A fault-profile outage on the IM node is a process crash, not just a dark
  // radio: drive the crash/restart cycle so volatile state is really lost and
  // rebuilt from the durable block log on recovery.
  for (const net::Outage& outage : config_.network.fault.outages) {
    if (outage.node != kImNodeId) continue;
    schedule_or_burn(outage.from, [this] { im_->crash(clock_.now()); });
    if (outage.until < kTickMax) {
      schedule_or_burn(outage.until, [this] { im_->restart(clock_.now()); });
    }
  }

  // Schedule spawns. A configurable fraction of arrivals are legacy
  // vehicles (mixed-traffic extension); attacker roles always go to managed
  // vehicles, so role-assigned indices stay managed.
  Rng legacy_rng = rng.fork(2);
  std::uint64_t next_id = 1;
  int managed = 0;
  for (const traffic::Arrival& arrival : arrivals) {
    const VehicleId id{config_.vehicle_id_base + next_id++};
    const bool is_legacy = !attack_roles_.contains(id) &&
                           legacy_rng.chance(config_.legacy_fraction);
    if (is_legacy) {
      schedule_or_burn(arrival.time,
                       [this, arrival, id] { spawn_legacy(arrival, id); });
    } else {
      ++managed;
      schedule_or_burn(arrival.time, [this, arrival, id] { spawn(arrival, id); });
    }
  }
  metrics_.vehicles_spawned = managed;
}

World::~World() = default;

void World::assign_attack_roles(std::vector<traffic::Arrival>& arrivals) {
  const auto& attack = config_.attack;
  const int total_malicious = attack.plan_violations + attack.false_reports;
  if (total_malicious == 0) return;

  // Prefer vehicles spawning 4-16 s before the attack time: they hold plans
  // and still sit mid-approach (not yet exited) when the trigger fires.
  std::vector<std::size_t> candidates;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const Tick lead = config_.attack_time - arrivals[i].time;
    if (lead >= 4'000 && lead <= 16'000) candidates.push_back(i);
  }
  // Fall back to anything before the attack if the preferred window is thin.
  if (static_cast<int>(candidates.size()) < total_malicious) {
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
      if (arrivals[i].time < config_.attack_time - 2'000 &&
          std::find(candidates.begin(), candidates.end(), i) == candidates.end()) {
        candidates.push_back(i);
      }
    }
  }

  int assigned = 0;
  for (std::size_t idx : candidates) {
    if (assigned >= total_malicious) break;
    // Ids are assigned in arrival order, offset by the shard's id base.
    const VehicleId id{config_.vehicle_id_base + idx + 1};
    VehicleAttackProfile profile;
    if (assigned < attack.plan_violations) {
      profile.role = VehicleRole::kDeviator;
      profile.trigger_at = config_.attack_time;
      profile.deviation = (assigned % 2 == 0) ? protocol::DeviationMode::kAccelerate
                                              : protocol::DeviationMode::kBrake;
    } else {
      profile.role = VehicleRole::kFalseReporter;
      profile.trigger_at = config_.attack_time + 300 * (assigned + 1);
      profile.false_report = config_.false_report_kind;
    }
    attack_roles_[id] = profile;
    malicious_ids_.insert(id);
    ++assigned;
  }
}

void World::spawn(const traffic::Arrival& arrival, VehicleId id) {
  protocol::VehicleContext ctx;
  ctx.intersection = &intersection_;
  ctx.config = &config_.nwade;
  ctx.network = network_.get();
  ctx.clock = &clock_;
  ctx.sensors = this;
  ctx.im_verifier = im_verifier_;
  ctx.metrics = &metrics_;
  ctx.malicious_ids = &malicious_ids_;
  ctx.registry = &registry_;
  ctx.tracer = &tracer_;
  ctx.columns = config_.aos_reference ? nullptr : &columns_;

  VehicleAttackProfile profile;
  if (const auto it = attack_roles_.find(id); it != attack_roles_.end()) {
    profile = it->second;
  }
  auto node = std::make_unique<protocol::VehicleNode>(
      ctx, id, arrival.route_id, arrival.traits, clock_.now(), profile);
  network_->add_node(node.get());
  node->start();
  spawn_times_[id] = clock_.now();
  vehicles_[id] = std::move(node);
  ++position_epoch_;  // the new vehicle must show up in sensor queries
}

void World::spawn_legacy(const traffic::Arrival& arrival, VehicleId id) {
  LegacyVehicle l;
  l.route_id = arrival.route_id;
  l.traits = arrival.traits;
  l.s = 0;
  // Legacy drivers cruise conservatively through unfamiliar smart junctions.
  l.cruise = std::min(arrival.initial_speed_mps,
                      0.6 * intersection_.config().limits.speed_limit_mps);
  l.v = l.cruise;
  legacy_[id] = l;
  spawn_times_[id] = clock_.now();
  ++position_epoch_;  // legacy vehicles are sensor-visible from spawn
}

void World::record_exit(const protocol::VehicleNode& v, Tick now) {
  if (!exit_log_enabled_) return;
  ExitRecord rec;
  rec.id = v.id();
  rec.route_id = v.route_id();
  rec.exit_time = now;
  rec.speed_mps = v.speed_mps();
  rec.traits = v.traits();
  rec.attack = v.attack_profile();
  exit_log_.push_back(rec);
}

void World::inject_vehicle(VehicleId id, int route_id,
                           const traffic::VehicleTraits& traits,
                           double speed_mps,
                           const protocol::VehicleAttackProfile& attack) {
  assert(!vehicles_.contains(id) && !legacy_.contains(id));
  // The ground-truth roster travels with the vehicle: a deviator stays a
  // deviator downstream (its trigger may already be in the past), and the
  // metrics classification keeps seeing it as malicious.
  if (attack.role != VehicleRole::kBenign) {
    malicious_ids_.insert(id);
    attack_roles_[id] = attack;
  }
  traffic::Arrival arrival;
  arrival.time = clock_.now();
  arrival.route_id = route_id;
  arrival.traits = traits;
  arrival.initial_speed_mps = speed_mps;
  metrics_.vehicles_spawned++;
  spawn(arrival, id);
  // Handoffs enter at their carried exit speed (spawn() starts at rest),
  // clamped to this intersection's limit.
  vehicles_.at(id)->seed_speed(
      std::min(speed_mps, intersection_.config().limits.speed_limit_mps));
}

void World::inject_legacy(VehicleId id, int route_id,
                          const traffic::VehicleTraits& traits,
                          double speed_mps) {
  assert(!vehicles_.contains(id) && !legacy_.contains(id));
  traffic::Arrival arrival;
  arrival.time = clock_.now();
  arrival.route_id = route_id;
  arrival.traits = traits;
  arrival.initial_speed_mps = speed_mps;
  spawn_legacy(arrival, id);
}

bool World::import_blacklist(VehicleId suspect) {
  return im_->import_blacklist(suspect, clock_.now());
}

std::size_t World::arrival_count(const ScenarioConfig& config) {
  // Mirrors the constructor's arrival draw exactly: Rng::fork derives the
  // child stream from the seed alone (not the parent's position), so the
  // signer's draws in between cannot perturb it.
  const traffic::Intersection intersection =
      traffic::Intersection::build(config.intersection);
  traffic::ArrivalGenerator gen(intersection, config.vehicles_per_minute,
                                Rng(config.seed).fork(1));
  return gen.generate(config.duration_ms).size();
}

geom::Vec2 World::legacy_position(const LegacyVehicle& l) const {
  return intersection_.route(l.route_id).path.point_at(l.s);
}

void World::step_legacy(Duration dt_ms) {
  if (legacy_.empty()) return;
  const double dt = static_cast<double>(dt_ms) / 1000.0;
  const auto& limits = intersection_.config().limits;
  const bool quadratic = config_.quadratic_reference;
  if (!quadratic) {
    // Managed vehicles do not move during step_legacy, so one snapshot
    // serves every legacy vehicle this step.
    follow_grid_.clear();
    follow_nodes_.clear();
    follow_grid_.reserve(vehicles_.size());
    for (const auto& [oid, v] : vehicles_) {
      if (v->exited()) continue;
      follow_grid_.insert(v->position());
      follow_nodes_.push_back(v.get());
    }
    // Legacy positions advance during the loop below (each entry moves as
    // it is stepped), so this snapshot can lag a neighbour by one step —
    // at most ~1.3 m at legacy cruise speeds. The query radius absorbs
    // that; the predicate always reads the live fields through the map.
    legacy_follow_grid_.clear();
    legacy_follow_refs_.clear();
    legacy_follow_grid_.reserve(legacy_.size());
    for (const auto& [oid, o] : legacy_) {
      if (o.exited) continue;
      legacy_follow_grid_.insert(legacy_position(o));
      legacy_follow_refs_.emplace_back(oid, &o);
    }
  }
  for (auto& [id, l] : legacy_) {
    if (l.exited) continue;
    // Simple car-following: brake for any vehicle ahead on the same route.
    double gap = 1e9;
    if (quadratic) {
      for (const auto& [oid, v] : vehicles_) {
        if (v->exited() || v->route_id() != l.route_id) continue;
        const double ds = v->progress_s() - l.s;
        if (ds > 0.1) gap = std::min(gap, ds);
      }
    } else {
      // Only gaps below the 45 m car-following horizon influence the speed
      // target, and a same-route vehicle ds metres ahead along the path lies
      // at most ds + |lateral offset| metres away in the plane (chord <=
      // arc), so a 55 m disc around the legacy vehicle contains every
      // managed vehicle that could matter. A vehicle the disc misses has
      // gap >= 45 and changes neither branch of the target computation. The
      // predicate below is the reference scan's, applied verbatim.
      follow_scratch_.clear();
      follow_grid_.query_candidates(legacy_position(l), 55.0, follow_scratch_);
      for (const std::size_t idx : follow_scratch_) {
        const protocol::VehicleNode* v = follow_nodes_[idx];
        if (v->exited() || v->route_id() != l.route_id) continue;
        const double ds = v->progress_s() - l.s;
        if (ds > 0.1) gap = std::min(gap, ds);
      }
    }
    // Legacy-vs-legacy. Earlier map entries have already moved this step, so
    // the values read here are live by construction — but the scan only
    // folds them into a min, which no candidate ordering can change. The
    // index is therefore used as a pre-filter over a top-of-step snapshot
    // (never as the iteration), and the predicate reads the live fields:
    // a neighbour whose ds could fall below the 45 m horizon lies within
    // 45 m along the path, hence within 45 m in the plane at snapshot time
    // (chord <= arc, and snapshots only trail live positions), well inside
    // the 55 m disc.
    if (quadratic) {
      for (const auto& [oid, o] : legacy_) {
        if (oid == id || o.exited || o.route_id != l.route_id) continue;
        const double ds = o.s - l.s;
        if (ds > 0.1) gap = std::min(gap, ds);
      }
    } else {
      follow_scratch_.clear();
      legacy_follow_grid_.query_candidates(legacy_position(l), 55.0,
                                           follow_scratch_);
      for (const std::size_t idx : follow_scratch_) {
        const auto& [oid, o] = legacy_follow_refs_[idx];
        if (oid == id || o->exited || o->route_id != l.route_id) continue;
        const double ds = o->s - l.s;
        if (ds > 0.1) gap = std::min(gap, ds);
      }
    }
    double target = l.cruise;
    if (gap < 45.0) target = std::min(target, 0.35 * std::max(0.0, gap - 10.0));
    if (l.v < target) {
      l.v = std::min(l.v + limits.max_accel_mps2 * dt, target);
    } else {
      l.v = std::max(l.v - limits.max_decel_mps2 * dt, target);
    }
    l.s += l.v * dt;
    if (l.s >= intersection_.route(l.route_id).path.length() - 0.05) {
      l.exited = true;
      if (exit_log_enabled_) {
        ExitRecord rec;
        rec.id = id;
        rec.route_id = l.route_id;
        rec.exit_time = clock_.now();
        rec.speed_mps = l.v;
        rec.traits = l.traits;
        rec.legacy = true;
        exit_log_.push_back(rec);
      }
    }
  }
}

void World::step_world(Tick now) {
  ++position_epoch_;  // everything may move during this step
  const Duration dt = config_.step_ms;
  const auto watch_every =
      std::max<Tick>(1, config_.nwade.watch_interval_ms / config_.step_ms);
  const Tick step_index = now / config_.step_ms;

  // Per-phase profiling: one 'X' span per phase per step, sim-duration 0
  // (nothing inside a step advances sim time) with the wall cost in the
  // explicitly non-deterministic wall_us argument. Wall clocks are read only
  // when tracing, so disabled runs pay one relaxed load per step.
  const bool tracing = util::trace::tracing_active() && tracer_.enabled();
  using wall_clock = std::chrono::steady_clock;
  wall_clock::time_point t0;
  const auto phase_begin = [&] {
    if (tracing) t0 = wall_clock::now();
  };
  const auto phase_end = [&](const char* name, std::int64_t items) {
    if (!tracing) return;
    const double wall_us =
        std::chrono::duration<double, std::micro>(wall_clock::now() - t0)
            .count();
    tracer_.complete("sim", name, now, now, wall_us, "items", items);
  };

  const bool count_allocs = util::alloc_counting_enabled();

  phase_begin();
  step_legacy(dt);
  phase_end("phase.legacy", static_cast<std::int64_t>(legacy_.size()));

  // Phase 1: physics for everyone, so watchers later observe a consistent
  // time-t snapshot regardless of iteration order. The chunked kernel is
  // byte-identical to this serial loop (see step_physics); aos_reference
  // keeps the loop verbatim as the equivalence baseline.
  phase_begin();
  if (count_allocs) last_step_allocs_ = {};  // kernels below accumulate
  if (config_.aos_reference) {
    for (auto& [id, vehicle] : vehicles_) {
      if (vehicle->exited()) continue;
      vehicle->step(now, dt);
      if (vehicle->exited()) {
        network_->remove_node(vehicle->node_id());
        crossing_times_.push_back(now - spawn_times_[id]);
        record_exit(*vehicle, now);
      }
    }
  } else {
    step_physics(now, dt);
  }
  phase_end("phase.physics", static_cast<std::int64_t>(vehicles_.size()));

  // Phase 2: the neighbourhood watch, staggered to avoid synchronized bursts.
  phase_begin();
  if (config_.aos_reference) {
    for (auto& [id, vehicle] : vehicles_) {
      if (vehicle->exited()) continue;
      if ((step_index + static_cast<Tick>(id.value)) % watch_every == 0) {
        vehicle->watch(now);
      }
    }
  } else {
    step_watch(now, step_index, watch_every);
  }
  phase_end("phase.watch", static_cast<std::int64_t>(vehicles_.size()));

  // Ground-truth proximity audit once per simulated second (managed and
  // legacy vehicles alike; the staging area is excluded).
  if (now % 1000 == 0) {
    phase_begin();
    const std::size_t audited = step_gap_audit(now);
    phase_end("phase.gap_audit", static_cast<std::int64_t>(audited));
  }
}

void World::step_physics(Tick now, Duration dt) {
  // Classify the whole fleet from its pre-step state, then execute maximal
  // runs of side-effect-free vehicles on the pool and everything else
  // serially at its exact id position. An impure vehicle k therefore
  // observes ids < k moved and ids > k unmoved — exactly the serial loop's
  // interleaving — and every piece of shared bookkeeping (metrics, network
  // membership, crossing times) commits serially in ascending id order.
  step_nodes_.clear();
  step_impure_.clear();
  for (auto& [id, vehicle] : vehicles_) {
    if (vehicle->exited()) continue;
    step_nodes_.push_back(vehicle.get());
    step_impure_.push_back(vehicle->step_has_side_effects(now) ? 1 : 0);
  }
  const std::size_t n = step_nodes_.size();
  step_exited_.assign(n, 0);
  std::size_t i = 0;
  while (i < n) {
    if (step_impure_[i] != 0) {
      protocol::VehicleNode* v = step_nodes_[i];
      v->step(now, dt);
      if (v->exited()) {
        network_->remove_node(v->node_id());
        crossing_times_.push_back(now - spawn_times_[v->id()]);
        record_exit(*v, now);
      }
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < n && step_impure_[j] == 0) ++j;
    // Meter only the chunked kernel: the serial merge below appends crossing
    // times and prunes network membership, which may legitimately allocate.
    const std::uint64_t allocs0 =
        util::alloc_counting_enabled() ? util::process_alloc_count() : 0;
    step_pool_.parallel_for(
        j - i, kPhysicsChunk, [&, i](std::size_t begin, std::size_t end) {
          for (std::size_t k = begin; k < end; ++k) {
            step_exited_[i + k] =
                step_nodes_[i + k]->step_kinematics(now, dt) ? 1 : 0;
          }
        });
    if (util::alloc_counting_enabled()) {
      last_step_allocs_.physics += util::process_alloc_count() - allocs0;
    }
    for (std::size_t k = i; k < j; ++k) {
      if (step_exited_[k] == 0) continue;
      // step() counts its own exit; for the kinematics-only path the merge
      // owns it, plus the world-side removal and crossing-time append.
      metrics_.vehicles_exited++;
      network_->remove_node(step_nodes_[k]->node_id());
      crossing_times_.push_back(now - spawn_times_[step_nodes_[k]->id()]);
      record_exit(*step_nodes_[k], now);
    }
    i = j;
  }
}

void World::step_watch(Tick now, Tick step_index, Tick watch_every) {
  // Split watch: collect due watchers (pure), fan the read-only sensor
  // sweeps across the pool, then run every emit serially in id order. An
  // emit only mutates its own protocol state and sends latency-delayed
  // messages (delivered by a later queue run even at zero latency), so no
  // emit can influence another watcher's scan — the serial interleaved
  // scan/emit loop and this split produce identical runs.
  watch_due_.clear();
  for (auto& [id, vehicle] : vehicles_) {
    if (vehicle->exited()) continue;
    if ((step_index + static_cast<Tick>(id.value)) % watch_every != 0) continue;
    if (!vehicle->watch_due(now)) continue;
    watch_due_.push_back(vehicle.get());
  }
  if (watch_due_.empty()) return;
  // Build the sensor grids once, serially, if stale — so the concurrent
  // scans below only ever read them. Sense results are exact under any
  // <= 1-step-stale snapshot (slack padding + live predicates), so forcing
  // the rebuild here instead of lazily inside the first sense changes
  // nothing.
  if (!config_.quadratic_reference && sense_built_epoch_ != position_epoch_) {
    rebuild_sense_grids();
  }
  // Meter only the chunked scan kernel: the serial emits below are protocol
  // actions (reports, block requests) that allocate by design.
  const std::uint64_t allocs0 =
      util::alloc_counting_enabled() ? util::process_alloc_count() : 0;
  step_pool_.parallel_for(watch_due_.size(), kWatchChunk,
                          [&](std::size_t begin, std::size_t end) {
                            for (std::size_t k = begin; k < end; ++k) {
                              watch_due_[k]->watch_scan(now);
                            }
                          });
  if (util::alloc_counting_enabled()) {
    last_step_allocs_.watch += util::process_alloc_count() - allocs0;
  }
  for (protocol::VehicleNode* v : watch_due_) v->watch_emit(now);
}

std::size_t World::step_gap_audit(Tick now) {
  (void)now;
  audit_probes_.clear();
  audit_probes_.reserve(vehicles_.size() + legacy_.size());
  for (const auto& [id, v] : vehicles_) {
    // Degraded vehicles (moving without a plan) are audited too: their
    // sensor-gated crossing must not collide with managed traffic.
    if (!v->exited() && (v->has_plan() || v->progress_s() > 0.5)) {
      // A stationary vehicle pulled fully onto the shoulder outside the
      // core (a waiting degraded vehicle, a parked self-evacuee) is out
      // of traffic: near the junction mouth the shoulder inevitably runs
      // close to neighbouring lanes, so other routes' traffic may pass it
      // within lane width. Same-route traffic and anything inside the
      // core still audit against it at full strictness.
      const auto& route = intersection_.route(v->route_id());
      const bool parked_off =
          v->speed_mps() < 0.5 && std::abs(v->lateral_offset_m()) >= 3.0 &&
          (v->progress_s() < route.core_begin ||
           v->progress_s() > route.core_end);
      audit_probes_.push_back(
          AuditProbe{v->position(), v->progress_s(), v->route_id(), parked_off});
    }
  }
  for (const auto& [id, l] : legacy_) {
    if (!l.exited) {
      audit_probes_.push_back(AuditProbe{legacy_position(l), l.s, l.route_id});
    }
  }
  // The first 30 m of every route is the staging area at the edge of
  // the communication zone: vehicles planned in the same processing
  // window depart together from there and separate as their assigned
  // speeds diverge. Only positions past staging are audited.
  const auto violates = [](const AuditProbe& a, const AuditProbe& b) {
    if (a.s < 30.0 && b.s < 30.0) return false;
    if ((a.parked_off_lane || b.parked_off_lane) && a.route != b.route) {
      return false;
    }
    return a.pos.distance_to(b.pos) < 1.5;
  };
  const std::size_t n = audit_probes_.size();
  if (config_.quadratic_reference) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        if (violates(audit_probes_[i], audit_probes_[j])) ++gap_violations_;
      }
    }
  } else if (config_.aos_reference) {
    // The pre-chunking indexed path, kept verbatim as the baseline: a 2 m
    // grid visits every pair closer than 2 m exactly once — a superset of
    // the audited < 1.5 m pairs — and the count is order-independent, so
    // the tally matches the all-pairs sweep.
    geom::SpatialHash audit_grid(2.0);
    audit_grid.reserve(n);
    for (const AuditProbe& p : audit_probes_) audit_grid.insert(p.pos);
    audit_grid.for_each_near_pair([&](std::size_t i, std::size_t j) {
      if (violates(audit_probes_[i], audit_probes_[j])) ++gap_violations_;
    });
  } else {
    // Chunked variant over the member grid (capacity-retaining clear): each
    // chunk counts its probes' j > i partners within a 2 m disc — the same
    // pair set the near-pair sweep visits — into a per-chunk partial, and
    // the partials merge in chunk order. The total is an order-independent
    // integer sum, so it is byte-identical to both reference paths at any
    // thread count.
    audit_grid_.clear();
    audit_grid_.reserve(n);
    for (const AuditProbe& p : audit_probes_) audit_grid_.insert(p.pos);
    const std::size_t chunks = n == 0 ? 0 : (n + kAuditChunk - 1) / kAuditChunk;
    audit_partials_.assign(chunks, 0);
    step_pool_.parallel_for(
        n, kAuditChunk, [&](std::size_t begin, std::size_t end) {
          static thread_local std::vector<std::size_t> cand;
          int violations = 0;
          for (std::size_t i = begin; i < end; ++i) {
            cand.clear();
            audit_grid_.query_candidates(audit_probes_[i].pos, 2.0, cand);
            for (const std::size_t j : cand) {
              if (j <= i) continue;
              if (violates(audit_probes_[i], audit_probes_[j])) ++violations;
            }
          }
          audit_partials_[begin / kAuditChunk] = violations;
        });
    for (const int partial : audit_partials_) gap_violations_ += partial;
  }
  return n;
}

void World::prefetch_block_signatures(Tick until) {
  sig_batch_.clear();
  batch_keys_.clear();
  batch_payloads_.clear();
  batch_sigs_.clear();
  batch_seen_.clear();
  const crypto::Digest* fp = im_verifier_->key_fingerprint();
  // Collect the distinct, not-yet-cached signatures among the block
  // deliveries due this step. The pending set is stable until the event
  // queue runs, so the Bytes the spans point into cannot move.
  network_->for_each_pending_due(until, [&](const net::Envelope& env) {
    const chain::Block* block = nullptr;
    if (const auto* bb =
            dynamic_cast<const protocol::BlockBroadcast*>(env.msg.get())) {
      block = bb->block.get();
    } else if (const auto* br =
                   dynamic_cast<const protocol::BlockResponse*>(env.msg.get())) {
      block = br->block.get();
    }
    if (block == nullptr || block->signature.empty()) return;
    Bytes payload = block->signed_payload();
    const crypto::Digest key =
        crypto::SigVerifyCache::key_of(*fp, payload, block->signature);
    if (!batch_seen_.insert(key).second) return;      // duplicate this wave
    if (verify_cache_.peek(key).has_value()) return;  // cached (stats-free probe)
    batch_keys_.push_back(key);
    batch_payloads_.push_back(std::move(payload));
    batch_sigs_.push_back(&block->signature);
  });
  if (batch_keys_.empty()) return;
  batch_ok_.assign(batch_keys_.size(), 0);
  // One wave across the pool; the modexp dominates, so one key per chunk.
  step_pool_.parallel_for(
      batch_keys_.size(), 1, [&](std::size_t begin, std::size_t end) {
        for (std::size_t k = begin; k < end; ++k) {
          batch_ok_[k] =
              im_verifier_->verify_uncached(batch_payloads_[k], *batch_sigs_[k])
                  ? 1
                  : 0;
        }
      });
  // Merge in collection order. Receivers still perform the counted cache
  // lookups and stores themselves (the table is consulted only after a
  // counted miss), so cache contents AND stats match an unprefetched run
  // byte-for-byte.
  for (std::size_t k = 0; k < batch_keys_.size(); ++k) {
    sig_batch_.put(batch_keys_[k], batch_ok_[k] != 0);
  }
}

void World::run_until(Tick t) {
  const bool tracing = util::trace::tracing_active() && tracer_.enabled();
  while (stepped_until_ < t) {
    stepped_until_ += config_.step_ms;
    // Batch-verify the signatures about to be delivered this step before the
    // event queue runs them (RSA + worker pool only; a no-op otherwise).
    if (batch_verify_) prefetch_block_signatures(stepped_until_);
    if (tracing) {
      using wall_clock = std::chrono::steady_clock;
      const auto t0 = wall_clock::now();
      queue_.run_until(stepped_until_, clock_);
      const double wall_us =
          std::chrono::duration<double, std::micro>(wall_clock::now() - t0)
              .count();
      tracer_.complete("sim", "phase.events", stepped_until_, stepped_until_,
                       wall_us);
    } else {
      queue_.run_until(stepped_until_, clock_);
    }
    step_world(stepped_until_);
    steps_counter_.inc();
    if (step_listener_) step_listener_(stepped_until_);
  }
}

RunSummary World::run() {
  run_until(config_.duration_ms);
  return summary();
}

RunSummary World::summary() const {
  RunSummary s;
  s.metrics = metrics_;
  s.net_stats = network_->stats();

  // Fold the pre-existing silos into the unified registry so one snapshot
  // carries the whole run (docs/OBSERVABILITY.md). Everything folded is an
  // integer read from sim state; the wall-clock vectors (im_package_us,
  // vehicle_verify_us) deliberately stay out so two identical seeded runs
  // produce byte-identical snapshot JSON.
  const auto gauge = [this](const char* name, std::int64_t v) {
    registry_.gauge(name).set(v);
  };
  gauge("protocol.vehicles_spawned", metrics_.vehicles_spawned);
  gauge("protocol.vehicles_exited", metrics_.vehicles_exited);
  gauge("protocol.incident_reports", metrics_.incident_reports);
  gauge("protocol.global_reports", metrics_.global_reports);
  gauge("protocol.verify_rounds", metrics_.verify_rounds);
  gauge("protocol.alarm_dismissals", metrics_.alarm_dismissals);
  gauge("protocol.evacuation_alerts", metrics_.evacuation_alerts);
  gauge("protocol.benign_self_evacuations", metrics_.benign_self_evacuations);
  gauge("protocol.false_alarm_evacuations", metrics_.false_alarm_evacuations);
  gauge("protocol.malicious_reports_recorded",
        metrics_.malicious_reports_recorded);
  gauge("protocol.blocks_published", metrics_.blocks_published);
  gauge("protocol.block_verification_failures",
        metrics_.block_verification_failures);
  gauge("protocol.plan_request_retries", metrics_.plan_request_retries);
  gauge("protocol.gap_block_requests", metrics_.gap_block_requests);
  gauge("protocol.degraded_entries", metrics_.degraded_entries);
  gauge("protocol.degraded_crossings", metrics_.degraded_crossings);
  gauge("protocol.im_crashes", metrics_.im_crashes);
  gauge("protocol.im_restarts", metrics_.im_restarts);
  gauge("protocol.im_courtesy_gaps", metrics_.im_courtesy_gaps);
  const auto event_gauge = [this](const char* name,
                                  const std::optional<Tick>& t) {
    if (t) registry_.gauge(name).set(*t);
  };
  event_gauge("protocol.event.violation_start_ms", metrics_.violation_start);
  event_gauge("protocol.event.first_true_incident_ms",
              metrics_.first_true_incident);
  event_gauge("protocol.event.deviation_confirmed_ms",
              metrics_.deviation_confirmed);
  event_gauge("protocol.event.false_incident_injected_ms",
              metrics_.false_incident_injected);
  event_gauge("protocol.event.false_incident_dismissed_ms",
              metrics_.false_incident_dismissed);
  event_gauge("protocol.event.false_global_injected_ms",
              metrics_.false_global_injected);
  event_gauge("protocol.event.false_global_detected_ms",
              metrics_.false_global_detected);
  event_gauge("protocol.event.im_conflict_injected_ms",
              metrics_.im_conflict_injected);
  event_gauge("protocol.event.im_conflict_detected_ms",
              metrics_.im_conflict_detected);
  event_gauge("protocol.event.sham_alert_detected_ms",
              metrics_.sham_alert_detected);
  const crypto::SigVerifyCache::Stats cache = verify_cache_.stats();
  gauge("crypto.sig_cache.hits", static_cast<std::int64_t>(cache.hits));
  gauge("crypto.sig_cache.misses", static_cast<std::int64_t>(cache.misses));
  gauge("crypto.sig_cache.insertions",
        static_cast<std::int64_t>(cache.insertions));
  gauge("crypto.sig_cache.evictions",
        static_cast<std::int64_t>(cache.evictions));
  s.metrics_snapshot = registry_.snapshot();
  const double minutes = ticks_to_seconds(stepped_until_ > 0 ? stepped_until_ : 1) / 60.0;
  s.throughput_vpm = metrics_.vehicles_exited / std::max(minutes, 1e-9);
  double total = 0;
  for (Duration d : crossing_times_) total += static_cast<double>(d);
  s.mean_crossing_ms =
      crossing_times_.empty() ? 0 : total / static_cast<double>(crossing_times_.size());
  int active = 0;
  for (const auto& [id, v] : vehicles_) active += v->exited() ? 0 : 1;
  s.active_at_end = active;
  s.min_ground_truth_gap_violations = gap_violations_;
  s.legacy_spawned = static_cast<int>(legacy_.size());
  for (const auto& [id, l] : legacy_) s.legacy_exited += l.exited ? 1 : 0;
  return s;
}

namespace {
/// Padding added to grid-backed sensor queries. A sense can fire mid-step,
/// after the grids were snapshotted but after some vehicles already moved;
/// between snapshots every vehicle moves at most one physics step (~2.3 m at
/// 50 mph and the 100 ms default step, lateral manoeuvres included), so any
/// vehicle inside the exact radius is within radius + slack of its
/// snapshotted position. The exact range check always uses live positions.
constexpr double kSenseSlackM = 20.0;
}  // namespace

void World::rebuild_sense_grids() const {
  // Iterating the id-sorted maps makes insertion indices ascend with vehicle
  // id, and query_candidates returns ascending indices — so the indexed scan
  // below emits observations in the reference path's exact order. Skipping
  // exited vehicles here is safe because exit is permanent: they could never
  // pass the live filters again.
  sense_managed_grid_.clear();
  sense_managed_ids_.clear();
  sense_managed_grid_.reserve(vehicles_.size());
  if (!config_.aos_reference) {
    // Stream the SoA columns: rows append in ascending id order and exited
    // rows carry active == 0, so this walk sees exactly the map walk's
    // vehicles in the same order — while touching three contiguous arrays
    // instead of every node. The position arithmetic replicates
    // VehicleNode::position() expression-for-expression (same branches,
    // same operation order), so the inserted points are bit-identical.
    assert(columns_.size() == vehicles_.size());
    const std::size_t rows = columns_.size();
    for (std::size_t r = 0; r < rows; ++r) {
      if (columns_.active[r] == 0) continue;
      const auto& route =
          intersection_.route(static_cast<int>(columns_.route[r]));
      const double s = columns_.s[r];
      const geom::Vec2 on_path = route.path.point_at(s);
      const double lateral = columns_.lateral[r];
      const geom::Vec2 pos =
          lateral == 0.0 ? on_path
                         : on_path + route.path.tangent_at(s).perp() * lateral;
      sense_managed_grid_.insert(pos);
      sense_managed_ids_.push_back(VehicleId{columns_.id[r]});
    }
  } else {
    for (const auto& [id, v] : vehicles_) {
      if (v->exited()) continue;
      sense_managed_grid_.insert(v->position());
      sense_managed_ids_.push_back(id);
    }
  }
  sense_legacy_grid_.clear();
  sense_legacy_ids_.clear();
  sense_legacy_grid_.reserve(legacy_.size());
  for (const auto& [id, l] : legacy_) {
    if (l.exited) continue;
    sense_legacy_grid_.insert(legacy_position(l));
    sense_legacy_ids_.push_back(id);
  }
  sense_built_epoch_ = position_epoch_;
}

std::vector<protocol::Observation> World::sense_around(geom::Vec2 center,
                                                       double radius,
                                                       VehicleId exclude) const {
  std::vector<protocol::Observation> out;
  sense_around_into(center, radius, exclude, out);
  return out;
}

void World::sense_around_into(geom::Vec2 center, double radius,
                              VehicleId exclude,
                              std::vector<protocol::Observation>& out) const {
  out.clear();
  if (config_.quadratic_reference) {
    for (const auto& [id, v] : vehicles_) {
      if (id == exclude || v->exited()) continue;
      // Vehicles still staged at the zone edge (no plan, not yet moving) are
      // invisible; a plan-less vehicle that moves — degraded mode — must be
      // seen so watchers and the IM's unmanaged tracking can cover it.
      if (!v->has_plan() && v->progress_s() <= 0.5) continue;
      const geom::Vec2 pos = v->position();
      if (pos.distance_to(center) > radius) continue;
      out.push_back(protocol::Observation{id, v->traits(), v->ground_truth()});
    }
    for (const auto& [id, l] : legacy_) {
      if (id == exclude || l.exited) continue;
      const geom::Vec2 pos = legacy_position(l);
      if (pos.distance_to(center) > radius) continue;
      traffic::VehicleStatus st;
      st.position = pos;
      st.speed_mps = l.v;
      st.heading_rad = intersection_.route(l.route_id).path.heading_at(l.s);
      out.push_back(protocol::Observation{id, l.traits, st});
    }
    return;
  }

  if (sense_built_epoch_ != position_epoch_) rebuild_sense_grids();
  // Candidate supersets from the snapshot; every filter below re-runs the
  // reference path's exact predicate on live state, in the same id order.
  // Thread-local scratch: the watch phase fans scans across the pool, and
  // each thread's buffer warms up once and is then reused allocation-free.
  // Reserved generously up front so a growing population doesn't trigger a
  // capacity bump from inside the allocation-gated scan kernel; candidate
  // counts beyond the reserve still work, they just grow the buffer.
  static thread_local std::vector<std::size_t> sense_scratch;
  if (sense_scratch.capacity() == 0) sense_scratch.reserve(4096);
  sense_scratch.clear();
  sense_managed_grid_.query_candidates(center, radius + kSenseSlackM,
                                       sense_scratch);
  for (const std::size_t idx : sense_scratch) {
    const VehicleId id = sense_managed_ids_[idx];
    const auto& v = vehicles_.find(id)->second;
    if (id == exclude || v->exited()) continue;
    if (!v->has_plan() && v->progress_s() <= 0.5) continue;
    const geom::Vec2 pos = v->position();
    if (pos.distance_to(center) > radius) continue;
    out.push_back(protocol::Observation{id, v->traits(), v->ground_truth()});
  }
  sense_scratch.clear();
  sense_legacy_grid_.query_candidates(center, radius + kSenseSlackM,
                                      sense_scratch);
  for (const std::size_t idx : sense_scratch) {
    const VehicleId id = sense_legacy_ids_[idx];
    const LegacyVehicle& l = legacy_.find(id)->second;
    if (id == exclude || l.exited) continue;
    const geom::Vec2 pos = legacy_position(l);
    if (pos.distance_to(center) > radius) continue;
    traffic::VehicleStatus st;
    st.position = pos;
    st.speed_mps = l.v;
    st.heading_rad = intersection_.route(l.route_id).path.heading_at(l.s);
    out.push_back(protocol::Observation{id, l.traits, st});
  }
}

std::optional<protocol::Observation> World::observe(VehicleId id) const {
  if (const auto it = vehicles_.find(id); it != vehicles_.end()) {
    if (it->second->exited()) return std::nullopt;
    return protocol::Observation{id, it->second->traits(),
                                 it->second->ground_truth()};
  }
  if (const auto it = legacy_.find(id); it != legacy_.end()) {
    if (it->second.exited) return std::nullopt;
    traffic::VehicleStatus st;
    st.position = legacy_position(it->second);
    st.speed_mps = it->second.v;
    st.heading_rad =
        intersection_.route(it->second.route_id).path.heading_at(it->second.s);
    return protocol::Observation{id, it->second.traits, st};
  }
  return std::nullopt;
}

protocol::VehicleNode* World::vehicle(VehicleId id) {
  const auto it = vehicles_.find(id);
  return it == vehicles_.end() ? nullptr : it->second.get();
}

std::vector<VehicleId> World::vehicle_ids() const {
  std::vector<VehicleId> out;
  out.reserve(vehicles_.size());
  for (const auto& [id, v] : vehicles_) out.push_back(id);
  return out;
}

}  // namespace nwade::sim
