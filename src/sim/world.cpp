#include "sim/world.h"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "util/log.h"

namespace nwade::sim {

using protocol::VehicleAttackProfile;
using protocol::VehicleRole;

World::World(ScenarioConfig config) : World(std::move(config), -1) {}

World::World(ScenarioConfig config, Tick resume_t)
    : config_(std::move(config)),
      intersection_(traffic::Intersection::build(config_.intersection)) {
  // Resume mode replays construction exactly, except that events which had
  // already fired by the checkpoint burn their sequence number instead of
  // being scheduled (see the private-constructor comment in world.h).
  const bool resume = resume_t >= 0;
  const auto schedule_or_burn = [&](Tick when, net::EventQueue::Callback fn) {
    if (resume && when <= resume_t) {
      queue_.skip_seq();
    } else {
      queue_.schedule_at(when, std::move(fn));
    }
  };
  config_.nwade.security_enabled = config_.nwade_enabled;
  tracer_.set_enabled(config_.trace_enabled);
  steps_counter_ = registry_.counter("sim.steps");

  net::NetworkConfig net_cfg = config_.network;
  net_cfg.seed = config_.seed ^ 0x6e657477ULL;
  net_cfg.quadratic_reference = config_.quadratic_reference;
  net_cfg.registry = &registry_;
  net_cfg.tracer = &tracer_;
  network_ = std::make_unique<net::Network>(queue_, clock_, net_cfg);

  Rng rng(config_.seed);
  switch (config_.signer) {
    case SignerKind::kHmac: {
      Bytes key(32);
      for (auto& b : key) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      signer_ = std::make_unique<crypto::HmacSigner>(std::move(key));
      break;
    }
    case SignerKind::kRsa1024:
      signer_ = crypto::RsaSigner::generate(rng, 1024);
      break;
    case SignerKind::kRsa2048:
      signer_ = crypto::RsaSigner::generate(rng, 2048);
      break;
  }

  // Arrival schedule + attacker role assignment.
  traffic::ArrivalGenerator gen(intersection_, config_.vehicles_per_minute,
                                rng.fork(1));
  auto arrivals = gen.generate(config_.duration_ms);
  assign_attack_roles(arrivals);

  // Intersection manager.
  protocol::ImAttackProfile im_attack;
  if (config_.attack.im_malicious) {
    im_attack.mode = config_.im_attack_mode;
    im_attack.trigger_at = config_.attack_time;
  }
  protocol::ImContext im_ctx;
  im_ctx.intersection = &intersection_;
  im_ctx.config = &config_.nwade;
  im_ctx.network = network_.get();
  im_ctx.clock = &clock_;
  im_ctx.queue = &queue_;
  im_ctx.sensors = this;
  im_ctx.signer = signer_.get();
  im_ctx.metrics = &metrics_;
  im_ctx.malicious_ids = &malicious_ids_;
  im_ctx.registry = &registry_;
  im_ctx.tracer = &tracer_;
  im_ = std::make_unique<protocol::ImNode>(im_ctx, config_.scheduler, im_attack);
  network_->add_node(im_.get());
  if (resume) {
    // start()'s first window event always predates any checkpoint; the
    // restored ImNode re-arms its own pending window at the saved (when, seq).
    queue_.skip_seq();
  } else {
    im_->start();
  }

  // A fault-profile outage on the IM node is a process crash, not just a dark
  // radio: drive the crash/restart cycle so volatile state is really lost and
  // rebuilt from the durable block log on recovery.
  for (const net::Outage& outage : config_.network.fault.outages) {
    if (outage.node != kImNodeId) continue;
    schedule_or_burn(outage.from, [this] { im_->crash(clock_.now()); });
    if (outage.until < kTickMax) {
      schedule_or_burn(outage.until, [this] { im_->restart(clock_.now()); });
    }
  }

  // Schedule spawns. A configurable fraction of arrivals are legacy
  // vehicles (mixed-traffic extension); attacker roles always go to managed
  // vehicles, so role-assigned indices stay managed.
  Rng legacy_rng = rng.fork(2);
  std::uint64_t next_id = 1;
  int managed = 0;
  for (const traffic::Arrival& arrival : arrivals) {
    const VehicleId id{next_id++};
    const bool is_legacy = !attack_roles_.contains(id) &&
                           legacy_rng.chance(config_.legacy_fraction);
    if (is_legacy) {
      schedule_or_burn(arrival.time,
                       [this, arrival, id] { spawn_legacy(arrival, id); });
    } else {
      ++managed;
      schedule_or_burn(arrival.time, [this, arrival, id] { spawn(arrival, id); });
    }
  }
  metrics_.vehicles_spawned = managed;
}

World::~World() = default;

void World::assign_attack_roles(std::vector<traffic::Arrival>& arrivals) {
  const auto& attack = config_.attack;
  const int total_malicious = attack.plan_violations + attack.false_reports;
  if (total_malicious == 0) return;

  // Prefer vehicles spawning 4-16 s before the attack time: they hold plans
  // and still sit mid-approach (not yet exited) when the trigger fires.
  std::vector<std::size_t> candidates;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const Tick lead = config_.attack_time - arrivals[i].time;
    if (lead >= 4'000 && lead <= 16'000) candidates.push_back(i);
  }
  // Fall back to anything before the attack if the preferred window is thin.
  if (static_cast<int>(candidates.size()) < total_malicious) {
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
      if (arrivals[i].time < config_.attack_time - 2'000 &&
          std::find(candidates.begin(), candidates.end(), i) == candidates.end()) {
        candidates.push_back(i);
      }
    }
  }

  int assigned = 0;
  for (std::size_t idx : candidates) {
    if (assigned >= total_malicious) break;
    const VehicleId id{idx + 1};  // ids are assigned in arrival order
    VehicleAttackProfile profile;
    if (assigned < attack.plan_violations) {
      profile.role = VehicleRole::kDeviator;
      profile.trigger_at = config_.attack_time;
      profile.deviation = (assigned % 2 == 0) ? protocol::DeviationMode::kAccelerate
                                              : protocol::DeviationMode::kBrake;
    } else {
      profile.role = VehicleRole::kFalseReporter;
      profile.trigger_at = config_.attack_time + 300 * (assigned + 1);
      profile.false_report = config_.false_report_kind;
    }
    attack_roles_[id] = profile;
    malicious_ids_.insert(id);
    ++assigned;
  }
}

void World::spawn(const traffic::Arrival& arrival, VehicleId id) {
  protocol::VehicleContext ctx;
  ctx.intersection = &intersection_;
  ctx.config = &config_.nwade;
  ctx.network = network_.get();
  ctx.clock = &clock_;
  ctx.sensors = this;
  ctx.im_verifier = signer_->verifier_with_cache(verify_cache_);
  ctx.metrics = &metrics_;
  ctx.malicious_ids = &malicious_ids_;
  ctx.registry = &registry_;
  ctx.tracer = &tracer_;

  VehicleAttackProfile profile;
  if (const auto it = attack_roles_.find(id); it != attack_roles_.end()) {
    profile = it->second;
  }
  auto node = std::make_unique<protocol::VehicleNode>(
      ctx, id, arrival.route_id, arrival.traits, clock_.now(), profile);
  network_->add_node(node.get());
  node->start();
  spawn_times_[id] = clock_.now();
  vehicles_[id] = std::move(node);
  ++position_epoch_;  // the new vehicle must show up in sensor queries
}

void World::spawn_legacy(const traffic::Arrival& arrival, VehicleId id) {
  LegacyVehicle l;
  l.route_id = arrival.route_id;
  l.traits = arrival.traits;
  l.s = 0;
  // Legacy drivers cruise conservatively through unfamiliar smart junctions.
  l.cruise = std::min(arrival.initial_speed_mps,
                      0.6 * intersection_.config().limits.speed_limit_mps);
  l.v = l.cruise;
  legacy_[id] = l;
  spawn_times_[id] = clock_.now();
  ++position_epoch_;  // legacy vehicles are sensor-visible from spawn
}

geom::Vec2 World::legacy_position(const LegacyVehicle& l) const {
  return intersection_.route(l.route_id).path.point_at(l.s);
}

void World::step_legacy(Duration dt_ms) {
  if (legacy_.empty()) return;
  const double dt = static_cast<double>(dt_ms) / 1000.0;
  const auto& limits = intersection_.config().limits;
  const bool quadratic = config_.quadratic_reference;
  if (!quadratic) {
    // Managed vehicles do not move during step_legacy, so one snapshot
    // serves every legacy vehicle this step.
    follow_grid_.clear();
    follow_nodes_.clear();
    follow_grid_.reserve(vehicles_.size());
    for (const auto& [oid, v] : vehicles_) {
      if (v->exited()) continue;
      follow_grid_.insert(v->position());
      follow_nodes_.push_back(v.get());
    }
    // Legacy positions advance during the loop below (each entry moves as
    // it is stepped), so this snapshot can lag a neighbour by one step —
    // at most ~1.3 m at legacy cruise speeds. The query radius absorbs
    // that; the predicate always reads the live fields through the map.
    legacy_follow_grid_.clear();
    legacy_follow_refs_.clear();
    legacy_follow_grid_.reserve(legacy_.size());
    for (const auto& [oid, o] : legacy_) {
      if (o.exited) continue;
      legacy_follow_grid_.insert(legacy_position(o));
      legacy_follow_refs_.emplace_back(oid, &o);
    }
  }
  for (auto& [id, l] : legacy_) {
    if (l.exited) continue;
    // Simple car-following: brake for any vehicle ahead on the same route.
    double gap = 1e9;
    if (quadratic) {
      for (const auto& [oid, v] : vehicles_) {
        if (v->exited() || v->route_id() != l.route_id) continue;
        const double ds = v->progress_s() - l.s;
        if (ds > 0.1) gap = std::min(gap, ds);
      }
    } else {
      // Only gaps below the 45 m car-following horizon influence the speed
      // target, and a same-route vehicle ds metres ahead along the path lies
      // at most ds + |lateral offset| metres away in the plane (chord <=
      // arc), so a 55 m disc around the legacy vehicle contains every
      // managed vehicle that could matter. A vehicle the disc misses has
      // gap >= 45 and changes neither branch of the target computation. The
      // predicate below is the reference scan's, applied verbatim.
      follow_scratch_.clear();
      follow_grid_.query_candidates(legacy_position(l), 55.0, follow_scratch_);
      for (const std::size_t idx : follow_scratch_) {
        const protocol::VehicleNode* v = follow_nodes_[idx];
        if (v->exited() || v->route_id() != l.route_id) continue;
        const double ds = v->progress_s() - l.s;
        if (ds > 0.1) gap = std::min(gap, ds);
      }
    }
    // Legacy-vs-legacy. Earlier map entries have already moved this step, so
    // the values read here are live by construction — but the scan only
    // folds them into a min, which no candidate ordering can change. The
    // index is therefore used as a pre-filter over a top-of-step snapshot
    // (never as the iteration), and the predicate reads the live fields:
    // a neighbour whose ds could fall below the 45 m horizon lies within
    // 45 m along the path, hence within 45 m in the plane at snapshot time
    // (chord <= arc, and snapshots only trail live positions), well inside
    // the 55 m disc.
    if (quadratic) {
      for (const auto& [oid, o] : legacy_) {
        if (oid == id || o.exited || o.route_id != l.route_id) continue;
        const double ds = o.s - l.s;
        if (ds > 0.1) gap = std::min(gap, ds);
      }
    } else {
      follow_scratch_.clear();
      legacy_follow_grid_.query_candidates(legacy_position(l), 55.0,
                                           follow_scratch_);
      for (const std::size_t idx : follow_scratch_) {
        const auto& [oid, o] = legacy_follow_refs_[idx];
        if (oid == id || o->exited || o->route_id != l.route_id) continue;
        const double ds = o->s - l.s;
        if (ds > 0.1) gap = std::min(gap, ds);
      }
    }
    double target = l.cruise;
    if (gap < 45.0) target = std::min(target, 0.35 * std::max(0.0, gap - 10.0));
    if (l.v < target) {
      l.v = std::min(l.v + limits.max_accel_mps2 * dt, target);
    } else {
      l.v = std::max(l.v - limits.max_decel_mps2 * dt, target);
    }
    l.s += l.v * dt;
    if (l.s >= intersection_.route(l.route_id).path.length() - 0.05) {
      l.exited = true;
    }
  }
}

void World::step_world(Tick now) {
  ++position_epoch_;  // everything may move during this step
  const Duration dt = config_.step_ms;
  const auto watch_every =
      std::max<Tick>(1, config_.nwade.watch_interval_ms / config_.step_ms);
  const Tick step_index = now / config_.step_ms;

  // Per-phase profiling: one 'X' span per phase per step, sim-duration 0
  // (nothing inside a step advances sim time) with the wall cost in the
  // explicitly non-deterministic wall_us argument. Wall clocks are read only
  // when tracing, so disabled runs pay one relaxed load per step.
  const bool tracing = util::trace::tracing_active() && tracer_.enabled();
  using wall_clock = std::chrono::steady_clock;
  wall_clock::time_point t0;
  const auto phase_begin = [&] {
    if (tracing) t0 = wall_clock::now();
  };
  const auto phase_end = [&](const char* name, std::int64_t items) {
    if (!tracing) return;
    const double wall_us =
        std::chrono::duration<double, std::micro>(wall_clock::now() - t0)
            .count();
    tracer_.complete("sim", name, now, now, wall_us, "items", items);
  };

  phase_begin();
  step_legacy(dt);
  phase_end("phase.legacy", static_cast<std::int64_t>(legacy_.size()));

  // Phase 1: physics for everyone, so watchers later observe a consistent
  // time-t snapshot regardless of iteration order.
  phase_begin();
  for (auto& [id, vehicle] : vehicles_) {
    if (vehicle->exited()) continue;
    vehicle->step(now, dt);
    if (vehicle->exited()) {
      network_->remove_node(vehicle->node_id());
      crossing_times_.push_back(now - spawn_times_[id]);
    }
  }
  phase_end("phase.physics", static_cast<std::int64_t>(vehicles_.size()));

  // Phase 2: the neighbourhood watch, staggered to avoid synchronized bursts.
  phase_begin();
  for (auto& [id, vehicle] : vehicles_) {
    if (vehicle->exited()) continue;
    if ((step_index + static_cast<Tick>(id.value)) % watch_every == 0) {
      vehicle->watch(now);
    }
  }
  phase_end("phase.watch", static_cast<std::int64_t>(vehicles_.size()));

  // Ground-truth proximity audit once per simulated second (managed and
  // legacy vehicles alike; the staging area is excluded).
  if (now % 1000 == 0) {
    phase_begin();
    struct Probe {
      geom::Vec2 pos;
      double s;
      int route{-1};
      bool parked_off_lane{false};
    };
    std::vector<Probe> active;
    active.reserve(vehicles_.size() + legacy_.size());
    for (const auto& [id, v] : vehicles_) {
      // Degraded vehicles (moving without a plan) are audited too: their
      // sensor-gated crossing must not collide with managed traffic.
      if (!v->exited() && (v->has_plan() || v->progress_s() > 0.5)) {
        // A stationary vehicle pulled fully onto the shoulder outside the
        // core (a waiting degraded vehicle, a parked self-evacuee) is out
        // of traffic: near the junction mouth the shoulder inevitably runs
        // close to neighbouring lanes, so other routes' traffic may pass it
        // within lane width. Same-route traffic and anything inside the
        // core still audit against it at full strictness.
        const auto& route = intersection_.route(v->route_id());
        const bool parked_off =
            v->speed_mps() < 0.5 && std::abs(v->lateral_offset_m()) >= 3.0 &&
            (v->progress_s() < route.core_begin ||
             v->progress_s() > route.core_end);
        active.push_back(
            Probe{v->position(), v->progress_s(), v->route_id(), parked_off});
      }
    }
    for (const auto& [id, l] : legacy_) {
      if (!l.exited) active.push_back(Probe{legacy_position(l), l.s, l.route_id});
    }
    // The first 30 m of every route is the staging area at the edge of
    // the communication zone: vehicles planned in the same processing
    // window depart together from there and separate as their assigned
    // speeds diverge. Only positions past staging are audited.
    const auto audit_pair = [&](std::size_t i, std::size_t j) {
      if (active[i].s < 30.0 && active[j].s < 30.0) return;
      if ((active[i].parked_off_lane || active[j].parked_off_lane) &&
          active[i].route != active[j].route) {
        return;
      }
      if (active[i].pos.distance_to(active[j].pos) < 1.5) {
        ++gap_violations_;
      }
    };
    if (config_.quadratic_reference) {
      for (std::size_t i = 0; i < active.size(); ++i) {
        for (std::size_t j = i + 1; j < active.size(); ++j) audit_pair(i, j);
      }
    } else {
      // A 2 m grid visits every pair closer than 2 m exactly once — a
      // superset of the audited < 1.5 m pairs — and the count is
      // order-independent, so the tally matches the all-pairs sweep.
      geom::SpatialHash audit_grid(2.0);
      audit_grid.reserve(active.size());
      for (const Probe& p : active) audit_grid.insert(p.pos);
      audit_grid.for_each_near_pair(audit_pair);
    }
    phase_end("phase.gap_audit", static_cast<std::int64_t>(active.size()));
  }
}

void World::run_until(Tick t) {
  const bool tracing = util::trace::tracing_active() && tracer_.enabled();
  while (stepped_until_ < t) {
    stepped_until_ += config_.step_ms;
    if (tracing) {
      using wall_clock = std::chrono::steady_clock;
      const auto t0 = wall_clock::now();
      queue_.run_until(stepped_until_, clock_);
      const double wall_us =
          std::chrono::duration<double, std::micro>(wall_clock::now() - t0)
              .count();
      tracer_.complete("sim", "phase.events", stepped_until_, stepped_until_,
                       wall_us);
    } else {
      queue_.run_until(stepped_until_, clock_);
    }
    step_world(stepped_until_);
    steps_counter_.inc();
  }
}

RunSummary World::run() {
  run_until(config_.duration_ms);
  return summary();
}

RunSummary World::summary() const {
  RunSummary s;
  s.metrics = metrics_;
  s.net_stats = network_->stats();

  // Fold the pre-existing silos into the unified registry so one snapshot
  // carries the whole run (docs/OBSERVABILITY.md). Everything folded is an
  // integer read from sim state; the wall-clock vectors (im_package_us,
  // vehicle_verify_us) deliberately stay out so two identical seeded runs
  // produce byte-identical snapshot JSON.
  const auto gauge = [this](const char* name, std::int64_t v) {
    registry_.gauge(name).set(v);
  };
  gauge("protocol.vehicles_spawned", metrics_.vehicles_spawned);
  gauge("protocol.vehicles_exited", metrics_.vehicles_exited);
  gauge("protocol.incident_reports", metrics_.incident_reports);
  gauge("protocol.global_reports", metrics_.global_reports);
  gauge("protocol.verify_rounds", metrics_.verify_rounds);
  gauge("protocol.alarm_dismissals", metrics_.alarm_dismissals);
  gauge("protocol.evacuation_alerts", metrics_.evacuation_alerts);
  gauge("protocol.benign_self_evacuations", metrics_.benign_self_evacuations);
  gauge("protocol.false_alarm_evacuations", metrics_.false_alarm_evacuations);
  gauge("protocol.malicious_reports_recorded",
        metrics_.malicious_reports_recorded);
  gauge("protocol.blocks_published", metrics_.blocks_published);
  gauge("protocol.block_verification_failures",
        metrics_.block_verification_failures);
  gauge("protocol.plan_request_retries", metrics_.plan_request_retries);
  gauge("protocol.gap_block_requests", metrics_.gap_block_requests);
  gauge("protocol.degraded_entries", metrics_.degraded_entries);
  gauge("protocol.degraded_crossings", metrics_.degraded_crossings);
  gauge("protocol.im_crashes", metrics_.im_crashes);
  gauge("protocol.im_restarts", metrics_.im_restarts);
  gauge("protocol.im_courtesy_gaps", metrics_.im_courtesy_gaps);
  const auto event_gauge = [this](const char* name,
                                  const std::optional<Tick>& t) {
    if (t) registry_.gauge(name).set(*t);
  };
  event_gauge("protocol.event.violation_start_ms", metrics_.violation_start);
  event_gauge("protocol.event.first_true_incident_ms",
              metrics_.first_true_incident);
  event_gauge("protocol.event.deviation_confirmed_ms",
              metrics_.deviation_confirmed);
  event_gauge("protocol.event.false_incident_injected_ms",
              metrics_.false_incident_injected);
  event_gauge("protocol.event.false_incident_dismissed_ms",
              metrics_.false_incident_dismissed);
  event_gauge("protocol.event.false_global_injected_ms",
              metrics_.false_global_injected);
  event_gauge("protocol.event.false_global_detected_ms",
              metrics_.false_global_detected);
  event_gauge("protocol.event.im_conflict_injected_ms",
              metrics_.im_conflict_injected);
  event_gauge("protocol.event.im_conflict_detected_ms",
              metrics_.im_conflict_detected);
  event_gauge("protocol.event.sham_alert_detected_ms",
              metrics_.sham_alert_detected);
  const crypto::SigVerifyCache::Stats cache = verify_cache_.stats();
  gauge("crypto.sig_cache.hits", static_cast<std::int64_t>(cache.hits));
  gauge("crypto.sig_cache.misses", static_cast<std::int64_t>(cache.misses));
  gauge("crypto.sig_cache.insertions",
        static_cast<std::int64_t>(cache.insertions));
  gauge("crypto.sig_cache.evictions",
        static_cast<std::int64_t>(cache.evictions));
  s.metrics_snapshot = registry_.snapshot();
  const double minutes = ticks_to_seconds(stepped_until_ > 0 ? stepped_until_ : 1) / 60.0;
  s.throughput_vpm = metrics_.vehicles_exited / std::max(minutes, 1e-9);
  double total = 0;
  for (Duration d : crossing_times_) total += static_cast<double>(d);
  s.mean_crossing_ms =
      crossing_times_.empty() ? 0 : total / static_cast<double>(crossing_times_.size());
  int active = 0;
  for (const auto& [id, v] : vehicles_) active += v->exited() ? 0 : 1;
  s.active_at_end = active;
  s.min_ground_truth_gap_violations = gap_violations_;
  s.legacy_spawned = static_cast<int>(legacy_.size());
  for (const auto& [id, l] : legacy_) s.legacy_exited += l.exited ? 1 : 0;
  return s;
}

namespace {
/// Padding added to grid-backed sensor queries. A sense can fire mid-step,
/// after the grids were snapshotted but after some vehicles already moved;
/// between snapshots every vehicle moves at most one physics step (~2.3 m at
/// 50 mph and the 100 ms default step, lateral manoeuvres included), so any
/// vehicle inside the exact radius is within radius + slack of its
/// snapshotted position. The exact range check always uses live positions.
constexpr double kSenseSlackM = 20.0;
}  // namespace

void World::rebuild_sense_grids() const {
  // Iterating the id-sorted maps makes insertion indices ascend with vehicle
  // id, and query_candidates returns ascending indices — so the indexed scan
  // below emits observations in the reference path's exact order. Skipping
  // exited vehicles here is safe because exit is permanent: they could never
  // pass the live filters again.
  sense_managed_grid_.clear();
  sense_managed_ids_.clear();
  sense_managed_grid_.reserve(vehicles_.size());
  for (const auto& [id, v] : vehicles_) {
    if (v->exited()) continue;
    sense_managed_grid_.insert(v->position());
    sense_managed_ids_.push_back(id);
  }
  sense_legacy_grid_.clear();
  sense_legacy_ids_.clear();
  sense_legacy_grid_.reserve(legacy_.size());
  for (const auto& [id, l] : legacy_) {
    if (l.exited) continue;
    sense_legacy_grid_.insert(legacy_position(l));
    sense_legacy_ids_.push_back(id);
  }
  sense_built_epoch_ = position_epoch_;
}

std::vector<protocol::Observation> World::sense_around(geom::Vec2 center,
                                                       double radius,
                                                       VehicleId exclude) const {
  std::vector<protocol::Observation> out;
  if (config_.quadratic_reference) {
    for (const auto& [id, v] : vehicles_) {
      if (id == exclude || v->exited()) continue;
      // Vehicles still staged at the zone edge (no plan, not yet moving) are
      // invisible; a plan-less vehicle that moves — degraded mode — must be
      // seen so watchers and the IM's unmanaged tracking can cover it.
      if (!v->has_plan() && v->progress_s() <= 0.5) continue;
      const geom::Vec2 pos = v->position();
      if (pos.distance_to(center) > radius) continue;
      out.push_back(protocol::Observation{id, v->traits(), v->ground_truth()});
    }
    for (const auto& [id, l] : legacy_) {
      if (id == exclude || l.exited) continue;
      const geom::Vec2 pos = legacy_position(l);
      if (pos.distance_to(center) > radius) continue;
      traffic::VehicleStatus st;
      st.position = pos;
      st.speed_mps = l.v;
      st.heading_rad = intersection_.route(l.route_id).path.heading_at(l.s);
      out.push_back(protocol::Observation{id, l.traits, st});
    }
    return out;
  }

  if (sense_built_epoch_ != position_epoch_) rebuild_sense_grids();
  // Candidate supersets from the snapshot; every filter below re-runs the
  // reference path's exact predicate on live state, in the same id order.
  sense_scratch_.clear();
  sense_managed_grid_.query_candidates(center, radius + kSenseSlackM,
                                       sense_scratch_);
  for (const std::size_t idx : sense_scratch_) {
    const VehicleId id = sense_managed_ids_[idx];
    const auto& v = vehicles_.find(id)->second;
    if (id == exclude || v->exited()) continue;
    if (!v->has_plan() && v->progress_s() <= 0.5) continue;
    const geom::Vec2 pos = v->position();
    if (pos.distance_to(center) > radius) continue;
    out.push_back(protocol::Observation{id, v->traits(), v->ground_truth()});
  }
  sense_scratch_.clear();
  sense_legacy_grid_.query_candidates(center, radius + kSenseSlackM,
                                      sense_scratch_);
  for (const std::size_t idx : sense_scratch_) {
    const VehicleId id = sense_legacy_ids_[idx];
    const LegacyVehicle& l = legacy_.find(id)->second;
    if (id == exclude || l.exited) continue;
    const geom::Vec2 pos = legacy_position(l);
    if (pos.distance_to(center) > radius) continue;
    traffic::VehicleStatus st;
    st.position = pos;
    st.speed_mps = l.v;
    st.heading_rad = intersection_.route(l.route_id).path.heading_at(l.s);
    out.push_back(protocol::Observation{id, l.traits, st});
  }
  return out;
}

std::optional<protocol::Observation> World::observe(VehicleId id) const {
  if (const auto it = vehicles_.find(id); it != vehicles_.end()) {
    if (it->second->exited()) return std::nullopt;
    return protocol::Observation{id, it->second->traits(),
                                 it->second->ground_truth()};
  }
  if (const auto it = legacy_.find(id); it != legacy_.end()) {
    if (it->second.exited) return std::nullopt;
    traffic::VehicleStatus st;
    st.position = legacy_position(it->second);
    st.speed_mps = it->second.v;
    st.heading_rad =
        intersection_.route(it->second.route_id).path.heading_at(it->second.s);
    return protocol::Observation{id, it->second.traits, st};
  }
  return std::nullopt;
}

protocol::VehicleNode* World::vehicle(VehicleId id) {
  const auto it = vehicles_.find(id);
  return it == vehicles_.end() ? nullptr : it->second.get();
}

std::vector<VehicleId> World::vehicle_ids() const {
  std::vector<VehicleId> out;
  out.reserve(vehicles_.size());
  for (const auto& [id, v] : vehicles_) out.push_back(id);
  return out;
}

}  // namespace nwade::sim
