// Travel plans: the unit of scheduling, signing, and verification.
//
// A travel plan is the paper's tuple T_j = <id_j, char_j, status_j, inst_j>:
// vehicle identity, static characteristics, dynamic status at issue time, and
// the instruction to follow. Instructions are piecewise-constant-speed
// profiles along the vehicle's route, which makes the expected state at any
// time analytically computable — exactly what watchers need for Algorithm 2's
// "calculate the expected status and compare with the detected status".
#pragma once

#include <optional>
#include <vector>

#include "traffic/intersection.h"
#include "traffic/types.h"
#include "util/bytes.h"
#include "util/types.h"

namespace nwade::aim {

/// From `start`, the vehicle is at arc position `s0` moving at `v_mps`,
/// until the next segment takes over.
struct PlanSegment {
  Tick start{0};
  double s0{0};
  double v_mps{0};

  bool operator==(const PlanSegment&) const = default;
};

/// A complete travel plan for one vehicle crossing the intersection.
struct TravelPlan {
  VehicleId vehicle;
  int route_id{0};
  traffic::VehicleTraits traits;
  traffic::VehicleStatus status_at_issue;
  std::vector<PlanSegment> segments;

  Tick issued_at{0};
  Tick core_entry{0};  ///< when the vehicle reaches route.core_begin
  Tick core_exit{0};   ///< when the vehicle leaves route.core_end
  bool evacuation{false};  ///< true for plans issued during an evacuation
  /// True for *virtual* plans the IM synthesizes for legacy vehicles it can
  /// only observe (mixed-traffic extension, the paper's future work): a
  /// best-effort trajectory prediction used to reserve conflict zones, not a
  /// commitment the vehicle agreed to follow.
  bool unmanaged{false};

  /// Arc-length position along the route at time t (clamped to >= first
  /// segment position; advances at the last segment's speed after its start).
  double s_at(Tick t) const;

  /// Speed at time t.
  double v_at(Tick t) const;

  /// First time the plan reaches arc position s, or nullopt if it never does
  /// (e.g. s lies beyond the path and the final speed is zero).
  std::optional<Tick> time_at(double s) const;

  /// Expected observable status at time t, given the route geometry.
  traffic::VehicleStatus expected_status(const traffic::Route& route, Tick t) const;

  /// Canonical serialization (Merkle leaf / wire format).
  Bytes serialize() const;
  static std::optional<TravelPlan> deserialize(const Bytes& data);

  /// Exact serialized size: fixed header/footer (84 bytes) + 24 per segment.
  /// Kept in lock-step with serialize() so callers can reserve() up front.
  std::size_t wire_size() const { return 84 + 24 * segments.size(); }

  bool operator==(const TravelPlan& o) const;
};

/// A conflict found between two plans (or within one plan's constraints).
struct PlanConflict {
  VehicleId first;
  VehicleId second;
  int zone_id{-1};  ///< -1 for same-route headway violations
  Tick overlap_begin{0};
  Tick overlap_end{0};
};

/// Checks a batch of plans (plus optional earlier plans) for conflicts:
/// two plans must never occupy the same conflict zone simultaneously, and
/// plans on the same route must keep their core occupancy disjoint.
/// `margin_ms` is the protective time buffer around each occupancy.
/// Returns all conflicts found (empty = consistent).
std::vector<PlanConflict> find_plan_conflicts(
    const traffic::Intersection& intersection,
    const std::vector<const TravelPlan*>& plans, Duration margin_ms);

/// One plan's margin-padded occupancy intervals over its route's resources
/// (the per-route core interval plus every conflict zone it crosses) —
/// everything find_plan_conflicts derives from a plan, computed once so a
/// caller testing one plan against many can reuse it instead of re-walking
/// the plan's segments per pair.
struct PlanOccupancy {
  int route_id{-1};
  /// Core interval [in - margin, out + margin), absent if never entered.
  std::optional<std::pair<Tick, Tick>> core;
  /// (zone id, padded interval) for each zone occupied, in zones_for order.
  std::vector<std::pair<int, std::pair<Tick, Tick>>> zones;
};

PlanOccupancy plan_occupancy(const traffic::Intersection& intersection,
                             const TravelPlan& plan, Duration margin_ms);

/// Whether two distinct vehicles' plans conflict — exactly the boolean
/// `!find_plan_conflicts(ix, {&a, &b}, margin).empty()` computes, evaluated
/// on precomputed occupancies: same route compares core intervals (headway),
/// different routes compare shared-zone intervals.
bool occupancies_conflict(const PlanOccupancy& a, const PlanOccupancy& b);

}  // namespace nwade::aim
