#include "aim/scheduler.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace nwade::aim {

namespace {

/// Occupancy of [s_begin, s_end] by a plan, padded by `margin` on both sides.
std::optional<std::pair<Tick, Tick>> padded_occupancy(const TravelPlan& plan,
                                                      double s_begin, double s_end,
                                                      Duration margin) {
  const auto t_in = plan.time_at(s_begin);
  if (!t_in) return std::nullopt;
  auto t_out = plan.time_at(s_end);
  const Tick out = t_out ? *t_out : kTickMax - margin;
  return std::make_pair(*t_in - margin, out + margin);
}

}  // namespace

ReservationScheduler::ReservationScheduler(const traffic::Intersection& intersection,
                                           SchedulerConfig config)
    : intersection_(intersection),
      config_(config),
      zone_tables_(intersection.zones().size()),
      route_core_tables_(intersection.routes().size()),
      route_last_core_entry_(intersection.routes().size(), Tick{-1}) {}

TravelPlan make_profile_plan(const traffic::Intersection& intersection, VehicleId id,
                             int route_id, const traffic::VehicleTraits& traits,
                             Tick now, double s_start, Tick core_entry,
                             double min_cruise_mps) {
  const traffic::Route& route = intersection.route(route_id);
  const double limit = intersection.config().limits.speed_limit_mps;
  const double v_cross = 0.7 * limit;  // uniform core-crossing speed

  TravelPlan plan;
  plan.vehicle = id;
  plan.route_id = route_id;
  plan.traits = traits;
  plan.issued_at = now;
  plan.status_at_issue.position = route.path.point_at(s_start);
  plan.status_at_issue.heading_rad = route.path.heading_at(s_start);

  if (s_start >= route.core_end) {
    // Already past all conflicts: proceed at the limit to the exit.
    plan.segments = {PlanSegment{now, s_start, limit}};
    plan.core_entry = now;
    plan.core_exit = now;
    return plan;
  }

  if (s_start >= route.core_begin) {
    // Mid-core (recovery case): cross the rest of the core now.
    const Tick t_core_exit =
        now + seconds_to_ticks((route.core_end - s_start) / v_cross);
    plan.segments = {PlanSegment{now, s_start, v_cross},
                     PlanSegment{t_core_exit, route.core_end, limit}};
    plan.core_entry = now;
    plan.core_exit = t_core_exit;
    return plan;
  }

  // Approach phase: hit the core at `core_entry` exactly.
  const double d = route.core_begin - s_start;
  assert(core_entry > now);
  const double dt_s = ticks_to_seconds(core_entry - now);
  double v_app = d / dt_s;
  Tick t_go = now;
  if (v_app < min_cruise_mps) {
    // Too slow to cruise the whole way: wait at the spawn point first.
    v_app = min_cruise_mps;
    t_go = core_entry - seconds_to_ticks(d / v_app);
    plan.segments.push_back(PlanSegment{now, s_start, 0.0});
  }
  plan.segments.push_back(PlanSegment{t_go, s_start, v_app});

  const Tick t_core_exit =
      core_entry + seconds_to_ticks((route.core_end - route.core_begin) / v_cross);
  plan.segments.push_back(PlanSegment{core_entry, route.core_begin, v_cross});
  plan.segments.push_back(PlanSegment{t_core_exit, route.core_end, limit});
  plan.core_entry = core_entry;
  plan.core_exit = t_core_exit;
  return plan;
}

TravelPlan ReservationScheduler::build_plan(VehicleId id, int route_id,
                                            const traffic::VehicleTraits& traits,
                                            Tick now, double s_start,
                                            Tick core_entry) const {
  return make_profile_plan(intersection_, id, route_id, traits, now, s_start,
                           core_entry, config_.min_cruise_mps);
}

bool ReservationScheduler::fits(const TravelPlan& plan, int route_id) const {
  return next_candidate_after(plan, route_id, 0) == 0;
}

void ReservationScheduler::consider(const IntervalTable& table, Tick in, Tick out,
                                    Tick& shift) const {
  // The smallest core-entry shift clearing every blocking reservation in
  // this table is driven by the latest blocking end alone: shift past it.
  const auto max_end = config_.linear_reference_scan
                           ? table.latest_blocking_end_linear(in, out)
                           : table.latest_blocking_end(in, out);
  if (max_end) shift = std::max(shift, *max_end - in + 1);
}

Tick ReservationScheduler::next_candidate_after(const TravelPlan& plan, int route_id,
                                                Tick /*from*/) const {
  // Returns 0 when the plan fits, otherwise the smallest shift (in ms) of
  // core_entry that clears every currently blocking reservation.
  const traffic::Route& route = intersection_.route(route_id);
  Tick shift = 0;

  if (const auto core =
          padded_occupancy(plan, route.core_begin, route.core_end, config_.margin_ms)) {
    consider(route_core_tables_[static_cast<std::size_t>(route_id)], core->first,
             core->second, shift);
  }
  for (const traffic::ZoneRef& ref : intersection_.zones_for(route_id)) {
    const auto occ = padded_occupancy(plan, ref.begin, ref.end, config_.margin_ms);
    if (!occ) continue;
    consider(zone_tables_[static_cast<std::size_t>(ref.zone_id)], occ->first,
             occ->second, shift);
  }
  return shift;
}

void ReservationScheduler::commit(const TravelPlan& plan, int route_id) {
  const traffic::Route& route = intersection_.route(route_id);
  if (const auto core =
          padded_occupancy(plan, route.core_begin, route.core_end, config_.margin_ms)) {
    route_core_tables_[static_cast<std::size_t>(route_id)].insert(
        Interval{core->first, core->second, plan.vehicle});
  }
  for (const traffic::ZoneRef& ref : intersection_.zones_for(route_id)) {
    if (const auto occ =
            padded_occupancy(plan, ref.begin, ref.end, config_.margin_ms)) {
      zone_tables_[static_cast<std::size_t>(ref.zone_id)].insert(
          Interval{occ->first, occ->second, plan.vehicle});
    }
  }
  Tick& last_entry = route_last_core_entry_[static_cast<std::size_t>(route_id)];
  last_entry = std::max(last_entry, plan.core_entry);
}

TravelPlan ReservationScheduler::schedule(VehicleId id, int route_id,
                                          const traffic::VehicleTraits& traits,
                                          Tick now, double initial_speed_mps) {
  (void)initial_speed_mps;  // plans impose their own profile from the spawn point
  const traffic::Route& route = intersection_.route(route_id);
  const double limit = intersection_.config().limits.speed_limit_mps;
  Tick core_entry = now + seconds_to_ticks(route.core_begin / limit);
  // FIFO along the shared approach: never slot a new spawn in front of a
  // same-route vehicle that already holds a (possibly distant) reservation.
  if (const Tick last = route_last_core_entry_[static_cast<std::size_t>(route_id)];
      last >= 0) {
    core_entry = std::max(core_entry, last + 1);
  }

  TravelPlan plan = build_plan(id, route_id, traits, now, 0.0, core_entry);
  for (int iter = 0; iter < config_.max_push_iterations; ++iter) {
    const Tick shift = next_candidate_after(plan, route_id, core_entry);
    if (shift == 0) break;
    core_entry += shift;
    plan = build_plan(id, route_id, traits, now, 0.0, core_entry);
  }
  commit(plan, route_id);
  return plan;
}

void ReservationScheduler::reserve_virtual(const TravelPlan& plan) {
  commit(plan, plan.route_id);
}

void ReservationScheduler::release_vehicle(VehicleId id) {
  for (IntervalTable& table : zone_tables_) table.erase_owner(id);
  for (IntervalTable& table : route_core_tables_) table.erase_owner(id);
}

TravelPlan ReservationScheduler::reschedule(VehicleId id, int route_id,
                                            const traffic::VehicleTraits& traits,
                                            Tick now, double s_start) {
  const traffic::Route& route = intersection_.route(route_id);
  const double limit = intersection_.config().limits.speed_limit_mps;
  if (s_start >= route.core_begin) {
    // Already in or past the core: physics is committed; keep going.
    TravelPlan plan = build_plan(id, route_id, traits, now, s_start, now + 1);
    commit(plan, route_id);
    return plan;
  }
  Tick core_entry = now + seconds_to_ticks((route.core_begin - s_start) / limit);
  TravelPlan plan = build_plan(id, route_id, traits, now, s_start, core_entry);
  for (int iter = 0; iter < config_.max_push_iterations; ++iter) {
    const Tick shift = next_candidate_after(plan, route_id, core_entry);
    if (shift == 0) break;
    core_entry += shift;
    plan = build_plan(id, route_id, traits, now, s_start, core_entry);
  }
  commit(plan, route_id);
  return plan;
}

void ReservationScheduler::release_before(Tick t) {
  for (IntervalTable& table : zone_tables_) table.erase_end_before(t);
  for (IntervalTable& table : route_core_tables_) table.erase_end_before(t);
}

std::size_t ReservationScheduler::reservation_count() const {
  std::size_t n = 0;
  for (const IntervalTable& table : zone_tables_) n += table.size();
  return n;
}

std::vector<TravelPlan> ReservationScheduler::plan_evacuation(
    const std::vector<ActiveVehicle>& vehicles, const ThreatInfo& threat,
    Tick now) const {
  std::vector<TravelPlan> plans;
  const double limit = intersection_.config().limits.speed_limit_mps;
  const double v_evac = 0.5 * limit;  // slowed, per the paper's recovery note

  for (const ActiveVehicle& v : vehicles) {
    if (v.id == threat.suspect) continue;
    const traffic::Route& route = intersection_.route(v.route_id);

    TravelPlan plan;
    plan.vehicle = v.id;
    plan.route_id = v.route_id;
    plan.traits = v.traits;
    plan.issued_at = now;
    plan.evacuation = true;
    plan.status_at_issue.position = route.path.point_at(v.s);
    plan.status_at_issue.speed_mps = v.v_mps;
    plan.status_at_issue.heading_rad = route.path.heading_at(v.s);

    const auto [dist, s_threat] = route.path.project(threat.position);
    const bool ahead = s_threat > v.s + 1.0;
    if (dist <= threat.radius_m && ahead) {
      // The threat sits on this vehicle's remaining path: stop short of it.
      const double stop_s = std::max(v.s, s_threat - threat.radius_m - 10.0);
      if (stop_s <= v.s + 0.5) {
        plan.segments = {PlanSegment{now, v.s, 0.0}};
      } else {
        const Tick t_stop = now + seconds_to_ticks((stop_s - v.s) / v_evac);
        plan.segments = {PlanSegment{now, v.s, v_evac},
                         PlanSegment{t_stop, stop_s, 0.0}};
      }
    } else {
      // Clear path: leave the intersection at reduced speed.
      plan.segments = {PlanSegment{now, v.s, v_evac}};
    }
    plan.core_entry = now;
    plan.core_exit = now;
    plans.push_back(std::move(plan));
  }
  return plans;
}

std::vector<TravelPlan> ReservationScheduler::plan_recovery(
    const std::vector<ActiveVehicle>& vehicles, Tick now) {
  // Reservations made for pre-evacuation plans are void; start fresh.
  for (IntervalTable& table : zone_tables_) table.clear();
  for (IntervalTable& table : route_core_tables_) table.clear();

  // Vehicles closest to the exit replan first so upstream vehicles queue
  // behind them rather than the other way around.
  std::vector<ActiveVehicle> order = vehicles;
  std::sort(order.begin(), order.end(),
            [](const ActiveVehicle& a, const ActiveVehicle& b) { return a.s > b.s; });

  const double limit = intersection_.config().limits.speed_limit_mps;
  std::vector<TravelPlan> plans;
  for (const ActiveVehicle& v : order) {
    const traffic::Route& route = intersection_.route(v.route_id);
    if (v.s >= route.core_begin) {
      // In or past the core: cannot be delayed, commit as-is.
      TravelPlan plan = build_plan(v.id, v.route_id, v.traits, now, v.s, now + 1);
      commit(plan, v.route_id);
      plans.push_back(std::move(plan));
      continue;
    }
    Tick core_entry = now + seconds_to_ticks((route.core_begin - v.s) / limit);
    TravelPlan plan = build_plan(v.id, v.route_id, v.traits, now, v.s, core_entry);
    for (int iter = 0; iter < config_.max_push_iterations; ++iter) {
      const Tick shift = next_candidate_after(plan, v.route_id, core_entry);
      if (shift == 0) break;
      core_entry += shift;
      plan = build_plan(v.id, v.route_id, v.traits, now, v.s, core_entry);
    }
    commit(plan, v.route_id);
    plans.push_back(std::move(plan));
  }
  return plans;
}

void ReservationScheduler::checkpoint_save(ByteWriter& w) const {
  w.u32(static_cast<std::uint32_t>(zone_tables_.size()));
  for (const IntervalTable& t : zone_tables_) t.checkpoint_save(w);
  w.u32(static_cast<std::uint32_t>(route_core_tables_.size()));
  for (const IntervalTable& t : route_core_tables_) t.checkpoint_save(w);
  w.u32(static_cast<std::uint32_t>(route_last_core_entry_.size()));
  for (const Tick t : route_last_core_entry_) w.i64(t);
}

bool ReservationScheduler::checkpoint_restore(ByteReader& r) {
  if (r.u32() != zone_tables_.size()) return false;
  for (IntervalTable& t : zone_tables_) {
    if (!t.checkpoint_restore(r)) return false;
  }
  if (r.u32() != route_core_tables_.size()) return false;
  for (IntervalTable& t : route_core_tables_) {
    if (!t.checkpoint_restore(r)) return false;
  }
  if (r.u32() != route_last_core_entry_.size()) return false;
  for (Tick& t : route_last_core_entry_) t = r.i64();
  return r.ok();
}

}  // namespace nwade::aim
