#include "aim/interval_table.h"

#include <algorithm>

namespace nwade::aim {

void IntervalTable::insert(const Interval& iv) {
  const auto pos = std::upper_bound(
      intervals_.begin(), intervals_.end(), iv.begin,
      [](Tick begin, const Interval& r) { return begin < r.begin; });
  const std::size_t idx = static_cast<std::size_t>(pos - intervals_.begin());
  intervals_.insert(pos, iv);
  prefix_max_end_.insert(prefix_max_end_.begin() + static_cast<std::ptrdiff_t>(idx),
                         iv.end);
  rebuild_prefix_max(idx);
}

std::optional<Tick> IntervalTable::latest_blocking_end(Tick begin, Tick end) const {
  // Candidates are the prefix with r.begin < end; its end-maximum M blocks
  // iff M > begin (see header).
  const auto pos = std::lower_bound(
      intervals_.begin(), intervals_.end(), end,
      [](const Interval& r, Tick e) { return r.begin < e; });
  const std::size_t count = static_cast<std::size_t>(pos - intervals_.begin());
  if (count == 0) return std::nullopt;
  const Tick max_end = prefix_max_end_[count - 1];
  if (max_end > begin) return max_end;
  return std::nullopt;
}

std::optional<Tick> IntervalTable::latest_blocking_end_linear(Tick begin,
                                                              Tick end) const {
  std::optional<Tick> max_end;
  for (const Interval& r : intervals_) {
    if (begin < r.end && r.begin < end) {
      if (!max_end || r.end > *max_end) max_end = r.end;
    }
  }
  return max_end;
}

void IntervalTable::erase_owner(VehicleId id) {
  const auto removed = std::erase_if(
      intervals_, [id](const Interval& r) { return r.owner == id; });
  if (removed == 0) return;
  prefix_max_end_.resize(intervals_.size());
  rebuild_prefix_max(0);
}

void IntervalTable::erase_end_before(Tick t) {
  const auto removed =
      std::erase_if(intervals_, [t](const Interval& r) { return r.end < t; });
  if (removed == 0) return;
  prefix_max_end_.resize(intervals_.size());
  rebuild_prefix_max(0);
}

void IntervalTable::clear() {
  intervals_.clear();
  prefix_max_end_.clear();
}

void IntervalTable::checkpoint_save(ByteWriter& w) const {
  w.u32(static_cast<std::uint32_t>(intervals_.size()));
  for (const Interval& iv : intervals_) {
    w.i64(iv.begin);
    w.i64(iv.end);
    w.u64(iv.owner.value);
  }
}

bool IntervalTable::checkpoint_restore(ByteReader& r) {
  const std::uint32_t n = r.u32();
  if (!r.ok() || n > r.remaining() / 24) return false;  // 24 bytes per entry
  intervals_.clear();
  intervals_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    Interval iv;
    iv.begin = r.i64();
    iv.end = r.i64();
    iv.owner = VehicleId{r.u64()};
    intervals_.push_back(iv);
  }
  prefix_max_end_.resize(intervals_.size());
  rebuild_prefix_max(0);
  return r.ok();
}

void IntervalTable::rebuild_prefix_max(std::size_t from) {
  for (std::size_t i = from; i < intervals_.size(); ++i) {
    const Tick prev = i == 0 ? intervals_[i].end : prefix_max_end_[i - 1];
    prefix_max_end_[i] = std::max(prev, intervals_[i].end);
  }
}

}  // namespace nwade::aim
