// DASH-like reservation scheduler.
//
// The paper plugs NWADE into DASH [16], whose job is: take each incoming
// vehicle's request and produce a travel plan that crosses the intersection
// as early as possible without conflicting with already-scheduled vehicles.
// This is the canonical conflict-point reservation formulation:
//
//   * every (route pair) conflict zone is a resource with a reservation table
//   * a vehicle's plan claims each zone on its route for a time interval
//   * the scheduler finds the earliest core-entry time whose induced claims
//     fit every table, also keeping same-route core crossings disjoint
//     (headway), then commits the reservations
//
// Plans are piecewise-constant-speed: an optional wait at the spawn point,
// a cruise to and through the core, then the speed limit on the exit leg.
#pragma once

#include <vector>

#include "aim/interval_table.h"
#include "aim/plan.h"
#include "traffic/intersection.h"
#include "util/types.h"

namespace nwade::aim {

struct SchedulerConfig {
  /// Protective time buffer applied to each zone/core occupancy (per side).
  Duration margin_ms{900};
  /// Slowest acceptable cruise speed; below this the vehicle waits at spawn.
  double min_cruise_mps{4.0};
  /// Give-up bound for the feasibility search (defensive; rarely hit).
  int max_push_iterations{400};
  /// Test-only: answer blocking queries with the historical O(n) linear
  /// sweep instead of the indexed prefix-max search, so the equivalence
  /// suite can prove the indexed tables behavior-preserving.
  bool linear_reference_scan{false};
};

/// Snapshot of a vehicle mid-crossing, used for evacuation replanning.
struct ActiveVehicle {
  VehicleId id;
  int route_id{0};
  traffic::VehicleTraits traits;
  double s{0};       ///< current arc position on its route
  double v_mps{0};   ///< current speed
};

/// A located threat the evacuation must route around.
struct ThreatInfo {
  geom::Vec2 position;
  double radius_m{25.0};
  VehicleId suspect;
};

/// Interface shared by the reservation scheduler and the traffic-light
/// baseline so benchmarks can swap them.
class Scheduler {
 public:
  virtual ~Scheduler() = default;
  /// Produces a plan for a vehicle whose spawn (communication-zone entry)
  /// happened at `now` with the given initial speed.
  virtual TravelPlan schedule(VehicleId id, int route_id,
                              const traffic::VehicleTraits& traits, Tick now,
                              double initial_speed_mps) = 0;
  /// Frees reservation state that ends before `t` (bounded memory).
  virtual void release_before(Tick t) = 0;
};

/// Builds the standard plan profile: optional wait at s_start, cruise timed
/// to reach the core at `core_entry`, cross at a uniform core speed, then the
/// speed limit on the exit leg. Shared by all scheduler implementations.
TravelPlan make_profile_plan(const traffic::Intersection& intersection, VehicleId id,
                             int route_id, const traffic::VehicleTraits& traits,
                             Tick now, double s_start, Tick core_entry,
                             double min_cruise_mps);

/// The reservation scheduler (the "AIM optimizer" substrate).
class ReservationScheduler final : public Scheduler {
 public:
  ReservationScheduler(const traffic::Intersection& intersection,
                       SchedulerConfig config = {});

  TravelPlan schedule(VehicleId id, int route_id,
                      const traffic::VehicleTraits& traits, Tick now,
                      double initial_speed_mps) override;

  void release_before(Tick t) override;

  /// Replans every active vehicle around a confirmed threat: vehicles whose
  /// remaining path stays clear continue at reduced speed; vehicles heading
  /// into the threat radius stop short of it. Plans are marked `evacuation`.
  std::vector<TravelPlan> plan_evacuation(const std::vector<ActiveVehicle>& vehicles,
                                          const ThreatInfo& threat, Tick now) const;

  /// Post-evacuation recovery: fresh normal plans for the surviving vehicles
  /// from their current positions, re-reserving zones from scratch.
  std::vector<TravelPlan> plan_recovery(const std::vector<ActiveVehicle>& vehicles,
                                        Tick now);

  /// Replaces one vehicle's plan from its current position, fitting around
  /// all existing reservations (its own previous claims included, which is
  /// conservative). Used when a newly appeared legacy vehicle invalidates an
  /// already-issued plan.
  TravelPlan reschedule(VehicleId id, int route_id,
                        const traffic::VehicleTraits& traits, Tick now,
                        double s_start);

  /// Registers a virtual (unmanaged) plan's zone occupancy so subsequent
  /// scheduling routes managed vehicles around a legacy vehicle's predicted
  /// trajectory. Mixed-traffic extension.
  void reserve_virtual(const TravelPlan& plan);

  /// Drops every reservation a vehicle holds. Used when a tracked vehicle's
  /// predicted trajectory is replaced (each window re-predicts it) or
  /// falsified outright (it parked): without this, stale phantom claims pile
  /// up and push same-core schedules tens of seconds into the future.
  void release_vehicle(VehicleId id);

  /// Number of live zone reservations (for tests/metrics).
  std::size_t reservation_count() const;

  /// Serializes every reservation table and the per-route commit watermark.
  /// Restore expects a scheduler freshly built from the identical
  /// intersection (same table counts); returns false otherwise or on
  /// malformed input.
  void checkpoint_save(ByteWriter& w) const;
  bool checkpoint_restore(ByteReader& r);

 private:
  using Interval = IntervalTable::Interval;

  TravelPlan build_plan(VehicleId id, int route_id,
                        const traffic::VehicleTraits& traits, Tick now, double s_start,
                        Tick core_entry) const;
  bool fits(const TravelPlan& plan, int route_id) const;
  void commit(const TravelPlan& plan, int route_id);
  /// Earliest tick >= `from` at which the plan's claims could fit, given the
  /// blocking reservation discovered; kTickMax if none found.
  Tick next_candidate_after(const TravelPlan& plan, int route_id, Tick from) const;
  /// Latest blocking end in `table` for [in, out), honouring the reference
  /// flag; folds the induced core-entry push into `shift`.
  void consider(const IntervalTable& table, Tick in, Tick out, Tick& shift) const;

  const traffic::Intersection& intersection_;
  SchedulerConfig config_;
  std::vector<IntervalTable> zone_tables_;        ///< indexed by zone id
  std::vector<IntervalTable> route_core_tables_;  ///< indexed by route id
  /// Latest committed core-entry per route (-1 = no commits yet). New spawns
  /// (s=0) may not enter the core before a vehicle already committed on the
  /// same route: the earliest-fit search could otherwise slot a newcomer
  /// into a free window *before* an earlier vehicle's distant reservation,
  /// making it physically overtake that vehicle on the shared approach lane.
  std::vector<Tick> route_last_core_entry_;
};

}  // namespace nwade::aim
