#include "aim/plan.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_map>

namespace nwade::aim {

double TravelPlan::s_at(Tick t) const {
  if (segments.empty()) return 0;
  if (t <= segments.front().start) return segments.front().s0;
  double s = segments.front().s0;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const PlanSegment& seg = segments[i];
    const Tick seg_end = (i + 1 < segments.size()) ? segments[i + 1].start : kTickMax;
    if (t < seg_end) {
      return seg.s0 + seg.v_mps * ticks_to_seconds(t - seg.start);
    }
    s = seg.s0 + seg.v_mps * ticks_to_seconds(seg_end - seg.start);
    (void)s;
  }
  // Past the last segment boundary is handled inside the loop (kTickMax).
  const PlanSegment& last = segments.back();
  return last.s0 + last.v_mps * ticks_to_seconds(t - last.start);
}

double TravelPlan::v_at(Tick t) const {
  if (segments.empty()) return 0;
  if (t < segments.front().start) return 0;
  for (std::size_t i = segments.size(); i-- > 0;) {
    if (t >= segments[i].start) return segments[i].v_mps;
  }
  return segments.front().v_mps;
}

std::optional<Tick> TravelPlan::time_at(double s) const {
  if (segments.empty()) return std::nullopt;
  if (s <= segments.front().s0) return segments.front().start;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const PlanSegment& seg = segments[i];
    const Tick seg_end = (i + 1 < segments.size()) ? segments[i + 1].start : kTickMax;
    const double s_end = (i + 1 < segments.size())
                             ? segments[i + 1].s0
                             : std::numeric_limits<double>::infinity();
    if (s <= s_end + 1e-9) {
      if (seg.v_mps <= 0) {
        if (s <= seg.s0 + 1e-9) return seg.start;
        continue;  // cannot reach s in this segment; maybe a later one starts past it
      }
      const double dt_s = (s - seg.s0) / seg.v_mps;
      const Tick t = seg.start + seconds_to_ticks(dt_s);
      if (t <= seg_end) return t;
    }
  }
  return std::nullopt;
}

traffic::VehicleStatus TravelPlan::expected_status(const traffic::Route& route,
                                                   Tick t) const {
  traffic::VehicleStatus st;
  const double s = s_at(t);
  st.position = route.path.point_at(s);
  st.speed_mps = v_at(t);
  st.heading_rad = route.path.heading_at(s);
  return st;
}

Bytes TravelPlan::serialize() const {
  ByteWriter w;
  w.reserve(wire_size());
  w.u64(vehicle.value);
  w.u32(static_cast<std::uint32_t>(route_id));
  traits.serialize(w);
  status_at_issue.serialize(w);
  w.u32(static_cast<std::uint32_t>(segments.size()));
  for (const PlanSegment& seg : segments) {
    w.i64(seg.start);
    w.f64(seg.s0);
    w.f64(seg.v_mps);
  }
  w.i64(issued_at);
  w.i64(core_entry);
  w.i64(core_exit);
  w.u8(static_cast<std::uint8_t>((evacuation ? 1 : 0) | (unmanaged ? 2 : 0)));
  return w.take();
}

std::optional<TravelPlan> TravelPlan::deserialize(const Bytes& data) {
  ByteReader r(data);
  TravelPlan p;
  p.vehicle = VehicleId{r.u64()};
  p.route_id = static_cast<int>(r.u32());
  p.traits = traffic::VehicleTraits::deserialize(r);
  p.status_at_issue = traffic::VehicleStatus::deserialize(r);
  const std::uint32_t n = r.u32();
  if (n > 1000) return std::nullopt;  // sanity bound
  p.segments.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    PlanSegment seg;
    seg.start = r.i64();
    seg.s0 = r.f64();
    seg.v_mps = r.f64();
    p.segments.push_back(seg);
  }
  p.issued_at = r.i64();
  p.core_entry = r.i64();
  p.core_exit = r.i64();
  const std::uint8_t flags = r.u8();
  p.evacuation = (flags & 1) != 0;
  p.unmanaged = (flags & 2) != 0;
  if (!r.ok() || !r.at_end()) return std::nullopt;
  return p;
}

bool TravelPlan::operator==(const TravelPlan& o) const {
  return vehicle == o.vehicle && route_id == o.route_id && traits == o.traits &&
         segments == o.segments && issued_at == o.issued_at &&
         core_entry == o.core_entry && core_exit == o.core_exit &&
         evacuation == o.evacuation && unmanaged == o.unmanaged;
}

namespace {

/// Occupancy of [s_begin, s_end] by a plan, or nullopt if never entered.
std::optional<std::pair<Tick, Tick>> occupancy(const TravelPlan& plan, double s_begin,
                                               double s_end) {
  const auto t_in = plan.time_at(s_begin);
  if (!t_in) return std::nullopt;
  auto t_out = plan.time_at(s_end);
  if (!t_out) t_out = kTickMax;  // enters but never leaves (stopped inside)
  return std::make_pair(*t_in, *t_out);
}

bool overlaps(Tick a0, Tick a1, Tick b0, Tick b1) { return a0 < b1 && b0 < a1; }

}  // namespace

std::vector<PlanConflict> find_plan_conflicts(
    const traffic::Intersection& intersection,
    const std::vector<const TravelPlan*>& plans, Duration margin_ms) {
  std::vector<PlanConflict> conflicts;

  // Bucket occupancies by resource (zone id, or per-route core interval for
  // same-route headway) so the check is near-linear in plans instead of
  // all-pairs over all zones: this runs on every vehicle for every block.
  struct Occ {
    const TravelPlan* plan;
    Tick in, out;
  };
  std::unordered_map<int, std::vector<Occ>> zone_occs;       // zone id -> occs
  std::unordered_map<int, std::vector<Occ>> core_occs;       // route id -> occs

  for (const TravelPlan* p : plans) {
    const traffic::Route& route = intersection.route(p->route_id);
    if (const auto core = occupancy(*p, route.core_begin, route.core_end)) {
      core_occs[p->route_id].push_back(
          Occ{p, core->first - margin_ms, core->second + margin_ms});
    }
    for (const traffic::ZoneRef& ref : intersection.zones_for(p->route_id)) {
      if (const auto occ = occupancy(*p, ref.begin, ref.end)) {
        zone_occs[ref.zone_id].push_back(
            Occ{p, occ->first - margin_ms, occ->second + margin_ms});
      }
    }
  }

  const auto sweep = [&conflicts](std::vector<Occ>& bucket, int zone_id,
                                  bool same_route_only) {
    std::sort(bucket.begin(), bucket.end(),
              [](const Occ& a, const Occ& b) { return a.in < b.in; });
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      for (std::size_t j = i + 1; j < bucket.size(); ++j) {
        if (bucket[j].in >= bucket[i].out) break;  // sorted: no later overlaps
        const Occ& a = bucket[i];
        const Occ& b = bucket[j];
        if (a.plan->vehicle == b.plan->vehicle) continue;
        // In zone buckets, same-route pairs are following traffic and are
        // covered by the core-interval (headway) buckets instead.
        if (!same_route_only && a.plan->route_id == b.plan->route_id) continue;
        if (overlaps(a.in, a.out, b.in, b.out)) {
          conflicts.push_back(PlanConflict{a.plan->vehicle, b.plan->vehicle, zone_id,
                                           std::max(a.in, b.in),
                                           std::min(a.out, b.out)});
        }
      }
    }
  };

  for (auto& [route_id, bucket] : core_occs) sweep(bucket, -1, true);
  for (auto& [zone_id, bucket] : zone_occs) sweep(bucket, zone_id, false);
  return conflicts;
}

PlanOccupancy plan_occupancy(const traffic::Intersection& intersection,
                             const TravelPlan& plan, Duration margin_ms) {
  PlanOccupancy occ;
  occ.route_id = plan.route_id;
  const traffic::Route& route = intersection.route(plan.route_id);
  if (const auto core = occupancy(plan, route.core_begin, route.core_end)) {
    occ.core = {core->first - margin_ms, core->second + margin_ms};
  }
  for (const traffic::ZoneRef& ref : intersection.zones_for(plan.route_id)) {
    if (const auto zone = occupancy(plan, ref.begin, ref.end)) {
      occ.zones.emplace_back(
          ref.zone_id,
          std::make_pair(zone->first - margin_ms, zone->second + margin_ms));
    }
  }
  return occ;
}

bool occupancies_conflict(const PlanOccupancy& a, const PlanOccupancy& b) {
  if (a.route_id == b.route_id) {
    // Same route: following traffic — only the core (headway) interval is
    // checked; find_plan_conflicts skips same-route pairs in zone buckets.
    return a.core && b.core &&
           overlaps(a.core->first, a.core->second, b.core->first,
                    b.core->second);
  }
  for (const auto& [zone_a, iv_a] : a.zones) {
    for (const auto& [zone_b, iv_b] : b.zones) {
      if (zone_a != zone_b) continue;
      if (overlaps(iv_a.first, iv_a.second, iv_b.first, iv_b.second)) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace nwade::aim
