// Sorted interval reservation table with an indexed overlap query.
//
// The scheduler's feasibility loop asks one question per conflict resource:
// "among reservations overlapping [begin, end), what is the latest end?"
// (the answer drives how far a candidate core entry must be pushed). A flat
// vector answers that in O(n) per probe, and the probe count grows with both
// demand and run length — the classic quadratic creep of reservation AIM.
//
// This table keeps intervals sorted by begin with a parallel running maximum
// of ends, making the query one binary search: exactly the intervals with
// begin < end_q are overlap candidates (a sorted prefix), and M, the prefix
// maximum of their ends, decides the answer outright. If M > begin_q the
// interval achieving M overlaps the query itself, and no overlapping
// interval can end later — so the answer is M. If M <= begin_q every
// candidate ends at or before the query begins, so nothing overlaps. Either
// way the sweep collapses to O(log n), with no false positives to confirm.
#pragma once

#include <optional>
#include <vector>

#include "util/bytes.h"
#include "util/types.h"

namespace nwade::aim {

class IntervalTable {
 public:
  struct Interval {
    Tick begin{0}, end{0};
    VehicleId owner{};
  };

  /// Binary-search insertion keeping begin-order; O(n - pos) tail shift.
  void insert(const Interval& iv);

  /// Latest `end` among intervals strictly overlapping [begin, end)
  /// (overlap test: r.begin < end && begin < r.end, matching the
  /// scheduler's historical strict-inequality sweep). nullopt = no overlap.
  std::optional<Tick> latest_blocking_end(Tick begin, Tick end) const;

  /// Reference implementation of the same query via a full linear sweep.
  /// Kept for the equivalence suite (SchedulerConfig::linear_reference_scan).
  std::optional<Tick> latest_blocking_end_linear(Tick begin, Tick end) const;

  /// Drops every interval owned by `id`.
  void erase_owner(VehicleId id);

  /// Compaction: drops every interval with end < t (expired reservations).
  void erase_end_before(Tick t);

  void clear();

  std::size_t size() const { return intervals_.size(); }
  bool empty() const { return intervals_.empty(); }
  const std::vector<Interval>& intervals() const { return intervals_; }

  /// Serializes the interval list in stored (begin-sorted, insertion-stable)
  /// order; restore reproduces the exact vector and rebuilds the prefix
  /// maximum. Returns false on malformed input.
  void checkpoint_save(ByteWriter& w) const;
  bool checkpoint_restore(ByteReader& r);

 private:
  /// Recomputes prefix_max_end_[from..] after a mutation.
  void rebuild_prefix_max(std::size_t from);

  std::vector<Interval> intervals_;  ///< sorted by begin (insertion-stable)
  /// prefix_max_end_[i] = max(intervals_[0..i].end).
  std::vector<Tick> prefix_max_end_;
};

}  // namespace nwade::aim
