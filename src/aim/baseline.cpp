#include "aim/baseline.h"

#include <cassert>

namespace nwade::aim {

TrafficLightScheduler::TrafficLightScheduler(const traffic::Intersection& intersection,
                                             TrafficLightConfig config)
    : intersection_(intersection),
      config_(config),
      cycle_ms_(static_cast<Duration>(intersection.leg_count()) *
                (config.green_ms + config.clearance_ms)) {}

bool TrafficLightScheduler::is_green(int leg, Tick t) const {
  if (t < 0) return false;
  const Duration slot = config_.green_ms + config_.clearance_ms;
  const Tick phase = t % cycle_ms_;
  const Tick leg_start = static_cast<Tick>(leg) * slot;
  return phase >= leg_start && phase < leg_start + config_.green_ms;
}

Tick TrafficLightScheduler::next_green_at(int leg, Tick t) const {
  if (is_green(leg, t)) return t;
  const Duration slot = config_.green_ms + config_.clearance_ms;
  const Tick leg_start = static_cast<Tick>(leg) * slot;
  const Tick cycle_base = (t / cycle_ms_) * cycle_ms_;
  Tick candidate = cycle_base + leg_start;
  while (candidate < t) candidate += cycle_ms_;
  return candidate;
}

TravelPlan TrafficLightScheduler::schedule(VehicleId id, int route_id,
                                           const traffic::VehicleTraits& traits,
                                           Tick now, double /*initial_speed_mps*/) {
  const traffic::Route& route = intersection_.route(route_id);
  const double limit = intersection_.config().limits.speed_limit_mps;
  const int leg = route.entry_leg;

  Tick earliest = now + seconds_to_ticks(route.core_begin / limit);
  // Headway behind the previous vehicle from this leg.
  const auto it = last_entry_per_leg_.find(leg);
  if (it != last_entry_per_leg_.end()) {
    earliest = std::max(earliest, it->second + config_.service_headway_ms);
  }
  const Tick core_entry = next_green_at(leg, earliest);
  last_entry_per_leg_[leg] = core_entry;

  return make_profile_plan(intersection_, id, route_id, traits, now, 0.0, core_entry,
                           config_.min_cruise_mps);
}

void TrafficLightScheduler::release_before(Tick /*t*/) {
  // The baseline only tracks one tick per leg; nothing to release.
}

}  // namespace nwade::aim
