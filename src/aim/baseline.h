// Fixed-cycle traffic-light baseline.
//
// Used by the throughput benchmark (Fig. 8 context) and the ablation suite as
// the pre-AIM comparator: each entry leg gets a green window in rotation; a
// vehicle may only enter the core during its leg's green, and consecutive
// vehicles from one leg are separated by a fixed service headway.
#pragma once

#include <map>

#include "aim/scheduler.h"

namespace nwade::aim {

struct TrafficLightConfig {
  Duration green_ms{12000};
  /// All-red clearance between phases.
  Duration clearance_ms{3000};
  /// Minimum headway between two vehicles of the same leg entering the core.
  Duration service_headway_ms{2200};
  double min_cruise_mps{4.0};
};

/// Signalized baseline implementing the common Scheduler interface.
class TrafficLightScheduler final : public Scheduler {
 public:
  TrafficLightScheduler(const traffic::Intersection& intersection,
                        TrafficLightConfig config = {});

  TravelPlan schedule(VehicleId id, int route_id,
                      const traffic::VehicleTraits& traits, Tick now,
                      double initial_speed_mps) override;

  void release_before(Tick t) override;

  /// Full cycle duration: legs * (green + clearance).
  Duration cycle_ms() const { return cycle_ms_; }

  /// True when leg `leg` has green at time `t`.
  bool is_green(int leg, Tick t) const;

 private:
  /// Earliest tick >= t during leg's green (entering within the green window).
  Tick next_green_at(int leg, Tick t) const;

  const traffic::Intersection& intersection_;
  TrafficLightConfig config_;
  Duration cycle_ms_;
  std::map<int, Tick> last_entry_per_leg_;
};

}  // namespace nwade::aim
