#include "traffic/intersection.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace nwade::traffic {

using geom::Path;
using geom::Vec2;

namespace {

constexpr double kPi = 3.14159265358979323846;

double deg2rad(double deg) { return deg * kPi / 180.0; }

/// Unit vector at `deg` degrees (0 = +x, CCW positive).
Vec2 unit(double deg) { return Vec2::from_polar(1.0, deg2rad(deg)); }

/// Clockwise perpendicular: the "right-hand side" of travel direction d.
Vec2 right_of(Vec2 d) { return {d.y, -d.x}; }

/// Normalizes an angle difference into (0, 360].
double ccw_span(double from_deg, double to_deg) {
  double span = std::fmod(to_deg - from_deg, 360.0);
  if (span <= 0) span += 360.0;
  return span;
}

/// Helper that accumulates route pieces and records the core span.
/// Piece 0 is the approach leg; the last piece is the exit leg; everything in
/// between is conflict-relevant "core".
Route assemble_route(int id, int entry_leg, int exit_leg, Turn turn,
                     const std::vector<Path>& pieces) {
  assert(pieces.size() >= 3);
  Route r;
  r.id = id;
  r.entry_leg = entry_leg;
  r.exit_leg = exit_leg;
  r.turn = turn;
  Path full = pieces[0];
  for (std::size_t i = 1; i < pieces.size(); ++i) full = full.joined(pieces[i]);
  r.core_begin = pieces[0].length();
  double core_len = 0;
  for (std::size_t i = 1; i + 1 < pieces.size(); ++i) core_len += pieces[i].length();
  r.core_end = r.core_begin + core_len;
  r.path = std::move(full);
  return r;
}

/// Common lane-placement parameters shared by the cross-style builders.
struct LegFrame {
  Vec2 u;       ///< unit vector from centre toward the leg
  Vec2 d_in;    ///< inbound direction of travel (= -u)
  Vec2 r_in;    ///< unit offset to the right of inbound travel
};

LegFrame leg_frame(double leg_deg) {
  LegFrame f;
  f.u = unit(leg_deg);
  f.d_in = f.u * -1.0;
  f.r_in = right_of(f.d_in);
  return f;
}

/// Inbound lane centre at radius `r` from the junction centre.
/// `lane` counts from the road centreline outward (0 = leftmost inbound).
Vec2 inbound_point(const LegFrame& f, double r, double lane, double w) {
  return f.u * r + f.r_in * (w * (0.5 + lane));
}

/// Outbound lane centre at radius `r` (lane 0 = innermost outbound).
Vec2 outbound_point(const LegFrame& f, double r, double lane, double w) {
  const Vec2 d_out = f.u;
  return f.u * r + right_of(d_out) * (w * (0.5 + lane));
}

/// Lane index for a movement on a three-lane approach.
double lane_for_turn(Turn t) {
  switch (t) {
    case Turn::kLeft: return 0;
    case Turn::kStraight: return 1;
    case Turn::kRight: return 2;
  }
  return 1;
}

// ---------------------------------------------------------------------------
// 4-way cross (also the base shape for CFI lanes that are not displaced).
// ---------------------------------------------------------------------------
std::vector<Route> build_cross4(const IntersectionConfig& cfg) {
  const double legs[] = {0, 90, 180, 270};
  const double w = cfg.lane_width_m;
  const double rc = 26.0;  // stop-line radius
  std::vector<Route> routes;
  int id = 0;
  for (int k = 0; k < 4; ++k) {
    const LegFrame in = leg_frame(legs[k]);
    for (Turn turn : {Turn::kLeft, Turn::kStraight, Turn::kRight}) {
      const int exit_leg =
          (k + (turn == Turn::kRight ? 1 : turn == Turn::kStraight ? 2 : 3)) % 4;
      const LegFrame out = leg_frame(legs[exit_leg]);
      const double lane = lane_for_turn(turn);
      const Vec2 stop = inbound_point(in, rc, lane, w);
      const Vec2 spawn = stop + in.u * cfg.approach_length_m;
      const Vec2 exit_pt = outbound_point(out, rc, 0, w);
      const Vec2 exit_end = exit_pt + out.u * cfg.exit_length_m;
      const double ctrl = rc * 0.8;
      routes.push_back(assemble_route(
          id++, k, exit_leg, turn,
          {geom::make_line(spawn, stop),
           geom::make_bezier(stop, stop + in.d_in * ctrl, exit_pt - out.u * ctrl,
                             exit_pt),
           geom::make_line(exit_pt, exit_end)}));
    }
  }
  return routes;
}

// ---------------------------------------------------------------------------
// 3-way roundabout: single-lane CCW ring; each leg reaches the other two.
// ---------------------------------------------------------------------------
std::vector<Route> build_roundabout3(const IntersectionConfig& cfg) {
  const double legs[] = {0, 120, 240};
  const double w = cfg.lane_width_m;
  const double r_ring = 16.0;
  const double rc = 30.0;  // yield-line radius
  std::vector<Route> routes;
  int id = 0;
  for (int k = 0; k < 3; ++k) {
    const LegFrame in = leg_frame(legs[k]);
    for (int step : {1, 2}) {  // 1 = next leg CCW (right-ish), 2 = far leg (left-ish)
      const int exit_leg = (k + step) % 3;
      const Turn turn = (step == 1) ? Turn::kRight : Turn::kLeft;
      const LegFrame out = leg_frame(legs[exit_leg]);

      const Vec2 stop = inbound_point(in, rc, 0, w);
      const Vec2 spawn = stop + in.u * cfg.approach_length_m;
      const double a_on = legs[k] + 25.0;   // merge onto ring just CCW of the leg
      const double a_off = legs[exit_leg] - 25.0;
      const Vec2 ring_on = Vec2::from_polar(r_ring, deg2rad(a_on));
      const Vec2 ring_off = Vec2::from_polar(r_ring, deg2rad(a_off));
      // CCW ring tangent at angle a: (-sin a, cos a).
      const Vec2 tan_on = Vec2{-std::sin(deg2rad(a_on)), std::cos(deg2rad(a_on))};
      const Vec2 tan_off = Vec2{-std::sin(deg2rad(a_off)), std::cos(deg2rad(a_off))};

      const Vec2 exit_pt = outbound_point(out, rc, 0, w);
      const Vec2 exit_end = exit_pt + out.u * cfg.exit_length_m;

      const double span = ccw_span(a_on, a_off);
      const int arc_segments = std::max(6, static_cast<int>(span / 10.0));

      routes.push_back(assemble_route(
          id++, k, exit_leg, turn,
          {geom::make_line(spawn, stop),
           geom::make_bezier(stop, stop + in.d_in * 7.0, ring_on - tan_on * 7.0,
                             ring_on),
           geom::make_arc({0, 0}, r_ring, deg2rad(a_on), deg2rad(a_on + span),
                          arc_segments),
           geom::make_bezier(ring_off, ring_off + tan_off * 7.0,
                             exit_pt - out.u * 7.0, exit_pt),
           geom::make_line(exit_pt, exit_end)}));
    }
  }
  return routes;
}

// ---------------------------------------------------------------------------
// 5-way irregular: legs at uneven angles, every leg connects to every other.
// ---------------------------------------------------------------------------
std::vector<Route> build_irregular5(const IntersectionConfig& cfg) {
  const double legs[] = {0, 70, 150, 230, 300};
  const double w = cfg.lane_width_m;
  const double rc = 30.0;
  std::vector<Route> routes;
  int id = 0;
  for (int k = 0; k < 5; ++k) {
    const LegFrame in = leg_frame(legs[k]);
    // Classify each exit by its CCW offset: small = right, large = left.
    for (int j = 0; j < 5; ++j) {
      if (j == k) continue;
      const double span = ccw_span(legs[k], legs[j]);
      Turn turn;
      if (span <= 120.0) {
        turn = Turn::kRight;
      } else if (span < 240.0) {
        turn = Turn::kStraight;
      } else {
        turn = Turn::kLeft;
      }
      const LegFrame out = leg_frame(legs[j]);
      const double lane = lane_for_turn(turn);
      const Vec2 stop = inbound_point(in, rc, lane, w);
      const Vec2 spawn = stop + in.u * cfg.approach_length_m;
      const Vec2 exit_pt = outbound_point(out, rc, 0, w);
      const Vec2 exit_end = exit_pt + out.u * cfg.exit_length_m;
      const double ctrl = rc * 0.8;
      routes.push_back(assemble_route(
          id++, k, j, turn,
          {geom::make_line(spawn, stop),
           geom::make_bezier(stop, stop + in.d_in * ctrl, exit_pt - out.u * ctrl,
                             exit_pt),
           geom::make_line(exit_pt, exit_end)}));
    }
  }
  return routes;
}

// ---------------------------------------------------------------------------
// 4-way continuous flow intersection: left turns cross the opposing inbound
// lanes ~55 m upstream and approach the junction on a displaced lane outside
// them, so the core left-vs-opposing-through conflict disappears and is
// replaced by a short upstream crossover conflict.
// ---------------------------------------------------------------------------
std::vector<Route> build_cfi4(const IntersectionConfig& cfg) {
  const double legs[] = {0, 90, 180, 270};
  const double w = cfg.lane_width_m;
  const double rc = 26.0;
  const double cross_far = rc + 55.0;   // crossover start radius
  const double cross_near = rc + 25.0;  // crossover end radius
  std::vector<Route> routes;
  int id = 0;
  for (int k = 0; k < 4; ++k) {
    const LegFrame in = leg_frame(legs[k]);
    for (Turn turn : {Turn::kLeft, Turn::kStraight, Turn::kRight}) {
      const int exit_leg =
          (k + (turn == Turn::kRight ? 1 : turn == Turn::kStraight ? 2 : 3)) % 4;
      const LegFrame out = leg_frame(legs[exit_leg]);
      const Vec2 exit_pt = outbound_point(out, rc, 0, w);
      const Vec2 exit_end = exit_pt + out.u * cfg.exit_length_m;

      if (turn == Turn::kLeft) {
        // Displaced lane: one lane-width to the left of the opposing inbound
        // lanes (which sit at offsets -0.5w .. -2.5w on this leg's frame).
        const double displaced = -3.5;  // in units of (0.5 + lane), see below
        const Vec2 a1 = inbound_point(in, cross_far, 0, w);
        const Vec2 a2 = in.u * cross_near + in.r_in * (w * displaced);
        const Vec2 stop = in.u * rc + in.r_in * (w * displaced);
        const Vec2 spawn = a1 + in.u * cfg.approach_length_m;
        routes.push_back(assemble_route(
            id++, k, exit_leg, turn,
            {geom::make_line(spawn, a1),
             // Crossover: sweep across the opposing lanes.
             geom::make_bezier(a1, a1 + in.d_in * 12.0, a2 - in.d_in * 12.0, a2),
             geom::make_line(a2, stop),
             // Left turn from the displaced position; tight control distance
             // keeps the curve outside the opposing inbound lanes.
             geom::make_bezier(stop, stop + in.d_in * 10.0, exit_pt - out.u * 10.0,
                               exit_pt),
             geom::make_line(exit_pt, exit_end)}));
      } else {
        // Straight/right: standard shape, but the core starts at the
        // crossover radius so crossover conflicts are detected.
        const double lane = lane_for_turn(turn);
        const Vec2 a1 = inbound_point(in, cross_far, lane, w);
        const Vec2 stop = inbound_point(in, rc, lane, w);
        const Vec2 spawn = a1 + in.u * cfg.approach_length_m;
        const double ctrl = rc * 0.8;
        routes.push_back(assemble_route(
            id++, k, exit_leg, turn,
            {geom::make_line(spawn, a1), geom::make_line(a1, stop),
             geom::make_bezier(stop, stop + in.d_in * ctrl, exit_pt - out.u * ctrl,
                               exit_pt),
             geom::make_line(exit_pt, exit_end)}));
      }
    }
  }
  return routes;
}

// ---------------------------------------------------------------------------
// 4-way diverging diamond interchange. Legs 0 (east) and 2 (west) form the
// arterial whose through movements swap to the left side between two
// crossovers; legs 1 (north) and 3 (south) are ramp-style minors with only
// left and right turns.
// ---------------------------------------------------------------------------
std::vector<Route> build_ddi4(const IntersectionConfig& cfg) {
  const double legs[] = {0, 90, 180, 270};
  const double w = cfg.lane_width_m;
  const double rc = 26.0;
  const double cross_far = rc + 55.0;
  const double cross_near = rc + 25.0;
  std::vector<Route> routes;
  int id = 0;

  for (int k : {0, 2}) {  // arterial legs
    const LegFrame in = leg_frame(legs[k]);
    for (Turn turn : {Turn::kLeft, Turn::kStraight, Turn::kRight}) {
      const int exit_leg =
          (k + (turn == Turn::kRight ? 1 : turn == Turn::kStraight ? 2 : 3)) % 4;
      const LegFrame out = leg_frame(legs[exit_leg]);
      const Vec2 exit_pt = outbound_point(out, rc, 0, w);
      const Vec2 exit_end = exit_pt + out.u * cfg.exit_length_m;

      if (turn == Turn::kRight) {
        // Rights depart before the first crossover, from the right-hand lane.
        const Vec2 a1 = inbound_point(in, cross_far + 10.0, 1, w);
        const Vec2 spawn = a1 + in.u * cfg.approach_length_m;
        routes.push_back(assemble_route(
            id++, k, exit_leg, turn,
            {geom::make_line(spawn, a1),
             geom::make_bezier(a1, a1 + in.d_in * 25.0, exit_pt - out.u * 25.0,
                               exit_pt),
             geom::make_line(exit_pt, exit_end)}));
        continue;
      }

      // Straight and left: cross to the displaced (left) side first.
      const Vec2 a1 = inbound_point(in, cross_far, 0, w);
      const Vec2 a2 = in.u * cross_near + in.r_in * (-0.5 * w);  // left side
      const Vec2 spawn = a1 + in.u * cfg.approach_length_m;
      const Path approach = geom::make_line(spawn, a1);
      const Path cross_in =
          geom::make_bezier(a1, a1 + in.d_in * 12.0, a2 - in.d_in * 12.0, a2);

      if (turn == Turn::kLeft) {
        // Left from the displaced side: no opposing-through conflict.
        const Vec2 stop = in.u * rc + in.r_in * (-0.5 * w);
        routes.push_back(assemble_route(
            id++, k, exit_leg, turn,
            {approach, cross_in, geom::make_line(a2, stop),
             geom::make_bezier(stop, stop + in.d_in * 12.0, exit_pt - out.u * 12.0,
                               exit_pt),
             geom::make_line(exit_pt, exit_end)}));
      } else {
        // Through: displaced across the core, then swap back.
        const LegFrame of = leg_frame(legs[exit_leg]);
        // On the exit leg's frame, "displaced" is the left of the outbound
        // direction = -right_of(out.u).
        const Vec2 b2 = of.u * cross_near + right_of(of.u) * (-0.5 * w);
        const Vec2 b1 = outbound_point(of, cross_far, 0, w);
        routes.push_back(assemble_route(
            id++, k, exit_leg, turn,
            {approach, cross_in, geom::make_line(a2, b2),
             geom::make_bezier(b2, b2 + of.u * 12.0, b1 - of.u * 12.0, b1),
             geom::make_line(b1, b1 + of.u * (cfg.exit_length_m - 55.0))}));
      }
    }
  }

  for (int k : {1, 3}) {  // minor (ramp) legs: left + right only
    const LegFrame in = leg_frame(legs[k]);
    for (Turn turn : {Turn::kLeft, Turn::kRight}) {
      const int exit_leg = (k + (turn == Turn::kRight ? 1 : 3)) % 4;
      const LegFrame out = leg_frame(legs[exit_leg]);
      const double lane = turn == Turn::kRight ? 1 : 0;
      const Vec2 stop = inbound_point(in, rc, lane, w);
      const Vec2 spawn = stop + in.u * cfg.approach_length_m;
      const Vec2 exit_pt = outbound_point(out, rc, 0, w);
      const Vec2 exit_end = exit_pt + out.u * cfg.exit_length_m;
      const double ctrl = rc * 0.8;
      routes.push_back(assemble_route(
          id++, k, exit_leg, turn,
          {geom::make_line(spawn, stop),
           geom::make_bezier(stop, stop + in.d_in * ctrl, exit_pt - out.u * ctrl,
                             exit_pt),
           geom::make_line(exit_pt, exit_end)}));
    }
  }
  return routes;
}

int count_legs(IntersectionKind kind) {
  switch (kind) {
    case IntersectionKind::kRoundabout3: return 3;
    case IntersectionKind::kCross4:
    case IntersectionKind::kCfi4:
    case IntersectionKind::kDdi4: return 4;
    case IntersectionKind::kIrregular5: return 5;
  }
  return 0;
}

}  // namespace

Intersection Intersection::build(const IntersectionConfig& config) {
  Intersection ix;
  ix.config_ = config;
  ix.leg_count_ = count_legs(config.kind);
  switch (config.kind) {
    case IntersectionKind::kRoundabout3: ix.routes_ = build_roundabout3(config); break;
    case IntersectionKind::kCross4: ix.routes_ = build_cross4(config); break;
    case IntersectionKind::kIrregular5: ix.routes_ = build_irregular5(config); break;
    case IntersectionKind::kCfi4: ix.routes_ = build_cfi4(config); break;
    case IntersectionKind::kDdi4: ix.routes_ = build_ddi4(config); break;
  }
  ix.finalize();
  return ix;
}

void Intersection::finalize() {
  zone_refs_.assign(routes_.size(), {});
  // Pre-clip core sections once.
  std::vector<Path> cores;
  cores.reserve(routes_.size());
  for (const Route& r : routes_) cores.push_back(r.path.subpath(r.core_begin, r.core_end));

  for (std::size_t i = 0; i < routes_.size(); ++i) {
    for (std::size_t j = i + 1; j < routes_.size(); ++j) {
      const auto zones = geom::find_conflicts(cores[i], cores[j],
                                              config_.conflict_clearance_m, 1.0);
      for (const geom::ConflictZone& cz : zones) {
        Zone z;
        z.id = static_cast<int>(zones_.size());
        z.route_a = static_cast<int>(i);
        z.a_begin = routes_[i].core_begin + cz.a_begin;
        z.a_end = routes_[i].core_begin + cz.a_end;
        z.route_b = static_cast<int>(j);
        z.b_begin = routes_[j].core_begin + cz.b_begin;
        z.b_end = routes_[j].core_begin + cz.b_end;
        zones_.push_back(z);
        zone_refs_[i].push_back(ZoneRef{z.id, z.a_begin, z.a_end});
        zone_refs_[j].push_back(ZoneRef{z.id, z.b_begin, z.b_end});
      }
    }
  }
}

std::vector<int> Intersection::routes_from_leg(int leg) const {
  std::vector<int> out;
  for (const Route& r : routes_) {
    if (r.entry_leg == leg) out.push_back(r.id);
  }
  return out;
}

std::vector<double> Intersection::turn_weights(int leg) const {
  const std::vector<int> ids = routes_from_leg(leg);
  // Paper split: 25% left, 50% straight, 25% right.
  const auto share = [](Turn t) {
    switch (t) {
      case Turn::kLeft: return 0.25;
      case Turn::kStraight: return 0.50;
      case Turn::kRight: return 0.25;
    }
    return 0.0;
  };
  // Count routes per movement, split each movement's share among its routes,
  // then renormalize over the movements this leg actually has.
  int counts[3] = {0, 0, 0};
  for (int id : ids) counts[static_cast<int>(routes_[id].turn)]++;
  double total = 0;
  for (int t = 0; t < 3; ++t) {
    if (counts[t] > 0) total += share(static_cast<Turn>(t));
  }
  std::vector<double> weights;
  weights.reserve(ids.size());
  for (int id : ids) {
    const Turn t = routes_[id].turn;
    weights.push_back(share(t) / total / counts[static_cast<int>(t)]);
  }
  return weights;
}

}  // namespace nwade::traffic
