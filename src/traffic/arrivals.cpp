#include "traffic/arrivals.h"

#include <algorithm>
#include <cassert>

namespace nwade::traffic {

ArrivalGenerator::ArrivalGenerator(const Intersection& intersection,
                                   double vehicles_per_minute, Rng rng)
    : intersection_(intersection),
      rate_per_ms_(vehicles_per_minute / 60000.0),
      rng_(rng) {
  assert(vehicles_per_minute > 0);
}

std::vector<Arrival> ArrivalGenerator::generate(Duration duration_ms) {
  // Cache per-leg route lists and weights.
  const int legs = intersection_.leg_count();
  std::vector<std::vector<int>> leg_routes(static_cast<std::size_t>(legs));
  std::vector<std::vector<double>> leg_weights(static_cast<std::size_t>(legs));
  for (int leg = 0; leg < legs; ++leg) {
    leg_routes[static_cast<std::size_t>(leg)] = intersection_.routes_from_leg(leg);
    leg_weights[static_cast<std::size_t>(leg)] = intersection_.turn_weights(leg);
  }

  std::vector<Arrival> arrivals;
  const double limit = intersection_.config().limits.speed_limit_mps;
  // Homogeneous Poisson process: exponential inter-arrival gaps.
  double t = rng_.exponential(rate_per_ms_);
  while (t < static_cast<double>(duration_ms)) {
    const auto leg = static_cast<std::size_t>(rng_.uniform_int(0, legs - 1));
    const std::size_t pick = rng_.weighted_index(leg_weights[leg]);
    Arrival a;
    a.time = static_cast<Tick>(t);
    a.route_id = leg_routes[leg][pick];
    a.traits.brand = static_cast<std::uint8_t>(rng_.uniform_int(0, 20));
    a.traits.model = static_cast<std::uint8_t>(rng_.uniform_int(0, 40));
    a.traits.color = static_cast<std::uint8_t>(rng_.uniform_int(0, 12));
    a.traits.length_m = rng_.uniform(4.0, 5.2);
    // Vehicles reach the communication zone near cruise speed.
    a.initial_speed_mps = rng_.uniform(0.7 * limit, limit);
    arrivals.push_back(a);
    t += rng_.exponential(rate_per_ms_);
  }
  return arrivals;
}

}  // namespace nwade::traffic
