// Vehicle-facing value types: turning movements, static traits ("char" in the
// paper's travel-plan tuple), and dynamic status ("status").
#pragma once

#include <array>
#include <cassert>
#include <string>
#include <vector>

#include "geom/vec2.h"
#include "util/bytes.h"
#include "util/types.h"

namespace nwade::traffic {

/// Turning movement through the intersection.
enum class Turn : std::uint8_t { kLeft = 0, kStraight = 1, kRight = 2 };

inline const char* turn_name(Turn t) {
  switch (t) {
    case Turn::kLeft: return "left";
    case Turn::kStraight: return "straight";
    case Turn::kRight: return "right";
  }
  return "?";
}

/// Static, externally observable vehicle characteristics. The paper uses
/// these ("car brand, model, and color") to match incident reports and
/// evacuation alerts to physical vehicles.
struct VehicleTraits {
  std::uint8_t brand{0};
  std::uint8_t model{0};
  std::uint8_t color{0};
  double length_m{4.5};

  bool operator==(const VehicleTraits&) const = default;

  void serialize(ByteWriter& w) const {
    w.u8(brand);
    w.u8(model);
    w.u8(color);
    w.f64(length_m);
  }
  static VehicleTraits deserialize(ByteReader& r) {
    VehicleTraits t;
    t.brand = r.u8();
    t.model = r.u8();
    t.color = r.u8();
    t.length_m = r.f64();
    return t;
  }
};

/// Dynamic vehicle state: what sensors observe and what plans predict.
struct VehicleStatus {
  geom::Vec2 position;
  double speed_mps{0};
  double heading_rad{0};

  void serialize(ByteWriter& w) const {
    w.f64(position.x);
    w.f64(position.y);
    w.f64(speed_mps);
    w.f64(heading_rad);
  }
  static VehicleStatus deserialize(ByteReader& r) {
    VehicleStatus s;
    s.position.x = r.f64();
    s.position.y = r.f64();
    s.speed_mps = r.f64();
    s.heading_rad = r.f64();
    return s;
  }
};

/// Kinematic limits (paper defaults: 50 mph, 2 m/s^2 accel, 3 m/s^2 decel).
struct KinematicLimits {
  double speed_limit_mps{mph_to_mps(50.0)};
  double max_accel_mps2{2.0};
  double max_decel_mps2{3.0};
};

/// Structure-of-arrays storage for the per-vehicle kinematic hot state the
/// world's physics/watch/gap-audit phases stream every step. One row per
/// managed vehicle, appended in spawn (= id) order and never erased —
/// exited vehicles flip `active` to 0 so row indices stay stable for the
/// lifetime of a run. Vehicle nodes bind references into these columns, so
/// the vectors must NEVER reallocate after the first row is handed out:
/// the owner reserves the full arrival count up front and add_row asserts
/// spare capacity.
struct VehicleColumns {
  std::vector<double> s;            ///< arc-length progress along the route path (m)
  std::vector<double> v;            ///< speed (m/s)
  std::vector<double> lateral;      ///< signed lateral offset from the path (m)
  std::vector<std::uint32_t> route; ///< route index into the intersection's route table
  std::vector<std::uint64_t> id;    ///< vehicle id backing the row
  std::vector<std::uint8_t> active; ///< 1 until the vehicle exits, then 0

  std::size_t size() const { return s.size(); }

  void reserve(std::size_t rows) {
    s.reserve(rows);
    v.reserve(rows);
    lateral.reserve(rows);
    route.reserve(rows);
    id.reserve(rows);
    active.reserve(rows);
  }

  /// Appends a zeroed row and returns its index. Requires spare capacity
  /// (reserve() must cover every row the run will ever add): growth would
  /// reallocate and dangle the references nodes hold into the columns.
  std::size_t add_row(std::uint64_t vehicle_id, std::uint32_t route_index) {
    assert(s.size() < s.capacity() && "VehicleColumns::reserve must cover all rows");
    const std::size_t row = s.size();
    s.push_back(0.0);
    v.push_back(0.0);
    lateral.push_back(0.0);
    route.push_back(route_index);
    id.push_back(vehicle_id);
    active.push_back(1);
    return row;
  }
};

}  // namespace nwade::traffic
