// Intersection geometry: the five layouts the paper evaluates, reduced to the
// structure scheduling needs — one Path per (entry leg, movement) plus the
// conflict zones between every pair of paths.
//
//   (i)   3-way roundabout
//   (ii)  4-way cross
//   (iii) 5-way irregular intersection
//   (iv)  4-way continuous flow intersection (CFI): left turns cross the
//         opposing through lanes at an upstream crossover, removing the
//         classic left-vs-opposing-through conflict from the core
//   (v)   4-way diverging diamond interchange (DDI): the arterial's through
//         movements swap to the left side between two crossovers
//
// Conflicts are found numerically by sampling each route's "core" span (the
// part inside the conflict-relevant area) against every other route, so the
// special crossover conflicts of CFI/DDI emerge from the geometry instead of
// being hand-coded.
#pragma once

#include <string>
#include <vector>

#include "geom/path.h"
#include "traffic/types.h"
#include "util/types.h"

namespace nwade::traffic {

enum class IntersectionKind : std::uint8_t {
  kRoundabout3 = 0,   ///< 3-way roundabout
  kCross4 = 1,        ///< 4-way cross
  kIrregular5 = 2,    ///< 5-way irregular
  kCfi4 = 3,          ///< 4-way continuous flow intersection
  kDdi4 = 4,          ///< 4-way diverging diamond interchange
};

inline const char* intersection_name(IntersectionKind k) {
  switch (k) {
    case IntersectionKind::kRoundabout3: return "3-way roundabout";
    case IntersectionKind::kCross4: return "4-way cross";
    case IntersectionKind::kIrregular5: return "5-way irregular";
    case IntersectionKind::kCfi4: return "4-way CFI";
    case IntersectionKind::kDdi4: return "4-way DDI";
  }
  return "?";
}

/// All five kinds, for parameter sweeps.
inline constexpr IntersectionKind kAllIntersectionKinds[] = {
    IntersectionKind::kRoundabout3, IntersectionKind::kCross4,
    IntersectionKind::kIrregular5, IntersectionKind::kCfi4,
    IntersectionKind::kDdi4};

struct IntersectionConfig {
  IntersectionKind kind{IntersectionKind::kCross4};
  double lane_width_m{3.5};
  /// Distance from the spawn point (edge of the communication zone) to the
  /// start of the conflict-relevant area.
  double approach_length_m{250.0};
  double exit_length_m{120.0};
  /// Centre-to-centre distance below which two sampled path points conflict.
  double conflict_clearance_m{3.0};
  KinematicLimits limits;
};

/// One drivable route: entry leg + movement -> exit leg, as a full path from
/// spawn to the end of the exit leg.
struct Route {
  int id{0};
  int entry_leg{0};
  int exit_leg{0};
  Turn turn{Turn::kStraight};
  geom::Path path;
  /// Conflict-relevant span (arc length along `path`). Conflicts with other
  /// routes can only occur inside [core_begin, core_end].
  double core_begin{0};
  double core_end{0};
};

/// A shared resource: the region where two routes come within clearance.
/// `a`/`b` are route ids; the windows are arc-length ranges on each.
struct Zone {
  int id{0};
  int route_a{0};
  double a_begin{0}, a_end{0};
  int route_b{0};
  double b_begin{0}, b_end{0};
};

/// Reference from a route to one of its zones.
struct ZoneRef {
  int zone_id{0};
  double begin{0};  ///< window on *this* route
  double end{0};
};

/// Immutable intersection model shared by the scheduler and every vehicle.
class Intersection {
 public:
  static Intersection build(const IntersectionConfig& config);

  const IntersectionConfig& config() const { return config_; }
  IntersectionKind kind() const { return config_.kind; }
  int leg_count() const { return leg_count_; }

  const std::vector<Route>& routes() const { return routes_; }
  const Route& route(int id) const { return routes_.at(static_cast<std::size_t>(id)); }

  const std::vector<Zone>& zones() const { return zones_; }

  /// Zones touching a given route, with windows expressed on that route.
  const std::vector<ZoneRef>& zones_for(int route_id) const {
    return zone_refs_.at(static_cast<std::size_t>(route_id));
  }

  /// Routes departing from a given entry leg.
  std::vector<int> routes_from_leg(int leg) const;

  /// Turn-movement sampling weights for a given entry leg (sums to 1).
  /// Implements the paper's 25/50/25 left/straight/right split, generalized
  /// to legs that lack some movements.
  std::vector<double> turn_weights(int leg) const;

 private:
  void finalize();  // computes zones from routes

  IntersectionConfig config_;
  int leg_count_{0};
  std::vector<Route> routes_;
  std::vector<Zone> zones_;
  std::vector<std::vector<ZoneRef>> zone_refs_;
};

}  // namespace nwade::traffic
