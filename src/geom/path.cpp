#include "geom/path.h"

#include <algorithm>
#include <cassert>

namespace nwade::geom {

namespace {
constexpr double kEps = 1e-9;
}

Path::Path(std::vector<Vec2> points) {
  points_.reserve(points.size());
  for (const Vec2& p : points) {
    if (!points_.empty() && (p - points_.back()).norm() < kEps) continue;
    points_.push_back(p);
  }
  if (points_.size() < 2) {
    points_.clear();
    return;
  }
  cumulative_.resize(points_.size());
  cumulative_[0] = 0;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    cumulative_[i] = cumulative_[i - 1] + (points_[i] - points_[i - 1]).norm();
  }
}

std::size_t Path::segment_at(double s) const {
  // Index of the segment [points_[i], points_[i+1]] containing arc length s.
  const auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), s);
  const std::size_t idx = static_cast<std::size_t>(it - cumulative_.begin());
  if (idx == 0) return 0;
  return std::min(idx - 1, points_.size() - 2);
}

Vec2 Path::point_at(double s) const {
  if (empty()) return {};
  s = std::clamp(s, 0.0, length());
  const std::size_t i = segment_at(s);
  const double seg_len = cumulative_[i + 1] - cumulative_[i];
  const double t = seg_len > kEps ? (s - cumulative_[i]) / seg_len : 0.0;
  return lerp(points_[i], points_[i + 1], t);
}

Vec2 Path::tangent_at(double s) const {
  if (empty()) return {};
  s = std::clamp(s, 0.0, length());
  const std::size_t i = segment_at(s);
  return (points_[i + 1] - points_[i]).normalized();
}

std::pair<double, double> Path::project(Vec2 p) const {
  if (empty()) return {p.norm(), 0.0};
  double best_dist = std::numeric_limits<double>::max();
  double best_s = 0;
  for (std::size_t i = 0; i + 1 < points_.size(); ++i) {
    const Vec2 a = points_[i];
    const Vec2 b = points_[i + 1];
    const Vec2 ab = b - a;
    const double len_sq = ab.norm_sq();
    const double t = len_sq > kEps ? std::clamp((p - a).dot(ab) / len_sq, 0.0, 1.0) : 0.0;
    const Vec2 closest = a + ab * t;
    const double d = (p - closest).norm();
    if (d < best_dist) {
      best_dist = d;
      best_s = cumulative_[i] + std::sqrt(len_sq) * t;
    }
  }
  return {best_dist, best_s};
}

Path Path::joined(const Path& next) const {
  std::vector<Vec2> pts = points_;
  pts.insert(pts.end(), next.points_.begin(), next.points_.end());
  return Path(std::move(pts));
}

std::vector<Vec2> Path::sample(double step) const {
  assert(step > 0);
  std::vector<Vec2> out;
  if (empty()) return out;
  for (double s = 0; s < length(); s += step) out.push_back(point_at(s));
  out.push_back(point_at(length()));
  return out;
}

Path Path::subpath(double s0, double s1) const {
  if (empty()) return Path();
  s0 = std::clamp(s0, 0.0, length());
  s1 = std::clamp(s1, 0.0, length());
  if (s1 - s0 < kEps) return Path();
  std::vector<Vec2> pts;
  pts.push_back(point_at(s0));
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (cumulative_[i] > s0 && cumulative_[i] < s1) pts.push_back(points_[i]);
  }
  pts.push_back(point_at(s1));
  return Path(std::move(pts));
}

Path make_line(Vec2 a, Vec2 b) { return Path({a, b}); }

Path make_arc(Vec2 center, double radius, double a0, double a1, int segments) {
  assert(segments >= 2);
  std::vector<Vec2> pts;
  pts.reserve(static_cast<std::size_t>(segments) + 1);
  for (int i = 0; i <= segments; ++i) {
    const double t = static_cast<double>(i) / segments;
    const double ang = a0 + (a1 - a0) * t;
    pts.push_back(center + Vec2::from_polar(radius, ang));
  }
  return Path(std::move(pts));
}

Path make_bezier(Vec2 p0, Vec2 p1, Vec2 p2, Vec2 p3, int segments) {
  assert(segments >= 2);
  std::vector<Vec2> pts;
  pts.reserve(static_cast<std::size_t>(segments) + 1);
  for (int i = 0; i <= segments; ++i) {
    const double t = static_cast<double>(i) / segments;
    const double u = 1.0 - t;
    const Vec2 p = p0 * (u * u * u) + p1 * (3 * u * u * t) + p2 * (3 * u * t * t) +
                   p3 * (t * t * t);
    pts.push_back(p);
  }
  return Path(std::move(pts));
}

std::vector<ConflictZone> find_conflicts(const Path& a, const Path& b,
                                         double clearance, double step) {
  std::vector<ConflictZone> zones;
  if (a.empty() || b.empty()) return zones;

  // Sample path A; for each sample, project onto B. Merge consecutive
  // in-conflict samples into zones. Clearance is centre-to-centre.
  bool in_zone = false;
  ConflictZone cur{};
  double b_lo = 0, b_hi = 0;
  const double len = a.length();
  for (double s = 0;; s += step) {
    const bool last = s >= len;
    const double sa = last ? len : s;
    const auto [dist, sb] = b.project(a.point_at(sa));
    const bool conflict = dist <= clearance;
    if (conflict && !in_zone) {
      in_zone = true;
      cur.a_begin = sa;
      b_lo = b_hi = sb;
    }
    if (conflict) {
      cur.a_end = sa;
      b_lo = std::min(b_lo, sb);
      b_hi = std::max(b_hi, sb);
    }
    if (!conflict && in_zone) {
      in_zone = false;
      cur.b_begin = b_lo;
      cur.b_end = b_hi;
      zones.push_back(cur);
      cur = ConflictZone{};
    }
    if (last) break;
  }
  if (in_zone) {
    cur.b_begin = b_lo;
    cur.b_end = b_hi;
    zones.push_back(cur);
  }
  return zones;
}

}  // namespace nwade::geom
