// Arc-length parameterized paths through an intersection.
//
// A vehicle's route (approach lane -> turn curve -> exit lane) is one Path.
// Plans and deviation checks all speak in "distance along my path", so the
// path is the bridge between scheduling (1-D) and geometry (2-D).
#pragma once

#include <vector>

#include "geom/vec2.h"

namespace nwade::geom {

/// Polyline with cached cumulative arc length. Immutable after construction.
class Path {
 public:
  Path() = default;
  /// Builds from waypoints; consecutive duplicates are dropped.
  explicit Path(std::vector<Vec2> points);

  bool empty() const { return points_.size() < 2; }
  double length() const { return cumulative_.empty() ? 0.0 : cumulative_.back(); }
  const std::vector<Vec2>& points() const { return points_; }

  /// Position at arc length s; clamps s to [0, length].
  Vec2 point_at(double s) const;

  /// Unit tangent at arc length s (direction of travel).
  Vec2 tangent_at(double s) const;

  /// Heading in radians at arc length s.
  double heading_at(double s) const { return heading(tangent_at(s)); }

  /// Minimum distance from `p` to the path, and the arc length where it is
  /// attained (first of the pair = distance, second = arc length).
  std::pair<double, double> project(Vec2 p) const;

  /// Concatenates another path onto the end of this one (joining the seam).
  Path joined(const Path& next) const;

  /// Evenly spaced samples every `step` metres (including both endpoints).
  std::vector<Vec2> sample(double step) const;

  /// The portion of the path between arc lengths s0 and s1 (clamped).
  Path subpath(double s0, double s1) const;

 private:
  std::size_t segment_at(double s) const;

  std::vector<Vec2> points_;
  std::vector<double> cumulative_;  // cumulative_[i] = arc length at points_[i]
};

/// Builds a straight segment from a to b.
Path make_line(Vec2 a, Vec2 b);

/// Builds a circular arc around `center` from angle `a0` to `a1` (radians,
/// CCW when a1 > a0) with `segments` straight pieces.
Path make_arc(Vec2 center, double radius, double a0, double a1, int segments = 24);

/// Cubic Bezier flattened into `segments` pieces; used for turn curves.
Path make_bezier(Vec2 p0, Vec2 p1, Vec2 p2, Vec2 p3, int segments = 24);

/// A contiguous region where two paths come within `clearance` metres.
/// Scheduling treats each zone as a resource only one vehicle may occupy.
struct ConflictZone {
  double a_begin{0};  ///< arc-length window on path A
  double a_end{0};
  double b_begin{0};  ///< arc-length window on path B
  double b_end{0};
};

/// Finds all conflict zones between two paths by sampling every `step`
/// metres. Adjacent conflicting samples are merged into one zone.
std::vector<ConflictZone> find_conflicts(const Path& a, const Path& b,
                                         double clearance, double step = 1.0);

}  // namespace nwade::geom
