// Uniform-grid spatial index over 2-D points.
//
// The simulator's ground-truth min-gap audit, legacy car-following lookup,
// sensor queries, and the network's broadcast range scan were all all-pairs
// sweeps: O(V^2) per step once traffic gets dense. This grid buckets points
// into square cells so a radius query touches only the cells the disc
// overlaps.
//
// Equivalence contract (how the quadratic_reference flags stay honest): the
// index never answers a geometric predicate itself. `query_candidates`
// returns a *superset* of the exact in-radius set (every point whose cell
// intersects the disc) and `for_each_near_pair` visits a superset of all
// pairs closer than the cell size; callers re-apply the exact floating-point
// predicate the brute-force path uses, so indexed and quadratic runs make
// bit-identical decisions. Candidates come back in ascending insertion-index
// order, which lets callers that iterate id-sorted containers preserve their
// exact iteration order.
//
// Rebuild-per-snapshot design: points are immutable once inserted; callers
// clear() and re-insert when positions move (an O(V) rebuild is the same
// order as one all-pairs row, so rebuilding even once per query still wins).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geom/vec2.h"

namespace nwade::geom {

class SpatialHash {
 public:
  /// `cell_size` must be positive; for `for_each_near_pair` it must also be
  /// >= the caller's pairing radius (see below).
  explicit SpatialHash(double cell_size = 8.0);

  double cell_size() const { return cell_size_; }
  /// Changing the cell size clears the index (buckets are size-dependent).
  void set_cell_size(double cell_size);

  /// Empties the index but retains allocated capacity (map nodes and
  /// per-cell vectors), so a clear+reinsert rebuild over a stable working
  /// set of cells is allocation-free in the steady state.
  void clear();
  void reserve(std::size_t points);

  /// Stores a point; returns its dense insertion index (0, 1, 2, ...).
  std::size_t insert(Vec2 pos);

  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  Vec2 position(std::size_t index) const { return points_[index]; }

  /// Appends the indices of every point whose cell intersects the closed
  /// disc (center, radius) to `out`, in ascending index order. Guaranteed a
  /// superset of all stored points within `radius` of `center`; callers
  /// apply their own exact distance predicate. `radius` < 0 yields nothing.
  void query_candidates(Vec2 center, double radius,
                        std::vector<std::size_t>& out) const;

  /// Visits every unordered pair (i, j) with i < j whose cells are within
  /// one cell of each other — a superset of all pairs strictly closer than
  /// `cell_size`. Each pair is visited exactly once; visiting order is
  /// unspecified, so callers must only accumulate order-independent results
  /// (counts, minima).
  template <typename Fn>
  void for_each_near_pair(Fn&& fn) const {
    // Canonical half-neighbourhood: every unordered pair of adjacent cells
    // is enumerated from exactly one side.
    static constexpr int kHalf[4][2] = {{1, 0}, {1, 1}, {0, 1}, {-1, 1}};
    for (const auto& [key, members] : cells_) {
      // Pairs inside one cell.
      for (std::size_t a = 0; a < members.size(); ++a) {
        for (std::size_t b = a + 1; b < members.size(); ++b) {
          emit_pair(members[a], members[b], fn);
        }
      }
      const auto [cx, cy] = unpack(key);
      for (const auto& d : kHalf) {
        const auto it = cells_.find(pack(cx + d[0], cy + d[1]));
        if (it == cells_.end()) continue;
        for (const std::size_t a : members) {
          for (const std::size_t b : it->second) emit_pair(a, b, fn);
        }
      }
    }
  }

 private:
  static std::uint64_t pack(std::int64_t cx, std::int64_t cy) {
    // Bias into unsigned halves; world coordinates are metres around the
    // origin, so 32-bit cell coordinates are unreachable in practice.
    return (static_cast<std::uint64_t>(cx + 0x80000000LL) << 32) |
           static_cast<std::uint64_t>(cy + 0x80000000LL);
  }
  static std::pair<std::int64_t, std::int64_t> unpack(std::uint64_t key) {
    return {static_cast<std::int64_t>(key >> 32) - 0x80000000LL,
            static_cast<std::int64_t>(key & 0xffffffffULL) - 0x80000000LL};
  }
  std::int64_t cell_coord(double v) const;

  template <typename Fn>
  static void emit_pair(std::size_t a, std::size_t b, Fn&& fn) {
    if (a < b) {
      fn(a, b);
    } else {
      fn(b, a);
    }
  }

  double cell_size_;
  std::vector<Vec2> points_;
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> cells_;
  /// Cells currently holding >= 1 point; clear() retains empty map nodes
  /// for allocation-free rebuilds, so cells_.size() over-counts.
  std::size_t populated_cells_{0};
};

}  // namespace nwade::geom
