#include "geom/spatial_hash.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace nwade::geom {

SpatialHash::SpatialHash(double cell_size) : cell_size_(cell_size) {
  assert(cell_size_ > 0);
}

void SpatialHash::set_cell_size(double cell_size) {
  assert(cell_size > 0);
  cell_size_ = cell_size;
  clear();
}

void SpatialHash::clear() {
  // Capacity-retaining: keep the map nodes and each cell's vector buffer so
  // a steady-state rebuild (clear + re-insert every step) allocates nothing
  // once the index has seen its working set of cells. Empty retained cells
  // are invisible to queries — they contribute no candidates and no pairs —
  // and the degenerate-disc heuristic counts populated_cells_, not map
  // nodes, so decisions match a freshly constructed index exactly.
  points_.clear();
  for (auto& [key, members] : cells_) members.clear();
  populated_cells_ = 0;
}

void SpatialHash::reserve(std::size_t points) { points_.reserve(points); }

std::int64_t SpatialHash::cell_coord(double v) const {
  return static_cast<std::int64_t>(std::floor(v / cell_size_));
}

std::size_t SpatialHash::insert(Vec2 pos) {
  const std::size_t index = points_.size();
  points_.push_back(pos);
  auto& members = cells_[pack(cell_coord(pos.x), cell_coord(pos.y))];
  if (members.empty()) ++populated_cells_;
  members.push_back(index);
  return index;
}

void SpatialHash::query_candidates(Vec2 center, double radius,
                                   std::vector<std::size_t>& out) const {
  if (radius < 0 || points_.empty()) return;
  const std::int64_t x0 = cell_coord(center.x - radius);
  const std::int64_t x1 = cell_coord(center.x + radius);
  const std::int64_t y0 = cell_coord(center.y - radius);
  const std::int64_t y1 = cell_coord(center.y + radius);

  // A disc wider than the populated grid degenerates to "everything"; skip
  // the per-cell walk and hand back all indices (already ascending).
  const std::uint64_t span =
      static_cast<std::uint64_t>(x1 - x0 + 1) * static_cast<std::uint64_t>(y1 - y0 + 1);
  if (span >= populated_cells_ * 2 + 1) {
    const std::size_t base = out.size();
    out.resize(base + points_.size());
    for (std::size_t i = 0; i < points_.size(); ++i) out[base + i] = i;
    return;
  }

  const std::size_t base = out.size();
  for (std::int64_t cx = x0; cx <= x1; ++cx) {
    for (std::int64_t cy = y0; cy <= y1; ++cy) {
      const auto it = cells_.find(pack(cx, cy));
      if (it == cells_.end()) continue;
      out.insert(out.end(), it->second.begin(), it->second.end());
    }
  }
  std::sort(out.begin() + static_cast<std::ptrdiff_t>(base), out.end());
}

}  // namespace nwade::geom
