// 2-D vector math for intersection geometry and vehicle kinematics.
#pragma once

#include <cmath>

namespace nwade::geom {

struct Vec2 {
  double x{0};
  double y{0};

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double k) const { return {x * k, y * k}; }
  constexpr Vec2 operator/(double k) const { return {x / k, y / k}; }
  constexpr bool operator==(const Vec2&) const = default;

  constexpr double dot(Vec2 o) const { return x * o.x + y * o.y; }
  /// 2-D cross product (z component); positive = o is counter-clockwise.
  constexpr double cross(Vec2 o) const { return x * o.y - y * o.x; }

  double norm() const { return std::sqrt(x * x + y * y); }
  constexpr double norm_sq() const { return x * x + y * y; }

  /// Unit vector; the zero vector normalizes to itself.
  Vec2 normalized() const {
    const double n = norm();
    return n > 0 ? Vec2{x / n, y / n} : Vec2{};
  }

  /// Rotated 90 degrees counter-clockwise.
  constexpr Vec2 perp() const { return {-y, x}; }

  /// Rotated by `angle` radians counter-clockwise.
  Vec2 rotated(double angle) const {
    const double c = std::cos(angle), s = std::sin(angle);
    return {x * c - y * s, x * s + y * c};
  }

  double distance_to(Vec2 o) const { return (*this - o).norm(); }

  static Vec2 from_polar(double radius, double angle) {
    return {radius * std::cos(angle), radius * std::sin(angle)};
  }
};

/// Heading angle of a vector in radians, in (-pi, pi].
inline double heading(Vec2 v) { return std::atan2(v.y, v.x); }

/// Linear interpolation between two points.
inline Vec2 lerp(Vec2 a, Vec2 b, double t) { return a + (b - a) * t; }

}  // namespace nwade::geom
