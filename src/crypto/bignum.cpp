#include "crypto/bignum.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace nwade::crypto {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

void BigUint::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigUint::BigUint(u64 v) {
  if (v != 0) limbs_.push_back(v);
}

BigUint BigUint::from_bytes(std::span<const std::uint8_t> be) {
  BigUint out;
  out.limbs_.assign((be.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < be.size(); ++i) {
    // byte i (from the most-significant end) lands at bit offset 8*(n-1-i)
    const std::size_t bit = 8 * (be.size() - 1 - i);
    out.limbs_[bit / 64] |= static_cast<u64>(be[i]) << (bit % 64);
  }
  out.trim();
  return out;
}

BigUint BigUint::from_hex(std::string_view hex) {
  if (hex.size() % 2 == 1) {
    return from_bytes(nwade::from_hex(std::string("0") + std::string(hex)));
  }
  return from_bytes(nwade::from_hex(hex));
}

BigUint BigUint::random_bits(Rng& rng, int bits) {
  assert(bits >= 2);
  BigUint out;
  const int limbs = (bits + 63) / 64;
  out.limbs_.resize(limbs);
  for (auto& l : out.limbs_) l = rng.next_u64();
  const int top = (bits - 1) % 64;
  // Clear bits above the requested width, then force the msb.
  out.limbs_.back() &= (top == 63) ? ~0ULL : ((1ULL << (top + 1)) - 1);
  out.limbs_.back() |= 1ULL << top;
  out.trim();
  return out;
}

BigUint BigUint::random_below(Rng& rng, const BigUint& bound) {
  assert(bound > BigUint(4));
  const int bits = bound.bit_length();
  const BigUint two(2);
  const BigUint hi = bound - BigUint(2);  // sample in [2, bound-2]
  for (;;) {
    BigUint candidate;
    const int limbs = (bits + 63) / 64;
    candidate.limbs_.resize(limbs);
    for (auto& l : candidate.limbs_) l = rng.next_u64();
    const int top = (bits - 1) % 64;
    candidate.limbs_.back() &= (top == 63) ? ~0ULL : ((1ULL << (top + 1)) - 1);
    candidate.trim();
    if (candidate >= two && candidate <= hi) return candidate;
  }
}

int BigUint::bit_length() const {
  if (limbs_.empty()) return 0;
  const u64 top = limbs_.back();
  return static_cast<int>((limbs_.size() - 1) * 64) + (64 - std::countl_zero(top));
}

bool BigUint::bit(int i) const {
  const std::size_t limb_idx = static_cast<std::size_t>(i) / 64;
  if (limb_idx >= limbs_.size()) return false;
  return (limbs_[limb_idx] >> (i % 64)) & 1;
}

Bytes BigUint::to_bytes(std::size_t min_len) const {
  const int bytes = (bit_length() + 7) / 8;
  const std::size_t out_len = std::max<std::size_t>(bytes, min_len);
  Bytes out(out_len, 0);
  for (int i = 0; i < bytes; ++i) {
    const std::size_t bit_off = 8 * static_cast<std::size_t>(i);
    out[out_len - 1 - i] = static_cast<std::uint8_t>(limbs_[bit_off / 64] >> (bit_off % 64));
  }
  return out;
}

std::string BigUint::to_hex() const {
  if (is_zero()) return "00";
  return nwade::to_hex(to_bytes());
}

int BigUint::compare(const BigUint& other) const {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) return limbs_[i] < other.limbs_[i] ? -1 : 1;
  }
  return 0;
}

BigUint BigUint::operator+(const BigUint& o) const {
  BigUint out;
  const std::size_t n = std::max(limbs_.size(), o.limbs_.size());
  out.limbs_.resize(n + 1);
  u64 carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const u128 sum = static_cast<u128>(limb(i)) + o.limb(i) + carry;
    out.limbs_[i] = static_cast<u64>(sum);
    carry = static_cast<u64>(sum >> 64);
  }
  out.limbs_[n] = carry;
  out.trim();
  return out;
}

BigUint BigUint::operator-(const BigUint& o) const {
  assert(*this >= o);
  BigUint out;
  out.limbs_.resize(limbs_.size());
  u64 borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const u64 rhs = o.limb(i);
    const u64 lhs = limbs_[i];
    u64 diff = lhs - rhs;
    const u64 borrow_next = (lhs < rhs) || (diff < borrow) ? 1 : 0;
    diff -= borrow;
    out.limbs_[i] = diff;
    borrow = borrow_next;
  }
  out.trim();
  return out;
}

BigUint BigUint::operator*(const BigUint& o) const {
  if (is_zero() || o.is_zero()) return BigUint();
  BigUint out;
  out.limbs_.assign(limbs_.size() + o.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    u64 carry = 0;
    for (std::size_t j = 0; j < o.limbs_.size(); ++j) {
      const u128 cur = static_cast<u128>(limbs_[i]) * o.limbs_[j] + out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    out.limbs_[i + o.limbs_.size()] += carry;
  }
  out.trim();
  return out;
}

BigUint BigUint::operator<<(int bits) const {
  if (is_zero() || bits == 0) return *this;
  const int limb_shift = bits / 64;
  const int bit_shift = bits % 64;
  BigUint out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    out.limbs_[i + limb_shift] |= limbs_[i] << bit_shift;
    if (bit_shift != 0) out.limbs_[i + limb_shift + 1] |= limbs_[i] >> (64 - bit_shift);
  }
  out.trim();
  return out;
}

BigUint BigUint::operator>>(int bits) const {
  if (is_zero() || bits == 0) return *this;
  const std::size_t limb_shift = static_cast<std::size_t>(bits) / 64;
  const int bit_shift = bits % 64;
  if (limb_shift >= limbs_.size()) return BigUint();
  BigUint out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    out.limbs_[i] = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      out.limbs_[i] |= limbs_[i + limb_shift + 1] << (64 - bit_shift);
    }
  }
  out.trim();
  return out;
}

std::pair<BigUint, BigUint> BigUint::divmod(const BigUint& divisor) const {
  assert(!divisor.is_zero());
  if (*this < divisor) return {BigUint(), *this};
  if (divisor.limbs_.size() == 1) {
    // Fast path: single-limb divisor.
    BigUint q;
    q.limbs_.resize(limbs_.size());
    const u64 d = divisor.limbs_[0];
    u128 rem = 0;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
      const u128 cur = (rem << 64) | limbs_[i];
      q.limbs_[i] = static_cast<u64>(cur / d);
      rem = cur % d;
    }
    q.trim();
    return {q, BigUint(static_cast<u64>(rem))};
  }

  // Shift-subtract long division, one bit at a time. Only used on cold paths
  // (key generation, CRT precompute); hot-path reductions use Montgomery.
  const int shift = bit_length() - divisor.bit_length();
  BigUint rem = *this;
  BigUint den = divisor << shift;
  BigUint quo;
  quo.limbs_.assign(static_cast<std::size_t>(shift) / 64 + 1, 0);
  for (int i = shift; i >= 0; --i) {
    if (rem >= den) {
      rem = rem - den;
      quo.limbs_[static_cast<std::size_t>(i) / 64] |= 1ULL << (i % 64);
    }
    den = den >> 1;
  }
  quo.trim();
  return {quo, rem};
}

std::uint64_t BigUint::mod_u64(std::uint64_t m) const {
  assert(m != 0);
  u128 rem = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    rem = ((rem << 64) | limbs_[i]) % m;
  }
  return static_cast<u64>(rem);
}

BigUint BigUint::mod_pow(const BigUint& exp, const BigUint& modulus) const {
  assert(modulus.is_odd() && modulus.bit_length() > 1);
  return Montgomery(modulus).pow(*this, exp);
}

BigUint BigUint::gcd(BigUint a, BigUint b) {
  while (!b.is_zero()) {
    BigUint r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigUint BigUint::mod_inverse(const BigUint& modulus) const {
  // Extended Euclid tracking only the coefficient of *this*, with the sign
  // carried separately (coefficients alternate in sign along the remainders).
  BigUint r0 = modulus, r1 = *this % modulus;
  BigUint t0, t1(1);  // t coefficients: inverse candidates mod modulus
  bool t0_neg = false, t1_neg = false;
  while (!r1.is_zero()) {
    const auto [q, r2] = r0.divmod(r1);
    // t2 = t0 - q * t1 with explicit sign handling.
    const BigUint qt1 = q * t1;
    BigUint t2;
    bool t2_neg;
    if (t0_neg == t1_neg) {
      if (t0 >= qt1) {
        t2 = t0 - qt1;
        t2_neg = t0_neg;
      } else {
        t2 = qt1 - t0;
        t2_neg = !t0_neg;
      }
    } else {
      t2 = t0 + qt1;
      t2_neg = t0_neg;
    }
    r0 = std::move(r1);
    r1 = r2;
    t0 = std::move(t1);
    t0_neg = t1_neg;
    t1 = std::move(t2);
    t1_neg = t2_neg;
  }
  if (!r0.is_one()) return BigUint();  // not invertible
  if (t0_neg) return modulus - (t0 % modulus);
  return t0 % modulus;
}

// --- Montgomery ---------------------------------------------------------------

Montgomery::Montgomery(const BigUint& modulus) : modulus_(modulus) {
  assert(modulus.is_odd() && modulus.bit_length() > 1);
  n_ = modulus.limb_count();
  // n0_ = -m^{-1} mod 2^64 via Newton iteration on the low limb.
  const u64 m0 = modulus.limb(0);
  u64 inv = m0;  // 3 bits correct
  for (int i = 0; i < 6; ++i) inv *= 2 - m0 * inv;  // doubles correct bits
  n0_ = ~inv + 1;  // negate mod 2^64

  one_.assign(n_, 0);
  one_[0] = 1;

  // R^2 mod m where R = 2^(64 n), via 128*n modular doublings of 1. Every
  // intermediate fits in n+1 limbs, so this sidesteps the bit-at-a-time long
  // division a 2^(128 n) % m divmod would cost (and its 4096-bit temporaries).
  const u64* mod = modulus_.limbs_.data();
  std::vector<u64> acc(n_ + 1, 0);
  acc[0] = 1;  // m is odd and > 1, so 1 mod m = 1
  for (std::size_t step = 0; step < 128 * n_; ++step) {
    u64 carry = 0;
    for (std::size_t j = 0; j <= n_; ++j) {
      const u64 next = acc[j] >> 63;
      acc[j] = (acc[j] << 1) | carry;
      carry = next;
    }
    // Conditional subtract: acc < 2m after the doubling, so once is enough.
    bool ge = acc[n_] != 0;
    if (!ge) {
      ge = true;
      for (std::size_t j = n_; j-- > 0;) {
        if (acc[j] != mod[j]) {
          ge = acc[j] > mod[j];
          break;
        }
      }
    }
    if (ge) {
      u64 borrow = 0;
      for (std::size_t j = 0; j < n_; ++j) {
        const u64 lhs = acc[j];
        u64 diff = lhs - mod[j];
        const u64 next = (lhs < mod[j]) || (diff < borrow) ? 1 : 0;
        diff -= borrow;
        acc[j] = diff;
        borrow = next;
      }
      acc[n_] -= borrow;
    }
  }
  acc.resize(n_);  // reduced below m: the top limb is zero
  rr_ = std::move(acc);

  // Montgomery form of 1: mont_mul(R^2, 1) = R mod m.
  one_mont_.assign(n_, 0);
  std::vector<u64> scratch(n_ + 2);
  mont_mul(one_mont_.data(), rr_.data(), one_.data(), scratch.data());
}

void Montgomery::mont_mul(u64* dst, const u64* a, const u64* b, u64* scratch) const {
  // CIOS (coarsely integrated operand scanning) into `scratch` (n+2 limbs);
  // `dst` is written only after the final reduction, so it may alias a or b.
  const u64* mod = modulus_.limbs_.data();
  u64* t = scratch;
  std::memset(t, 0, (n_ + 2) * sizeof(u64));
  for (std::size_t i = 0; i < n_; ++i) {
    // t += a[i] * b
    u64 carry = 0;
    for (std::size_t j = 0; j < n_; ++j) {
      const u128 cur = static_cast<u128>(a[i]) * b[j] + t[j] + carry;
      t[j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    u128 sum = static_cast<u128>(t[n_]) + carry;
    t[n_] = static_cast<u64>(sum);
    t[n_ + 1] = static_cast<u64>(sum >> 64);

    // m = t[0] * n0' mod 2^64; t += m * mod; t >>= 64
    const u64 m = t[0] * n0_;
    const u128 first = static_cast<u128>(m) * mod[0] + t[0];
    carry = static_cast<u64>(first >> 64);
    for (std::size_t j = 1; j < n_; ++j) {
      const u128 cur = static_cast<u128>(m) * mod[j] + t[j] + carry;
      t[j - 1] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    sum = static_cast<u128>(t[n_]) + carry;
    t[n_ - 1] = static_cast<u64>(sum);
    t[n_] = t[n_ + 1] + static_cast<u64>(sum >> 64);
    t[n_ + 1] = 0;
  }
  // Conditional final subtraction.
  bool ge = t[n_] != 0;
  if (!ge) {
    ge = true;
    for (std::size_t i = n_; i-- > 0;) {
      const u64 mi = mod[i];
      if (t[i] != mi) {
        ge = t[i] > mi;
        break;
      }
      if (i == 0) ge = true;  // equal -> subtract
    }
  }
  if (ge) {
    u64 borrow = 0;
    for (std::size_t i = 0; i < n_; ++i) {
      const u64 mi = mod[i];
      const u64 lhs = t[i];
      u64 diff = lhs - mi;
      const u64 next = (lhs < mi) || (diff < borrow) ? 1 : 0;
      diff -= borrow;
      t[i] = diff;
      borrow = next;
    }
    t[n_] -= borrow;
  }
  std::memcpy(dst, t, n_ * sizeof(u64));
}

void Montgomery::to_mont(u64* dst, const BigUint& x, u64* scratch) const {
  if (x.compare(modulus_) < 0) {
    // Already reduced (the hot case: RSA bases are pre-reduced) — pad in place.
    const std::size_t k = x.limbs_.size();
    std::memcpy(dst, x.limbs_.data(), k * sizeof(u64));
    std::memset(dst + k, 0, (n_ - k) * sizeof(u64));
  } else {
    const BigUint xr = x % modulus_;  // cold path
    const std::size_t k = xr.limbs_.size();
    std::memcpy(dst, xr.limbs_.data(), k * sizeof(u64));
    std::memset(dst + k, 0, (n_ - k) * sizeof(u64));
  }
  mont_mul(dst, dst, rr_.data(), scratch);
}

BigUint Montgomery::pow(const BigUint& base, const BigUint& exp,
                        MontWorkspace& ws) const {
  if (exp.is_zero()) return BigUint(1) % modulus_;

  // One flat workspace: 16-entry contiguous window table, accumulator, the
  // base in Montgomery form, and the CIOS scratch — laid out back to back so
  // a warmed workspace serves every call without touching the heap.
  u64* w = ws.ensure(pow_workspace_limbs());
  u64* table = w;                  // 16 * n_ limbs: b^0 .. b^15
  u64* acc = table + 16 * n_;      // n_ limbs
  u64* basem = acc + n_;           // n_ limbs
  u64* scratch = basem + n_;       // n_ + 2 limbs

  to_mont(basem, base, scratch);
  std::memcpy(table, one_mont_.data(), n_ * sizeof(u64));  // = R mod m
  std::memcpy(table + n_, basem, n_ * sizeof(u64));
  for (int i = 2; i < 16; ++i) {
    mont_mul(table + static_cast<std::size_t>(i) * n_,
             table + static_cast<std::size_t>(i - 1) * n_, basem, scratch);
  }

  const int bits = exp.bit_length();
  const int windows = (bits + 3) / 4;
  std::memcpy(acc, table, n_ * sizeof(u64));
  for (int win = windows - 1; win >= 0; --win) {
    for (int s = 0; s < 4; ++s) mont_mul(acc, acc, acc, scratch);
    int nibble = 0;
    for (int s = 3; s >= 0; --s) {
      nibble = (nibble << 1) | (exp.bit(win * 4 + s) ? 1 : 0);
    }
    if (nibble != 0) {
      mont_mul(acc, acc, table + static_cast<std::size_t>(nibble) * n_, scratch);
    }
  }
  // Out of Montgomery form: mont_mul(acc, 1) = acc * R^{-1}.
  mont_mul(acc, acc, one_.data(), scratch);

  BigUint out;
  out.limbs_.assign(acc, n_);
  out.trim();
  return out;
}

BigUint Montgomery::pow(const BigUint& base, const BigUint& exp) const {
  static thread_local MontWorkspace tls_ws;
  return pow(base, exp, tls_ws);
}

// --- Primality ----------------------------------------------------------------

namespace {
constexpr u64 kSmallPrimes[] = {
    3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,  47,  53,
    59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107, 109, 113, 127,
    131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
    211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283};
}  // namespace

bool is_probable_prime(const BigUint& n, Rng& rng, int rounds) {
  if (n.bit_length() <= 1) return false;
  if (n == BigUint(2) || n == BigUint(3)) return true;
  if (!n.is_odd()) return false;
  for (u64 p : kSmallPrimes) {
    if (n == BigUint(p)) return true;
    if (n.mod_u64(p) == 0) return false;
  }

  // Write n-1 = d * 2^r.
  const BigUint n_minus_1 = n - BigUint(1);
  BigUint d = n_minus_1;
  int r = 0;
  while (!d.is_odd()) {
    d = d >> 1;
    ++r;
  }

  const Montgomery mont(n);
  for (int round = 0; round < rounds; ++round) {
    const BigUint a = BigUint::random_below(rng, n);
    BigUint x = mont.pow(a, d);
    if (x.is_one() || x == n_minus_1) continue;
    bool composite = true;
    for (int i = 0; i < r - 1; ++i) {
      x = mont.pow(x, BigUint(2));
      if (x == n_minus_1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

BigUint generate_prime(Rng& rng, int bits) {
  assert(bits >= 16);
  for (;;) {
    BigUint candidate = BigUint::random_bits(rng, bits);
    if (!candidate.is_odd()) candidate = candidate + BigUint(1);
    // Cheap sieve before the expensive Miller-Rabin rounds.
    bool sieved = false;
    for (u64 p : kSmallPrimes) {
      if (candidate.mod_u64(p) == 0) {
        sieved = true;
        break;
      }
    }
    if (sieved) continue;
    if (is_probable_prime(candidate, rng, 24)) return candidate;
  }
}

}  // namespace nwade::crypto
