// FIPS 180-4 SHA-256, implemented from scratch (no third-party crypto).
//
// Used for block hashes, Merkle trees, and as the digest inside RSA
// signatures, matching the paper's "hash value of a block is generated using
// the SHA256 method".
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

#include "util/bytes.h"

namespace nwade::crypto {

/// A 256-bit digest.
using Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 hasher.
class Sha256 {
 public:
  Sha256();

  /// Absorbs more input. May be called repeatedly.
  void update(std::span<const std::uint8_t> data);
  void update(std::string_view s);

  /// Finalizes and returns the digest. The hasher must not be reused after.
  Digest finish();

 private:
  void compress(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::uint64_t total_len_{0};
  std::size_t buffer_len_{0};
};

/// One-shot convenience.
Digest sha256(std::span<const std::uint8_t> data);
Digest sha256(std::string_view s);

/// HMAC-SHA256 (RFC 2104); used by the fast test signer.
Digest hmac_sha256(std::span<const std::uint8_t> key, std::span<const std::uint8_t> msg);

/// Digest as a hex string.
std::string digest_hex(const Digest& d);

}  // namespace nwade::crypto
