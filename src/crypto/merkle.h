// Merkle (hash) tree over travel plans.
//
// The paper stores "all the newly generated travel plans at the leaf nodes and
// the hash values of the travel plans as internal nodes" and puts the root R_i
// into each block (Fig. 3). We additionally expose membership proofs so a
// vehicle can hand a neighbour a single plan plus an O(log n) proof instead of
// the whole batch.
#pragma once

#include <cstddef>
#include <vector>

#include "crypto/sha256.h"
#include "util/bytes.h"

namespace nwade::crypto {

/// One step of a Merkle membership proof.
struct MerkleStep {
  Digest sibling;
  bool sibling_on_left{false};
};

using MerkleProof = std::vector<MerkleStep>;

/// Immutable Merkle tree built over the serialized leaves.
///
/// Leaf hashes are domain-separated from interior hashes (0x00/0x01 prefixes)
/// so a forged interior node can never masquerade as a leaf.
class MerkleTree {
 public:
  /// Builds a tree over `leaves` (serialized plans). Empty input yields the
  /// hash of the empty string as root.
  explicit MerkleTree(const std::vector<Bytes>& leaves);

  const Digest& root() const { return root_; }
  std::size_t leaf_count() const { return leaf_count_; }

  /// Membership proof for leaf `index`. index must be < leaf_count().
  MerkleProof prove(std::size_t index) const;

  /// Hash of a single leaf payload (domain-separated).
  static Digest hash_leaf(const Bytes& leaf);

  /// Verifies that `leaf` is at `index` under `root` given `proof`.
  static bool verify(const Bytes& leaf, const MerkleProof& proof, const Digest& root);

 private:
  static Digest hash_interior(const Digest& left, const Digest& right);

  std::vector<std::vector<Digest>> levels_;  // levels_[0] = leaf hashes
  Digest root_{};
  std::size_t leaf_count_{0};
};

}  // namespace nwade::crypto
