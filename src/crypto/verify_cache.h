// Process-wide digest-keyed signature-verification cache.
//
// A NWADE broadcast makes every vehicle node verify the *same* block bytes
// against the *same* IM public key: N receivers, N identical modexps. Since
// signature verification is a pure function of (key, message, signature),
// the first receiver's answer is everyone's answer. This cache keys results
// by SHA-256 over those three inputs, so the fleet pays one modexp per
// block and N-1 hash-lookups.
//
// Correctness properties:
//   * A tampered message or signature changes the key digest, so it can
//     never alias its honest twin — a forged block always recomputes (and
//     fails) on its own cache miss.
//   * Key rotation changes the verifier fingerprint folded into the key, so
//     stale entries for a retired key are unreachable, not merely evicted.
//   * Capacity is bounded with FIFO eviction; capacity 0 disables caching
//     entirely (every lookup misses, stores are dropped) — used by benches
//     to measure the uncached path.
//
// The cache is a deliberate process-wide singleton: vehicle nodes are cheap
// value objects, and threading a cache handle through every constructor
// would hand each node a private cache — exactly the sharing the
// optimization exists to provide. Thread-safe (single mutex).
#pragma once

#include <cstdint>
#include <cstring>
#include <deque>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>

#include "crypto/sha256.h"

namespace nwade::crypto {

class SigVerifyCache {
 public:
  struct Stats {
    std::uint64_t hits{0};
    std::uint64_t misses{0};
    std::uint64_t insertions{0};
    std::uint64_t evictions{0};
  };

  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit SigVerifyCache(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}

  /// The shared process-wide instance used by RsaVerifier.
  static SigVerifyCache& instance();

  /// Cache key: SHA-256 over (verifier fingerprint, message, signature),
  /// length-prefixed.
  static Digest key_of(const Digest& verifier_fingerprint,
                       std::span<const std::uint8_t> msg,
                       std::span<const std::uint8_t> sig);

  /// The cached verdict for `key`, counting a hit/miss either way.
  std::optional<bool> lookup(const Digest& key);

  /// Records a verdict, evicting the oldest entry when full. Idempotent for
  /// a key already present (verdicts are pure, so the value cannot differ).
  void store(const Digest& key, bool ok);

  void clear();

  /// Live entry count (≤ capacity).
  std::size_t size() const;
  std::size_t capacity() const;
  /// Shrinks immediately if the new capacity is smaller; 0 disables caching.
  void set_capacity(std::size_t capacity);

  Stats stats() const;
  void reset_stats();

 private:
  struct DigestHash {
    std::size_t operator()(const Digest& d) const {
      // The key is itself a SHA-256 output: any 8 bytes are a good hash.
      std::size_t h;
      static_assert(sizeof(h) <= 32);
      std::memcpy(&h, d.data(), sizeof(h));
      return h;
    }
  };

  void evict_to_capacity_locked();

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::unordered_map<Digest, bool, DigestHash> entries_;
  std::deque<Digest> insertion_order_;  ///< FIFO eviction queue
  Stats stats_;
};

}  // namespace nwade::crypto
