// Digest-keyed signature-verification cache.
//
// A NWADE broadcast makes every vehicle node verify the *same* block bytes
// against the *same* IM public key: N receivers, N identical modexps. Since
// signature verification is a pure function of (key, message, signature),
// the first receiver's answer is everyone's answer. This cache keys results
// by SHA-256 over those three inputs, so the fleet pays one modexp per
// block and N-1 hash-lookups.
//
// Correctness properties:
//   * A tampered message or signature changes the key digest, so it can
//     never alias its honest twin — a forged block always recomputes (and
//     fails) on its own cache miss.
//   * Key rotation changes the verifier fingerprint folded into the key, so
//     stale entries for a retired key are unreachable, not merely evicted.
//   * Capacity is bounded with FIFO eviction; capacity 0 disables caching
//     entirely (every lookup misses, stores are dropped) — used by benches
//     to measure the uncached path.
//
// Concurrency: entries live in `kShards` independently-locked shards (the
// shard is picked from the key digest, which is uniform), and the hit/miss/
// insertion/eviction counters are atomics, so concurrent worlds in a
// campaign never serialize on one mutex. Eviction order is exact global
// FIFO under single-threaded use (each entry carries a global insertion
// sequence and the globally-oldest head is evicted first); under concurrent
// stores it degrades gracefully to per-shard FIFO with a bounded total size.
//
// Ownership: `instance()` is the process-wide default that single-run paths
// (one World per process, micro benches, tests) share. Multi-run hosts —
// the campaign engine running many worlds concurrently — construct one
// cache per run and inject it via `Signer::verifier_with_cache()`, so
// memoized verdicts can neither race nor leak across runs.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <deque>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>

#include "crypto/sha256.h"
#include "util/bytes.h"

namespace nwade::crypto {

/// Hash functor for digest-keyed tables. The key is itself a SHA-256
/// output, so any 8 bytes are a good hash.
struct DigestKeyHash {
  std::size_t operator()(const Digest& d) const {
    std::size_t h;
    static_assert(sizeof(h) <= 32);
    std::memcpy(&h, d.data(), sizeof(h));
    return h;
  }
};

class SigVerifyCache {
 public:
  struct Stats {
    std::uint64_t hits{0};
    std::uint64_t misses{0};
    std::uint64_t insertions{0};
    std::uint64_t evictions{0};
  };

  static constexpr std::size_t kDefaultCapacity = 4096;
  static constexpr std::size_t kShards = 16;

  explicit SigVerifyCache(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}

  /// The shared process-wide instance used by verifiers that were not handed
  /// a cache of their own.
  static SigVerifyCache& instance();

  /// Cache key: SHA-256 over (verifier fingerprint, message, signature),
  /// length-prefixed.
  static Digest key_of(const Digest& verifier_fingerprint,
                       std::span<const std::uint8_t> msg,
                       std::span<const std::uint8_t> sig);

  /// The cached verdict for `key`, counting a hit/miss either way.
  std::optional<bool> lookup(const Digest& key);

  /// Stats-free probe: the cached verdict without touching the hit/miss
  /// counters. Used by the batch-verify prefetch to decide which pending
  /// signatures still need a modexp — the receivers' own lookup() calls do
  /// the counting later, so run digests that fold cache stats stay
  /// byte-identical whether or not a prefetch ran.
  std::optional<bool> peek(const Digest& key) const;

  /// Records a verdict, evicting the oldest entry when full. Idempotent for
  /// a key already present (verdicts are pure, so the value cannot differ).
  void store(const Digest& key, bool ok);

  /// Drops every entry; the stats survive.
  void clear();

  /// Back to a pristine cache: no entries, zeroed stats. Benches call this
  /// between phases so memoized verdicts from one phase cannot skew the
  /// hit/miss accounting (or the timings) of the next.
  void reset();

  /// Live entry count (≤ capacity).
  std::size_t size() const { return size_.load(std::memory_order_relaxed); }
  std::size_t capacity() const { return capacity_.load(std::memory_order_relaxed); }
  /// Shrinks immediately if the new capacity is smaller; 0 disables caching.
  void set_capacity(std::size_t capacity);

  Stats stats() const;
  void reset_stats();

  /// Serializes capacity, counters, and every shard's entries in FIFO order,
  /// so a resumed run replays the same hits, misses, and evictions. Restore
  /// overwrites the cache in place; returns false on malformed input.
  /// Not safe concurrently with lookups/stores.
  void checkpoint_save(ByteWriter& w) const;
  bool checkpoint_restore(ByteReader& r);

 private:
  using DigestHash = DigestKeyHash;

  struct Entry {
    bool ok{false};
    std::uint64_t seq{0};  ///< global insertion sequence (FIFO eviction order)
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<Digest, Entry, DigestHash> entries;
    /// Per-shard FIFO of (seq, key); always in sync with `entries` (pops and
    /// erases happen under the same lock).
    std::deque<std::pair<std::uint64_t, Digest>> order;
  };

  Shard& shard_of(const Digest& key) {
    // Byte 8 so the shard index never correlates with DigestHash's bytes 0-7.
    return shards_[key[8] % kShards];
  }
  const Shard& shard_of(const Digest& key) const {
    return shards_[key[8] % kShards];
  }

  void evict_to_capacity();
  bool evict_globally_oldest();

  std::atomic<std::size_t> capacity_;
  std::atomic<std::size_t> size_{0};
  std::atomic<std::uint64_t> next_seq_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> insertions_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::array<Shard, kShards> shards_;
};

/// One step's worth of pre-computed signature verdicts, produced by the
/// world's batch-verify prefetch (pending block deliveries fanned across
/// the worker pool) and consumed by RsaVerifier::verify *after* a genuinely
/// counted cache miss. Single-writer, read-only while deliveries run; the
/// owner clears it every step. Deliberately invisible to checkpoints — it
/// is a pure acceleration side-table whose contents are recomputable.
class SigBatchTable {
 public:
  void clear() { entries_.clear(); }
  void put(const Digest& key, bool ok) { entries_[key] = ok; }
  std::optional<bool> find(const Digest& key) const {
    const auto it = entries_.find(key);
    if (it == entries_.end()) return std::nullopt;
    return it->second;
  }
  bool contains(const Digest& key) const { return entries_.contains(key); }
  std::size_t size() const { return entries_.size(); }

 private:
  std::unordered_map<Digest, bool, DigestKeyHash> entries_;
};

}  // namespace nwade::crypto
