// RSA signatures over SHA-256 (EMSA-PKCS#1 v1.5 style encoding), built on the
// in-tree bignum. The paper signs each travel-plan block with the intersection
// manager's 2048-bit private key; verification uses e = 65537 and is cheap,
// which is exactly the asymmetry the NWADE design relies on (one signer, many
// verifiers).
#pragma once

#include <optional>

#include "crypto/bignum.h"
#include "crypto/sha256.h"
#include "util/rng.h"

namespace nwade::crypto {

/// RSA public key (n, e).
struct RsaPublicKey {
  BigUint n;
  BigUint e;

  /// Modulus size in bytes; signatures have exactly this length.
  std::size_t modulus_bytes() const { return (n.bit_length() + 7) / 8; }
};

/// RSA private key with CRT parameters for ~4x faster signing.
struct RsaPrivateKey {
  BigUint n;
  BigUint d;
  BigUint p, q;
  BigUint dp, dq;    // d mod (p-1), d mod (q-1)
  BigUint q_inv;     // q^{-1} mod p
};

struct RsaKeyPair {
  RsaPublicKey pub;
  RsaPrivateKey priv;
};

/// Generates an RSA key pair with the given modulus size (e.g. 2048).
/// Deterministic for a given rng state.
RsaKeyPair rsa_generate(Rng& rng, int modulus_bits);

/// Signs a message digest-first: sig = EMSA(sha256(msg))^d mod n.
Bytes rsa_sign(const RsaPrivateKey& key, std::span<const std::uint8_t> msg);

/// Verifies a signature produced by rsa_sign.
bool rsa_verify(const RsaPublicKey& key, std::span<const std::uint8_t> msg,
                std::span<const std::uint8_t> sig);

/// Reusable signing context for one private key. `rsa_sign` rebuilds the two
/// CRT Montgomery contexts (n0' and R^2 for both p and q) on every call; the
/// intersection manager signs every block with the *same* key, so this
/// precomputes them once and each signature pays only the two half-size
/// modexps plus the CRT recombination. Immutable after construction — safe to
/// share across threads.
class RsaSignContext {
 public:
  explicit RsaSignContext(RsaPrivateKey key);

  /// Same bytes as rsa_sign(key(), msg) for every input.
  Bytes sign(std::span<const std::uint8_t> msg) const;

  const RsaPrivateKey& key() const { return key_; }

 private:
  RsaPrivateKey key_;
  Montgomery mont_p_;
  Montgomery mont_q_;
  std::size_t k_{0};  ///< modulus length in bytes
};

/// Reusable verification context for one public key. `rsa_verify` rebuilds
/// the Montgomery machinery (n0' and R^2 mod n, a full big divmod) on every
/// call; in NWADE every vehicle verifies every block against the *same* IM
/// key, so this context precomputes it once and each verify pays only the
/// modexp itself. Immutable after construction — safe to share across the
/// worker pool's threads.
class RsaVerifyContext {
 public:
  explicit RsaVerifyContext(RsaPublicKey key);

  /// Same result as rsa_verify(key(), msg, sig) for every input.
  bool verify(std::span<const std::uint8_t> msg,
              std::span<const std::uint8_t> sig) const;

  const RsaPublicKey& key() const { return key_; }

  /// SHA-256 over the length-prefixed (n, e) encoding: a stable identity for
  /// digest-keyed signature caches (a new key ⇒ a new fingerprint ⇒ stale
  /// entries can never match).
  const Digest& fingerprint() const { return fingerprint_; }

 private:
  RsaPublicKey key_;
  Montgomery mont_;
  Digest fingerprint_{};
  std::size_t k_{0};  ///< modulus length in bytes
};

}  // namespace nwade::crypto
