// Signer abstraction: the NWADE protocol layer signs and verifies through this
// interface so the simulator can choose between real RSA (paper-faithful cost,
// used by the blockchain benchmarks) and a fast HMAC-based signer (used where
// crypto cost is not what is being measured, e.g. protocol unit tests).
#pragma once

#include <memory>

#include "crypto/rsa.h"
#include "crypto/sha256.h"
#include "util/bytes.h"

namespace nwade::crypto {

class SigVerifyCache;

/// Verification half of a signer; safe to share between many vehicles.
class Verifier {
 public:
  virtual ~Verifier() = default;
  virtual bool verify(std::span<const std::uint8_t> msg,
                      std::span<const std::uint8_t> sig) const = 0;
};

/// Signing half; held only by the key owner (the intersection manager).
class Signer {
 public:
  virtual ~Signer() = default;
  virtual Bytes sign(std::span<const std::uint8_t> msg) const = 0;
  virtual std::shared_ptr<const Verifier> verifier() const = 0;

  /// A verifier whose memoized verdicts live in `cache` instead of the
  /// process-wide `SigVerifyCache::instance()`. Multi-run hosts (the
  /// campaign engine) hand each run its own cache so concurrent worlds
  /// neither contend on one mutex set nor observe each other's verdicts.
  /// `cache` must outlive the returned verifier. Signers that do not
  /// memoize (HMAC) return their plain verifier.
  virtual std::shared_ptr<const Verifier> verifier_with_cache(
      SigVerifyCache& cache) const {
    (void)cache;
    return verifier();
  }
};

/// Real RSA signer (paper setting: 2048-bit key, SHA-256).
class RsaSigner final : public Signer {
 public:
  explicit RsaSigner(RsaKeyPair key_pair);

  /// Convenience: generates a fresh key pair from `rng`.
  static std::unique_ptr<RsaSigner> generate(Rng& rng, int modulus_bits = 2048);

  Bytes sign(std::span<const std::uint8_t> msg) const override;
  std::shared_ptr<const Verifier> verifier() const override;
  std::shared_ptr<const Verifier> verifier_with_cache(
      SigVerifyCache& cache) const override;

  const RsaPublicKey& public_key() const { return key_.pub; }

 private:
  RsaKeyPair key_;
  RsaSignContext sign_ctx_;  ///< CRT Montgomery contexts, built once per key
  std::shared_ptr<const Verifier> verifier_;
};

/// HMAC-SHA256 "signer" for tests: same interface, symmetric key. A vehicle
/// holding the verifier could technically forge, which is irrelevant for the
/// protocol-logic tests that use it.
class HmacSigner final : public Signer {
 public:
  explicit HmacSigner(Bytes key);

  Bytes sign(std::span<const std::uint8_t> msg) const override;
  std::shared_ptr<const Verifier> verifier() const override;

 private:
  Bytes key_;
  std::shared_ptr<const Verifier> verifier_;
};

}  // namespace nwade::crypto
