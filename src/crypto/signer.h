// Signer abstraction: the NWADE protocol layer signs and verifies through this
// interface so the simulator can choose between real RSA (paper-faithful cost,
// used by the blockchain benchmarks) and a fast HMAC-based signer (used where
// crypto cost is not what is being measured, e.g. protocol unit tests).
#pragma once

#include <memory>

#include "crypto/rsa.h"
#include "crypto/sha256.h"
#include "util/bytes.h"

namespace nwade::crypto {

class SigVerifyCache;
class SigBatchTable;

/// Verification half of a signer; safe to share between many vehicles.
class Verifier {
 public:
  virtual ~Verifier() = default;
  virtual bool verify(std::span<const std::uint8_t> msg,
                      std::span<const std::uint8_t> sig) const = 0;

  /// The fingerprint that SigVerifyCache::key_of folds for this verifier's
  /// key, or nullptr when verdicts are not digest-cacheable (HMAC). A
  /// non-null fingerprint is what lets the world's batch-verify prefetch
  /// compute cache keys for pending signatures without a verifier call.
  virtual const Digest* key_fingerprint() const { return nullptr; }

  /// The raw verification (no cache lookup, no batch-table consult). Must
  /// be thread-safe: the batch prefetch fans calls across the worker pool.
  /// Defaults to verify() for verifiers that have no cache layer anyway.
  virtual bool verify_uncached(std::span<const std::uint8_t> msg,
                               std::span<const std::uint8_t> sig) const {
    return verify(msg, sig);
  }
};

/// Signing half; held only by the key owner (the intersection manager).
class Signer {
 public:
  virtual ~Signer() = default;
  virtual Bytes sign(std::span<const std::uint8_t> msg) const = 0;
  virtual std::shared_ptr<const Verifier> verifier() const = 0;

  /// A verifier whose memoized verdicts live in `cache` instead of the
  /// process-wide `SigVerifyCache::instance()`. Multi-run hosts (the
  /// campaign engine) hand each run its own cache so concurrent worlds
  /// neither contend on one mutex set nor observe each other's verdicts.
  /// `cache` must outlive the returned verifier. Signers that do not
  /// memoize (HMAC) return their plain verifier. A non-null `batch` is an
  /// optional per-step side-table of pre-computed verdicts the verifier
  /// consults only after a genuinely counted cache miss (so cache stats are
  /// identical with or without prefetching); it must outlive the verifier.
  virtual std::shared_ptr<const Verifier> verifier_with_cache(
      SigVerifyCache& cache, const SigBatchTable* batch = nullptr) const {
    (void)cache;
    (void)batch;
    return verifier();
  }
};

/// Real RSA signer (paper setting: 2048-bit key, SHA-256).
class RsaSigner final : public Signer {
 public:
  explicit RsaSigner(RsaKeyPair key_pair);

  /// Convenience: generates a fresh key pair from `rng`.
  static std::unique_ptr<RsaSigner> generate(Rng& rng, int modulus_bits = 2048);

  Bytes sign(std::span<const std::uint8_t> msg) const override;
  std::shared_ptr<const Verifier> verifier() const override;
  std::shared_ptr<const Verifier> verifier_with_cache(
      SigVerifyCache& cache, const SigBatchTable* batch = nullptr) const override;

  const RsaPublicKey& public_key() const { return key_.pub; }

 private:
  RsaKeyPair key_;
  RsaSignContext sign_ctx_;  ///< CRT Montgomery contexts, built once per key
  std::shared_ptr<const Verifier> verifier_;
};

/// HMAC-SHA256 "signer" for tests: same interface, symmetric key. A vehicle
/// holding the verifier could technically forge, which is irrelevant for the
/// protocol-logic tests that use it.
class HmacSigner final : public Signer {
 public:
  explicit HmacSigner(Bytes key);

  Bytes sign(std::span<const std::uint8_t> msg) const override;
  std::shared_ptr<const Verifier> verifier() const override;

 private:
  Bytes key_;
  std::shared_ptr<const Verifier> verifier_;
};

}  // namespace nwade::crypto
