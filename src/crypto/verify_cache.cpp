#include "crypto/verify_cache.h"

#include "util/bytes.h"

namespace nwade::crypto {

SigVerifyCache& SigVerifyCache::instance() {
  static SigVerifyCache cache;
  return cache;
}

Digest SigVerifyCache::key_of(const Digest& verifier_fingerprint,
                              std::span<const std::uint8_t> msg,
                              std::span<const std::uint8_t> sig) {
  Sha256 h;
  h.update(verifier_fingerprint);
  // Length prefixes keep (msg, sig) boundaries unambiguous.
  ByteWriter w;
  w.u64(msg.size());
  h.update(w.data());
  h.update(msg);
  h.update(sig);
  return h.finish();
}

std::optional<bool> SigVerifyCache::lookup(const Digest& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  return it->second;
}

void SigVerifyCache::store(const Digest& key, bool ok) {
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity_ == 0) return;
  const auto [it, inserted] = entries_.emplace(key, ok);
  if (!inserted) return;
  insertion_order_.push_back(key);
  ++stats_.insertions;
  evict_to_capacity_locked();
}

void SigVerifyCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  insertion_order_.clear();
}

std::size_t SigVerifyCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::size_t SigVerifyCache::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void SigVerifyCache::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity;
  evict_to_capacity_locked();
}

SigVerifyCache::Stats SigVerifyCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void SigVerifyCache::reset_stats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = Stats{};
}

void SigVerifyCache::evict_to_capacity_locked() {
  while (entries_.size() > capacity_ && !insertion_order_.empty()) {
    entries_.erase(insertion_order_.front());
    insertion_order_.pop_front();
    ++stats_.evictions;
  }
}

}  // namespace nwade::crypto
