#include "crypto/verify_cache.h"

#include <limits>

namespace nwade::crypto {

SigVerifyCache& SigVerifyCache::instance() {
  static SigVerifyCache cache;
  return cache;
}

Digest SigVerifyCache::key_of(const Digest& verifier_fingerprint,
                              std::span<const std::uint8_t> msg,
                              std::span<const std::uint8_t> sig) {
  Sha256 h;
  h.update(verifier_fingerprint);
  // Length prefix keeps the (msg, sig) boundary unambiguous. Encoded on the
  // stack (little-endian u64, same bytes ByteWriter::u64 would emit): this
  // runs on every cache *hit*, so it must not touch the heap.
  std::uint8_t len[8];
  const std::uint64_t n = msg.size();
  for (int i = 0; i < 8; ++i) len[i] = static_cast<std::uint8_t>(n >> (8 * i));
  h.update(len);
  h.update(msg);
  h.update(sig);
  return h.finish();
}

std::optional<bool> SigVerifyCache::lookup(const Digest& key) {
  Shard& shard = shard_of(key);
  std::optional<bool> verdict;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.entries.find(key);
    if (it != shard.entries.end()) verdict = it->second.ok;
  }
  if (verdict) {
    hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
  }
  return verdict;
}

std::optional<bool> SigVerifyCache::peek(const Digest& key) const {
  const Shard& shard = shard_of(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.entries.find(key);
  if (it == shard.entries.end()) return std::nullopt;
  return it->second.ok;
}

void SigVerifyCache::store(const Digest& key, bool ok) {
  if (capacity_.load(std::memory_order_relaxed) == 0) return;
  Shard& shard = shard_of(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto [it, inserted] = shard.entries.try_emplace(key);
    if (!inserted) return;
    it->second.ok = ok;
    it->second.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
    shard.order.emplace_back(it->second.seq, key);
  }
  size_.fetch_add(1, std::memory_order_relaxed);
  insertions_.fetch_add(1, std::memory_order_relaxed);
  evict_to_capacity();
}

void SigVerifyCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    size_.fetch_sub(shard.entries.size(), std::memory_order_relaxed);
    shard.entries.clear();
    shard.order.clear();
  }
}

void SigVerifyCache::reset() {
  clear();
  reset_stats();
}

void SigVerifyCache::set_capacity(std::size_t capacity) {
  capacity_.store(capacity, std::memory_order_relaxed);
  evict_to_capacity();
}

SigVerifyCache::Stats SigVerifyCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.insertions = insertions_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  return s;
}

void SigVerifyCache::reset_stats() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  insertions_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
}

void SigVerifyCache::evict_to_capacity() {
  while (size_.load(std::memory_order_relaxed) >
         capacity_.load(std::memory_order_relaxed)) {
    if (!evict_globally_oldest()) return;
  }
}

bool SigVerifyCache::evict_globally_oldest() {
  // Pass 1: peek every shard's FIFO head (one short lock each) to find the
  // globally-oldest entry. Pass 2: evict that shard's current head. Under
  // concurrent stores the head may have changed between passes — evicting
  // whatever now heads the chosen shard keeps the size bound exact and the
  // order per-shard FIFO, which is all the concurrent contract promises.
  std::size_t best_shard = kShards;
  std::uint64_t best_seq = std::numeric_limits<std::uint64_t>::max();
  for (std::size_t i = 0; i < kShards; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    if (!shards_[i].order.empty() && shards_[i].order.front().first < best_seq) {
      best_seq = shards_[i].order.front().first;
      best_shard = i;
    }
  }
  if (best_shard == kShards) return false;  // raced with clear(); nothing left

  Shard& shard = shards_[best_shard];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.order.empty()) return true;  // retry the sweep
  const Digest victim = shard.order.front().second;
  shard.order.pop_front();
  shard.entries.erase(victim);
  size_.fetch_sub(1, std::memory_order_relaxed);
  evictions_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void SigVerifyCache::checkpoint_save(ByteWriter& w) const {
  w.u64(capacity_.load(std::memory_order_relaxed));
  w.u64(next_seq_.load(std::memory_order_relaxed));
  w.u64(hits_.load(std::memory_order_relaxed));
  w.u64(misses_.load(std::memory_order_relaxed));
  w.u64(insertions_.load(std::memory_order_relaxed));
  w.u64(evictions_.load(std::memory_order_relaxed));
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    w.u32(static_cast<std::uint32_t>(shard.order.size()));
    for (const auto& [seq, key] : shard.order) {  // FIFO order per shard
      w.u64(seq);
      w.bytes(key);
      const auto it = shard.entries.find(key);
      w.u8(it != shard.entries.end() && it->second.ok ? 1 : 0);
    }
  }
}

bool SigVerifyCache::checkpoint_restore(ByteReader& r) {
  const std::uint64_t capacity = r.u64();
  const std::uint64_t next_seq = r.u64();
  const std::uint64_t hits = r.u64();
  const std::uint64_t misses = r.u64();
  const std::uint64_t insertions = r.u64();
  const std::uint64_t evictions = r.u64();
  if (!r.ok()) return false;
  std::size_t total = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.entries.clear();
    shard.order.clear();
    const std::uint32_t n = r.u32();
    if (!r.ok() || n > r.remaining() / 45) return false;  // 45 bytes/entry
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint64_t seq = r.u64();
      const Bytes key_bytes = r.bytes();
      const bool ok = r.u8() != 0;
      if (!r.ok() || key_bytes.size() != std::tuple_size_v<Digest>) return false;
      Digest key;
      std::copy(key_bytes.begin(), key_bytes.end(), key.begin());
      shard.entries[key] = Entry{ok, seq};
      shard.order.emplace_back(seq, key);
      ++total;
    }
  }
  capacity_.store(capacity, std::memory_order_relaxed);
  size_.store(total, std::memory_order_relaxed);
  next_seq_.store(next_seq, std::memory_order_relaxed);
  hits_.store(hits, std::memory_order_relaxed);
  misses_.store(misses, std::memory_order_relaxed);
  insertions_.store(insertions, std::memory_order_relaxed);
  evictions_.store(evictions, std::memory_order_relaxed);
  return true;
}

}  // namespace nwade::crypto
