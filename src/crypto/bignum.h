// Arbitrary-precision unsigned integers with the operations RSA needs:
// add/sub/mul, division, modular exponentiation (Montgomery), modular inverse,
// and byte/hex conversions. 64-bit little-endian limbs, 128-bit intermediate
// arithmetic. Not constant-time: this is a simulation substrate, not a TLS
// stack, and the paper's evaluation only depends on realistic cost shapes.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/rng.h"

namespace nwade::crypto {

/// Arbitrary-precision unsigned integer.
class BigUint {
 public:
  BigUint() = default;
  explicit BigUint(std::uint64_t v);

  /// Parses big-endian bytes (leading zeros allowed).
  static BigUint from_bytes(std::span<const std::uint8_t> be);

  /// Parses a hex string (no 0x prefix); returns zero on malformed input.
  static BigUint from_hex(std::string_view hex);

  /// Uniformly random value with exactly `bits` bits (msb set). bits >= 2.
  static BigUint random_bits(Rng& rng, int bits);

  /// Uniformly random value in [2, bound-2]; bound must exceed 4.
  static BigUint random_below(Rng& rng, const BigUint& bound);

  bool is_zero() const { return limbs_.empty(); }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  bool is_one() const { return limbs_.size() == 1 && limbs_[0] == 1; }

  /// Number of significant bits (0 for zero).
  int bit_length() const;
  /// Value of bit i (0 = least significant).
  bool bit(int i) const;

  std::size_t limb_count() const { return limbs_.size(); }
  std::uint64_t limb(std::size_t i) const { return i < limbs_.size() ? limbs_[i] : 0; }

  /// Big-endian byte serialization, zero-padded to `min_len` if given.
  Bytes to_bytes(std::size_t min_len = 0) const;
  std::string to_hex() const;

  /// Returns -1/0/+1 for this < / == / > other.
  int compare(const BigUint& other) const;

  bool operator==(const BigUint& o) const { return compare(o) == 0; }
  bool operator!=(const BigUint& o) const { return compare(o) != 0; }
  bool operator<(const BigUint& o) const { return compare(o) < 0; }
  bool operator<=(const BigUint& o) const { return compare(o) <= 0; }
  bool operator>(const BigUint& o) const { return compare(o) > 0; }
  bool operator>=(const BigUint& o) const { return compare(o) >= 0; }

  BigUint operator+(const BigUint& o) const;
  /// Subtraction; requires *this >= o.
  BigUint operator-(const BigUint& o) const;
  BigUint operator*(const BigUint& o) const;
  BigUint operator<<(int bits) const;
  BigUint operator>>(int bits) const;

  /// Quotient and remainder (in that order); divisor must be non-zero.
  std::pair<BigUint, BigUint> divmod(const BigUint& divisor) const;

  BigUint operator/(const BigUint& o) const { return divmod(o).first; }
  BigUint operator%(const BigUint& o) const { return divmod(o).second; }

  /// this^exp mod modulus. modulus must be odd (Montgomery) and > 1.
  BigUint mod_pow(const BigUint& exp, const BigUint& modulus) const;

  /// Modular inverse; returns zero when gcd(this, modulus) != 1.
  BigUint mod_inverse(const BigUint& modulus) const;

  static BigUint gcd(BigUint a, BigUint b);

  /// Remainder of division by a small value.
  std::uint64_t mod_u64(std::uint64_t m) const;

 private:
  void trim();
  friend class Montgomery;

  std::vector<std::uint64_t> limbs_;  // little-endian, normalized
};

/// Montgomery context for repeated modular multiplication mod an odd modulus.
class Montgomery {
 public:
  explicit Montgomery(const BigUint& modulus);

  /// x^e mod m using 4-bit fixed-window exponentiation.
  BigUint pow(const BigUint& base, const BigUint& exp) const;

  const BigUint& modulus() const { return modulus_; }

 private:
  std::vector<std::uint64_t> mont_mul(const std::vector<std::uint64_t>& a,
                                      const std::vector<std::uint64_t>& b) const;
  std::vector<std::uint64_t> to_mont(const BigUint& x) const;
  BigUint from_mont(const std::vector<std::uint64_t>& x) const;

  BigUint modulus_;
  BigUint rr_;  // R^2 mod m, for conversion into Montgomery form
  std::uint64_t n0_{0};  // -m^{-1} mod 2^64
  std::size_t n_{0};
};

/// Miller–Rabin probabilistic primality test with `rounds` random bases.
bool is_probable_prime(const BigUint& n, Rng& rng, int rounds = 32);

/// Generates a random prime with exactly `bits` bits.
BigUint generate_prime(Rng& rng, int bits);

}  // namespace nwade::crypto
