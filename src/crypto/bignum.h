// Arbitrary-precision unsigned integers with the operations RSA needs:
// add/sub/mul, division, modular exponentiation (Montgomery), modular inverse,
// and byte/hex conversions. 64-bit little-endian limbs, 128-bit intermediate
// arithmetic. Not constant-time: this is a simulation substrate, not a TLS
// stack, and the paper's evaluation only depends on realistic cost shapes.
//
// Allocation profile: limb storage is small-buffer optimized for the paper's
// key size — any value up to 2048 bits plus a carry limb lives inline, so
// add/sub/mul/divmod on RSA-sized operands never touch the heap. Montgomery
// exponentiation runs destination-passing over a caller-owned MontWorkspace
// (one flat buffer holding the window table and CIOS scratch), making the
// steady-state sign/verify paths allocation-free. Build with
// -DNWADE_COUNT_ALLOCS=ON to have the `alloc`-labeled tests enforce this.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <utility>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/rng.h"

namespace nwade::crypto {

namespace detail {

/// Small-buffer-optimized limb vector: the subset of std::vector<u64> the
/// bignum code uses, with inline capacity for a 2048-bit value plus one
/// carry limb. Values that outgrow the buffer (key generation's 4096-bit
/// intermediates) spill to the heap; everything on the sign/verify hot
/// paths stays inline.
class LimbVec {
 public:
  static constexpr std::size_t kInline = 33;  // 32 limbs = 2048 bits, + carry

  LimbVec() = default;
  LimbVec(const LimbVec& o) { assign_from(o); }
  LimbVec(LimbVec&& o) noexcept { steal(o); }
  LimbVec& operator=(const LimbVec& o) {
    if (this != &o) {
      size_ = 0;
      assign_from(o);
    }
    return *this;
  }
  LimbVec& operator=(LimbVec&& o) noexcept {
    if (this != &o) {
      release();
      steal(o);
    }
    return *this;
  }
  ~LimbVec() { release(); }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return cap_; }

  std::uint64_t* data() { return ptr_; }
  const std::uint64_t* data() const { return ptr_; }
  std::uint64_t* begin() { return ptr_; }
  std::uint64_t* end() { return ptr_ + size_; }
  const std::uint64_t* begin() const { return ptr_; }
  const std::uint64_t* end() const { return ptr_ + size_; }

  std::uint64_t& operator[](std::size_t i) { return ptr_[i]; }
  std::uint64_t operator[](std::size_t i) const { return ptr_[i]; }
  std::uint64_t& back() { return ptr_[size_ - 1]; }
  std::uint64_t back() const { return ptr_[size_ - 1]; }

  void push_back(std::uint64_t v) {
    if (size_ == cap_) grow(size_ + 1);
    ptr_[size_++] = v;
  }
  void pop_back() { --size_; }
  void clear() { size_ = 0; }

  /// Grows zero-filled (like std::vector's value-init) or shrinks in place.
  void resize(std::size_t n) {
    if (n > cap_) grow(n);
    if (n > size_) std::memset(ptr_ + size_, 0, (n - size_) * sizeof(std::uint64_t));
    size_ = n;
  }

  void assign(std::size_t n, std::uint64_t v) {
    if (n > cap_) grow(n);
    for (std::size_t i = 0; i < n; ++i) ptr_[i] = v;
    size_ = n;
  }

  void assign(const std::uint64_t* src, std::size_t n) {
    if (n > cap_) grow(n);
    std::memcpy(ptr_, src, n * sizeof(std::uint64_t));
    size_ = n;
  }

 private:
  void grow(std::size_t need) {
    std::size_t cap = cap_ * 2;
    if (cap < need) cap = need;
    auto* fresh = new std::uint64_t[cap];
    std::memcpy(fresh, ptr_, size_ * sizeof(std::uint64_t));
    release();
    ptr_ = fresh;
    cap_ = cap;
  }

  void release() {
    if (ptr_ != small_) delete[] ptr_;
    ptr_ = small_;
    cap_ = kInline;
  }

  void assign_from(const LimbVec& o) { assign(o.ptr_, o.size_); }

  /// Takes o's storage; leaves o empty with inline capacity.
  void steal(LimbVec& o) {
    if (o.ptr_ != o.small_) {
      ptr_ = o.ptr_;
      cap_ = o.cap_;
      o.ptr_ = o.small_;
      o.cap_ = kInline;
    } else {
      std::memcpy(small_, o.small_, o.size_ * sizeof(std::uint64_t));
      ptr_ = small_;
      cap_ = kInline;
    }
    size_ = o.size_;
    o.size_ = 0;
  }

  std::uint64_t small_[kInline];
  std::uint64_t* ptr_{small_};
  std::size_t size_{0};
  std::size_t cap_{kInline};
};

}  // namespace detail

/// Arbitrary-precision unsigned integer.
class BigUint {
 public:
  BigUint() = default;
  explicit BigUint(std::uint64_t v);

  /// Parses big-endian bytes (leading zeros allowed).
  static BigUint from_bytes(std::span<const std::uint8_t> be);

  /// Parses a hex string (no 0x prefix); returns zero on malformed input.
  static BigUint from_hex(std::string_view hex);

  /// Uniformly random value with exactly `bits` bits (msb set). bits >= 2.
  static BigUint random_bits(Rng& rng, int bits);

  /// Uniformly random value in [2, bound-2]; bound must exceed 4.
  static BigUint random_below(Rng& rng, const BigUint& bound);

  bool is_zero() const { return limbs_.empty(); }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  bool is_one() const { return limbs_.size() == 1 && limbs_[0] == 1; }

  /// Number of significant bits (0 for zero).
  int bit_length() const;
  /// Value of bit i (0 = least significant).
  bool bit(int i) const;

  std::size_t limb_count() const { return limbs_.size(); }
  std::uint64_t limb(std::size_t i) const { return i < limbs_.size() ? limbs_[i] : 0; }

  /// Big-endian byte serialization, zero-padded to `min_len` if given.
  Bytes to_bytes(std::size_t min_len = 0) const;
  std::string to_hex() const;

  /// Returns -1/0/+1 for this < / == / > other.
  int compare(const BigUint& other) const;

  bool operator==(const BigUint& o) const { return compare(o) == 0; }
  bool operator!=(const BigUint& o) const { return compare(o) != 0; }
  bool operator<(const BigUint& o) const { return compare(o) < 0; }
  bool operator<=(const BigUint& o) const { return compare(o) <= 0; }
  bool operator>(const BigUint& o) const { return compare(o) > 0; }
  bool operator>=(const BigUint& o) const { return compare(o) >= 0; }

  BigUint operator+(const BigUint& o) const;
  /// Subtraction; requires *this >= o.
  BigUint operator-(const BigUint& o) const;
  BigUint operator*(const BigUint& o) const;
  BigUint operator<<(int bits) const;
  BigUint operator>>(int bits) const;

  /// Quotient and remainder (in that order); divisor must be non-zero.
  std::pair<BigUint, BigUint> divmod(const BigUint& divisor) const;

  BigUint operator/(const BigUint& o) const { return divmod(o).first; }
  BigUint operator%(const BigUint& o) const { return divmod(o).second; }

  /// this^exp mod modulus. modulus must be odd (Montgomery) and > 1.
  BigUint mod_pow(const BigUint& exp, const BigUint& modulus) const;

  /// Modular inverse; returns zero when gcd(this, modulus) != 1.
  BigUint mod_inverse(const BigUint& modulus) const;

  static BigUint gcd(BigUint a, BigUint b);

  /// Remainder of division by a small value.
  std::uint64_t mod_u64(std::uint64_t m) const;

 private:
  void trim();
  friend class Montgomery;

  detail::LimbVec limbs_;  // little-endian, normalized
};

/// Reusable scratch for Montgomery exponentiation: one flat buffer that grows
/// to the largest request and is then handed out allocation-free. Not
/// thread-safe; each thread (or each exclusively-owned context) keeps its own.
class MontWorkspace {
 public:
  std::uint64_t* ensure(std::size_t limbs) {
    if (buf_.size() < limbs) buf_.resize(limbs);
    return buf_.data();
  }

 private:
  std::vector<std::uint64_t> buf_;
};

/// Montgomery context for repeated modular multiplication mod an odd modulus.
/// Immutable after construction — safe to share across threads (per-call
/// scratch comes from a MontWorkspace, not the context).
class Montgomery {
 public:
  explicit Montgomery(const BigUint& modulus);

  /// x^e mod m using 4-bit fixed-window exponentiation, scratch from `ws`.
  /// Steady-state allocation-free once the workspace has grown to size and
  /// the result fits BigUint's inline storage (any modulus <= 2048 bits).
  BigUint pow(const BigUint& base, const BigUint& exp, MontWorkspace& ws) const;

  /// Convenience overload using a thread-local workspace: repeated calls on
  /// any one thread reuse the same scratch, whichever context they go
  /// through. (The workspace cannot live in the context itself: one
  /// RsaVerifyContext fans out across the worker pool's threads.)
  BigUint pow(const BigUint& base, const BigUint& exp) const;

  /// Destination-passing CIOS multiply-reduce: dst = a*b*R^{-1} mod m, with
  /// a, b, dst all `limbs()` limbs and `scratch` at least limbs()+2. dst may
  /// alias a and/or b. Never allocates.
  void mont_mul(std::uint64_t* dst, const std::uint64_t* a,
                const std::uint64_t* b, std::uint64_t* scratch) const;

  /// Limbs per operand in this context (the modulus length).
  std::size_t limbs() const { return n_; }

  /// Workspace limbs pow() needs for this context (window table + scratch).
  std::size_t pow_workspace_limbs() const { return 19 * n_ + 2; }

  const BigUint& modulus() const { return modulus_; }

 private:
  /// dst (n limbs) = x * R mod m. Cold-path divmod only when x >= m.
  void to_mont(std::uint64_t* dst, const BigUint& x, std::uint64_t* scratch) const;

  BigUint modulus_;
  std::vector<std::uint64_t> rr_;        // R^2 mod m, n limbs
  std::vector<std::uint64_t> one_mont_;  // R mod m: Montgomery form of 1, n limbs
  std::vector<std::uint64_t> one_;       // plain 1 zero-padded to n limbs
  std::uint64_t n0_{0};  // -m^{-1} mod 2^64
  std::size_t n_{0};
};

/// Miller–Rabin probabilistic primality test with `rounds` random bases.
bool is_probable_prime(const BigUint& n, Rng& rng, int rounds = 32);

/// Generates a random prime with exactly `bits` bits.
BigUint generate_prime(Rng& rng, int bits);

}  // namespace nwade::crypto
