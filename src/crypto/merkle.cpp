#include "crypto/merkle.h"

namespace nwade::crypto {

Digest MerkleTree::hash_leaf(const Bytes& leaf) {
  Sha256 h;
  const std::uint8_t tag = 0x00;
  h.update(std::span<const std::uint8_t>(&tag, 1));
  h.update(leaf);
  return h.finish();
}

Digest MerkleTree::hash_interior(const Digest& left, const Digest& right) {
  Sha256 h;
  const std::uint8_t tag = 0x01;
  h.update(std::span<const std::uint8_t>(&tag, 1));
  h.update(left);
  h.update(right);
  return h.finish();
}

MerkleTree::MerkleTree(const std::vector<Bytes>& leaves) : leaf_count_(leaves.size()) {
  if (leaves.empty()) {
    root_ = sha256(std::string_view{});
    return;
  }
  std::vector<Digest> level;
  level.reserve(leaves.size());
  for (const Bytes& leaf : leaves) level.push_back(hash_leaf(leaf));
  levels_.push_back(level);
  while (levels_.back().size() > 1) {
    const auto& prev = levels_.back();
    std::vector<Digest> next;
    next.reserve((prev.size() + 1) / 2);
    for (std::size_t i = 0; i < prev.size(); i += 2) {
      // Odd node is paired with itself (Bitcoin-style duplication).
      const Digest& right = (i + 1 < prev.size()) ? prev[i + 1] : prev[i];
      next.push_back(hash_interior(prev[i], right));
    }
    levels_.push_back(std::move(next));
  }
  root_ = levels_.back()[0];
}

MerkleProof MerkleTree::prove(std::size_t index) const {
  MerkleProof proof;
  if (levels_.empty()) return proof;
  std::size_t i = index;
  for (std::size_t lvl = 0; lvl + 1 < levels_.size(); ++lvl) {
    const auto& level = levels_[lvl];
    const std::size_t sibling = (i % 2 == 0) ? i + 1 : i - 1;
    MerkleStep step;
    step.sibling = sibling < level.size() ? level[sibling] : level[i];
    step.sibling_on_left = (i % 2 == 1);
    proof.push_back(step);
    i /= 2;
  }
  return proof;
}

bool MerkleTree::verify(const Bytes& leaf, const MerkleProof& proof, const Digest& root) {
  Digest cur = hash_leaf(leaf);
  for (const MerkleStep& step : proof) {
    cur = step.sibling_on_left ? hash_interior(step.sibling, cur)
                               : hash_interior(cur, step.sibling);
  }
  return cur == root;
}

}  // namespace nwade::crypto
