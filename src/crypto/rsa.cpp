#include "crypto/rsa.h"

#include <cassert>

namespace nwade::crypto {
namespace {

// DER prefix for a SHA-256 DigestInfo (RFC 8017 §9.2 note 1).
constexpr std::uint8_t kSha256DigestInfo[] = {
    0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01,
    0x65, 0x03, 0x04, 0x02, 0x01, 0x05, 0x00, 0x04, 0x20};

/// EMSA-PKCS1-v1_5 encoding of a SHA-256 digest into `em_len` bytes.
Bytes emsa_encode(const Digest& digest, std::size_t em_len) {
  const std::size_t t_len = sizeof(kSha256DigestInfo) + digest.size();
  assert(em_len >= t_len + 11);
  Bytes em(em_len, 0xff);
  em[0] = 0x00;
  em[1] = 0x01;
  em[em_len - t_len - 1] = 0x00;
  std::copy(std::begin(kSha256DigestInfo), std::end(kSha256DigestInfo),
            em.end() - static_cast<std::ptrdiff_t>(t_len));
  std::copy(digest.begin(), digest.end(),
            em.end() - static_cast<std::ptrdiff_t>(digest.size()));
  return em;
}

}  // namespace

RsaKeyPair rsa_generate(Rng& rng, int modulus_bits) {
  assert(modulus_bits >= 256 && modulus_bits % 2 == 0);
  const BigUint e(65537);
  for (;;) {
    BigUint p = generate_prime(rng, modulus_bits / 2);
    BigUint q = generate_prime(rng, modulus_bits / 2);
    if (p == q) continue;
    if (p < q) std::swap(p, q);  // CRT convention: p > q
    const BigUint n = p * q;
    if (n.bit_length() != modulus_bits) continue;
    const BigUint p1 = p - BigUint(1);
    const BigUint q1 = q - BigUint(1);
    const BigUint phi = p1 * q1;
    if (BigUint::gcd(e, phi) != BigUint(1)) continue;
    const BigUint d = e.mod_inverse(phi);
    assert(!d.is_zero());

    RsaKeyPair kp;
    kp.pub = RsaPublicKey{n, e};
    kp.priv.n = n;
    kp.priv.d = d;
    kp.priv.p = p;
    kp.priv.q = q;
    kp.priv.dp = d % p1;
    kp.priv.dq = d % q1;
    kp.priv.q_inv = q.mod_inverse(p);
    return kp;
  }
}

Bytes rsa_sign(const RsaPrivateKey& key, std::span<const std::uint8_t> msg) {
  return RsaSignContext(key).sign(msg);
}

RsaSignContext::RsaSignContext(RsaPrivateKey key)
    : key_(std::move(key)),
      mont_p_(key_.p),
      mont_q_(key_.q),
      k_(static_cast<std::size_t>(key_.n.bit_length() + 7) / 8) {}

Bytes RsaSignContext::sign(std::span<const std::uint8_t> msg) const {
  const Bytes em = emsa_encode(sha256(msg), k_);
  const BigUint m = BigUint::from_bytes(em);

  // CRT: s = CRT(m^dp mod p, m^dq mod q).
  const BigUint s1 = mont_p_.pow(m % key_.p, key_.dp);
  const BigUint s2 = mont_q_.pow(m % key_.q, key_.dq);
  // h = q_inv * (s1 - s2) mod p
  BigUint diff;
  if (s1 >= s2 % key_.p) {
    diff = s1 - (s2 % key_.p);
  } else {
    diff = s1 + key_.p - (s2 % key_.p);
  }
  const BigUint h = (key_.q_inv * diff) % key_.p;
  const BigUint s = s2 + key_.q * h;
  return s.to_bytes(k_);
}

bool rsa_verify(const RsaPublicKey& key, std::span<const std::uint8_t> msg,
                std::span<const std::uint8_t> sig) {
  const std::size_t k = key.modulus_bytes();
  if (sig.size() != k) return false;
  const BigUint s = BigUint::from_bytes(sig);
  if (s >= key.n) return false;
  const BigUint m = s.mod_pow(key.e, key.n);
  const Bytes em = m.to_bytes(k);
  const Bytes expected = emsa_encode(sha256(msg), k);
  return em == expected;
}

RsaVerifyContext::RsaVerifyContext(RsaPublicKey key)
    : key_(std::move(key)), mont_(key_.n), k_(key_.modulus_bytes()) {
  const Bytes n_bytes = key_.n.to_bytes(k_);
  const Bytes e_bytes =
      key_.e.to_bytes(static_cast<std::size_t>(key_.e.bit_length() + 7) / 8);
  ByteWriter sizes;
  sizes.u64(n_bytes.size());
  sizes.u64(e_bytes.size());
  Sha256 h;
  h.update(sizes.data());
  h.update(n_bytes);
  h.update(e_bytes);
  fingerprint_ = h.finish();
}

bool RsaVerifyContext::verify(std::span<const std::uint8_t> msg,
                              std::span<const std::uint8_t> sig) const {
  if (sig.size() != k_) return false;
  const BigUint s = BigUint::from_bytes(sig);
  if (s >= key_.n) return false;
  const BigUint m = mont_.pow(s, key_.e);
  const Bytes em = m.to_bytes(k_);
  const Bytes expected = emsa_encode(sha256(msg), k_);
  return em == expected;
}

}  // namespace nwade::crypto
