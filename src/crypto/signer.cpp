#include "crypto/signer.h"

#include "crypto/verify_cache.h"

namespace nwade::crypto {

namespace {

class RsaVerifier final : public Verifier {
 public:
  /// `cache` == nullptr memoizes into the process-wide instance; a non-null
  /// cache scopes the verdicts to one run (campaign isolation). A non-null
  /// `batch` is a per-step side-table of prefetched verdicts consulted only
  /// after a counted cache miss (see Signer::verifier_with_cache).
  explicit RsaVerifier(RsaPublicKey pub, SigVerifyCache* cache = nullptr,
                       const SigBatchTable* batch = nullptr)
      : ctx_(std::move(pub)), cache_(cache), batch_(batch) {}
  bool verify(std::span<const std::uint8_t> msg,
              std::span<const std::uint8_t> sig) const override {
    // One modexp per distinct (key, msg, sig) per cache: every other
    // receiver of the same broadcast block hits the cache. Pure-function
    // caching, so the answer is identical either way.
    auto& cache = cache_ != nullptr ? *cache_ : SigVerifyCache::instance();
    const Digest key = SigVerifyCache::key_of(ctx_.fingerprint(), msg, sig);
    if (const auto cached = cache.lookup(key)) return *cached;
    // The miss has been counted; a prefetched verdict only replaces the
    // modexp, so cache contents AND stats match the unprefetched run.
    std::optional<bool> pre;
    if (batch_ != nullptr) pre = batch_->find(key);
    const bool ok = pre ? *pre : ctx_.verify(msg, sig);
    cache.store(key, ok);
    return ok;
  }

  const Digest* key_fingerprint() const override { return &ctx_.fingerprint(); }

  bool verify_uncached(std::span<const std::uint8_t> msg,
                       std::span<const std::uint8_t> sig) const override {
    return ctx_.verify(msg, sig);
  }

 private:
  RsaVerifyContext ctx_;
  SigVerifyCache* cache_;
  const SigBatchTable* batch_;
};

class HmacVerifier final : public Verifier {
 public:
  explicit HmacVerifier(Bytes key) : key_(std::move(key)) {}
  bool verify(std::span<const std::uint8_t> msg,
              std::span<const std::uint8_t> sig) const override {
    const Digest mac = hmac_sha256(key_, msg);
    return sig.size() == mac.size() && std::equal(sig.begin(), sig.end(), mac.begin());
  }

 private:
  Bytes key_;
};

}  // namespace

RsaSigner::RsaSigner(RsaKeyPair key_pair)
    : key_(std::move(key_pair)),
      sign_ctx_(key_.priv),
      verifier_(std::make_shared<RsaVerifier>(key_.pub)) {}

std::unique_ptr<RsaSigner> RsaSigner::generate(Rng& rng, int modulus_bits) {
  return std::make_unique<RsaSigner>(rsa_generate(rng, modulus_bits));
}

Bytes RsaSigner::sign(std::span<const std::uint8_t> msg) const {
  return sign_ctx_.sign(msg);
}

std::shared_ptr<const Verifier> RsaSigner::verifier() const { return verifier_; }

std::shared_ptr<const Verifier> RsaSigner::verifier_with_cache(
    SigVerifyCache& cache, const SigBatchTable* batch) const {
  return std::make_shared<RsaVerifier>(key_.pub, &cache, batch);
}

HmacSigner::HmacSigner(Bytes key)
    : key_(std::move(key)), verifier_(std::make_shared<HmacVerifier>(key_)) {}

Bytes HmacSigner::sign(std::span<const std::uint8_t> msg) const {
  const Digest mac = hmac_sha256(key_, msg);
  return Bytes(mac.begin(), mac.end());
}

std::shared_ptr<const Verifier> HmacSigner::verifier() const { return verifier_; }

}  // namespace nwade::crypto
