#!/usr/bin/env bash
# Full verification sweep: the default tree runs every suite (unit, chaos,
# perf smokes, obs, the soak SIGKILL smoke, campaign CLI, the bench_diff.py
# unittests); the sanitizer trees rebuild the whole stack instrumented and
# run their intended payload — the chaos label (fault injection,
# corrupt-wire fuzzing, threaded campaign fan-out, the grid shard fan-out:
# grid_parallel_test and the bench_grid smoke both carry it; see
# docs/FAULT_MODEL.md, docs/CHECKPOINT.md, docs/GRID.md).
#
#   scripts/check.sh              # default + ASan + TSan
#   scripts/check.sh default      # just the default tree
#   scripts/check.sh asan tsan    # just the sanitizer trees
#
# Opt-in perf-regression stage (never part of the default sweep):
#
#   NWADE_BENCH_BASELINE_DIR=/path/to/baselines scripts/check.sh bench-diff
#
# compares every checked-in BENCH_*.json against the same-named envelope in
# the baseline directory via scripts/bench_diff.py. The tolerated regression
# percentage is NWADE_BENCH_DIFF_THRESHOLD (default 10).
#
# Build dirs: build/ (default), build-asan/, build-tsan/. Existing dirs are
# reused (incremental); delete one to force a clean configure.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"

stages=("$@")
if [[ ${#stages[@]} -eq 0 ]]; then
  stages=(default asan tsan)
fi

run_tree() { # dir cmake-extra-args... -- ctest-args...
  local dir="$1"; shift
  local cmake_args=()
  while [[ $# -gt 0 && "$1" != "--" ]]; do cmake_args+=("$1"); shift; done
  shift # the --
  cmake -B "$dir" -DCMAKE_BUILD_TYPE=Release "${cmake_args[@]}"
  cmake --build "$dir" -j "$JOBS"
  ctest --test-dir "$dir" --output-on-failure "$@"
}

for stage in "${stages[@]}"; do
  case "$stage" in
    default)
      echo "=== default tree: full suite ==="
      run_tree build --
      ;;
    asan)
      echo "=== ASan tree: chaos suite ==="
      run_tree build-asan -DSANITIZE=address -- -L chaos
      ;;
    tsan)
      echo "=== TSan tree: chaos suite ==="
      run_tree build-tsan -DSANITIZE=thread -- -L chaos
      ;;
    bench-diff)
      echo "=== bench-diff: BENCH_*.json vs baseline envelopes ==="
      : "${NWADE_BENCH_BASELINE_DIR:?bench-diff needs NWADE_BENCH_BASELINE_DIR=<dir with baseline BENCH_*.json>}"
      threshold="${NWADE_BENCH_DIFF_THRESHOLD:-10}"
      for envelope in BENCH_*.json; do
        baseline="$NWADE_BENCH_BASELINE_DIR/$envelope"
        if [[ ! -f "$baseline" ]]; then
          echo "skip $envelope (no baseline in $NWADE_BENCH_BASELINE_DIR)"
          continue
        fi
        python3 scripts/bench_diff.py "$baseline" "$envelope" \
          --threshold "$threshold" --speedup-threshold "$threshold"
      done
      ;;
    *)
      echo "unknown stage '$stage' (want: default asan tsan bench-diff)" >&2
      exit 2
      ;;
  esac
done

echo "check.sh: all requested stages passed"
