#!/usr/bin/env python3
"""Compare two nwade-bench-v1 envelopes phase by phase.

Usage:
    scripts/bench_diff.py BASELINE.json CANDIDATE.json [--threshold PCT]
                          [--speedup-threshold PCT] [--strict]

For every timing phase present in both envelopes, reports the median_ms
delta; for every speedup phase, the speedup_x delta. Exits nonzero when a
timing phase regresses (median grows) by more than --threshold percent, or a
speedup phase shrinks by more than --speedup-threshold percent. Phases
present on only one side are listed but never fail the diff (drivers grow
phases across PRs) unless --strict is given.

Guard rails baked into the envelope schema are honored: a comparison where
either side carries `single_core_host: "true"` marks every thread-scaling
verdict advisory (thread-scaling numbers from a 1-core host measure pool
overhead, not speedup), and mismatched `hardware_concurrency` downgrades
failures to warnings unless --strict forces them.

Stdlib only — no third-party imports.
"""

import argparse
import json
import sys


def load_envelope(path):
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    if data.get("schema") != "nwade-bench-v1":
        raise SystemExit(f"{path}: not an nwade-bench-v1 envelope "
                         f"(schema={data.get('schema')!r})")
    return data


def phases_by_name(env):
    out = {}
    for phase in env.get("phases", []):
        name = phase.get("name")
        if name:
            out[name] = phase
    return out


def fmt_pct(x):
    return f"{x:+.1f}%"


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--threshold", type=float, default=10.0,
                    help="max tolerated median_ms regression, percent "
                         "(default: 10)")
    ap.add_argument("--speedup-threshold", type=float, default=10.0,
                    help="max tolerated speedup_x shrink, percent "
                         "(default: 10)")
    ap.add_argument("--strict", action="store_true",
                    help="fail on phases present on only one side and on "
                         "cross-hardware regressions")
    args = ap.parse_args()

    base = load_envelope(args.baseline)
    cand = load_envelope(args.candidate)
    base_phases = phases_by_name(base)
    cand_phases = phases_by_name(cand)

    hw_base = base.get("hardware_concurrency")
    hw_cand = cand.get("hardware_concurrency")
    comparable_hw = hw_base == hw_cand
    single_core = (str(base.get("single_core_host", "")).lower() == "true" or
                   str(cand.get("single_core_host", "")).lower() == "true")

    print(f"baseline:  {args.baseline} (sha {base.get('git_sha')}, "
          f"{hw_base} hw threads)")
    print(f"candidate: {args.candidate} (sha {cand.get('git_sha')}, "
          f"{hw_cand} hw threads)")
    if not comparable_hw:
        print("note: hardware_concurrency differs — timing deltas are "
              "cross-hardware and advisory" +
              (" (strict: still enforced)" if args.strict else ""))
    if single_core:
        print("note: at least one side was recorded on a 1-core host — "
              "thread-scaling speedups are advisory")

    failures = []
    warnings = []
    only_one_side = sorted(set(base_phases) ^ set(cand_phases))

    for name in sorted(set(base_phases) & set(cand_phases)):
        b, c = base_phases[name], cand_phases[name]
        if "median_ms" in b and "median_ms" in c:
            if b["median_ms"] <= 0:
                continue
            delta = 100.0 * (c["median_ms"] - b["median_ms"]) / b["median_ms"]
            verdict = "ok"
            if delta > args.threshold:
                if comparable_hw or args.strict:
                    verdict = "REGRESSION"
                    failures.append(name)
                else:
                    verdict = "regression? (cross-hardware)"
                    warnings.append(name)
            print(f"  {name}: {b['median_ms']:.2f} ms -> "
                  f"{c['median_ms']:.2f} ms ({fmt_pct(delta)}) {verdict}")
        elif "speedup_x" in b and "speedup_x" in c:
            if b["speedup_x"] <= 0:
                continue
            delta = 100.0 * (c["speedup_x"] - b["speedup_x"]) / b["speedup_x"]
            verdict = "ok"
            if delta < -args.speedup_threshold:
                if single_core and not args.strict:
                    verdict = "shrunk (advisory: single-core host)"
                    warnings.append(name)
                elif comparable_hw or args.strict:
                    verdict = "REGRESSION"
                    failures.append(name)
                else:
                    verdict = "shrunk? (cross-hardware)"
                    warnings.append(name)
            print(f"  {name}: {b['speedup_x']:.3f}x -> "
                  f"{c['speedup_x']:.3f}x ({fmt_pct(delta)}) {verdict}")
        else:
            print(f"  {name}: phase shape changed (timing vs speedup) — "
                  f"skipped")
            warnings.append(name)

    for name in only_one_side:
        side = "baseline" if name in base_phases else "candidate"
        print(f"  {name}: only in {side}")
        if args.strict:
            failures.append(name)
        else:
            warnings.append(name)

    if failures:
        print(f"FAIL: {len(failures)} phase(s) regressed beyond "
              f"{args.threshold:.0f}%: {', '.join(sorted(set(failures)))}")
        return 1
    if warnings:
        print(f"ok with {len(warnings)} advisory note(s)")
    else:
        print("ok: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
