// Live stream consumer: connects to a serve host (or reads a stream file)
// and renders an nwade-stream-v1 feed as a per-shard health table plus a
// rolling detection-event log.
//
//   ./build/examples/monitor --connect 127.0.0.1:7788
//   ./build/examples/monitor --in run.stream            # post-hoc
//   ./build/examples/monitor --in run.stream --follow   # tail a live file
//
// The monitor is intentionally dumb: it understands the framing and the
// top-level fields (svc/frame.h extractors) and keeps no simulation state,
// so it can join mid-run — serve greets late joiners with a hello plus a
// cumulative metrics_total before live frames.
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "svc/frame.h"

using namespace nwade;

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s (--connect HOST:PORT | --in PATH) [options]\n"
      "  --connect HOST:PORT   read the stream from a serve host\n"
      "  --in PATH             read the stream from a file\n"
      "  --follow              with --in: keep reading as the file grows\n"
      "  --max-frames N        exit after N frames (0 = until stream ends)\n"
      "  --quiet               detection log only, no periodic tables\n",
      argv0);
}

struct ShardRow {
  Tick t_ms{0};
  std::int64_t active{0}, spawned{0}, exited{0}, blacklist{0};
  std::int64_t degraded{0}, im_crashes{0}, im_restarts{0}, gap_violations{0};
  bool seen{false};
};

struct View {
  std::string source;
  int rows{0}, cols{0};
  std::vector<ShardRow> shards;
  std::string status_line;
  std::deque<std::string> events;  // rolling detection log
  std::uint64_t frames{0};
  std::uint64_t trace_events{0};
  Tick t_ms{0};
  bool ended{false};
  bool quiet{false};

  void render() const {
    std::printf("\n== t=%8lld ms  (%llu frames", static_cast<long long>(t_ms),
                static_cast<unsigned long long>(frames));
    if (trace_events > 0) {
      std::printf(", %llu detection events",
                  static_cast<unsigned long long>(trace_events));
    }
    std::printf(") ==\n");
    std::printf("%-7s %-8s %-9s %-8s %-10s %-9s %-8s %-9s\n", "shard",
                "active", "spawned", "exited", "blacklist", "degraded",
                "crashes", "gap_viol");
    for (std::size_t i = 0; i < shards.size(); ++i) {
      const ShardRow& r = shards[i];
      if (!r.seen) continue;
      std::printf("(%d,%d)  %-8lld %-9lld %-8lld %-10lld %-9lld %-8lld "
                  "%-9lld\n",
                  cols > 0 ? static_cast<int>(i) / cols : 0,
                  cols > 0 ? static_cast<int>(i) % cols : 0,
                  static_cast<long long>(r.active),
                  static_cast<long long>(r.spawned),
                  static_cast<long long>(r.exited),
                  static_cast<long long>(r.blacklist),
                  static_cast<long long>(r.degraded),
                  static_cast<long long>(r.im_crashes),
                  static_cast<long long>(r.gap_violations));
    }
    if (!status_line.empty()) std::printf("%s\n", status_line.c_str());
    std::fflush(stdout);
  }
};

void handle_frame(View& v, const std::string& json) {
  ++v.frames;
  const std::string kind = svc::frame_str(json, "kind").value_or("");
  if (const auto t = svc::frame_int(json, "t_ms")) v.t_ms = *t;
  if (kind == "hello") {
    v.source = svc::frame_str(json, "source").value_or("?");
    v.rows = static_cast<int>(svc::frame_int(json, "rows").value_or(1));
    v.cols = static_cast<int>(svc::frame_int(json, "cols").value_or(1));
    v.shards.assign(
        static_cast<std::size_t>(std::max(1, v.rows * v.cols)), ShardRow{});
    std::printf("monitor: %s stream, %dx%d, cadence %lld ms\n",
                v.source.c_str(), v.rows, v.cols,
                static_cast<long long>(
                    svc::frame_int(json, "cadence_ms").value_or(0)));
    std::fflush(stdout);
  } else if (kind == "health") {
    const auto shard = svc::frame_int(json, "shard").value_or(0);
    if (shard < 0) return;
    if (static_cast<std::size_t>(shard) >= v.shards.size()) {
      v.shards.resize(static_cast<std::size_t>(shard) + 1);
    }
    ShardRow& r = v.shards[static_cast<std::size_t>(shard)];
    r.seen = true;
    r.t_ms = v.t_ms;
    r.active = svc::frame_int(json, "active").value_or(0);
    r.spawned = svc::frame_int(json, "spawned").value_or(0);
    r.exited = svc::frame_int(json, "exited").value_or(0);
    r.blacklist = svc::frame_int(json, "blacklist").value_or(0);
    r.degraded = svc::frame_int(json, "degraded").value_or(0);
    r.im_crashes = svc::frame_int(json, "im_crashes").value_or(0);
    r.im_restarts = svc::frame_int(json, "im_restarts").value_or(0);
    r.gap_violations = svc::frame_int(json, "gap_violations").value_or(0);
  } else if (kind == "status") {
    char buf[256];
    std::snprintf(
        buf, sizeof(buf),
        "handoffs %lld sent / %lld delivered, gossip %lld sent / %lld "
        "imported, %lld retired",
        static_cast<long long>(
            svc::frame_int(json, "handoffs_sent").value_or(0)),
        static_cast<long long>(
            svc::frame_int(json, "handoffs_delivered").value_or(0)),
        static_cast<long long>(svc::frame_int(json, "gossip_sent").value_or(0)),
        static_cast<long long>(
            svc::frame_int(json, "gossip_imports").value_or(0)),
        static_cast<long long>(svc::frame_int(json, "retired").value_or(0)));
    v.status_line = buf;
  } else if (kind == "trace") {
    ++v.trace_events;
    const std::string cat = svc::frame_str(json, "cat").value_or("?");
    const std::string name = svc::frame_str(json, "name").value_or("?");
    char line[192];
    std::snprintf(line, sizeof(line), "t=%8lld  shard %lld  [%s] %s",
                  static_cast<long long>(v.t_ms),
                  static_cast<long long>(
                      svc::frame_int(json, "shard").value_or(0)),
                  cat.c_str(), name.c_str());
    v.events.emplace_back(line);
    if (v.events.size() > 20) v.events.pop_front();
    std::printf("%s\n", line);
    std::fflush(stdout);
  } else if (kind == "heartbeat") {
    if (!v.quiet) v.render();
  } else if (kind == "metrics_total") {
    v.ended = true;
  }
  // "metrics" deltas are counted but not rendered — the health rows carry
  // the operationally interesting numbers already decoded.
}

int run_stream(View& v, const std::function<long(char*, std::size_t)>& read_fn,
               bool follow, std::uint64_t max_frames) {
  svc::FrameParser parser;
  std::string json;
  char buf[4096];
  for (;;) {
    bool progressed = false;
    while (parser.next(json)) {
      handle_frame(v, json);
      progressed = true;
      if (max_frames > 0 && v.frames >= max_frames) return 0;
    }
    if (parser.corrupt()) {
      std::fprintf(stderr, "monitor: corrupt stream\n");
      return 1;
    }
    const long n = read_fn(buf, sizeof(buf));
    if (n > 0) {
      parser.feed({buf, static_cast<std::size_t>(n)});
      continue;
    }
    if (n == 0) {  // EOF / peer closed
      if (follow && !v.ended) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        continue;
      }
      if (!progressed) break;
      continue;
    }
    std::fprintf(stderr, "monitor: read error: %s\n", std::strerror(errno));
    return 1;
  }
  if (!v.quiet || v.ended) v.render();
  if (parser.pending() > 0) {
    std::fprintf(stderr, "monitor: stream ended mid-frame\n");
    return 1;
  }
  return v.ended || v.frames > 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string connect_spec;
  std::string in_path;
  bool follow = false;
  std::uint64_t max_frames = 0;
  View v;

  auto value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      std::exit(2);
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--connect") {
      connect_spec = value(i);
    } else if (arg == "--in") {
      in_path = value(i);
    } else if (arg == "--follow") {
      follow = true;
    } else if (arg == "--max-frames") {
      max_frames = std::strtoull(value(i), nullptr, 10);
    } else if (arg == "--quiet") {
      v.quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (connect_spec.empty() == in_path.empty()) {
    std::fprintf(stderr, "exactly one of --connect / --in is required\n");
    usage(argv[0]);
    return 2;
  }

  if (!in_path.empty()) {
    std::FILE* f = std::fopen(in_path.c_str(), "rb");
    if (!f) {
      std::fprintf(stderr, "monitor: cannot open %s: %s\n", in_path.c_str(),
                   std::strerror(errno));
      return 1;
    }
    const int rc = run_stream(
        v,
        [f](char* buf, std::size_t n) {
          const std::size_t got = std::fread(buf, 1, n, f);
          if (got > 0) return static_cast<long>(got);
          if (std::feof(f)) {
            std::clearerr(f);  // --follow: the file may still grow
            return 0L;
          }
          return -1L;
        },
        follow, max_frames);
    std::fclose(f);
    return rc;
  }

  const auto colon = connect_spec.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "--connect wants HOST:PORT\n");
    return 2;
  }
  const std::string host = connect_spec.substr(0, colon);
  const int port = std::atoi(connect_spec.c_str() + colon + 1);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::fprintf(stderr, "monitor: socket: %s\n", std::strerror(errno));
    return 1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    std::fprintf(stderr, "monitor: bad host %s (numeric IPv4 only)\n",
                 host.c_str());
    ::close(fd);
    return 2;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    std::fprintf(stderr, "monitor: connect %s: %s\n", connect_spec.c_str(),
                 std::strerror(errno));
    ::close(fd);
    return 1;
  }
  std::printf("monitor: connected to %s\n", connect_spec.c_str());
  const int rc = run_stream(
      v,
      [fd](char* buf, std::size_t n) {
        return static_cast<long>(::recv(fd, buf, n, 0));
      },
      /*follow=*/false, max_frames);
  ::close(fd);
  return rc;
}
