// Crash-survivable soak driver (docs/CHECKPOINT.md).
//
// Runs one long scenario in snapshot-sized slices, writing an `nwade-ckpt-v1`
// checkpoint to --state after every slice (atomically: tmp file + rename, so
// a kill mid-write leaves the previous snapshot intact). Started again with
// the same --state path it resumes from the last snapshot and — because
// restore is bit-exact — finishes with the same final digest an uninterrupted
// run prints. SIGKILL at any moment costs at most one slice of progress.
//
// Each snapshot doubles as an invariant probe: the saved bytes are restored
// into a scratch world and re-saved, and the two blobs must match byte for
// byte. On a violation the driver dumps an `nwade-replay-v1` bundle
// (scenario + the failing time) to --replay-out and exits nonzero; replaying
// the bundle (examples/replay) under ASan/TSan reproduces the incident from
// the seed alone.
//
//   ./build/examples/soak --state soak.ckpt --duration-ms 600000 --chaos
//   # ... SIGKILL it, then run the same command again: it resumes.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "nwade/config.h"
#include "sim/checkpoint.h"
#include "sim/world.h"

using namespace nwade;

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --state PATH           checkpoint file; resumed from when present\n"
      "                         (default soak.ckpt)\n"
      "  --snapshot-every-ms N  simulated time between snapshots (default 10000)\n"
      "  --duration-ms N        simulated run length (default 300000)\n"
      "  --kind NAME            intersection layout (default cross4)\n"
      "  --vpm N                traffic density (default 80)\n"
      "  --seed N               scenario seed (default 1)\n"
      "  --attack NAME          Table I setting (default benign)\n"
      "  --chaos                burst loss + jitter + duplication fault profile\n"
      "  --max-snapshots N      exit 0 after N snapshots this process (0 = run\n"
      "                         to completion; lets tests stage a restart\n"
      "                         without an actual SIGKILL)\n"
      "  --record-bundle PATH   on completion, write a replay bundle of the\n"
      "                         whole run with its final digest\n"
      "  --replay-out PATH      bundle dumped on invariant violation\n"
      "                         (default soak-replay.bin)\n"
      "  --metrics-out PATH     final registry snapshot as JSON\n"
      "  --trace-out PATH       Chrome trace_event JSON (implies tracing;\n"
      "                         a resumed run records from the resume point)\n"
      "  --trace-jsonl-out PATH JSONL trace (implies tracing)\n",
      argv0);
}

bool parse_kind(const std::string& token, traffic::IntersectionKind& out) {
  for (const auto kind : traffic::kAllIntersectionKinds) {
    if (token == intersection_name(kind)) {
      out = kind;
      return true;
    }
  }
  return false;
}

bool write_file_atomic(const std::string& path, const Bytes& blob) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) return false;
  const bool wrote =
      std::fwrite(blob.data(), 1, blob.size(), f) == blob.size() &&
      std::fflush(f) == 0;
  std::fclose(f);
  if (!wrote) {
    std::remove(tmp.c_str());
    return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

Bytes read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return {};
  Bytes out;
  std::uint8_t buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.insert(out.end(), buf, buf + n);
  }
  std::fclose(f);
  return out;
}

/// Dumps a replay bundle for an incident at time `t` and reports where.
void dump_replay(const std::string& path, const sim::ScenarioConfig& config,
                 Tick t, const std::string& note) {
  sim::checkpoint::ReplayBundle bundle;
  bundle.config = config;
  bundle.config.trace_enabled = false;
  bundle.run_to = t;
  bundle.note = note;
  if (write_file_atomic(path, sim::checkpoint::save_replay_bundle(bundle))) {
    std::fprintf(stderr, "soak: wrote replay bundle %s (%s)\n", path.c_str(),
                 note.c_str());
  } else {
    std::fprintf(stderr, "soak: FAILED to write replay bundle %s\n",
                 path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string state_path = "soak.ckpt";
  std::string replay_path = "soak-replay.bin";
  std::string record_bundle_path;
  std::string metrics_path;
  std::string trace_path;
  std::string trace_jsonl_path;
  Duration snapshot_every_ms = 10'000;
  int max_snapshots = 0;

  sim::ScenarioConfig scenario;
  scenario.duration_ms = 300'000;
  bool chaos = false;

  auto value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      std::exit(2);
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--state") {
      state_path = value(i);
    } else if (arg == "--snapshot-every-ms") {
      snapshot_every_ms = std::atol(value(i));
    } else if (arg == "--duration-ms") {
      scenario.duration_ms = std::atol(value(i));
    } else if (arg == "--kind") {
      if (!parse_kind(value(i), scenario.intersection.kind)) {
        std::fprintf(stderr, "unknown intersection kind '%s'\n", argv[i]);
        return 2;
      }
    } else if (arg == "--vpm") {
      scenario.vehicles_per_minute = std::atof(value(i));
    } else if (arg == "--seed") {
      scenario.seed = std::strtoull(value(i), nullptr, 10);
    } else if (arg == "--attack") {
      scenario.attack = protocol::attack_setting_by_name(value(i));
    } else if (arg == "--chaos") {
      chaos = true;
    } else if (arg == "--max-snapshots") {
      max_snapshots = std::atoi(value(i));
    } else if (arg == "--record-bundle") {
      record_bundle_path = value(i);
    } else if (arg == "--replay-out") {
      replay_path = value(i);
    } else if (arg == "--metrics-out") {
      metrics_path = value(i);
    } else if (arg == "--trace-out") {
      trace_path = value(i);
    } else if (arg == "--trace-jsonl-out") {
      trace_jsonl_path = value(i);
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (snapshot_every_ms <= 0 || scenario.duration_ms <= 0) {
    std::fprintf(stderr,
                 "--snapshot-every-ms and --duration-ms must be positive\n");
    return 2;
  }
  if (chaos) {
    scenario.network.fault = net::burst_loss_profile(0.05, 4.0);
    scenario.network.fault.jitter_ms = 20;
    scenario.network.fault.duplicate_probability = 0.02;
  }
  const bool want_trace = !trace_path.empty() || !trace_jsonl_path.empty();
  if (want_trace) scenario.trace_enabled = true;

  // Preflight every export path BEFORE the run (campaign CLI contract): a
  // typo'd directory should fail in milliseconds, not after a long soak.
  // Append mode probes writability without clobbering existing content; a
  // path the probe had to create is removed again.
  for (const std::string* path :
       {&metrics_path, &trace_path, &trace_jsonl_path}) {
    if (path->empty()) continue;
    std::FILE* probe_existing = std::fopen(path->c_str(), "rb");
    const bool existed = probe_existing != nullptr;
    if (probe_existing) std::fclose(probe_existing);
    std::FILE* probe = std::fopen(path->c_str(), "ab");
    if (!probe) {
      std::fprintf(stderr, "cannot write output path %s: %s\n", path->c_str(),
                   std::strerror(errno));
      return 1;
    }
    std::fclose(probe);
    if (!existed) std::remove(path->c_str());
  }

  // Resume from the state file when it holds a valid checkpoint; any other
  // content (missing, truncated by a crash before the first rename, corrupt)
  // starts the scenario from scratch. The checkpoint carries the complete
  // scenario config, so the resumed run ignores the CLI scenario flags — the
  // state file, not the command line, is the authority on what is running.
  std::unique_ptr<sim::World> world;
  const Bytes saved = read_file(state_path);
  if (!saved.empty()) {
    std::string error;
    world = sim::World::checkpoint_restore(saved, &error);
    if (world) {
      std::printf("soak: resumed %s at t=%lld ms\n", state_path.c_str(),
                  static_cast<long long>(world->now()));
    } else {
      std::fprintf(stderr, "soak: ignoring unusable state %s (%s)\n",
                   state_path.c_str(), error.c_str());
    }
  }
  if (!world) {
    world = std::make_unique<sim::World>(scenario);
    std::printf("soak: fresh run, %lld ms, snapshot every %lld ms\n",
                static_cast<long long>(scenario.duration_ms),
                static_cast<long long>(snapshot_every_ms));
  }

  // A resumed world carries its own scenario (duration included) in the
  // checkpoint; re-read it so a rerun needs no scenario flags at all.
  scenario = world->config();
  const Tick duration = scenario.duration_ms;
  // The checkpoint's config governs tracing, so a resumed world may have it
  // off even when this process was asked for a trace export; switch the
  // tracer on from here onward (the export covers resume point to finish).
  if (want_trace) world->tracer().set_enabled(true);
  int snapshots = 0;
  while (world->now() < duration) {
    const Tick next = std::min<Tick>(world->now() + snapshot_every_ms, duration);
    world->run_until(next);
    if (world->now() >= duration) break;

    const Bytes blob = world->checkpoint_save();

    // Invariant probe: the snapshot must restore into a world that re-saves
    // to the very same bytes. A mismatch means some state escaped the
    // checkpoint — exactly the class of bug a soak exists to catch early.
    {
      std::string error;
      std::unique_ptr<sim::World> probe =
          sim::World::checkpoint_restore(blob, &error);
      if (!probe || probe->checkpoint_save() != blob) {
        std::fprintf(stderr,
                     "soak: INVARIANT VIOLATION at t=%lld: %s\n",
                     static_cast<long long>(world->now()),
                     probe ? "save/load/save not byte-identical"
                           : error.c_str());
        dump_replay(replay_path, scenario, world->now(),
                    "soak save/load/save invariant violation");
        return 1;
      }
    }

    if (!write_file_atomic(state_path, blob)) {
      std::fprintf(stderr, "soak: cannot write state file %s\n",
                   state_path.c_str());
      return 1;
    }
    ++snapshots;
    std::printf("soak: snapshot %d at t=%lld ms (%zu bytes)\n", snapshots,
                static_cast<long long>(world->now()), blob.size());
    std::fflush(stdout);
    if (max_snapshots > 0 && snapshots >= max_snapshots) {
      std::printf("soak: pausing after %d snapshot(s); rerun to resume\n",
                  snapshots);
      return 0;
    }
  }

  const sim::RunSummary summary = world->summary();
  const std::string digest = sim::checkpoint::run_summary_digest(summary);
  std::printf("soak: done at t=%lld ms, %llu spawned, %llu exited\n",
              static_cast<long long>(world->now()),
              static_cast<unsigned long long>(summary.metrics.vehicles_spawned),
              static_cast<unsigned long long>(summary.metrics.vehicles_exited));
  std::printf("final digest: %s\n", digest.c_str());

  const auto write_text = [](const std::string& path,
                             const std::string& content) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr ||
        std::fwrite(content.data(), 1, content.size(), f) != content.size()) {
      if (f != nullptr) std::fclose(f);
      std::fprintf(stderr, "soak: cannot write %s\n", path.c_str());
      return false;
    }
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
  };
  if (!metrics_path.empty() &&
      !write_text(metrics_path, summary.metrics_snapshot.json() + "\n")) {
    return 1;
  }
  if (!trace_path.empty() &&
      !write_text(trace_path, world->tracer().chrome_json())) {
    return 1;
  }
  if (!trace_jsonl_path.empty() &&
      !write_text(trace_jsonl_path, world->tracer().jsonl())) {
    return 1;
  }

  if (!record_bundle_path.empty()) {
    sim::checkpoint::ReplayBundle bundle;
    bundle.config = scenario;
    bundle.run_to = duration;
    bundle.expected_digest = digest;
    bundle.note = "soak run record";
    if (!write_file_atomic(record_bundle_path,
                           sim::checkpoint::save_replay_bundle(bundle))) {
      std::fprintf(stderr, "soak: cannot write %s\n",
                   record_bundle_path.c_str());
      return 1;
    }
    std::printf("wrote replay bundle %s\n", record_bundle_path.c_str());
  }
  // The state file stays behind as the completed run's last snapshot; a rerun
  // resumes it, immediately finishes, and prints the same digest.
  return 0;
}
