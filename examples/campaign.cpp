// Campaign CLI: expands an experiment matrix (intersection kinds x Table I
// attack settings x traffic densities x seeded rounds), fans the cells
// across a deterministic worker pool, and writes a figure-ready JSON report.
// The aggregated results are byte-identical for any --threads value; the
// pool only changes the wall clock.
//
// Reproduce the paper matrix (all five layouts, all eleven Table I
// settings):
//
//   ./build/examples/campaign --paper-matrix --threads 8 --out campaign.json
//
// Quick spot check:
//
//   ./build/examples/campaign --kinds cross4 --attacks benign,V1
//       --vpm 60,120 --rounds 2 --threads 4   (one line)
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "nwade/config.h"
#include "sim/campaign.h"

using namespace nwade;

namespace {

const struct {
  const char* token;
  traffic::IntersectionKind kind;
} kKindTokens[] = {
    {"roundabout3", traffic::IntersectionKind::kRoundabout3},
    {"cross4", traffic::IntersectionKind::kCross4},
    {"irregular5", traffic::IntersectionKind::kIrregular5},
    {"cfi4", traffic::IntersectionKind::kCfi4},
    {"ddi4", traffic::IntersectionKind::kDdi4},
};

std::vector<std::string> split(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) out.push_back(csv.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

bool parse_kinds(const std::string& csv,
                 std::vector<traffic::IntersectionKind>& out) {
  out.clear();
  if (csv == "all") {
    for (const auto k : traffic::kAllIntersectionKinds) out.push_back(k);
    return true;
  }
  for (const std::string& token : split(csv)) {
    bool found = false;
    for (const auto& entry : kKindTokens) {
      if (token == entry.token) {
        out.push_back(entry.kind);
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr, "unknown intersection kind '%s' (try: ", token.c_str());
      for (const auto& entry : kKindTokens) std::fprintf(stderr, "%s ", entry.token);
      std::fprintf(stderr, "or 'all')\n");
      return false;
    }
  }
  return !out.empty();
}

bool parse_attacks(const std::string& csv, std::vector<std::string>& out) {
  out.clear();
  if (csv == "table1") {
    for (const auto& setting : protocol::table1_attack_settings()) {
      out.push_back(setting.name);
    }
    return true;
  }
  for (const std::string& token : split(csv)) {
    // attack_setting_by_name silently falls back to benign; reject typos
    // here instead so a mistyped matrix does not run the wrong experiment.
    if (token != "benign" &&
        protocol::attack_setting_by_name(token).name != token) {
      std::fprintf(stderr, "unknown Table I attack setting '%s'\n", token.c_str());
      return false;
    }
    out.push_back(token);
  }
  return !out.empty();
}

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --kinds cross4,roundabout3,...|all   intersection layouts\n"
      "  --attacks benign,V1,...|table1       Table I attack settings\n"
      "  --vpm 60,80,120                      traffic densities (veh/min)\n"
      "  --rounds N                           seeded repetitions per point\n"
      "  --seed N                             base seed (round r uses seed+r)\n"
      "  --duration-ms N                      simulated length per run\n"
      "  --threads N                          worker pool size\n"
      "  --quadratic                          brute-force reference sweeps\n"
      "  --paper-matrix                       all kinds x table1 attacks\n"
      "  --out PATH                           report JSON (default campaign.json)\n"
      "  --results-out PATH                   deterministic results-only JSON\n"
      "  --resume PATH                        progress journal (nwade-campaign-\n"
      "                                       progress-v1): finished cells are\n"
      "                                       journaled as they complete, and a\n"
      "                                       rerun of the same matrix resumes\n"
      "                                       from them byte-identically\n"
      "  --trace                              record per-cell event traces\n"
      "  --trace-out PATH                     Chrome trace_event JSON (implies\n"
      "                                       --trace; load in ui.perfetto.dev)\n"
      "  --trace-jsonl-out PATH               JSONL trace (implies --trace)\n"
      "  --metrics-out PATH                   per-cell + merged registry\n"
      "                                       snapshots (nwade-metrics-v1)\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  sim::CampaignConfig cfg;
  cfg.duration_ms = 120'000;
  std::string out_path = "campaign.json";
  std::string results_path;
  std::string trace_path;
  std::string trace_jsonl_path;
  std::string metrics_path;
  std::string resume_path;

  auto value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      std::exit(2);
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--kinds") {
      if (!parse_kinds(value(i), cfg.kinds)) return 2;
    } else if (arg == "--attacks") {
      if (!parse_attacks(value(i), cfg.attacks)) return 2;
    } else if (arg == "--vpm") {
      cfg.densities_vpm.clear();
      for (const std::string& token : split(value(i))) {
        const double vpm = std::atof(token.c_str());
        if (vpm <= 0) {
          std::fprintf(stderr, "bad density '%s'\n", token.c_str());
          return 2;
        }
        cfg.densities_vpm.push_back(vpm);
      }
    } else if (arg == "--rounds") {
      cfg.rounds = std::atoi(value(i));
    } else if (arg == "--seed") {
      cfg.base_seed = std::strtoull(value(i), nullptr, 10);
    } else if (arg == "--duration-ms") {
      cfg.duration_ms = std::atol(value(i));
    } else if (arg == "--threads") {
      cfg.threads = std::atoi(value(i));
    } else if (arg == "--quadratic") {
      cfg.base.quadratic_reference = true;
    } else if (arg == "--paper-matrix") {
      parse_kinds("all", cfg.kinds);
      parse_attacks("table1", cfg.attacks);
    } else if (arg == "--out") {
      out_path = value(i);
    } else if (arg == "--results-out") {
      results_path = value(i);
    } else if (arg == "--resume") {
      resume_path = value(i);
    } else if (arg == "--trace") {
      cfg.trace = true;
    } else if (arg == "--trace-out") {
      trace_path = value(i);
      cfg.trace = true;
    } else if (arg == "--trace-jsonl-out") {
      trace_jsonl_path = value(i);
      cfg.trace = true;
    } else if (arg == "--metrics-out") {
      metrics_path = value(i);
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (cfg.rounds <= 0 || cfg.duration_ms <= 0) {
    std::fprintf(stderr, "--rounds and --duration-ms must be positive\n");
    return 2;
  }
  if (!resume_path.empty() && cfg.trace) {
    std::fprintf(stderr,
                 "--resume cannot be combined with tracing: event traces are "
                 "not journaled,\nso a resumed traced campaign would be "
                 "missing the completed cells' traces\n");
    return 2;
  }

  // Preflight every output path BEFORE the campaign runs: a typo'd directory
  // or read-only target should fail in milliseconds, not after hours of
  // simulation. Append mode probes writability without clobbering whatever
  // the file currently holds; a path the probe had to create is removed
  // again so a failed later stage leaves no empty stub behind.
  for (const std::string* path :
       {&out_path, &results_path, &trace_path, &trace_jsonl_path,
        &metrics_path, &resume_path}) {
    if (path->empty()) continue;
    std::FILE* probe_existing = std::fopen(path->c_str(), "rb");
    const bool existed = probe_existing != nullptr;
    if (probe_existing) std::fclose(probe_existing);
    std::FILE* probe = std::fopen(path->c_str(), "ab");
    if (!probe) {
      std::fprintf(stderr, "cannot write output path %s: %s\n", path->c_str(),
                   std::strerror(errno));
      return 1;
    }
    std::fclose(probe);
    if (!existed) std::remove(path->c_str());
  }

  const std::size_t cell_count = sim::expand_cells(cfg).size();
  std::printf("campaign: %zu cells (%zu kinds x %zu attacks x %zu densities x "
              "%d rounds), %d thread(s), %lld ms each\n",
              cell_count, cfg.kinds.size(), cfg.attacks.size(),
              cfg.densities_vpm.size(), cfg.rounds, cfg.threads,
              static_cast<long long>(cfg.duration_ms));

  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<sim::CellResult> results =
      resume_path.empty() ? sim::run_campaign(cfg)
                          : sim::run_campaign_resumable(cfg, resume_path);
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();

  std::printf("\n%-18s %-8s %-7s %-12s %-11s %-10s %-8s\n", "intersection",
              "attack", "vpm", "throughput", "crossing_s", "detect_ms",
              "false+");
  for (const sim::CellAggregate& a : sim::aggregate(cfg, results)) {
    std::printf("%-18s %-8s %-7.0f %-12.1f %-11.1f %-10.0f %-8d\n",
                intersection_name(a.kind), a.attack.c_str(), a.vpm,
                a.mean_throughput_vpm, a.mean_crossing_ms / 1000.0,
                a.mean_detection_ms, a.false_alarm_evacuations);
  }
  std::printf("\n%zu runs in %.2f s wall clock (%.2f s simulated per run)\n",
              results.size(), wall_s,
              static_cast<double>(cfg.duration_ms) / 1000.0);

  {
    std::ofstream out(out_path, std::ios::trunc);
    out << sim::campaign_json(cfg, results, wall_s);
    if (!out) {
      std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());
  }
  if (!results_path.empty()) {
    std::ofstream out(results_path, std::ios::trunc);
    out << sim::campaign_results_json(cfg, results);
    if (!out) {
      std::fprintf(stderr, "failed to write %s\n", results_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", results_path.c_str());
  }
  const auto write_file = [](const std::string& path,
                             const std::string& content) {
    std::ofstream out(path, std::ios::trunc);
    out << content;
    if (!out) {
      std::fprintf(stderr, "failed to write %s\n", path.c_str());
      return false;
    }
    std::printf("wrote %s\n", path.c_str());
    return true;
  };
  if (!trace_path.empty() &&
      !write_file(trace_path, sim::campaign_trace_json(results))) {
    return 1;
  }
  if (!trace_jsonl_path.empty() &&
      !write_file(trace_jsonl_path, sim::campaign_trace_jsonl(results))) {
    return 1;
  }
  if (!metrics_path.empty() &&
      !write_file(metrics_path, sim::campaign_metrics_json(cfg, results))) {
    return 1;
  }
  return 0;
}
