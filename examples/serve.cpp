// Resident service host (ROADMAP item 3): runs one scenario or lattice
// continuously on an event loop and streams nwade-stream-v1 frames (metrics
// deltas, detection-timeline trace events, per-shard health rows) to any
// number of live monitors over TCP, to a stream file, or both.
//
//   # a 2x2 lattice with a V1 attacker at shard 0, streaming on :7788
//   ./build/examples/serve --rows 2 --cols 2 --attack V1 --port 7788 --trace
//   # then, in another terminal:
//   ./build/examples/monitor --connect 127.0.0.1:7788
//
// The simulation work is identical with zero or fifty monitors attached —
// streaming subscribes through the observational World/Grid hooks and slow
// consumers are dropped, never waited for. With --state the host writes
// checkpoints on the soak driver's atomic-rename discipline and, restarted
// with the same path, resumes both the simulation AND the stream: a sidecar
// (<state>.seq) carries the stream position, so the concatenation of frames
// across the restart is byte-identical to an uninterrupted serve.
#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "nwade/config.h"
#include "sim/checkpoint.h"
#include "sim/grid.h"
#include "sim/world.h"
#include "svc/sink.h"
#include "svc/streamer.h"
#include "util/wall_clock.h"

using namespace nwade;

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --rows N / --cols N     lattice shape (default 1x1 = single world)\n"
      "  --kind NAME             intersection layout (default cross4)\n"
      "  --vpm X                 traffic density per shard (default 120)\n"
      "  --duration-ms N         simulated run length (default 300000)\n"
      "  --seed N                scenario/grid seed (default 1)\n"
      "  --attack NAME           Table I setting (default benign)\n"
      "  --attack-shard N        row-major shard the attack runs in "
      "(default 0)\n"
      "  --exchange-ms N         boundary-exchange cadence (lattice only)\n"
      "  --threads N             shard-stepping pool (wall clock only)\n"
      "  --trace                 enable tracing -> detection trace frames\n"
      "  --port N                TCP stream server on 127.0.0.1:N (0 picks\n"
      "                          an ephemeral port and prints it)\n"
      "  --stream-out PATH       append the frame stream to a file\n"
      "  --cadence-ms N          emission cadence in simulated ms (default\n"
      "                          1000; multiple of step/exchange cadence)\n"
      "  --pace X                real-time pacing: X=1 runs 1 simulated\n"
      "                          second per wall second (default 0 = flat "
      "out)\n"
      "  --state PATH            checkpoint file; resumed from when present\n"
      "  --snapshot-every-ms N   simulated time between checkpoints (default\n"
      "                          10000; multiple of --cadence-ms)\n"
      "  --max-snapshots N       exit 0 after N checkpoints (stage a restart\n"
      "                          without a SIGKILL; 0 = run to completion)\n",
      argv0);
}

bool parse_kind(const std::string& token, traffic::IntersectionKind& out) {
  for (const auto kind : traffic::kAllIntersectionKinds) {
    if (token == intersection_name(kind)) {
      out = kind;
      return true;
    }
  }
  return false;
}

bool write_file_atomic(const std::string& path, const Bytes& blob) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) return false;
  const bool wrote =
      std::fwrite(blob.data(), 1, blob.size(), f) == blob.size() &&
      std::fflush(f) == 0;
  std::fclose(f);
  if (!wrote) {
    std::remove(tmp.c_str());
    return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

Bytes read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return {};
  Bytes out;
  std::uint8_t buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.insert(out.end(), buf, buf + n);
  }
  std::fclose(f);
  return out;
}

/// Stream-position sidecar: "<next_seq> <frames_emitted>\n". Written with
/// the same atomic-rename discipline as the checkpoint so the pair can only
/// be observed consistent.
bool write_seq_sidecar(const std::string& path, std::uint64_t seq,
                       std::uint64_t frames) {
  char buf[64];
  const int n = std::snprintf(buf, sizeof(buf), "%llu %llu\n",
                              static_cast<unsigned long long>(seq),
                              static_cast<unsigned long long>(frames));
  Bytes blob(buf, buf + n);
  return write_file_atomic(path, blob);
}

bool read_seq_sidecar(const std::string& path, std::uint64_t& seq,
                      std::uint64_t& frames) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return false;
  unsigned long long s = 0;
  unsigned long long fr = 0;
  const bool ok = std::fscanf(f, "%llu %llu", &s, &fr) == 2;
  std::fclose(f);
  if (ok) {
    seq = s;
    frames = fr;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  int rows = 1;
  int cols = 1;
  sim::ScenarioConfig scenario;
  scenario.vehicles_per_minute = 120;
  scenario.duration_ms = 300'000;
  scenario.attack_time = 10'000;
  std::uint64_t seed = 1;
  std::string attack = "benign";
  int attack_shard = 0;
  Duration exchange_ms = 1'000;
  int threads = 1;
  bool trace = false;
  int port = -1;
  std::string stream_path;
  Duration cadence_ms = 1'000;
  double pace = 0;
  std::string state_path;
  Duration snapshot_every_ms = 10'000;
  int max_snapshots = 0;

  auto value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      std::exit(2);
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--rows") {
      rows = std::atoi(value(i));
    } else if (arg == "--cols") {
      cols = std::atoi(value(i));
    } else if (arg == "--kind") {
      if (!parse_kind(value(i), scenario.intersection.kind)) {
        std::fprintf(stderr, "unknown intersection kind '%s'\n", argv[i]);
        return 2;
      }
    } else if (arg == "--vpm") {
      scenario.vehicles_per_minute = std::atof(value(i));
    } else if (arg == "--duration-ms") {
      scenario.duration_ms = std::atol(value(i));
    } else if (arg == "--seed") {
      seed = std::strtoull(value(i), nullptr, 10);
    } else if (arg == "--attack") {
      attack = value(i);
    } else if (arg == "--attack-shard") {
      attack_shard = std::atoi(value(i));
    } else if (arg == "--exchange-ms") {
      exchange_ms = std::atol(value(i));
    } else if (arg == "--threads") {
      threads = std::atoi(value(i));
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg == "--port") {
      port = std::atoi(value(i));
    } else if (arg == "--stream-out") {
      stream_path = value(i);
    } else if (arg == "--cadence-ms") {
      cadence_ms = std::atol(value(i));
    } else if (arg == "--pace") {
      pace = std::atof(value(i));
    } else if (arg == "--state") {
      state_path = value(i);
    } else if (arg == "--snapshot-every-ms") {
      snapshot_every_ms = std::atol(value(i));
    } else if (arg == "--max-snapshots") {
      max_snapshots = std::atoi(value(i));
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  const bool lattice = rows * cols > 1;
  if (rows <= 0 || cols <= 0 || rows * cols > 64) {
    std::fprintf(stderr, "--rows x --cols must be 1..64 shards\n");
    return 2;
  }
  if (attack != "benign" &&
      protocol::attack_setting_by_name(attack).name != attack) {
    std::fprintf(stderr, "unknown Table I attack setting '%s'\n",
                 attack.c_str());
    return 2;
  }
  scenario.attack = protocol::attack_setting_by_name(attack);
  scenario.seed = seed;
  scenario.trace_enabled = trace;
  const Duration lattice_step = lattice ? exchange_ms : scenario.step_ms;
  if (cadence_ms <= 0 || cadence_ms % lattice_step != 0) {
    std::fprintf(stderr,
                 "--cadence-ms must be a positive multiple of %lld ms\n",
                 static_cast<long long>(lattice_step));
    return 2;
  }
  if (!state_path.empty() &&
      (snapshot_every_ms <= 0 || snapshot_every_ms % cadence_ms != 0)) {
    // Checkpoints must land exactly on emission points: that is what makes
    // the restored registry the resumed stream's delta baseline.
    std::fprintf(stderr,
                 "--snapshot-every-ms must be a positive multiple of "
                 "--cadence-ms\n");
    return 2;
  }

  // Preflight the stream file path (campaign CLI contract).
  if (!stream_path.empty()) {
    std::FILE* probe_existing = std::fopen(stream_path.c_str(), "rb");
    const bool existed = probe_existing != nullptr;
    if (probe_existing) std::fclose(probe_existing);
    std::FILE* probe = std::fopen(stream_path.c_str(), "ab");
    if (!probe) {
      std::fprintf(stderr, "cannot write output path %s: %s\n",
                   stream_path.c_str(), std::strerror(errno));
      return 1;
    }
    std::fclose(probe);
    if (!existed) std::remove(stream_path.c_str());
  }

  // --- build or resume the simulation ---------------------------------------
  std::unique_ptr<sim::World> world;
  std::unique_ptr<sim::Grid> grid;
  bool resumed = false;
  if (!state_path.empty()) {
    const Bytes saved = read_file(state_path);
    if (!saved.empty()) {
      std::string error;
      if (lattice) {
        grid = sim::Grid::checkpoint_restore(saved, threads, &error);
      } else {
        world = sim::World::checkpoint_restore(saved, &error);
      }
      if (world || grid) {
        resumed = true;
        std::printf("serve: resumed %s at t=%lld ms\n", state_path.c_str(),
                    static_cast<long long>(world ? world->now()
                                                 : grid->now()));
      } else {
        std::fprintf(stderr, "serve: ignoring unusable state %s (%s)\n",
                     state_path.c_str(), error.c_str());
      }
    }
  }
  if (!world && !grid) {
    if (lattice) {
      sim::GridConfig cfg;
      cfg.rows = rows;
      cfg.cols = cols;
      cfg.shard = scenario;
      cfg.seed = seed;
      cfg.exchange_every_ms = exchange_ms;
      // Keep the default gossip cadence, rounded onto the exchange lattice.
      cfg.gossip_every_ms =
          exchange_ms * std::max<Duration>(1, cfg.gossip_every_ms / exchange_ms);
      cfg.attack_shard = attack_shard;
      cfg.grid_threads = threads;
      grid = std::make_unique<sim::Grid>(std::move(cfg));
    } else {
      world = std::make_unique<sim::World>(scenario);
    }
  }
  const Tick duration = world != nullptr ? world->config().duration_ms
                                         : grid->config().shard.duration_ms;

  // --- sinks and streamer ---------------------------------------------------
  util::SystemWallClock wall;
  svc::StreamerConfig scfg;
  scfg.cadence_ms = cadence_ms;
  scfg.wall = &wall;
  svc::TelemetryStreamer streamer(scfg);

  std::unique_ptr<svc::FileSink> file_sink;
  if (!stream_path.empty()) {
    // Append on resume: the file continues the interrupted stream.
    file_sink = std::make_unique<svc::FileSink>(stream_path, resumed);
    if (!file_sink->ok()) {
      std::fprintf(stderr, "serve: cannot open %s\n", stream_path.c_str());
      return 1;
    }
    streamer.add_sink(file_sink.get());
  }
  std::unique_ptr<svc::TcpServerSink> tcp_sink;
  if (port >= 0) {
    tcp_sink = std::make_unique<svc::TcpServerSink>(port);
    if (!tcp_sink->ok()) {
      std::fprintf(stderr, "serve: cannot listen on 127.0.0.1:%d\n", port);
      return 1;
    }
    tcp_sink->set_greeting([&streamer] { return streamer.catch_up(); });
    streamer.add_sink(tcp_sink.get());
    std::printf("serve: streaming on 127.0.0.1:%d\n", tcp_sink->port());
    std::fflush(stdout);
  }

  if (resumed) {
    std::uint64_t seq = 0;
    std::uint64_t frames = 0;
    if (read_seq_sidecar(state_path + ".seq", seq, frames)) {
      streamer.set_next_seq(seq);
      streamer.set_frames_emitted(frames);
    } else {
      std::fprintf(stderr,
                   "serve: %s.seq missing; stream restarts at seq 0\n",
                   state_path.c_str());
      resumed = false;  // no position to continue from: emit hello again
    }
  }
  const bool attached = world != nullptr ? streamer.attach(*world, resumed)
                                         : streamer.attach(*grid, resumed);
  if (!attached) {
    std::fprintf(stderr, "serve: cadence rejected by the source\n");
    return 2;
  }

  // --- event loop -----------------------------------------------------------
  const auto wall0 = std::chrono::steady_clock::now();
  const Tick t0 = world != nullptr ? world->now() : grid->now();
  int snapshots = 0;
  auto now_t = [&] { return world != nullptr ? world->now() : grid->now(); };
  while (now_t() < duration) {
    const Tick next = std::min<Tick>(now_t() + cadence_ms, duration);
    if (world != nullptr) {
      world->run_until(next);
    } else {
      grid->run_until(next);
    }
    if (tcp_sink) tcp_sink->pump();
    if (pace > 0) {
      // Sleep until the wall clock catches up with simulated progress.
      const auto target =
          wall0 + std::chrono::milliseconds(static_cast<std::int64_t>(
                      static_cast<double>(now_t() - t0) / pace));
      std::this_thread::sleep_until(target);
      if (tcp_sink) tcp_sink->pump();
    }
    if (!state_path.empty() && now_t() < duration &&
        now_t() % snapshot_every_ms == 0) {
      const Bytes blob = world != nullptr ? world->checkpoint_save()
                                          : grid->checkpoint_save();
      if (!write_file_atomic(state_path, blob) ||
          !write_seq_sidecar(state_path + ".seq", streamer.next_seq(),
                             streamer.frames_emitted())) {
        std::fprintf(stderr, "serve: cannot write state file %s\n",
                     state_path.c_str());
        return 1;
      }
      ++snapshots;
      std::printf("serve: snapshot %d at t=%lld ms (%zu bytes, seq %llu)\n",
                  snapshots, static_cast<long long>(now_t()), blob.size(),
                  static_cast<unsigned long long>(streamer.next_seq()));
      std::fflush(stdout);
      if (max_snapshots > 0 && snapshots >= max_snapshots) {
        std::printf("serve: pausing after %d snapshot(s); rerun to resume\n",
                    snapshots);
        return 0;
      }
    }
  }

  streamer.finish();
  if (tcp_sink) tcp_sink->pump();

  if (world != nullptr) {
    const sim::RunSummary s = world->summary();
    std::printf("serve: done at t=%lld ms, %d spawned, %d exited, "
                "%llu frames streamed\n",
                static_cast<long long>(world->now()),
                s.metrics.vehicles_spawned, s.metrics.vehicles_exited,
                static_cast<unsigned long long>(streamer.frames_emitted()));
    std::printf("final digest: %s\n",
                sim::checkpoint::run_summary_digest(s).c_str());
  } else {
    const sim::GridSummary s = grid->summary();
    std::printf("serve: done at t=%lld ms, %llu handoffs delivered, "
                "%llu frames streamed\n",
                static_cast<long long>(grid->now()),
                static_cast<unsigned long long>(s.handoffs_delivered),
                static_cast<unsigned long long>(streamer.frames_emitted()));
    std::printf("final digest: %s\n", sim::Grid::summary_digest(s).c_str());
  }
  if (tcp_sink) {
    std::printf("serve: %llu monitor(s) served, %llu dropped\n",
                static_cast<unsigned long long>(tcp_sink->clients_accepted()),
                static_cast<unsigned long long>(tcp_sink->clients_dropped()));
  }
  return 0;
}
