// Small town vs big city: the paper motivates NWADE for "both big cities
// with high vehicle densities and small towns with low vehicle densities".
// This example sweeps the five intersection layouts at 20 veh/min (small
// town) and 120 veh/min (big city), with the security layer on and off, and
// reports throughput, mean crossing time, and the NWADE overhead.
//
// Run: ./build/examples/city_vs_town
#include <cstdio>

#include "sim/world.h"

using namespace nwade;

namespace {

struct RunStats {
  double throughput;
  double crossing_s;
};

RunStats run(traffic::IntersectionKind kind, double vpm, bool nwade_on) {
  sim::ScenarioConfig cfg;
  cfg.intersection.kind = kind;
  cfg.vehicles_per_minute = vpm;
  cfg.duration_ms = 90'000;
  cfg.nwade_enabled = nwade_on;
  cfg.seed = 11;
  const sim::RunSummary s = sim::World(cfg).run();
  return RunStats{s.throughput_vpm, s.mean_crossing_ms / 1000.0};
}

}  // namespace

int main() {
  std::printf("%-22s %-12s %-16s %-16s %-10s\n", "intersection", "demand",
              "throughput(on)", "throughput(off)", "crossing");
  for (traffic::IntersectionKind kind : traffic::kAllIntersectionKinds) {
    for (double vpm : {20.0, 120.0}) {
      const RunStats on = run(kind, vpm, true);
      const RunStats off = run(kind, vpm, false);
      std::printf("%-22s %-12s %-16.1f %-16.1f %.1f s\n", intersection_name(kind),
                  vpm < 60 ? "small town" : "big city", on.throughput,
                  off.throughput, on.crossing_s);
    }
  }
  std::printf(
      "\nNWADE rides along for free: the watch and verification work runs off\n"
      "the driving path, so the protected and unprotected columns match.\n"
      "Crossing times grow with demand as the reservation scheduler spaces\n"
      "vehicles through the shared conflict zones.\n");
  return 0;
}
