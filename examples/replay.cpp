// Replay executor (docs/CHECKPOINT.md).
//
// Re-runs an `nwade-replay-v1` bundle — scenario config + target time +
// expected summary digest — and verifies the re-execution reproduces the
// recorded digest bit for bit. Because every run is a pure function of its
// config and seed, the bundle alone reproduces an incident on any machine;
// pointing an ASan/TSan build of this binary at a bundle turns "the soak
// failed overnight" into a deterministic sanitized re-execution.
//
//   ./build/examples/replay incident.bin
//
// Exit status: 0 = digest matches (or bundle carries none and the run
// completed), 1 = digest mismatch, 2 = unreadable/corrupt bundle.
#include <cstdio>
#include <string>

#include "sim/checkpoint.h"
#include "sim/world.h"

using namespace nwade;

namespace {

Bytes read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return {};
  Bytes out;
  std::uint8_t buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.insert(out.end(), buf, buf + n);
  }
  std::fclose(f);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2 || std::string(argv[1]) == "--help" ||
      std::string(argv[1]) == "-h") {
    std::printf("usage: %s BUNDLE\n", argv[0]);
    std::printf("  BUNDLE  nwade-replay-v1 file (examples/soak --record-bundle,"
                " or auto-dumped\n          on a soak invariant violation)\n");
    return argc == 2 ? 0 : 2;
  }
  const std::string path = argv[1];
  const Bytes blob = read_file(path);
  if (blob.empty()) {
    std::fprintf(stderr, "replay: cannot read %s\n", path.c_str());
    return 2;
  }
  sim::checkpoint::ReplayBundle bundle;
  std::string error;
  if (!sim::checkpoint::load_replay_bundle(blob, bundle, &error)) {
    std::fprintf(stderr, "replay: %s: %s\n", path.c_str(), error.c_str());
    return 2;
  }

  std::printf("replay: %s\n", bundle.note.empty() ? "(no note)"
                                                  : bundle.note.c_str());
  std::printf("replay: seed %llu, %s, %.0f vpm, attack %s, run to %lld ms\n",
              static_cast<unsigned long long>(bundle.config.seed),
              intersection_name(bundle.config.intersection.kind),
              bundle.config.vehicles_per_minute,
              bundle.config.attack.name.c_str(),
              static_cast<long long>(bundle.run_to));

  sim::World world(bundle.config);
  world.run_until(bundle.run_to);
  const std::string digest =
      sim::checkpoint::run_summary_digest(world.summary());
  std::printf("replay digest: %s\n", digest.c_str());

  if (bundle.expected_digest.empty()) {
    std::printf("replay: bundle carries no expected digest; run completed\n");
    return 0;
  }
  if (digest != bundle.expected_digest) {
    std::fprintf(stderr, "replay: DIGEST MISMATCH\n  expected %s\n  got      %s\n",
                 bundle.expected_digest.c_str(), digest.c_str());
    return 1;
  }
  std::printf("replay: digest matches recorded run\n");
  return 0;
}
