// The neighbourhood watch under collusion: five compromised vehicles (one
// physically deviating, four lying) try to game the majority vote while the
// IM's own perception is crippled, forcing the distributed verification path
// (paper Section IV-B2, the P_d analysis of Eq. 2).
//
// Run: ./build/examples/neighborhood_watch
#include <cstdio>

#include "nwade/analysis.h"
#include "sim/world.h"

using namespace nwade;

int main() {
  std::printf("Eq. (2) predicts the IM identifies vote-gaming with probability\n");
  std::printf("P_d = 1/e^(omega k p_v^k); for omega=4, p_v=0.3:\n  ");
  for (int k = 1; k <= 10; k += 2) {
    std::printf("k=%d: %.3f  ", k, protocol::detection_probability(k, 0.3, 4.0));
  }
  std::printf("\n\n");

  sim::ScenarioConfig cfg;
  cfg.intersection.kind = traffic::IntersectionKind::kCross4;
  cfg.vehicles_per_minute = 100;  // dense: plenty of honest witnesses
  cfg.duration_ms = 80'000;
  cfg.attack = protocol::attack_setting_by_name("V5");
  cfg.attack_time = 35'000;
  // Cripple the IM's own sensors so report verification must rely on the
  // two-round majority voting among vehicles.
  cfg.nwade.im_perception_radius_m = 30.0;
  cfg.seed = 99;

  std::printf("running V5: 1 deviator + 4 colluding liars, IM perception 30 m\n");
  sim::World world(cfg);
  const sim::RunSummary s = world.run();
  const auto& m = s.metrics;

  std::printf("\n--- timeline ---\n");
  if (m.violation_start) {
    std::printf("%6.1f s  deviator leaves its travel plan\n",
                ticks_to_seconds(*m.violation_start));
  }
  if (m.false_incident_injected) {
    std::printf("%6.1f s  colluders inject a fabricated report against an\n"
                "          innocent vehicle and amplify it with global reports\n",
                ticks_to_seconds(*m.false_incident_injected));
  }
  if (m.first_true_incident) {
    std::printf("%6.1f s  an honest watcher reports the real deviator\n",
                ticks_to_seconds(*m.first_true_incident));
  }
  if (m.false_incident_dismissed) {
    std::printf("%6.1f s  the fabricated report is voted down / refuted\n",
                ticks_to_seconds(*m.false_incident_dismissed));
  }
  if (m.deviation_confirmed) {
    std::printf("%6.1f s  the real threat is confirmed -> evacuation\n",
                ticks_to_seconds(*m.deviation_confirmed));
  }

  std::printf("\n--- outcome ---\n");
  std::printf("verification rounds run by the IM: %d\n", m.verify_rounds);
  std::printf("false alarms that triggered evacuations: %d (colluders failed)\n",
              m.false_alarm_evacuations);
  std::printf("lying reporters recorded for future reference: %d\n",
              m.malicious_reports_recorded);
  std::printf("real deviation %s\n",
              m.deviation_confirmed ? "confirmed despite the collusion"
                                    : "NOT confirmed (unexpected)");
  return 0;
}
