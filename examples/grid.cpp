// Grid CLI: steps an N x M lattice of cross4 intersections (sim::Grid) in
// deterministic lockstep, prints a per-shard table plus the boundary
// handoff / cross-IM gossip counters, and optionally writes a summary JSON.
// The grid digest is byte-identical for any --threads value; the pool only
// changes the wall clock (same contract as the campaign CLI).
//
// Neighborhood-watch-across-intersections demo: flag one origin shard with a
// Table I attack and watch the gossip lane spread the blacklist —
//
//   ./build/examples/grid --rows 2 --cols 2 --attack V1 --attack-shard 0
//
// The blacklist column shows the attacker confirmed at shard 0 and imported
// (distrusted before ever misbehaving there) at the downstream shards.
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "nwade/config.h"
#include "sim/grid.h"

using namespace nwade;

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --rows N / --cols N        lattice shape (default 2x2, max 64 shards)\n"
      "  --vpm X                    traffic density per shard (veh/min)\n"
      "  --duration-ms N            simulated length\n"
      "  --threads N                shard-stepping pool (wall clock only)\n"
      "  --seed N                   grid seed (shards + edges derive from it)\n"
      "  --exchange-ms N            boundary-exchange cadence\n"
      "  --gossip-ms N              blacklist-gossip cadence\n"
      "  --max-hops N               handoffs per vehicle after origin crossing\n"
      "  --attack NAME              Table I setting (default benign)\n"
      "  --attack-shard N           row-major shard the attack runs in "
      "(default 0)\n"
      "  --summary-out PATH         write the grid summary as JSON\n"
      "  --metrics-out PATH         lattice-wide merged registry snapshot\n"
      "  --trace-out PATH           Chrome trace_event JSON, one stream per\n"
      "                             shard (implies tracing)\n"
      "  --trace-jsonl-out PATH     JSONL trace (implies tracing)\n"
      "  --allow-single-core        run --threads > 1 on a 1-core host anyway\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  sim::GridConfig cfg;
  cfg.rows = 2;
  cfg.cols = 2;
  cfg.shard.intersection.kind = traffic::IntersectionKind::kCross4;
  cfg.shard.vehicles_per_minute = 120;
  cfg.shard.duration_ms = 60'000;
  cfg.shard.attack_time = 10'000;
  cfg.seed = 1;
  cfg.attack_shard = 0;
  std::string attack = "benign";
  std::string summary_path;
  std::string metrics_path;
  std::string trace_path;
  std::string trace_jsonl_path;
  bool allow_single_core = false;

  auto value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      std::exit(2);
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--rows") {
      cfg.rows = std::atoi(value(i));
    } else if (arg == "--cols") {
      cfg.cols = std::atoi(value(i));
    } else if (arg == "--vpm") {
      cfg.shard.vehicles_per_minute = std::atof(value(i));
    } else if (arg == "--duration-ms") {
      cfg.shard.duration_ms = std::atol(value(i));
    } else if (arg == "--threads") {
      cfg.grid_threads = std::atoi(value(i));
    } else if (arg == "--seed") {
      cfg.seed = std::strtoull(value(i), nullptr, 10);
    } else if (arg == "--exchange-ms") {
      cfg.exchange_every_ms = std::atol(value(i));
    } else if (arg == "--gossip-ms") {
      cfg.gossip_every_ms = std::atol(value(i));
    } else if (arg == "--max-hops") {
      cfg.max_hops = std::atoi(value(i));
    } else if (arg == "--attack") {
      attack = value(i);
    } else if (arg == "--attack-shard") {
      cfg.attack_shard = std::atoi(value(i));
    } else if (arg == "--summary-out") {
      summary_path = value(i);
    } else if (arg == "--metrics-out") {
      metrics_path = value(i);
    } else if (arg == "--trace-out") {
      trace_path = value(i);
    } else if (arg == "--trace-jsonl-out") {
      trace_jsonl_path = value(i);
    } else if (arg == "--allow-single-core") {
      allow_single_core = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  const int shards = cfg.rows * cfg.cols;
  if (cfg.rows <= 0 || cfg.cols <= 0 || shards > 64) {
    std::fprintf(stderr, "--rows x --cols must be 1..64 shards\n");
    return 2;
  }
  if (cfg.shard.vehicles_per_minute <= 0 || cfg.shard.duration_ms <= 0) {
    std::fprintf(stderr, "--vpm and --duration-ms must be positive\n");
    return 2;
  }
  if (cfg.exchange_every_ms <= 0 ||
      cfg.exchange_every_ms % cfg.shard.step_ms != 0 ||
      cfg.gossip_every_ms % cfg.exchange_every_ms != 0) {
    std::fprintf(stderr,
                 "--exchange-ms must be a positive multiple of the %lld ms "
                 "step and --gossip-ms a multiple of --exchange-ms\n",
                 static_cast<long long>(cfg.shard.step_ms));
    return 2;
  }
  if (cfg.attack_shard >= shards) {
    std::fprintf(stderr, "--attack-shard %d out of range (0..%d)\n",
                 cfg.attack_shard, shards - 1);
    return 2;
  }
  // attack_setting_by_name silently falls back to benign; reject typos here
  // so a mistyped demo does not silently run the wrong scenario.
  if (attack != "benign" &&
      protocol::attack_setting_by_name(attack).name != attack) {
    std::fprintf(stderr, "unknown Table I attack setting '%s'\n",
                 attack.c_str());
    return 2;
  }
  cfg.shard.attack = protocol::attack_setting_by_name(attack);

  // Same guard rail as the bench drivers: a 1-core host cannot show grid
  // scaling, so a multi-thread request there is almost always a mistake.
  // --threads 1 always runs; --allow-single-core overrides.
  if (cfg.grid_threads > 1 && std::thread::hardware_concurrency() <= 1 &&
      !allow_single_core) {
    std::fprintf(stderr,
                 "refusing --threads %d on a 1-core host "
                 "(hardware_concurrency=%u): the pool can only add overhead.\n"
                 "Re-run with --threads 1 or add --allow-single-core.\n",
                 cfg.grid_threads, std::thread::hardware_concurrency());
    return 3;
  }

  // Preflight every output path BEFORE the run (campaign CLI contract): a
  // typo'd directory should fail in milliseconds, not after the simulation.
  // Append mode probes writability without clobbering existing content; a
  // path the probe had to create is removed again.
  for (const std::string* path :
       {&summary_path, &metrics_path, &trace_path, &trace_jsonl_path}) {
    if (path->empty()) continue;
    std::FILE* probe_existing = std::fopen(path->c_str(), "rb");
    const bool existed = probe_existing != nullptr;
    if (probe_existing) std::fclose(probe_existing);
    std::FILE* probe = std::fopen(path->c_str(), "ab");
    if (!probe) {
      std::fprintf(stderr, "cannot write output path %s: %s\n", path->c_str(),
                   std::strerror(errno));
      return 1;
    }
    std::fclose(probe);
    if (!existed) std::remove(path->c_str());
  }
  if (!trace_path.empty() || !trace_jsonl_path.empty()) {
    cfg.shard.trace_enabled = true;
  }

  std::printf(
      "grid: %dx%d cross4 shards, %.0f vpm/shard (%.0f aggregate), %lld ms, "
      "%d thread(s)\n"
      "      exchange every %lld ms, gossip every %lld ms, attack %s",
      cfg.rows, cfg.cols, cfg.shard.vehicles_per_minute,
      cfg.shard.vehicles_per_minute * shards,
      static_cast<long long>(cfg.shard.duration_ms), cfg.grid_threads,
      static_cast<long long>(cfg.exchange_every_ms),
      static_cast<long long>(cfg.gossip_every_ms), attack.c_str());
  if (attack != "benign" && cfg.attack_shard >= 0) {
    std::printf(" @ shard %d", cfg.attack_shard);
  }
  std::printf("\n");

  const auto t0 = std::chrono::steady_clock::now();
  sim::Grid grid(std::move(cfg));
  const sim::GridSummary s = grid.run();
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();

  std::printf("\n%-7s %-9s %-8s %-12s %-11s %-10s\n", "shard", "spawned",
              "exited", "throughput", "crossing_s", "blacklist");
  for (int r = 0; r < grid.rows(); ++r) {
    for (int c = 0; c < grid.cols(); ++c) {
      const int idx = r * grid.cols() + c;
      const sim::RunSummary& sh = s.shards[static_cast<std::size_t>(idx)];
      const sim::World& w = grid.shard(r, c);
      std::printf("(%d,%d)%s %-9d %-8d %-12.1f %-11.1f %-10zu\n", r, c,
                  idx == grid.config().attack_shard && attack != "benign"
                      ? "*"
                      : " ",
                  sh.metrics.vehicles_spawned, sh.metrics.vehicles_exited,
                  sh.throughput_vpm, sh.mean_crossing_ms / 1000.0,
                  w.im().confirmed_suspects().size());
    }
  }
  std::printf(
      "\nhandoffs: %llu sent, %llu deferred by outages, %llu delivered; "
      "%llu vehicles retired at the lattice edge\n",
      static_cast<unsigned long long>(s.handoffs_sent),
      static_cast<unsigned long long>(s.handoffs_deferred),
      static_cast<unsigned long long>(s.handoffs_delivered),
      static_cast<unsigned long long>(s.retired));
  std::printf("gossip:   %llu packets sent, %llu lost, %llu blacklist "
              "imports downstream\n",
              static_cast<unsigned long long>(s.gossip_sent),
              static_cast<unsigned long long>(s.gossip_dropped),
              static_cast<unsigned long long>(s.gossip_imports));
  std::printf("aggregate throughput %.1f vpm in %.2f s wall clock\n",
              s.aggregate_throughput_vpm, wall_s);
  std::printf("grid digest %s\n", sim::Grid::summary_digest(s).c_str());

  if (!summary_path.empty()) {
    std::ostringstream json;
    json << "{\n  \"schema\": \"nwade-grid-summary-v1\",\n"
         << "  \"rows\": " << s.rows << ",\n  \"cols\": " << s.cols << ",\n"
         << "  \"attack\": \"" << attack << "\",\n"
         << "  \"attack_shard\": " << grid.config().attack_shard << ",\n"
         << "  \"grid_digest\": \"" << sim::Grid::summary_digest(s) << "\",\n"
         << "  \"handoffs_sent\": " << s.handoffs_sent << ",\n"
         << "  \"handoffs_deferred\": " << s.handoffs_deferred << ",\n"
         << "  \"handoffs_delivered\": " << s.handoffs_delivered << ",\n"
         << "  \"gossip_sent\": " << s.gossip_sent << ",\n"
         << "  \"gossip_dropped\": " << s.gossip_dropped << ",\n"
         << "  \"gossip_imports\": " << s.gossip_imports << ",\n"
         << "  \"retired\": " << s.retired << ",\n"
         << "  \"aggregate_throughput_vpm\": " << s.aggregate_throughput_vpm
         << ",\n  \"shards\": [\n";
    for (std::size_t i = 0; i < s.shards.size(); ++i) {
      const sim::RunSummary& sh = s.shards[i];
      const sim::World& w = grid.shard(static_cast<int>(i) / grid.cols(),
                                       static_cast<int>(i) % grid.cols());
      json << "    {\"spawned\": " << sh.metrics.vehicles_spawned
           << ", \"exited\": " << sh.metrics.vehicles_exited
           << ", \"throughput_vpm\": " << sh.throughput_vpm
           << ", \"blacklist\": " << w.im().confirmed_suspects().size() << "}"
           << (i + 1 < s.shards.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::ofstream out(summary_path, std::ios::trunc);
    out << json.str();
    if (!out) {
      std::fprintf(stderr, "failed to write %s\n", summary_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", summary_path.c_str());
  }

  const auto write_file = [](const std::string& path,
                             const std::string& content) {
    std::ofstream out(path, std::ios::trunc);
    out << content;
    if (!out) {
      std::fprintf(stderr, "failed to write %s\n", path.c_str());
      return false;
    }
    std::printf("wrote %s\n", path.c_str());
    return true;
  };
  if (!metrics_path.empty() &&
      !write_file(metrics_path, grid.merged_metrics().json() + "\n")) {
    return 1;
  }
  if (!trace_path.empty() || !trace_jsonl_path.empty()) {
    // One stream per shard, row-major, named like the table above. take_trace
    // drains each shard's tracer, so both exports share the single drain.
    std::vector<std::vector<util::trace::Event>> streams;
    std::vector<std::string> names;
    streams.reserve(static_cast<std::size_t>(shards));
    for (int r = 0; r < grid.rows(); ++r) {
      for (int c = 0; c < grid.cols(); ++c) {
        streams.push_back(grid.shard(r, c).take_trace());
        names.push_back("shard(" + std::to_string(r) + "," +
                        std::to_string(c) + ")");
      }
    }
    if (!trace_path.empty() &&
        !write_file(trace_path, util::trace::chrome_trace_json(streams, names))) {
      return 1;
    }
    if (!trace_jsonl_path.empty() &&
        !write_file(trace_jsonl_path, util::trace::jsonl_trace(streams))) {
      return 1;
    }
  }
  return 0;
}
