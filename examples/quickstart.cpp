// Quickstart: the NWADE public API in ~80 lines.
//
//   1. Build an intersection model.
//   2. Schedule travel plans with the reservation scheduler (the AIM layer).
//   3. Package plans into a signed blockchain block and verify it.
//   4. Run a complete simulated scenario and read the summary.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "aim/scheduler.h"
#include "chain/store.h"
#include "sim/world.h"

using namespace nwade;

int main() {
  // --- 1. An intersection ---------------------------------------------------
  traffic::IntersectionConfig icfg;
  icfg.kind = traffic::IntersectionKind::kCross4;
  const traffic::Intersection intersection = traffic::Intersection::build(icfg);
  std::printf("built a %s: %zu routes, %zu conflict zones\n",
              intersection_name(intersection.kind()), intersection.routes().size(),
              intersection.zones().size());

  // --- 2. Travel plans ---------------------------------------------------------
  aim::ReservationScheduler scheduler(intersection);
  const aim::TravelPlan p1 = scheduler.schedule(VehicleId{1}, /*route=*/0, {}, 0, 20.0);
  const aim::TravelPlan p2 = scheduler.schedule(VehicleId{2}, /*route=*/7, {}, 0, 20.0);
  std::printf("vehicle 1 enters the core at %.1f s, vehicle 2 at %.1f s\n",
              ticks_to_seconds(p1.core_entry), ticks_to_seconds(p2.core_entry));

  const auto conflicts = aim::find_plan_conflicts(intersection, {&p1, &p2}, 500);
  std::printf("plans are %s\n", conflicts.empty() ? "conflict-free" : "CONFLICTING");

  // --- 3. The travel-plan blockchain ---------------------------------------------
  Rng rng(7);
  const auto signer = crypto::RsaSigner::generate(rng, 1024);
  const chain::Block block =
      chain::Block::package(0, {}, 0, {p1, p2}, *signer);
  std::printf("block 0: %zu plans, root %.16s..., signature %zu bytes\n",
              block.plans().size(), crypto::digest_hex(block.merkle_root).c_str(),
              block.signature.size());

  chain::BlockStore store;
  const auto appended = store.append(block, *signer->verifier());
  std::printf("vehicle-side verification: %s\n", appended ? "accepted" : "rejected");

  // --- 4. A full scenario ----------------------------------------------------------
  sim::ScenarioConfig cfg;
  cfg.intersection = icfg;
  cfg.vehicles_per_minute = 80;
  cfg.duration_ms = 60'000;
  cfg.attack = protocol::attack_setting_by_name("V1");  // one malicious vehicle
  cfg.attack_time = 30'000;
  cfg.seed = 42;

  sim::World world(cfg);
  const sim::RunSummary summary = world.run();

  std::printf("\n60 s of traffic at 80 veh/min with one compromised vehicle:\n");
  std::printf("  spawned %d, exited %d (%.1f veh/min throughput)\n",
              summary.metrics.vehicles_spawned, summary.metrics.vehicles_exited,
              summary.throughput_vpm);
  if (summary.metrics.violation_start && summary.metrics.deviation_confirmed) {
    std::printf("  plan violation at %.1f s -> confirmed at %.1f s (%lld ms)\n",
                ticks_to_seconds(*summary.metrics.violation_start),
                ticks_to_seconds(*summary.metrics.deviation_confirmed),
                static_cast<long long>(*summary.metrics.deviation_detection_time()));
  }
  std::printf("  incident reports: %d, evacuation alerts: %d, packets: %llu\n",
              summary.metrics.incident_reports, summary.metrics.evacuation_alerts,
              static_cast<unsigned long long>(summary.net_stats.packets_sent));
  return 0;
}
