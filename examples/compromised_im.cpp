// Threat model (iii): the intersection manager itself is compromised.
//
// A malicious IM issues a pair of conflicting travel plans (two vehicles
// scheduled through the same conflict zone at the same time) and stonewalls
// all incident reports. This example narrates, step by step, how the
// blockchain verification layer catches the attack and how vehicles
// self-evacuate and warn each other — scenario (c) in the paper's Fig. 1.
//
// Run: ./build/examples/compromised_im
#include <cstdio>

#include "sim/world.h"

using namespace nwade;

namespace {

const char* tick_fmt(Tick t, char* buf) {
  std::snprintf(buf, 32, "%6.1f s", ticks_to_seconds(t));
  return buf;
}

}  // namespace

int main() {
  sim::ScenarioConfig cfg;
  cfg.intersection.kind = traffic::IntersectionKind::kCross4;
  cfg.vehicles_per_minute = 80;
  cfg.duration_ms = 70'000;
  cfg.attack = protocol::attack_setting_by_name("IM");
  cfg.im_attack_mode = protocol::ImAttackMode::kConflictingPlansAndSilence;
  cfg.attack_time = 30'000;
  cfg.seed = 2022;

  std::printf("scenario: 4-way cross, 80 veh/min; at t=30 s the IM turns\n");
  std::printf("malicious: it warps one fresh travel plan onto a colliding\n");
  std::printf("trajectory and stops answering incident reports.\n\n");

  sim::World world(cfg);

  // Drive the run in 1-second slices and narrate state changes.
  bool injected = false, detected = false;
  int last_self_evac = 0, last_globals = 0;
  char buf[32];
  for (Tick t = 1000; t <= cfg.duration_ms; t += 1000) {
    world.run_until(t);
    const auto& m = world.metrics();
    if (!injected && m.im_conflict_injected) {
      injected = true;
      std::printf("[%s] ATTACK: malicious IM published a block with two plans\n",
                  tick_fmt(*m.im_conflict_injected, buf));
      std::printf("           that collide inside a shared conflict zone\n");
    }
    if (!detected && m.im_conflict_detected) {
      detected = true;
      std::printf("[%s] DETECTED: a vehicle's block verification (Algorithm 1)\n",
                  tick_fmt(*m.im_conflict_detected, buf));
      std::printf("           found the conflicting plans -> self-evacuation +\n");
      std::printf("           global report broadcast\n");
    }
    if (m.benign_self_evacuations > last_self_evac) {
      std::printf("[%s] %d vehicles are now self-evacuating (was %d)\n",
                  tick_fmt(t, buf), m.benign_self_evacuations, last_self_evac);
      last_self_evac = m.benign_self_evacuations;
    }
    if (m.global_reports > last_globals + 50) {
      std::printf("[%s] %d global warning broadcasts so far\n", tick_fmt(t, buf),
                  m.global_reports);
      last_globals = m.global_reports;
    }
  }

  const auto summary = world.summary();
  const auto& m = summary.metrics;
  std::printf("\n--- outcome ---\n");
  std::printf("conflict injected:   %s\n", m.im_conflict_injected ? "yes" : "no");
  std::printf("conflict detected:   %s", m.im_conflict_detected ? "yes" : "no");
  if (m.im_conflict_injected && m.im_conflict_detected) {
    std::printf("  (after %lld ms — one broadcast latency + verification)",
                static_cast<long long>(*m.im_conflict_detected -
                                       *m.im_conflict_injected));
  }
  std::printf("\nblock verifications that failed: %d\n",
              m.block_verification_failures);
  std::printf("benign vehicles that self-evacuated: %d\n",
              m.benign_self_evacuations);
  std::printf("global reports broadcast: %d\n", m.global_reports);
  std::printf("vehicles that still exited safely: %d of %d\n", m.vehicles_exited,
              m.vehicles_spawned);
  std::printf("\nNo vehicle followed the colliding plans: the signature told them\n");
  std::printf("the block was genuine, and recomputing the plans' conflict zones\n");
  std::printf("told them the *content* was lethal — exactly the gap NWADE fills\n");
  std::printf("over message-authentication-only schemes.\n");
  return 0;
}
