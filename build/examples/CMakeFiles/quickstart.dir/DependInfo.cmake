
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/nwade_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/nwade/CMakeFiles/nwade_protocol.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/nwade_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/nwade_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/aim/CMakeFiles/nwade_aim.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/nwade_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/nwade_net.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/nwade_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nwade_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
