# Empty compiler generated dependencies file for compromised_im.
# This may be replaced when dependencies are built.
