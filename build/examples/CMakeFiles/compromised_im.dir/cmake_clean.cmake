file(REMOVE_RECURSE
  "CMakeFiles/compromised_im.dir/compromised_im.cpp.o"
  "CMakeFiles/compromised_im.dir/compromised_im.cpp.o.d"
  "compromised_im"
  "compromised_im.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compromised_im.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
