file(REMOVE_RECURSE
  "CMakeFiles/city_vs_town.dir/city_vs_town.cpp.o"
  "CMakeFiles/city_vs_town.dir/city_vs_town.cpp.o.d"
  "city_vs_town"
  "city_vs_town.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/city_vs_town.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
