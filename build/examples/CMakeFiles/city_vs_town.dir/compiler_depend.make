# Empty compiler generated dependencies file for city_vs_town.
# This may be replaced when dependencies are built.
