# Empty compiler generated dependencies file for neighborhood_watch.
# This may be replaced when dependencies are built.
