file(REMOVE_RECURSE
  "CMakeFiles/neighborhood_watch.dir/neighborhood_watch.cpp.o"
  "CMakeFiles/neighborhood_watch.dir/neighborhood_watch.cpp.o.d"
  "neighborhood_watch"
  "neighborhood_watch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neighborhood_watch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
