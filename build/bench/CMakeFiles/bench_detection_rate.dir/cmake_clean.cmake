file(REMOVE_RECURSE
  "CMakeFiles/bench_detection_rate.dir/bench_detection_rate.cpp.o"
  "CMakeFiles/bench_detection_rate.dir/bench_detection_rate.cpp.o.d"
  "bench_detection_rate"
  "bench_detection_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_detection_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
