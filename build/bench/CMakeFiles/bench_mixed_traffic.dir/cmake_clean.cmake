file(REMOVE_RECURSE
  "CMakeFiles/bench_mixed_traffic.dir/bench_mixed_traffic.cpp.o"
  "CMakeFiles/bench_mixed_traffic.dir/bench_mixed_traffic.cpp.o.d"
  "bench_mixed_traffic"
  "bench_mixed_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mixed_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
