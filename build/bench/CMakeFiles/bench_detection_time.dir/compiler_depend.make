# Empty compiler generated dependencies file for bench_detection_time.
# This may be replaced when dependencies are built.
