file(REMOVE_RECURSE
  "CMakeFiles/bench_network_load.dir/bench_network_load.cpp.o"
  "CMakeFiles/bench_network_load.dir/bench_network_load.cpp.o.d"
  "bench_network_load"
  "bench_network_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_network_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
