# Empty compiler generated dependencies file for bench_network_load.
# This may be replaced when dependencies are built.
