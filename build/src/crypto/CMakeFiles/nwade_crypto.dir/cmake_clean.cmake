file(REMOVE_RECURSE
  "CMakeFiles/nwade_crypto.dir/bignum.cpp.o"
  "CMakeFiles/nwade_crypto.dir/bignum.cpp.o.d"
  "CMakeFiles/nwade_crypto.dir/merkle.cpp.o"
  "CMakeFiles/nwade_crypto.dir/merkle.cpp.o.d"
  "CMakeFiles/nwade_crypto.dir/rsa.cpp.o"
  "CMakeFiles/nwade_crypto.dir/rsa.cpp.o.d"
  "CMakeFiles/nwade_crypto.dir/sha256.cpp.o"
  "CMakeFiles/nwade_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/nwade_crypto.dir/signer.cpp.o"
  "CMakeFiles/nwade_crypto.dir/signer.cpp.o.d"
  "libnwade_crypto.a"
  "libnwade_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nwade_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
