file(REMOVE_RECURSE
  "libnwade_crypto.a"
)
