# Empty dependencies file for nwade_crypto.
# This may be replaced when dependencies are built.
