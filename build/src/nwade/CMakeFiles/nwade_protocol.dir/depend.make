# Empty dependencies file for nwade_protocol.
# This may be replaced when dependencies are built.
