file(REMOVE_RECURSE
  "CMakeFiles/nwade_protocol.dir/analysis.cpp.o"
  "CMakeFiles/nwade_protocol.dir/analysis.cpp.o.d"
  "CMakeFiles/nwade_protocol.dir/config.cpp.o"
  "CMakeFiles/nwade_protocol.dir/config.cpp.o.d"
  "CMakeFiles/nwade_protocol.dir/im_node.cpp.o"
  "CMakeFiles/nwade_protocol.dir/im_node.cpp.o.d"
  "CMakeFiles/nwade_protocol.dir/vehicle_node.cpp.o"
  "CMakeFiles/nwade_protocol.dir/vehicle_node.cpp.o.d"
  "libnwade_protocol.a"
  "libnwade_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nwade_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
