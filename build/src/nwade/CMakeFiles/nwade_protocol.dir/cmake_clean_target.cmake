file(REMOVE_RECURSE
  "libnwade_protocol.a"
)
