file(REMOVE_RECURSE
  "libnwade_chain.a"
)
