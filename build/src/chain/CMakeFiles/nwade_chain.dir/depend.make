# Empty dependencies file for nwade_chain.
# This may be replaced when dependencies are built.
