file(REMOVE_RECURSE
  "CMakeFiles/nwade_chain.dir/block.cpp.o"
  "CMakeFiles/nwade_chain.dir/block.cpp.o.d"
  "CMakeFiles/nwade_chain.dir/store.cpp.o"
  "CMakeFiles/nwade_chain.dir/store.cpp.o.d"
  "libnwade_chain.a"
  "libnwade_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nwade_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
