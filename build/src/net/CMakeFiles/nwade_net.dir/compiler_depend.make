# Empty compiler generated dependencies file for nwade_net.
# This may be replaced when dependencies are built.
