file(REMOVE_RECURSE
  "libnwade_net.a"
)
