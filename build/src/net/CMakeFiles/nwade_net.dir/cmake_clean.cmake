file(REMOVE_RECURSE
  "CMakeFiles/nwade_net.dir/network.cpp.o"
  "CMakeFiles/nwade_net.dir/network.cpp.o.d"
  "libnwade_net.a"
  "libnwade_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nwade_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
