# Empty compiler generated dependencies file for nwade_traffic.
# This may be replaced when dependencies are built.
