file(REMOVE_RECURSE
  "CMakeFiles/nwade_traffic.dir/arrivals.cpp.o"
  "CMakeFiles/nwade_traffic.dir/arrivals.cpp.o.d"
  "CMakeFiles/nwade_traffic.dir/intersection.cpp.o"
  "CMakeFiles/nwade_traffic.dir/intersection.cpp.o.d"
  "libnwade_traffic.a"
  "libnwade_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nwade_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
