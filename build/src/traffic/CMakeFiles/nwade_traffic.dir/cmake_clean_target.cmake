file(REMOVE_RECURSE
  "libnwade_traffic.a"
)
