file(REMOVE_RECURSE
  "libnwade_geom.a"
)
