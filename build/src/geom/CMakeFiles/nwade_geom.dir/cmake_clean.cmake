file(REMOVE_RECURSE
  "CMakeFiles/nwade_geom.dir/path.cpp.o"
  "CMakeFiles/nwade_geom.dir/path.cpp.o.d"
  "libnwade_geom.a"
  "libnwade_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nwade_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
