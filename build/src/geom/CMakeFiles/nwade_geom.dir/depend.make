# Empty dependencies file for nwade_geom.
# This may be replaced when dependencies are built.
