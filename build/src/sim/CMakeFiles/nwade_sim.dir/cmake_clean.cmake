file(REMOVE_RECURSE
  "CMakeFiles/nwade_sim.dir/world.cpp.o"
  "CMakeFiles/nwade_sim.dir/world.cpp.o.d"
  "libnwade_sim.a"
  "libnwade_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nwade_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
