# Empty compiler generated dependencies file for nwade_sim.
# This may be replaced when dependencies are built.
