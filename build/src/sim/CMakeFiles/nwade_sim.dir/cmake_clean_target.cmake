file(REMOVE_RECURSE
  "libnwade_sim.a"
)
