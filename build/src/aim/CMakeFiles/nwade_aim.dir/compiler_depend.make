# Empty compiler generated dependencies file for nwade_aim.
# This may be replaced when dependencies are built.
