file(REMOVE_RECURSE
  "CMakeFiles/nwade_aim.dir/baseline.cpp.o"
  "CMakeFiles/nwade_aim.dir/baseline.cpp.o.d"
  "CMakeFiles/nwade_aim.dir/plan.cpp.o"
  "CMakeFiles/nwade_aim.dir/plan.cpp.o.d"
  "CMakeFiles/nwade_aim.dir/scheduler.cpp.o"
  "CMakeFiles/nwade_aim.dir/scheduler.cpp.o.d"
  "libnwade_aim.a"
  "libnwade_aim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nwade_aim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
