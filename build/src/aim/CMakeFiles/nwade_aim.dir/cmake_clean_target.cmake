file(REMOVE_RECURSE
  "libnwade_aim.a"
)
