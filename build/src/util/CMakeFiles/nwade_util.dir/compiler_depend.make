# Empty compiler generated dependencies file for nwade_util.
# This may be replaced when dependencies are built.
