file(REMOVE_RECURSE
  "CMakeFiles/nwade_util.dir/bytes.cpp.o"
  "CMakeFiles/nwade_util.dir/bytes.cpp.o.d"
  "CMakeFiles/nwade_util.dir/log.cpp.o"
  "CMakeFiles/nwade_util.dir/log.cpp.o.d"
  "CMakeFiles/nwade_util.dir/rng.cpp.o"
  "CMakeFiles/nwade_util.dir/rng.cpp.o.d"
  "libnwade_util.a"
  "libnwade_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nwade_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
