file(REMOVE_RECURSE
  "libnwade_util.a"
)
