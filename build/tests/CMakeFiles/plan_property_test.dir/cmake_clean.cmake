file(REMOVE_RECURSE
  "CMakeFiles/plan_property_test.dir/aim/plan_property_test.cpp.o"
  "CMakeFiles/plan_property_test.dir/aim/plan_property_test.cpp.o.d"
  "plan_property_test"
  "plan_property_test.pdb"
  "plan_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
