file(REMOVE_RECURSE
  "CMakeFiles/scenario_matrix_test.dir/sim/scenario_matrix_test.cpp.o"
  "CMakeFiles/scenario_matrix_test.dir/sim/scenario_matrix_test.cpp.o.d"
  "scenario_matrix_test"
  "scenario_matrix_test.pdb"
  "scenario_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
