# Empty compiler generated dependencies file for scenario_matrix_test.
# This may be replaced when dependencies are built.
