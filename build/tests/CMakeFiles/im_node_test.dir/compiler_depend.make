# Empty compiler generated dependencies file for im_node_test.
# This may be replaced when dependencies are built.
