file(REMOVE_RECURSE
  "CMakeFiles/im_node_test.dir/nwade/im_node_test.cpp.o"
  "CMakeFiles/im_node_test.dir/nwade/im_node_test.cpp.o.d"
  "im_node_test"
  "im_node_test.pdb"
  "im_node_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/im_node_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
