file(REMOVE_RECURSE
  "CMakeFiles/revocation_test.dir/chain/revocation_test.cpp.o"
  "CMakeFiles/revocation_test.dir/chain/revocation_test.cpp.o.d"
  "revocation_test"
  "revocation_test.pdb"
  "revocation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/revocation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
