file(REMOVE_RECURSE
  "CMakeFiles/vehicle_node_test.dir/nwade/vehicle_node_test.cpp.o"
  "CMakeFiles/vehicle_node_test.dir/nwade/vehicle_node_test.cpp.o.d"
  "vehicle_node_test"
  "vehicle_node_test.pdb"
  "vehicle_node_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vehicle_node_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
