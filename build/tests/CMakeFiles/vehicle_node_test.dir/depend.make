# Empty dependencies file for vehicle_node_test.
# This may be replaced when dependencies are built.
