# Empty compiler generated dependencies file for mixed_traffic_test.
# This may be replaced when dependencies are built.
