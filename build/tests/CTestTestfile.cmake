# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sha256_test[1]_include.cmake")
include("/root/repo/build/tests/bignum_test[1]_include.cmake")
include("/root/repo/build/tests/rsa_test[1]_include.cmake")
include("/root/repo/build/tests/merkle_test[1]_include.cmake")
include("/root/repo/build/tests/signer_test[1]_include.cmake")
include("/root/repo/build/tests/bytes_test[1]_include.cmake")
include("/root/repo/build/tests/path_test[1]_include.cmake")
include("/root/repo/build/tests/network_test[1]_include.cmake")
include("/root/repo/build/tests/intersection_test[1]_include.cmake")
include("/root/repo/build/tests/arrivals_test[1]_include.cmake")
include("/root/repo/build/tests/plan_test[1]_include.cmake")
include("/root/repo/build/tests/scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/block_test[1]_include.cmake")
include("/root/repo/build/tests/store_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/world_test[1]_include.cmake")
include("/root/repo/build/tests/vehicle_node_test[1]_include.cmake")
include("/root/repo/build/tests/im_node_test[1]_include.cmake")
include("/root/repo/build/tests/messages_test[1]_include.cmake")
include("/root/repo/build/tests/revocation_test[1]_include.cmake")
include("/root/repo/build/tests/scenario_matrix_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/clock_test[1]_include.cmake")
include("/root/repo/build/tests/plan_property_test[1]_include.cmake")
include("/root/repo/build/tests/mixed_traffic_test[1]_include.cmake")
include("/root/repo/build/tests/config_sweep_test[1]_include.cmake")
