// Allocation-profile driver for the crypto and messaging hot paths.
//
// Measures the steady-state cost AND the heap-allocation count per operation
// for the paths PR 4 made allocation-free: Montgomery multiply/exponentiate
// over a warmed workspace, CRT signing through a long-lived RsaSignContext,
// and the cache-hit verify that every fan-out receiver after the first pays.
// Emits BENCH_alloc.json (nwade-bench-v1, support.h); in builds configured
// with -DNWADE_COUNT_ALLOCS=ON each phase carries an "allocs_per_op" field,
// elsewhere only the timings (counting is compiled out).
//
// `--smoke` shrinks the dimensions and validates the JSON round-trip; the
// ctest entry (labels perf + alloc) runs that mode.
#include <cstring>
#include <string>
#include <vector>

#include "chain/block.h"
#include "crypto/bignum.h"
#include "crypto/rsa.h"
#include "crypto/signer.h"
#include "crypto/verify_cache.h"
#include "support.h"
#include "util/rng.h"

namespace {

using namespace nwade;
using namespace nwade::crypto;

struct Options {
  bool smoke{false};
};

BigUint random_odd_modulus(Rng& rng, int bits) {
  BigUint m = BigUint::random_bits(rng, bits);
  if (!m.is_odd()) m = m + BigUint(1);
  return m;
}

chain::Block make_block(const Signer& signer, int n_plans) {
  std::vector<aim::TravelPlan> plans;
  for (int i = 0; i < n_plans; ++i) {
    aim::TravelPlan p;
    p.vehicle = VehicleId{static_cast<std::uint64_t>(i) + 1};
    p.route_id = i % 12;
    p.segments = {aim::PlanSegment{0, 0.0, 12.0},
                  aim::PlanSegment{5'000, 80.0, 15.0}};
    plans.push_back(std::move(p));
  }
  return chain::Block::package(1, Digest{}, 1'000, std::move(plans), signer);
}

int run(const Options& opt) {
  const auto t_start = std::chrono::steady_clock::now();
  const int rsa_bits = opt.smoke ? 512 : 2048;
  const int warmup = opt.smoke ? 0 : 1;
  const int reps = opt.smoke ? 1 : 7;
  const int mont_iters = opt.smoke ? 100 : 10'000;
  const int plans_per_block = opt.smoke ? 4 : 32;

  std::printf("allocation profile: RSA-%d, %d mont_mul iters/rep%s\n", rsa_bits,
              mont_iters,
              util::alloc_counting_enabled() ? " (counting ON)"
                                             : " (counting OFF: timings only)");

  // --- Montgomery primitives over a warmed workspace ------------------------
  Rng rng(41);
  const Montgomery mont(random_odd_modulus(rng, rsa_bits));
  const std::size_t n = mont.limbs();
  std::vector<std::uint64_t> a(n), b(n), dst(n), scratch(n + 2);
  for (auto& l : a) l = rng.next_u64();
  for (auto& l : b) l = rng.next_u64();
  a[n - 1] = 0;  // operands < modulus (its msb is set)
  b[n - 1] = 0;
  const auto mont_mul_loop = [&] {
    for (int i = 0; i < mont_iters; ++i) {
      mont.mont_mul(dst.data(), dst.data(), b.data(), scratch.data());
    }
  };
  mont.mont_mul(dst.data(), a.data(), b.data(), scratch.data());  // warm
  const auto t_mont_mul = bench::timed_median(warmup, reps, mont_mul_loop);
  const double mul_allocs_raw = bench::allocs_per_op(1, mont_mul_loop);
  // Per mont_mul, not per loop of mont_iters.
  const double mul_allocs =
      mul_allocs_raw < 0 ? mul_allocs_raw
                         : mul_allocs_raw / static_cast<double>(mont_iters);

  MontWorkspace ws;
  const BigUint base = BigUint::random_bits(rng, rsa_bits - 8);
  const BigUint exp = BigUint::random_bits(rng, rsa_bits);
  (void)mont.pow(base, exp, ws);  // grow the workspace once
  const auto pow_op = [&] { (void)mont.pow(base, exp, ws); };
  const auto t_pow = bench::timed_median(warmup, reps, pow_op);
  const double pow_allocs = bench::allocs_per_op(4, pow_op);

  // --- RSA through long-lived contexts --------------------------------------
  Rng key_rng(42);
  const RsaKeyPair kp = rsa_generate(key_rng, rsa_bits);
  const RsaSignContext sign_ctx(kp.priv);
  const Bytes msg = {'a', 'l', 'l', 'o', 'c'};
  const Bytes sig = sign_ctx.sign(msg);
  const auto sign_op = [&] { (void)sign_ctx.sign(msg); };
  const auto t_sign = bench::timed_median(warmup, reps, sign_op);
  const double sign_allocs = bench::allocs_per_op(4, sign_op);

  RsaSigner signer(kp);
  const auto verifier = signer.verifier();
  if (!verifier->verify(msg, sig)) {
    std::fprintf(stderr, "FAIL: signature did not verify\n");
    return 1;
  }
  const auto hit_loop = [&] {
    for (int i = 0; i < 64; ++i) (void)verifier->verify(msg, sig);
  };
  const auto t_hit = bench::timed_median(warmup, reps, hit_loop);
  const double hit_allocs_raw = bench::allocs_per_op(1, hit_loop);
  const double hit_allocs =
      hit_allocs_raw < 0 ? hit_allocs_raw : hit_allocs_raw / 64.0;

  // --- block serialization (reserved exact wire size) -----------------------
  const chain::Block block = make_block(signer, plans_per_block);
  const auto serialize_op = [&] { (void)block.serialize(); };
  const auto t_serialize = bench::timed_median(warmup, reps, serialize_op);
  const double serialize_allocs = bench::allocs_per_op(8, serialize_op);

  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t_start)
                            .count();
  const std::string envelope = bench::bench_envelope(
      "alloc", wall_s,
      {bench::json_phase("mont_mul_x" + std::to_string(mont_iters), t_mont_mul,
                         mul_allocs),
       bench::json_phase("mont_pow", t_pow, pow_allocs),
       bench::json_phase("rsa_sign_context", t_sign, sign_allocs),
       bench::json_phase("verify_cache_hit_x64", t_hit, hit_allocs),
       bench::json_phase("block_serialize_" + std::to_string(plans_per_block) +
                             "plans",
                         t_serialize, serialize_allocs)},
      {bench::json_field("rsa_bits", static_cast<double>(rsa_bits), 0),
       bench::json_field("alloc_counting",
                         std::string(util::alloc_counting_enabled() ? "on"
                                                                    : "off"))});
  if (!bench::json_well_formed(envelope)) {
    std::fprintf(stderr, "FAIL: emitted envelope is not well-formed JSON\n");
    return 1;
  }
  const std::string path =
      opt.smoke ? "BENCH_alloc.smoke.json" : "BENCH_alloc.json";
  if (!bench::write_bench_file(path, envelope)) {
    std::fprintf(stderr, "FAIL: could not write %s\n", path.c_str());
    return 1;
  }

  if (opt.smoke) {
    std::string back;
    if (!bench::read_file(path, back) || back != envelope ||
        !bench::json_well_formed(back)) {
      std::fprintf(stderr, "FAIL: %s did not round-trip\n", path.c_str());
      return 1;
    }
    // The whole point of the counting build: the steady-state primitives
    // must not allocate at all. Enforced here too so the perf smoke catches
    // a regression even if the gtest gates are filtered out of a CI run.
    if (util::alloc_counting_enabled() &&
        (mul_allocs != 0 || pow_allocs != 0 || hit_allocs != 0)) {
      std::fprintf(stderr,
                   "FAIL: hot path allocated (mont_mul %.2f, pow %.2f, "
                   "cache-hit verify %.2f per op)\n",
                   mul_allocs, pow_allocs, hit_allocs);
      return 1;
    }
    std::printf("smoke OK: envelope round-trips and parses\n");
  } else if (util::alloc_counting_enabled()) {
    std::printf("allocs/op: mont_mul %.2f, pow %.2f, sign %.2f, "
                "cache-hit verify %.2f, block serialize %.2f\n",
                mul_allocs, pow_allocs, sign_allocs, hit_allocs,
                serialize_allocs);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      opt.smoke = true;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke]\n", argv[0]);
      return 2;
    }
  }
  return run(opt);
}
