// Thread-scaling driver for the deterministic campaign engine.
//
// Runs one fixed experiment matrix through sim::run_campaign at pool sizes
// 1, 2, 4, and 8 and times each sweep. Before any timing, it asserts the
// engine's core contract: the deterministic results JSON
// (sim::campaign_results_json) is byte-identical at every pool size — the
// pool may only change the wall clock, never a result byte.
//
// Interpreting the numbers: wall-clock speedup is bounded by the cores the
// host actually has, which is why the envelope records
// hardware_concurrency (a 1-core container shows ~1.0x at every pool size
// by physics, not by defect — the determinism assertion is the part that
// must hold everywhere).
//
// Emits BENCH_campaign.json in the nwade-bench-v1 envelope (support.h).
// `--smoke` shrinks every dimension and validates the JSON round-trip; the
// perf/chaos-labeled ctest entry runs that mode (under TSan in the chaos
// build, which is what proves the fan-out data-race-free).
#include <cstring>
#include <string>
#include <vector>

#include "sim/campaign.h"
#include "support.h"

namespace {

using namespace nwade;

struct Options {
  bool smoke{false};
  bool allow_single_core{false};
};

sim::CampaignConfig matrix(bool smoke) {
  sim::CampaignConfig cfg;
  if (smoke) {
    cfg.kinds = {traffic::IntersectionKind::kCross4};
    cfg.attacks = {"benign"};
    cfg.densities_vpm = {60.0};
    cfg.rounds = 2;
    cfg.duration_ms = 5'000;
  } else {
    cfg.kinds = {traffic::IntersectionKind::kCross4,
                 traffic::IntersectionKind::kRoundabout3};
    cfg.attacks = {"benign", "V1"};
    cfg.densities_vpm = {80.0, 120.0};
    cfg.rounds = 1;
    cfg.duration_ms = 60'000;
  }
  cfg.base_seed = 1;
  return cfg;
}

int run(const Options& opt) {
  // A 1-core host cannot produce meaningful thread-scaling numbers — the
  // pool-N rows would measure scheduling overhead and look like the engine
  // failing to scale. Refuse to record an envelope from such a host unless
  // the caller opts in explicitly (the envelope then carries
  // single_core_host=true so a diff tool can refuse to compare it against
  // multicore runs). The smoke mode never records, so it always runs.
  const bool single_core = std::thread::hardware_concurrency() <= 1;
  if (!opt.smoke && single_core && !opt.allow_single_core) {
    std::fprintf(stderr,
                 "refusing to record BENCH_campaign.json: "
                 "hardware_concurrency=%u (thread-scaling numbers from a "
                 "1-core host are pool overhead, not speedup).\n"
                 "Re-run with --allow-single-core to record anyway; the "
                 "envelope will carry single_core_host=true.\n",
                 std::thread::hardware_concurrency());
    return 3;
  }

  const auto t_start = std::chrono::steady_clock::now();
  sim::CampaignConfig cfg = matrix(opt.smoke);
  const std::size_t cells = sim::expand_cells(cfg).size();
  const std::vector<int> pools = opt.smoke ? std::vector<int>{1, 2}
                                           : std::vector<int>{1, 2, 4, 8};
  const int warmup = opt.smoke ? 0 : 1;
  const int reps = opt.smoke ? 1 : 5;

  // Determinism gate first: every pool size must reproduce the pool-1
  // results byte for byte, or the timings below compare different work.
  cfg.threads = 1;
  const std::string reference =
      sim::campaign_results_json(cfg, sim::run_campaign(cfg));
  for (const int pool : pools) {
    cfg.threads = pool;
    const std::string got =
        sim::campaign_results_json(cfg, sim::run_campaign(cfg));
    if (got != reference) {
      std::fprintf(stderr,
                   "FAIL: pool size %d produced different campaign results "
                   "than pool size 1 — determinism contract broken\n",
                   pool);
      return 1;
    }
  }
  std::printf("determinism: %zu-cell results byte-identical across pools {",
              cells);
  for (std::size_t i = 0; i < pools.size(); ++i) {
    std::printf("%s%d", i ? ", " : "", pools[i]);
  }
  std::printf("}\n");

  std::vector<std::string> phases;
  double median_pool1 = 0;
  double median_last = 0;
  for (const int pool : pools) {
    cfg.threads = pool;
    const auto stats = bench::timed_median(warmup, reps, [&] {
      const auto results = sim::run_campaign(cfg);
      if (results.size() != cells) std::abort();
    });
    std::printf("pool %d: %zu cells in %.2f ms median\n", pool, cells,
                stats.median_ms);
    phases.push_back(
        bench::json_phase("campaign_pool" + std::to_string(pool), stats));
    if (pool == 1) median_pool1 = stats.median_ms;
    median_last = stats.median_ms;
  }
  const double speedup =
      median_last > 0 ? median_pool1 / median_last : 0;
  phases.push_back(bench::json_speedup(
      "campaign_pool" + std::to_string(pools.back()) + "_vs_pool1", speedup));

  std::string pool_list;
  for (std::size_t i = 0; i < pools.size(); ++i) {
    if (i) pool_list += ",";
    pool_list += std::to_string(pools[i]);
  }
  const std::vector<std::string> extra = {
      bench::json_field("campaign_cells", static_cast<double>(cells), 0),
      bench::json_field("pool_sizes", pool_list),
      bench::json_field("results_deterministic", std::string("true")),
      bench::json_field("single_core_host",
                        std::string(single_core ? "true" : "false")),
  };

  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t_start)
                            .count();
  const std::string envelope =
      bench::bench_envelope("campaign", wall_s, phases, extra);
  if (!bench::json_well_formed(envelope)) {
    std::fprintf(stderr, "FAIL: emitted envelope is not well-formed JSON\n");
    return 1;
  }
  const std::string path =
      opt.smoke ? "BENCH_campaign.smoke.json" : "BENCH_campaign.json";
  if (!bench::write_bench_file(path, envelope)) {
    std::fprintf(stderr, "FAIL: could not write %s\n", path.c_str());
    return 1;
  }

  if (opt.smoke) {
    std::string back;
    if (!bench::read_file(path, back) || back != envelope ||
        !bench::json_well_formed(back)) {
      std::fprintf(stderr, "FAIL: %s did not round-trip\n", path.c_str());
      return 1;
    }
    std::printf("smoke OK: determinism holds and envelope round-trips\n");
  } else {
    std::printf("campaign pool%d vs pool1 speedup: %.2fx "
                "(hardware_concurrency=%u)\n",
                pools.back(), speedup, std::thread::hardware_concurrency());
  }
  // Loud, non-fatal: numbers recorded on a 1-core host (speedup ~1.0x or
  // below, from pool scheduling overhead alone) must not be read as the
  // engine failing to scale. The determinism gate above is the part that is
  // meaningful everywhere; re-record the timings on a multicore host.
  if (std::thread::hardware_concurrency() <= 1) {
    std::fprintf(stderr,
                 "WARNING: hardware_concurrency=%u — this host cannot show "
                 "thread scaling;\nthe recorded pool-N timings in %s measure "
                 "pool overhead, not speedup.\n",
                 std::thread::hardware_concurrency(), path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      opt.smoke = true;
    } else if (std::strcmp(argv[i], "--allow-single-core") == 0) {
      opt.allow_single_core = true;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--allow-single-core]\n",
                   argv[0]);
      return 2;
    }
  }
  return run(opt);
}
