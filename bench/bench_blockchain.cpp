// Fig. 6 — Block Chain Management and Verification.
//
// For every intersection type and density the paper lists on its y-axis,
// measures the wall-clock cost of
//   * IM-side block management: scheduling the window's requests + packaging
//     and signing the block (SHA-256 + RSA-2048, as in the paper), and
//   * vehicle-side verification: full Algorithm 1 on each received block.
// The paper reports the total staying under ~20 ms per block.
#include "support.h"

using namespace nwade;
using namespace nwade::bench;

int main() {
  banner("Fig. 6: Block Chain Management and Verification (wall clock)",
         "NWADE Fig. 6 — per-block cost, 5 intersection types x densities");

  row({"Intersection (density)", "IM mgmt (ms)", "veh verify (ms)", "blocks"}, 26);

  const std::vector<double> densities = {40, 80, 120};
  for (traffic::IntersectionKind kind : traffic::kAllIntersectionKinds) {
    for (double density : densities) {
      sim::ScenarioConfig cfg = default_scenario();
      cfg.intersection.kind = kind;
      cfg.vehicles_per_minute = density;
      cfg.signer = sim::SignerKind::kRsa2048;  // paper: 2048-bit IM key
      cfg.duration_ms = std::min<Duration>(run_duration_ms(), 60'000);
      cfg.seed = 42;
      sim::World world(cfg);
      const sim::RunSummary s = world.run();

      const double im_ms = protocol::Metrics::mean(s.metrics.im_package_us) / 1000.0;
      const double veh_ms =
          protocol::Metrics::mean(s.metrics.vehicle_verify_us) / 1000.0;
      char label[64];
      std::snprintf(label, sizeof(label), "%s (%.0f)", intersection_name(kind),
                    density);
      row({label, fmt(im_ms, 2), fmt(veh_ms, 2),
           std::to_string(s.metrics.blocks_published)},
          26);
    }
  }
  std::printf(
      "\npaper shape: overall per-block calculation time stays in the low\n"
      "milliseconds (paper: < 20 ms), dominated by the RSA-2048 signature on\n"
      "the IM side; vehicle-side verification (signature check with e=65537 +\n"
      "Merkle recomputation + plan conflict check) is cheaper.\n");
  return 0;
}
