// Shard-scaling driver for the multi-intersection lattice (sim::Grid).
//
// Two questions, one envelope:
//
//  * grid-thread scaling: a fixed 4x4 grid (aggregate demand >= 10k vpm)
//    stepped at grid_threads 1/2/4/8. Before any timing, the determinism
//    gate asserts the grid summary digest is byte-identical at every thread
//    count — grid_threads may only change the wall clock, never a result
//    byte (the same contract bench_campaign enforces for its pool).
//  * shard-count scaling: 1x1 -> 2x2 -> 4x4 at a fixed thread count. Total
//    work grows with the shard count; on a multicore host the wall clock
//    per shard should stay near-constant (near-linear scaling).
//
// Interpreting the numbers: wall-clock speedup is bounded by the cores the
// host actually has, which is why the envelope records hardware_concurrency
// and refuses to record from a 1-core host without --allow-single-core (the
// envelope then carries single_core_host=true so bench_diff treats timing
// shifts as advisory).
//
// Emits BENCH_grid.json in the nwade-bench-v1 envelope (support.h).
// `--smoke` shrinks every dimension and validates the JSON round-trip; the
// perf/chaos-labeled ctest entry runs that mode.
#include <cstring>
#include <string>
#include <vector>

#include "sim/grid.h"
#include "support.h"

namespace {

using namespace nwade;

struct Options {
  bool smoke{false};
  bool allow_single_core{false};
};

/// A rows x cols lattice of cross4 shards at `vpm` demand per shard.
sim::GridConfig grid_config(int rows, int cols, double vpm, Duration duration,
                            int grid_threads) {
  sim::GridConfig g;
  g.rows = rows;
  g.cols = cols;
  g.shard = bench::default_scenario();
  g.shard.vehicles_per_minute = vpm;
  g.shard.duration_ms = duration;
  g.seed = 7;
  g.exchange_every_ms = 500;
  g.gossip_every_ms = 1'000;
  g.grid_threads = grid_threads;
  return g;
}

int run(const Options& opt) {
  const char* out_path = opt.smoke ? "BENCH_grid.smoke.json" : "BENCH_grid.json";
  // Fail a typo'd/unwritable output path in milliseconds, not after the
  // full timing matrix (bench::preflight_output_path contract).
  if (!bench::preflight_output_path(out_path)) return 1;

  // Same guard rail as bench_campaign: a 1-core host cannot show thread or
  // shard scaling — its rows measure scheduling overhead. Refuse to record
  // unless the caller opts in; the envelope then carries
  // single_core_host=true so a diff tool can refuse hard comparisons.
  const bool single_core = std::thread::hardware_concurrency() <= 1;
  if (!opt.smoke && single_core && !opt.allow_single_core) {
    std::fprintf(stderr,
                 "refusing to record BENCH_grid.json: "
                 "hardware_concurrency=%u (grid-scaling numbers from a "
                 "1-core host are pool overhead, not speedup).\n"
                 "Re-run with --allow-single-core to record anyway; the "
                 "envelope will carry single_core_host=true.\n",
                 std::thread::hardware_concurrency());
    return 3;
  }

  const auto t_start = std::chrono::steady_clock::now();
  // Full mode: 4x4 at 640 vpm/shard = 10'240 vpm aggregate demand (the
  // ROADMAP item-1 target scale); smoke keeps the topology but shrinks
  // everything else.
  // 40 simulated seconds: one cross4 crossing takes ~30 s, so a shorter
  // window would time a lattice with zero boundary handoffs — demand
  // without exchange. Smoke keeps the short window (its handoff coverage
  // lives in grid_test/grid_parallel_test).
  const int dim = opt.smoke ? 2 : 4;
  const double vpm = opt.smoke ? 80 : 640;
  const Duration duration = opt.smoke ? 5'000 : 40'000;
  const std::vector<int> pools =
      opt.smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};
  const int warmup = 0;
  const int reps = opt.smoke ? 1 : 3;

  // Determinism gate first: every grid_threads value must reproduce the
  // thread-1 summary digest byte for byte, or the timings below compare
  // different work.
  std::string reference;
  std::uint64_t handoffs_delivered = 0;
  double aggregate_vpm = 0;
  for (const int pool : pools) {
    sim::Grid grid(grid_config(dim, dim, vpm, duration, pool));
    const sim::GridSummary s = grid.run();
    const std::string digest = sim::Grid::summary_digest(s);
    if (pool == pools.front()) {
      reference = digest;
      handoffs_delivered = s.handoffs_delivered;
      aggregate_vpm = s.aggregate_throughput_vpm;
    } else if (digest != reference) {
      std::fprintf(stderr,
                   "FAIL: grid_threads %d produced a different summary "
                   "digest than grid_threads %d — determinism contract "
                   "broken\n",
                   pool, pools.front());
      return 1;
    }
  }
  std::printf(
      "determinism: %dx%d grid digest byte-identical across grid_threads {",
      dim, dim);
  for (std::size_t i = 0; i < pools.size(); ++i) {
    std::printf("%s%d", i ? ", " : "", pools[i]);
  }
  std::printf("}\n");
  std::printf("aggregate throughput %.0f vpm, %llu boundary handoffs\n",
              aggregate_vpm,
              static_cast<unsigned long long>(handoffs_delivered));

  // Grid-thread scaling on the fixed lattice.
  std::vector<std::string> phases;
  double median_pool1 = 0;
  double median_last = 0;
  for (const int pool : pools) {
    const auto stats = bench::timed_median(warmup, reps, [&] {
      sim::Grid grid(grid_config(dim, dim, vpm, duration, pool));
      const sim::GridSummary s = grid.run();
      if (s.shards.size() != static_cast<std::size_t>(dim * dim)) std::abort();
    });
    std::printf("grid_threads %d: %dx%d grid in %.2f ms median\n", pool, dim,
                dim, stats.median_ms);
    phases.push_back(bench::json_phase(
        "grid_" + std::to_string(dim) + "x" + std::to_string(dim) +
            "_threads" + std::to_string(pool),
        stats));
    if (pool == pools.front()) median_pool1 = stats.median_ms;
    median_last = stats.median_ms;
  }
  const double speedup = median_last > 0 ? median_pool1 / median_last : 0;
  phases.push_back(bench::json_speedup(
      "grid_" + std::to_string(dim) + "x" + std::to_string(dim) + "_threads" +
          std::to_string(pools.back()) + "_vs_threads" +
          std::to_string(pools.front()),
      speedup));

  // Shard-count scaling rows at the largest thread budget: total work grows
  // with the lattice; near-linear scaling keeps wall clock per shard flat
  // on a multicore host.
  const int scale_threads = pools.back();
  for (const int d : opt.smoke ? std::vector<int>{1, 2}
                               : std::vector<int>{1, 2, 4}) {
    const auto stats = bench::timed_median(warmup, reps, [&] {
      sim::Grid grid(grid_config(d, d, vpm, duration, scale_threads));
      const sim::GridSummary s = grid.run();
      if (s.shards.size() != static_cast<std::size_t>(d * d)) std::abort();
    });
    std::printf("shards %dx%d (threads %d): %.2f ms median (%.2f ms/shard)\n",
                d, d, scale_threads, stats.median_ms,
                stats.median_ms / (d * d));
    phases.push_back(bench::json_phase(
        "grid_shards_" + std::to_string(d) + "x" + std::to_string(d), stats));
  }

  const std::vector<std::string> extra = {
      bench::json_field("grid_rows", static_cast<double>(dim), 0),
      bench::json_field("grid_cols", static_cast<double>(dim), 0),
      bench::json_field("vpm_per_shard", vpm, 0),
      bench::json_field("aggregate_demand_vpm",
                        static_cast<double>(dim * dim) * vpm, 0),
      bench::json_field("aggregate_throughput_vpm", aggregate_vpm, 1),
      bench::json_field("handoffs_delivered",
                        static_cast<double>(handoffs_delivered), 0),
      bench::json_field("results_deterministic", std::string("true")),
      bench::json_field("single_core_host",
                        std::string(single_core ? "true" : "false")),
  };

  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t_start)
                            .count();
  const std::string envelope =
      bench::bench_envelope("grid", wall_s, phases, extra);
  if (!bench::json_well_formed(envelope)) {
    std::fprintf(stderr, "FAIL: emitted envelope is not well-formed JSON\n");
    return 1;
  }
  if (!bench::write_bench_file(out_path, envelope)) {
    std::fprintf(stderr, "FAIL: could not write %s\n", out_path);
    return 1;
  }

  if (opt.smoke) {
    std::string back;
    if (!bench::read_file(out_path, back) || back != envelope ||
        !bench::json_well_formed(back)) {
      std::fprintf(stderr, "FAIL: %s did not round-trip\n", out_path);
      return 1;
    }
    std::printf("smoke OK: determinism holds and envelope round-trips\n");
  } else {
    std::printf("grid threads%d vs threads%d speedup: %.2fx "
                "(hardware_concurrency=%u)\n",
                pools.back(), pools.front(), speedup,
                std::thread::hardware_concurrency());
  }
  // Loud, non-fatal: 1-core timings measure pool overhead, not scaling.
  if (std::thread::hardware_concurrency() <= 1) {
    std::fprintf(stderr,
                 "WARNING: hardware_concurrency=%u — this host cannot show "
                 "grid scaling;\nthe recorded timings in %s measure pool "
                 "overhead, not speedup.\n",
                 std::thread::hardware_concurrency(), out_path);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      opt.smoke = true;
    } else if (std::strcmp(argv[i], "--allow-single-core") == 0) {
      opt.allow_single_core = true;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--allow-single-core]\n",
                   argv[0]);
      return 2;
    }
  }
  return run(opt);
}
