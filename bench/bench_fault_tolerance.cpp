// Fault-tolerance curves: detection rate, detection time, and throughput as a
// function of channel loss severity (docs/FAULT_MODEL.md).
//
// Two sweeps share the same V1 scenario:
//   * uniform:  i.i.d. per-packet loss at p in {0 .. 0.4}
//   * bursty:   Gilbert-Elliott with ~8-packet bursts at the same mean loss
//
// Output is a single JSON document on stdout (after the human-readable
// banner) so plots can be regenerated without scraping tables:
//   { "bench": "fault_tolerance", "sweeps": [ {"channel": "...", "points":
//     [{"loss": .., "detection_rate": .., "mean_detection_time_ms": ..,
//       "throughput_vpm": .., ...}] } ] }
//
// The loss = 0 point doubles as the regression anchor: with every fault knob
// off the run consumes no fault randomness, so its numbers match the
// fault-free baseline benches exactly.
#include "support.h"

using namespace nwade;
using namespace nwade::bench;

namespace {

struct Channel {
  std::string name;
  // Builds the fault profile for one mean loss severity.
  net::FaultProfile (*profile)(double loss);
};

net::FaultProfile uniform_profile(double loss) {
  net::FaultProfile f;
  // Degenerate Gilbert-Elliott: loss is i.i.d. when the bad state lasts one
  // packet. Modelled through loss_probability-equivalent GE to keep the two
  // sweeps on the same code path.
  if (loss > 0) f = net::burst_loss_profile(loss, 1.0);
  return f;
}

net::FaultProfile bursty_profile(double loss) {
  net::FaultProfile f;
  if (loss > 0) f = net::burst_loss_profile(loss, 8.0);
  return f;
}

}  // namespace

int main() {
  banner("Fault tolerance: detection & throughput vs channel loss severity",
         "robustness extension -- NWADE detection under lossy channels");

  const std::vector<double> losses = {0.0, 0.05, 0.1, 0.2, 0.3, 0.4};
  const std::vector<Channel> channels = {{"uniform", &uniform_profile},
                                         {"bursty_8", &bursty_profile}};

  std::vector<std::string> sweeps;
  for (const Channel& channel : channels) {
    row({"channel: " + channel.name}, 32);
    row({"loss", "detect", "time ms", "vpm", "retries", "gap req"}, 10);

    std::vector<std::string> points;
    for (double loss : losses) {
      int detected = 0, applicable = 0;
      std::vector<double> detection_ms, throughput, retries, gap_requests;
      double dropped = 0, sent = 0;
      for (int round = 0; round < rounds(); ++round) {
        sim::ScenarioConfig cfg = default_scenario();
        cfg.vehicles_per_minute = 60;
        cfg.attack = protocol::attack_setting_by_name("V1");
        cfg.network.fault = channel.profile(loss);
        cfg.seed = 9000 + static_cast<std::uint64_t>(round) * 131 +
                   static_cast<std::uint64_t>(loss * 1000);
        sim::World world(cfg);
        const sim::RunSummary s = world.run();
        throughput.push_back(s.throughput_vpm);
        retries.push_back(static_cast<double>(s.metrics.plan_request_retries));
        gap_requests.push_back(
            static_cast<double>(s.metrics.gap_block_requests));
        dropped += static_cast<double>(s.net_stats.packets_dropped);
        sent += static_cast<double>(s.net_stats.packets_sent);
        if (!s.metrics.violation_start) continue;
        ++applicable;
        if (s.metrics.deviation_confirmed) {
          ++detected;
          if (const auto t = s.metrics.deviation_detection_time()) {
            detection_ms.push_back(static_cast<double>(*t));
          }
        }
      }
      const double rate =
          applicable > 0 ? static_cast<double>(detected) / applicable : 0.0;
      row({fmt(loss, 2), pct(rate), fmt(mean(detection_ms), 0),
           fmt(mean(throughput), 1), fmt(mean(retries), 1),
           fmt(mean(gap_requests), 1)},
          10);
      points.push_back(json_object({
          json_field("loss", loss, 2),
          json_field("detection_rate", rate),
          json_field("mean_detection_time_ms", mean(detection_ms), 0),
          json_field("stddev_detection_time_ms", stddev(detection_ms), 0),
          json_field("throughput_vpm", mean(throughput), 2),
          json_field("stddev_throughput_vpm", stddev(throughput), 2),
          json_field("mean_plan_request_retries", mean(retries), 1),
          json_field("mean_gap_block_requests", mean(gap_requests), 1),
          json_field("observed_drop_share", sent > 0 ? dropped / sent : 0.0),
      }));
    }
    sweeps.push_back(json_object(
        {json_field("channel", channel.name),
         "\"points\": " + json_array(points, "      ")}));
  }

  std::printf("\n%s\n",
              json_object({json_field("bench", std::string("fault_tolerance")),
                           json_field("rounds", static_cast<double>(rounds()), 0),
                           json_field("duration_ms",
                                      static_cast<double>(run_duration_ms()), 0),
                           "\"sweeps\": " + json_array(sweeps, "    ")})
                  .c_str());
  return 0;
}
