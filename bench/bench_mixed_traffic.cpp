// Extension bench — mixed autonomous/legacy traffic (the paper's stated
// future work: "the transitional period when there is a mix of autonomous
// vehicles and legacy vehicles").
//
// Sweeps the legacy penetration rate and reports managed/legacy throughput,
// safety-audit violations, and whether attack detection still works with
// legacy bystanders in every sensor's view.
#include "support.h"

using namespace nwade;
using namespace nwade::bench;

int main() {
  banner("Extension: mixed autonomous + legacy traffic",
         "NWADE Section VII future work — transitional-period penetration sweep");

  // Two separate questions: (1) benign mixed traffic — service and safety;
  // (2) an attacked run — does detection survive legacy bystanders? The
  // audit is only meaningful in (1): in (2) the deviator physically plows
  // through traffic and legacy vehicles cannot obey evacuation plans, which
  // is precisely the open problem of the transitional period.
  row({"legacy share", "managed vpm", "legacy vpm", "audit pair-sec",
       "V1 detected"},
      18);
  for (double fraction : {0.0, 0.2, 0.4, 0.6}) {
    std::vector<double> managed, legacy;
    int violations = 0, detected = 0, applicable = 0;
    for (int round = 0; round < rounds(); ++round) {
      sim::ScenarioConfig benign = default_scenario();
      benign.vehicles_per_minute = 60;
      benign.legacy_fraction = fraction;
      benign.seed = 8800 + static_cast<std::uint64_t>(round);
      const sim::RunSummary sb = sim::World(benign).run();
      const double minutes = ticks_to_seconds(benign.duration_ms) / 60.0;
      managed.push_back(sb.throughput_vpm);
      legacy.push_back(sb.legacy_exited / minutes);
      violations += sb.min_ground_truth_gap_violations;

      sim::ScenarioConfig attacked = benign;
      attacked.attack = protocol::attack_setting_by_name("V1");
      const sim::RunSummary sa = sim::World(attacked).run();
      if (sa.metrics.violation_start) {
        ++applicable;
        if (sa.metrics.deviation_confirmed) ++detected;
      }
    }
    row({pct(fraction), fmt(mean(managed), 1), fmt(mean(legacy), 1),
         std::to_string(violations),
         applicable > 0 ? pct(static_cast<double>(detected) / applicable)
                        : std::string("n/a")},
        18);
  }
  std::printf(
      "\nexpected shape: under benign mixed traffic, service shifts from the\n"
      "managed to the legacy column as penetration grows (legacy vehicles\n"
      "cross slower and force conservative virtual reservations), the safety\n"
      "audit stays near zero, and in attacked runs the neighbourhood watch\n"
      "keeps catching plan violations despite legacy bystanders.\n");
  return 0;
}
