// Table II — False Alarm Rate.
//
// For every Table I attack setting, runs the false-alarm experiments:
//   Type A: attackers claim a benign vehicle violates its travel plan.
//   Type B: attackers claim the IM issued conflicting travel plans.
// Reports the trigger rate (fraction of rounds where any benign vehicle was
// evacuated because of the lie) and the detection rate (fraction of rounds
// where the lie was identified: dismissed by the IM or refuted by peers).
// Type B is N/A for malicious-IM settings, as in the paper.
#include "support.h"

using namespace nwade;
using namespace nwade::bench;

namespace {

struct Rates {
  double trigger{0};
  double detect{0};
  int applicable{0};
};

Rates measure(const protocol::AttackSetting& setting,
              protocol::FalseReportKind kind) {
  int triggered = 0, detected = 0, applicable = 0;
  for (int round = 0; round < rounds(); ++round) {
    sim::ScenarioConfig cfg = default_scenario();
    cfg.attack = setting;
    cfg.false_report_kind = kind;
    // Table II isolates the false-REPORT attack: a colluding IM stonewalls
    // (kSilence); the conflicting-plans attack is Fig. 7's global-report
    // experiment and the ImAttack tests.
    cfg.im_attack_mode = protocol::ImAttackMode::kSilence;
    cfg.seed = 1000 + static_cast<std::uint64_t>(round) * 31;
    sim::World world(cfg);
    const sim::RunSummary s = world.run();

    const bool injected = kind == protocol::FalseReportKind::kIncident
                              ? s.metrics.false_incident_injected.has_value()
                              : s.metrics.false_global_injected.has_value();
    if (!injected && setting.false_reports > 0) continue;  // attacker never fired
    ++applicable;
    if (s.metrics.false_alarm_evacuations > 0) ++triggered;
    const bool caught = kind == protocol::FalseReportKind::kIncident
                            ? s.metrics.false_incident_dismissed.has_value()
                            : s.metrics.false_global_detected.has_value();
    // Settings without false reporters (V1, IM) can neither trigger nor be
    // "caught"; count them as clean rounds with nothing to detect.
    if (setting.false_reports == 0) {
      if (s.metrics.false_alarm_evacuations == 0) ++detected;
    } else if (caught) {
      ++detected;
    }
  }
  Rates r;
  if (applicable > 0) {
    r.trigger = static_cast<double>(triggered) / applicable;
    r.detect = static_cast<double>(detected) / applicable;
  }
  r.applicable = applicable;
  return r;
}

}  // namespace

int main() {
  banner("Table II: False Alarm Rate (trigger / detection)",
         "NWADE Table II — false alarm types A and B per attack setting");

  row({"Setting", "TypeA trig", "TypeA det", "TypeB trig", "TypeB det"});
  for (const auto& setting : protocol::table1_attack_settings()) {
    const Rates a = measure(setting, protocol::FalseReportKind::kIncident);
    std::string b_trig = "N/A", b_det = "N/A";
    if (!setting.im_malicious) {
      const Rates b = measure(setting, protocol::FalseReportKind::kWrongPlans);
      b_trig = pct(b.trigger);
      b_det = pct(b.detect);
    }
    row({setting.name, pct(a.trigger), pct(a.detect), b_trig, b_det});
  }
  std::printf(
      "\npaper shape: Type B always 0%% trigger / 100%% detection (blockchain\n"
      "verification defeats wrong-plan claims); Type A triggers only when many\n"
      "colluders amplify reports (V10, IM_V5, IM_V10), detection stays 100%%.\n");
  return 0;
}
