// Fig. 7 — Network Load.
//
// Total packets in the network at a 4-way intersection under the paper's
// three event types: (i) no attack, (ii) local (incident) reports being sent,
// (iii) global reports being sent. Also breaks the total down by message kind.
#include "support.h"

#include <algorithm>

using namespace nwade;
using namespace nwade::bench;

namespace {

sim::RunSummary run_case(const std::string& label, sim::ScenarioConfig cfg) {
  cfg.seed = 77;
  sim::World world(cfg);
  const sim::RunSummary s = world.run();
  std::printf("\n--- %s ---\n", label.c_str());
  row({"total packets", std::to_string(s.net_stats.packets_sent)}, 22);
  row({"bytes", std::to_string(s.net_stats.bytes_sent)}, 22);
  // Per-kind breakdown, largest first.
  std::vector<std::pair<std::string, std::uint64_t>> kinds(
      s.net_stats.packets_by_kind.begin(), s.net_stats.packets_by_kind.end());
  std::sort(kinds.begin(), kinds.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  for (const auto& [kind, count] : kinds) {
    row({"  " + kind, std::to_string(count)}, 22);
  }
  return s;
}

}  // namespace

int main() {
  banner("Fig. 7: Network Load (total packets by event type)",
         "NWADE Fig. 7 — no attack / local reports / global reports");

  // (i) No attack.
  sim::ScenarioConfig benign = default_scenario();
  const auto s_none = run_case("no attack", benign);

  // (ii) Local reports: a single deviator triggers incident reporting and
  // verification rounds, with a benign IM.
  sim::ScenarioConfig local = default_scenario();
  local.attack = protocol::attack_setting_by_name("V1");
  const auto s_local = run_case("local reports sent (V1)", local);

  // (iii) Global reports: a compromised IM issues conflicting plans; vehicles
  // broadcast global reports and self-evacuate.
  sim::ScenarioConfig global = default_scenario();
  global.attack = protocol::attack_setting_by_name("IM");
  const auto s_global = run_case("global reports sent (IM)", global);

  std::printf(
      "\npaper shape: the security machinery adds only a modest number of\n"
      "packets on top of the baseline plan dissemination; local-report events\n"
      "add unicast report/verify traffic (%llu -> %llu), global-report events\n"
      "add broadcast warnings (%llu -> %llu).\n",
      static_cast<unsigned long long>(s_none.net_stats.packets_sent),
      static_cast<unsigned long long>(s_local.net_stats.packets_sent),
      static_cast<unsigned long long>(s_none.net_stats.packets_sent),
      static_cast<unsigned long long>(s_global.net_stats.packets_sent));
  return 0;
}
