// Microbenchmarks for the cryptographic substrate behind Fig. 6: SHA-256,
// HMAC, RSA sign/verify at the paper's key size, Merkle packaging, and full
// block package/verify cycles.
#include <benchmark/benchmark.h>

#include "chain/block.h"
#include "crypto/merkle.h"
#include "crypto/rsa.h"
#include "crypto/sha256.h"
#include "crypto/signer.h"

namespace {

using namespace nwade;
using namespace nwade::crypto;

Bytes test_data(std::size_t size) {
  Bytes data(size);
  Rng rng(99);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return data;
}

void BM_Sha256(benchmark::State& state) {
  const Bytes data = test_data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sha256(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_HmacSha256(benchmark::State& state) {
  const Bytes key = test_data(32);
  const Bytes data = test_data(1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmac_sha256(key, data));
  }
}
BENCHMARK(BM_HmacSha256);

const RsaKeyPair& key_of(int bits) {
  static RsaKeyPair k1024 = [] {
    Rng rng(1);
    return rsa_generate(rng, 1024);
  }();
  static RsaKeyPair k2048 = [] {
    Rng rng(2);
    return rsa_generate(rng, 2048);
  }();
  return bits == 1024 ? k1024 : k2048;
}

void BM_RsaSign(benchmark::State& state) {
  const auto& key = key_of(static_cast<int>(state.range(0)));
  const Bytes msg = test_data(512);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rsa_sign(key.priv, msg));
  }
}
BENCHMARK(BM_RsaSign)->Arg(1024)->Arg(2048)->Unit(benchmark::kMillisecond);

void BM_RsaVerify(benchmark::State& state) {
  const auto& key = key_of(static_cast<int>(state.range(0)));
  const Bytes msg = test_data(512);
  const Bytes sig = rsa_sign(key.priv, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rsa_verify(key.pub, msg, sig));
  }
}
BENCHMARK(BM_RsaVerify)->Arg(1024)->Arg(2048)->Unit(benchmark::kMicrosecond);

void BM_MerkleBuild(benchmark::State& state) {
  std::vector<Bytes> leaves;
  for (int i = 0; i < state.range(0); ++i) leaves.push_back(test_data(120));
  for (auto _ : state) {
    MerkleTree tree(leaves);
    benchmark::DoNotOptimize(tree.root());
  }
}
BENCHMARK(BM_MerkleBuild)->Arg(2)->Arg(16)->Arg(128);

void BM_MerkleProveVerify(benchmark::State& state) {
  std::vector<Bytes> leaves;
  for (int i = 0; i < 64; ++i) leaves.push_back(test_data(120));
  MerkleTree tree(leaves);
  for (auto _ : state) {
    const auto proof = tree.prove(31);
    benchmark::DoNotOptimize(MerkleTree::verify(leaves[31], proof, tree.root()));
  }
}
BENCHMARK(BM_MerkleProveVerify);

aim::TravelPlan micro_plan(std::uint64_t vid) {
  aim::TravelPlan p;
  p.vehicle = VehicleId{vid};
  p.route_id = static_cast<int>(vid % 12);
  p.segments = {aim::PlanSegment{0, 0, 15.0}, aim::PlanSegment{12'000, 180, 20.0}};
  return p;
}

void BM_BlockPackage(benchmark::State& state) {
  Rng rng(5);
  const auto signer = RsaSigner::generate(rng, 2048);
  std::vector<aim::TravelPlan> plans;
  for (int i = 0; i < state.range(0); ++i) {
    plans.push_back(micro_plan(static_cast<std::uint64_t>(i) + 1));
  }
  Digest prev{};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        chain::Block::package(1, prev, 1000, plans, *signer));
  }
}
BENCHMARK(BM_BlockPackage)->Arg(1)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_BlockStructuralVerify(benchmark::State& state) {
  Rng rng(6);
  const auto signer = RsaSigner::generate(rng, 2048);
  std::vector<aim::TravelPlan> plans;
  for (int i = 0; i < state.range(0); ++i) {
    plans.push_back(micro_plan(static_cast<std::uint64_t>(i) + 1));
  }
  const chain::Block block = chain::Block::package(1, {}, 1000, plans, *signer);
  const auto verifier = signer->verifier();
  for (auto _ : state) {
    benchmark::DoNotOptimize(block.verify_signature(*verifier));
    benchmark::DoNotOptimize(block.verify_merkle());
  }
}
BENCHMARK(BM_BlockStructuralVerify)
    ->Arg(1)
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
