// Microbenchmarks for the cryptographic substrate behind Fig. 6: SHA-256,
// HMAC, RSA sign/verify at the paper's key size, Merkle packaging, and full
// block package/verify cycles.
#include <benchmark/benchmark.h>

#include "chain/block.h"
#include "crypto/merkle.h"
#include "crypto/rsa.h"
#include "crypto/sha256.h"
#include "crypto/signer.h"
#include "support.h"

namespace {

using namespace nwade;
using namespace nwade::crypto;

Bytes test_data(std::size_t size) {
  Bytes data(size);
  Rng rng(99);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return data;
}

/// Reports an "allocs_per_op" console column for a benchmark loop. Only
/// meaningful in -DNWADE_COUNT_ALLOCS=ON builds; elsewhere the counter reads
/// 0 throughout and the column shows 0 (counting is compiled out entirely).
class AllocMeter {
 public:
  void finish(benchmark::State& state) {
    const double ops = static_cast<double>(state.iterations());
    if (!nwade::util::alloc_counting_enabled() || ops <= 0) return;
    state.counters["allocs_per_op"] = benchmark::Counter(
        static_cast<double>(nwade::util::thread_alloc_count() - start_) / ops);
  }

 private:
  std::uint64_t start_{nwade::util::thread_alloc_count()};
};

void BM_Sha256(benchmark::State& state) {
  const Bytes data = test_data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sha256(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_HmacSha256(benchmark::State& state) {
  const Bytes key = test_data(32);
  const Bytes data = test_data(1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmac_sha256(key, data));
  }
}
BENCHMARK(BM_HmacSha256);

const RsaKeyPair& key_of(int bits) {
  static RsaKeyPair k1024 = [] {
    Rng rng(1);
    return rsa_generate(rng, 1024);
  }();
  static RsaKeyPair k2048 = [] {
    Rng rng(2);
    return rsa_generate(rng, 2048);
  }();
  return bits == 1024 ? k1024 : k2048;
}

void BM_RsaSign(benchmark::State& state) {
  const auto& key = key_of(static_cast<int>(state.range(0)));
  const Bytes msg = test_data(512);
  AllocMeter allocs;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rsa_sign(key.priv, msg));
  }
  allocs.finish(state);
}
BENCHMARK(BM_RsaSign)->Arg(1024)->Arg(2048)->Unit(benchmark::kMillisecond);

/// The steady-state signer shape: CRT Montgomery contexts built once, each
/// call pays only the two half-size modexps.
void BM_RsaSignContext(benchmark::State& state) {
  const auto& key = key_of(static_cast<int>(state.range(0)));
  const RsaSignContext ctx(key.priv);
  const Bytes msg = test_data(512);
  AllocMeter allocs;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.sign(msg));
  }
  allocs.finish(state);
}
BENCHMARK(BM_RsaSignContext)->Arg(1024)->Arg(2048)->Unit(benchmark::kMillisecond);

void BM_RsaVerify(benchmark::State& state) {
  const auto& key = key_of(static_cast<int>(state.range(0)));
  const Bytes msg = test_data(512);
  const Bytes sig = rsa_sign(key.priv, msg);
  AllocMeter allocs;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rsa_verify(key.pub, msg, sig));
  }
  allocs.finish(state);
}
BENCHMARK(BM_RsaVerify)->Arg(1024)->Arg(2048)->Unit(benchmark::kMicrosecond);

void BM_MerkleBuild(benchmark::State& state) {
  std::vector<Bytes> leaves;
  for (int i = 0; i < state.range(0); ++i) leaves.push_back(test_data(120));
  for (auto _ : state) {
    MerkleTree tree(leaves);
    benchmark::DoNotOptimize(tree.root());
  }
}
BENCHMARK(BM_MerkleBuild)->Arg(2)->Arg(16)->Arg(128);

void BM_MerkleProveVerify(benchmark::State& state) {
  std::vector<Bytes> leaves;
  for (int i = 0; i < 64; ++i) leaves.push_back(test_data(120));
  MerkleTree tree(leaves);
  for (auto _ : state) {
    const auto proof = tree.prove(31);
    benchmark::DoNotOptimize(MerkleTree::verify(leaves[31], proof, tree.root()));
  }
}
BENCHMARK(BM_MerkleProveVerify);

aim::TravelPlan micro_plan(std::uint64_t vid) {
  aim::TravelPlan p;
  p.vehicle = VehicleId{vid};
  p.route_id = static_cast<int>(vid % 12);
  p.segments = {aim::PlanSegment{0, 0, 15.0}, aim::PlanSegment{12'000, 180, 20.0}};
  return p;
}

void BM_BlockPackage(benchmark::State& state) {
  Rng rng(5);
  const auto signer = RsaSigner::generate(rng, 2048);
  std::vector<aim::TravelPlan> plans;
  for (int i = 0; i < state.range(0); ++i) {
    plans.push_back(micro_plan(static_cast<std::uint64_t>(i) + 1));
  }
  Digest prev{};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        chain::Block::package(1, prev, 1000, plans, *signer));
  }
}
BENCHMARK(BM_BlockPackage)->Arg(1)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_BlockStructuralVerify(benchmark::State& state) {
  Rng rng(6);
  const auto signer = RsaSigner::generate(rng, 2048);
  std::vector<aim::TravelPlan> plans;
  for (int i = 0; i < state.range(0); ++i) {
    plans.push_back(micro_plan(static_cast<std::uint64_t>(i) + 1));
  }
  const chain::Block block = chain::Block::package(1, {}, 1000, plans, *signer);
  const auto verifier = signer->verifier();
  for (auto _ : state) {
    benchmark::DoNotOptimize(block.verify_signature(*verifier));
    benchmark::DoNotOptimize(block.verify_merkle());
  }
}
BENCHMARK(BM_BlockStructuralVerify)
    ->Arg(1)
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kMicrosecond);

/// Headline phases re-measured with the shared warmup + median-of-N helper
/// and written to BENCH_crypto_micro.json (nwade-bench-v1, support.h). The
/// amortized-context phase shows what RsaVerifyContext saves over the free
/// function, which pays Montgomery setup on every call.
constexpr const char* kOutPath = "BENCH_crypto_micro.json";

bool emit_bench_json() {
  const auto t_start = std::chrono::steady_clock::now();
  const auto& key = key_of(2048);
  const Bytes msg = test_data(512);
  const Bytes sig = rsa_sign(key.priv, msg);
  constexpr int kVerifies = 16;

  const auto verify_free = nwade::bench::timed_median(1, 5, [&] {
    for (int i = 0; i < kVerifies; ++i) {
      benchmark::DoNotOptimize(rsa_verify(key.pub, msg, sig));
    }
  });
  const RsaVerifyContext ctx(key.pub);
  const auto verify_ctx = nwade::bench::timed_median(1, 5, [&] {
    for (int i = 0; i < kVerifies; ++i) {
      benchmark::DoNotOptimize(ctx.verify(msg, sig));
    }
  });
  const RsaSignContext sign_ctx(key.priv);
  const auto sign_free = nwade::bench::timed_median(1, 5, [&] {
    benchmark::DoNotOptimize(rsa_sign(key.priv, msg));
  });
  const auto sign_context = nwade::bench::timed_median(1, 5, [&] {
    benchmark::DoNotOptimize(sign_ctx.sign(msg));
  });
  const auto sha_64k = nwade::bench::timed_median(1, 5, [data = test_data(65536)] {
    benchmark::DoNotOptimize(sha256(data));
  });

  // allocs/op columns (only measured in NWADE_COUNT_ALLOCS builds).
  const double sign_allocs = nwade::bench::allocs_per_op(
      8, [&] { benchmark::DoNotOptimize(sign_ctx.sign(msg)); });
  const double verify_allocs = nwade::bench::allocs_per_op(
      32, [&] { benchmark::DoNotOptimize(ctx.verify(msg, sig)); });

  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t_start)
                            .count();
  const std::string envelope = nwade::bench::bench_envelope(
      "crypto_micro", wall_s,
      {nwade::bench::json_phase("rsa2048_verify_x16_free", verify_free),
       nwade::bench::json_phase("rsa2048_verify_x16_context", verify_ctx,
                                verify_allocs),
       nwade::bench::json_speedup(
           "rsa2048_verify_context",
           verify_ctx.median_ms > 0 ? verify_free.median_ms / verify_ctx.median_ms
                                    : 0),
       nwade::bench::json_phase("rsa2048_sign_free", sign_free),
       nwade::bench::json_phase("rsa2048_sign_context", sign_context,
                                sign_allocs),
       nwade::bench::json_speedup(
           "rsa2048_sign_context",
           sign_context.median_ms > 0 ? sign_free.median_ms / sign_context.median_ms
                                      : 0),
       nwade::bench::json_phase("sha256_64k", sha_64k)});
  return nwade::bench::write_bench_file(kOutPath, envelope);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  // Fail on an unwritable envelope path before the minutes of RSA timing,
  // and propagate a failed write as a failing exit code — a silent envelope
  // loss would let CI diff against a stale BENCH file.
  if (!nwade::bench::preflight_output_path(kOutPath)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return emit_bench_json() ? 0 : 1;
}
