// Microbenchmarks for the AIM substrate: per-request scheduling cost at every
// intersection geometry, plan conflict checking, and evacuation replanning.
// The paper cites DASH generating plans for 1000 vehicles in < 0.5 s; this
// harness shows the reservation scheduler's per-request cost in that regime.
#include <benchmark/benchmark.h>

#include "aim/baseline.h"
#include "aim/scheduler.h"
#include "support.h"
#include "traffic/arrivals.h"

namespace {

using namespace nwade;

const traffic::Intersection& intersection_of(int kind) {
  static std::map<int, traffic::Intersection> cache;
  auto it = cache.find(kind);
  if (it == cache.end()) {
    traffic::IntersectionConfig cfg;
    cfg.kind = static_cast<traffic::IntersectionKind>(kind);
    it = cache.emplace(kind, traffic::Intersection::build(cfg)).first;
  }
  return it->second;
}

void BM_IntersectionBuild(benchmark::State& state) {
  traffic::IntersectionConfig cfg;
  cfg.kind = static_cast<traffic::IntersectionKind>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(traffic::Intersection::build(cfg));
  }
}
BENCHMARK(BM_IntersectionBuild)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

void BM_Schedule(benchmark::State& state) {
  const auto& ix = intersection_of(static_cast<int>(state.range(0)));
  traffic::ArrivalGenerator gen(ix, 120, Rng(3));
  const auto arrivals = gen.generate(10 * 60 * 1000);
  aim::ReservationScheduler sched(ix);
  std::size_t i = 0;
  std::uint64_t vid = 1;
  for (auto _ : state) {
    const auto& a = arrivals[i % arrivals.size()];
    benchmark::DoNotOptimize(
        sched.schedule(VehicleId{vid++}, a.route_id, a.traits, a.time, 20.0));
    if (++i % arrivals.size() == 0) {
      state.PauseTiming();
      sched.release_before(kTickMax);  // keep tables bounded across laps
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_Schedule)->DenseRange(0, 4)->Unit(benchmark::kMicrosecond);

void BM_ScheduleBurst1000(benchmark::State& state) {
  // The DASH comparison point: 1000 vehicles scheduled back-to-back.
  const auto& ix = intersection_of(1);  // 4-way cross
  traffic::ArrivalGenerator gen(ix, 120, Rng(4));
  const auto arrivals = gen.generate(10 * 60 * 1000);
  for (auto _ : state) {
    aim::ReservationScheduler sched(ix);
    std::uint64_t vid = 1;
    for (int i = 0; i < 1000; ++i) {
      const auto& a = arrivals[static_cast<std::size_t>(i) % arrivals.size()];
      benchmark::DoNotOptimize(
          sched.schedule(VehicleId{vid++}, a.route_id, a.traits,
                         static_cast<Tick>(i) * 100, 20.0));
    }
  }
}
BENCHMARK(BM_ScheduleBurst1000)->Unit(benchmark::kMillisecond);

void BM_FindPlanConflicts(benchmark::State& state) {
  const auto& ix = intersection_of(1);
  traffic::ArrivalGenerator gen(ix, 120, Rng(5));
  const auto arrivals = gen.generate(10 * 60 * 1000);
  aim::ReservationScheduler sched(ix);
  std::vector<aim::TravelPlan> plans;
  std::uint64_t vid = 1;
  for (int i = 0; i < state.range(0); ++i) {
    const auto& a = arrivals[static_cast<std::size_t>(i)];
    plans.push_back(sched.schedule(VehicleId{vid++}, a.route_id, a.traits, a.time, 20.0));
  }
  std::vector<const aim::TravelPlan*> ptrs;
  for (const auto& p : plans) ptrs.push_back(&p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(aim::find_plan_conflicts(ix, ptrs, 500));
  }
}
BENCHMARK(BM_FindPlanConflicts)->Arg(16)->Arg(64)->Arg(256)->Unit(benchmark::kMicrosecond);

void BM_PlanEvacuation(benchmark::State& state) {
  const auto& ix = intersection_of(1);
  aim::ReservationScheduler sched(ix);
  std::vector<aim::ActiveVehicle> active;
  Rng rng(6);
  for (int i = 0; i < state.range(0); ++i) {
    active.push_back(aim::ActiveVehicle{
        VehicleId{static_cast<std::uint64_t>(i) + 1}, i % 12, {},
        rng.uniform(0, 300), rng.uniform(5, 20)});
  }
  aim::ThreatInfo threat;
  threat.position = ix.route(0).path.point_at(ix.route(0).core_begin);
  threat.suspect = VehicleId{9999};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.plan_evacuation(active, threat, 50'000));
  }
}
BENCHMARK(BM_PlanEvacuation)->Arg(20)->Arg(100)->Unit(benchmark::kMicrosecond);

void BM_TrafficLightSchedule(benchmark::State& state) {
  const auto& ix = intersection_of(1);
  traffic::ArrivalGenerator gen(ix, 120, Rng(7));
  const auto arrivals = gen.generate(10 * 60 * 1000);
  aim::TrafficLightScheduler lights(ix);
  std::size_t i = 0;
  std::uint64_t vid = 1;
  for (auto _ : state) {
    const auto& a = arrivals[i++ % arrivals.size()];
    benchmark::DoNotOptimize(
        lights.schedule(VehicleId{vid++}, a.route_id, a.traits, a.time, 20.0));
  }
}
BENCHMARK(BM_TrafficLightSchedule)->Unit(benchmark::kMicrosecond);

/// Headline phases re-measured with the shared warmup + median-of-N helper
/// and written to BENCH_scheduler_micro.json (nwade-bench-v1, support.h) so
/// run-over-run diffs don't depend on google-benchmark's console format.
constexpr const char* kOutPath = "BENCH_scheduler_micro.json";

bool emit_bench_json() {
  const auto t_start = std::chrono::steady_clock::now();
  const auto& ix = intersection_of(1);  // 4-way cross
  traffic::ArrivalGenerator gen(ix, 120, Rng(4));
  const auto arrivals = gen.generate(10 * 60 * 1000);

  const auto burst = [&](bool linear) {
    aim::SchedulerConfig cfg;
    cfg.linear_reference_scan = linear;
    aim::ReservationScheduler sched(ix, cfg);
    std::uint64_t vid = 1;
    for (int i = 0; i < 1000; ++i) {
      const auto& a = arrivals[static_cast<std::size_t>(i) % arrivals.size()];
      benchmark::DoNotOptimize(sched.schedule(VehicleId{vid++}, a.route_id,
                                              a.traits,
                                              static_cast<Tick>(i) * 100, 20.0));
    }
  };
  const auto burst_indexed =
      nwade::bench::timed_median(1, 5, [&] { burst(false); });
  const auto burst_linear =
      nwade::bench::timed_median(1, 5, [&] { burst(true); });

  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t_start)
                            .count();
  const std::string envelope = nwade::bench::bench_envelope(
      "scheduler_micro", wall_s,
      {nwade::bench::json_phase("schedule_burst_1000_indexed", burst_indexed),
       nwade::bench::json_phase("schedule_burst_1000_linear", burst_linear),
       nwade::bench::json_speedup(
           "schedule_burst_1000",
           burst_indexed.median_ms > 0
               ? burst_linear.median_ms / burst_indexed.median_ms
               : 0)});
  return nwade::bench::write_bench_file(kOutPath, envelope);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  // Fail on an unwritable envelope path before the timing runs, and
  // propagate a failed write as a failing exit code — a silent envelope
  // loss would let CI diff against a stale BENCH file.
  if (!nwade::bench::preflight_output_path(kOutPath)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return emit_bench_json() ? 0 : 1;
}
