// Perf-regression driver for spatial-index world stepping.
//
// One arrival-saturated mixed-traffic scenario (4-way cross, 1500 veh/min
// demand, 40% legacy — the junction queues, so ~1700 vehicles accumulate)
// is run to completion twice: once with ScenarioConfig::quadratic_reference
// (the original all-pairs sweeps for the ground-truth min-gap audit, the
// managed and legacy car-following lookups, sensor queries, and the network
// broadcast range scan) and once with the uniform-grid spatial index that
// replaced them. Before timing, both modes must produce an identical run
// summary — the index is only allowed to skip work whose result could not
// matter, never to change a result.
//
// The NWADE security layer is disabled here on purpose: per-packet protocol
// and crypto costs scale with traffic too and would swamp the geometry
// (they have their own driver, bench_hot_paths). What remains is exactly
// the per-step work the quadratic_reference flag toggles.
//
// The speedup here is algorithmic (fewer exact distance checks per step),
// so unlike bench_campaign's thread scaling it shows up on any machine.
//
// Emits BENCH_world_step.json in the nwade-bench-v1 envelope (support.h).
// `--smoke` shrinks the scenario and validates the JSON round-trip; the
// perf-labeled ctest entry runs that mode.
#include <cstring>
#include <string>
#include <vector>

#include "crypto/verify_cache.h"
#include "support.h"

namespace {

using namespace nwade;

struct Options {
  bool smoke{false};
  bool allow_single_core{false};
};

enum class Mode {
  kQuadratic,      ///< all-pairs sweeps (the original reference)
  kAosReference,   ///< spatial index + retained AoS stepping loops
  kSoa,            ///< spatial index + SoA columns, chunked kernels, 1 thread
  kSoaThreads2,    ///< SoA chunked kernels on a 2-thread pool
  kSoaThreads4,    ///< SoA chunked kernels on a 4-thread pool
};

sim::ScenarioConfig scenario(bool smoke, Mode mode) {
  sim::ScenarioConfig cfg;
  cfg.intersection.kind = traffic::IntersectionKind::kCross4;
  cfg.vehicles_per_minute = smoke ? 80 : 1500;
  cfg.duration_ms = smoke ? 8'000 : 120'000;
  cfg.legacy_fraction = 0.4;  // exercises both car-following lookups
  cfg.nwade_enabled = false;  // stepping only; crypto is bench_hot_paths' job
  cfg.seed = 9;
  cfg.quadratic_reference = mode == Mode::kQuadratic;
  cfg.aos_reference = mode == Mode::kAosReference;
  if (mode == Mode::kSoaThreads2) cfg.step_threads = 2;
  if (mode == Mode::kSoaThreads4) cfg.step_threads = 4;
  return cfg;
}

/// Every deterministic field of a RunSummary, rendered to a fixed-format
/// string so two runs can be compared byte for byte (the wall-clock timing
/// vectors in Metrics are deliberately excluded).
std::string fingerprint(const sim::RunSummary& s) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "spawned=%d exited=%d thr=%.6f cross=%.6f active=%d gaps=%d "
      "legacy=%d/%d inc=%d glob=%d alerts=%d false=%d degraded=%d blocks=%d "
      "sent=%llu delivered=%llu dropped=%llu oor=%llu bytes=%llu",
      s.metrics.vehicles_spawned, s.metrics.vehicles_exited, s.throughput_vpm,
      s.mean_crossing_ms, s.active_at_end, s.min_ground_truth_gap_violations,
      s.legacy_spawned, s.legacy_exited, s.metrics.incident_reports,
      s.metrics.global_reports, s.metrics.evacuation_alerts,
      s.metrics.false_alarm_evacuations, s.metrics.degraded_entries,
      s.metrics.blocks_published,
      static_cast<unsigned long long>(s.net_stats.packets_sent),
      static_cast<unsigned long long>(s.net_stats.packets_delivered),
      static_cast<unsigned long long>(s.net_stats.packets_dropped),
      static_cast<unsigned long long>(s.net_stats.packets_out_of_range),
      static_cast<unsigned long long>(s.net_stats.bytes_sent));
  return buf;
}

int run(const Options& opt) {
  // The step_threads phases below are thread-scaling numbers: on a 1-core
  // host they measure pool overhead, not speedup. Refuse to record an
  // envelope from such a host unless explicitly overridden (the envelope
  // then carries single_core_host=true). The smoke mode never records real
  // timings, so it always runs.
  const bool single_core = std::thread::hardware_concurrency() <= 1;
  if (!opt.smoke && single_core && !opt.allow_single_core) {
    std::fprintf(stderr,
                 "refusing to record BENCH_world_step.json: "
                 "hardware_concurrency=%u (the step_threads phases from a "
                 "1-core host measure pool overhead, not speedup).\n"
                 "Re-run with --allow-single-core to record anyway; the "
                 "envelope will carry single_core_host=true.\n",
                 std::thread::hardware_concurrency());
    return 3;
  }

  const auto t_start = std::chrono::steady_clock::now();
  const int warmup = opt.smoke ? 0 : 1;
  const int reps = opt.smoke ? 1 : 5;

  // Equivalence gate first: every mode must produce an identical summary, or
  // the timings below compare different simulations. The gate spans all
  // three layers of replacement: all-pairs -> spatial index (quadratic vs
  // aos_reference), AoS loops -> SoA chunked kernels (aos_reference vs soa),
  // and serial -> pooled chunk execution (soa vs step_threads=4).
  const struct {
    Mode mode;
    const char* name;
  } modes[] = {
      {Mode::kQuadratic, "quadratic"},
      {Mode::kAosReference, "aos_reference"},
      {Mode::kSoa, "soa"},
      {Mode::kSoaThreads4, "soa_threads4"},
  };
  std::string fp_reference;
  for (const auto& m : modes) {
    const std::string fp = fingerprint(sim::World(scenario(opt.smoke, m.mode)).run());
    if (fp_reference.empty()) {
      fp_reference = fp;
    } else if (fp != fp_reference) {
      std::fprintf(stderr,
                   "FAIL: %s run diverged from quadratic reference\n  "
                   "reference: %s\n  %s: %s\n",
                   m.name, fp_reference.c_str(), m.name, fp.c_str());
      return 1;
    }
  }
  std::printf("equivalence: quadratic, aos_reference, soa, and soa_threads4 "
              "summaries identical\n  %s\n",
              fp_reference.c_str());

  // Phase boundary: start each mode from a pristine process-wide cache so
  // one phase's memoized verdicts can never skew the other's timings.
  const auto timed_mode = [&](Mode mode) {
    crypto::SigVerifyCache::instance().reset();
    return bench::timed_median(warmup, reps, [&] {
      sim::World world(scenario(opt.smoke, mode));
      (void)world.run();
    });
  };
  const auto quad = timed_mode(Mode::kQuadratic);
  const auto aos = timed_mode(Mode::kAosReference);
  const auto soa = timed_mode(Mode::kSoa);
  const auto soa_t2 = timed_mode(Mode::kSoaThreads2);
  const auto soa_t4 = timed_mode(Mode::kSoaThreads4);
  const auto ratio = [](const bench::TimingStats& before,
                        const bench::TimingStats& after) {
    return after.median_ms > 0 ? before.median_ms / after.median_ms : 0;
  };

  const std::vector<std::string> phases = {
      bench::json_phase("world_step_quadratic", quad),
      bench::json_phase("world_step_aos_reference", aos),
      bench::json_phase("world_step_soa_threads1", soa),
      bench::json_phase("world_step_soa_threads2", soa_t2),
      bench::json_phase("world_step_soa_threads4", soa_t4),
      // Every speedup row names both sides: numerator config vs denominator.
      bench::json_speedup("world_step_soa_threads1_vs_quadratic",
                          ratio(quad, soa)),
      bench::json_speedup("world_step_soa_threads1_vs_aos_reference",
                          ratio(aos, soa)),
      bench::json_speedup("world_step_soa_threads4_vs_soa_threads1",
                          ratio(soa, soa_t4)),
  };
  const sim::ScenarioConfig shape = scenario(opt.smoke, Mode::kSoa);
  const std::vector<std::string> extra = {
      bench::json_field("vehicles_per_minute", shape.vehicles_per_minute, 0),
      bench::json_field("duration_ms",
                        static_cast<double>(shape.duration_ms), 0),
      bench::json_field("legacy_fraction", shape.legacy_fraction, 2),
      bench::json_field("nwade_enabled", std::string("false")),
      bench::json_field("summaries_identical", std::string("true")),
      bench::json_field("single_core_host",
                        std::string(single_core ? "true" : "false")),
  };

  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t_start)
                            .count();
  const std::string envelope =
      bench::bench_envelope("world_step", wall_s, phases, extra);
  if (!bench::json_well_formed(envelope)) {
    std::fprintf(stderr, "FAIL: emitted envelope is not well-formed JSON\n");
    return 1;
  }
  const std::string path =
      opt.smoke ? "BENCH_world_step.smoke.json" : "BENCH_world_step.json";
  if (!bench::write_bench_file(path, envelope)) {
    std::fprintf(stderr, "FAIL: could not write %s\n", path.c_str());
    return 1;
  }

  if (opt.smoke) {
    std::string back;
    if (!bench::read_file(path, back) || back != envelope ||
        !bench::json_well_formed(back)) {
      std::fprintf(stderr, "FAIL: %s did not round-trip\n", path.c_str());
      return 1;
    }
    std::printf("smoke OK: equivalence holds and envelope round-trips\n");
  } else {
    std::printf(
        "world_step: quadratic %.2f ms, aos %.2f ms, soa %.2f ms "
        "(%.2fx vs quadratic, %.2fx vs aos), soa@2t %.2f ms, soa@4t %.2f ms "
        "(%.2fx vs soa@1t, hardware_concurrency=%u)\n",
        quad.median_ms, aos.median_ms, soa.median_ms, ratio(quad, soa),
        ratio(aos, soa), soa_t2.median_ms, soa_t4.median_ms,
        ratio(soa, soa_t4), std::thread::hardware_concurrency());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      opt.smoke = true;
    } else if (std::strcmp(argv[i], "--allow-single-core") == 0) {
      opt.allow_single_core = true;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--allow-single-core]\n",
                   argv[0]);
      return 2;
    }
  }
  return run(opt);
}
