// Perf-regression driver for spatial-index world stepping.
//
// One arrival-saturated mixed-traffic scenario (4-way cross, 1500 veh/min
// demand, 40% legacy — the junction queues, so ~1700 vehicles accumulate)
// is run to completion twice: once with ScenarioConfig::quadratic_reference
// (the original all-pairs sweeps for the ground-truth min-gap audit, the
// managed and legacy car-following lookups, sensor queries, and the network
// broadcast range scan) and once with the uniform-grid spatial index that
// replaced them. Before timing, both modes must produce an identical run
// summary — the index is only allowed to skip work whose result could not
// matter, never to change a result.
//
// The NWADE security layer is disabled here on purpose: per-packet protocol
// and crypto costs scale with traffic too and would swamp the geometry
// (they have their own driver, bench_hot_paths). What remains is exactly
// the per-step work the quadratic_reference flag toggles.
//
// The speedup here is algorithmic (fewer exact distance checks per step),
// so unlike bench_campaign's thread scaling it shows up on any machine.
//
// Emits BENCH_world_step.json in the nwade-bench-v1 envelope (support.h).
// `--smoke` shrinks the scenario and validates the JSON round-trip; the
// perf-labeled ctest entry runs that mode.
#include <cstring>
#include <string>
#include <vector>

#include "crypto/verify_cache.h"
#include "support.h"

namespace {

using namespace nwade;

struct Options {
  bool smoke{false};
};

sim::ScenarioConfig scenario(bool smoke, bool quadratic) {
  sim::ScenarioConfig cfg;
  cfg.intersection.kind = traffic::IntersectionKind::kCross4;
  cfg.vehicles_per_minute = smoke ? 80 : 1500;
  cfg.duration_ms = smoke ? 8'000 : 120'000;
  cfg.legacy_fraction = 0.4;  // exercises both car-following lookups
  cfg.nwade_enabled = false;  // stepping only; crypto is bench_hot_paths' job
  cfg.seed = 9;
  cfg.quadratic_reference = quadratic;
  return cfg;
}

/// Every deterministic field of a RunSummary, rendered to a fixed-format
/// string so two runs can be compared byte for byte (the wall-clock timing
/// vectors in Metrics are deliberately excluded).
std::string fingerprint(const sim::RunSummary& s) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "spawned=%d exited=%d thr=%.6f cross=%.6f active=%d gaps=%d "
      "legacy=%d/%d inc=%d glob=%d alerts=%d false=%d degraded=%d blocks=%d "
      "sent=%llu delivered=%llu dropped=%llu oor=%llu bytes=%llu",
      s.metrics.vehicles_spawned, s.metrics.vehicles_exited, s.throughput_vpm,
      s.mean_crossing_ms, s.active_at_end, s.min_ground_truth_gap_violations,
      s.legacy_spawned, s.legacy_exited, s.metrics.incident_reports,
      s.metrics.global_reports, s.metrics.evacuation_alerts,
      s.metrics.false_alarm_evacuations, s.metrics.degraded_entries,
      s.metrics.blocks_published,
      static_cast<unsigned long long>(s.net_stats.packets_sent),
      static_cast<unsigned long long>(s.net_stats.packets_delivered),
      static_cast<unsigned long long>(s.net_stats.packets_dropped),
      static_cast<unsigned long long>(s.net_stats.packets_out_of_range),
      static_cast<unsigned long long>(s.net_stats.bytes_sent));
  return buf;
}

int run(const Options& opt) {
  const auto t_start = std::chrono::steady_clock::now();
  const int warmup = opt.smoke ? 0 : 1;
  const int reps = opt.smoke ? 1 : 5;

  // Equivalence gate first: identical summaries, or the timings below
  // compare different simulations.
  const std::string fp_quadratic =
      fingerprint(sim::World(scenario(opt.smoke, true)).run());
  const std::string fp_indexed =
      fingerprint(sim::World(scenario(opt.smoke, false)).run());
  if (fp_quadratic != fp_indexed) {
    std::fprintf(stderr,
                 "FAIL: quadratic and indexed runs diverged\n  quadratic: "
                 "%s\n  indexed:   %s\n",
                 fp_quadratic.c_str(), fp_indexed.c_str());
    return 1;
  }
  std::printf("equivalence: quadratic and indexed summaries identical\n  %s\n",
              fp_indexed.c_str());

  // Phase boundary: start each mode from a pristine process-wide cache so
  // one phase's memoized verdicts can never skew the other's timings.
  crypto::SigVerifyCache::instance().reset();
  const auto quad = bench::timed_median(warmup, reps, [&] {
    sim::World world(scenario(opt.smoke, true));
    (void)world.run();
  });
  crypto::SigVerifyCache::instance().reset();
  const auto indexed = bench::timed_median(warmup, reps, [&] {
    sim::World world(scenario(opt.smoke, false));
    (void)world.run();
  });
  const double speedup =
      indexed.median_ms > 0 ? quad.median_ms / indexed.median_ms : 0;

  const std::vector<std::string> phases = {
      bench::json_phase("world_step_quadratic", quad),
      bench::json_phase("world_step_indexed", indexed),
      bench::json_speedup("world_step", speedup),
  };
  const sim::ScenarioConfig shape = scenario(opt.smoke, false);
  const std::vector<std::string> extra = {
      bench::json_field("vehicles_per_minute", shape.vehicles_per_minute, 0),
      bench::json_field("duration_ms",
                        static_cast<double>(shape.duration_ms), 0),
      bench::json_field("legacy_fraction", shape.legacy_fraction, 2),
      bench::json_field("nwade_enabled", std::string("false")),
      bench::json_field("summaries_identical", std::string("true")),
  };

  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t_start)
                            .count();
  const std::string envelope =
      bench::bench_envelope("world_step", wall_s, phases, extra);
  if (!bench::json_well_formed(envelope)) {
    std::fprintf(stderr, "FAIL: emitted envelope is not well-formed JSON\n");
    return 1;
  }
  const std::string path =
      opt.smoke ? "BENCH_world_step.smoke.json" : "BENCH_world_step.json";
  if (!bench::write_bench_file(path, envelope)) {
    std::fprintf(stderr, "FAIL: could not write %s\n", path.c_str());
    return 1;
  }

  if (opt.smoke) {
    std::string back;
    if (!bench::read_file(path, back) || back != envelope ||
        !bench::json_well_formed(back)) {
      std::fprintf(stderr, "FAIL: %s did not round-trip\n", path.c_str());
      return 1;
    }
    std::printf("smoke OK: equivalence holds and envelope round-trips\n");
  } else {
    std::printf("world_step speedup: %.2fx (quadratic %.2f ms -> indexed "
                "%.2f ms)\n",
                speedup, quad.median_ms, indexed.median_ms);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      opt.smoke = true;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke]\n", argv[0]);
      return 2;
    }
  }
  return run(opt);
}
