// Ablation suite — the design choices DESIGN.md calls out.
//
//   A1  second-group re-verification on/off, under majority-vote gaming
//       (colluders frame a benign vehicle while the IM cannot see the scene)
//   A2  signer choice: HMAC vs RSA-1024 vs RSA-2048 per-block cost
//   A3  global-report safety threshold sweep vs false-alarm triggers (V10)
//   A4  chain cache depth: deep tau/delta cache vs single-block cache
//       (cross-block conflict checks need history)
//   A5  scheduler: reservation AIM vs fixed-cycle traffic lights (mean delay)
#include "support.h"

#include "aim/baseline.h"
#include "traffic/arrivals.h"

using namespace nwade;
using namespace nwade::bench;

namespace {

void ablation_double_check() {
  std::printf("\n[A1] second-group re-verification under majority-vote gaming\n");
  row({"double-check", "false evac rounds", "dismissed rounds"}, 22);
  for (bool enabled : {true, false}) {
    int false_evac = 0, dismissed = 0;
    for (int round = 0; round < rounds(); ++round) {
      sim::ScenarioConfig cfg = default_scenario();
      // Colluders outnumber honest witnesses locally; the IM must rely on
      // votes (perception shrunk to force the distributed path).
      cfg.attack = protocol::attack_setting_by_name("V5");
      cfg.nwade.im_perception_radius_m = 30.0;
      cfg.nwade.double_check_verification = enabled;
      cfg.seed = 3000 + static_cast<std::uint64_t>(round);
      const sim::RunSummary s = sim::World(cfg).run();
      if (s.metrics.false_alarm_evacuations > 0) ++false_evac;
      if (s.metrics.false_incident_dismissed) ++dismissed;
    }
    row({enabled ? "on" : "off", std::to_string(false_evac),
         std::to_string(dismissed)},
        22);
  }
}

void ablation_signer() {
  std::printf("\n[A2] signature scheme vs per-block cost (4-way cross, 80 vpm)\n");
  row({"signer", "IM mgmt (ms)", "veh verify (ms)"}, 20);
  const std::pair<sim::SignerKind, const char*> kinds[] = {
      {sim::SignerKind::kHmac, "HMAC-SHA256"},
      {sim::SignerKind::kRsa1024, "RSA-1024"},
      {sim::SignerKind::kRsa2048, "RSA-2048"},
  };
  for (const auto& [kind, name] : kinds) {
    sim::ScenarioConfig cfg = default_scenario();
    cfg.signer = kind;
    cfg.duration_ms = std::min<Duration>(run_duration_ms(), 60'000);
    cfg.seed = 4000;
    const sim::RunSummary s = sim::World(cfg).run();
    row({name, fmt(protocol::Metrics::mean(s.metrics.im_package_us) / 1000.0, 3),
         fmt(protocol::Metrics::mean(s.metrics.vehicle_verify_us) / 1000.0, 3)},
        20);
  }
}

void ablation_threshold() {
  std::printf("\n[A3] global-report safety threshold vs V10 false triggers\n");
  row({"base threshold", "false evac rounds", "true detection rounds"}, 24);
  for (int threshold : {1, 2, 3, 5, 8}) {
    int false_evac = 0, detected = 0;
    for (int round = 0; round < rounds(); ++round) {
      sim::ScenarioConfig cfg = default_scenario();
      cfg.attack = protocol::attack_setting_by_name("V10");
      cfg.nwade.global_report_threshold = threshold;
      cfg.seed = 5000 + static_cast<std::uint64_t>(round);
      const sim::RunSummary s = sim::World(cfg).run();
      if (s.metrics.false_alarm_evacuations > 0) ++false_evac;
      if (s.metrics.deviation_confirmed) ++detected;
    }
    row({std::to_string(threshold), std::to_string(false_evac),
         std::to_string(detected)},
        24);
  }
}

void ablation_chain_depth() {
  std::printf("\n[A4] vehicle chain-cache depth vs IM conflicting-plan detection\n");
  row({"chain depth", "conflict detected", "verify failures"}, 22);
  for (std::size_t depth : {std::size_t{1}, std::size_t{4}, std::size_t{64}}) {
    int detected = 0, failures = 0;
    for (int round = 0; round < rounds(); ++round) {
      sim::ScenarioConfig cfg = default_scenario();
      cfg.attack = protocol::attack_setting_by_name("IM");
      cfg.nwade.chain_depth = depth;
      cfg.seed = 6000 + static_cast<std::uint64_t>(round);
      const sim::RunSummary s = sim::World(cfg).run();
      if (s.metrics.im_conflict_detected) ++detected;
      failures += s.metrics.block_verification_failures;
    }
    row({std::to_string(depth), std::to_string(detected), std::to_string(failures)},
        22);
  }
  std::printf(
      "  (a depth-1 cache cannot compare a new block against earlier plans,\n"
      "   so cross-window conflicts slip through block verification)\n");
}

void ablation_scheduler() {
  std::printf("\n[A5] reservation AIM vs fixed-cycle traffic lights (mean delay)\n");
  row({"intersection", "AIM delay (s)", "lights delay (s)", "speedup"}, 20);
  for (traffic::IntersectionKind kind : traffic::kAllIntersectionKinds) {
    traffic::IntersectionConfig icfg;
    icfg.kind = kind;
    const auto ix = traffic::Intersection::build(icfg);
    traffic::ArrivalGenerator gen(ix, 80, Rng(8));
    const auto arrivals = gen.generate(5 * 60 * 1000);
    aim::ReservationScheduler aim_sched(ix);
    aim::TrafficLightScheduler lights(ix);
    double aim_total = 0, lights_total = 0;
    std::uint64_t vid = 1;
    for (const auto& a : arrivals) {
      const VehicleId id{vid++};
      aim_total += ticks_to_seconds(
          aim_sched.schedule(id, a.route_id, a.traits, a.time, 20.0).core_exit -
          a.time);
      lights_total += ticks_to_seconds(
          lights.schedule(id, a.route_id, a.traits, a.time, 20.0).core_exit -
          a.time);
    }
    const double n = static_cast<double>(arrivals.size());
    row({intersection_name(kind), fmt(aim_total / n, 1), fmt(lights_total / n, 1),
         fmt(lights_total / std::max(aim_total, 1e-9), 2) + "x"},
        20);
  }
}

}  // namespace

int main() {
  banner("Ablations: NWADE design choices",
         "DESIGN.md section 4 — why each mechanism exists");
  ablation_double_check();
  ablation_signer();
  ablation_threshold();
  ablation_chain_depth();
  ablation_scheduler();
  return 0;
}
