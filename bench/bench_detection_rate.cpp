// Fig. 4 — Detection Rate under Different Vehicle Densities.
//
// Sweeps density 20..120 veh/min on the 4-way cross and measures, per attack
// setting, how often the real plan violation is detected and confirmed
// (evacuation alert from a benign IM, or global/self-evacuation consensus
// when the IM is compromised).
#include "support.h"

using namespace nwade;
using namespace nwade::bench;

int main() {
  banner("Fig. 4: Detection Rate under Different Vehicle Densities",
         "NWADE Fig. 4 — deviation detection rate, 4-way cross, 20-120 veh/min");

  const std::vector<double> densities = {20, 40, 60, 80, 100, 120};
  const std::vector<std::string> settings = {"V1", "V3", "V10", "IM_V1", "IM_V3",
                                             "IM_V10"};

  std::vector<std::string> header = {"Setting"};
  for (double d : densities) header.push_back(fmt(d, 0) + " vpm");
  row(header, 12);

  for (const std::string& name : settings) {
    std::vector<std::string> cells = {name};
    for (double density : densities) {
      int detected = 0, applicable = 0;
      for (int round = 0; round < rounds(); ++round) {
        sim::ScenarioConfig cfg = default_scenario();
        cfg.attack = protocol::attack_setting_by_name(name);
        // Isolate the violation-detection question: the colluding IM
        // stonewalls reports (kSilence). Its own conflicting-plans attack is
        // measured separately (Fig. 7 and the ImAttack tests).
        cfg.im_attack_mode = protocol::ImAttackMode::kSilence;
        cfg.vehicles_per_minute = density;
        cfg.seed = 7000 + static_cast<std::uint64_t>(round) * 131 +
                   static_cast<std::uint64_t>(density);
        sim::World world(cfg);
        const sim::RunSummary s = world.run();
        if (!s.metrics.violation_start) continue;  // attack never materialized
        ++applicable;
        if (s.metrics.deviation_confirmed) ++detected;
      }
      cells.push_back(applicable > 0
                          ? pct(static_cast<double>(detected) / applicable)
                          : std::string("n/a"));
    }
    row(cells, 12);
  }
  std::printf(
      "\npaper shape: 100%% detection with a benign IM at every density;\n"
      ">= 80%% when the IM colludes with the attackers (IM_V* settings).\n");
  return 0;
}
