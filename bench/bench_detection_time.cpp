// Fig. 5 — Detection Time.
//
// Measures, at a 4-way cross across densities, the simulated time NWADE needs
// to handle the two report kinds the paper plots:
//   * plan-deviation reports: first benign incident report -> confirmation
//     (the protocol latency the paper's ~360 ms bound refers to), plus the
//     total time from the physical violation for context;
//   * wrong-travel-plan reports (Type B lies): injection -> peer refutation.
#include "support.h"

using namespace nwade;
using namespace nwade::bench;

int main() {
  banner("Fig. 5: Detection Time",
         "NWADE Fig. 5 — deviation-report and wrong-plan-report handling time");

  const std::vector<double> densities = {20, 40, 60, 80, 100, 120};
  row({"Density", "deviation rpt->confirm", "violation->confirm", "wrong-plan refute"},
      24);

  for (double density : densities) {
    std::vector<double> report_to_confirm, violation_to_confirm, type_b_detect;
    for (int round = 0; round < rounds(); ++round) {
      {
        sim::ScenarioConfig cfg = default_scenario();
        cfg.attack = protocol::attack_setting_by_name("V1");
        cfg.vehicles_per_minute = density;
        cfg.seed = 9100 + static_cast<std::uint64_t>(round) * 17 +
                   static_cast<std::uint64_t>(density);
        const sim::RunSummary s = sim::World(cfg).run();
        if (s.metrics.first_true_incident && s.metrics.deviation_confirmed) {
          report_to_confirm.push_back(static_cast<double>(
              *s.metrics.deviation_confirmed - *s.metrics.first_true_incident));
        }
        if (const auto dt = s.metrics.deviation_detection_time()) {
          violation_to_confirm.push_back(static_cast<double>(*dt));
        }
      }
      {
        sim::ScenarioConfig cfg = default_scenario();
        cfg.attack = protocol::attack_setting_by_name("V2");
        cfg.false_report_kind = protocol::FalseReportKind::kWrongPlans;
        cfg.vehicles_per_minute = density;
        cfg.seed = 9300 + static_cast<std::uint64_t>(round) * 23 +
                   static_cast<std::uint64_t>(density);
        const sim::RunSummary s = sim::World(cfg).run();
        if (const auto dt = s.metrics.false_global_detection_time()) {
          type_b_detect.push_back(static_cast<double>(*dt));
        }
      }
    }
    row({fmt(density, 0) + " vpm", fmt(mean(report_to_confirm), 0) + " ms",
         fmt(mean(violation_to_confirm), 0) + " ms",
         fmt(mean(type_b_detect), 0) + " ms"},
        24);
  }
  std::printf(
      "\npaper shape: both report kinds are handled in well under a second\n"
      "(paper: < 360 ms at 50 mph ~ 8 m displacement); the physical\n"
      "violation->confirmation column adds the time the deviation needs to\n"
      "exceed the watcher tolerance.\n");
  return 0;
}
