// Eq. (2) and Eq. (3) — analytic probability curves.
//
// Regenerates the paper's closed-form analyses: the attack-identification
// probability P_d as the number of compromised vehicles k grows (Eq. 2), and
// the self-evacuation probability P_e (Eq. 3) including the worked example
// (p_v * p_loc = 10%, p_im = 0.1%, k = 11 -> P_e ~ 0.1%).
#include <cstdio>

#include "nwade/analysis.h"
#include "support.h"

using namespace nwade;
using namespace nwade::bench;

int main() {
  banner("Eq. (2)/(3): analytic detection and self-evacuation probabilities",
         "NWADE Section IV-B equations and the Section IV-B4 worked example");

  std::printf("\nEq. (2): P_d = 1 / e^(omega * k * p_v^k), omega = 4\n");
  row({"k", "p_v=0.1", "p_v=0.3", "p_v=0.5"}, 12);
  for (int k = 0; k <= 12; ++k) {
    row({std::to_string(k), fmt(protocol::detection_probability(k, 0.1, 4.0), 4),
         fmt(protocol::detection_probability(k, 0.3, 4.0), 4),
         fmt(protocol::detection_probability(k, 0.5, 4.0), 4)},
        12);
  }

  std::printf("\nEq. (3): P_e = 1 - (1 - p_im)(1 - (p_v p_loc)^k), p_im = 0.001\n");
  row({"k", "pvl=0.05", "pvl=0.10", "pvl=0.20"}, 12);
  for (int k = 1; k <= 12; ++k) {
    row({std::to_string(k),
         fmt(protocol::self_evacuation_probability(k, 0.05, 0.001), 6),
         fmt(protocol::self_evacuation_probability(k, 0.10, 0.001), 6),
         fmt(protocol::self_evacuation_probability(k, 0.20, 0.001), 6)},
        12);
  }

  const double worked = protocol::self_evacuation_probability(
      protocol::majority_threshold(20), 0.10, 0.001);
  std::printf(
      "\nworked example (Section IV-B4): neighbourhood of 20 -> majority\n"
      "threshold k = %d, P_e = %.4f%% (paper: ~0.1%%)\n",
      protocol::majority_threshold(20), worked * 100.0);
  return 0;
}
