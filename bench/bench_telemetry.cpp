// Micro-costs of the telemetry layer (docs/OBSERVABILITY.md):
//
//   A. registry writes — warmed Counter::inc, Gauge::set, Histogram::observe
//      (the always-on price every instrumented site pays),
//   B. tracer records — Tracer::instant and Tracer::complete with an enabled
//      tracer (the price of a traced run),
//   C. the disabled path — the `tracing_active() && tracer.enabled()` guard
//      every span site evaluates when tracing is off, against an empty-loop
//      baseline. This is the number the "tracing off is free" claim rests
//      on, so --smoke gates the delta at <= 1 ns/op in optimized,
//      unsanitized builds,
//   D. streaming overhead — the same attack scenario stepped bare and with a
//      TelemetryStreamer emitting nwade-stream-v1 frames to an in-memory
//      ring at a 1 s cadence, reported as total overhead and ns per frame.
//
// Emits BENCH_telemetry.json in the nwade-bench-v1 envelope (support.h),
// with per-op nanosecond costs as extra top-level fields. `--smoke` shrinks
// the iteration counts and validates the JSON round-trip; the perf+obs
// labeled ctest entry runs that mode.
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "sim/world.h"
#include "support.h"
#include "svc/sink.h"
#include "svc/streamer.h"
#include "util/telemetry.h"
#include "util/trace.h"
#include "util/wall_clock.h"

namespace {

using namespace nwade;

struct Options {
  bool smoke{false};
};

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

#if defined(NDEBUG)
constexpr bool kOptimized = true;
#else
constexpr bool kOptimized = false;
#endif

double ns_per_op(const bench::TimingStats& t, std::int64_t iters) {
  return iters > 0 ? t.median_ms * 1e6 / static_cast<double>(iters) : 0;
}

int run(const Options& opt) {
  const auto t_start = std::chrono::steady_clock::now();

  const std::int64_t hot_iters = opt.smoke ? 2'000'000 : 16'000'000;
  const std::int64_t event_iters = opt.smoke ? 50'000 : 500'000;
  const int warmup = 1;
  const int reps = opt.smoke ? 3 : 7;

  // --- phase A: registry writes ----------------------------------------------
  util::telemetry::Registry registry;
  util::telemetry::Counter counter = registry.counter("bench.counter");
  util::telemetry::Gauge gauge = registry.gauge("bench.gauge");
  util::telemetry::Histogram histogram = registry.histogram(
      "bench.hist_ms", util::telemetry::HistogramBuckets::exponential_ms(4096));

  std::printf("phase A: registry writes, %lld iterations\n",
              static_cast<long long>(hot_iters));
  const auto counter_inc = bench::timed_median(warmup, reps, [&] {
    for (std::int64_t i = 0; i < hot_iters; ++i) counter.inc();
  });
  const auto gauge_set = bench::timed_median(warmup, reps, [&] {
    for (std::int64_t i = 0; i < hot_iters; ++i) gauge.set(i);
  });
  const auto hist_observe = bench::timed_median(warmup, reps, [&] {
    for (std::int64_t i = 0; i < hot_iters; ++i) histogram.observe(i & 1023);
  });

  // --- phase B: enabled tracer records ---------------------------------------
  std::printf("phase B: enabled tracer records, %lld events\n",
              static_cast<long long>(event_iters));
  util::trace::Tracer tracer;
  tracer.set_enabled(true);
  const auto span_complete = bench::timed_median(warmup, reps, [&] {
    for (std::int64_t i = 0; i < event_iters; ++i) {
      tracer.complete("bench", "span", i, i + 1, -1.0, "items", i);
    }
    tracer.take();  // drain so reps do not compound the event buffer
  });
  const auto instant = bench::timed_median(warmup, reps, [&] {
    for (std::int64_t i = 0; i < event_iters; ++i) {
      tracer.instant("bench", "mark", i, "value", i);
    }
    tracer.take();
  });
  tracer.set_enabled(false);

  // --- phase C: the disabled guard vs an empty loop --------------------------
  // The guard below is the exact shape every instrumented call site uses when
  // tracing is off: one relaxed load of the process-wide active count, short-
  // circuiting before the tracer is even touched. The asm barrier keeps both
  // loops honest without adding memory traffic of its own.
  std::printf("phase C: disabled guard vs no-op baseline\n");
  const auto baseline = bench::timed_median(warmup, reps, [&] {
    for (std::int64_t i = 0; i < hot_iters; ++i) {
      asm volatile("" ::: "memory");
    }
  });
  const auto disabled_guard = bench::timed_median(warmup, reps, [&] {
    for (std::int64_t i = 0; i < hot_iters; ++i) {
      if (util::trace::tracing_active() && tracer.enabled()) {
        tracer.instant("bench", "never", i);
      }
      asm volatile("" ::: "memory");
    }
  });

  // --- phase D: streaming overhead -------------------------------------------
  // The price of watching live: one attack scenario stepped to completion
  // bare, then with a TelemetryStreamer (metrics deltas, health rows, trace
  // frames, heartbeats) feeding an in-memory ring at a 1 s cadence. The
  // fake wall clock keeps the streamed bytes deterministic so reps measure
  // identical work.
  const Duration stream_duration_ms = opt.smoke ? 10'000 : 60'000;
  std::printf("phase D: streaming overhead, %lld ms scenario\n",
              static_cast<long long>(stream_duration_ms));
  const auto stream_scenario = [&] {
    sim::ScenarioConfig cfg;
    cfg.intersection.kind = traffic::IntersectionKind::kCross4;
    cfg.vehicles_per_minute = 90;
    cfg.duration_ms = stream_duration_ms;
    cfg.seed = 11;
    cfg.attack = protocol::AttackSetting{"V1", 1, false, 1, 0};
    cfg.attack_time = 5'000;
    cfg.trace_enabled = true;
    return cfg;
  };
  const auto world_bare = bench::timed_median(warmup, reps, [&] {
    sim::World world(stream_scenario());
    world.run_until(stream_duration_ms);
  });
  std::uint64_t stream_frames = 0;
  std::uint64_t stream_bytes = 0;
  const auto world_streamed = bench::timed_median(warmup, reps, [&] {
    sim::World world(stream_scenario());
    util::FakeWallClock wall(1);
    svc::StreamerConfig scfg;
    scfg.cadence_ms = 1'000;
    scfg.wall = &wall;
    svc::TelemetryStreamer streamer(scfg);
    svc::RingSink ring(1u << 20);
    streamer.add_sink(&ring);
    streamer.attach(world);
    world.run_until(stream_duration_ms);
    streamer.finish();
    stream_frames = streamer.frames_emitted();
    stream_bytes = ring.joined().size();
  });
  const double stream_overhead_ms = world_streamed.median_ms - world_bare.median_ms;
  const double stream_ns_per_frame =
      stream_frames > 0
          ? stream_overhead_ms * 1e6 / static_cast<double>(stream_frames)
          : 0;

  const double counter_ns = ns_per_op(counter_inc, hot_iters);
  const double gauge_ns = ns_per_op(gauge_set, hot_iters);
  const double hist_ns = ns_per_op(hist_observe, hot_iters);
  const double span_ns = ns_per_op(span_complete, event_iters);
  const double instant_ns = ns_per_op(instant, event_iters);
  const double baseline_ns = ns_per_op(baseline, hot_iters);
  const double guard_ns = ns_per_op(disabled_guard, hot_iters);
  const double disabled_delta_ns = guard_ns - baseline_ns;

  const std::vector<std::string> phases = {
      bench::json_phase("counter_inc", counter_inc),
      bench::json_phase("gauge_set", gauge_set),
      bench::json_phase("histogram_observe", hist_observe),
      bench::json_phase("tracer_complete", span_complete),
      bench::json_phase("tracer_instant", instant),
      bench::json_phase("noop_baseline", baseline),
      bench::json_phase("disabled_guard", disabled_guard),
      bench::json_phase("world_bare", world_bare),
      bench::json_phase("world_streamed", world_streamed),
  };
  const std::vector<std::string> extra = {
      bench::json_field("hot_iterations", static_cast<double>(hot_iters), 0),
      bench::json_field("event_iterations", static_cast<double>(event_iters), 0),
      bench::json_field("counter_inc_ns_per_op", counter_ns, 3),
      bench::json_field("gauge_set_ns_per_op", gauge_ns, 3),
      bench::json_field("histogram_observe_ns_per_op", hist_ns, 3),
      bench::json_field("tracer_complete_ns_per_op", span_ns, 3),
      bench::json_field("tracer_instant_ns_per_op", instant_ns, 3),
      bench::json_field("disabled_guard_delta_ns_per_op", disabled_delta_ns, 3),
      bench::json_field("stream_duration_ms",
                        static_cast<double>(stream_duration_ms), 0),
      bench::json_field("stream_frames", static_cast<double>(stream_frames), 0),
      bench::json_field("stream_bytes", static_cast<double>(stream_bytes), 0),
      bench::json_field("stream_overhead_ms", stream_overhead_ms, 3),
      bench::json_field("stream_ns_per_frame", stream_ns_per_frame, 1),
  };

  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t_start)
                            .count();
  const std::string envelope =
      bench::bench_envelope("telemetry", wall_s, phases, extra);
  if (!bench::json_well_formed(envelope)) {
    std::fprintf(stderr, "FAIL: emitted envelope is not well-formed JSON\n");
    return 1;
  }
  const std::string path =
      opt.smoke ? "BENCH_telemetry.smoke.json" : "BENCH_telemetry.json";
  if (!bench::write_bench_file(path, envelope)) {
    std::fprintf(stderr, "FAIL: could not write %s\n", path.c_str());
    return 1;
  }

  std::printf("counter.inc %.2f ns/op, gauge.set %.2f ns/op, "
              "histogram.observe %.2f ns/op\n",
              counter_ns, gauge_ns, hist_ns);
  std::printf("tracer.complete %.2f ns/op, tracer.instant %.2f ns/op\n",
              span_ns, instant_ns);
  std::printf("disabled guard: %.3f ns/op over a %.3f ns/op baseline "
              "(delta %.3f ns/op)\n",
              guard_ns, baseline_ns, disabled_delta_ns);
  std::printf("streaming: %llu frames (%llu bytes), %.3f ms over a %.3f ms "
              "bare run (%.1f ns/frame)\n",
              static_cast<unsigned long long>(stream_frames),
              static_cast<unsigned long long>(stream_bytes),
              stream_overhead_ms, world_bare.median_ms, stream_ns_per_frame);

  if (opt.smoke) {
    std::string back;
    if (!bench::read_file(path, back) || back != envelope ||
        !bench::json_well_formed(back)) {
      std::fprintf(stderr, "FAIL: %s did not round-trip\n", path.c_str());
      return 1;
    }
    // The "off means free" gate. Sanitizers instrument every atomic load and
    // unoptimized builds do not inline the guard, so only optimized plain
    // builds are held to the 1 ns line.
    if (kOptimized && !kSanitized && disabled_delta_ns > 1.0) {
      std::fprintf(stderr,
                   "FAIL: disabled tracing guard costs %.3f ns/op over the "
                   "no-op baseline (gate: 1.0 ns/op)\n",
                   disabled_delta_ns);
      return 1;
    }
    std::printf("smoke OK: envelope round-trips%s\n",
                kOptimized && !kSanitized
                    ? " and the disabled guard is within the 1 ns gate"
                    : " (guard gate skipped: unoptimized or sanitized build)");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      opt.smoke = true;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke]\n", argv[0]);
      return 2;
    }
  }
  return run(opt);
}
