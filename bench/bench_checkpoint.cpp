// Checkpoint overhead driver (docs/CHECKPOINT.md).
//
// Answers the question a soak operator actually has: what does snapshotting
// cost, absolutely (ms per save/restore, bytes per snapshot at increasing
// world population) and relatively (wall-clock overhead of a run that
// snapshots every 10 simulated seconds versus one that never does)?
//
// Before any timing, it gates the subsystem's contract: save -> restore ->
// save must be byte-identical at every measured point.
//
// Emits BENCH_checkpoint.json in the nwade-bench-v1 envelope (support.h).
// `--smoke` shrinks every dimension and validates the JSON round-trip.
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "sim/checkpoint.h"
#include "sim/world.h"
#include "support.h"

namespace {

using namespace nwade;

struct Options {
  bool smoke{false};
};

sim::ScenarioConfig scenario(double vpm, Duration duration_ms) {
  sim::ScenarioConfig s;
  s.vehicles_per_minute = vpm;
  s.duration_ms = duration_ms;
  s.seed = 1;
  return s;
}

int run(const Options& opt) {
  const auto t_start = std::chrono::steady_clock::now();
  const int warmup = opt.smoke ? 0 : 1;
  const int reps = opt.smoke ? 2 : 9;
  const Duration duration = opt.smoke ? 20'000 : 120'000;
  // Snapshot points at 1/4, 1/2 and 3/4 of the run: population (and thus
  // envelope size) grows over a run, so one midpoint would understate the
  // late-run cost a long soak actually pays.
  const std::vector<double> points = {0.25, 0.5, 0.75};

  std::vector<std::string> phases;
  std::vector<std::string> extra;

  for (const double at : points) {
    sim::World world(scenario(80, duration));
    const Tick t = static_cast<Tick>(static_cast<double>(duration) * at);
    world.run_until((t / 100) * 100);

    // Contract gate before timing anything at this point.
    const Bytes blob = world.checkpoint_save();
    {
      std::string error;
      const auto restored = sim::World::checkpoint_restore(blob, &error);
      if (restored == nullptr || restored->checkpoint_save() != blob) {
        std::fprintf(stderr,
                     "FAIL: save/restore/save not byte-identical at t=%lld"
                     " (%s)\n",
                     static_cast<long long>(world.now()), error.c_str());
        return 1;
      }
    }

    const std::string label = "t" + std::to_string(world.now() / 1000) + "s";
    const auto save_stats = bench::timed_median(warmup, reps, [&] {
      const Bytes b = world.checkpoint_save();
      if (b.empty()) std::abort();
    });
    std::printf("save    @%s: %.3f ms median, %zu bytes\n", label.c_str(),
                save_stats.median_ms, blob.size());
    phases.push_back(bench::json_phase("save_" + label, save_stats));

    const auto restore_stats = bench::timed_median(warmup, reps, [&] {
      const auto w = sim::World::checkpoint_restore(blob);
      if (w == nullptr) std::abort();
    });
    std::printf("restore @%s: %.3f ms median\n", label.c_str(),
                restore_stats.median_ms);
    phases.push_back(bench::json_phase("restore_" + label, restore_stats));
    extra.push_back(bench::json_field("snapshot_bytes_" + label,
                                      static_cast<double>(blob.size()), 0));
  }

  // Whole-run relative overhead: plain run vs the soak cadence (a snapshot
  // every 10 simulated seconds, verified restorable is NOT included — that
  // probe is the soak driver's paranoia, not the checkpoint's price).
  const Duration every = 10'000;
  const auto plain_stats = bench::timed_median(warmup, reps, [&] {
    sim::World world(scenario(80, duration));
    world.run();
  });
  std::printf("run %llds plain: %.2f ms median\n",
              static_cast<long long>(duration / 1000), plain_stats.median_ms);
  phases.push_back(bench::json_phase("run_plain", plain_stats));

  const auto snapshotted_stats = bench::timed_median(warmup, reps, [&] {
    sim::World world(scenario(80, duration));
    while (world.now() < duration) {
      world.run_until(std::min<Tick>(world.now() + every, duration));
      if (world.now() < duration) {
        const Bytes b = world.checkpoint_save();
        if (b.empty()) std::abort();
      }
    }
  });
  std::printf("run %llds + snapshot/10s: %.2f ms median\n",
              static_cast<long long>(duration / 1000),
              snapshotted_stats.median_ms);
  phases.push_back(bench::json_phase("run_snapshot_10s", snapshotted_stats));

  const double overhead =
      plain_stats.median_ms > 0
          ? snapshotted_stats.median_ms / plain_stats.median_ms
          : 0;
  phases.push_back(bench::json_speedup("snapshot_10s_vs_plain", overhead));
  std::printf("snapshot-every-10s overhead: %.3fx of plain run\n", overhead);

  extra.push_back(bench::json_field("snapshot_interval_ms",
                                    static_cast<double>(every), 0));
  extra.push_back(bench::json_field("run_duration_ms",
                                    static_cast<double>(duration), 0));

  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t_start)
                            .count();
  const std::string envelope =
      bench::bench_envelope("checkpoint", wall_s, phases, extra);
  if (!bench::json_well_formed(envelope)) {
    std::fprintf(stderr, "FAIL: emitted envelope is not well-formed JSON\n");
    return 1;
  }
  const std::string path =
      opt.smoke ? "BENCH_checkpoint.smoke.json" : "BENCH_checkpoint.json";
  if (!bench::write_bench_file(path, envelope)) {
    std::fprintf(stderr, "FAIL: could not write %s\n", path.c_str());
    return 1;
  }

  if (opt.smoke) {
    std::string back;
    if (!bench::read_file(path, back) || back != envelope ||
        !bench::json_well_formed(back)) {
      std::fprintf(stderr, "FAIL: %s did not round-trip\n", path.c_str());
      return 1;
    }
    std::printf("smoke OK: round-trip contract holds and envelope emits\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      opt.smoke = true;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke]\n", argv[0]);
      return 2;
    }
  }
  return run(opt);
}
