// Fig. 8 — Traffic Throughput.
//
// Compares intersection throughput (vehicles leaving per minute) with and
// without the NWADE mechanism, across all five intersection types and
// densities, with no attack in progress. The paper's claim: adding NWADE
// leaves throughput essentially unchanged.
#include "support.h"

using namespace nwade;
using namespace nwade::bench;

int main() {
  banner("Fig. 8: Traffic Throughput with vs without NWADE",
         "NWADE Fig. 8 — 5 intersections x densities, security on/off");

  row({"Intersection (density)", "no NWADE (vpm)", "NWADE (vpm)", "overhead"}, 26);

  const std::vector<double> densities = {40, 80, 120};
  for (traffic::IntersectionKind kind : traffic::kAllIntersectionKinds) {
    for (double density : densities) {
      std::vector<double> with, without;
      for (int round = 0; round < rounds(); ++round) {
        sim::ScenarioConfig cfg = default_scenario();
        cfg.intersection.kind = kind;
        cfg.vehicles_per_minute = density;
        cfg.seed = 500 + static_cast<std::uint64_t>(round);

        cfg.nwade_enabled = true;
        with.push_back(sim::World(cfg).run().throughput_vpm);
        cfg.nwade_enabled = false;
        without.push_back(sim::World(cfg).run().throughput_vpm);
      }
      const double on = mean(with), off = mean(without);
      const double overhead = off > 0 ? (off - on) / off : 0.0;
      char label[64];
      std::snprintf(label, sizeof(label), "%s (%.0f)", intersection_name(kind),
                    density);
      row({label, fmt(off, 1), fmt(on, 1), pct(overhead)}, 26);
    }
  }
  std::printf(
      "\npaper shape: throughput with NWADE matches the unprotected system\n"
      "at every intersection type and density (near-zero overhead), because\n"
      "verification runs off the driving path and plans are unchanged.\n");
  return 0;
}
