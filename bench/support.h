// Shared plumbing for the experiment harnesses: scenario runners, repetition
// control, and plain-text table output mirroring the paper's tables/figures.
#pragma once

#include <sys/resource.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "sim/world.h"
#include "util/alloc_stats.h"

namespace nwade::bench {

/// Number of repetitions per data point. The paper uses 10 rounds; set
/// NWADE_BENCH_ROUNDS to trade precision for wall-clock time.
inline int rounds() {
  if (const char* env = std::getenv("NWADE_BENCH_ROUNDS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 5;
}

/// Simulated duration per run (ms); override with NWADE_BENCH_DURATION_MS.
inline Duration run_duration_ms() {
  if (const char* env = std::getenv("NWADE_BENCH_DURATION_MS")) {
    const long n = std::atol(env);
    if (n > 0) return n;
  }
  return 100'000;
}

inline double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  double total = 0;
  for (double x : xs) total += x;
  return total / static_cast<double>(xs.size());
}

inline double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0;
  const double m = mean(xs);
  double ss = 0;
  for (double x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

/// Base scenario shared by the experiments (paper Section VI-A defaults).
inline sim::ScenarioConfig default_scenario() {
  sim::ScenarioConfig cfg;
  cfg.intersection.kind = traffic::IntersectionKind::kCross4;
  cfg.vehicles_per_minute = 80;  // paper default
  cfg.duration_ms = run_duration_ms();
  cfg.attack_time = 40'000;
  return cfg;
}

/// Prints a header banner for one experiment.
inline void banner(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("rounds per point: %d, run length: %lld ms\n", rounds(),
              static_cast<long long>(run_duration_ms()));
  std::printf("================================================================\n");
}

/// Simple fixed-width row printer.
inline void row(const std::vector<std::string>& cells, int width = 16) {
  for (const auto& c : cells) std::printf("%-*s", width, c.c_str());
  std::printf("\n");
}

inline std::string fmt(double v, int precision = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string pct(double fraction) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.0f%%", fraction * 100.0);
  return buf;
}

// --- minimal JSON emission (machine-readable curves) ------------------------

inline std::string json_field(const std::string& key, double value,
                              int precision = 3) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "\"%s\": %.*f", key.c_str(), precision,
                value);
  return buf;
}

inline std::string json_field(const std::string& key, const std::string& value) {
  return "\"" + key + "\": \"" + value + "\"";
}

/// {"a": 1, "b": 2} from already-rendered fields.
inline std::string json_object(const std::vector<std::string>& fields) {
  std::string out = "{";
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out += ", ";
    out += fields[i];
  }
  out += "}";
  return out;
}

/// [obj, obj, ...] from already-rendered objects, one per line.
inline std::string json_array(const std::vector<std::string>& items,
                              const std::string& indent = "    ") {
  std::string out = "[\n";
  for (std::size_t i = 0; i < items.size(); ++i) {
    out += indent + items[i];
    if (i + 1 < items.size()) out += ",";
    out += "\n";
  }
  out += indent.substr(0, indent.size() > 2 ? indent.size() - 2 : 0) + "]";
  return out;
}

// --- perf-regression harness (BENCH_*.json, schema nwade-bench-v1) ----------
//
// Every perf driver emits the same envelope so a CI diff tool can compare
// runs without per-bench parsers:
//
//   {
//     "schema": "nwade-bench-v1",
//     "bench": "<driver name>",
//     "git_sha": "<12-hex or 'unknown'>",
//     "hardware_concurrency": <std::thread::hardware_concurrency()>,
//     "wall_clock_s": <total driver runtime>,
//     "peak_rss_kb": <getrusage ru_maxrss>,
//     "phases": [
//       {"name": "...", "reps": N, "warmup": W,
//        "median_ms": ..., "min_ms": ..., "max_ms": ...},
//       ...
//     ]
//   }
//
// Phases measured in a -DNWADE_COUNT_ALLOCS=ON build may additionally carry
// an "allocs_per_op" field (heap allocations per operation, from
// util/alloc_stats.h); builds without counting omit it rather than reporting
// a misleading zero. Phases that report a derived ratio (e.g. before/after
// speedup) carry a "speedup_x" field instead of the timing triple.
// hardware_concurrency is
// recorded so thread-scaling numbers (bench_campaign's pool sweep) can be
// interpreted on the machine that produced them — a 1-core container
// cannot show wall-clock speedup no matter how parallel the code is.
// Drivers may append extra top-level context (pool sizes, cell counts) via
// bench_envelope's `extra_fields`.

/// Warmup + median-of-N timing for one phase. Medians resist the one-off
/// scheduling hiccups that poison means on shared machines.
struct TimingStats {
  double median_ms{0};
  double min_ms{0};
  double max_ms{0};
  int reps{0};
  int warmup{0};
};

inline TimingStats timed_median(int warmup, int reps,
                                const std::function<void()>& fn) {
  using clock = std::chrono::steady_clock;
  for (int i = 0; i < warmup; ++i) fn();
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    const auto t0 = clock::now();
    fn();
    const auto t1 = clock::now();
    samples.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  std::sort(samples.begin(), samples.end());
  TimingStats s;
  s.reps = reps;
  s.warmup = warmup;
  s.min_ms = samples.front();
  s.max_ms = samples.back();
  const std::size_t n = samples.size();
  s.median_ms = (n % 2) ? samples[n / 2]
                        : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
  return s;
}

/// Peak resident set size of this process, in kB (Linux ru_maxrss unit).
inline long peak_rss_kb() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return usage.ru_maxrss;
}

/// Short git sha baked in at configure time (bench/CMakeLists.txt), or
/// "unknown" when the build tree predates the definition.
inline std::string git_sha() {
#ifdef NWADE_GIT_SHA
  return NWADE_GIT_SHA;
#else
  return "unknown";
#endif
}

/// One rendered phase object for the envelope's "phases" array.
inline std::string json_phase(const std::string& name, const TimingStats& t) {
  return json_object({json_field("name", name),
                      json_field("reps", static_cast<double>(t.reps), 0),
                      json_field("warmup", static_cast<double>(t.warmup), 0),
                      json_field("median_ms", t.median_ms, 4),
                      json_field("min_ms", t.min_ms, 4),
                      json_field("max_ms", t.max_ms, 4)});
}

/// Heap allocations per operation across `ops` executions of `fn`, from the
/// calling thread's counter. Returns -1 when the build has no counting
/// operator new (option NWADE_COUNT_ALLOCS off) — callers emit the column
/// only for non-negative values.
inline double allocs_per_op(int ops, const std::function<void()>& fn) {
  if (!util::alloc_counting_enabled() || ops <= 0) return -1;
  const std::uint64_t before = util::thread_alloc_count();
  for (int i = 0; i < ops; ++i) fn();
  return static_cast<double>(util::thread_alloc_count() - before) /
         static_cast<double>(ops);
}

/// json_phase variant carrying the allocs_per_op column (negative = not
/// measured, column omitted).
inline std::string json_phase(const std::string& name, const TimingStats& t,
                              double allocs_per_op) {
  std::vector<std::string> fields = {
      json_field("name", name),
      json_field("reps", static_cast<double>(t.reps), 0),
      json_field("warmup", static_cast<double>(t.warmup), 0),
      json_field("median_ms", t.median_ms, 4),
      json_field("min_ms", t.min_ms, 4),
      json_field("max_ms", t.max_ms, 4)};
  if (allocs_per_op >= 0) {
    fields.push_back(json_field("allocs_per_op", allocs_per_op, 2));
  }
  return json_object(fields);
}

/// A derived before/after ratio phase (no timing triple of its own).
inline std::string json_speedup(const std::string& name, double speedup_x) {
  return json_object(
      {json_field("name", name), json_field("speedup_x", speedup_x, 3)});
}

/// Assembles the full nwade-bench-v1 envelope from rendered phase objects.
/// `extra_fields` are already-rendered top-level fields (json_field output)
/// spliced in before "phases" — pool sizes, cell counts, and similar
/// run-context a comparison tool needs alongside the timings.
inline std::string bench_envelope(
    const std::string& bench_name, double wall_clock_s,
    const std::vector<std::string>& phases,
    const std::vector<std::string>& extra_fields = {}) {
  std::string out = "{\n";
  out += "  " + json_field("schema", std::string("nwade-bench-v1")) + ",\n";
  out += "  " + json_field("bench", bench_name) + ",\n";
  out += "  " + json_field("git_sha", git_sha()) + ",\n";
  out += "  " +
         json_field("hardware_concurrency",
                    static_cast<double>(std::thread::hardware_concurrency()),
                    0) +
         ",\n";
  out += "  " + json_field("wall_clock_s", wall_clock_s, 3) + ",\n";
  out += "  " + json_field("peak_rss_kb",
                           static_cast<double>(peak_rss_kb()), 0) + ",\n";
  for (const std::string& field : extra_fields) out += "  " + field + ",\n";
  out += "  \"phases\": " + json_array(phases, "    ") + "\n";
  out += "}\n";
  return out;
}

/// Structural JSON check: balanced {}/[] outside strings, no trailing
/// garbage. Enough to catch emitter bugs without dragging in a parser.
inline bool json_well_formed(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  bool seen_root = false;
  for (const char c : text) {
    if (in_string) {
      if (escaped) escaped = false;
      else if (c == '\\') escaped = true;
      else if (c == '"') in_string = false;
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': case '[':
        if (seen_root && stack.empty()) return false;  // trailing garbage
        stack.push_back(c);
        seen_root = true;
        break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return seen_root && stack.empty() && !in_string;
}

/// Probes an output path for writability BEFORE a long run: a typo'd
/// directory or read-only target should fail in milliseconds, not after
/// minutes of benchmarking. Append mode probes without clobbering whatever
/// the file currently holds; a path the probe had to create is removed again
/// so a failed later stage leaves no empty stub behind. Same contract as the
/// campaign CLI's preflight. Prints the failure reason and returns false on
/// an unwritable path.
inline bool preflight_output_path(const std::string& path) {
  if (path.empty()) return true;
  std::FILE* probe_existing = std::fopen(path.c_str(), "rb");
  const bool existed = probe_existing != nullptr;
  if (probe_existing) std::fclose(probe_existing);
  std::FILE* probe = std::fopen(path.c_str(), "ab");
  if (!probe) {
    std::fprintf(stderr, "cannot write output path %s: %s\n", path.c_str(),
                 std::strerror(errno));
    return false;
  }
  std::fclose(probe);
  if (!existed) std::remove(path.c_str());
  return true;
}

/// Writes the envelope and echoes the path; returns false on I/O failure.
inline bool write_bench_file(const std::string& path,
                             const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << content;
  out.close();
  if (!out) return false;
  std::printf("wrote %s (%zu bytes)\n", path.c_str(), content.size());
  return true;
}

/// Reads a file back in full (used by --smoke to re-validate what it wrote).
inline bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

}  // namespace nwade::bench
