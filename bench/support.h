// Shared plumbing for the experiment harnesses: scenario runners, repetition
// control, and plain-text table output mirroring the paper's tables/figures.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sim/world.h"

namespace nwade::bench {

/// Number of repetitions per data point. The paper uses 10 rounds; set
/// NWADE_BENCH_ROUNDS to trade precision for wall-clock time.
inline int rounds() {
  if (const char* env = std::getenv("NWADE_BENCH_ROUNDS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 5;
}

/// Simulated duration per run (ms); override with NWADE_BENCH_DURATION_MS.
inline Duration run_duration_ms() {
  if (const char* env = std::getenv("NWADE_BENCH_DURATION_MS")) {
    const long n = std::atol(env);
    if (n > 0) return n;
  }
  return 100'000;
}

inline double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  double total = 0;
  for (double x : xs) total += x;
  return total / static_cast<double>(xs.size());
}

inline double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0;
  const double m = mean(xs);
  double ss = 0;
  for (double x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

/// Base scenario shared by the experiments (paper Section VI-A defaults).
inline sim::ScenarioConfig default_scenario() {
  sim::ScenarioConfig cfg;
  cfg.intersection.kind = traffic::IntersectionKind::kCross4;
  cfg.vehicles_per_minute = 80;  // paper default
  cfg.duration_ms = run_duration_ms();
  cfg.attack_time = 40'000;
  return cfg;
}

/// Prints a header banner for one experiment.
inline void banner(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("rounds per point: %d, run length: %lld ms\n", rounds(),
              static_cast<long long>(run_duration_ms()));
  std::printf("================================================================\n");
}

/// Simple fixed-width row printer.
inline void row(const std::vector<std::string>& cells, int width = 16) {
  for (const auto& c : cells) std::printf("%-*s", width, c.c_str());
  std::printf("\n");
}

inline std::string fmt(double v, int precision = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string pct(double fraction) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.0f%%", fraction * 100.0);
  return buf;
}

// --- minimal JSON emission (machine-readable curves) ------------------------

inline std::string json_field(const std::string& key, double value,
                              int precision = 3) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "\"%s\": %.*f", key.c_str(), precision,
                value);
  return buf;
}

inline std::string json_field(const std::string& key, const std::string& value) {
  return "\"" + key + "\": \"" + value + "\"";
}

/// {"a": 1, "b": 2} from already-rendered fields.
inline std::string json_object(const std::vector<std::string>& fields) {
  std::string out = "{";
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out += ", ";
    out += fields[i];
  }
  out += "}";
  return out;
}

/// [obj, obj, ...] from already-rendered objects, one per line.
inline std::string json_array(const std::vector<std::string>& items,
                              const std::string& indent = "    ") {
  std::string out = "[\n";
  for (std::size_t i = 0; i < items.size(); ++i) {
    out += indent + items[i];
    if (i + 1 < items.size()) out += ",";
    out += "\n";
  }
  out += indent.substr(0, indent.size() > 2 ? indent.size() - 2 : 0) + "]";
  return out;
}

}  // namespace nwade::bench
