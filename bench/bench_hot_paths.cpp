// Perf-regression driver for the two hot paths this repo optimized:
//
//   A. schedule() under dense traffic (120 veh/min, 4-way cross): the
//      linear reservation sweep vs the indexed IntervalTable path
//      (SchedulerConfig::linear_reference_scan toggles the old scan, which
//      is kept in-tree exactly so this comparison stays honest).
//   B. block-verification fan-out across many receivers: the pre-PR shape
//      (every receiver deserializes its own wire copy, rebuilds the Merkle
//      tree, and pays a full RSA modexp — emulated by disabling the
//      process-wide SigVerifyCache) vs the shared-block fanout_verify path
//      (one Block object, cached payload/tree, one modexp for the fleet).
//   C. the telemetry tax: the same seeded World run with the event tracer
//      off vs on. The envelope carries the measured overhead as a top-level
//      telemetry_overhead_pct field (docs/OBSERVABILITY.md quotes it).
//
// Emits BENCH_hot_paths.json in the nwade-bench-v1 envelope (support.h).
// `--smoke` shrinks every dimension and validates the JSON round-trip; the
// perf-labeled ctest entry runs that mode so CI catches emitter rot without
// paying for real timings.
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "aim/scheduler.h"
#include "chain/block.h"
#include "chain/fanout.h"
#include "crypto/signer.h"
#include "crypto/verify_cache.h"
#include "support.h"
#include "traffic/arrivals.h"
#include "util/rng.h"
#include "util/worker_pool.h"

namespace {

using namespace nwade;

struct Options {
  bool smoke{false};
};

// --- phase A: dense scheduling ----------------------------------------------

bench::TimingStats time_schedule_dense(const traffic::Intersection& ix,
                                       const std::vector<traffic::Arrival>& arrivals,
                                       bool linear, int warmup, int reps) {
  return bench::timed_median(warmup, reps, [&] {
    aim::SchedulerConfig cfg;
    cfg.linear_reference_scan = linear;
    aim::ReservationScheduler sched(ix, cfg);
    std::uint64_t vid = 1;
    for (const auto& a : arrivals) {
      auto plan = sched.schedule(VehicleId{vid++}, a.route_id, a.traits, a.time,
                                 a.initial_speed_mps);
      (void)plan;
    }
  });
}

// --- phase B: block-verification fan-out ------------------------------------

chain::Block make_block(const crypto::Signer& signer, int n_plans) {
  std::vector<aim::TravelPlan> plans;
  for (int i = 0; i < n_plans; ++i) {
    aim::TravelPlan p;
    p.vehicle = VehicleId{static_cast<std::uint64_t>(i) + 1};
    p.route_id = i % 12;
    p.issued_at = 1'000;
    p.core_entry = 5'000 + i * 100;
    p.core_exit = 8'000 + i * 100;
    p.segments = {aim::PlanSegment{1'000, 0.0, 12.0},
                  aim::PlanSegment{5'000, 80.0, 15.0}};
    plans.push_back(std::move(p));
  }
  return chain::Block::package(1, crypto::Digest{}, 1'000, std::move(plans),
                               signer);
}

/// Pre-PR receiver shape: each vehicle holds its own wire copy of the block,
/// so every verification deserializes, rebuilds the payload and Merkle tree,
/// and runs an uncached modexp. Capacity 0 turns the SigVerifyCache into a
/// pass-through, reproducing the seed cost model through today's API.
bench::TimingStats time_fanout_uncached(const Bytes& wire,
                                        const crypto::Verifier& verifier,
                                        int receivers, int warmup, int reps) {
  auto& cache = crypto::SigVerifyCache::instance();
  const std::size_t saved_capacity = cache.capacity();
  cache.set_capacity(0);
  auto stats = bench::timed_median(warmup, reps, [&] {
    for (int r = 0; r < receivers; ++r) {
      auto copy = chain::Block::deserialize(wire);
      const bool ok = copy && copy->verify_signature(verifier) &&
                      copy->verify_merkle();
      if (!ok) std::abort();  // a bench that verifies nothing times nothing
    }
  });
  cache.set_capacity(saved_capacity);
  return stats;
}

/// Post-PR shape: one shared Block, fanout_verify over a worker pool. The
/// cache is reset (entries AND stats) every rep so each measurement pays
/// the one real modexp the fleet shares — not a free ride on the previous
/// rep — and the hit/miss counters describe only the rep being timed.
bench::TimingStats time_fanout_cached(const chain::Block& block,
                                      const crypto::Verifier& verifier,
                                      int receivers, int pool_threads,
                                      int warmup, int reps) {
  std::vector<const crypto::Verifier*> verifiers(
      static_cast<std::size_t>(receivers), &verifier);
  util::WorkerPool pool(pool_threads);
  auto& cache = crypto::SigVerifyCache::instance();
  return bench::timed_median(warmup, reps, [&] {
    cache.reset();
    const auto results = chain::fanout_verify(block, verifiers, pool);
    for (const auto ok : results) {
      if (!ok) std::abort();
    }
  });
}

// --- phase C: telemetry overhead on a whole-World run ------------------------

bench::TimingStats time_world_run(Duration duration_ms, bool trace, int warmup,
                                  int reps) {
  return bench::timed_median(warmup, reps, [&] {
    sim::ScenarioConfig cfg;
    cfg.intersection.kind = traffic::IntersectionKind::kCross4;
    cfg.vehicles_per_minute = 80;
    cfg.duration_ms = duration_ms;
    cfg.seed = 11;
    cfg.trace_enabled = trace;
    sim::World world(std::move(cfg));
    const auto summary = world.run();
    if (summary.metrics.vehicles_spawned == 0) std::abort();
  });
}

int run(const Options& opt) {
  const auto t_start = std::chrono::steady_clock::now();

  // Dimensions: smoke keeps ctest fast; full mode measures the acceptance
  // regime (120 veh/min dense cross, 64 receivers, RSA-2048).
  const Duration sched_window_ms = opt.smoke ? 60'000 : 10 * 60'000;
  const int rsa_bits = opt.smoke ? 512 : 2048;
  const int receivers = opt.smoke ? 8 : 64;
  const int plans_per_block = opt.smoke ? 4 : 32;
  const int warmup = opt.smoke ? 0 : 1;
  const int reps = opt.smoke ? 1 : 7;

  traffic::IntersectionConfig ix_cfg;
  ix_cfg.kind = traffic::IntersectionKind::kCross4;
  const auto ix = traffic::Intersection::build(ix_cfg);
  traffic::ArrivalGenerator gen(ix, 120, Rng(2026));
  const auto arrivals = gen.generate(sched_window_ms);
  std::printf("phase A: scheduling %zu dense arrivals (linear vs indexed)\n",
              arrivals.size());

  const auto sched_linear =
      time_schedule_dense(ix, arrivals, /*linear=*/true, warmup, reps);
  const auto sched_indexed =
      time_schedule_dense(ix, arrivals, /*linear=*/false, warmup, reps);
  const double sched_speedup =
      sched_indexed.median_ms > 0 ? sched_linear.median_ms / sched_indexed.median_ms
                                  : 0;

  std::printf("phase B: %d-receiver fan-out, RSA-%d (uncached vs cached)\n",
              receivers, rsa_bits);
  Rng rng(7);
  const auto signer = crypto::RsaSigner::generate(rng, rsa_bits);
  const auto verifier = signer->verifier();
  const chain::Block block = make_block(*signer, plans_per_block);
  const Bytes wire = block.serialize();

  const auto fan_uncached =
      time_fanout_uncached(wire, *verifier, receivers, warmup, reps);
  const auto fan_cached_1 =
      time_fanout_cached(block, *verifier, receivers, /*pool=*/1, warmup, reps);
  const double fan_speedup = fan_cached_1.median_ms > 0
                                 ? fan_uncached.median_ms / fan_cached_1.median_ms
                                 : 0;

  const Duration world_ms = opt.smoke ? 30'000 : 120'000;
  std::printf("phase C: %lld ms World run, tracer off vs on\n",
              static_cast<long long>(world_ms));
  const auto world_untraced =
      time_world_run(world_ms, /*trace=*/false, warmup, reps);
  const auto world_traced =
      time_world_run(world_ms, /*trace=*/true, warmup, reps);
  const double telemetry_overhead_pct =
      world_untraced.median_ms > 0
          ? (world_traced.median_ms - world_untraced.median_ms) * 100.0 /
                world_untraced.median_ms
          : 0;

  std::vector<std::string> phases = {
      bench::json_phase("schedule_dense_linear", sched_linear),
      bench::json_phase("schedule_dense_indexed", sched_indexed),
      bench::json_speedup("schedule_dense", sched_speedup),
      bench::json_phase("fanout_verify_uncached", fan_uncached),
      bench::json_phase("fanout_verify_cached_pool1", fan_cached_1),
      bench::json_speedup("fanout_verify", fan_speedup),
      bench::json_phase("world_run_untraced", world_untraced),
      bench::json_phase("world_run_traced", world_traced),
  };

  // A multi-threaded pool point when the host has cores to spare. Kept out
  // of the headline speedup: determinism, not parallelism, is its contract.
  const unsigned hw = std::thread::hardware_concurrency();
  if (!opt.smoke && hw > 1) {
    const int pool_n = static_cast<int>(hw);
    const auto fan_cached_n =
        time_fanout_cached(block, *verifier, receivers, pool_n, warmup, reps);
    phases.push_back(bench::json_phase(
        "fanout_verify_cached_pool" + std::to_string(pool_n), fan_cached_n));
  }

  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t_start)
                            .count();
  const std::string envelope = bench::bench_envelope(
      "hot_paths", wall_s, phases,
      {bench::json_field("telemetry_overhead_pct", telemetry_overhead_pct, 2)});
  if (!bench::json_well_formed(envelope)) {
    std::fprintf(stderr, "FAIL: emitted envelope is not well-formed JSON\n");
    return 1;
  }
  const std::string path =
      opt.smoke ? "BENCH_hot_paths.smoke.json" : "BENCH_hot_paths.json";
  if (!bench::write_bench_file(path, envelope)) {
    std::fprintf(stderr, "FAIL: could not write %s\n", path.c_str());
    return 1;
  }

  if (opt.smoke) {
    // Round-trip: what landed on disk must re-read and re-validate.
    std::string back;
    if (!bench::read_file(path, back) || back != envelope ||
        !bench::json_well_formed(back)) {
      std::fprintf(stderr, "FAIL: %s did not round-trip\n", path.c_str());
      return 1;
    }
    if (envelope.find("\"telemetry_overhead_pct\"") == std::string::npos) {
      std::fprintf(stderr,
                   "FAIL: envelope is missing telemetry_overhead_pct\n");
      return 1;
    }
    std::printf("smoke OK: envelope round-trips, parses, and reports the "
                "telemetry overhead\n");
  } else {
    std::printf("schedule_dense speedup: %.2fx (linear %.2f ms -> indexed %.2f ms)\n",
                sched_speedup, sched_linear.median_ms, sched_indexed.median_ms);
    std::printf("fanout_verify speedup:  %.2fx (uncached %.2f ms -> cached %.2f ms)\n",
                fan_speedup, fan_uncached.median_ms, fan_cached_1.median_ms);
    std::printf("telemetry overhead:     %.2f%% (untraced %.2f ms -> traced %.2f ms)\n",
                telemetry_overhead_pct, world_untraced.median_ms,
                world_traced.median_ms);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      opt.smoke = true;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke]\n", argv[0]);
      return 2;
    }
  }
  return run(opt);
}
