// Block packaging and verification: signatures, Merkle roots, serialization,
// and every tamper path a compromised IM could attempt on a single block.
#include "chain/block.h"

#include <gtest/gtest.h>

namespace nwade::chain {
namespace {

aim::TravelPlan plan_for(std::uint64_t vid, Tick start) {
  aim::TravelPlan p;
  p.vehicle = VehicleId{vid};
  p.route_id = static_cast<int>(vid % 12);
  p.segments = {aim::PlanSegment{start, 0, 15.0}};
  p.issued_at = start;
  p.core_entry = start + 10000;
  p.core_exit = start + 14000;
  return p;
}

class BlockTest : public ::testing::Test {
 protected:
  BlockTest() : signer_(Bytes{'k', 'e', 'y'}) {}

  Block make_block(BlockSeq seq, const crypto::Digest& prev, int n_plans) {
    std::vector<aim::TravelPlan> plans;
    for (int i = 0; i < n_plans; ++i) {
      plans.push_back(plan_for(seq * 100 + static_cast<std::uint64_t>(i) + 1, 1000));
    }
    return Block::package(seq, prev, static_cast<Tick>(seq) * 1000, std::move(plans),
                          signer_);
  }

  crypto::HmacSigner signer_;
};

TEST_F(BlockTest, PackageProducesValidBlock) {
  const Block b = make_block(0, {}, 5);
  EXPECT_TRUE(b.verify_signature(*signer_.verifier()));
  EXPECT_TRUE(b.verify_merkle());
  EXPECT_EQ(b.plans().size(), 5u);
}

TEST_F(BlockTest, EmptyBlockIsValid) {
  const Block b = make_block(0, {}, 0);
  EXPECT_TRUE(b.verify_signature(*signer_.verifier()));
  EXPECT_TRUE(b.verify_merkle());
}

TEST_F(BlockTest, TamperedPlanBreaksMerkle) {
  Block b = make_block(0, {}, 4);
  b.mutable_plans()[2].segments[0].v_mps = 99.0;  // forged instruction
  EXPECT_FALSE(b.verify_merkle());
  EXPECT_TRUE(b.verify_signature(*signer_.verifier()));  // header untouched
}

TEST_F(BlockTest, SwappedPlansBreakMerkle) {
  Block b = make_block(0, {}, 4);
  { auto& ps = b.mutable_plans(); std::swap(ps[0], ps[1]); };
  EXPECT_FALSE(b.verify_merkle());
}

TEST_F(BlockTest, TamperedRootBreaksSignature) {
  Block b = make_block(0, {}, 4);
  b.merkle_root[0] ^= 1;
  EXPECT_FALSE(b.verify_signature(*signer_.verifier()));
}

TEST_F(BlockTest, TamperedTimestampBreaksSignature) {
  Block b = make_block(0, {}, 2);
  b.timestamp += 1;
  EXPECT_FALSE(b.verify_signature(*signer_.verifier()));
}

TEST_F(BlockTest, TamperedPrevHashBreaksSignature) {
  Block b = make_block(1, crypto::sha256("genesis"), 2);
  b.prev_hash[5] ^= 0x10;
  EXPECT_FALSE(b.verify_signature(*signer_.verifier()));
}

TEST_F(BlockTest, ForeignSignerRejected) {
  const Block b = make_block(0, {}, 3);
  crypto::HmacSigner other(Bytes{'e', 'v', 'i', 'l'});
  EXPECT_FALSE(b.verify_signature(*other.verifier()));
}

TEST_F(BlockTest, HashChainsOnContent) {
  const Block a = make_block(0, {}, 3);
  Block b = a;
  b.timestamp++;
  EXPECT_NE(a.hash(), b.hash());
}

TEST_F(BlockTest, PlanLookup) {
  const Block b = make_block(2, {}, 4);
  ASSERT_NE(b.plan_for(VehicleId{201}), nullptr);
  EXPECT_EQ(b.plan_for(VehicleId{201})->vehicle, VehicleId{201});
  EXPECT_EQ(b.plan_for(VehicleId{9999}), nullptr);
}

TEST_F(BlockTest, MerkleProofForPlan) {
  const Block b = make_block(0, {}, 7);
  for (std::size_t i = 0; i < b.plans().size(); ++i) {
    const auto proof = b.prove_plan(i);
    EXPECT_TRUE(
        crypto::MerkleTree::verify(b.plans()[i].serialize(), proof, b.merkle_root));
  }
  // Proof does not validate a different plan.
  const auto proof0 = b.prove_plan(0);
  EXPECT_FALSE(
      crypto::MerkleTree::verify(b.plans()[1].serialize(), proof0, b.merkle_root));
}

TEST_F(BlockTest, SerializationRoundTrip) {
  const Block b = make_block(3, crypto::sha256("prev"), 6);
  const auto back = Block::deserialize(b.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->seq, b.seq);
  EXPECT_EQ(back->signature, b.signature);
  EXPECT_EQ(back->prev_hash, b.prev_hash);
  EXPECT_EQ(back->merkle_root, b.merkle_root);
  EXPECT_EQ(back->timestamp, b.timestamp);
  ASSERT_EQ(back->plans().size(), b.plans().size());
  EXPECT_TRUE(back->verify_signature(*signer_.verifier()));
  EXPECT_TRUE(back->verify_merkle());
  EXPECT_EQ(back->hash(), b.hash());
}

TEST_F(BlockTest, DeserializeRejectsTruncation) {
  const Block b = make_block(0, {}, 3);
  Bytes bytes = b.serialize();
  for (std::size_t cut : {bytes.size() - 1, bytes.size() / 2, std::size_t{3}}) {
    Bytes truncated(bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(Block::deserialize(truncated).has_value()) << "cut " << cut;
  }
}

TEST_F(BlockTest, WireSizeGrowsWithPlans) {
  EXPECT_LT(make_block(0, {}, 1).wire_size(), make_block(0, {}, 20).wire_size());
}

}  // namespace
}  // namespace nwade::chain
