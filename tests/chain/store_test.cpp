// BlockStore: chain linkage validation and the tau/delta depth bound.
#include "chain/store.h"

#include <gtest/gtest.h>

namespace nwade::chain {
namespace {

class StoreTest : public ::testing::Test {
 protected:
  StoreTest() : signer_(Bytes{'i', 'm'}) {}

  Block next_block(int n_plans = 2) {
    std::vector<aim::TravelPlan> plans;
    for (int i = 0; i < n_plans; ++i) {
      aim::TravelPlan p;
      p.vehicle = VehicleId{seq_ * 10 + static_cast<std::uint64_t>(i) + 1};
      p.segments = {aim::PlanSegment{static_cast<Tick>(seq_) * 1000, 0, 10}};
      plans.push_back(p);
    }
    Block b = Block::package(seq_, prev_, static_cast<Tick>(seq_) * 1000,
                             std::move(plans), signer_);
    prev_ = b.hash();
    ++seq_;
    return b;
  }

  crypto::HmacSigner signer_;
  crypto::Digest prev_{};
  BlockSeq seq_{0};
};

TEST_F(StoreTest, AppendsValidChain) {
  BlockStore store;
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(store.append(next_block(), *signer_.verifier()));
  }
  EXPECT_EQ(store.size(), 5u);
  EXPECT_EQ(store.latest()->seq, 4u);
  EXPECT_NE(store.by_seq(2), nullptr);
  EXPECT_EQ(store.by_seq(99), nullptr);
}

TEST_F(StoreTest, RejectsBadSignature) {
  BlockStore store;
  Block b = next_block();
  b.timestamp += 5;  // invalidates signature
  const auto result = store.append(b, *signer_.verifier());
  ASSERT_FALSE(result);
  EXPECT_EQ(result.error(), ChainError::kBadSignature);
  EXPECT_TRUE(store.empty());
}

TEST_F(StoreTest, RejectsTamperedPlans) {
  BlockStore store;
  Block b = next_block();
  b.mutable_plans()[0].segments[0].v_mps = 60;
  const auto result = store.append(b, *signer_.verifier());
  ASSERT_FALSE(result);
  EXPECT_EQ(result.error(), ChainError::kBadMerkleRoot);
}

TEST_F(StoreTest, RejectsBrokenLinkage) {
  BlockStore store;
  ASSERT_TRUE(store.append(next_block(), *signer_.verifier()));
  // Forge the next block with the right seq but wrong prev hash.
  prev_ = crypto::sha256("not the real prev");
  const Block forged = next_block();
  const auto result = store.append(forged, *signer_.verifier());
  ASSERT_FALSE(result);
  EXPECT_EQ(result.error(), ChainError::kBrokenLinkage);
  EXPECT_EQ(store.size(), 1u);
}

TEST_F(StoreTest, RejectsSeqGapAndReplay) {
  BlockStore store;
  const Block b0 = next_block();
  const Block b1 = next_block();
  const Block b2 = next_block();
  ASSERT_TRUE(store.append(b0, *signer_.verifier()));
  // Gap: b2 after b0.
  auto result = store.append(b2, *signer_.verifier());
  ASSERT_FALSE(result);
  EXPECT_EQ(result.error(), ChainError::kNonMonotonicSeq);
  // Replay of b0.
  result = store.append(b0, *signer_.verifier());
  ASSERT_FALSE(result);
  EXPECT_EQ(result.error(), ChainError::kNonMonotonicSeq);
  // Correct continuation still works.
  EXPECT_TRUE(store.append(b1, *signer_.verifier()));
}

TEST_F(StoreTest, EvictsBeyondMaxDepth) {
  BlockStore store(3);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(store.append(next_block(), *signer_.verifier()));
  }
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.blocks().front().seq, 7u);
  EXPECT_EQ(store.latest()->seq, 9u);
  // Evicted blocks are gone; linkage continues to be enforced at the tail.
  EXPECT_EQ(store.by_seq(0), nullptr);
}

TEST_F(StoreTest, FindPlanReturnsNewest) {
  BlockStore store;
  // Vehicle 42 gets a plan in block 0 and a superseding plan in block 2.
  auto make_with_vehicle = [&](double speed) {
    aim::TravelPlan p;
    p.vehicle = VehicleId{42};
    p.segments = {aim::PlanSegment{0, 0, speed}};
    Block b = Block::package(seq_, prev_, static_cast<Tick>(seq_) * 1000, {p}, signer_);
    prev_ = b.hash();
    ++seq_;
    return b;
  };
  ASSERT_TRUE(store.append(make_with_vehicle(10.0), *signer_.verifier()));
  ASSERT_TRUE(store.append(next_block(), *signer_.verifier()));
  ASSERT_TRUE(store.append(make_with_vehicle(5.0), *signer_.verifier()));
  const aim::TravelPlan* p = store.find_plan(VehicleId{42});
  ASSERT_NE(p, nullptr);
  EXPECT_DOUBLE_EQ(p->segments[0].v_mps, 5.0);
  EXPECT_EQ(store.find_plan(VehicleId{777}), nullptr);
}

TEST_F(StoreTest, FailedAppendLeavesStoreUntouched) {
  BlockStore store;
  ASSERT_TRUE(store.append(next_block(), *signer_.verifier()));
  const std::size_t size = store.size();
  const auto* latest = store.latest();
  Block bad = next_block();
  bad.merkle_root[0] ^= 1;
  EXPECT_FALSE(store.append(bad, *signer_.verifier()));
  EXPECT_EQ(store.size(), size);
  EXPECT_EQ(store.latest(), latest);
}

}  // namespace
}  // namespace nwade::chain
