// Chaos coverage for the cached block-verification fan-out: the
// signature-verification cache must never let a forged block ride its
// honest twin's cached verdict, and the parallel fan-out must agree with
// the sequential path under every pool size (TSan vets the synchronization
// when this suite runs under SANITIZE=thread).
#include <gtest/gtest.h>

#include "chain/block.h"
#include "chain/fanout.h"
#include "chain/store.h"
#include "crypto/verify_cache.h"
#include "util/rng.h"
#include "util/worker_pool.h"

namespace nwade::chain {
namespace {

aim::TravelPlan make_plan(std::uint64_t vehicle, Tick t) {
  aim::TravelPlan p;
  p.vehicle = VehicleId{vehicle};
  p.route_id = static_cast<int>(vehicle % 4);
  p.issued_at = t;
  p.core_entry = t + 4'000;
  p.core_exit = t + 7'000;
  p.segments = {aim::PlanSegment{t, 0.0, 11.0}};
  return p;
}

Block make_signed_block(const crypto::Signer& signer, BlockSeq seq,
                        const crypto::Digest& prev, int n_plans) {
  std::vector<aim::TravelPlan> plans;
  for (int i = 0; i < n_plans; ++i) {
    plans.push_back(make_plan(seq * 100 + static_cast<std::uint64_t>(i) + 1,
                              static_cast<Tick>(seq) * 1000));
  }
  return Block::package(seq, prev, static_cast<Tick>(seq) * 1000, std::move(plans),
                        signer);
}

class VerifyCacheChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(31337);
    signer_ = new crypto::RsaSigner(crypto::rsa_generate(rng, 1024));
  }
  static void TearDownTestSuite() {
    delete signer_;
    signer_ = nullptr;
  }
  void SetUp() override {
    crypto::SigVerifyCache::instance().clear();
    crypto::SigVerifyCache::instance().reset_stats();
  }
  void TearDown() override {
    crypto::SigVerifyCache::instance().clear();
    crypto::SigVerifyCache::instance().reset_stats();
  }
  static crypto::RsaSigner* signer_;
};

crypto::RsaSigner* VerifyCacheChaosTest::signer_ = nullptr;

TEST_F(VerifyCacheChaosTest, TamperedTwinRejectedAfterHonestHit) {
  auto& cache = crypto::SigVerifyCache::instance();
  const auto verifier = signer_->verifier();
  const Block honest = make_signed_block(*signer_, 1, crypto::Digest{}, 4);

  // Honest block: first verification misses and computes, second hits.
  EXPECT_TRUE(honest.verify_signature(*verifier));
  EXPECT_TRUE(honest.verify_signature(*verifier));
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);

  // Forge a twin: same plans, same signature, one header field altered.
  // Its signed payload differs, so its cache key cannot alias the honest
  // entry — the forgery is recomputed (miss) and rejected.
  Block forged = honest;
  forged.timestamp += 1;
  EXPECT_FALSE(forged.verify_signature(*verifier));
  EXPECT_EQ(cache.stats().misses, 2u);

  // And the rejection is itself cached without poisoning the honest entry.
  EXPECT_FALSE(forged.verify_signature(*verifier));
  EXPECT_TRUE(honest.verify_signature(*verifier));
  EXPECT_EQ(cache.stats().hits, 3u);
}

TEST_F(VerifyCacheChaosTest, TamperedPlansStillRejectedByMerkle) {
  const auto verifier = signer_->verifier();
  Block forged = make_signed_block(*signer_, 2, crypto::Digest{}, 4);
  EXPECT_TRUE(forged.verify_signature(*verifier));
  EXPECT_TRUE(forged.verify_merkle());
  forged.mutable_plans()[1].segments[0].v_mps = 99.0;
  // Signature still verifies (the payload only carries the Merkle root),
  // but the recomputed tree exposes the forged instruction.
  EXPECT_TRUE(forged.verify_signature(*verifier));
  EXPECT_FALSE(forged.verify_merkle());

  BlockStore store;
  EXPECT_FALSE(store.append(forged, *verifier).has_value());
}

TEST_F(VerifyCacheChaosTest, FanoutMatchesSequentialForEveryPoolSize) {
  auto& cache = crypto::SigVerifyCache::instance();
  const auto verifier_sp = signer_->verifier();
  const Block block = make_signed_block(*signer_, 3, crypto::Digest{}, 8);

  // 64 receivers sharing one IM verifier (the simulator's shape).
  std::vector<const crypto::Verifier*> verifiers(64, verifier_sp.get());

  for (const int threads : {1, 2, 4}) {
    cache.clear();
    cache.reset_stats();
    util::WorkerPool pool(threads);
    const auto results = fanout_verify(block, verifiers, pool);
    ASSERT_EQ(results.size(), verifiers.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i], 1) << "receiver " << i << ", pool " << threads;
    }
    const auto s = cache.stats();
    EXPECT_EQ(s.hits + s.misses, verifiers.size()) << "pool " << threads;
    if (threads <= 1) {
      // Sequential: exactly one modexp, everyone else hits the cache.
      EXPECT_EQ(s.misses, 1u);
    } else {
      // Concurrent receivers can each miss before the first store lands,
      // but never more of them than there are threads racing.
      EXPECT_GE(s.misses, 1u);
      EXPECT_LE(s.misses, static_cast<std::uint64_t>(threads) + 1);
    }
  }
}

TEST_F(VerifyCacheChaosTest, FanoutRejectsForgeryUnderThreads) {
  const auto verifier_sp = signer_->verifier();
  Block forged = make_signed_block(*signer_, 4, crypto::Digest{}, 4);
  forged.seq += 1;  // breaks the signature
  std::vector<const crypto::Verifier*> verifiers(32, verifier_sp.get());
  util::WorkerPool pool(4);
  const auto results = fanout_verify(forged, verifiers, pool);
  for (std::size_t i = 0; i < results.size(); ++i) EXPECT_EQ(results[i], 0);
}

}  // namespace
}  // namespace nwade::chain
