// The signed revocation list added to blocks: serialization, signature
// coverage, and propagation semantics.
#include <gtest/gtest.h>

#include "chain/store.h"

namespace nwade::chain {
namespace {

class RevocationTest : public ::testing::Test {
 protected:
  RevocationTest() : signer_(Bytes{'r', 'v'}) {}
  crypto::HmacSigner signer_;
};

TEST_F(RevocationTest, RoundTripsThroughSerialization) {
  const Block b = Block::package(0, {}, 100, {}, signer_,
                                 {VehicleId{5}, VehicleId{9}});
  const auto back = Block::deserialize(b.serialize());
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->revoked.size(), 2u);
  EXPECT_EQ(back->revoked[0], VehicleId{5});
  EXPECT_EQ(back->revoked[1], VehicleId{9});
  EXPECT_TRUE(back->verify_signature(*signer_.verifier()));
}

TEST_F(RevocationTest, SignatureCoversRevocations) {
  Block b = Block::package(0, {}, 100, {}, signer_, {VehicleId{5}});
  // Tampering with the revocation list must break the signature: otherwise a
  // compromised relay could un-revoke a threat.
  b.revoked.clear();
  EXPECT_FALSE(b.verify_signature(*signer_.verifier()));
  Block b2 = Block::package(0, {}, 100, {}, signer_, {VehicleId{5}});
  b2.revoked.push_back(VehicleId{6});
  EXPECT_FALSE(b2.verify_signature(*signer_.verifier()));
}

TEST_F(RevocationTest, RevocationChangesBlockHash) {
  const Block a = Block::package(0, {}, 100, {}, signer_, {});
  const Block b = Block::package(0, {}, 100, {}, signer_, {VehicleId{1}});
  EXPECT_NE(a.hash(), b.hash());
}

TEST_F(RevocationTest, EmptyRevocationListIsDefault) {
  const Block b = Block::package(0, {}, 100, {}, signer_);
  EXPECT_TRUE(b.revoked.empty());
  EXPECT_TRUE(b.verify_signature(*signer_.verifier()));
}

TEST_F(RevocationTest, StoreAcceptsChainWithRevocations) {
  BlockStore store;
  const Block b0 = Block::package(0, {}, 100, {}, signer_, {});
  ASSERT_TRUE(store.append(b0, *signer_.verifier()));
  const Block b1 =
      Block::package(1, b0.hash(), 200, {}, signer_, {VehicleId{42}});
  EXPECT_TRUE(store.append(b1, *signer_.verifier()));
  EXPECT_EQ(store.latest()->revoked.size(), 1u);
}

}  // namespace
}  // namespace nwade::chain
