#!/usr/bin/env python3
"""Unit tests for scripts/bench_diff.py (stdlib unittest — pytest is not part
of the toolchain image).

Covers the comparison semantics the perf workflow leans on:
  * timing phases regressing beyond --threshold fail, within it pass;
  * speedup phases shrinking beyond --speedup-threshold fail on comparable
    hardware, but downgrade to advisory when either envelope was recorded
    with single_core_host=true (the guard bench_grid/bench_campaign emit);
  * mismatched hardware_concurrency downgrades timing failures to warnings
    unless --strict re-arms them;
  * phases present on only one side are advisory unless --strict;
  * a non nwade-bench-v1 envelope is rejected with SystemExit.

Run directly (python3 tests/scripts/bench_diff_test.py) or via ctest
(bench_diff_py).
"""

import importlib.util
import json
import os
import sys
import tempfile
import unittest
from pathlib import Path

_SCRIPT = Path(__file__).resolve().parents[2] / "scripts" / "bench_diff.py"
_spec = importlib.util.spec_from_file_location("bench_diff", _SCRIPT)
bench_diff = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_diff)


def envelope(phases, hw=8, single_core=None):
    env = {
        "schema": "nwade-bench-v1",
        "git_sha": "deadbeef",
        "hardware_concurrency": hw,
        "phases": phases,
    }
    if single_core is not None:
        env["single_core_host"] = "true" if single_core else "false"
    return env


class BenchDiffTest(unittest.TestCase):
    def setUp(self):
        self._dir = tempfile.TemporaryDirectory()
        self.addCleanup(self._dir.cleanup)

    def _write(self, name, env):
        path = os.path.join(self._dir.name, name)
        with open(path, "w", encoding="utf-8") as f:
            json.dump(env, f)
        return path

    def _run(self, base, cand, *extra):
        """Invokes bench_diff.main() with patched argv; returns its exit code."""
        argv = sys.argv
        sys.argv = ["bench_diff.py", self._write("base.json", base),
                    self._write("cand.json", cand), *extra]
        try:
            return bench_diff.main()
        finally:
            sys.argv = argv

    def test_timing_within_threshold_passes(self):
        base = envelope([{"name": "step", "median_ms": 100.0}])
        cand = envelope([{"name": "step", "median_ms": 105.0}])
        self.assertEqual(self._run(base, cand, "--threshold", "10"), 0)

    def test_timing_regression_beyond_threshold_fails(self):
        base = envelope([{"name": "step", "median_ms": 100.0}])
        cand = envelope([{"name": "step", "median_ms": 125.0}])
        self.assertEqual(self._run(base, cand, "--threshold", "10"), 1)

    def test_timing_improvement_passes(self):
        base = envelope([{"name": "step", "median_ms": 100.0}])
        cand = envelope([{"name": "step", "median_ms": 50.0}])
        self.assertEqual(self._run(base, cand), 0)

    def test_speedup_shrink_fails_on_comparable_hardware(self):
        base = envelope([{"name": "scale", "speedup_x": 4.0}])
        cand = envelope([{"name": "scale", "speedup_x": 2.0}])
        self.assertEqual(self._run(base, cand, "--speedup-threshold", "10"), 1)

    def test_speedup_shrink_advisory_on_single_core_host(self):
        # The guard rail bench_grid records: a 1-core envelope cannot show
        # scaling, so a shrunk speedup is a note, not a failure.
        base = envelope([{"name": "scale", "speedup_x": 4.0}])
        cand = envelope([{"name": "scale", "speedup_x": 1.0}],
                        single_core=True)
        self.assertEqual(self._run(base, cand), 0)

    def test_speedup_shrink_on_single_core_still_fails_in_strict(self):
        base = envelope([{"name": "scale", "speedup_x": 4.0}])
        cand = envelope([{"name": "scale", "speedup_x": 1.0}],
                        single_core=True)
        self.assertEqual(self._run(base, cand, "--strict"), 1)

    def test_cross_hardware_regression_is_advisory(self):
        base = envelope([{"name": "step", "median_ms": 100.0}], hw=4)
        cand = envelope([{"name": "step", "median_ms": 200.0}], hw=16)
        self.assertEqual(self._run(base, cand), 0)
        self.assertEqual(self._run(base, cand, "--strict"), 1)

    def test_one_sided_phase_advisory_unless_strict(self):
        base = envelope([{"name": "old_phase", "median_ms": 10.0}])
        cand = envelope([{"name": "new_phase", "median_ms": 10.0}])
        self.assertEqual(self._run(base, cand), 0)
        self.assertEqual(self._run(base, cand, "--strict"), 1)

    def test_wrong_schema_rejected(self):
        base = envelope([])
        bad = envelope([])
        bad["schema"] = "something-else"
        with self.assertRaises(SystemExit):
            self._run(base, bad)

    def test_zero_baseline_median_skipped(self):
        # A zero baseline would divide by zero; the diff skips such phases.
        base = envelope([{"name": "step", "median_ms": 0.0}])
        cand = envelope([{"name": "step", "median_ms": 50.0}])
        self.assertEqual(self._run(base, cand), 0)


if __name__ == "__main__":
    unittest.main()
