#!/usr/bin/env bash
# Campaign CLI contract tests:
#   - unwritable output paths fail up front (nonzero exit + stderr diagnostic
#     BEFORE any cell runs), for every output option;
#   - --resume + --trace is rejected (traces are not journaled);
#   - --resume across two invocations produces byte-identical results JSON,
#     with the second invocation replaying the journal instead of re-running.
#
# usage: campaign_cli_test.sh CAMPAIGN_BINARY
set -u

CAMPAIGN="$1"

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
cd "$tmpdir"

fail() {
  echo "campaign_cli_test: FAIL: $*" >&2
  exit 1
}

SMALL=(--kinds cross4 --attacks benign --vpm 30 --rounds 1 --duration-ms 5000)

# --- unwritable path preflight, per output option ---------------------------
for opt in --out --results-out --trace-out --trace-jsonl-out --metrics-out --resume; do
  "$CAMPAIGN" "${SMALL[@]}" "$opt" /nonexistent-dir/x.out > out.log 2> err.log
  status=$?
  [ "$status" -ne 0 ] || fail "$opt /nonexistent-dir did not fail"
  grep -q 'cannot write output path /nonexistent-dir/x.out' err.log \
    || fail "$opt failure carried no diagnostic: $(cat err.log)"
  # Up-front means no simulation ran: the per-cell banner never printed.
  grep -q '^campaign:' out.log && fail "$opt preflight ran the campaign first"
done

# --- --resume + --trace rejected --------------------------------------------
"$CAMPAIGN" "${SMALL[@]}" --resume prog.journal --trace > /dev/null 2> err.log
[ $? -eq 2 ] || fail "--resume --trace accepted"
grep -q 'cannot be combined with tracing' err.log \
  || fail "--resume --trace rejection carried no diagnostic"

# --- resume byte-identity ----------------------------------------------------
"$CAMPAIGN" "${SMALL[@]}" --out a.json --results-out a-results.json \
  > /dev/null 2>&1 || fail "plain run exited $?"
"$CAMPAIGN" "${SMALL[@]}" --out b.json --results-out b-results.json \
  --resume prog.journal > /dev/null 2>&1 || fail "resumable run exited $?"
cmp -s a-results.json b-results.json \
  || fail "resumable results differ from plain run"
[ -s prog.journal ] || fail "no progress journal written"

# Second resumable invocation replays the journal; results stay identical.
"$CAMPAIGN" "${SMALL[@]}" --out c.json --results-out c-results.json \
  --resume prog.journal > /dev/null 2>&1 || fail "journal replay exited $?"
cmp -s a-results.json c-results.json \
  || fail "journal replay results differ from plain run"

echo "campaign_cli_test: OK"
