#!/usr/bin/env bash
# Soak smoke (ctest label: soak): proves the crash-resume loop end to end.
#
#   1. Reference: an uninterrupted 30-sim-second soak, final digest recorded.
#   2. SIGKILL survival: the same scenario is killed with SIGKILL mid-run
#      (as soon as its first snapshot lands) and rerun to completion; the
#      resumed run must print the reference digest bit for bit.
#   3. Staged restarts: the same scenario run with --max-snapshots 1 in a
#      loop — every invocation resumes the state file, takes one snapshot,
#      and exits — until completion. Deterministic (no timing) and must also
#      reproduce the reference digest.
#   4. Replay: the bundle recorded by the reference run re-executes with a
#      matching digest via examples/replay.
#
# usage: soak_smoke.sh SOAK_BINARY REPLAY_BINARY
set -u

SOAK="$1"
REPLAY="$2"

SCENARIO=(--duration-ms 30000 --snapshot-every-ms 5000 --vpm 60 --seed 9 --chaos)

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
cd "$tmpdir"

fail() {
  echo "soak_smoke: FAIL: $*" >&2
  exit 1
}

digest_of() {
  sed -n 's/^final digest: //p' "$1"
}

# --- 1. reference run ------------------------------------------------------
"$SOAK" --state ref.ckpt "${SCENARIO[@]}" --record-bundle ref.bundle \
  > ref.log 2>&1 || fail "reference run exited $?"
ref_digest="$(digest_of ref.log)"
[ -n "$ref_digest" ] || fail "reference run printed no digest"

# --- 2. SIGKILL mid-run, then resume ---------------------------------------
"$SOAK" --state kill.ckpt "${SCENARIO[@]}" > kill.log 2>&1 &
pid=$!
# Kill as soon as the first snapshot exists. On a machine fast enough to
# finish before the kill lands this degrades into resuming a completed run —
# still digest-checked, just less adversarial.
for _ in $(seq 1 200); do
  [ -f kill.ckpt ] && break
  sleep 0.02
done
kill -9 "$pid" 2> /dev/null
wait "$pid" 2> /dev/null

[ -f kill.ckpt ] || fail "no snapshot survived the SIGKILL"
"$SOAK" --state kill.ckpt > resume.log 2>&1 || fail "resume exited $?"
resumed_digest="$(digest_of resume.log)"
[ "$resumed_digest" = "$ref_digest" ] \
  || fail "digest after SIGKILL+resume: $resumed_digest != $ref_digest"

# --- 3. deterministic staged restarts --------------------------------------
runs=0
while : ; do
  runs=$((runs + 1))
  [ "$runs" -le 20 ] || fail "staged run never completed"
  "$SOAK" --state staged.ckpt "${SCENARIO[@]}" --max-snapshots 1 \
    > staged.log 2>&1 || fail "staged run $runs exited $?"
  grep -q '^final digest: ' staged.log && break
done
[ "$runs" -ge 3 ] || fail "staged loop finished in $runs runs; expected >= 3 restarts"
grep -q '^soak: resumed ' staged.log || fail "staged run never took the resume path"
staged_digest="$(digest_of staged.log)"
[ "$staged_digest" = "$ref_digest" ] \
  || fail "staged digest: $staged_digest != $ref_digest"

# --- 4. replay the recorded bundle -----------------------------------------
"$REPLAY" ref.bundle > replay.log 2>&1 || fail "replay exited $? ($(cat replay.log))"
grep -q 'digest matches recorded run' replay.log || fail "replay did not confirm digest"

echo "soak_smoke: OK (reference digest $ref_digest, $runs staged runs)"
