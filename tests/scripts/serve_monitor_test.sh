#!/usr/bin/env bash
# serve/monitor CLI smoke (ctest label: obs): the streaming plane end to end.
#
#   1. File stream: serve a short attack scenario to a stream file; the
#      monitor replays it, sees the detection timeline, and exits 0. Two
#      serves of the same scenario must write byte-identical streams apart
#      from the heartbeat wall stamps (checked by stripping heartbeats).
#   2. TCP stream: serve on an ephemeral-ish port, attach a live monitor,
#      and check it renders frames.
#   3. Checkpointed restart: serve with --state and --max-snapshots 1 in a
#      staged loop (soak_smoke's discipline); the appended stream file of
#      the restarted runs must equal the uninterrupted reference stream,
#      heartbeats stripped — the stream survives restarts without a seam.
#
# usage: serve_monitor_test.sh SERVE_BINARY MONITOR_BINARY
set -u

SERVE="$1"
MONITOR="$2"

SCENARIO=(--duration-ms 20000 --vpm 60 --seed 9 --attack V1 --trace
          --cadence-ms 1000)

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
cd "$tmpdir"

fail() {
  echo "serve_monitor: FAIL: $*" >&2
  exit 1
}

# Frames are length-prefixed JSONL: dropping the length lines and the
# heartbeat frames (the only wall-clock-bearing ones) leaves a deterministic
# transcript comparable across runs.
strip_heartbeats() {
  grep -a '^{' "$1" | grep -av '"kind": "heartbeat"'
}

# --- 1. file stream + monitor replay ---------------------------------------
"$SERVE" "${SCENARIO[@]}" --stream-out a.stream > serve_a.log 2>&1 \
  || fail "file-stream serve exited $?"
[ -s a.stream ] || fail "serve wrote no stream"
"$MONITOR" --in a.stream --quiet > monitor_a.log 2>&1 \
  || fail "monitor replay exited $?"
grep -q 'incident_report' monitor_a.log \
  || fail "monitor saw no detection timeline"
grep -q '== t=' monitor_a.log || fail "monitor rendered no table"

"$SERVE" "${SCENARIO[@]}" --stream-out b.stream > serve_b.log 2>&1 \
  || fail "second serve exited $?"
strip_heartbeats a.stream > a.frames
strip_heartbeats b.stream > b.frames
cmp -s a.frames b.frames \
  || fail "two serves of one scenario streamed different frames"

# --- 2. live TCP stream -----------------------------------------------------
# Ephemeral port: serve prints the port it bound; pace the run so the
# monitor has time to attach.
"$SERVE" "${SCENARIO[@]}" --port 0 --pace 8 > serve_tcp.log 2>&1 &
serve_pid=$!
port=""
for _ in $(seq 1 200); do
  port="$(sed -n 's/^serve: streaming on 127.0.0.1:\([0-9]*\)$/\1/p' serve_tcp.log)"
  [ -n "$port" ] && break
  sleep 0.02
done
[ -n "$port" ] || { kill "$serve_pid" 2>/dev/null; fail "serve never printed its port"; }
"$MONITOR" --connect "127.0.0.1:$port" --quiet --max-frames 30 \
  > monitor_tcp.log 2>&1 || { kill "$serve_pid" 2>/dev/null; fail "tcp monitor exited $?"; }
grep -q 'monitor: .* stream' monitor_tcp.log \
  || { kill "$serve_pid" 2>/dev/null; fail "tcp monitor saw no hello"; }
kill "$serve_pid" 2>/dev/null
wait "$serve_pid" 2>/dev/null

# --- 3. checkpointed restart continues the stream ---------------------------
runs=0
while : ; do
  runs=$((runs + 1))
  [ "$runs" -le 20 ] || fail "staged serve never completed"
  "$SERVE" "${SCENARIO[@]}" --state staged.ckpt --snapshot-every-ms 5000 \
    --max-snapshots 1 --stream-out staged.stream > staged.log 2>&1 \
    || fail "staged serve $runs exited $?"
  grep -q '^final digest: ' staged.log && break
done
[ "$runs" -ge 3 ] || fail "staged loop finished in $runs runs; expected >= 3 restarts"
grep -q '^serve: resumed ' staged.log || fail "staged serve never resumed"
strip_heartbeats staged.stream > staged.frames
cmp -s staged.frames a.frames \
  || fail "restarted stream differs from the uninterrupted reference"

echo "serve_monitor: OK ($runs staged runs, port $port)"
