// Allocation gates for the telemetry layer (ctest labels: alloc, obs).
//
// The observability contract (docs/OBSERVABILITY.md): metric writes through
// warmed handles never allocate, and a *disabled* tracer costs one relaxed
// load with no heap traffic at all — so compiling telemetry into the hot
// paths cannot regress the PR-4 zero-allocation gates. Metered only in
// -DNWADE_COUNT_ALLOCS=ON builds; skipped (green) elsewhere.
#include <gtest/gtest.h>

#include "util/alloc_stats.h"
#include "util/log.h"
#include "util/telemetry.h"
#include "util/trace.h"

namespace nwade::util {
namespace {

#define REQUIRE_COUNTING()                                                 \
  if (!alloc_counting_enabled()) {                                         \
    GTEST_SKIP() << "build with -DNWADE_COUNT_ALLOCS=ON to arm this gate"; \
  }

TEST(TelemetryAllocGate, WarmedCounterAndGaugeWritesAreAllocationFree) {
  REQUIRE_COUNTING();
  telemetry::Registry r;
  telemetry::Counter c = r.counter("gate.counter");  // registration may alloc
  telemetry::Gauge g = r.gauge("gate.gauge");
  c.inc();  // warm-up (shard index assignment is thread_local state)
  g.set(1);

  const std::uint64_t before = thread_alloc_count();
  for (int i = 0; i < 1000; ++i) {
    c.inc();
    c.inc(3);
    g.set(i);
    g.max_of(i);
  }
  EXPECT_EQ(thread_alloc_count() - before, 0u);
}

TEST(TelemetryAllocGate, WarmedHistogramObserveIsAllocationFree) {
  REQUIRE_COUNTING();
  telemetry::Registry r;
  telemetry::Histogram h =
      r.histogram("gate.hist", telemetry::HistogramBuckets::exponential_ms());
  h.observe(1);  // warm-up

  const std::uint64_t before = thread_alloc_count();
  for (int i = 0; i < 1000; ++i) h.observe(i % 5000);
  EXPECT_EQ(thread_alloc_count() - before, 0u);
}

TEST(TelemetryAllocGate, DisabledTracerPathIsAllocationFree) {
  REQUIRE_COUNTING();
  trace::Tracer t;
  ASSERT_FALSE(t.enabled());
  ASSERT_FALSE(trace::tracing_active());

  const std::uint64_t before = thread_alloc_count();
  for (int i = 0; i < 1000; ++i) {
    // The instrumented-site pattern: one global flag load, then nothing.
    if (trace::tracing_active()) {
      t.instant("gate", "never", i);
    }
    // Even an unguarded call on a disabled tracer must bail before the
    // event buffer is touched.
    t.instant("gate", "disabled", i, "i", i);
    t.complete("gate", "disabled_span", i, i + 1, 2.0, "i", i);
  }
  EXPECT_EQ(thread_alloc_count() - before, 0u);
}

TEST(TelemetryAllocGate, InertDefaultHandlesAreAllocationFree) {
  REQUIRE_COUNTING();
  telemetry::Counter c;
  telemetry::Gauge g;
  telemetry::Histogram h;

  const std::uint64_t before = thread_alloc_count();
  for (int i = 0; i < 1000; ++i) {
    c.inc();
    g.set(i);
    h.observe(i);
  }
  EXPECT_EQ(thread_alloc_count() - before, 0u);
}

TEST(TelemetryAllocGate, DisabledLogLineIsAllocationFree) {
  REQUIRE_COUNTING();
  log_config::set_level(LogLevel::kOff);

  const std::uint64_t before = thread_alloc_count();
  for (int i = 0; i < 1000; ++i) {
    NWADE_LOG(kDebug) << "vehicle " << i << " state " << 2.5;
  }
  EXPECT_EQ(thread_alloc_count() - before, 0u);
}

}  // namespace
}  // namespace nwade::util
