// WorkerPool determinism contract: results are a pure function of the
// inputs — any pool size, including the inline (<=1) path, produces the
// same output vector — and every index runs exactly once. Chaos-labeled so
// the SANITIZE=thread build vets the synchronization.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <mutex>
#include <numeric>
#include <utility>

#include "util/worker_pool.h"

namespace nwade::util {
namespace {

TEST(WorkerPool, InlineModeSpawnsNoThreads) {
  WorkerPool pool0(0);
  WorkerPool pool1(1);
  EXPECT_EQ(pool0.thread_count(), 0);
  EXPECT_EQ(pool1.thread_count(), 0);
}

TEST(WorkerPool, NestedThreadBudgetKeepsOneLevelOfParallelism) {
  // Oversubscription policy (worker_pool.h): a parallel outer loop forces
  // every inner pool inline — an 8-shard grid over 4-thread worlds runs 8
  // workers, not 32. Only a serial outer loop passes the inner budget
  // through.
  EXPECT_EQ(nested_thread_budget(8, 4), 1);
  EXPECT_EQ(nested_thread_budget(2, 16), 1);
  EXPECT_EQ(nested_thread_budget(1, 4), 4);
  EXPECT_EQ(nested_thread_budget(0, 4), 4);
  // An inline inner pool stays inline either way.
  EXPECT_EQ(nested_thread_budget(8, 1), 1);
  EXPECT_EQ(nested_thread_budget(1, 1), 1);
}

TEST(WorkerPool, EveryIndexRunsExactlyOnce) {
  for (const int threads : {0, 1, 2, 4}) {
    WorkerPool pool(threads);
    constexpr std::size_t kCount = 1000;
    std::vector<std::atomic<int>> runs(kCount);
    pool.for_each(kCount, [&](std::size_t i) {
      runs[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kCount; ++i) {
      ASSERT_EQ(runs[i].load(), 1) << "index " << i << ", threads " << threads;
    }
  }
}

TEST(WorkerPool, MapMergesInFixedOrderForAnyPoolSize) {
  const auto job = [](std::size_t i) {
    // Unequal per-index cost, so completion order scrambles under threads.
    std::uint64_t acc = i;
    for (std::size_t k = 0; k < (i % 7) * 1000; ++k) acc = acc * 6364136223846793005ULL + 1;
    return acc;
  };
  WorkerPool inline_pool(1);
  const auto expected = inline_pool.map<std::uint64_t>(500, job);
  for (const int threads : {2, 3, 4, 8}) {
    WorkerPool pool(threads);
    EXPECT_EQ(pool.map<std::uint64_t>(500, job), expected)
        << "pool size " << threads << " diverged from inline";
  }
}

TEST(WorkerPool, ReusableAcrossManyJobs) {
  WorkerPool pool(4);
  for (int round = 0; round < 50; ++round) {
    const auto out = pool.map<std::uint64_t>(
        64, [round](std::size_t i) { return static_cast<std::uint64_t>(round) * 64 + i; });
    std::uint64_t sum = std::accumulate(out.begin(), out.end(), std::uint64_t{0});
    const std::uint64_t n = 64;
    const std::uint64_t base = static_cast<std::uint64_t>(round) * 64;
    EXPECT_EQ(sum, n * base + n * (n - 1) / 2);
  }
}

TEST(WorkerPool, EmptyJobReturnsImmediately) {
  WorkerPool pool(4);
  bool ran = false;
  pool.for_each(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(WorkerPool, ParallelForChunkBoundariesIgnoreThreadCount) {
  // The chunk set must be a pure function of (count, chunk_size): every pool
  // size visits exactly the same [begin, end) ranges, each exactly once.
  const std::size_t counts[] = {0, 1, 63, 64, 65, 129, 1000};
  const std::size_t chunk_sizes[] = {1, 16, 64, 1024};
  for (const std::size_t count : counts) {
    for (const std::size_t chunk : chunk_sizes) {
      std::vector<std::pair<std::size_t, std::size_t>> expected;
      WorkerPool inline_pool(1);
      inline_pool.parallel_for(count, chunk, [&](std::size_t b, std::size_t e) {
        expected.emplace_back(b, e);
      });
      for (const int threads : {2, 4, 8}) {
        WorkerPool pool(threads);
        std::mutex mu;
        std::vector<std::pair<std::size_t, std::size_t>> got;
        pool.parallel_for(count, chunk, [&](std::size_t b, std::size_t e) {
          std::lock_guard<std::mutex> lock(mu);
          got.emplace_back(b, e);
        });
        std::sort(got.begin(), got.end());  // completion order scrambles
        ASSERT_EQ(got, expected) << "count=" << count << " chunk=" << chunk
                                 << " threads=" << threads;
      }
    }
  }
}

TEST(WorkerPool, ParallelForPartialMergeIsBitIdenticalAcrossPoolSizes) {
  // Per-chunk float partials merged in chunk order: float addition is
  // order-sensitive, so bit equality across pool sizes proves both the
  // boundaries and the merge order are thread-count independent.
  constexpr std::size_t kCount = 777;
  constexpr std::size_t kChunk = 64;
  const auto value = [](std::size_t i) {
    return 1.0 / (static_cast<double>(i) + 0.3);
  };
  const auto run = [&](int threads) {
    WorkerPool pool(threads);
    const std::size_t chunks = (kCount + kChunk - 1) / kChunk;
    std::vector<double> partials(chunks, 0.0);
    pool.parallel_for(kCount, kChunk, [&](std::size_t b, std::size_t e) {
      double acc = 0;
      for (std::size_t i = b; i < e; ++i) acc += value(i);
      partials[b / kChunk] = acc;
    });
    double total = 0;
    for (const double p : partials) total += p;
    return total;
  };
  const double expected = run(1);
  for (const int threads : {2, 4, 8}) {
    const double got = run(threads);
    EXPECT_EQ(std::memcmp(&got, &expected, sizeof(double)), 0)
        << "pool size " << threads << ": " << got << " vs " << expected;
  }
}

}  // namespace
}  // namespace nwade::util
