// util/log coverage: level filtering, the sim-clock prefix, the snapshot
// semantics of LogLine (level checked once, at construction), and the
// zero-allocation disabled path (metered in NWADE_COUNT_ALLOCS builds).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "util/alloc_stats.h"
#include "util/log.h"

namespace nwade {
namespace {

/// Restores the process-wide log configuration when the test ends, so
/// suites stay order-independent.
class LogTest : public ::testing::Test {
 protected:
  void TearDown() override {
    log_config::set_level(LogLevel::kOff);
    log_config::set_clock(nullptr);
  }
};

TEST_F(LogTest, OffByDefaultLevelFiltersEverything) {
  log_config::set_level(LogLevel::kOff);
  EXPECT_FALSE(detail::enabled(LogLevel::kTrace));
  EXPECT_FALSE(detail::enabled(LogLevel::kError));
  // kOff itself must never pass, even against a kOff threshold (the >=
  // comparison alone would let it through).
  EXPECT_FALSE(detail::enabled(LogLevel::kOff));
}

TEST_F(LogTest, ThresholdAdmitsOnlyAtOrAbove) {
  log_config::set_level(LogLevel::kWarn);
  EXPECT_FALSE(detail::enabled(LogLevel::kTrace));
  EXPECT_FALSE(detail::enabled(LogLevel::kDebug));
  EXPECT_FALSE(detail::enabled(LogLevel::kInfo));
  EXPECT_TRUE(detail::enabled(LogLevel::kWarn));
  EXPECT_TRUE(detail::enabled(LogLevel::kError));
}

TEST_F(LogTest, EmitBelowThresholdProducesNoOutput) {
  log_config::set_level(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  NWADE_LOG(kInfo) << "should not appear";
  NWADE_LOG(kError) << "should appear";
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(err.find("should not appear"), std::string::npos);
  EXPECT_NE(err.find("should appear"), std::string::npos);
  EXPECT_NE(err.find("ERROR"), std::string::npos);
}

TEST_F(LogTest, SimClockPrefixUsesTheRegisteredTick) {
  log_config::set_level(LogLevel::kInfo);
  Tick now = 1234;
  log_config::set_clock(&now);
  ::testing::internal::CaptureStderr();
  NWADE_LOG(kInfo) << "stamped";
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("[    1234 ms]"), std::string::npos) << err;
  EXPECT_NE(err.find("stamped"), std::string::npos);

  // No clock registered -> no timestamp bracket at all.
  log_config::set_clock(nullptr);
  ::testing::internal::CaptureStderr();
  NWADE_LOG(kInfo) << "bare";
  const std::string bare = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(bare.find('['), std::string::npos) << bare;
}

TEST_F(LogTest, LevelIsSnapshottedAtConstruction) {
  log_config::set_level(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  {
    LogLine line(LogLevel::kInfo);
    line << "before reconfigure";
    // Raising the threshold mid-statement must not drop a line that was
    // enabled when it started (the stream was already engaged).
    log_config::set_level(LogLevel::kOff);
    line << " and after";
  }
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("before reconfigure and after"), std::string::npos);
}

TEST_F(LogTest, DisabledLineAllocatesNothing) {
  if (!util::alloc_counting_enabled()) {
    GTEST_SKIP() << "build without -DNWADE_COUNT_ALLOCS=ON";
  }
  log_config::set_level(LogLevel::kOff);
  const std::uint64_t before = util::thread_alloc_count();
  for (int i = 0; i < 100; ++i) {
    NWADE_LOG(kDebug) << "value " << i << " name " << 3.25;
  }
  EXPECT_EQ(util::thread_alloc_count() - before, 0u);
}

TEST_F(LogTest, ConcurrentEmitIsSafe) {
  // Many threads stream through enabled LogLines at once; TSan builds vet
  // the atomics in enabled()/emit(), default builds check nothing tears.
  log_config::set_level(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  constexpr int kThreads = 4;
  constexpr int kLines = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kLines; ++i) {
        NWADE_LOG(kInfo) << "worker " << t << " line " << i;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const std::string err = ::testing::internal::GetCapturedStderr();
  // Every line ends in exactly one newline; the total count must match.
  const auto newlines = std::count(err.begin(), err.end(), '\n');
  EXPECT_EQ(newlines, kThreads * kLines);
}

}  // namespace
}  // namespace nwade
