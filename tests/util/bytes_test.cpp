// ByteWriter/ByteReader round trips, hex codec, Result, and id types.
#include "util/bytes.h"

#include <gtest/gtest.h>

#include "util/result.h"
#include "util/types.h"

namespace nwade {
namespace {

TEST(Bytes, WriterReaderRoundTrip) {
  ByteWriter w;
  w.u8(0xab);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.f64(3.14159);
  w.str("hello");
  w.bytes(Bytes{1, 2, 3});

  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.bytes(), (Bytes{1, 2, 3}));
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.at_end());
}

TEST(Bytes, ReaderOverrunSetsErrorNotUb) {
  ByteWriter w;
  w.u8(1);
  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 1);
  EXPECT_EQ(r.u64(), 0u);  // overrun
  EXPECT_FALSE(r.ok());
  // Error is sticky.
  EXPECT_EQ(r.u8(), 0);
  EXPECT_FALSE(r.ok());
}

TEST(Bytes, TruncatedLengthPrefixedBytesFails) {
  ByteWriter w;
  w.u32(100);  // claims 100 bytes follow; none do
  ByteReader r(w.data());
  EXPECT_TRUE(r.bytes().empty());
  EXPECT_FALSE(r.ok());
}

TEST(Bytes, SkipViewRemaining) {
  ByteWriter w;
  w.u32(0x11223344);
  w.bytes(Bytes{9, 8, 7});
  w.u8(0x5a);

  ByteReader r(w.data());
  EXPECT_EQ(r.remaining(), w.data().size());
  r.skip(4);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), w.data().size() - 4);

  const std::uint32_t len = r.u32();
  const auto body = r.view(len);
  ASSERT_EQ(body.size(), 3u);
  EXPECT_EQ(body[0], 9);
  EXPECT_EQ(body[2], 7);
  EXPECT_EQ(r.u8(), 0x5a);
  EXPECT_TRUE(r.at_end());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Bytes, SkipAndViewPastEndSetStickyError) {
  ByteWriter w;
  w.u8(1);
  w.u8(2);
  {
    ByteReader r(w.data());
    r.skip(3);  // only 2 bytes exist
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.u8(), 0);  // sticky
  }
  {
    ByteReader r(w.data());
    EXPECT_TRUE(r.view(3).empty());
    EXPECT_FALSE(r.ok());
    // remaining() stays well-defined after an error: nothing was consumed.
    EXPECT_EQ(r.remaining(), 2u);
  }
}

TEST(Bytes, ViewAliasesBackingStorageWithoutCopy) {
  const Bytes data{10, 20, 30, 40};
  ByteReader r(data);
  const auto head = r.view(2);
  ASSERT_EQ(head.size(), 2u);
  EXPECT_EQ(head.data(), data.data());
  const auto tail = r.view(2);
  EXPECT_EQ(tail.data(), data.data() + 2);
  EXPECT_TRUE(r.at_end());
}

TEST(Bytes, HexRoundTrip) {
  const Bytes data{0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(to_hex(data), "0001abff");
  EXPECT_EQ(from_hex("0001abff"), data);
  EXPECT_EQ(from_hex("0001ABFF"), data);
}

TEST(Bytes, MalformedHexRejected) {
  EXPECT_TRUE(from_hex("abc").empty());   // odd length
  EXPECT_TRUE(from_hex("zz").empty());    // non-hex
  EXPECT_TRUE(from_hex("").empty());      // empty is fine but empty
}

TEST(Result, ValueAndError) {
  Result<int> ok = 42;
  EXPECT_TRUE(ok.has_value());
  EXPECT_EQ(ok.value(), 42);
  EXPECT_EQ(ok.value_or(0), 42);

  Result<int> err = std::string("boom");
  EXPECT_FALSE(err.has_value());
  EXPECT_EQ(err.error(), "boom");
  EXPECT_EQ(err.value_or(7), 7);
}

TEST(Result, VoidSpecialization) {
  Status ok = Status::ok();
  EXPECT_TRUE(ok);
  Status bad = Status::err("nope");
  EXPECT_FALSE(bad);
  EXPECT_EQ(bad.error(), "nope");
}

TEST(Types, IdsAreDistinctTypes) {
  VehicleId v{3};
  EXPECT_EQ(vehicle_node(v), NodeId{4});
  EXPECT_EQ(node_vehicle(NodeId{4}), v);
  EXPECT_EQ(node_vehicle(kImNodeId), VehicleId{});
  EXPECT_FALSE(VehicleId{}.valid());
  EXPECT_TRUE(v.valid());
}

TEST(Types, UnitConversions) {
  EXPECT_NEAR(mph_to_mps(50.0), 22.35, 0.01);
  EXPECT_NEAR(feet_to_meters(1000.0), 304.8, 0.01);
  EXPECT_EQ(seconds_to_ticks(1.5), 1500);
  EXPECT_DOUBLE_EQ(ticks_to_seconds(250), 0.25);
}

}  // namespace
}  // namespace nwade
