// util/telemetry coverage: handle semantics (incl. the inert default),
// histogram bucket-edge placement, snapshot JSON shape, merge rules, and —
// the property the whole design leans on — byte-identical snapshots no
// matter how the increments were spread across WorkerPool threads.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "bench/support.h"
#include "util/telemetry.h"
#include "util/worker_pool.h"

namespace nwade::util::telemetry {
namespace {

TEST(Telemetry, DefaultHandlesAreInertNoOps) {
  Counter c;
  Gauge g;
  Histogram h;
  EXPECT_FALSE(c.valid());
  EXPECT_FALSE(g.valid());
  EXPECT_FALSE(h.valid());
  c.inc();          // must not crash
  g.set(7);
  g.max_of(9);
  h.observe(3);
  EXPECT_EQ(c.value(), 0);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), 0);
}

TEST(Telemetry, CounterAccumulatesAndResets) {
  Registry r;
  Counter c = r.counter("t.counter");
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42);
  // Same name -> same cell.
  EXPECT_EQ(r.counter("t.counter").value(), 42);
  c.reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(Telemetry, GaugeIsLastWriterWinsAndMaxOfRatchets) {
  Registry r;
  Gauge g = r.gauge("t.gauge");
  g.set(10);
  g.set(3);
  EXPECT_EQ(g.value(), 3);
  g.max_of(2);
  EXPECT_EQ(g.value(), 3);
  g.max_of(8);
  EXPECT_EQ(g.value(), 8);
}

TEST(Telemetry, ExponentialEdgesDoubleFromZero) {
  const HistogramBuckets b = HistogramBuckets::exponential_ms(8);
  EXPECT_EQ(b.upper_edges, (std::vector<std::int64_t>{0, 1, 2, 4, 8}));
}

TEST(Telemetry, HistogramPlacesObservationsOnBucketEdges) {
  Registry r;
  Histogram h = r.histogram("t.hist", HistogramBuckets::exponential_ms(8));
  // Edges 0,1,2,4,8 (+overflow). A value lands in the first bucket whose
  // upper edge is >= value; above the last edge it lands in overflow.
  h.observe(0);   // bucket 0 (edge 0)
  h.observe(1);   // bucket 1 (edge 1)
  h.observe(2);   // bucket 2 (edge 2)
  h.observe(3);   // bucket 3 (edge 4)
  h.observe(4);   // bucket 3 (edge 4)
  h.observe(5);   // bucket 4 (edge 8)
  h.observe(8);   // bucket 4 (edge 8)
  h.observe(9);   // overflow
  h.observe(1000);  // overflow
  EXPECT_EQ(h.count(), 9);
  EXPECT_EQ(h.sum(), 0 + 1 + 2 + 3 + 4 + 5 + 8 + 9 + 1000);
  const MetricsSnapshot snap = r.snapshot();
  const auto& data = snap.histograms.at("t.hist");
  EXPECT_EQ(data.bucket_counts,
            (std::vector<std::int64_t>{1, 1, 1, 2, 2, 2}));
  EXPECT_EQ(data.count, 9);
}

TEST(Telemetry, SnapshotJsonIsWellFormedAndSorted) {
  Registry r;
  r.counter("b.second").inc(2);
  r.counter("a.first").inc(1);
  r.gauge("z.gauge").set(-5);
  r.histogram("h.lat", HistogramBuckets::exponential_ms(4)).observe(3);
  const MetricsSnapshot snap = r.snapshot();
  const std::string pretty = snap.json();
  const std::string compact = snap.json_compact();
  EXPECT_TRUE(bench::json_well_formed(pretty)) << pretty;
  EXPECT_TRUE(bench::json_well_formed(compact)) << compact;
  // Sorted keys: "a.first" renders before "b.second".
  EXPECT_LT(compact.find("a.first"), compact.find("b.second"));
  EXPECT_NE(compact.find("\"z.gauge\": -5"), std::string::npos) << compact;
  // One line only.
  EXPECT_EQ(compact.find('\n'), std::string::npos);
}

TEST(Telemetry, MergeAddsCountersAndHistogramsGaugesLastWin) {
  Registry a;
  a.counter("c").inc(3);
  a.gauge("g").set(1);
  a.histogram("h", HistogramBuckets::exponential_ms(4)).observe(2);
  Registry b;
  b.counter("c").inc(4);
  b.counter("only_b").inc(1);
  b.gauge("g").set(9);
  b.histogram("h", HistogramBuckets::exponential_ms(4)).observe(2);

  MetricsSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_EQ(merged.counters.at("c"), 7);
  EXPECT_EQ(merged.counters.at("only_b"), 1);
  EXPECT_EQ(merged.gauges.at("g"), 9);
  EXPECT_EQ(merged.histograms.at("h").count, 2);
  EXPECT_EQ(merged.histograms.at("h").sum, 4);
}

TEST(Telemetry, SnapshotIsByteIdenticalAcrossPoolSizes) {
  // The determinism contract: integer metrics + commutative shard merge =>
  // the snapshot is a pure function of the increments, not of which thread
  // performed them. Chaos-labeled so the TSan tree vets the sharded cells.
  const auto run = [](int threads) {
    Registry r;
    Counter c = r.counter("work.items");
    Histogram h =
        r.histogram("work.cost_ms", HistogramBuckets::exponential_ms(64));
    WorkerPool pool(threads);
    pool.for_each(10'000, [&](std::size_t i) {
      c.inc();
      h.observe(static_cast<std::int64_t>(i % 100));
    });
    return r.snapshot().json();
  };
  const std::string inline_run = run(1);
  EXPECT_EQ(inline_run, run(4));
  EXPECT_EQ(inline_run, run(8));
}

TEST(Telemetry, QuantileUpperEdgeUsesIntegerRanks) {
  Registry r;
  Histogram h = r.histogram("lat", HistogramBuckets{{0, 1, 2, 4, 8}});
  // Empty histogram: no rank exists.
  EXPECT_EQ(r.snapshot().histograms.at("lat").quantile_upper_edge(50), -1);

  // 10 observations: 5 land in the <=1 bucket, 4 in <=4, 1 overflows.
  for (int i = 0; i < 5; ++i) h.observe(1);
  for (int i = 0; i < 4; ++i) h.observe(3);
  h.observe(100);
  const MetricsSnapshot::HistogramData d = r.snapshot().histograms.at("lat");
  // rank(p50) = ceil(10 * 50 / 100) = 5 -> still inside the <=1 bucket.
  EXPECT_EQ(d.quantile_upper_edge(50), 1);
  // rank(p90) = 9 -> the <=4 bucket.
  EXPECT_EQ(d.quantile_upper_edge(90), 4);
  // rank(p99) = 10 -> the overflow bucket: only ">last edge" is known.
  EXPECT_EQ(d.quantile_upper_edge(99), -1);
  EXPECT_EQ(d.quantile_upper_edge(100), -1);
  EXPECT_EQ(d.quantile_upper_edge(1), 1);
}

TEST(Telemetry, JsonCarriesQuantileRows) {
  Registry r;
  Histogram h = r.histogram("lat", HistogramBuckets::exponential_ms(16));
  for (int i = 0; i < 100; ++i) h.observe(i % 10);
  const MetricsSnapshot snap = r.snapshot();
  for (const std::string& json : {snap.json(), snap.json_compact()}) {
    EXPECT_NE(json.find("\"p50\": "), std::string::npos) << json;
    EXPECT_NE(json.find("\"p90\": "), std::string::npos) << json;
    EXPECT_NE(json.find("\"p99\": "), std::string::npos) << json;
    EXPECT_TRUE(nwade::bench::json_well_formed(json)) << json;
  }
}

TEST(Telemetry, DiffOmitsUnchangedAndMergeReproduces) {
  Registry r;
  Counter a = r.counter("a");
  Counter b = r.counter("b");
  Gauge g = r.gauge("g");
  Histogram h = r.histogram("h", HistogramBuckets{{1, 2}});
  a.inc(5);
  g.set(3);
  h.observe(1);
  MetricsSnapshot before = r.snapshot();

  a.inc(2);
  b.inc(4);
  g.set(9);
  h.observe(2);
  Gauge g2 = r.gauge("g2");
  g2.set(1);
  const MetricsSnapshot after = r.snapshot();

  const MetricsSnapshot delta = after.diff(before);
  // Changed and newly-registered entries are present; counters as deltas.
  EXPECT_EQ(delta.counters.at("a"), 2);
  EXPECT_EQ(delta.counters.at("b"), 4);
  EXPECT_EQ(delta.gauges.at("g"), 9);  // gauges carry the new value
  EXPECT_EQ(delta.gauges.at("g2"), 1);
  EXPECT_EQ(delta.histograms.at("h").count, 1);
  EXPECT_EQ(delta.histograms.at("h").sum, 2);

  // The defining property: prev.merge(diff) reproduces the later snapshot.
  before.merge(delta);
  EXPECT_EQ(before.json(), after.json());
}

TEST(Telemetry, DiffAgainstSelfIsEmptyAndFoldOfDiffsReconstructs) {
  Registry r;
  Counter c = r.counter("c");
  Histogram h = r.histogram("h", HistogramBuckets{{1, 2, 4}});
  Gauge g = r.gauge("g");

  MetricsSnapshot acc;  // receiver-side fold, starts empty
  MetricsSnapshot prev;
  for (int round = 0; round < 5; ++round) {
    c.inc(round);  // round 0 adds nothing: the delta must still carry the key
    if (round % 2 == 0) g.set(round);
    h.observe(round);
    const MetricsSnapshot snap = r.snapshot();
    const MetricsSnapshot delta = snap.diff(prev);
    acc.merge(delta);
    prev = snap;
  }
  EXPECT_EQ(acc.json(), r.snapshot().json());
  // No change between snapshots -> a fully empty delta.
  EXPECT_TRUE(r.snapshot().diff(prev).empty());
}

TEST(Telemetry, DiffCarriesReshapedHistogramsWhole) {
  Registry r1;
  r1.histogram("h", HistogramBuckets{{1, 2}}).observe(1);
  Registry r2;
  r2.histogram("h", HistogramBuckets{{1, 2, 4}}).observe(3);
  const MetricsSnapshot prev = r1.snapshot();
  const MetricsSnapshot cur = r2.snapshot();
  const MetricsSnapshot delta = cur.diff(prev);
  // Shape changed (registry re-created differently): carried whole, not as
  // a bucket-wise delta that no receiver could apply.
  EXPECT_EQ(delta.histograms.at("h").upper_edges,
            (std::vector<std::int64_t>{1, 2, 4}));
  EXPECT_EQ(delta.histograms.at("h").count, 1);
}

TEST(Telemetry, RegistryResetZeroesValuesButKeepsHandles) {
  Registry r;
  Counter c = r.counter("c");
  Gauge g = r.gauge("g");
  Histogram h = r.histogram("h", HistogramBuckets::exponential_ms(4));
  c.inc(5);
  g.set(5);
  h.observe(1);
  r.reset();
  EXPECT_EQ(c.value(), 0);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), 0);
  c.inc();  // handle still wired to the same cell
  EXPECT_EQ(r.counter("c").value(), 1);
}

}  // namespace
}  // namespace nwade::util::telemetry
